// ADAPT 1D scenario: the original flight pipeline path. Synthetic fiber-
// tracker events are digitized into ALPHA ASIC packets, the pipeline is
// pedestal-calibrated, and each event flows through packet handling →
// pedestal subtraction → photon counting → zero-suppression → merge →
// 1D island detection + centroiding → downlink records.
package main

import (
	"fmt"
	"log"
	"math"

	hepccl "github.com/wustl-adapt/hepccl"
)

func main() {
	cfg := hepccl.ADAPTConfig()
	pipe, err := hepccl.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dig := hepccl.DefaultDigitizer()
	rng := hepccl.NewRNG(7)

	fmt.Printf("ADAPT 1D pipeline: %d ASICs (%d channels)\n", cfg.ASICs, pipe.Channels())
	fmt.Printf("sustained rate: %.0f events/s (bottleneck: %s; paper reports ~300k)\n\n",
		pipe.EventsPerSecond(), pipe.Bottleneck())

	// Pedestal calibration from light-free triggers.
	cal, err := hepccl.GeneratePedestalEvents(32, cfg.ASICs, dig, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Calibrate(cal); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pedestals calibrated (channel 0: %d ADC integral)\n\n", pipe.Pedestal(0))

	tracker := hepccl.DefaultTracker()
	tracker.Channels = pipe.Channels()
	tracker.Threshold = 0 // the pipeline applies its own zero-suppression

	for ev := 0; ev < 6; ev++ {
		truth := tracker.Event(rng)
		packets, err := hepccl.GenerateEvent(truth.Values, cfg.ASICs, uint32(ev), uint64(ev)*4096, dig, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.ProcessEvent(packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event %d: %d true interactions -> %d islands\n",
			ev, len(truth.Truth), len(res.OneD.Islands))
		for _, is := range res.OneD.Islands {
			// Match against the closest truth deposit.
			best, bestD := -1, math.Inf(1)
			for i, tr := range truth.Truth {
				if d := math.Abs(tr.Channel - is.Centroid); d < bestD {
					best, bestD = i, d
				}
			}
			fmt.Printf("  channels %3d..%-3d sum %5d centroid %7.2f",
				is.Start, is.End, is.Sum, is.Centroid)
			if best >= 0 && bestD < 3 {
				fmt.Printf("  (truth %.2f, |err| %.2f ch)", truth.Truth[best].Channel, bestD)
			}
			fmt.Println()
		}
		rec := hepccl.RecordOf(res)
		fmt.Printf("  downlink: %d bytes\n", len(rec.Marshal()))
	}
}
