// Quickstart: label a small pixel image with the paper's 1.5-pass CCL,
// extract its islands, and print centroids — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	hepccl "github.com/wustl-adapt/hepccl"
)

func main() {
	// A 6x6 image like Fig 4: two diagonal-touching blobs plus a singleton.
	img := hepccl.MustParseGrid(`
		##....
		##.#..
		..##..
		......
		....##
		....##
	`)
	fmt.Printf("input (%d lit pixels):\n%s\n\n", img.LitCount(), img)

	for _, conn := range []hepccl.Connectivity{hepccl.FourWay, hepccl.EightWay} {
		res, err := hepccl.Label(img, hepccl.Options{
			Connectivity:  conn,
			CompactLabels: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s CCL: %d islands (from %d provisional groups)\n%s\n",
			conn, res.Islands, res.Groups, res.Labels)

		islands := hepccl.IslandsOf(img, res.Labels)
		for _, c := range hepccl.Centroids(islands) {
			fmt.Printf("  island %d: %d px, energy %d, centroid (%.2f, %.2f)\n",
				c.Label, c.Pixels, c.Sum, c.Row, c.Col)
		}
		fmt.Println()
	}
}
