// Muon calibration scenario: local muons draw thin Cherenkov rings in the
// camera — the most concave islands a real IACT sees. The example labels
// ring images, fits circles (Kåsa) to recover the ring radius, and shows why
// the corrected merge-table update matters: the published update splits a
// substantial fraction of rings into multiple islands (EXPERIMENTS.md E13),
// which would corrupt the radius calibration.
package main

import (
	"fmt"
	"log"
	"math"

	hepccl "github.com/wustl-adapt/hepccl"
)

func main() {
	cam := hepccl.LSTCamera()
	rng := hepccl.NewRNG(4242)

	const events = 30
	var fitted, splitByPaperMode int
	var radErrSum float64

	for ev := 0; ev < events; ev++ {
		truth := cam.TypicalMuonRing(rng)
		img := cam.Ring(truth, rng)

		// Published update (the shipping hardware behaviour).
		paper, err := hepccl.Label(img, hepccl.Options{
			Connectivity:  hepccl.FourWay,
			Mode:          hepccl.ModePaper,
			MergeTableCap: hepccl.MergeTableSize(cam.Rows, cam.Cols, hepccl.FourWay),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Corrected update.
		fixed, err := hepccl.Label(img, hepccl.Options{
			Connectivity: hepccl.FourWay,
			Mode:         hepccl.ModeFixed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if paper.Islands > fixed.Islands {
			splitByPaperMode++
		}

		islands := hepccl.IslandsOf(img, fixed.Labels)
		main := hepccl.LargestIsland(islands)
		// Quality cut, as real muon calibration applies: the ring candidate
		// must cover a reasonable fraction of the expected circumference,
		// or the arc fit biases the radius.
		minPixels := int(0.35 * 2 * math.Pi * truth.Radius)
		if main == nil || main.Size() < minPixels {
			continue
		}
		ring, err := hepccl.FitRing(*main)
		if err != nil || ring.RMS > 1.0 {
			continue
		}
		fitted++
		radErr := math.Abs(ring.Radius - truth.Radius)
		radErrSum += radErr
		if ev < 8 {
			fmt.Printf("event %2d: true R=%5.2f  fitted R=%5.2f (center %.1f,%.1f; rms %.2f)  islands paper/fixed: %d/%d\n",
				ev, truth.Radius, ring.Radius, ring.CenterRow, ring.CenterCol, ring.RMS,
				paper.Islands, fixed.Islands)
		}
	}

	fmt.Printf("\nfitted %d/%d rings; mean |radius error| %.2f px\n",
		fitted, events, radErrSum/float64(fitted))
	fmt.Printf("published update split %d/%d ring events into extra islands\n", splitByPaperMode, events)
	fmt.Println("=> thin concave rings routinely trigger the §6 corner case; the corrected")
	fmt.Println("   update (ModeFixed) keeps each ring one island, preserving the calibration.")
}
