// Optimization journey: walks the four HLS optimization stages of §5 on one
// workload, printing how each pragma changes latency and resources — the
// narrative of Tables 1 and 2 — and demonstrates the Fig 12 false-dependency
// fix and the §6 corner case on the same designs.
package main

import (
	"fmt"
	"log"

	hepccl "github.com/wustl-adapt/hepccl"
)

func main() {
	rng := hepccl.NewRNG(99)
	img := hepccl.RandomIslands(8, 10, 4, 1.4, rng)
	fmt.Printf("workload (8x10, %d lit):\n%s\n\n", img.LitCount(), img)

	for _, conn := range []hepccl.Connectivity{hepccl.FourWay, hepccl.EightWay} {
		fmt.Printf("--- %s connectivity ---\n", conn)
		var prev int64
		for _, stage := range hepccl.Stages() {
			out, err := hepccl.RunDesign(img, hepccl.DesignConfig{
				Rows: 8, Cols: 10, Connectivity: conn, Stage: stage,
			})
			if err != nil {
				log.Fatal(err)
			}
			r := out.Report
			fmt.Printf("%-13s latency %5d  BRAM %2d  FF %5d  LUT %5d",
				stage, r.LatencyCycles, r.Usage.BRAM18K, r.Usage.FF, r.Usage.LUT)
			if prev != 0 {
				fmt.Printf("  (%+.1f%% latency)", float64(r.LatencyCycles-prev)/float64(prev)*100)
			}
			fmt.Println()
			prev = r.LatencyCycles
		}
		fmt.Println()
	}

	// Fig 12: the false stream_top dependency.
	base := hepccl.DesignConfig{
		Rows: 8, Cols: 10, Connectivity: hepccl.FourWay, Stage: hepccl.StagePipelined,
	}
	dualCfg := base
	dualCfg.DualWriteStreams = true
	single, err := hepccl.RunDesign(img, base)
	if err != nil {
		log.Fatal(err)
	}
	dual, err := hepccl.RunDesign(img, dualCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 12 false dependency: dual-write II=%d (%d cycles) -> single-write II=%d (%d cycles); labels identical: %v\n\n",
		dual.Report.InnerII, dual.Report.LatencyCycles,
		single.Report.InnerII, single.Report.LatencyCycles,
		dual.Labels.Equal(single.Labels))

	// §6 corner case: published update vs the logical fix, in hardware.
	trigger := hepccl.MustParseGrid("#..#.\n#.##.\n###..")
	pub, err := hepccl.RunDesign(trigger, hepccl.DesignConfig{
		Rows: 3, Cols: 5, Connectivity: hepccl.FourWay, Stage: hepccl.StagePipelined,
	})
	if err != nil {
		log.Fatal(err)
	}
	fixedCfg := hepccl.DesignConfig{
		Rows: 3, Cols: 5, Connectivity: hepccl.FourWay, Stage: hepccl.StagePipelined,
		FixedUpdate: true,
	}
	fixed, err := hepccl.RunDesign(trigger, fixedCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§6 corner case (one true component):\n%s\n", trigger)
	fmt.Printf("  published update: %d islands\n%s\n", pub.Islands, pub.Labels)
	fmt.Printf("  fixed update:     %d islands\n%s\n", fixed.Islands, fixed.Labels)
}
