// CTA LST scenario: Cherenkov shower images on the 43×43 camera (≈ the LST's
// 1855 pixels) are cleaned, labeled with the fully pipelined 4-way design,
// and reduced to Hillas parameters — while the synthesis report verifies the
// paper's headline claim that the design sustains CTA's 15k events/s target
// at 100 MHz (§5.5).
package main

import (
	"fmt"
	"log"

	hepccl "github.com/wustl-adapt/hepccl"
)

func main() {
	cam := hepccl.LSTCamera()
	rng := hepccl.NewRNG(2026)

	cfg := hepccl.DesignConfig{
		Rows: cam.Rows, Cols: cam.Cols,
		Connectivity: hepccl.FourWay,
		Stage:        hepccl.StagePipelined,
	}

	fmt.Printf("CTA LST camera: %dx%d pixels, 4-way CCL, pipelined design\n\n", cam.Rows, cam.Cols)

	const events = 5
	var report hepccl.Report
	for ev := 0; ev < events; ev++ {
		sh := cam.TypicalShower(rng)
		img := cam.Shower(sh, rng)

		out, err := hepccl.RunDesign(img, cfg)
		if err != nil {
			log.Fatal(err)
		}
		report = out.Report

		islands := hepccl.IslandsOf(img, out.Labels)
		main := hepccl.LargestIsland(islands)
		fmt.Printf("event %d: %2d islands after cleaning", ev, len(islands))
		if main != nil {
			h := hepccl.HillasOf(*main)
			fmt.Printf("; shower candidate: size %d pe, cog (%.1f, %.1f), length %.2f, width %.2f, psi %.2f rad",
				h.Size, h.CogRow, h.CogCol, h.Length, h.Width, h.PsiRad)
			fmt.Printf(" (true center %.1f, %.1f)", sh.CenterRow, sh.CenterCol)
		}
		fmt.Println()
	}

	fmt.Printf("\nsynthesis report: latency %d cycles @ %.0f MHz -> %.0f events/s\n",
		report.LatencyCycles, report.ClockMHz, report.EventsPerSecond())
	fmt.Printf("resources: BRAM18K %d, FF %d (%d%%), LUT %d (%d%%) on %s\n",
		report.Usage.BRAM18K,
		report.Usage.FF, hepccl.KintexXC7K325T.PctFF(report.Usage.FF),
		report.Usage.LUT, hepccl.KintexXC7K325T.PctLUT(report.Usage.LUT),
		hepccl.KintexXC7K325T.Name)
	if report.EventsPerSecond() >= 15000 {
		fmt.Println("=> meets CTA's 15k events/s real-time target (§5.5)")
	} else {
		fmt.Println("=> MISSES CTA's 15k events/s target")
	}
}
