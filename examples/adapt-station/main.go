// ADAPT station scenario: "ADAPT's 2D spatial reconstruction uses
// perpendicular 1D arrays of optical fibers" (§2). Two pipelines read the X
// and Y fiber layers of one tracker station; the event builder pairs their
// 1D islands by energy rank into 2D interaction points and compares them to
// the generated ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
)

func main() {
	cfg := adapt.DefaultADAPT()
	cfg.ASICs = 8 // 128 channels per layer
	station, err := adapt.NewInstrument(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracker station: 2 layers × %d channels, %.0f events/s\n\n",
		station.X.Channels(), station.EventsPerSecond())

	tracker := detector.DefaultTracker()
	tracker.Channels = station.X.Channels()
	tracker.MeanInteractions = 1.5
	tracker.Threshold = 0
	tracker.PEMin = 40
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	rng := detector.NewRNG(1234)

	var matched, truthPoints int
	for ev := 0; ev < 10; ev++ {
		xy := tracker.XYEvent(rng)
		xPackets, err := adapt.GenerateEvent(xy.X, cfg.ASICs, uint32(ev), 0, dig, nil)
		if err != nil {
			log.Fatal(err)
		}
		yPackets, err := adapt.GenerateEvent(xy.Y, cfg.ASICs, uint32(ev), 0, dig, nil)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := station.ProcessEvent(xPackets, yPackets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event %d: %d truth interactions -> %d points (unpaired X/Y: %d/%d)\n",
			ev, len(xy.Truth), len(rec.Points), rec.UnpairedX, rec.UnpairedY)
		for _, p := range rec.Points {
			best := math.Inf(1)
			for _, tr := range xy.Truth {
				if d := math.Hypot(p.Row-tr.Row, p.Col-tr.Col); d < best {
					best = d
				}
			}
			fmt.Printf("  point (%6.2f, %6.2f)  E %4d/%-4d  balance %.2f  |truth dist| %.2f\n",
				p.Row, p.Col, p.EnergyX, p.EnergyY, p.Balance, best)
			if best < 1.5 {
				matched++
			}
		}
		truthPoints += len(xy.Truth)
	}
	fmt.Printf("\n%d/%d reconstructed points within 1.5 channels of a truth interaction\n",
		matched, truthPoints)
	fmt.Println("(multi-interaction events show the classic XY-readout ghost ambiguity —")
	fmt.Println(" the energy-balance column is the discriminator real event builders cut on)")
}
