GO ?= go

.PHONY: all build test race vet fmt soak bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent pieces under the race detector (-short trims the soak).
race:
	$(GO) test -race -short ./internal/server ./internal/adapt ./cmd/hepccld ./cmd/loadgen

# go vet's standard suite + the module's hot-path analyzers + the compiler
# escape-analysis cross-check. Must be clean before merging.
vet:
	$(GO) run ./cmd/hepcclvet ./...

fmt:
	gofmt -l -w .

# Full-length chaos soak under -race, as the nightly CI job runs it.
soak:
	$(GO) test -race -run 'TestChaosSoak$$' -count=1 -v ./internal/server

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkServeEvent' -benchtime 100x -benchmem .
	$(GO) test -run '^$$' -bench BenchmarkIngestPath -benchtime 200000x -benchmem ./internal/server
