GO ?= go

.PHONY: all build test race vet fmt soak gw-soak bench replay-check hotclosure hotclosure-check checkptr

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent pieces under the race detector (-short trims the soak).
race:
	$(GO) test -race -short ./internal/server ./internal/gateway ./internal/adapt ./internal/runccl ./internal/wal ./internal/tileccl ./cmd/hepccld ./cmd/loadgen

# go vet's standard suite + the module's analyzers (marklint, hotpathalloc,
# atomicring, nofloat, errwrapcheck, barrierproto, acctproto) + the compiler
# escape-analysis and bounds-check-elimination cross-checks. Must be clean
# before merging.
vet:
	$(GO) run ./cmd/hepcclvet ./...

# Regenerate the hot-path closure baseline after intentionally changing what
# the serving spine calls. Line numbers are stripped: the gate reviews
# closure membership, not source positions.
hotclosure:
	$(GO) run ./cmd/hepcclvet -funcs | sed 's/^\([^:]*\):[0-9]*:/\1:/' > analysis/hotclosure.txt

# Fail when the hot closure drifted from the reviewed baseline; regenerate
# with `make hotclosure` and review the diff alongside the change.
hotclosure-check:
	$(GO) run ./cmd/hepcclvet -funcs | sed 's/^\([^:]*\):[0-9]*:/\1:/' | diff -u analysis/hotclosure.txt -

# Pointer-safety instrumentation over the packages that carry unsafe word
# views (adapt's fused integrate/batch paths) and the durability layer that
# replays their bytes. checkptr=2 also flags pointers derived outside their
# allocation; -race's default instrumentation is level 1.
checkptr:
	$(GO) test -gcflags=all=-d=checkptr=2 -count=1 ./internal/adapt ./internal/wal

fmt:
	gofmt -l -w .

# Full-length chaos soak under -race, as the nightly CI job runs it.
soak:
	$(GO) test -race -run 'TestChaosSoak$$' -count=1 -v ./internal/server

# Gateway chaos soak: gw + 2 in-process backends, one hard-killed mid-stream
# and re-added on the same address, with the exact accounting identity
# (offered == relayed + shed + inflight) asserted at quiesce. GW_SOAK_EVENTS
# scales the run (default 1200 events; CI uses 6000).
gw-soak:
	GW_SOAK_EVENTS=$${GW_SOAK_EVENTS:-6000} $(GO) test -race -run 'TestGatewaySoak$$' -count=1 -v ./internal/gateway

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkServeEvent' -benchtime 100x -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkServeBatch/' -benchtime 2s -benchmem .
	$(GO) test -run '^$$' -bench BenchmarkIngestPath -benchtime 200000x -benchmem ./internal/server
	$(GO) test -run '^$$' -bench 'BenchmarkLabel' -benchtime 100x -benchmem ./internal/tileccl

# Replay determinism: record a run into a WAL, replay it twice, and require
# byte-identical (event, label-count, checksum) response streams plus the
# crash-recovery round trip (SIGKILL mid-ingest, recover, re-serve).
replay-check:
	$(GO) test -run 'TestReplayDeterminism$$|TestWALCrashRecovery$$' -count=1 -v ./internal/server
