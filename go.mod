module github.com/wustl-adapt/hepccl

go 1.22
