// Package hepccl is the public API of this reproduction of "Connected-
// Component Labeling Using HLS for High-Energy Particle Physics Instruments"
// (Song, Sudvarg, Chamberlain — SC Workshops '25).
//
// It re-exports the stable surface of the internal packages:
//
//   - pixel grids and label images (internal/grid);
//   - the paper's 1.5-pass CCL algorithm with merge table, in both the
//     published and the corrected update modes (internal/ccl);
//   - baseline labelers from the literature (internal/labeling);
//   - the HLS design simulations of the paper's four optimization stages
//     with Vitis-style synthesis reports (internal/design);
//   - the ADAPT front-end pipeline with the TWO_DIMENSION switch
//     (internal/adapt);
//   - the concurrent event-ingest service that serves that pipeline over
//     TCP with derandomizer-style bounded queues (internal/server; see
//     cmd/hepccld and cmd/loadgen);
//   - synthetic detector workloads (internal/detector) and island
//     centroiding (internal/centroid).
//
// Quickstart:
//
//	g := hepccl.MustParseGrid("#.#\n###")
//	res, err := hepccl.Label(g, hepccl.Options{Connectivity: hepccl.FourWay})
//	if err != nil { ... }
//	islands := hepccl.IslandsOf(g, res.Labels)
package hepccl

import (
	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/centroid"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
	"github.com/wustl-adapt/hepccl/internal/labeling"
	"github.com/wustl-adapt/hepccl/internal/server"
)

// Grids and labels.
type (
	// Grid is a dense 2D pixel array in row-major order.
	Grid = grid.Grid
	// Labels is a per-pixel component-label image.
	Labels = grid.Labels
	// Value is one pixel's integrated channel value. Component labels share
	// the same underlying int32 width (0 = background).
	Value = grid.Value
	// Connectivity selects 4-way or 8-way adjacency.
	Connectivity = grid.Connectivity
)

// Connectivity constants.
const (
	FourWay  = grid.FourWay
	EightWay = grid.EightWay
)

// NewGrid returns a zeroed rows×cols grid.
func NewGrid(rows, cols int) *Grid { return grid.New(rows, cols) }

// ParseGrid builds a binary grid from ASCII art ('.' dark, '#' lit).
func ParseGrid(art string) (*Grid, error) { return grid.Parse(art) }

// MustParseGrid is ParseGrid that panics on error.
func MustParseGrid(art string) *Grid { return grid.MustParse(art) }

// GridFromFlat wraps a row-major value slice as a grid without copying.
func GridFromFlat(rows, cols int, data []Value) (*Grid, error) {
	return grid.FromFlat(rows, cols, data)
}

// The paper's 1.5-pass CCL.
type (
	// Options configures a labeling run.
	Options = ccl.Options
	// Result carries final labels, provisional labels, and the merge table.
	Result = ccl.Result
	// Mode selects the published or corrected merge-table update.
	Mode = ccl.Mode
	// MergeTable is the equivalence table of §4.2–4.4.
	MergeTable = ccl.MergeTable
	// Island is one connected component with its pixels and energy sum.
	Island = ccl.Island
)

// Mode constants.
const (
	// ModeFixed is the corrected update (default).
	ModeFixed = ccl.ModeFixed
	// ModePaper reproduces the published algorithm, §6 corner case and all.
	ModePaper = ccl.ModePaper
)

// Label runs 1.5-pass connected-component labeling over g.
func Label(g *Grid, opt Options) (*Result, error) { return ccl.Label(g, opt) }

// IslandsOf groups lit pixels by final label.
func IslandsOf(g *Grid, l *Labels) []Island { return ccl.Islands(g, l) }

// LargestIsland returns the island with the most pixels, or nil.
func LargestIsland(islands []Island) *Island { return ccl.LargestIsland(islands) }

// MergeTableSizePaper is the paper's §5.5 merge-table sizing.
func MergeTableSizePaper(rows, cols int) int { return ccl.SizeForPaper(rows, cols) }

// MergeTableSize is the worst-case-safe sizing for a connectivity.
func MergeTableSize(rows, cols int, conn Connectivity) int {
	return ccl.SizeFor(rows, cols, conn)
}

// Baseline labelers (§3 related work).
type Labeler = labeling.Labeler

// Labelers returns the reference algorithms: flood fill (golden model),
// Rosenfeld–Pfaltz two-pass, Bailey–Johnston single-pass, He-style fast
// two-pass.
func Labelers() []Labeler { return labeling.All() }

// HLS design simulations (§5).
type (
	// DesignConfig selects array size, connectivity, and optimization stage.
	DesignConfig = design.Config
	// DesignOutput is a design run's labels plus synthesis report.
	DesignOutput = design.Output
	// Stage is one optimization stage of the §5 study.
	Stage = design.Stage
	// Report is a Vitis-style synthesis report row.
	Report = resource.Report
	// Device models an FPGA part's capacities.
	Device = resource.Device
)

// Optimization stages.
const (
	StageBaseline    = design.StageBaseline
	StageBindStorage = design.StageBindStorage
	StageUnrolled    = design.StageUnrolled
	StagePipelined   = design.StagePipelined
)

// KintexXC7K325T is the paper's synthesis target device.
var KintexXC7K325T = resource.KintexXC7K325T

// RunDesign executes one island_detection_2d configuration on an event.
func RunDesign(g *Grid, cfg DesignConfig) (*DesignOutput, error) { return design.Run(g, cfg) }

// DesignLatency returns a configuration's worst-case latency in cycles.
func DesignLatency(stage Stage, conn Connectivity, rows, cols int) int64 {
	return design.Latency(stage, conn, rows, cols)
}

// Stages lists the four optimization stages in study order.
func Stages() []Stage { return design.Stages() }

// ADAPT pipeline (Fig 3).
type (
	// Pipeline is the instantiated front-end pipeline.
	Pipeline = adapt.Pipeline
	// PipelineConfig parameterizes one pipeline build.
	PipelineConfig = adapt.Config
	// Packet is one 16-channel digitizer readout.
	Packet = adapt.Packet
	// EventResult is the pipeline output for one trigger.
	EventResult = adapt.EventResult
)

// NewPipeline builds a validated pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return adapt.New(cfg) }

// IslandRecord is one island's label, size, charge, and Q16.16 centroid
// within an EventRecord downlink frame.
type IslandRecord = adapt.IslandRecord

// Event-ingest service (internal/server): the ADAPT pipeline as a network
// daemon with sharded workers and derandomizer-style bounded queues. See
// cmd/hepccld and cmd/loadgen for the runnable pair.
type (
	// Server is the concurrent event-ingest service.
	Server = server.Server
	// ServerConfig parameterizes workers, queue depth, and overflow policy.
	ServerConfig = server.Config
	// OverflowPolicy selects what a full worker queue does to new events.
	OverflowPolicy = server.OverflowPolicy
	// ServerStats is a point-in-time snapshot of the service counters.
	ServerStats = server.Snapshot
)

// Overflow policies.
const (
	// PolicyDrop discards overflowing events, like the §6 derandomizer FIFO.
	PolicyDrop = server.PolicyDrop
	// PolicyBlock applies backpressure to the ingest connection instead.
	PolicyBlock = server.PolicyBlock
)

// ErrServerClosed is returned by a server's accept loop after Shutdown.
var ErrServerClosed = server.ErrServerClosed

// NewServer builds a validated event-ingest server.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ADAPTConfig returns the synthetic ADAPT flight configuration (1D mode).
func ADAPTConfig() PipelineConfig { return adapt.DefaultADAPT() }

// CTAConfig returns the CTA-style 43×43 2D configuration.
func CTAConfig() PipelineConfig { return adapt.DefaultCTA() }

// FrameConfig returns a 2D configuration for an arbitrary rows×cols frame
// geometry. Frames larger than TiledCutoverPixels serve through the
// tile-parallel labeling engine; smaller frames keep the single-core
// run-based path. Set PipelineConfig.Serve / TileWorkers to override.
func FrameConfig(rows, cols int) PipelineConfig { return adapt.DefaultFrame(rows, cols) }

// TiledCutoverPixels is the frame size above which the default serving
// configuration labels with the tile-parallel engine.
const TiledCutoverPixels = adapt.TiledCutoverPixels

// Workload generation and centroiding.
type (
	// RNG is the deterministic generator all workloads use.
	RNG = detector.RNG
	// Centroid2D is an island's energy-weighted centroid.
	Centroid2D = centroid.Centroid2D
	// Hillas is an island's second-moment ellipse parameterization.
	Hillas = centroid.Hillas
)

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return detector.NewRNG(seed) }

// Centroids computes energy-weighted centroids for islands.
func Centroids(islands []Island) []Centroid2D { return centroid.All2D(islands) }

// HillasOf computes the Hillas parameters of one island.
func HillasOf(is Island) Hillas { return centroid.HillasParameters(is) }

// Ring is a fitted circle over an island's pixels (muon calibration).
type Ring = centroid.Ring

// FitRing fits a circle to an island with the weighted Kåsa method.
func FitRing(is Island) (Ring, error) { return centroid.FitRing(is) }
