package hepccl_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablations for the design choices the study isolates.
//
// Hardware metrics (cycles, BRAM/FF/LUT) are reported via b.ReportMetric as
// model outputs — they are deterministic properties of each configuration —
// while ns/op measures this reproduction's simulation cost on the host.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem .

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// workload8x10 returns the Table 1/2 array-size workload.
func workload8x10() *grid.Grid {
	return detector.RandomIslands(8, 10, 4, 1.4, detector.NewRNG(42))
}

func workload(rows, cols int) *grid.Grid {
	return detector.RandomIslands(rows, cols, max(2, rows*cols/100), 1.6, detector.NewRNG(42))
}

// benchStageStudy runs one Table 1/2 row: a design stage on the 8×10 array.
func benchStageStudy(b *testing.B, conn grid.Connectivity) {
	g := workload8x10()
	for _, stage := range design.Stages() {
		stage := stage // explicit capture: b.Run closures outlive the iteration
		b.Run(stage.String(), func(b *testing.B) {
			cfg := design.Config{Rows: 8, Cols: 10, Connectivity: conn, Stage: stage}
			var out *design.Output
			var err error
			for i := 0; i < b.N; i++ {
				out, err = design.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
			b.ReportMetric(float64(out.Report.Usage.BRAM18K), "hw-BRAM")
			b.ReportMetric(float64(out.Report.Usage.FF), "hw-FF")
			b.ReportMetric(float64(out.Report.Usage.LUT), "hw-LUT")
		})
	}
}

// BenchmarkTable1 regenerates Table 1: optimization stages, 8×10, 4-way.
func BenchmarkTable1(b *testing.B) { benchStageStudy(b, grid.FourWay) }

// BenchmarkTable2 regenerates Table 2: optimization stages, 8×10, 8-way.
func BenchmarkTable2(b *testing.B) { benchStageStudy(b, grid.EightWay) }

// benchScaling runs one Table 3/4 row: the pipelined design at one size.
func benchScaling(b *testing.B, conn grid.Connectivity) {
	for _, sz := range [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}} {
		rows, cols := sz[0], sz[1] // explicit capture for the b.Run closure
		b.Run(fmt.Sprintf("%dx%d", rows, cols), func(b *testing.B) {
			g := workload(rows, cols)
			cfg := design.Config{Rows: rows, Cols: cols, Connectivity: conn, Stage: design.StagePipelined}
			var out *design.Output
			var err error
			for i := 0; i < b.N; i++ {
				out, err = design.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
			b.ReportMetric(float64(out.Report.Usage.BRAM18K), "hw-BRAM")
			b.ReportMetric(float64(out.Report.Usage.FF), "hw-FF")
			b.ReportMetric(float64(out.Report.Usage.LUT), "hw-LUT")
			b.ReportMetric(out.Report.EventsPerSecond(), "hw-events/s")
		})
	}
}

// BenchmarkTable3 regenerates Table 3: scalability, 4-way pipelined.
func BenchmarkTable3(b *testing.B) { benchScaling(b, grid.FourWay) }

// BenchmarkTable4 regenerates Table 4: scalability, 8-way pipelined.
func BenchmarkTable4(b *testing.B) { benchScaling(b, grid.EightWay) }

// BenchmarkFig10 regenerates the Fig 10 latency series (both connectivities).
// The hw-cycles metric across sub-benchmarks is the plotted series.
func BenchmarkFig10(b *testing.B) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		for _, sz := range [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}} {
			conn, sz := conn, sz // explicit capture for the b.Run closure
			b.Run(fmt.Sprintf("%s/%dx%d", conn, sz[0], sz[1]), func(b *testing.B) {
				var lat int64
				for i := 0; i < b.N; i++ {
					lat = design.Latency(design.StagePipelined, conn, sz[0], sz[1])
				}
				b.ReportMetric(float64(lat), "hw-cycles")
			})
		}
	}
}

// BenchmarkFig11 regenerates the Fig 11 FF/LUT series.
func BenchmarkFig11(b *testing.B) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		for _, sz := range [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}} {
			conn, sz := conn, sz // explicit capture for the b.Run closure
			b.Run(fmt.Sprintf("%s/%dx%d", conn, sz[0], sz[1]), func(b *testing.B) {
				var ff, lut int
				for i := 0; i < b.N; i++ {
					use := design.Resources(design.StagePipelined, conn, sz[0], sz[1])
					ff, lut = use.FF, use.LUT
				}
				b.ReportMetric(float64(ff), "hw-FF")
				b.ReportMetric(float64(lut), "hw-LUT")
			})
		}
	}
}

// BenchmarkEventRate43x43 regenerates the §5.5 headline claim (E7): the
// 43×43 4-way pipelined design at 100 MHz versus CTA's 15k events/s target.
func BenchmarkEventRate43x43(b *testing.B) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(7)
	g := cam.Shower(cam.TypicalShower(rng), rng)
	cfg := design.Config{Rows: 43, Cols: 43, Connectivity: grid.FourWay, Stage: design.StagePipelined}
	var out *design.Output
	var err error
	for i := 0; i < b.N; i++ {
		out, err = design.Run(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(out.Report.EventsPerSecond(), "hw-events/s")
	b.ReportMetric(15000, "hw-target")
}

// BenchmarkFalseDependency regenerates E8 (Fig 12): dual-write vs
// single-write stream_top patterns on the pipelined 4-way design.
func BenchmarkFalseDependency(b *testing.B) {
	g := workload8x10()
	for _, dual := range []bool{false, true} {
		dual := dual // explicit capture for the b.Run closure
		name := "single-write"
		if dual {
			name = "dual-write"
		}
		b.Run(name, func(b *testing.B) {
			cfg := design.Config{
				Rows: 8, Cols: 10, Connectivity: grid.FourWay,
				Stage: design.StagePipelined, DualWriteStreams: dual,
			}
			var out *design.Output
			var err error
			for i := 0; i < b.N; i++ {
				out, err = design.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
			b.ReportMetric(float64(out.Report.InnerII), "hw-innerII")
		})
	}
}

// BenchmarkAblationStorage isolates the bind_storage pragma (§5.2): the
// merge table in registers vs dual-port BRAM, before pipelining.
func BenchmarkAblationStorage(b *testing.B) {
	g := workload8x10()
	for _, stage := range []design.Stage{design.StageBaseline, design.StageBindStorage} {
		stage := stage // explicit capture for the b.Run closure
		b.Run(stage.String(), func(b *testing.B) {
			cfg := design.Config{Rows: 8, Cols: 10, Connectivity: grid.FourWay, Stage: stage}
			var out *design.Output
			var err error
			for i := 0; i < b.N; i++ {
				out, err = design.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
			b.ReportMetric(float64(out.Report.Usage.FF), "hw-FF")
		})
	}
}

// BenchmarkAblationResolver compares the published min-update against the
// §6 fixed union update on merge-chain-heavy spirals (software cost; both
// schedules are identical in hardware).
func BenchmarkAblationResolver(b *testing.B) {
	g := detector.Spiral(64, 64)
	for _, mode := range []ccl.Mode{ccl.ModePaper, ccl.ModeFixed} {
		mode := mode // explicit capture for the b.Run closure
		b.Run(mode.String(), func(b *testing.B) {
			opt := ccl.Options{Connectivity: grid.FourWay, Mode: mode}
			for i := 0; i < b.N; i++ {
				if _, err := ccl.Label(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMergeTableSizing compares the paper's ⌈R/2⌉·⌈C/2⌉ sizing
// with the 4-way-safe ⌈R·C/2⌉ sizing (E9): the resolve loop trip count is
// the latency cost of safety.
func BenchmarkAblationMergeTableSizing(b *testing.B) {
	g := workload(43, 43)
	for _, safe := range []bool{false, true} {
		safe := safe // explicit capture for the b.Run closure
		name := "paper-sizing"
		capacity := 0
		if safe {
			name = "safe-sizing"
			capacity = ccl.SizeFor(43, 43, grid.FourWay)
		}
		b.Run(name, func(b *testing.B) {
			cfg := design.Config{
				Rows: 43, Cols: 43, Connectivity: grid.FourWay,
				Stage: design.StagePipelined, MergeTableCap: capacity,
			}
			var out *design.Output
			var err error
			for i := 0; i < b.N; i++ {
				out, err = design.Run(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
		})
	}
}

// BenchmarkLabelers compares the software implementations of every CCL
// algorithm in §3's related work plus this paper's 1.5-pass, on the LST-size
// array (pure Go throughput, not hardware cycles).
func BenchmarkLabelers(b *testing.B) {
	g := workload(43, 43)
	for _, lab := range labeling.All() {
		lab := lab // explicit capture for the b.Run closure
		b.Run(lab.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lab.Label(g, grid.FourWay); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("1.5-pass", func(b *testing.B) {
		opt := ccl.Options{Connectivity: grid.FourWay}
		for i := 0; i < b.N; i++ {
			if _, err := ccl.Label(g, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineADAPT measures the full 1D pipeline end to end (packets
// through downlink records) and reports the modeled hardware event rate.
func BenchmarkPipelineADAPT(b *testing.B) {
	cfg := adapt.DefaultADAPT()
	p, err := adapt.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := detector.NewRNG(3)
	dig := detector.DefaultDigitizer()
	tracker := detector.DefaultTracker()
	tracker.Channels = p.Channels()
	packets, err := adapt.GenerateEvent(tracker.Event(rng).Values, cfg.ASICs, 1, 0, dig, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.ProcessEvent(packets)
		if err != nil {
			b.Fatal(err)
		}
		_ = adapt.RecordOf(res)
	}
	b.ReportMetric(p.EventsPerSecond(), "hw-events/s")
}

// BenchmarkPipelineCTA measures the 2D CTA pipeline end to end.
func BenchmarkPipelineCTA(b *testing.B) {
	cfg := adapt.DefaultCTA()
	p, err := adapt.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := detector.NewRNG(4)
	cam := detector.LSTCamera()
	cam.CleaningThresholdPE = 0
	img := cam.Shower(cam.TypicalShower(rng), rng)
	flat := make([]grid.Value, p.Channels())
	copy(flat, img.Flat())
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	packets, err := adapt.GenerateEvent(flat, cfg.ASICs, 1, 0, dig, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProcessEvent(packets); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.EventsPerSecond(), "hw-events/s")
}

// BenchmarkAblationPassStrategy regenerates E11: the §6 future-work
// pass-structure comparison (1.5-pass vs two-pass vs single-pass) at the
// LST size.
func BenchmarkAblationPassStrategy(b *testing.B) {
	g := workload(43, 43)
	for _, s := range []design.PassStrategy{design.PassOneAndHalf, design.PassTwo, design.PassSingle} {
		s := s // explicit capture for the b.Run closure
		b.Run(s.String(), func(b *testing.B) {
			cfg := design.VariantConfig{Rows: 43, Cols: 43, Connectivity: grid.FourWay, Strategy: s}
			var out *design.Output
			var err error
			for i := 0; i < b.N; i++ {
				out, err = design.RunVariant(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
			b.ReportMetric(float64(out.Report.Usage.FF), "hw-FF")
		})
	}
}

// BenchmarkAblationOutputLanes regenerates the §6 wide-output enhancement:
// emitting 1..16 labels per cycle at 64×64, where the output loop is "a
// major latency contributor".
func BenchmarkAblationOutputLanes(b *testing.B) {
	for _, lanes := range []int{1, 2, 4, 8, 16} {
		lanes := lanes // explicit capture for the b.Run closure
		b.Run(fmt.Sprintf("lanes-%d", lanes), func(b *testing.B) {
			cfg := design.VariantConfig{
				Rows: 64, Cols: 64, Connectivity: grid.FourWay,
				Strategy: design.PassOneAndHalf, OutputLanes: lanes,
			}
			var lat int64
			for i := 0; i < b.N; i++ {
				lat = design.VariantLatency(cfg)
			}
			b.ReportMetric(float64(lat), "hw-cycles")
		})
	}
}

// BenchmarkTiled regenerates E12: hierarchical labeling across image sizes
// with a constant 8×8 tile (software cost; the hw win is the bounded
// per-tile merge table reported as hw-tile-MT).
func BenchmarkTiled(b *testing.B) {
	for _, side := range []int{16, 32, 64, 128} {
		side := side // explicit capture for the b.Run closure
		b.Run(fmt.Sprintf("%dx%d", side, side), func(b *testing.B) {
			g := detector.RandomIslands(side, side, side*side/64, 1.6, detector.NewRNG(11))
			var res *ccl.TiledResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = ccl.LabelTiled(g, ccl.TiledOptions{TileRows: 8, TileCols: 8})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.MaxTileGroups), "hw-tile-MT")
			b.ReportMetric(float64(ccl.SizeForPaper(side, side)), "hw-mono-MT")
		})
	}
}

// BenchmarkPacketStream measures the packet-stream serializer/parser the
// readout link uses.
func BenchmarkPacketStream(b *testing.B) {
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	packets, err := adapt.GenerateEvent(nil, 20, 1, 0, dig, nil)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	sw := adapt.NewStreamWriter(&buf)
	if err := sw.WriteEvent(packets); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := adapt.NewStreamReader(bytes.NewReader(wire))
		if _, err := sr.ReadEvent(20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCentroid2D measures the streaming hardware centroid stage (Fig
// 3's centroiding half) at the LST size.
func BenchmarkCentroid2D(b *testing.B) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(21)
	g := cam.Shower(cam.TypicalShower(rng), rng)
	res, err := ccl.Label(g, ccl.Options{Connectivity: grid.FourWay, CompactLabels: true})
	if err != nil {
		b.Fatal(err)
	}
	var out *design.CentroidOutput
	for i := 0; i < b.N; i++ {
		out, err = design.RunCentroid2D(g, res.Labels, ccl.SizeForPaper(43, 43))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(out.Report.LatencyCycles), "hw-cycles")
}

// BenchmarkStation measures the two-layer station end to end (E-builder
// included).
func BenchmarkStation(b *testing.B) {
	cfg := adapt.DefaultADAPT()
	cfg.ASICs = 8
	station, err := adapt.NewInstrument(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tracker := detector.DefaultTracker()
	tracker.Channels = station.X.Channels()
	tracker.Threshold = 0
	dig := detector.DefaultDigitizer()
	dig.NoiseRMS = 0
	rng := detector.NewRNG(31)
	xy := tracker.XYEvent(rng)
	xp, err := adapt.GenerateEvent(xy.X, cfg.ASICs, 1, 0, dig, nil)
	if err != nil {
		b.Fatal(err)
	}
	yp, err := adapt.GenerateEvent(xy.Y, cfg.ASICs, 1, 0, dig, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := station.ProcessEvent(xp, yp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(station.EventsPerSecond(), "hw-events/s")
}

// serveWorkload builds a rows×cols serving pipeline with the given labeling
// backend and one pre-digitized noise-free event at ~occ lit occupancy.
// serveTruth synthesizes shower-like image content at ~occ lit fraction:
// compact blobs of deposited charge, which is what the camera actually
// images (and what the run-based engine is shaped for) — Cherenkov showers
// are spatially clustered, not uniform salt-and-pepper scatter.
func serveTruth(rows, cols, channels int, occ float64, rng *detector.RNG) []grid.Value {
	px := rows * cols
	truth := make([]grid.Value, channels)
	target := int(float64(px)*occ + 0.5)
	lit := 0
	for tries := 0; lit < target && tries < 64*px; tries++ {
		cr, cc := rng.Intn(rows), rng.Intn(cols)
		rad := 1 + rng.Intn(2)
		for dr := -rad; dr <= rad; dr++ {
			for dc := -rad; dc <= rad; dc++ {
				if dr*dr+dc*dc > rad*rad {
					continue
				}
				r, c := cr+dr, cc+dc
				if r < 0 || r >= rows || c < 0 || c >= cols {
					continue
				}
				if i := r*cols + c; truth[i] == 0 && lit < target {
					truth[i] = grid.Value(3 + rng.Intn(30))
					lit++
				}
			}
		}
	}
	return truth
}

func serveWorkload(b *testing.B, rows, cols int, occ float64, backend adapt.ServeBackend) (*adapt.Pipeline, []adapt.Packet) {
	b.Helper()
	px := rows * cols
	cfg := adapt.Config{
		ASICs:             (px + adapt.ChannelsPerASIC - 1) / adapt.ChannelsPerASIC,
		SamplesPerChannel: 4,
		PedestalPerSample: 200,
		GainADC:           40,
		ThresholdPE:       2,
		Detection: design.TopConfig{
			TwoDimension: true,
			TwoD: design.Config{
				Rows: rows, Cols: cols,
				Connectivity: grid.FourWay,
				Stage:        design.StagePipelined,
			},
		},
		Serve: backend,
	}
	p, err := adapt.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := detector.NewRNG(42)
	truth := serveTruth(rows, cols, p.Channels(), occ, rng)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	dig.NoiseRMS = 0 // keep the lit set exactly at the target occupancy
	packets, err := adapt.GenerateEvent(truth, cfg.ASICs, 1, 0, dig, nil)
	if err != nil {
		b.Fatal(err)
	}
	return p, packets
}

// BenchmarkServeEvent sweeps the serving fast path across array sizes and
// occupancies, comparing the run-based labeling engine (Config.Serve =
// ServeRun, the default) against the per-pixel union-find reference
// (ServePixel). The run/pixel ratio at CTA-like occupancy (43x43, 1–2%) is
// the PR's headline number; run with -benchmem to confirm the 0 allocs/op
// steady state.
func BenchmarkServeEvent(b *testing.B) {
	sizes := [][2]int{{8, 10}, {16, 16}, {32, 32}, {43, 43}, {64, 64}}
	occs := []float64{0.005, 0.02, 0.10, 0.50}
	for _, sz := range sizes {
		for _, occ := range occs {
			for _, backend := range []adapt.ServeBackend{adapt.ServeRun, adapt.ServePixel} {
				sz, occ, backend := sz, occ, backend // explicit capture
				name := fmt.Sprintf("%dx%d/occ=%g%%/%s", sz[0], sz[1], occ*100, backend)
				b.Run(name, func(b *testing.B) {
					p, packets := serveWorkload(b, sz[0], sz[1], occ, backend)
					var rec adapt.EventRecord
					if err := p.ServeEvent(packets, &rec); err != nil {
						b.Fatal(err) // warmup: reach the zero-alloc steady state
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := p.ServeEvent(packets, &rec); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkServeEventFrame sweeps the full serving path at large-frame
// geometries, A/B-ing the forced single-core run backend against the
// tile-parallel engine (BENCH_7). End-to-end cost includes the O(channels)
// integration sweep, so the labeling delta is diluted relative to the
// engine-only sweep in internal/tileccl.
func BenchmarkServeEventFrame(b *testing.B) {
	for _, size := range []int{256, 512} {
		for _, bk := range []adapt.ServeBackend{adapt.ServeRunSingle, adapt.ServeTiled} {
			size, bk := size, bk
			b.Run(fmt.Sprintf("%dx%d/occ=2%%/%s", size, size, bk), func(b *testing.B) {
				p, packets := serveWorkload(b, size, size, 0.02, bk)
				defer p.Close()
				var rec adapt.EventRecord
				if err := p.ServeEvent(packets, &rec); err != nil {
					b.Fatal(err) // warmup: reach the zero-alloc steady state
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := p.ServeEvent(packets, &rec); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(rec.Islands)), "islands")
			})
		}
	}
}

// BenchmarkServeBatch measures the batched serving entry point the ingest
// workers use, at the CTA geometry and occupancy. The batched sub-benchmark
// is the CI-gated latency/alloc number; single serves the same events one
// ServeEvent call at a time — the batched-vs-single A/B recorded in BENCH_8.
func BenchmarkServeBatch(b *testing.B) {
	const batch = 32
	p, packets := serveWorkload(b, 43, 43, 0.02, adapt.ServeRun)
	events := make([][]adapt.Packet, batch)
	for i := range events {
		events[i] = packets
	}
	recs := make([]adapt.EventRecord, batch)
	errs := make([]error, batch)
	if n := p.ServeBatch(events, recs, errs); n != batch {
		b.Fatalf("warmup served %d/%d", n, batch)
	}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n := p.ServeBatch(events, recs, errs); n != batch {
				b.Fatalf("served %d/%d", n, batch)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/event")
	})
	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ev := range events {
				if err := p.ServeEvent(ev, &recs[0]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/event")
	})
}

// BenchmarkDeadtime measures the E14 trigger simulation itself.
func BenchmarkDeadtime(b *testing.B) {
	p, err := adapt.New(adapt.DefaultCTA())
	if err != nil {
		b.Fatal(err)
	}
	var res adapt.DeadtimeResult
	for i := 0; i < b.N; i++ {
		res, err = p.SimulateTrigger(adapt.TriggerConfig{
			RateHz: 15000, FIFODepth: 16, Events: 10000, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LossFraction*100, "hw-loss-pct")
}
