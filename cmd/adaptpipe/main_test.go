package main

import (
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestADAPTRun(t *testing.T) {
	out := runOut(t, "-config", "adapt", "-events", "3", "-seed", "5", "-v")
	for _, want := range []string{
		"20 ASICs (320 channels)", "1D island detection",
		"297619 events/s", "bottleneck: island",
		"calibrated pedestals", "event 0", "processed 3 events",
		"data reduction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCTARun(t *testing.T) {
	out := runOut(t, "-config", "cta", "-events", "2", "-seed", "9")
	for _, want := range []string{"2D 43x43 4-way", "Pipelined", "processed 2 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// CTA rate matches the §5.5 claim through the pipeline model.
	if !strings.Contains(out, "15209 events/s") {
		t.Errorf("expected 15209 events/s in:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-config", "nope"}, &sb); err == nil {
		t.Fatal("bad config must error")
	}
}
