// Command adaptpipe runs the full ADAPT front-end pipeline simulation end to
// end: synthetic events are digitized into ALPHA packets, calibrated,
// processed through pedestal subtraction / photon counting / zero-
// suppression / merge / island detection, and transmitted as downlink
// records.
//
// Usage:
//
//	adaptpipe -config adapt -events 5 -seed 3     # 1D flight configuration
//	adaptpipe -config cta   -events 3             # 43x43 2D CTA configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adaptpipe:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adaptpipe", flag.ContinueOnError)
	var (
		configName = fs.String("config", "adapt", "pipeline configuration: adapt (1D) or cta (2D 43x43)")
		events     = fs.Int("events", 5, "number of events to process")
		seed       = fs.Uint64("seed", 1, "workload seed")
		calEvents  = fs.Int("calibration", 20, "pedestal calibration events before the run")
		verbose    = fs.Bool("v", false, "print per-island details")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg adapt.Config
	switch *configName {
	case "adapt":
		cfg = adapt.DefaultADAPT()
	case "cta":
		cfg = adapt.DefaultCTA()
	default:
		return fmt.Errorf("unknown -config %q", *configName)
	}
	p, err := adapt.New(cfg)
	if err != nil {
		return err
	}
	rng := detector.NewRNG(*seed)
	dig := detector.DefaultDigitizer()

	fmt.Fprintf(out, "pipeline: %d ASICs (%d channels), mode=%s\n",
		cfg.ASICs, p.Channels(), modeName(cfg))
	fmt.Fprintf(out, "dataflow interval: %d cycles -> %.0f events/s (bottleneck: %s)\n",
		p.EventIntervalCycles(), p.EventsPerSecond(), p.Bottleneck())
	for _, s := range p.StageIntervals() {
		fmt.Fprintf(out, "  stage %-13s %6d cycles/event\n", s.Name, s.Cycles)
	}

	// Pedestal calibration pass.
	cal, err := adapt.GeneratePedestalEvents(*calEvents, cfg.ASICs, dig, rng)
	if err != nil {
		return err
	}
	if err := p.Calibrate(cal); err != nil {
		return err
	}
	fmt.Fprintf(out, "calibrated pedestals from %d light-free events (ch0: %d ADC)\n\n",
		*calEvents, p.Pedestal(0))

	var downlinkBytes, rawBytes, totalIslands int
	for ev := 0; ev < *events; ev++ {
		truth := makeTruth(cfg, rng)
		packets, err := adapt.GenerateEvent(truth, cfg.ASICs, uint32(ev), uint64(ev)*1000, dig, rng)
		if err != nil {
			return err
		}
		for i := range packets {
			rawBytes += packets[i].WireSize()
		}
		res, err := p.ProcessEvent(packets)
		if err != nil {
			return err
		}
		rec := adapt.RecordOf(res)
		wire := rec.Marshal()
		downlinkBytes += len(wire)
		totalIslands += len(rec.Islands)
		fmt.Fprintf(out, "event %d: %d islands, downlink record %d bytes\n",
			rec.Event, len(rec.Islands), len(wire))
		if *verbose {
			for _, is := range rec.Islands {
				fmt.Fprintf(out, "  island %-3d pixels %-4d sum %-8d centroid (%.2f, %.2f)\n",
					is.Label, is.Pixels, is.Sum, is.Row(), is.Col())
			}
		}
	}
	// §1's motivation made concrete: how much the on-board pipeline shrinks
	// the data volume the downlink must carry.
	fmt.Fprintf(out, "\nprocessed %d events: %.1f islands/event\n",
		*events, float64(totalIslands)/float64(*events))
	fmt.Fprintf(out, "raw front-end data: %d bytes (%.0f B/event)\n",
		rawBytes, float64(rawBytes)/float64(*events))
	fmt.Fprintf(out, "downlink records:   %d bytes (%.0f B/event)\n",
		downlinkBytes, float64(downlinkBytes)/float64(*events))
	if downlinkBytes > 0 {
		fmt.Fprintf(out, "on-board data reduction: %.0fx\n", float64(rawBytes)/float64(downlinkBytes))
	}
	return nil
}

func modeName(cfg adapt.Config) string {
	if cfg.Detection.TwoDimension {
		return fmt.Sprintf("2D %dx%d %s (%s)",
			cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols,
			cfg.Detection.TwoD.Connectivity, cfg.Detection.TwoD.Stage)
	}
	return "1D island detection + centroiding"
}

// makeTruth builds one event's true photo-electron image for the pipeline's
// channel array.
func makeTruth(cfg adapt.Config, rng *detector.RNG) []grid.Value {
	channels := cfg.ASICs * adapt.ChannelsPerASIC
	if cfg.Detection.TwoDimension {
		rows, cols := cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols
		cam := detector.CameraConfig{Rows: rows, Cols: cols, NSBMeanPE: 0.1}
		img := cam.Shower(cam.TypicalShower(rng), rng)
		flat := make([]grid.Value, channels)
		copy(flat, img.Flat())
		return flat
	}
	tracker := detector.DefaultTracker()
	tracker.Channels = channels
	tracker.Threshold = 0 // pipeline applies its own suppression
	return tracker.Event(rng).Values
}
