// Command cclsim labels a pixel image with any of the repository's CCL
// algorithms and prints the label map and extracted islands.
//
// Usage:
//
//	cclsim -gen shower -rows 43 -cols 43 -conn 4 -algo ccl-fixed -seed 7
//	cclsim -in image.txt -algo ccl-paper -show-merge-table
//
// Input images are ASCII art ('.'/'0' dark, anything else lit) unless a
// generator is selected.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/centroid"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cclsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cclsim", flag.ContinueOnError)
	var (
		inFile    = fs.String("in", "", "ASCII-art image file (mutually exclusive with -gen)")
		gen       = fs.String("gen", "", "generator: shower|muon-ring|islands|occupancy|checkerboard|spiral|cornercase")
		rows      = fs.Int("rows", 8, "generated image rows")
		cols      = fs.Int("cols", 10, "generated image cols")
		seed      = fs.Uint64("seed", 1, "generator seed")
		count     = fs.Int("count", 4, "island count for -gen islands")
		occupancy = fs.Float64("occupancy", 0.3, "lit fraction for -gen occupancy")
		connFlag  = fs.Int("conn", 4, "connectivity: 4 or 8")
		algo      = fs.String("algo", "ccl-fixed", "algorithm: ccl-fixed|ccl-paper|floodfill|two-pass|single-pass|fast-two-pass")
		showMT    = fs.Bool("show-merge-table", false, "print the resolved merge table (ccl-* algorithms)")
		showIsl   = fs.Bool("islands", true, "print extracted islands with centroids")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	conn := grid.Connectivity(*connFlag)
	if !conn.Valid() {
		return fmt.Errorf("invalid -conn %d (want 4 or 8)", *connFlag)
	}

	g, err := loadImage(*inFile, *gen, *rows, *cols, *seed, *count, *occupancy)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "input %dx%d, %d lit pixels (occupancy %.1f%%):\n%s\n\n",
		g.Rows(), g.Cols(), g.LitCount(), g.Occupancy()*100, g)

	var labels *grid.Labels
	switch *algo {
	case "ccl-fixed", "ccl-paper":
		mode := ccl.ModeFixed
		if *algo == "ccl-paper" {
			mode = ccl.ModePaper
		}
		res, err := ccl.Label(g, ccl.Options{
			Connectivity:  conn,
			Mode:          mode,
			CompactLabels: true,
			MergeTableCap: ccl.SizeFor(g.Rows(), g.Cols(), conn),
		})
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(out, "1.5-pass CCL (%s, %s): %d provisional groups -> %d islands\n",
			conn, mode, res.Groups, res.Islands)
		if *showMT {
			fmt.Fprintf(out, "merge table (resolved):\n%s\n", res.MergeTable)
		}
	default:
		var lab labeling.Labeler
		for _, l := range labeling.All() {
			if l.Name() == *algo {
				lab = l
			}
		}
		if lab == nil {
			return fmt.Errorf("unknown algorithm %q", *algo)
		}
		labels, err = lab.Label(g, conn)
		if err != nil {
			return err
		}
		labels.Compact()
		fmt.Fprintf(out, "%s (%s): %d islands\n", lab.Name(), conn, labels.Count())
	}

	fmt.Fprintf(out, "\nlabels:\n%s\n", labels)

	if *showIsl {
		islands := ccl.Islands(g, labels)
		fmt.Fprintf(out, "\n%-6s %6s %8s %8s %12s %10s\n", "label", "pixels", "sum", "bbox", "centroid", "hillas L/W")
		for _, is := range islands {
			c := centroid.Compute2D(is)
			h := centroid.HillasParameters(is)
			fmt.Fprintf(out, "%-6d %6d %8d %3dx%-4d (%5.2f,%5.2f) %5.2f/%5.2f\n",
				is.Label, is.Size(), is.Sum, is.Height(), is.Width(), c.Row, c.Col, h.Length, h.Width)
		}
	}
	return nil
}

func loadImage(inFile, gen string, rows, cols int, seed uint64, count int, occ float64) (*grid.Grid, error) {
	if inFile != "" && gen != "" {
		return nil, fmt.Errorf("-in and -gen are mutually exclusive")
	}
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(inFile, ".pgm") {
			return grid.ReadPGM(f)
		}
		data, err := io.ReadAll(f)
		if err != nil {
			return nil, err
		}
		return grid.Parse(string(data))
	}
	rng := detector.NewRNG(seed)
	switch gen {
	case "", "islands":
		return detector.RandomIslands(rows, cols, count, 1.5, rng), nil
	case "shower":
		cam := detector.CameraConfig{Rows: rows, Cols: cols, NSBMeanPE: 0.12, CleaningThresholdPE: 4}
		return cam.Shower(cam.TypicalShower(rng), rng), nil
	case "muon-ring":
		cam := detector.CameraConfig{Rows: rows, Cols: cols, NSBMeanPE: 0.12, CleaningThresholdPE: 4}
		return cam.Ring(cam.TypicalMuonRing(rng), rng), nil
	case "occupancy":
		return detector.RandomOccupancy(rows, cols, occ, rng), nil
	case "checkerboard":
		return detector.Checkerboard(rows, cols), nil
	case "spiral":
		return detector.Spiral(rows, cols), nil
	case "cornercase":
		return grid.Parse("#..#.\n#.##.\n###..")
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
