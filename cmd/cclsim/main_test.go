package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestGenerators(t *testing.T) {
	for _, gen := range []string{"islands", "shower", "muon-ring", "occupancy", "checkerboard", "spiral", "cornercase"} {
		out := runOut(t, "-gen", gen, "-rows", "12", "-cols", "12", "-conn", "8")
		if !strings.Contains(out, "islands") && !strings.Contains(out, "CCL") {
			t.Errorf("%s: output missing summary:\n%s", gen, out)
		}
	}
}

func TestPaperModeCornerCase(t *testing.T) {
	out := runOut(t, "-gen", "cornercase", "-algo", "ccl-paper", "-show-merge-table")
	if !strings.Contains(out, "2 islands") {
		t.Fatalf("corner case should split under paper mode:\n%s", out)
	}
	if !strings.Contains(out, "merge table") {
		t.Fatal("merge table not printed")
	}
	out = runOut(t, "-gen", "cornercase", "-algo", "ccl-fixed")
	if !strings.Contains(out, "1 islands") {
		t.Fatalf("fixed mode should find one island:\n%s", out)
	}
}

func TestBaselineAlgorithms(t *testing.T) {
	for _, algo := range []string{"floodfill", "two-pass", "single-pass", "fast-two-pass"} {
		out := runOut(t, "-gen", "spiral", "-rows", "9", "-cols", "9", "-algo", algo)
		if !strings.Contains(out, "1 islands") {
			t.Errorf("%s on spiral: want one island:\n%s", algo, out)
		}
	}
}

func TestFileInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img.txt")
	if err := os.WriteFile(path, []byte("#.#\n###\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "-in", path)
	if !strings.Contains(out, "1 islands") {
		t.Fatalf("file input: %s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-conn", "5"},
		{"-algo", "nope"},
		{"-gen", "nope"},
		{"-in", "/does/not/exist"},
		{"-in", "x", "-gen", "islands"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestPGMInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img.pgm")
	if err := os.WriteFile(path, []byte("P2\n3 2\n9\n5 0 7\n0 0 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "-in", path, "-conn", "4")
	if !strings.Contains(out, "2 islands") {
		t.Fatalf("pgm input: %s", out)
	}
}
