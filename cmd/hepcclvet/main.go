// Command hepcclvet is the module's invariant checker: it runs the custom
// analyzer suite of internal/analysis (marklint, hotpathalloc, atomicring,
// nofloat, errwrapcheck, barrierproto, acctproto), the compiler-shelled
// escape-analysis and bounds-check-elimination cross-checks, and go vet's
// standard analyzer set, and exits non-zero on any finding. CI runs it as a
// required step; locally:
//
//	go run ./cmd/hepcclvet ./...
//	make vet
//
// Flags:
//
//	-vet=false      skip the go vet standard set
//	-escapes=false  skip the `go build -gcflags=-m` escape cross-check
//	-bounds=false   skip the `-d=ssa/check_bce` bounds-check cross-check
//	-funcs          print the hot-path closure (the functions the hot-path
//	                rules apply to) and exit
//
// The analyzers themselves check the module's non-test sources; go vet
// still covers tests. See DESIGN.md §10 and §15 for the invariant
// catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"github.com/wustl-adapt/hepccl/internal/analysis"
	"github.com/wustl-adapt/hepccl/internal/analysis/boundscheck"
	"github.com/wustl-adapt/hepccl/internal/analysis/escapecheck"
	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

func main() {
	runVet := flag.Bool("vet", true, "also run go vet's standard analyzer set")
	runEscapes := flag.Bool("escapes", true, "cross-check hot paths against go build -gcflags=-m escape output")
	runBounds := flag.Bool("bounds", true, "cross-check hot loops against go build -d=ssa/check_bce output")
	listFuncs := flag.Bool("funcs", false, "print the hot-path closure and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hepcclvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	prog, err := load.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	if *listFuncs {
		marks := hepcclmark.Collect(prog)
		hot := hepcclmark.ComputeHotSet(prog, marks)
		for _, hf := range hot.Sorted() {
			pos := prog.Fset.Position(hf.Decl.Pos())
			fmt.Printf("%s:%d: %s.%s\n", rel(root, pos.Filename), pos.Line, hf.Pkg.Path, hf.Describe())
		}
		return
	}

	diags, err := framework.Run(prog, analysis.All())
	if err != nil {
		fatal(err)
	}
	if *runEscapes {
		out, err := escapecheck.Build(root)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, escapecheck.Check(prog, root, out)...)
	}
	if *runBounds {
		out, err := boundscheck.Build(root)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, boundscheck.Check(prog, root, out)...)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s [%s]\n", rel(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}

	vetFailed := false
	if *runVet {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = root
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}
	if len(diags) > 0 || vetFailed {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hepcclvet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func rel(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(r) {
		return r
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
