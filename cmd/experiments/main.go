// Command experiments regenerates the paper's tables and figures and prints
// each cell next to its published value.
//
// Usage:
//
//	experiments                 # run everything (E1–E10)
//	experiments table1 table3   # run selected experiments
//	experiments -list           # list experiment ids
//	experiments -csv fig10      # emit a figure's data series as CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wustl-adapt/hepccl/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list = fs.Bool("list", false, "list experiment ids and exit")
		csv  = fs.Bool("csv", false, "emit CSV data series (fig10/fig11 only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-11s %s\n", e.ID, e.Title)
		}
		return nil
	}
	ids := fs.Args()
	if *csv {
		if len(ids) != 1 {
			return fmt.Errorf("-csv needs exactly one of: fig10, fig11")
		}
		switch ids[0] {
		case "fig10":
			return experiments.Fig10CSV(out)
		case "fig11":
			return experiments.Fig11CSV(out)
		default:
			return fmt.Errorf("no CSV series for %q", ids[0])
		}
	}
	if len(ids) == 0 {
		return experiments.RunAll(out)
	}
	for i, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := e.Run(out); err != nil {
			return err
		}
	}
	return nil
}
