package main

import (
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestList(t *testing.T) {
	out := runOut(t, "-list")
	for _, want := range []string{"table1", "table4", "fig10", "throughput", "cornercase", "cta"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSelectedExperiments(t *testing.T) {
	out := runOut(t, "table1", "throughput")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "E7") {
		t.Fatalf("selected run wrong:\n%s", out)
	}
	if strings.Contains(out, "Table 4") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunAllDefault(t *testing.T) {
	out := runOut(t)
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4", "Fig 10", "Fig 11", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, want) {
			t.Errorf("full run missing %q", want)
		}
	}
}

func TestCSV(t *testing.T) {
	out := runOut(t, "-csv", "fig10")
	if !strings.HasPrefix(out, "size,pixels,latency_4way_paper") {
		t.Fatalf("fig10 csv header wrong: %q", out[:60])
	}
	out = runOut(t, "-csv", "fig11")
	if !strings.Contains(out, "ff_8way_model") {
		t.Fatal("fig11 csv header wrong")
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"nope"},
		{"-csv"},
		{"-csv", "table1"},
		{"-csv", "fig10", "fig11"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
