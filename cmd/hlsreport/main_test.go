package main

import (
	"os"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestSingleReport(t *testing.T) {
	out := runOut(t, "-stage", "pipelined", "-conn", "4", "-rows", "8", "-cols", "10")
	for _, want := range []string{"Pipelined", "4-way", "8x10", "340", "4229", "4096", "loop breakdown", "scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllStages(t *testing.T) {
	out := runOut(t, "-all", "-conn", "8")
	for _, want := range []string{"Baseline", "Bind Storage", "Unrolled", "Pipelined", "1398", "1718", "1578"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestScalingSweep(t *testing.T) {
	out := runOut(t, "-scaling", "-conn", "4")
	for _, want := range []string{"8x10", "16x16", "24x24", "32x32", "43x43", "64x64", "6575", "14396"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestStreamStatsShown(t *testing.T) {
	out := runOut(t, "-stage", "pipelined", "-conn", "8", "-rows", "8", "-cols", "10")
	if !strings.Contains(out, "stream_topleft") {
		t.Fatalf("8-way report should show diagonal streams:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-stage", "nope"},
		{"-conn", "3"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestTraceFlag(t *testing.T) {
	path := t.TempDir() + "/scan.vcd"
	out := runOut(t, "-stage", "pipelined", "-rows", "4", "-cols", "5", "-trace", path)
	if !strings.Contains(out, "waveform") {
		t.Fatalf("trace note missing:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "$enddefinitions $end") {
		t.Fatalf("VCD malformed:\n%s", data)
	}
}
