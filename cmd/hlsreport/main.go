// Command hlsreport prints Vitis-style synthesis reports for the island-
// detection designs: latency, initiation interval, and BRAM/FF/LUT with
// device utilization, plus the per-loop latency breakdown.
//
// Usage:
//
//	hlsreport -stage pipelined -conn 4 -rows 43 -cols 43
//	hlsreport -all                # all four stages at one size
//	hlsreport -scaling -conn 8    # the §5.5 size sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hlsreport:", err)
		os.Exit(1)
	}
}

var stageNames = map[string]design.Stage{
	"baseline":     design.StageBaseline,
	"bind-storage": design.StageBindStorage,
	"unrolled":     design.StageUnrolled,
	"pipelined":    design.StagePipelined,
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hlsreport", flag.ContinueOnError)
	var (
		stageFlag = fs.String("stage", "pipelined", "baseline|bind-storage|unrolled|pipelined")
		connFlag  = fs.Int("conn", 4, "connectivity: 4 or 8")
		rows      = fs.Int("rows", 8, "array rows (NROWS)")
		cols      = fs.Int("cols", 10, "array cols (NCOLS)")
		all       = fs.Bool("all", false, "report all four optimization stages")
		scaling   = fs.Bool("scaling", false, "report the pipelined design across the paper's sizes")
		seed      = fs.Uint64("seed", 1, "workload seed for the simulated event")
		traceFile = fs.String("trace", "", "write a VCD waveform of the scan loop to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	conn := grid.Connectivity(*connFlag)
	if !conn.Valid() {
		return fmt.Errorf("invalid -conn %d", *connFlag)
	}

	if *scaling {
		for _, sz := range [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}} {
			if err := report(out, design.StagePipelined, conn, sz[0], sz[1], *seed, false, ""); err != nil {
				return err
			}
		}
		return nil
	}
	if *all {
		for _, st := range design.Stages() {
			if err := report(out, st, conn, *rows, *cols, *seed, true, ""); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	st, ok := stageNames[strings.ToLower(*stageFlag)]
	if !ok {
		return fmt.Errorf("unknown stage %q", *stageFlag)
	}
	return report(out, st, conn, *rows, *cols, *seed, true, *traceFile)
}

func report(out io.Writer, st design.Stage, conn grid.Connectivity, rows, cols int, seed uint64, breakdown bool, traceFile string) error {
	rng := detector.NewRNG(seed)
	g := detector.RandomIslands(rows, cols, max(2, rows*cols/80), 1.5, rng)
	// Paper merge-table sizing (the design default) so reports match the
	// published tables; sparse workloads cannot overflow it, but if one
	// does, retry with the 4-way-safe capacity and note it.
	cfg := design.Config{Rows: rows, Cols: cols, Connectivity: conn, Stage: st}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceWriter = f
		fmt.Fprintf(out, "writing scan-loop waveform to %s\n", traceFile)
	}
	res, err := design.Run(g, cfg)
	if err != nil {
		cfg.MergeTableCap = ccl.SizeFor(rows, cols, conn)
		res, err = design.Run(g, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "note: workload overflowed the paper's merge-table sizing; using %d entries\n",
			cfg.MergeTableCap)
	}
	r := res.Report
	dev := resource.KintexXC7K325T
	fmt.Fprintf(out, "== %s | %s | %s | %s @ %.0f MHz ==\n",
		r.Design, r.Stage, r.Connectivity, r.SizeLabel(), r.ClockMHz)
	fmt.Fprintf(out, "latency %8d cycles (%.2f us)   II %8d   inner-loop II %d\n",
		r.LatencyCycles, r.LatencySeconds()*1e6, r.II, r.InnerII)
	fmt.Fprintf(out, "events/s %8.0f   dynamic cycles this event %d\n",
		r.EventsPerSecond(), r.DynamicCycles)
	fmt.Fprintf(out, "BRAM18K %4d (%2d%%)   FF %7d (%2d%%)   LUT %7d (%2d%%)  on %s\n",
		r.Usage.BRAM18K, dev.PctBRAM(r.Usage.BRAM18K),
		r.Usage.FF, dev.PctFF(r.Usage.FF),
		r.Usage.LUT, dev.PctLUT(r.Usage.LUT), dev.Name)
	if breakdown {
		fmt.Fprintf(out, "loop breakdown:\n%s\n", indent(res.Ledger.Breakdown(), "  "))
		for _, s := range res.Streams {
			fmt.Fprintf(out, "  stream %-16s writes %6d  max occupancy %d\n",
				s.Name, s.Writes, s.MaxOccupancy)
		}
	}
	return nil
}

func indent(s, pre string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n")
}
