package main

import (
	"io"
	"strings"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/server"
)

func TestBuildConfigCTA(t *testing.T) {
	cfg, err := buildConfig("cta", 4, 2, 32, "drop", true, false, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pipeline.ASICs != 116 || cfg.Pipeline.SamplesPerChannel != 4 {
		t.Fatalf("pipeline config = %d ASICs, %d samples; want 116, 4",
			cfg.Pipeline.ASICs, cfg.Pipeline.SamplesPerChannel)
	}
	if cfg.Workers != 2 || cfg.QueueDepth != 32 {
		t.Fatalf("workers=%d queue=%d, want 2, 32", cfg.Workers, cfg.QueueDepth)
	}
	if cfg.Policy != server.PolicyDrop || !cfg.PaceHardware || cfg.FullPipeline {
		t.Fatalf("policy=%v paceHW=%v full=%v", cfg.Policy, cfg.PaceHardware, cfg.FullPipeline)
	}
	if len(cfg.Calibration) != 10 {
		t.Fatalf("calibration events = %d, want 10", len(cfg.Calibration))
	}
	for i, packets := range cfg.Calibration {
		if len(packets) != cfg.Pipeline.ASICs {
			t.Fatalf("calibration event %d has %d packets, want %d", i, len(packets), cfg.Pipeline.ASICs)
		}
	}
	// The resolved config must actually construct a server.
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
}

func TestBuildConfigADAPTKeepsSamples(t *testing.T) {
	cfg, err := buildConfig("adapt", 0, 1, 8, "block", false, true, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pipeline.SamplesPerChannel != 16 {
		t.Fatalf("samples=0 must keep the config default 16, got %d", cfg.Pipeline.SamplesPerChannel)
	}
	if cfg.Policy != server.PolicyBlock || !cfg.FullPipeline {
		t.Fatalf("policy=%v full=%v, want block + full", cfg.Policy, cfg.FullPipeline)
	}
	if cfg.Calibration != nil {
		t.Fatalf("calibration=0 must produce no events, got %d", len(cfg.Calibration))
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig("nope", 4, 1, 8, "drop", false, false, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "-config") {
		t.Fatalf("bad config name: got %v", err)
	}
	if _, err := buildConfig("cta", 4, 1, 8, "spill", false, false, 0, 1); err == nil ||
		!strings.Contains(err.Error(), "-policy") {
		t.Fatalf("bad policy name: got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-config", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown config must fail before listening")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag must fail")
	}
}
