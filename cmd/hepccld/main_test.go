package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/server"
)

func TestBuildConfigCTA(t *testing.T) {
	cfg, err := buildConfig(daemonOpts{
		config: "cta", samples: 4, workers: 2, queue: 32, policy: "drop",
		paceHW: true, calibration: 10, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pipeline.ASICs != 116 || cfg.Pipeline.SamplesPerChannel != 4 {
		t.Fatalf("pipeline config = %d ASICs, %d samples; want 116, 4",
			cfg.Pipeline.ASICs, cfg.Pipeline.SamplesPerChannel)
	}
	if cfg.Workers != 2 || cfg.QueueDepth != 32 {
		t.Fatalf("workers=%d queue=%d, want 2, 32", cfg.Workers, cfg.QueueDepth)
	}
	if cfg.Policy != server.PolicyDrop || !cfg.PaceHardware || cfg.FullPipeline {
		t.Fatalf("policy=%v paceHW=%v full=%v", cfg.Policy, cfg.PaceHardware, cfg.FullPipeline)
	}
	if len(cfg.Calibration) != 10 {
		t.Fatalf("calibration events = %d, want 10", len(cfg.Calibration))
	}
	for i, packets := range cfg.Calibration {
		if len(packets) != cfg.Pipeline.ASICs {
			t.Fatalf("calibration event %d has %d packets, want %d", i, len(packets), cfg.Pipeline.ASICs)
		}
	}
	// The resolved config must actually construct a server.
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
}

func TestBuildConfigADAPTKeepsSamples(t *testing.T) {
	cfg, err := buildConfig(daemonOpts{
		config: "adapt", workers: 1, queue: 8, policy: "block", full: true, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pipeline.SamplesPerChannel != 16 {
		t.Fatalf("samples=0 must keep the config default 16, got %d", cfg.Pipeline.SamplesPerChannel)
	}
	if cfg.Policy != server.PolicyBlock || !cfg.FullPipeline {
		t.Fatalf("policy=%v full=%v, want block + full", cfg.Policy, cfg.FullPipeline)
	}
	if cfg.Calibration != nil {
		t.Fatalf("calibration=0 must produce no events, got %d", len(cfg.Calibration))
	}
}

// TestBuildConfigHardening: the fault-tolerance flags must flow through to
// the server configuration verbatim.
func TestBuildConfigHardening(t *testing.T) {
	cfg, err := buildConfig(daemonOpts{
		config: "adapt", workers: 1, queue: 8, policy: "drop", seed: 1,
		idleTimeout:       90 * time.Second,
		assemblyTimeout:   2 * time.Second,
		breakerBadPackets: 512,
		breakerWindow:     3 * time.Second,
		degradedLoss:      0.02,
		overloadLoss:      0.2,
		degradedResync:    0.07,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IdleTimeout != 90*time.Second || cfg.AssemblyTimeout != 2*time.Second {
		t.Fatalf("timeouts = %v/%v", cfg.IdleTimeout, cfg.AssemblyTimeout)
	}
	if cfg.BreakerBadPackets != 512 || cfg.BreakerWindow != 3*time.Second {
		t.Fatalf("breaker = %d/%v", cfg.BreakerBadPackets, cfg.BreakerWindow)
	}
	if cfg.DegradedLossRate != 0.02 || cfg.OverloadLossRate != 0.2 || cfg.DegradedResyncRate != 0.07 {
		t.Fatalf("health thresholds = %g/%g/%g",
			cfg.DegradedLossRate, cfg.OverloadLossRate, cfg.DegradedResyncRate)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig(daemonOpts{config: "nope", samples: 4, workers: 1, queue: 8, policy: "drop", seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "-config") {
		t.Fatalf("bad config name: got %v", err)
	}
	if _, err := buildConfig(daemonOpts{config: "cta", samples: 4, workers: 1, queue: 8, policy: "spill", seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "-policy") {
		t.Fatalf("bad policy name: got %v", err)
	}
	if _, err := buildConfig(daemonOpts{config: "cta", workers: 1, queue: 8, policy: "drop", overloadLoss: 1.5}); err == nil ||
		!strings.Contains(err.Error(), "-overload-loss") {
		t.Fatalf("out-of-range threshold: got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-config", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown config must fail before listening")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag must fail")
	}
	if err := run([]string{"-degraded-loss", "2"}, io.Discard); err == nil {
		t.Fatal("out-of-range health threshold must fail before listening")
	}
	if err := run([]string{"-record", "/tmp/x", "-replay", "/tmp/x"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "same directory") {
		t.Fatalf("record and replay over one directory must fail: got %v", err)
	}
	if err := run([]string{"-replay-rate", "-1"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-replay-rate") {
		t.Fatalf("negative replay rate must fail: got %v", err)
	}
}

// TestBuildConfigRecordFlags: the durability flags must flow through.
func TestBuildConfigRecordFlags(t *testing.T) {
	cfg, err := buildConfig(daemonOpts{
		config: "adapt", workers: 1, queue: 8, policy: "block", seed: 1,
		recordDir: "/data/wal", recordSegMB: 16, recordRetain: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RecordDir != "/data/wal" || cfg.RecordSegmentBytes != 16<<20 || cfg.RecordRetain != 4 {
		t.Fatalf("record config = %q/%d/%d", cfg.RecordDir, cfg.RecordSegmentBytes, cfg.RecordRetain)
	}
}

// TestRunReplayEmptyLog: -replay over an empty directory must come up, serve
// zero events, print the summary, and exit cleanly.
func TestRunReplayEmptyLog(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-config", "adapt", "-policy", "block", "-calibration", "0",
		"-listen", "127.0.0.1:0", "-log-interval", "0",
		"-replay", t.TempDir(),
	}, &out)
	if err != nil {
		t.Fatalf("replay over empty log: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay: events=0") {
		t.Fatalf("missing replay summary:\n%s", out.String())
	}
}
