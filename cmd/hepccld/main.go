// Command hepccld is the event-ingest daemon: it listens for ALPHA packet
// streams over TCP, assembles events per connection, shards them across a
// pool of calibrated ADAPT pipelines, and streams downlink records back —
// the serving layer that turns the paper's per-event pipeline into a
// network service (§6's system-integration direction).
//
// Usage:
//
//	hepccld -config cta -samples 4 -workers 2 -queue 64        # CTA 43x43
//	hepccld -config adapt -listen :9310 -stats :9311 -pace-hw  # 1D flight
//	hepccld -config 512x512 -tile-workers 4                    # megapixel, tiled CCL
//	hepccld -config 512x512 -serve single                      # force one-core A/B
//	hepccld -record /data/wal -policy block                    # durable ingest
//	hepccld -replay /data/wal -replay-rate 2 -policy block     # re-serve at 2x
//
// The -stats endpoint serves GET /stats (JSON counters, queue high-water
// mark, latency percentiles, EWMA events_per_sec and ns_per_event gauges) and
// GET /healthz; -pprof additionally exposes net/http/pprof there. With -policy drop the
// per-worker queues behave like the §6 derandomizer FIFO of `experiments
// deadtime` (E14); -pace-hw additionally throttles each worker to the
// modeled FPGA event interval so measured loss-vs-depth curves are directly
// comparable to that simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hepccld:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hepccld", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		listen      = fs.String("listen", "127.0.0.1:9310", "event-ingest listen address")
		statsAddr   = fs.String("stats", "", "stats endpoint address (empty disables)")
		pprofOn     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -stats address")
		configName  = fs.String("config", "cta", "pipeline configuration: adapt (1D), cta (2D 43x43), or RxC (2D frame geometry, e.g. 512x512)")
		samples     = fs.Int("samples", 4, "waveform samples per channel on the wire (0 keeps the config default)")
		serveName   = fs.String("serve", "auto", "2D labeling backend: auto (size cutover), single (run-based, one core), tiled (tile-parallel pool), pixel (reference)")
		tileWorkers = fs.Int("tile-workers", 0, "tile-parallel labeling pool size (0 = GOMAXPROCS, capped)")
		workers     = fs.Int("workers", 1, "pipeline worker pool size")
		queue       = fs.Int("queue", 64, "per-worker derandomizer queue depth (events)")
		policyName  = fs.String("policy", "drop", "queue overflow policy: drop (derandomizer) or block (backpressure)")
		shards      = fs.Int("acceptor-shards", 1, "accept-loop count; >1 uses SO_REUSEPORT listeners with lane-per-core worker placement")
		paceHW      = fs.Bool("pace-hw", false, "throttle workers to the modeled FPGA event interval (E14 comparison)")
		paceRate    = fs.Float64("pace-rate", 0, "throttle each worker to this many events/s (fixed-capacity backend model; 0 disables)")
		full        = fs.Bool("full", false, "use the cycle-accurate ProcessEvent path instead of the serving fast path")
		calibration = fs.Int("calibration", 20, "pedestal calibration events per worker at startup")
		seed        = fs.Uint64("seed", 1, "calibration workload seed")
		logEvery    = fs.Duration("log-interval", 5*time.Second, "periodic stats log interval (0 disables)")

		idleTimeout = fs.Duration("idle-timeout", 0,
			"close connections idle between events for this long (0 disables)")
		assemblyTimeout = fs.Duration("assembly-timeout", 0,
			"bound on assembling one event once its first byte arrives (0 disables)")
		breakerBad = fs.Int("breaker-bad-packets", 0,
			"cut a connection after this many bad packets inside -breaker-window (0 disables)")
		breakerWindow = fs.Duration("breaker-window", 0,
			"sliding window for -breaker-bad-packets (0 uses the server default)")
		degradedLoss = fs.Float64("degraded-loss", 0,
			"recent loss fraction above which /healthz reports degraded (0 uses the default)")
		overloadLoss = fs.Float64("overload-loss", 0,
			"recent loss fraction above which /healthz reports overloaded, HTTP 503 (0 uses the default)")
		degradedResync = fs.Float64("degraded-resync", 0,
			"recent bad-packets-per-event fraction above which /healthz reports degraded (0 uses the default)")

		recordDir = fs.String("record", "",
			"append every admitted event's raw frames to a write-ahead log in this directory (empty disables)")
		recordSegMB  = fs.Int("record-segment-mb", 64, "WAL segment size in MiB")
		recordRetain = fs.Int("record-retain", 0,
			"keep only the newest N sealed WAL segments (0 keeps everything)")
		replayDir = fs.String("replay", "",
			"replay a recorded WAL through the local server instead of serving external clients, then exit")
		replayRate = fs.Float64("replay-rate", 0,
			"replay pacing multiplier over the recorded timing: 1 = recorded speed, 2 = double, 0 = as fast as possible")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := buildConfig(daemonOpts{
		config: *configName, samples: *samples, serve: *serveName, tileWorkers: *tileWorkers,
		workers: *workers, queue: *queue,
		policy: *policyName, shards: *shards, paceHW: *paceHW, paceRate: *paceRate, full: *full,
		calibration: *calibration, seed: *seed,
		idleTimeout: *idleTimeout, assemblyTimeout: *assemblyTimeout,
		breakerBadPackets: *breakerBad, breakerWindow: *breakerWindow,
		degradedLoss: *degradedLoss, overloadLoss: *overloadLoss,
		degradedResync: *degradedResync,
		recordDir:      *recordDir, recordSegMB: *recordSegMB, recordRetain: *recordRetain,
		replayDir: *replayDir, replayRate: *replayRate,
	})
	if err != nil {
		return err
	}
	cfg.StatsAddr = *statsAddr
	cfg.EnablePprof = *pprofOn
	cfg.LogInterval = *logEvery
	cfg.Logger = log.New(out, "", log.LstdFlags)

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *replayDir != "" {
		return runReplay(srv, *listen, *replayDir, *replayRate, cfg.Logger, out)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*listen) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		cfg.Logger.Printf("hepccld: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		<-errc // ErrServerClosed
		snap := srv.StatsSnapshot()
		cfg.Logger.Printf("hepccld: drained: in=%d out=%d dropped=%d", snap.EventsIn, snap.EventsOut, snap.Dropped)
		return nil
	}
}

// runReplay serves the configured pipeline on addr, streams the recorded WAL
// through it, prints the accounting summary, and drains.
func runReplay(srv *server.Server, addr, dir string, rate float64, logger *log.Logger, out io.Writer) error {
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ListenAndServe(addr) }()
	// Wait for the listener so the replay dial cannot race the bind.
	for i := 0; srv.Addr() == nil; i++ {
		select {
		case err := <-serveDone:
			return err
		default:
		}
		if i > 1000 {
			return fmt.Errorf("replay: server never bound %s", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, rerr := server.Replay(ctx, server.ReplayOptions{
		Addr:   srv.Addr().String(),
		Dir:    dir,
		Rate:   rate,
		Logger: logger,
	})
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	<-serveDone
	snap := srv.StatsSnapshot()
	fmt.Fprintf(out, "replay: events=%d records=%d served=%d dropped=%d bad=%d incomplete=%d crc=%08x torn=%d\n",
		res.Events, res.DownlinkRecords, snap.EventsOut, snap.Dropped,
		snap.BadEvents, snap.IncompleteEvents, res.DownlinkCRC, res.Torn)
	return rerr
}

// daemonOpts carries the resolved flag values buildConfig turns into a
// server configuration.
type daemonOpts struct {
	config      string
	samples     int
	serve       string
	tileWorkers int
	workers     int
	queue       int
	policy      string
	shards      int
	paceHW      bool
	paceRate    float64
	full        bool
	calibration int
	seed        uint64

	idleTimeout       time.Duration
	assemblyTimeout   time.Duration
	breakerBadPackets int
	breakerWindow     time.Duration
	degradedLoss      float64
	overloadLoss      float64
	degradedResync    float64

	recordDir    string
	recordSegMB  int
	recordRetain int
	replayDir    string
	replayRate   float64
}

// parseGeometry parses a "RxC" frame geometry like "512x512" or "768x1024".
func parseGeometry(s string) (rows, cols int, err error) {
	i := strings.IndexByte(s, 'x')
	if i <= 0 || i == len(s)-1 {
		return 0, 0, fmt.Errorf("geometry %q is not RxC", s)
	}
	if rows, err = strconv.Atoi(s[:i]); err != nil {
		return 0, 0, fmt.Errorf("geometry %q: bad rows", s)
	}
	if cols, err = strconv.Atoi(s[i+1:]); err != nil {
		return 0, 0, fmt.Errorf("geometry %q: bad cols", s)
	}
	if rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("geometry %q: dimensions must be positive", s)
	}
	return rows, cols, nil
}

// buildConfig resolves flags into a server configuration.
func buildConfig(o daemonOpts) (server.Config, error) {
	var pcfg adapt.Config
	switch o.config {
	case "adapt":
		pcfg = adapt.DefaultADAPT()
	case "cta":
		pcfg = adapt.DefaultCTA()
	default:
		rows, cols, err := parseGeometry(o.config)
		if err != nil {
			return server.Config{}, fmt.Errorf("unknown -config %q (want adapt, cta, or RxC like 512x512)", o.config)
		}
		pcfg = adapt.DefaultFrame(rows, cols)
	}
	if o.samples > 0 {
		pcfg.SamplesPerChannel = o.samples
	}
	switch o.serve {
	case "", "auto":
		pcfg.Serve = adapt.ServeRun
	case "pixel":
		pcfg.Serve = adapt.ServePixel
	case "single":
		pcfg.Serve = adapt.ServeRunSingle
	case "tiled":
		pcfg.Serve = adapt.ServeTiled
	default:
		return server.Config{}, fmt.Errorf("unknown -serve %q (want auto, single, tiled, or pixel)", o.serve)
	}
	if o.tileWorkers < 0 {
		return server.Config{}, fmt.Errorf("-tile-workers = %d must be >= 0", o.tileWorkers)
	}
	pcfg.TileWorkers = o.tileWorkers
	var policy server.OverflowPolicy
	switch o.policy {
	case "drop":
		policy = server.PolicyDrop
	case "block":
		policy = server.PolicyBlock
	default:
		return server.Config{}, fmt.Errorf("unknown -policy %q", o.policy)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"-degraded-loss", o.degradedLoss},
		{"-overload-loss", o.overloadLoss},
		{"-degraded-resync", o.degradedResync},
	} {
		if p.v < 0 || p.v >= 1 {
			return server.Config{}, fmt.Errorf("%s = %g outside [0, 1)", p.name, p.v)
		}
	}
	if o.paceRate < 0 {
		return server.Config{}, fmt.Errorf("-pace-rate = %g must be >= 0", o.paceRate)
	}
	if o.replayRate < 0 {
		return server.Config{}, fmt.Errorf("-replay-rate = %g must be >= 0", o.replayRate)
	}
	if o.recordDir != "" && o.recordDir == o.replayDir {
		return server.Config{}, fmt.Errorf("-record and -replay point at the same directory %q", o.recordDir)
	}
	if o.recordSegMB < 0 {
		return server.Config{}, fmt.Errorf("-record-segment-mb = %d must be >= 0", o.recordSegMB)
	}
	cfg := server.Config{
		Pipeline:       pcfg,
		Workers:        o.workers,
		QueueDepth:     o.queue,
		Policy:         policy,
		AcceptorShards: o.shards,
		PaceHardware:   o.paceHW,
		PaceRate:       o.paceRate,
		FullPipeline:   o.full,

		IdleTimeout:        o.idleTimeout,
		AssemblyTimeout:    o.assemblyTimeout,
		BreakerBadPackets:  o.breakerBadPackets,
		BreakerWindow:      o.breakerWindow,
		DegradedLossRate:   o.degradedLoss,
		OverloadLossRate:   o.overloadLoss,
		DegradedResyncRate: o.degradedResync,

		RecordDir:          o.recordDir,
		RecordSegmentBytes: int64(o.recordSegMB) << 20,
		RecordRetain:       o.recordRetain,
	}
	if o.calibration > 0 {
		dig := detector.DefaultDigitizer()
		dig.Samples = pcfg.SamplesPerChannel
		cal, err := adapt.GeneratePedestalEvents(o.calibration, pcfg.ASICs, dig, detector.NewRNG(o.seed))
		if err != nil {
			return server.Config{}, err
		}
		cfg.Calibration = cal
	}
	return cfg, nil
}
