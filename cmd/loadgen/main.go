// Command loadgen drives a hepccld daemon with a synthetic instrument
// workload over real sockets: it digitizes internal/detector events into
// ALPHA packet streams, replays them at a target event rate over N parallel
// connections, and reports achieved throughput and loss — the end-to-end
// check of the §5.5 "15k events/s" claim through the full serving stack.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:9310 -config cta -events 60000 -rate 15000 -conns 4
//	loadgen -poisson -rate 15000 -events 60000     # E14-style Poisson arrivals
//	loadgen -rate 0 -events 60000 -conns 4         # saturation sweep
//
// With -poisson the inter-event gaps are exponential, reproducing the
// trigger process of `experiments deadtime` (E14) so the daemon's measured
// loss fraction vs -queue depth can be compared against that simulation.
//
// With -rate 0 the generator runs in saturation mode: each connection writes
// events back-to-back with per-event ids and send timestamps, and the reader
// matches downlink records to sends, reporting the maximum sustained served
// rate plus end-to-end p50/p99 latency as measured by the client.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/chaos"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type connResult struct {
	sent     int
	received int
	islands  int
	err      error

	// target indexes the -addr entry this connection drove; connects counts
	// successful dials (the chaos path reconnects, so it can exceed 1).
	target   int
	connects int

	// lats holds one client-measured end-to-end latency (send → record
	// received) per matched event, populated only in saturation mode.
	lats []time.Duration

	// Fault accounting, populated on the chaos path.
	corrupted   int // events with at least one injected frame fault
	partials    int // events cut mid-assembly by a deliberate or real disconnect
	reconnects  int // connections re-established after a cut
	dialRetries int // extra dial attempts absorbed by backoff
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", "127.0.0.1:9310", "ingest address, or a comma-separated list; connections round-robin across targets")
		configName = fs.String("config", "cta", "pipeline configuration: adapt (1D), cta (2D 43x43), or RxC (2D frame geometry, e.g. 512x512)")
		samples    = fs.Int("samples", 4, "waveform samples per channel on the wire (0 keeps the config default)")
		events     = fs.Int("events", 60000, "total events to send across all connections")
		rate       = fs.Float64("rate", 15000, "aggregate target event rate in events/s (0 = unpaced)")
		conns      = fs.Int("conns", 4, "parallel connections")
		poisson    = fs.Bool("poisson", false, "exponential inter-event gaps (Poisson arrivals, as in E14)")
		templates  = fs.Int("templates", 32, "distinct pre-digitized events to cycle through")
		seed       = fs.Uint64("seed", 1860, "workload seed")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-read socket timeout")
		burst      = fs.Duration("burst", 2*time.Millisecond, "pacing granularity: events due within this window are sent as one burst")
		minRate    = fs.Float64("min-rate", 0, "fail unless the served rate reaches this many events/s")
		statsURL   = fs.String("stats-url", "", "hepccld stats endpoint to fetch and print after the run")

		corrupt = fs.Float64("corrupt", 0,
			"per-frame fault probability, split evenly between bit flips and truncations")
		disconnect = fs.Float64("disconnect", 0,
			"per-event probability of cutting the connection mid-event and reconnecting")
		faultSeed = fs.Uint64("fault-seed", 0, "fault-injection seed (0 derives from -seed)")
		dialTries = fs.Int("dial-retries", 5,
			"connection attempts per (re)connect, with exponential backoff and jitter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *events < 1 || *conns < 1 || *conns > *events {
		return fmt.Errorf("need events >= conns >= 1 (got %d, %d)", *events, *conns)
	}
	if *corrupt < 0 || *corrupt >= 1 || *disconnect < 0 || *disconnect >= 1 {
		return fmt.Errorf("-corrupt and -disconnect must be in [0, 1): got %g, %g", *corrupt, *disconnect)
	}
	if *dialTries < 1 {
		return fmt.Errorf("-dial-retries must be >= 1, got %d", *dialTries)
	}
	if *faultSeed == 0 {
		*faultSeed = *seed + 0xC4A05
	}
	useChaos := *corrupt > 0 || *disconnect > 0

	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-addr names no targets")
	}

	cfg, err := pipelineConfig(*configName, *samples)
	if err != nil {
		return err
	}
	templs, wireBytes, err := digitizeTemplates(cfg, *templates, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loadgen: %d events to %s over %d conns, target %s (%s), %d B/event\n",
		*events, strings.Join(targets, ","), *conns, rateName(*rate), arrivalName(*poisson), wireBytes)
	if useChaos {
		fmt.Fprintf(out, "chaos:   corrupt %.3g%%/frame, disconnect %.3g%%/event, fault seed %d\n",
			100**corrupt, 100**disconnect, *faultSeed)
	}

	results := make([]connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	var sendDur, recvDur time.Duration
	var durMu sync.Mutex
	for i := 0; i < *conns; i++ {
		share := *events / *conns
		if i < *events%*conns {
			share++
		}
		wg.Add(1)
		go func(id, share int) {
			defer wg.Done()
			target := targets[id%len(targets)]
			perConn := *rate / float64(*conns)
			// Stagger the connections across the pacing window so their
			// bursts interleave instead of hitting the daemon in lockstep.
			phase := time.Duration(id) * *burst / time.Duration(*conns)
			var res connResult
			var sd, rd time.Duration
			if useChaos {
				res, sd, rd = driveChaosConn(target, templs, share, perConn, *poisson, phase,
					detector.NewRNG(*seed+uint64(id)+1), *timeout, *burst, chaosPlan{
						corrupt:     *corrupt,
						disconnect:  *disconnect,
						seed:        *faultSeed + uint64(id),
						dialRetries: *dialTries,
					})
			} else if *rate <= 0 {
				res, sd, rd = driveSatConn(target, templs, share, *timeout)
			} else {
				res, sd, rd = driveConn(target, templs, share, perConn, *poisson, phase,
					detector.NewRNG(*seed+uint64(id)+1), *timeout, *burst)
			}
			res.target = id % len(targets)
			durMu.Lock()
			if sd > sendDur {
				sendDur = sd
			}
			if rd > recvDur {
				recvDur = rd
			}
			durMu.Unlock()
			results[id] = res
		}(i, share)
	}
	wg.Wait()
	wall := time.Since(start)

	var total connResult
	for i, r := range results {
		total.sent += r.sent
		total.received += r.received
		total.islands += r.islands
		total.corrupted += r.corrupted
		total.partials += r.partials
		total.reconnects += r.reconnects
		total.dialRetries += r.dialRetries
		if r.err != nil && total.err == nil {
			total.err = fmt.Errorf("conn %d: %w", i, r.err)
		}
	}
	var lats []time.Duration
	for _, r := range results {
		lats = append(lats, r.lats...)
	}
	lost := total.sent - total.received
	offered := float64(total.sent) / sendDur.Seconds()
	served := float64(total.received) / recvDur.Seconds()
	if len(targets) > 1 {
		// Per-target accounting: with a list of ingest addresses the run is
		// a fleet measurement, so break connects/retries and traffic out by
		// target before the aggregate lines.
		type targetStat struct{ conns, connects, retries, sent, received int }
		per := make([]targetStat, len(targets))
		for _, r := range results {
			ts := &per[r.target]
			ts.conns++
			ts.connects += r.connects
			ts.retries += r.dialRetries
			ts.sent += r.sent
			ts.received += r.received
		}
		for i, ts := range per {
			fmt.Fprintf(out, "target   %s: conns %d, connects %d (+%d dial retries), sent %d, received %d\n",
				targets[i], ts.conns, ts.connects, ts.retries, ts.sent, ts.received)
		}
	}
	fmt.Fprintf(out, "sent     %d events in %.2fs -> %.0f ev/s offered\n",
		total.sent, sendDur.Seconds(), offered)
	fmt.Fprintf(out, "received %d records (%d islands) in %.2fs -> %.0f ev/s served\n",
		total.received, total.islands, recvDur.Seconds(), served)
	fmt.Fprintf(out, "lost     %d events (%.3f%%), wall %.2fs\n",
		lost, 100*float64(lost)/float64(total.sent), wall.Seconds())
	if useChaos {
		// Under clean-kill faults every lost event has exactly one cause, so
		// this line lets the operator check lost == corrupted + partials.
		fmt.Fprintf(out, "faults   %d corrupted + %d partials = %d explained, %d reconnects (%d dial retries)\n",
			total.corrupted, total.partials, total.corrupted+total.partials,
			total.reconnects, total.dialRetries)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		fmt.Fprintf(out, "saturation: max sustained %.0f ev/s served, latency p50=%v p99=%v max=%v (%d matched)\n",
			served, q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond), len(lats))
	}
	if total.err != nil {
		return total.err
	}
	if *statsURL != "" {
		if err := printStats(out, *statsURL); err != nil {
			fmt.Fprintf(out, "stats fetch failed: %v\n", err)
		}
	}
	if *minRate > 0 && served < *minRate {
		return fmt.Errorf("served rate %.0f ev/s below required %.0f ev/s", served, *minRate)
	}
	return nil
}

func rateName(r float64) string {
	if r <= 0 {
		return "unpaced"
	}
	return fmt.Sprintf("%.0f ev/s", r)
}

func arrivalName(poisson bool) string {
	if poisson {
		return "Poisson"
	}
	return "paced"
}

func pipelineConfig(name string, samples int) (adapt.Config, error) {
	var cfg adapt.Config
	switch name {
	case "adapt":
		cfg = adapt.DefaultADAPT()
	case "cta":
		cfg = adapt.DefaultCTA()
	default:
		var rows, cols int
		if n, err := fmt.Sscanf(name, "%dx%d", &rows, &cols); n != 2 || err != nil || rows <= 0 || cols <= 0 {
			return cfg, fmt.Errorf("unknown -config %q (want adapt, cta, or RxC like 512x512)", name)
		}
		cfg = adapt.DefaultFrame(rows, cols)
	}
	if samples > 0 {
		cfg.SamplesPerChannel = samples
	}
	return cfg, nil
}

// template is one pre-serialized detector event. stream is the whole event's
// wire image (the zero-copy fast path); frames are its per-packet subslices,
// which the chaos path needs to aim faults at frame boundaries.
type template struct {
	stream []byte
	frames [][]byte
}

// digitizeTemplates pre-serializes n distinct detector events so the send
// loop costs only socket writes. Event ids cycle 0..n-1.
func digitizeTemplates(cfg adapt.Config, n int, seed uint64) ([]template, int, error) {
	rng := detector.NewRNG(seed)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	templs := make([]template, n)
	wire := 0
	for i := range templs {
		truth := makeTruth(cfg, rng)
		packets, err := adapt.GenerateEvent(truth, cfg.ASICs, uint32(i), uint64(i)*1000, dig, rng)
		if err != nil {
			return nil, 0, err
		}
		var buf []byte
		offsets := make([]int, 0, len(packets)+1)
		for p := range packets {
			offsets = append(offsets, len(buf))
			b, err := packets[p].Marshal()
			if err != nil {
				return nil, 0, err
			}
			buf = append(buf, b...)
		}
		offsets = append(offsets, len(buf))
		frames := make([][]byte, len(packets))
		for p := range frames {
			frames[p] = buf[offsets[p]:offsets[p+1]]
		}
		templs[i] = template{stream: buf, frames: frames}
		wire = len(buf)
	}
	return templs, wire, nil
}

// makeTruth builds one event's true photo-electron image. Camera-scale 2D
// frames get the CTA shower model; megapixel frames (past the tiled-labeling
// cutover) get a field of random blobs at ~2% occupancy, the workload the
// tile-parallel engine is sized for — one shower in a megapixel frame would
// light a few hundred pixels and measure nothing but dark-channel overhead.
func makeTruth(cfg adapt.Config, rng *detector.RNG) []grid.Value {
	channels := cfg.ASICs * adapt.ChannelsPerASIC
	if cfg.Detection.TwoDimension {
		rows, cols := cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols
		var img *grid.Grid
		if rows*cols > adapt.TiledCutoverPixels {
			img = detector.RandomIslands(rows, cols, rows*cols/400, 1.5, rng)
		} else {
			cam := detector.CameraConfig{Rows: rows, Cols: cols, NSBMeanPE: 0.1}
			img = cam.Shower(cam.TypicalShower(rng), rng)
		}
		flat := make([]grid.Value, channels)
		copy(flat, img.Flat())
		return flat
	}
	tracker := detector.DefaultTracker()
	tracker.Channels = channels
	tracker.Threshold = 0
	return tracker.Event(rng).Values
}

// driveConn sends `share` events down one connection at perConn events/s
// (shifted by phase) and reads downlink records until the server closes the
// stream.
func driveConn(addr string, templs []template, share int, perConn float64,
	poisson bool, phase time.Duration, rng *detector.RNG,
	timeout, burst time.Duration) (connResult, time.Duration, time.Duration) {
	var res connResult
	start := time.Now()
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		res.err = err
		return res, time.Since(start), time.Since(start)
	}
	defer nc.Close()
	res.connects = 1

	var sendDur time.Duration
	writeErr := make(chan error, 1)
	go func() {
		defer func() {
			sendDur = time.Since(start)
			// Half-close so the server sees a clean end of ingress and
			// drains our in-flight events before closing the response path.
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}()
		// Events due at the same wakeup go out in one vectored write, so the
		// syscall rate tracks the pacing granularity, not the event rate.
		batch := make(net.Buffers, 0, 64)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			n := len(batch)
			nc.SetWriteDeadline(time.Now().Add(timeout))
			tmp := batch
			if _, err := tmp.WriteTo(nc); err != nil {
				return err
			}
			res.sent += n
			batch = batch[:0]
			return nil
		}
		ahead := phase // scheduled send time relative to start
		for i := 0; i < share; i++ {
			if perConn > 0 {
				if poisson {
					ahead += time.Duration(rng.Exp(1/perConn) * float64(time.Second))
				} else {
					ahead = phase + time.Duration(float64(i)/perConn*float64(time.Second))
				}
				if sleep := ahead - time.Since(start); sleep > burst {
					if err := flush(); err != nil {
						writeErr <- fmt.Errorf("write event %d: %w", i, err)
						return
					}
					time.Sleep(sleep)
				}
			}
			batch = append(batch, templs[i%len(templs)].stream)
			if len(batch) == cap(batch) {
				if err := flush(); err != nil {
					writeErr <- fmt.Errorf("write event %d: %w", i, err)
					return
				}
			}
		}
		writeErr <- flush()
	}()

	res.received, res.islands, res.err = readRecords(nc, timeout)
	recvDur := time.Since(start)
	if werr := <-writeErr; werr != nil && res.err == nil {
		res.err = werr
	}
	return res, sendDur, recvDur
}

// satWriteBatch is how many events the saturation drive gathers into one
// vectored write. Each slot needs its own template copy (event ids are
// patched in place), so the batch size trades a little client memory for one
// writev per batch instead of one write syscall per event — on loopback the
// sender and the daemon share the machine, so client syscalls eat directly
// into the measured ceiling.
const satWriteBatch = 8

// driveSatConn is the -rate 0 saturation drive: it writes events back-to-back
// as fast as the socket accepts them, satWriteBatch events per vectored
// write with each event id patched into a private per-slot template copy
// just before the send, and timestamps each send so the reader can match
// downlink records (which carry the event id) back to their sends for
// client-side end-to-end latency. The pair (served rate, latency
// percentiles) this produces is the max-sustained-rate figure of merit:
// offered load exceeds capacity by construction, so the served rate is the
// daemon's ceiling under the configured policy.
func driveSatConn(addr string, templs []template, share int,
	timeout time.Duration) (connResult, time.Duration, time.Duration) {
	var res connResult
	start := time.Now()
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		res.err = err
		return res, time.Since(start), time.Since(start)
	}
	defer nc.Close()
	res.connects = 1

	// Per-slot private template copies: every slot of a write batch carries a
	// different event id, so each needs its own bytes (the shared templates
	// also serve every connection goroutine). Frame boundaries are
	// reconstructed so each frame's event id and checksum can be rewritten in
	// place. The patchers carry each frame's checksum base — it excludes the
	// event id, so one patcher per template frame serves every slot, and each
	// rewrite costs a handful of adds instead of refolding the whole frame
	// (~17 KB/event at CTA geometry, paid by the client on the shared host).
	streams := make([][][]byte, satWriteBatch)  // [slot][template]
	frames := make([][][][]byte, satWriteBatch) // [slot][template][frame]
	patchers := make([][]adapt.FramePatcher, len(templs))
	for i, tp := range templs {
		patchers[i] = make([]adapt.FramePatcher, len(tp.frames))
		for j, f := range tp.frames {
			fp, err := adapt.NewFramePatcher(f)
			if err != nil {
				res.err = err
				return res, time.Since(start), time.Since(start)
			}
			patchers[i][j] = fp
		}
	}
	for s := 0; s < satWriteBatch; s++ {
		streams[s] = make([][]byte, len(templs))
		frames[s] = make([][][]byte, len(templs))
		for i, tp := range templs {
			streams[s][i] = append([]byte(nil), tp.stream...)
			off := 0
			frames[s][i] = make([][]byte, len(tp.frames))
			for j, f := range tp.frames {
				frames[s][i][j] = streams[s][i][off : off+len(f)]
				off += len(f)
			}
		}
	}

	// sendNs[i] is event i's send time relative to start; the reader indexes
	// it by the record's event id. Written before the socket write, read only
	// after the matching record arrives, so no send can race its own read.
	sendNs := make([]int64, share)

	var sendDur time.Duration
	writeErr := make(chan error, 1)
	go func() {
		defer func() {
			sendDur = time.Since(start)
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}()
		bufs := make(net.Buffers, 0, satWriteBatch)
		for i := 0; i < share; {
			n := satWriteBatch
			if share-i < n {
				n = share - i
			}
			bufs = bufs[:0]
			for s := 0; s < n; s++ {
				t := (i + s) % len(templs)
				for j, f := range frames[s][t] {
					patchers[t][j].SetEventID(f, uint32(i+s))
				}
				sendNs[i+s] = int64(time.Since(start))
				bufs = append(bufs, streams[s][t])
			}
			nc.SetWriteDeadline(time.Now().Add(timeout))
			if _, err := bufs.WriteTo(nc); err != nil {
				writeErr <- fmt.Errorf("write events %d..%d: %w", i, i+n-1, err)
				return
			}
			res.sent += n
			i += n
		}
		writeErr <- nil
	}()

	res.received, res.islands, res.lats, res.err = readRecordsLat(nc, timeout, start, sendNs)
	recvDur := time.Since(start)
	if werr := <-writeErr; werr != nil && res.err == nil {
		res.err = werr
	}
	return res, sendDur, recvDur
}

// readRecordsLat consumes downlink records until EOF like readRecords, and
// additionally matches each record's event id against the send-time table to
// accumulate client-observed end-to-end latencies.
func readRecordsLat(nc net.Conn, timeout time.Duration, start time.Time,
	sendNs []int64) (records, islands int, lats []time.Duration, err error) {
	// The scanner's DeadlineRearmer re-arms every adapt.DeadlineRearmEvery
	// records, not every record: in saturation mode records arrive tens of
	// thousands of times per second and the deadline update is a measurable
	// share of client CPU on the shared loopback host. A stalled server
	// still trips the deadline armed at the head of the current window.
	sc := adapt.NewRecordScanner(nc, adapt.NewDeadlineRearmer(nc, timeout))
	lats = make([]time.Duration, 0, len(sendNs))
	for {
		rec, err := sc.Next()
		if err != nil {
			if err == io.EOF {
				return sc.Records, sc.Islands, lats, nil
			}
			return sc.Records, sc.Islands, lats, fmt.Errorf("record stream: %w", err)
		}
		if id := adapt.RecordEventID(rec); int(id) < len(sendNs) {
			lats = append(lats, time.Since(start)-time.Duration(sendNs[id]))
		}
	}
}

// chaosPlan configures the fault-injecting drive path of one connection.
type chaosPlan struct {
	corrupt     float64 // per-frame fault probability (half flips, half truncations)
	disconnect  float64 // per-event probability of a deliberate mid-event cut
	seed        uint64  // frame-injector seed (distinct per connection)
	dialRetries int     // dial attempts per (re)connect
}

// dialRetry dials with exponential backoff plus jitter, as a field client
// facing a daemon that may be restarting would. It returns the connection and
// how many extra attempts the backoff absorbed.
func dialRetry(addr string, timeout time.Duration, rng *detector.RNG, attempts int) (net.Conn, int, error) {
	backoff := 10 * time.Millisecond
	for try := 0; ; try++ {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return nc, try, nil
		}
		if try+1 >= attempts {
			return nil, try, fmt.Errorf("dial after %d attempts: %w", try+1, err)
		}
		// Full jitter in [backoff/2, 3*backoff/2): staggered retries avoid a
		// reconnect stampede when every connection lost the daemon at once.
		time.Sleep(backoff/2 + time.Duration(rng.Float64()*float64(backoff)))
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// driveChaosConn is driveConn's fault-injecting sibling: it paces the same
// workload but writes frame by frame through a chaos.FrameInjector, cuts the
// connection mid-event with the configured probability, and reconnects with
// backoff. Each connection segment gets its own record-reader goroutine so
// responses to in-flight events are still counted after a cut.
func driveChaosConn(addr string, templs []template, share int, perConn float64,
	poisson bool, phase time.Duration, rng *detector.RNG,
	timeout, burst time.Duration, plan chaosPlan) (connResult, time.Duration, time.Duration) {
	var res connResult
	start := time.Now()

	// Private frame copies: event ids are patched in place per event, and the
	// templates are shared across connection goroutines.
	frames := make([][][]byte, len(templs))
	for i, tp := range templs {
		cp := make([][]byte, len(tp.frames))
		for j, f := range tp.frames {
			cp[j] = append([]byte(nil), f...)
		}
		frames[i] = cp
	}
	inj := chaos.NewFrameInjector(chaos.FrameConfig{
		Seed:     plan.seed,
		BitFlip:  plan.corrupt / 2,
		Truncate: plan.corrupt / 2,
	})

	// One reader goroutine per connection segment; all are joined at the end
	// so records that arrive after a cut still count.
	type segResult struct {
		records, islands int
		err              error
	}
	var segs []chan segResult
	connect := func() (net.Conn, error) {
		nc, retries, err := dialRetry(addr, timeout, rng, plan.dialRetries)
		res.dialRetries += retries
		if err != nil {
			return nil, err
		}
		res.connects++
		done := make(chan segResult, 1)
		segs = append(segs, done)
		go func() {
			r, n, err := readRecords(nc, timeout)
			nc.Close()
			done <- segResult{r, n, err}
		}()
		return nc, nil
	}
	finish := func(sendDur time.Duration) (connResult, time.Duration, time.Duration) {
		for _, done := range segs {
			sr := <-done
			res.received += sr.records
			res.islands += sr.islands
			if sr.err != nil && res.err == nil {
				res.err = sr.err
			}
		}
		return res, sendDur, time.Since(start)
	}
	halfClose := func(nc net.Conn) {
		// A clean FIN lets buffered packets arrive before the server sees EOF.
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			nc.Close()
		}
	}

	nc, err := connect()
	if err != nil {
		res.err = err
		return finish(time.Since(start))
	}

	ahead := phase
	for i := 0; i < share; i++ {
		if perConn > 0 {
			if poisson {
				ahead += time.Duration(rng.Exp(1/perConn) * float64(time.Second))
			} else {
				ahead = phase + time.Duration(float64(i)/perConn*float64(time.Second))
			}
			if sleep := ahead - time.Since(start); sleep > burst {
				time.Sleep(sleep)
			}
		}
		ev := frames[i%len(frames)]
		for _, f := range ev {
			if err := adapt.PatchFrameEventID(f, uint32(i)); err != nil {
				res.err = err
				return finish(time.Since(start))
			}
		}
		res.sent++
		nc.SetWriteDeadline(time.Now().Add(timeout))

		if plan.disconnect > 0 && rng.Float64() < plan.disconnect {
			// Deliberate mid-event cut: at least one full frame, never all.
			k := 1
			if len(ev) > 1 {
				k += rng.Intn(len(ev) - 1)
			}
			for j := 0; j < k; j++ {
				if _, err := nc.Write(ev[j]); err != nil {
					break // the cut was coming anyway
				}
			}
			halfClose(nc)
			res.partials++
			res.reconnects++
			if nc, err = connect(); err != nil {
				res.err = err
				return finish(time.Since(start))
			}
			continue
		}

		hit := false
		var werr error
	frameLoop:
		for _, f := range ev {
			chunks, fault := inj.Mutate(f)
			if fault != chaos.FaultNone {
				hit = true
			}
			for _, c := range chunks {
				if _, err := nc.Write(c); err != nil {
					werr = err
					break frameLoop
				}
			}
		}
		if hit {
			res.corrupted++
		}
		if werr != nil {
			// Unplanned loss (e.g. the server cut us): the event is partial
			// unless a fault already killed it; reconnect and press on.
			if !hit {
				res.partials++
			}
			res.reconnects++
			nc.Close()
			if nc, err = connect(); err != nil {
				res.err = err
				return finish(time.Since(start))
			}
		}
	}
	sendDur := time.Since(start)
	halfClose(nc)
	return finish(sendDur)
}

// readRecords consumes downlink records until EOF, returning counts. Framing
// and deadline amortization live in adapt.RecordScanner — the same reader the
// gateway uses for its backend relays.
func readRecords(nc net.Conn, timeout time.Duration) (records, islands int, err error) {
	sc := adapt.NewRecordScanner(nc, adapt.NewDeadlineRearmer(nc, timeout))
	for {
		if _, err := sc.Next(); err != nil {
			if err == io.EOF {
				return sc.Records, sc.Islands, nil
			}
			return sc.Records, sc.Islands, fmt.Errorf("record stream: %w", err)
		}
	}
}

// printStats fetches and pretty-prints the daemon's stats JSON.
func printStats(out io.Writer, url string) error {
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	b, _ := json.MarshalIndent(v, "", "  ")
	fmt.Fprintf(out, "server stats: %s\n", b)
	return nil
}
