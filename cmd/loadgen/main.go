// Command loadgen drives a hepccld daemon with a synthetic instrument
// workload over real sockets: it digitizes internal/detector events into
// ALPHA packet streams, replays them at a target event rate over N parallel
// connections, and reports achieved throughput and loss — the end-to-end
// check of the §5.5 "15k events/s" claim through the full serving stack.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:9310 -config cta -events 60000 -rate 15000 -conns 4
//	loadgen -poisson -rate 15000 -events 60000     # E14-style Poisson arrivals
//
// With -poisson the inter-event gaps are exponential, reproducing the
// trigger process of `experiments deadtime` (E14) so the daemon's measured
// loss fraction vs -queue depth can be compared against that simulation.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type connResult struct {
	sent     int
	received int
	islands  int
	err      error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", "127.0.0.1:9310", "hepccld ingest address")
		configName = fs.String("config", "cta", "pipeline configuration: adapt (1D) or cta (2D 43x43)")
		samples    = fs.Int("samples", 4, "waveform samples per channel on the wire (0 keeps the config default)")
		events     = fs.Int("events", 60000, "total events to send across all connections")
		rate       = fs.Float64("rate", 15000, "aggregate target event rate in events/s (0 = unpaced)")
		conns      = fs.Int("conns", 4, "parallel connections")
		poisson    = fs.Bool("poisson", false, "exponential inter-event gaps (Poisson arrivals, as in E14)")
		templates  = fs.Int("templates", 32, "distinct pre-digitized events to cycle through")
		seed       = fs.Uint64("seed", 1860, "workload seed")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-read socket timeout")
		burst      = fs.Duration("burst", 2*time.Millisecond, "pacing granularity: events due within this window are sent as one burst")
		minRate    = fs.Float64("min-rate", 0, "fail unless the served rate reaches this many events/s")
		statsURL   = fs.String("stats-url", "", "hepccld stats endpoint to fetch and print after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *events < 1 || *conns < 1 || *conns > *events {
		return fmt.Errorf("need events >= conns >= 1 (got %d, %d)", *events, *conns)
	}

	cfg, err := pipelineConfig(*configName, *samples)
	if err != nil {
		return err
	}
	streams, wireBytes, err := digitizeTemplates(cfg, *templates, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loadgen: %d events to %s over %d conns, target %s (%s), %d B/event\n",
		*events, *addr, *conns, rateName(*rate), arrivalName(*poisson), wireBytes)

	results := make([]connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	var sendDur, recvDur time.Duration
	var durMu sync.Mutex
	for i := 0; i < *conns; i++ {
		share := *events / *conns
		if i < *events%*conns {
			share++
		}
		wg.Add(1)
		go func(id, share int) {
			defer wg.Done()
			perConn := *rate / float64(*conns)
			// Stagger the connections across the pacing window so their
			// bursts interleave instead of hitting the daemon in lockstep.
			phase := time.Duration(id) * *burst / time.Duration(*conns)
			res, sd, rd := driveConn(*addr, streams, share, perConn, *poisson, phase,
				detector.NewRNG(*seed+uint64(id)+1), *timeout, *burst)
			durMu.Lock()
			if sd > sendDur {
				sendDur = sd
			}
			if rd > recvDur {
				recvDur = rd
			}
			durMu.Unlock()
			results[id] = res
		}(i, share)
	}
	wg.Wait()
	wall := time.Since(start)

	var total connResult
	for i, r := range results {
		total.sent += r.sent
		total.received += r.received
		total.islands += r.islands
		if r.err != nil && total.err == nil {
			total.err = fmt.Errorf("conn %d: %w", i, r.err)
		}
	}
	lost := total.sent - total.received
	offered := float64(total.sent) / sendDur.Seconds()
	served := float64(total.received) / recvDur.Seconds()
	fmt.Fprintf(out, "sent     %d events in %.2fs -> %.0f ev/s offered\n",
		total.sent, sendDur.Seconds(), offered)
	fmt.Fprintf(out, "received %d records (%d islands) in %.2fs -> %.0f ev/s served\n",
		total.received, total.islands, recvDur.Seconds(), served)
	fmt.Fprintf(out, "lost     %d events (%.3f%%), wall %.2fs\n",
		lost, 100*float64(lost)/float64(total.sent), wall.Seconds())
	if total.err != nil {
		return total.err
	}
	if *statsURL != "" {
		if err := printStats(out, *statsURL); err != nil {
			fmt.Fprintf(out, "stats fetch failed: %v\n", err)
		}
	}
	if *minRate > 0 && served < *minRate {
		return fmt.Errorf("served rate %.0f ev/s below required %.0f ev/s", served, *minRate)
	}
	return nil
}

func rateName(r float64) string {
	if r <= 0 {
		return "unpaced"
	}
	return fmt.Sprintf("%.0f ev/s", r)
}

func arrivalName(poisson bool) string {
	if poisson {
		return "Poisson"
	}
	return "paced"
}

func pipelineConfig(name string, samples int) (adapt.Config, error) {
	var cfg adapt.Config
	switch name {
	case "adapt":
		cfg = adapt.DefaultADAPT()
	case "cta":
		cfg = adapt.DefaultCTA()
	default:
		return cfg, fmt.Errorf("unknown -config %q", name)
	}
	if samples > 0 {
		cfg.SamplesPerChannel = samples
	}
	return cfg, nil
}

// digitizeTemplates pre-serializes n distinct detector events so the send
// loop costs only socket writes. Event ids cycle 0..n-1.
func digitizeTemplates(cfg adapt.Config, n int, seed uint64) ([][]byte, int, error) {
	rng := detector.NewRNG(seed)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	streams := make([][]byte, n)
	wire := 0
	for i := range streams {
		truth := makeTruth(cfg, rng)
		packets, err := adapt.GenerateEvent(truth, cfg.ASICs, uint32(i), uint64(i)*1000, dig, rng)
		if err != nil {
			return nil, 0, err
		}
		var buf []byte
		for p := range packets {
			b, err := packets[p].Marshal()
			if err != nil {
				return nil, 0, err
			}
			buf = append(buf, b...)
		}
		streams[i] = buf
		wire = len(buf)
	}
	return streams, wire, nil
}

// makeTruth builds one event's true photo-electron image.
func makeTruth(cfg adapt.Config, rng *detector.RNG) []grid.Value {
	channels := cfg.ASICs * adapt.ChannelsPerASIC
	if cfg.Detection.TwoDimension {
		rows, cols := cfg.Detection.TwoD.Rows, cfg.Detection.TwoD.Cols
		cam := detector.CameraConfig{Rows: rows, Cols: cols, NSBMeanPE: 0.1}
		img := cam.Shower(cam.TypicalShower(rng), rng)
		flat := make([]grid.Value, channels)
		copy(flat, img.Flat())
		return flat
	}
	tracker := detector.DefaultTracker()
	tracker.Channels = channels
	tracker.Threshold = 0
	return tracker.Event(rng).Values
}

// driveConn sends `share` events down one connection at perConn events/s
// (shifted by phase) and reads downlink records until the server closes the
// stream.
func driveConn(addr string, streams [][]byte, share int, perConn float64,
	poisson bool, phase time.Duration, rng *detector.RNG,
	timeout, burst time.Duration) (connResult, time.Duration, time.Duration) {
	var res connResult
	start := time.Now()
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		res.err = err
		return res, time.Since(start), time.Since(start)
	}
	defer nc.Close()

	var sendDur time.Duration
	writeErr := make(chan error, 1)
	go func() {
		defer func() {
			sendDur = time.Since(start)
			// Half-close so the server sees a clean end of ingress and
			// drains our in-flight events before closing the response path.
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}()
		// Events due at the same wakeup go out in one vectored write, so the
		// syscall rate tracks the pacing granularity, not the event rate.
		batch := make(net.Buffers, 0, 64)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			n := len(batch)
			nc.SetWriteDeadline(time.Now().Add(timeout))
			tmp := batch
			if _, err := tmp.WriteTo(nc); err != nil {
				return err
			}
			res.sent += n
			batch = batch[:0]
			return nil
		}
		ahead := phase // scheduled send time relative to start
		for i := 0; i < share; i++ {
			if perConn > 0 {
				if poisson {
					ahead += time.Duration(rng.Exp(1/perConn) * float64(time.Second))
				} else {
					ahead = phase + time.Duration(float64(i)/perConn*float64(time.Second))
				}
				if sleep := ahead - time.Since(start); sleep > burst {
					if err := flush(); err != nil {
						writeErr <- fmt.Errorf("write event %d: %w", i, err)
						return
					}
					time.Sleep(sleep)
				}
			}
			batch = append(batch, streams[i%len(streams)])
			if len(batch) == cap(batch) {
				if err := flush(); err != nil {
					writeErr <- fmt.Errorf("write event %d: %w", i, err)
					return
				}
			}
		}
		writeErr <- flush()
	}()

	res.received, res.islands, res.err = readRecords(nc, timeout)
	recvDur := time.Since(start)
	if werr := <-writeErr; werr != nil && res.err == nil {
		res.err = werr
	}
	return res, sendDur, recvDur
}

// readRecords consumes downlink records until EOF, returning counts.
func readRecords(nc net.Conn, timeout time.Duration) (records, islands int, err error) {
	br := bufio.NewReaderSize(nc, 64<<10)
	var hdr [8]byte
	var body []byte
	for {
		nc.SetReadDeadline(time.Now().Add(timeout))
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return records, islands, nil
			}
			return records, islands, fmt.Errorf("record header: %w", err)
		}
		n := int(binary.BigEndian.Uint32(hdr[4:]))
		if cap(body) < n*22 {
			body = make([]byte, n*22)
		}
		if _, err := io.ReadFull(br, body[:n*22]); err != nil {
			return records, islands, fmt.Errorf("record body: %w", err)
		}
		records++
		islands += n
	}
}

// printStats fetches and pretty-prints the daemon's stats JSON.
func printStats(out io.Writer, url string) error {
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	b, _ := json.MarshalIndent(v, "", "  ")
	fmt.Fprintf(out, "server stats: %s\n", b)
	return nil
}
