package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/server"
)

func TestPipelineConfig(t *testing.T) {
	cfg, err := pipelineConfig("cta", 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ASICs != 116 || cfg.SamplesPerChannel != 4 {
		t.Fatalf("cta/4 -> %d ASICs, %d samples", cfg.ASICs, cfg.SamplesPerChannel)
	}
	cfg, err = pipelineConfig("adapt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SamplesPerChannel != 16 {
		t.Fatalf("samples=0 must keep the default, got %d", cfg.SamplesPerChannel)
	}
	if _, err := pipelineConfig("nope", 4); err == nil {
		t.Fatal("unknown config must fail")
	}
}

// TestDigitizeTemplatesRoundTrip parses the pre-serialized streams back with
// the real stream reader: every template must be one complete event with the
// expected id, ASIC count, and window length.
func TestDigitizeTemplatesRoundTrip(t *testing.T) {
	cfg, err := pipelineConfig("adapt", 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	streams, wire, err := digitizeTemplates(cfg, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, stream := range streams {
		if len(stream) != wire {
			t.Fatalf("template %d is %d bytes, reported %d", i, len(stream), wire)
		}
		sr := adapt.NewStreamReader(bytes.NewReader(stream))
		packets, err := sr.ReadEvent(cfg.ASICs)
		if err != nil {
			t.Fatalf("template %d: %v", i, err)
		}
		if packets[0].Event != uint32(i) {
			t.Fatalf("template %d carries event id %d", i, packets[0].Event)
		}
		for _, p := range packets {
			if int(p.SamplesPerChannel) != cfg.SamplesPerChannel {
				t.Fatalf("template %d: %d samples on the wire, want %d",
					i, p.SamplesPerChannel, cfg.SamplesPerChannel)
			}
		}
		if sr.SkippedBytes != 0 || sr.BadPackets != 0 {
			t.Fatalf("template %d: skipped=%d bad=%d", i, sr.SkippedBytes, sr.BadPackets)
		}
	}
}

// TestReadRecords feeds synthetic downlink frames over an in-memory pipe and
// checks record/island accounting and clean-EOF handling.
func TestReadRecords(t *testing.T) {
	client, srv := net.Pipe()
	recs := []adapt.EventRecord{
		{Event: 1, Islands: []adapt.IslandRecord{
			{Label: 1, Pixels: 3, Sum: 42, RowQ16: 1 << 16, ColQ16: 2 << 16},
			{Label: 2, Pixels: 1, Sum: 7},
		}},
		{Event: 2}, // empty event: header only
		{Event: 3, Islands: []adapt.IslandRecord{{Label: 1, Pixels: 9, Sum: 900}}},
	}
	go func() {
		defer srv.Close()
		var buf []byte
		for i := range recs {
			buf = recs[i].AppendTo(buf[:0])
			if _, err := srv.Write(buf); err != nil {
				return
			}
		}
	}()
	records, islands, err := readRecords(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if records != len(recs) || islands != 3 {
		t.Fatalf("got %d records, %d islands; want %d, 3", records, islands, len(recs))
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-events", "2", "-conns", "5"}, io.Discard); err == nil {
		t.Fatal("conns > events must fail")
	}
	if err := run([]string{"-config", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown config must fail")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

// TestLoadgenEndToEnd runs the generator against an in-process daemon with
// the blocking policy: every offered event must come back as a record.
func TestLoadgenEndToEnd(t *testing.T) {
	pcfg, err := pipelineConfig("adapt", 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Pipeline:   pcfg,
		Workers:    1,
		QueueDepth: 8,
		Policy:     server.PolicyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		<-done
	})

	var out bytes.Buffer
	err = run([]string{
		"-addr", ln.Addr().String(),
		"-config", "adapt", "-samples", "4",
		"-events", "60", "-conns", "3", "-rate", "0",
		"-templates", "4", "-timeout", "10s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "lost     0 events") {
		t.Fatalf("block policy must lose nothing:\n%s", out.String())
	}
	snap := srv.StatsSnapshot()
	if snap.EventsIn != 60 || snap.EventsOut != 60 || snap.Dropped != 0 {
		t.Fatalf("server counted in=%d out=%d dropped=%d, want 60/60/0",
			snap.EventsIn, snap.EventsOut, snap.Dropped)
	}
}
