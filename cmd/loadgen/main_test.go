package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/server"
)

func TestPipelineConfig(t *testing.T) {
	cfg, err := pipelineConfig("cta", 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ASICs != 116 || cfg.SamplesPerChannel != 4 {
		t.Fatalf("cta/4 -> %d ASICs, %d samples", cfg.ASICs, cfg.SamplesPerChannel)
	}
	cfg, err = pipelineConfig("adapt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SamplesPerChannel != 16 {
		t.Fatalf("samples=0 must keep the default, got %d", cfg.SamplesPerChannel)
	}
	if _, err := pipelineConfig("nope", 4); err == nil {
		t.Fatal("unknown config must fail")
	}
}

// TestDigitizeTemplatesRoundTrip parses the pre-serialized streams back with
// the real stream reader: every template must be one complete event with the
// expected id, ASIC count, and window length.
func TestDigitizeTemplatesRoundTrip(t *testing.T) {
	cfg, err := pipelineConfig("adapt", 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	templs, wire, err := digitizeTemplates(cfg, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range templs {
		if len(tp.stream) != wire {
			t.Fatalf("template %d is %d bytes, reported %d", i, len(tp.stream), wire)
		}
		if len(tp.frames) != cfg.ASICs {
			t.Fatalf("template %d has %d frames, want %d", i, len(tp.frames), cfg.ASICs)
		}
		total := 0
		for _, f := range tp.frames {
			total += len(f)
		}
		if total != len(tp.stream) {
			t.Fatalf("template %d frames cover %d of %d bytes", i, total, len(tp.stream))
		}
		sr := adapt.NewStreamReader(bytes.NewReader(tp.stream))
		packets, err := sr.ReadEvent(cfg.ASICs)
		if err != nil {
			t.Fatalf("template %d: %v", i, err)
		}
		if packets[0].Event != uint32(i) {
			t.Fatalf("template %d carries event id %d", i, packets[0].Event)
		}
		for _, p := range packets {
			if int(p.SamplesPerChannel) != cfg.SamplesPerChannel {
				t.Fatalf("template %d: %d samples on the wire, want %d",
					i, p.SamplesPerChannel, cfg.SamplesPerChannel)
			}
		}
		if sr.SkippedBytes != 0 || sr.BadPackets != 0 {
			t.Fatalf("template %d: skipped=%d bad=%d", i, sr.SkippedBytes, sr.BadPackets)
		}
	}
}

// TestReadRecords feeds synthetic downlink frames over an in-memory pipe and
// checks record/island accounting and clean-EOF handling.
func TestReadRecords(t *testing.T) {
	client, srv := net.Pipe()
	recs := []adapt.EventRecord{
		{Event: 1, Islands: []adapt.IslandRecord{
			{Label: 1, Pixels: 3, Sum: 42, RowQ16: 1 << 16, ColQ16: 2 << 16},
			{Label: 2, Pixels: 1, Sum: 7},
		}},
		{Event: 2}, // empty event: header only
		{Event: 3, Islands: []adapt.IslandRecord{{Label: 1, Pixels: 9, Sum: 900}}},
	}
	go func() {
		defer srv.Close()
		var buf []byte
		for i := range recs {
			buf = recs[i].AppendTo(buf[:0])
			if _, err := srv.Write(buf); err != nil {
				return
			}
		}
	}()
	records, islands, err := readRecords(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if records != len(recs) || islands != 3 {
		t.Fatalf("got %d records, %d islands; want %d, 3", records, islands, len(recs))
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-events", "2", "-conns", "5"}, io.Discard); err == nil {
		t.Fatal("conns > events must fail")
	}
	if err := run([]string{"-config", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown config must fail")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag must fail")
	}
	if err := run([]string{"-corrupt", "1.5"}, io.Discard); err == nil {
		t.Fatal("corrupt probability >= 1 must fail")
	}
	if err := run([]string{"-disconnect", "-0.1"}, io.Discard); err == nil {
		t.Fatal("negative disconnect probability must fail")
	}
	if err := run([]string{"-dial-retries", "0"}, io.Discard); err == nil {
		t.Fatal("zero dial retries must fail")
	}
}

// TestDialRetryBacksOff: a dead address burns through the attempt budget with
// sleeps in between; a live address succeeds immediately with zero retries.
func TestDialRetryBacksOff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // now guaranteed dead

	rng := detector.NewRNG(1)
	start := time.Now()
	if _, retries, err := dialRetry(addr, time.Second, rng, 3); err == nil {
		t.Fatal("dialing a closed port must eventually fail")
	} else if retries != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", retries)
	}
	// Two backoff sleeps: >= 10/2 + 20/2 ms even with minimal jitter.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("3 attempts finished in %v; backoff sleeps missing", elapsed)
	}

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go ln2.Accept()
	nc, retries, err := dialRetry(ln2.Addr().String(), time.Second, rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	nc.Close()
	if retries != 0 {
		t.Fatalf("live address took %d retries", retries)
	}
}

// TestLoadgenEndToEnd runs the generator against an in-process daemon with
// the blocking policy: every offered event must come back as a record.
func TestLoadgenEndToEnd(t *testing.T) {
	pcfg, err := pipelineConfig("adapt", 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Pipeline:   pcfg,
		Workers:    1,
		QueueDepth: 8,
		Policy:     server.PolicyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		<-done
	})

	var out bytes.Buffer
	err = run([]string{
		"-addr", ln.Addr().String(),
		"-config", "adapt", "-samples", "4",
		"-events", "60", "-conns", "3", "-rate", "0",
		"-templates", "4", "-timeout", "10s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "lost     0 events") {
		t.Fatalf("block policy must lose nothing:\n%s", out.String())
	}
	snap := srv.StatsSnapshot()
	if snap.EventsIn != 60 || snap.EventsOut != 60 || snap.Dropped != 0 {
		t.Fatalf("server counted in=%d out=%d dropped=%d, want 60/60/0",
			snap.EventsIn, snap.EventsOut, snap.Dropped)
	}
}

// TestLoadgenChaosAccounting runs the fault-injecting path against an
// in-process daemon and balances the books: with clean-kill faults and the
// blocking policy, every offered event is either served or incomplete, and
// the incomplete count equals the generator's corrupted + partial tally.
func TestLoadgenChaosAccounting(t *testing.T) {
	pcfg, err := pipelineConfig("adapt", 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Pipeline:   pcfg,
		Workers:    1,
		QueueDepth: 8,
		Policy:     server.PolicyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		<-done
	})

	const offered = 400
	var out bytes.Buffer
	err = run([]string{
		"-addr", ln.Addr().String(),
		"-config", "adapt", "-samples", "4",
		"-events", "400", "-conns", "2", "-rate", "0",
		"-templates", "4", "-timeout", "10s",
		"-corrupt", "0.01", "-disconnect", "0.05", "-fault-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "faults   ") {
		t.Fatalf("chaos run must report a fault summary:\n%s", out.String())
	}
	snap := srv.StatsSnapshot()
	if snap.EventsIn != snap.EventsOut || snap.Dropped != 0 || snap.BadEvents != 0 {
		t.Fatalf("block policy must serve everything assembled: %+v", snap.CounterSnapshot)
	}
	if got := snap.EventsOut + snap.IncompleteEvents; got != offered {
		t.Fatalf("served %d + incomplete %d = %d, want every offered event (%d)\n%s",
			snap.EventsOut, snap.IncompleteEvents, got, offered, out.String())
	}
	if snap.IncompleteEvents == 0 {
		t.Fatalf("seed 7 at these probabilities must kill at least one event:\n%s", out.String())
	}
	// The generator's own books must agree with the server's.
	lost := offered - int(snap.EventsOut)
	if want := fmt.Sprintf("= %d explained", lost); !strings.Contains(out.String(), want) {
		t.Fatalf("fault summary does not explain the %d lost events:\n%s", lost, out.String())
	}
}
