// Command hepcclgw is the scale-out event gateway: it accepts ALPHA packet
// streams exactly like hepccld, but instead of running pipelines it
// consistent-hashes each event by event id across a fleet of hepccld
// backends, relaying the downlink records back on the offering connection.
// Backend health is probed from each hepccld's three-state /healthz; slots
// spill away from degraded backends, overloaded ones are held-and-retried
// then shed with exact accounting, and backends can be drained out and
// hot re-added at runtime via the admin endpoint.
//
// Usage:
//
//	hepcclgw -listen :9300 -stats :9301 -config adapt \
//	    -backends 127.0.0.1:9310=127.0.0.1:9311,127.0.0.1:9320=127.0.0.1:9321
//
// Each -backends entry is dataAddr=statsAddr. The -stats endpoint serves
// GET /stats (aggregated fleet counters), GET /healthz (fleet health; 503
// when no backend is routable), POST /drain?addr=dataAddr, and
// POST /add?addr=dataAddr&stats=statsAddr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/gateway"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hepcclgw:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hepcclgw", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		listen     = fs.String("listen", "127.0.0.1:9300", "client-facing event listen address")
		statsAddr  = fs.String("stats", "", "admin endpoint address: /stats /healthz /drain /add (empty disables)")
		backends   = fs.String("backends", "", "comma-separated backend list, each dataAddr=statsAddr")
		configName = fs.String("config", "cta", "fleet pipeline configuration: adapt (1D) or cta (2D 43x43); sets frames per event")
		asics      = fs.Int("asics", 0, "frames per event override (0 keeps the config default)")

		slots   = fs.Int("slots", 512, "routing-table slots (power of two)")
		vnodes  = fs.Int("vnodes", 64, "ring points per backend")
		loadPct = fs.Int("load-factor-pct", 125, "bounded-load cap as percent of fleet-mean in-flight (>100)")

		probeEvery   = fs.Duration("probe-interval", 250*time.Millisecond, "backend health poll period")
		probeTimeout = fs.Duration("probe-timeout", time.Second, "one health request bound")
		holdRetries  = fs.Int("hold-retries", 40, "overload hold-and-retry attempts before shedding")
		holdDelay    = fs.Duration("hold-delay", 5*time.Millisecond, "delay between overload retries")

		dialTimeout = fs.Duration("dial-timeout", 5*time.Second, "upstream dial bound")
		writeT      = fs.Duration("upstream-write-timeout", 10*time.Second, "upstream flush bound")
		readT       = fs.Duration("upstream-read-timeout", 0, "upstream record-read deadline (0 disables)")
		clientT     = fs.Duration("client-write-timeout", 0, "downlink flush bound (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := buildConfig(*configName, *asics, *backends)
	if err != nil {
		return err
	}
	cfg.Slots = *slots
	cfg.Vnodes = *vnodes
	cfg.LoadFactorPct = *loadPct
	cfg.ProbeInterval = *probeEvery
	cfg.ProbeTimeout = *probeTimeout
	cfg.HoldRetries = *holdRetries
	cfg.HoldDelay = *holdDelay
	cfg.DialTimeout = *dialTimeout
	cfg.UpstreamWriteTimeout = *writeT
	cfg.UpstreamReadTimeout = *readT
	cfg.ClientWriteTimeout = *clientT
	cfg.StatsAddr = *statsAddr
	cfg.Logger = log.New(out, "", log.LstdFlags)

	gw, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- gw.ListenAndServe(*listen) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		cfg.Logger.Printf("hepcclgw: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := gw.Shutdown(sctx); err != nil {
			return err
		}
		<-errc // ErrGatewayClosed
		snap := gw.StatsSnapshot()
		cfg.Logger.Printf("hepcclgw: drained: offered=%d relayed=%d shed=%d inflight=%d",
			snap.Offered, snap.Relayed, snap.Shed.Total(), snap.Inflight)
		return nil
	}
}

// buildConfig resolves the pipeline geometry and backend list.
func buildConfig(configName string, asics int, backends string) (gateway.Config, error) {
	var pcfg adapt.Config
	switch configName {
	case "adapt":
		pcfg = adapt.DefaultADAPT()
	case "cta":
		pcfg = adapt.DefaultCTA()
	default:
		return gateway.Config{}, fmt.Errorf("unknown -config %q", configName)
	}
	if asics == 0 {
		asics = pcfg.ASICs
	}
	cfg := gateway.Config{ASICs: asics}
	if backends == "" {
		return gateway.Config{}, fmt.Errorf("-backends is required")
	}
	for _, item := range strings.Split(backends, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		data, stats, ok := strings.Cut(item, "=")
		if !ok || data == "" || stats == "" {
			return gateway.Config{}, fmt.Errorf("-backends entry %q: want dataAddr=statsAddr", item)
		}
		cfg.Backends = append(cfg.Backends, gateway.BackendSpec{Addr: data, StatsAddr: stats})
	}
	return cfg, nil
}
