// Package sched models the loop schedules an HLS tool produces, so designs
// can report latency the way a Vitis synthesis report does (§5): worst-case
// cycle counts derived from loop structure, not from the data that happens to
// flow through a simulation.
//
// Two loop execution styles are modeled:
//
//   - Serialized (no PIPELINE pragma): total latency = trip count × iteration
//     latency. The scheduler runs each iteration to completion before issuing
//     the next, so storage read latency adds directly to every iteration —
//     the Table 1 baseline/bind-storage behaviour.
//   - Pipelined (`#pragma HLS PIPELINE II=1`): total latency = depth +
//     (trip−1) × II. Memory read latency is hidden inside the pipeline depth,
//     which is why storage binding stops hurting once §5.4 pipelines the loop.
//
// A Ledger accumulates charged cycles per named loop, giving designs an
// auditable latency breakdown.
package sched

import (
	"fmt"
	"strings"
)

// Loop describes one scheduled loop.
type Loop struct {
	// Name identifies the loop in reports (e.g. "scan", "resolve").
	Name string
	// Trip is the (worst-case) trip count.
	Trip int64
	// IterLatency is the latency of one iteration when serialized.
	IterLatency int64
	// Pipelined selects the pipelined schedule.
	Pipelined bool
	// II is the initiation interval when pipelined (usually 1).
	II int64
	// Depth is the pipeline depth (cycles from issue to retire) when
	// pipelined.
	Depth int64
}

// Latency returns the loop's total cycle count under its schedule.
// A zero-trip loop costs nothing.
func (l Loop) Latency() int64 {
	if l.Trip <= 0 {
		return 0
	}
	if l.Pipelined {
		ii := l.II
		if ii < 1 {
			ii = 1
		}
		return l.Depth + (l.Trip-1)*ii
	}
	return l.Trip * l.IterLatency
}

// EffectiveII returns the function-level initiation interval contribution:
// for serialized loops it equals the iteration latency; for pipelined loops,
// the II.
func (l Loop) EffectiveII() int64 {
	if l.Pipelined {
		if l.II < 1 {
			return 1
		}
		return l.II
	}
	return l.IterLatency
}

// Validate reports structural problems (used by design tests).
func (l Loop) Validate() error {
	if l.Trip < 0 {
		return fmt.Errorf("sched: loop %q negative trip %d", l.Name, l.Trip)
	}
	if l.Pipelined {
		if l.II < 1 {
			return fmt.Errorf("sched: pipelined loop %q II %d < 1", l.Name, l.II)
		}
		if l.Depth < 1 {
			return fmt.Errorf("sched: pipelined loop %q depth %d < 1", l.Name, l.Depth)
		}
		return nil
	}
	if l.IterLatency < 1 {
		return fmt.Errorf("sched: serialized loop %q iteration latency %d < 1", l.Name, l.IterLatency)
	}
	return nil
}

// Ledger accumulates cycles charged to named regions in insertion order.
type Ledger struct {
	total  int64
	byName map[string]int64
	order  []string
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byName: make(map[string]int64)}
}

// Charge adds cycles to the named region.
func (ld *Ledger) Charge(name string, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sched: negative charge %d to %q", cycles, name))
	}
	if _, ok := ld.byName[name]; !ok {
		ld.order = append(ld.order, name)
	}
	ld.byName[name] += cycles
	ld.total += cycles
}

// ChargeLoop charges a loop's scheduled latency under the loop's name.
func (ld *Ledger) ChargeLoop(l Loop) {
	ld.Charge(l.Name, l.Latency())
}

// Total returns the sum of all charges.
func (ld *Ledger) Total() int64 { return ld.total }

// Get returns the cycles charged to name.
func (ld *Ledger) Get(name string) int64 { return ld.byName[name] }

// Regions returns region names in first-charge order.
func (ld *Ledger) Regions() []string {
	out := make([]string, len(ld.order))
	copy(out, ld.order)
	return out
}

// Breakdown renders "name: cycles" lines in charge order, then the total.
func (ld *Ledger) Breakdown() string {
	var b strings.Builder
	for _, name := range ld.order {
		fmt.Fprintf(&b, "%-12s %8d\n", name, ld.byName[name])
	}
	fmt.Fprintf(&b, "%-12s %8d", "total", ld.total)
	return b.String()
}

// Merge adds every region of o into ld in o's charge order (used when
// composing dataflow stages).
func (ld *Ledger) Merge(o *Ledger) {
	for _, n := range o.order {
		ld.Charge(n, o.byName[n])
	}
}

// Dataflow models a set of stages connected by streams, as created by
// `#pragma HLS DATAFLOW`: stages execute as concurrent processes, so the
// region's steady-state initiation interval is the slowest stage's interval
// while its end-to-end latency is bounded by the critical path.
type Dataflow struct {
	// Stages in pipeline order.
	Stages []Loop
}

// SequentialLatency is the region's latency without dataflow overlap — the
// sum of stage latencies (how the paper's non-overlapped top level behaves;
// its tables report II = latency for exactly this reason).
func (d Dataflow) SequentialLatency() int64 {
	var total int64
	for _, s := range d.Stages {
		total += s.Latency()
	}
	return total
}

// OverlappedLatency is the latency when stages stream into each other: the
// slowest stage dominates and every other stage contributes only its
// pipeline fill (depth for pipelined stages, one iteration for serialized
// ones) — the bottleneck stage's own fill is already inside its latency.
// This is the §6 "fully pipelined first pass" upside; it never exceeds the
// sequential schedule.
func (d Dataflow) OverlappedLatency() int64 {
	var max int64
	maxIdx := -1
	fills := make([]int64, len(d.Stages))
	for i, s := range d.Stages {
		l := s.Latency()
		if l > max {
			max = l
			maxIdx = i
		}
		if s.Pipelined {
			fills[i] = s.Depth
		} else if s.Trip > 0 {
			fills[i] = s.IterLatency
		}
	}
	total := max
	for i, f := range fills {
		if i != maxIdx {
			total += f
		}
	}
	return total
}

// Interval is the steady-state event interval of the overlapped region —
// the slowest stage's latency (a new event can enter as soon as the
// bottleneck stage frees).
func (d Dataflow) Interval() int64 {
	var max int64
	for _, s := range d.Stages {
		if l := s.Latency(); l > max {
			max = l
		}
	}
	return max
}
