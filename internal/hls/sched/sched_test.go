package sched

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializedLatency(t *testing.T) {
	// Trip × iteration latency — the baseline schedule of §5.1 where the
	// "inner loop initiation interval matched the total loop trip-count".
	l := Loop{Name: "scan", Trip: 80, IterLatency: 8}
	if got := l.Latency(); got != 640 {
		t.Fatalf("Latency = %d, want 640", got)
	}
	if got := l.EffectiveII(); got != 8 {
		t.Fatalf("EffectiveII = %d, want 8", got)
	}
}

func TestPipelinedLatency(t *testing.T) {
	// depth + (trip-1)×II — the §5.4 schedule with II=1.
	l := Loop{Name: "scan", Trip: 80, Pipelined: true, II: 1, Depth: 25}
	if got := l.Latency(); got != 104 {
		t.Fatalf("Latency = %d, want 104", got)
	}
	if got := l.EffectiveII(); got != 1 {
		t.Fatalf("EffectiveII = %d, want 1", got)
	}
}

func TestPipelinedIIClamp(t *testing.T) {
	l := Loop{Name: "x", Trip: 10, Pipelined: true, II: 0, Depth: 5}
	if got := l.Latency(); got != 14 {
		t.Fatalf("Latency = %d, want 14 (II clamped to 1)", got)
	}
	if got := l.EffectiveII(); got != 1 {
		t.Fatalf("EffectiveII = %d, want 1", got)
	}
}

func TestZeroTripLoop(t *testing.T) {
	for _, l := range []Loop{
		{Name: "a", Trip: 0, IterLatency: 9},
		{Name: "b", Trip: 0, Pipelined: true, II: 1, Depth: 12},
	} {
		if l.Latency() != 0 {
			t.Errorf("%s: zero-trip loop latency = %d, want 0", l.Name, l.Latency())
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Loop{
		{Name: "s", Trip: 4, IterLatency: 2},
		{Name: "p", Trip: 4, Pipelined: true, II: 1, Depth: 3},
	}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", l.Name, err)
		}
	}
	bad := []Loop{
		{Name: "neg", Trip: -1, IterLatency: 1},
		{Name: "ii0", Trip: 4, Pipelined: true, II: 0, Depth: 3},
		{Name: "d0", Trip: 4, Pipelined: true, II: 1, Depth: 0},
		{Name: "il0", Trip: 4, IterLatency: 0},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: expected validation error", l.Name)
		}
	}
}

func TestLedger(t *testing.T) {
	ld := NewLedger()
	ld.Charge("load", 160)
	ld.Charge("scan", 640)
	ld.Charge("load", 10)
	if ld.Total() != 810 {
		t.Fatalf("Total = %d, want 810", ld.Total())
	}
	if ld.Get("load") != 170 || ld.Get("scan") != 640 {
		t.Fatal("per-region accounting wrong")
	}
	regions := ld.Regions()
	if len(regions) != 2 || regions[0] != "load" || regions[1] != "scan" {
		t.Fatalf("Regions = %v, want [load scan] in charge order", regions)
	}
	if !strings.Contains(ld.Breakdown(), "total") {
		t.Fatal("Breakdown must include total")
	}
}

func TestLedgerChargeLoop(t *testing.T) {
	ld := NewLedger()
	ld.ChargeLoop(Loop{Name: "resolve", Trip: 20, IterLatency: 2})
	if ld.Get("resolve") != 40 {
		t.Fatalf("ChargeLoop charged %d, want 40", ld.Get("resolve"))
	}
}

func TestLedgerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge must panic")
		}
	}()
	NewLedger().Charge("x", -1)
}

func TestLedgerMerge(t *testing.T) {
	a := NewLedger()
	a.Charge("load", 5)
	b := NewLedger()
	b.Charge("scan", 7)
	b.Charge("load", 3)
	a.Merge(b)
	if a.Total() != 15 || a.Get("load") != 8 || a.Get("scan") != 7 {
		t.Fatalf("merge wrong: total=%d", a.Total())
	}
}

// Property: pipelining a loop with II=1 never exceeds the serialized schedule
// when iteration latency ≥ depth/trip — i.e. pipelining helps for any
// realistic trip count.
func TestPipeliningWinsProperty(t *testing.T) {
	f := func(trip uint16, iterLat, depth uint8) bool {
		tr := int64(trip%2000) + 2
		il := int64(iterLat%20) + 2
		d := int64(depth)%il + 1 // depth ≤ iterLat
		ser := Loop{Name: "s", Trip: tr, IterLatency: il}
		pip := Loop{Name: "p", Trip: tr, Pipelined: true, II: 1, Depth: d}
		return pip.Latency() <= ser.Latency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ledger total always equals the sum over regions.
func TestLedgerSumProperty(t *testing.T) {
	f := func(charges []uint8) bool {
		ld := NewLedger()
		names := []string{"a", "b", "c"}
		var want int64
		for i, c := range charges {
			ld.Charge(names[i%3], int64(c))
			want += int64(c)
		}
		var sum int64
		for _, r := range ld.Regions() {
			sum += ld.Get(r)
		}
		return ld.Total() == want && sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDataflowLatencies(t *testing.T) {
	d := Dataflow{Stages: []Loop{
		{Name: "load", Trip: 100, Pipelined: true, II: 1, Depth: 10},
		{Name: "scan", Trip: 100, Pipelined: true, II: 1, Depth: 20},
		{Name: "resolve", Trip: 25, IterLatency: 2},
		{Name: "out", Trip: 100, Pipelined: true, II: 1, Depth: 10},
	}}
	// Sequential: (109) + (119) + 50 + (109) = 387.
	if got := d.SequentialLatency(); got != 387 {
		t.Fatalf("sequential = %d, want 387", got)
	}
	// Overlapped: max stage (scan, 119) + other stages' fills (10+2+10) = 141
	// — the bottleneck's own fill is inside its latency.
	if got := d.OverlappedLatency(); got != 141 {
		t.Fatalf("overlapped = %d, want 141", got)
	}
	if got := d.Interval(); got != 119 {
		t.Fatalf("interval = %d, want 119", got)
	}
	if d.OverlappedLatency() >= d.SequentialLatency() {
		t.Fatal("overlap must help")
	}
}

func TestDataflowEmpty(t *testing.T) {
	var d Dataflow
	if d.SequentialLatency() != 0 || d.OverlappedLatency() != 0 || d.Interval() != 0 {
		t.Fatal("empty dataflow must be zero")
	}
}

// Property: overlapped dataflow never exceeds the sequential schedule, and
// the steady-state interval never exceeds the overlapped latency.
func TestDataflowOverlapProperty(t *testing.T) {
	f := func(stages [5]struct {
		Trip  uint16
		Depth uint8
		Pipe  bool
	}) bool {
		d := Dataflow{}
		for i, s := range stages {
			l := Loop{Name: string(rune('a' + i)), Trip: int64(s.Trip%500) + 1}
			if s.Pipe {
				l.Pipelined = true
				l.II = 1
				l.Depth = int64(s.Depth%30) + 1
			} else {
				l.IterLatency = int64(s.Depth%6) + 1
			}
			d.Stages = append(d.Stages, l)
		}
		return d.OverlappedLatency() <= d.SequentialLatency() &&
			d.Interval() <= d.OverlappedLatency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
