// Package trace writes Value Change Dump (VCD) files — the standard
// waveform format (IEEE 1364) readable by GTKWave and every RTL debugger —
// from design simulations. C/RTL co-simulation waveforms are how the paper's
// authors debugged their HLS designs; this is the reproduction's equivalent
// artifact for inspecting a run cycle by cycle.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// SignalID identifies one declared signal.
type SignalID int

type signal struct {
	name  string
	width int
	code  string
	last  int64
	seen  bool
}

// VCD is a value-change-dump writer. Declare signals, call Begin, then
// interleave Set and Tick; Close flushes.
type VCD struct {
	w       *bufio.Writer
	module  string
	scale   string
	signals []signal
	now     uint64
	began   bool
	// pending holds changes at the current timestamp, flushed on Tick.
	pending map[SignalID]int64
}

// NewVCD returns a writer targeting w. module names the scope; timescale is
// a VCD timescale like "10ns" (one tick = one 100 MHz cycle).
func NewVCD(w io.Writer, module, timescale string) *VCD {
	if module == "" {
		module = "design"
	}
	if timescale == "" {
		timescale = "10ns"
	}
	return &VCD{
		w:       bufio.NewWriter(w),
		module:  module,
		scale:   timescale,
		pending: make(map[SignalID]int64),
	}
}

// Signal declares a signal before Begin. Width is in bits (1..64).
func (v *VCD) Signal(name string, widthBits int) SignalID {
	if v.began {
		panic("trace: Signal after Begin")
	}
	if widthBits < 1 || widthBits > 64 {
		panic(fmt.Sprintf("trace: signal %q width %d", name, widthBits))
	}
	id := SignalID(len(v.signals))
	v.signals = append(v.signals, signal{name: name, width: widthBits, code: idCode(int(id))})
	return id
}

// idCode builds the VCD identifier code: printable ASCII 33..126, multi-char
// beyond 94 signals.
func idCode(i int) string {
	const base = 94
	code := []byte{byte(33 + i%base)}
	for i >= base {
		i = i/base - 1
		code = append([]byte{byte(33 + i%base)}, code...)
	}
	return string(code)
}

// Begin writes the header. Signals declared afterwards panic.
func (v *VCD) Begin() error {
	if v.began {
		return fmt.Errorf("trace: Begin called twice")
	}
	v.began = true
	fmt.Fprintf(v.w, "$timescale %s $end\n$scope module %s $end\n", v.scale, v.module)
	for _, s := range v.signals {
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", s.width, s.code, s.name)
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
	return v.w.Flush()
}

// Set records a signal value at the current time. The change is emitted on
// the next Tick (or Close) and only if the value differs from the last one.
func (v *VCD) Set(id SignalID, value int64) {
	if !v.began {
		panic("trace: Set before Begin")
	}
	if int(id) < 0 || int(id) >= len(v.signals) {
		panic(fmt.Sprintf("trace: unknown signal %d", id))
	}
	v.pending[id] = value
}

// Tick flushes pending changes at the current timestamp and advances time by
// n ticks.
func (v *VCD) Tick(n uint64) error {
	if !v.began {
		return fmt.Errorf("trace: Tick before Begin")
	}
	if err := v.flushChanges(); err != nil {
		return err
	}
	v.now += n
	return nil
}

func (v *VCD) flushChanges() error {
	if len(v.pending) == 0 {
		return nil
	}
	// Deterministic output order.
	ids := make([]int, 0, len(v.pending))
	for id := range v.pending {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	wroteTime := false
	for _, i := range ids {
		s := &v.signals[i]
		val := v.pending[SignalID(i)]
		if s.seen && s.last == val {
			continue
		}
		if !wroteTime {
			fmt.Fprintf(v.w, "#%d\n", v.now)
			wroteTime = true
		}
		s.last = val
		s.seen = true
		if s.width == 1 {
			fmt.Fprintf(v.w, "%d%s\n", val&1, s.code)
		} else {
			fmt.Fprintf(v.w, "b%b %s\n", uint64(val), s.code)
		}
	}
	clear(v.pending)
	return nil
}

// Now returns the current tick count.
func (v *VCD) Now() uint64 { return v.now }

// Close flushes pending changes and the underlying buffer.
func (v *VCD) Close() error {
	if v.began {
		if err := v.flushChanges(); err != nil {
			return err
		}
	}
	return v.w.Flush()
}
