package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestVCDStructure(t *testing.T) {
	var buf bytes.Buffer
	v := NewVCD(&buf, "island_detection_2d", "10ns")
	idx := v.Signal("scan_idx", 16)
	lit := v.Signal("lit", 1)
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	v.Set(idx, 0)
	v.Set(lit, 1)
	v.Tick(1)
	v.Set(idx, 1)
	v.Set(lit, 0)
	v.Tick(1)
	v.Set(idx, 2)
	v.Set(lit, 0) // unchanged: must not re-emit
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 10ns $end",
		"$scope module island_detection_2d $end",
		"$var wire 16 ! scan_idx $end",
		"$var wire 1 \" lit $end",
		"$enddefinitions $end",
		"#0", "b0 !", "1\"",
		"#1", "b1 !", "0\"",
		"#2", "b10 !",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The unchanged lit=0 at #2 must appear exactly once (at #1).
	if strings.Count(out, "0\"") != 1 {
		t.Errorf("unchanged value re-emitted:\n%s", out)
	}
}

func TestVCDDefaults(t *testing.T) {
	var buf bytes.Buffer
	v := NewVCD(&buf, "", "")
	v.Signal("x", 8)
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	v.Close()
	out := buf.String()
	if !strings.Contains(out, "$scope module design $end") ||
		!strings.Contains(out, "$timescale 10ns $end") {
		t.Fatalf("defaults missing:\n%s", out)
	}
}

func TestVCDTimeAdvances(t *testing.T) {
	var buf bytes.Buffer
	v := NewVCD(&buf, "m", "1ns")
	s := v.Signal("s", 4)
	v.Begin()
	v.Set(s, 1)
	v.Tick(5)
	if v.Now() != 5 {
		t.Fatalf("Now = %d, want 5", v.Now())
	}
	v.Set(s, 2)
	v.Tick(3)
	v.Close()
	out := buf.String()
	if !strings.Contains(out, "#0") || !strings.Contains(out, "#5") {
		t.Fatalf("timestamps wrong:\n%s", out)
	}
}

func TestVCDErrorsAndPanics(t *testing.T) {
	var buf bytes.Buffer
	v := NewVCD(&buf, "m", "")
	s := v.Signal("s", 1)
	if err := v.Tick(1); err == nil {
		t.Error("Tick before Begin must error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set before Begin must panic")
			}
		}()
		v.Set(s, 1)
	}()
	v.Begin()
	if err := v.Begin(); err == nil {
		t.Error("double Begin must error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Signal after Begin must panic")
			}
		}()
		v.Signal("late", 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown signal must panic")
			}
		}()
		v.Set(SignalID(99), 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad width must panic")
			}
		}()
		NewVCD(&buf, "m", "").Signal("w", 0)
	}()
}

func TestIDCodes(t *testing.T) {
	if idCode(0) != "!" || idCode(93) != "~" {
		t.Fatalf("single-char codes wrong: %q %q", idCode(0), idCode(93))
	}
	if idCode(94) != "!!" {
		t.Fatalf("multi-char rollover wrong: %q", idCode(94))
	}
	// All distinct over a wide range.
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
	}
}
