// Package resource estimates FPGA resource usage (BRAM18K, FF, LUT) for the
// designs in internal/design and formats Vitis-style synthesis report rows —
// the substitution this reproduction makes for AMD Vitis HLS 2022.1 (see
// DESIGN.md §2).
//
// BRAM packing follows the real RAMB18E1 primitive geometry of the paper's
// Kintex-7 target: an 18 Kb block configurable as 16K×1, 8K×2, 4K×4, 2K×9,
// 1K×18 or 512×36. Small arrays below a threshold map to LUTRAM/registers
// instead, which is what produces the stepwise BRAM growth the paper observes
// ("jumps occur when storage exceeds a BRAM block threshold", §5.5).
package resource

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Device models an FPGA part's capacity. Percent columns in Tables 3–4 are
// utilization against the paper's synthesis target.
type Device struct {
	Name    string
	FF      int
	LUT     int
	BRAM18K int
}

// KintexXC7K325T is the paper's target: Xilinx Kintex-7 XC7K325T-2FFG676
// (§5.5). Capacities are the data-sheet values: 407,600 FFs, 203,800 LUTs,
// 445 RAMB36 blocks = 890 RAMB18 blocks.
var KintexXC7K325T = Device{Name: "xc7k325t-2ffg676", FF: 407600, LUT: 203800, BRAM18K: 890}

// PctFF returns flip-flop utilization as a rounded integer percentage,
// matching the "%" columns of Tables 3 and 4.
func (d Device) PctFF(n int) int { return pct(n, d.FF) }

// PctLUT returns LUT utilization as a rounded integer percentage.
func (d Device) PctLUT(n int) int { return pct(n, d.LUT) }

// PctBRAM returns BRAM18K utilization as a rounded integer percentage.
func (d Device) PctBRAM(n int) int { return pct(n, d.BRAM18K) }

func pct(n, capacity int) int {
	if capacity <= 0 {
		return 0
	}
	return int(float64(n)/float64(capacity)*100 + 0.5)
}

// BRAM18KFor returns the number of RAMB18 blocks needed for a memory of the
// given depth and element width, using the primitive's width/depth modes.
// Widths above 36 are split into ⌈width/36⌉ parallel 512-deep slices.
func BRAM18KFor(depth, widthBits int) int {
	if depth <= 0 || widthBits <= 0 {
		return 0
	}
	if widthBits > 36 {
		cols := (widthBits + 35) / 36
		return cols * ((depth + 511) / 512)
	}
	var maxDepth int
	switch {
	case widthBits <= 1:
		maxDepth = 16384
	case widthBits <= 2:
		maxDepth = 8192
	case widthBits <= 4:
		maxDepth = 4096
	case widthBits <= 9:
		maxDepth = 2048
	case widthBits <= 18:
		maxDepth = 1024
	default:
		maxDepth = 512
	}
	return (depth + maxDepth - 1) / maxDepth
}

// LUTRAMThresholdBits is the storage size below which HLS leaves an array in
// distributed RAM rather than block RAM (Vitis' default auto-binding
// behaviour for small arrays).
const LUTRAMThresholdBits = 1024

// Usage is one design's estimated resource consumption.
type Usage struct {
	BRAM18K int
	FF      int
	LUT     int
}

// Add returns the component-wise sum.
func (u Usage) Add(o Usage) Usage {
	return Usage{BRAM18K: u.BRAM18K + o.BRAM18K, FF: u.FF + o.FF, LUT: u.LUT + o.LUT}
}

// Report mirrors one row of the paper's tables: a synthesized configuration
// with its timing and resource results.
type Report struct {
	// Design names the top-level function (e.g. "island_detection_2d").
	Design string
	// Stage is the optimization stage ("Baseline", "Bind Storage",
	// "Unrolled", "Pipelined").
	Stage string
	// Connectivity is 4-way or 8-way.
	Connectivity grid.Connectivity
	// Rows, Cols give the array size.
	Rows, Cols int
	// LatencyCycles is the worst-case function latency in clock cycles.
	LatencyCycles int64
	// II is the function initiation interval. The paper's tables report
	// II = latency because the outer design is not overlapped (§6).
	II int64
	// InnerII is the initiation interval achieved by the inner labeling
	// loop (1 when pipelined — the §5.4/§5.5 headline property).
	InnerII int64
	// Usage is the estimated resource consumption.
	Usage Usage
	// ClockMHz is the synthesis clock (100 MHz in §5.5).
	ClockMHz float64
	// DynamicCycles is the data-dependent cycle count actually consumed by
	// the simulated event, always ≤ LatencyCycles (the resolve loop exits at
	// the first zero merge-table entry). Not part of a Vitis report; kept
	// for model introspection.
	DynamicCycles int64
}

// Pixels returns Rows*Cols.
func (r Report) Pixels() int { return r.Rows * r.Cols }

// LatencySeconds converts the worst-case latency to seconds at ClockMHz.
func (r Report) LatencySeconds() float64 {
	if r.ClockMHz <= 0 {
		return 0
	}
	return float64(r.LatencyCycles) / (r.ClockMHz * 1e6)
}

// EventsPerSecond is the §5.5 throughput metric: 1 / (latency_cycles ×
// cycle_time). The paper's 43×43 4-way design reaches ≈15k events/s this way.
func (r Report) EventsPerSecond() float64 {
	s := r.LatencySeconds()
	if s <= 0 {
		return 0
	}
	return 1 / s
}

// SizeLabel renders "8x10"-style size strings used in the tables.
func (r Report) SizeLabel() string { return fmt.Sprintf("%dx%d", r.Rows, r.Cols) }

// String renders one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-12s %-7s %5s | lat %7d | II %7d | BRAM %3d | FF %6d | LUT %6d",
		r.Stage, r.Connectivity, r.SizeLabel(), r.LatencyCycles, r.II,
		r.Usage.BRAM18K, r.Usage.FF, r.Usage.LUT)
}
