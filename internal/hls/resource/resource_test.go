package resource

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

func TestDeviceCapacities(t *testing.T) {
	// The paper's % columns imply these capacities: 63,358 FF = 15% and
	// 41,588 LUT = 20% on the XC7K325T.
	d := KintexXC7K325T
	if got := d.PctFF(63358); got != 16 && got != 15 {
		t.Errorf("PctFF(63358) = %d, want ~15", got)
	}
	if got := d.PctLUT(41588); got != 20 {
		t.Errorf("PctLUT(41588) = %d, want 20", got)
	}
	if got := d.PctFF(132369); got != 32 {
		t.Errorf("PctFF(132369) = %d, want 32 (Table 3, 64x64)", got)
	}
	if got := d.PctFF(199694); got != 49 && got != 48 {
		t.Errorf("PctFF(199694) = %d, want ~48 (Table 4, 64x64)", got)
	}
}

func TestPctZeroCapacity(t *testing.T) {
	d := Device{}
	if d.PctFF(100) != 0 || d.PctLUT(100) != 0 || d.PctBRAM(100) != 0 {
		t.Fatal("zero-capacity device must report 0%")
	}
}

func TestBRAM18KPacking(t *testing.T) {
	cases := []struct{ depth, width, want int }{
		{0, 16, 0},    // empty
		{512, 36, 1},  // exactly one block in 512×36 mode
		{513, 36, 2},  // spills
		{1024, 18, 1}, // 1K×18 mode
		{1024, 16, 1}, // 16-bit fits 18-bit mode
		{1025, 16, 2}, // spills
		{2048, 9, 1},  // 2K×9
		{4096, 4, 1},  // 4K×4
		{8192, 2, 1},  // 8K×2
		{16384, 1, 1}, // 16K×1
		{16385, 1, 2}, // spills
		{512, 72, 2},  // wide: two 36-bit columns
		{1024, 72, 4}, // wide and deep
		{100, 32, 1},  // small still costs one block
		{1849, 16, 2}, // 43×43 labels
		{4096, 16, 4}, // 64×64 labels
	}
	for _, tc := range cases {
		if got := BRAM18KFor(tc.depth, tc.width); got != tc.want {
			t.Errorf("BRAM18KFor(%d,%d) = %d, want %d", tc.depth, tc.width, got, tc.want)
		}
	}
}

func TestUsageAdd(t *testing.T) {
	u := Usage{BRAM18K: 1, FF: 10, LUT: 20}.Add(Usage{BRAM18K: 2, FF: 30, LUT: 40})
	if u.BRAM18K != 3 || u.FF != 40 || u.LUT != 60 {
		t.Fatalf("Add = %+v", u)
	}
}

func TestReportThroughput(t *testing.T) {
	// §5.5: 6668 cycles × 10 ns ≈ 15k events/s at 100 MHz for 43×43 4-way.
	r := Report{
		Rows: 43, Cols: 43, LatencyCycles: 6668, ClockMHz: 100,
		Connectivity: grid.FourWay,
	}
	eps := r.EventsPerSecond()
	if math.Abs(eps-14997) > 1 {
		t.Fatalf("EventsPerSecond = %.1f, want ≈14997", eps)
	}
	if r.LatencySeconds() <= 0 {
		t.Fatal("latency seconds must be positive")
	}
	if r.Pixels() != 1849 {
		t.Fatalf("Pixels = %d, want 1849", r.Pixels())
	}
	if r.SizeLabel() != "43x43" {
		t.Fatalf("SizeLabel = %q", r.SizeLabel())
	}
}

func TestReportZeroClock(t *testing.T) {
	r := Report{LatencyCycles: 100}
	if r.LatencySeconds() != 0 || r.EventsPerSecond() != 0 {
		t.Fatal("zero clock must yield zero timing")
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Stage: "Pipelined", Connectivity: grid.FourWay, Rows: 8, Cols: 10,
		LatencyCycles: 340, II: 340, Usage: Usage{BRAM18K: 5, FF: 4229, LUT: 4096},
	}
	s := r.String()
	for _, want := range []string{"Pipelined", "4-way", "8x10", "340", "4229", "4096"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

// Property: packing is monotone in depth and width, and never returns fewer
// blocks than the raw bits require.
func TestBRAMPackingMonotoneProperty(t *testing.T) {
	f := func(d1, d2 uint16, w1, w2 uint8) bool {
		da, db := int(d1%8192)+1, int(d2%8192)+1
		wa, wb := int(w1%72)+1, int(w2%72)+1
		if da > db {
			da, db = db, da
		}
		if wa > wb {
			wa, wb = wb, wa
		}
		if BRAM18KFor(da, wa) > BRAM18KFor(db, wa) {
			return false // deeper must not need fewer
		}
		if BRAM18KFor(da, wa) > BRAM18KFor(da, wb) {
			return false // wider must not need fewer
		}
		// Capacity: blocks × 18Kb must cover depth×width bits.
		blocks := BRAM18KFor(da, wa)
		return blocks*18*1024 >= da*wa || blocks >= (da*wa+18*1024-1)/(18*1024)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
