// Package mem models the on-chip storage kinds an HLS tool can bind an array
// to, with the access-latency and port semantics that drive the paper's
// optimization story (§5.2):
//
//   - Registers: every element in flip-flops; reads are combinational (zero
//     additional cycles) and unlimited ports — but FF/LUT cost scales with
//     the array size.
//   - LUTRAM: distributed RAM; combinational read, cheap for small arrays.
//   - BRAMDualPort: block RAM bound with `#pragma HLS bind_storage ... RAM_2P`;
//     one-cycle read latency and at most two port accesses per cycle. Saves
//     logic but slows a non-pipelined loop — exactly the 998→1158 regression
//     in Table 1 — until pipelining hides the latency (§5.4).
//
// Arrays also support cyclic partitioning (`#pragma HLS ARRAY_PARTITION
// cyclic factor=N`), which splits storage into N independently-ported banks
// so an unrolled loop can touch N elements per cycle (§5.3, Fig 7).
package mem

import (
	"fmt"
	"math/bits"
)

// Kind is the storage binding of an array.
type Kind int

const (
	// Registers holds every element in flip-flops (the HLS default for small
	// arrays with heavy multi-porting, and the paper's baseline merge table).
	Registers Kind = iota
	// LUTRAM is distributed RAM built from LUTs.
	LUTRAM
	// BRAMDualPort is dual-port block RAM (RAM_2P): 1-cycle read latency,
	// two ports per cycle.
	BRAMDualPort
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Registers:
		return "registers"
	case LUTRAM:
		return "lutram"
	case BRAMDualPort:
		return "bram-2p"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ReadLatency returns the extra cycles one read costs relative to a
// combinational register read.
func (k Kind) ReadLatency() int {
	if k == BRAMDualPort {
		return 1
	}
	return 0
}

// PortsPerCycle returns how many accesses (reads+writes) one bank supports
// per cycle; 0 means unlimited (register files expose every element).
func (k Kind) PortsPerCycle() int {
	if k == BRAMDualPort {
		return 2
	}
	return 0
}

// Array is one HLS array with its storage binding and access accounting.
// Element values are int32 to match the design's 32-bit channel data.
type Array struct {
	name      string
	kind      Kind
	widthBits int
	banks     int // cyclic partition factor; 1 = unpartitioned
	data      []int32
	reads     int64
	writes    int64
	seus      int64
	parity    []uint8 // per-element stored parity bit; nil until EnableParity
}

// NewArray returns a zeroed array of size elements, each widthBits wide,
// bound to the given storage kind.
func NewArray(name string, size, widthBits int, kind Kind) *Array {
	if size < 1 {
		panic(fmt.Sprintf("mem: array %q size %d", name, size))
	}
	if widthBits < 1 || widthBits > 64 {
		panic(fmt.Sprintf("mem: array %q width %d bits", name, widthBits))
	}
	return &Array{name: name, kind: kind, widthBits: widthBits, banks: 1, data: make([]int32, size)}
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// Kind returns the storage binding.
func (a *Array) Kind() Kind { return a.kind }

// Size returns the element count.
func (a *Array) Size() int { return len(a.data) }

// WidthBits returns the element width.
func (a *Array) WidthBits() int { return a.widthBits }

// Bits returns total storage bits.
func (a *Array) Bits() int { return len(a.data) * a.widthBits }

// Banks returns the cyclic partition factor (1 = unpartitioned).
func (a *Array) Banks() int { return a.banks }

// Partition applies cyclic partitioning with the given factor. Element i
// lives in bank i % factor, so factor consecutive elements are in distinct
// banks and can be accessed in the same cycle by an unrolled loop.
func (a *Array) Partition(factor int) {
	if factor < 1 || factor > len(a.data) {
		panic(fmt.Sprintf("mem: array %q partition factor %d of %d elements", a.name, factor, len(a.data)))
	}
	a.banks = factor
}

// BankOf returns the bank index element i maps to under cyclic partitioning.
func (a *Array) BankOf(i int) int { return i % a.banks }

// BankSize returns the (maximum) elements per bank.
func (a *Array) BankSize() int { return (len(a.data) + a.banks - 1) / a.banks }

// BankBits returns storage bits per bank.
func (a *Array) BankBits() int { return a.BankSize() * a.widthBits }

// Read returns element i and counts the access.
func (a *Array) Read(i int) int32 {
	if i < 0 || i >= len(a.data) {
		panic(fmt.Sprintf("mem: array %q read index %d of %d", a.name, i, len(a.data)))
	}
	a.reads++
	return a.data[i]
}

// Write stores v at element i and counts the access. When parity protection
// is enabled the stored parity bit is refreshed alongside the data, as a
// hardware write port would.
func (a *Array) Write(i int, v int32) {
	if i < 0 || i >= len(a.data) {
		panic(fmt.Sprintf("mem: array %q write index %d of %d", a.name, i, len(a.data)))
	}
	a.writes++
	a.data[i] = v
	if a.parity != nil {
		a.parity[i] = parityOf(v)
	}
}

func parityOf(v int32) uint8 { return uint8(bits.OnesCount32(uint32(v)) & 1) }

// EnableParity attaches one even-parity bit per element, refreshed on every
// Write and deliberately NOT refreshed by FlipBit — that is what makes an
// upset detectable. Existing contents are covered immediately.
func (a *Array) EnableParity() {
	a.parity = make([]uint8, len(a.data))
	for i, v := range a.data {
		a.parity[i] = parityOf(v)
	}
}

// ParityEnabled reports whether the array carries parity bits.
func (a *Array) ParityEnabled() bool { return a.parity != nil }

// CheckParity reports whether element i's data matches its stored parity bit.
// It is always true when parity is disabled. The check is free — it models
// the comparator a scrubber reads alongside the data port.
func (a *Array) CheckParity(i int) bool {
	if a.parity == nil {
		return true
	}
	return a.parity[i] == parityOf(a.data[i])
}

// ScanParity sweeps the array and returns the indices whose parity check
// fails — the scrub pass a radiation-tolerant design runs between events.
func (a *Array) ScanParity() []int {
	var bad []int
	for i := range a.data {
		if !a.CheckParity(i) {
			bad = append(bad, i)
		}
	}
	return bad
}

// FlipBit models a single-event upset: it inverts bit b (mod the element
// width) of element i directly in storage, bypassing the write port — no
// write is counted and the parity bit is left stale. Returns the corrupted
// value.
func (a *Array) FlipBit(i int, b uint) int32 {
	if i < 0 || i >= len(a.data) {
		panic(fmt.Sprintf("mem: array %q flip index %d of %d", a.name, i, len(a.data)))
	}
	a.seus++
	a.data[i] ^= 1 << (b % uint(a.widthBits))
	return a.data[i]
}

// SEUs returns how many upsets have been injected with FlipBit.
func (a *Array) SEUs() int64 { return a.seus }

// Reads returns the total read count.
func (a *Array) Reads() int64 { return a.reads }

// Writes returns the total write count.
func (a *Array) Writes() int64 { return a.writes }

// Reset zeroes the contents (not the access counters) — the per-event
// re-initialization the hardware performs between images. Parity bits are
// refreshed, so a reset also scrubs any latent upset.
func (a *Array) Reset() {
	for i := range a.data {
		a.data[i] = 0
	}
	if a.parity != nil {
		for i := range a.parity {
			a.parity[i] = 0
		}
	}
}

// Snapshot returns a copy of the contents.
func (a *Array) Snapshot() []int32 {
	out := make([]int32, len(a.data))
	copy(out, a.data)
	return out
}
