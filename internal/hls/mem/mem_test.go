package mem

import (
	"testing"
	"testing/quick"
)

func TestKindSemantics(t *testing.T) {
	if Registers.ReadLatency() != 0 || LUTRAM.ReadLatency() != 0 {
		t.Error("register/LUTRAM reads are combinational")
	}
	if BRAMDualPort.ReadLatency() != 1 {
		t.Error("BRAM reads cost one cycle (§5.2)")
	}
	if BRAMDualPort.PortsPerCycle() != 2 {
		t.Error("RAM_2P supports two accesses per cycle")
	}
	if Registers.PortsPerCycle() != 0 {
		t.Error("register files are fully ported (0 = unlimited)")
	}
	for _, k := range []Kind{Registers, LUTRAM, BRAMDualPort} {
		if k.String() == "" {
			t.Error("kind must print")
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must print")
	}
}

func TestArrayReadWrite(t *testing.T) {
	a := NewArray("data", 10, 32, BRAMDualPort)
	a.Write(3, 42)
	if a.Read(3) != 42 {
		t.Fatal("read back failed")
	}
	if a.Reads() != 1 || a.Writes() != 1 {
		t.Fatalf("access counts %d/%d, want 1/1", a.Reads(), a.Writes())
	}
	if a.Bits() != 320 {
		t.Fatalf("Bits = %d, want 320", a.Bits())
	}
	if a.Name() != "data" || a.Kind() != BRAMDualPort || a.Size() != 10 || a.WidthBits() != 32 {
		t.Fatal("metadata wrong")
	}
}

func TestArrayBoundsPanics(t *testing.T) {
	a := NewArray("a", 4, 16, Registers)
	for _, fn := range []func(){
		func() { a.Read(-1) },
		func() { a.Read(4) },
		func() { a.Write(4, 0) },
		func() { NewArray("bad", 0, 16, Registers) },
		func() { NewArray("bad", 4, 0, Registers) },
		func() { NewArray("bad", 4, 65, Registers) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPartitioning(t *testing.T) {
	// §5.3: cyclic factor=16 puts 16 consecutive elements in 16 banks.
	a := NewArray("data", 80, 32, BRAMDualPort)
	if a.Banks() != 1 {
		t.Fatal("unpartitioned array must have 1 bank")
	}
	a.Partition(16)
	if a.Banks() != 16 {
		t.Fatal("partition factor not applied")
	}
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		b := a.BankOf(i)
		if seen[b] {
			t.Fatalf("elements 0..15 collide in bank %d", b)
		}
		seen[b] = true
	}
	if a.BankOf(16) != a.BankOf(0) {
		t.Fatal("cyclic wrap wrong")
	}
	if a.BankSize() != 5 {
		t.Fatalf("BankSize = %d, want 5", a.BankSize())
	}
	if a.BankBits() != 160 {
		t.Fatalf("BankBits = %d, want 160", a.BankBits())
	}
}

func TestPartitionPanics(t *testing.T) {
	a := NewArray("a", 8, 8, Registers)
	for _, f := range []int{0, -1, 9} {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d) must panic", f)
				}
			}()
			a.Partition(f)
		}()
	}
}

func TestResetAndSnapshot(t *testing.T) {
	a := NewArray("mt", 4, 16, Registers)
	a.Write(0, 7)
	a.Write(2, 9)
	snap := a.Snapshot()
	if snap[0] != 7 || snap[2] != 9 {
		t.Fatal("snapshot wrong")
	}
	a.Reset()
	if a.Read(0) != 0 || a.Read(2) != 0 {
		t.Fatal("reset must zero contents")
	}
	if snap[0] != 7 {
		t.Fatal("snapshot must be independent of Reset")
	}
	if a.Writes() != 2 {
		t.Fatal("Reset must not count as accesses")
	}
}

// Property: after any write sequence, Read returns the last value written to
// each index, and accounting matches the operation count.
func TestArrayConsistencyProperty(t *testing.T) {
	f := func(ops [50]struct {
		Idx uint8
		Val int32
	}) bool {
		a := NewArray("a", 16, 32, LUTRAM)
		shadow := make(map[int]int32)
		for _, op := range ops {
			i := int(op.Idx) % 16
			a.Write(i, op.Val)
			shadow[i] = op.Val
		}
		for i, want := range shadow {
			if a.Read(i) != want {
				return false
			}
		}
		return a.Writes() == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BankOf assigns every bank ⌈size/banks⌉ or ⌊size/banks⌋ elements.
func TestBankBalanceProperty(t *testing.T) {
	f := func(sz, factor uint8) bool {
		size := int(sz)%100 + 1
		banks := int(factor)%size + 1
		a := NewArray("a", size, 8, BRAMDualPort)
		a.Partition(banks)
		counts := make([]int, banks)
		for i := 0; i < size; i++ {
			counts[a.BankOf(i)]++
		}
		lo, hi := size/banks, (size+banks-1)/banks
		for _, c := range counts {
			if c < lo || c > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParityDetectsFlipBit(t *testing.T) {
	a := NewArray("mt", 16, 21, BRAMDualPort)
	a.EnableParity()
	if !a.ParityEnabled() {
		t.Fatal("parity not enabled")
	}
	for i := 0; i < a.Size(); i++ {
		a.Write(i, int32(i*3))
	}
	if bad := a.ScanParity(); bad != nil {
		t.Fatalf("clean array fails parity at %v", bad)
	}
	writes := a.Writes()
	got := a.FlipBit(5, 2)
	if got != int32(15)^4 {
		t.Fatalf("FlipBit returned %d, want %d", got, int32(15)^4)
	}
	if a.Writes() != writes {
		t.Fatal("an SEU must not count as a write-port access")
	}
	if a.SEUs() != 1 {
		t.Fatalf("SEUs = %d, want 1", a.SEUs())
	}
	if a.CheckParity(5) {
		t.Fatal("single-bit flip must fail the parity check")
	}
	bad := a.ScanParity()
	if len(bad) != 1 || bad[0] != 5 {
		t.Fatalf("ScanParity = %v, want [5]", bad)
	}
	// A rewrite through the port scrubs the element.
	a.Write(5, 15)
	if bad := a.ScanParity(); bad != nil {
		t.Fatalf("rewritten element still fails parity: %v", bad)
	}
	// Double flip of the same bit restores data AND parity consistency —
	// the classic limitation of single-bit parity.
	a.FlipBit(7, 0)
	a.FlipBit(7, 0)
	if !a.CheckParity(7) {
		t.Fatal("even number of flips is invisible to parity")
	}
}

func TestFlipBitWrapsWidth(t *testing.T) {
	a := NewArray("w", 4, 8, Registers)
	a.EnableParity()
	a.Write(0, 0)
	a.FlipBit(0, 8) // bit 8 of an 8-bit element wraps to bit 0
	if v := a.Read(0); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	if a.CheckParity(0) {
		t.Fatal("wrapped flip must still break parity")
	}
}

func TestResetScrubsParity(t *testing.T) {
	a := NewArray("r", 8, 16, LUTRAM)
	a.EnableParity()
	a.Write(3, 0x55)
	a.FlipBit(3, 1)
	if a.CheckParity(3) {
		t.Fatal("flip undetected")
	}
	a.Reset()
	if bad := a.ScanParity(); bad != nil {
		t.Fatalf("reset array fails parity at %v", bad)
	}
}

func TestParityDisabledIsAlwaysClean(t *testing.T) {
	a := NewArray("np", 4, 12, Registers)
	a.Write(1, 7)
	a.FlipBit(1, 0)
	if !a.CheckParity(1) || a.ScanParity() != nil {
		t.Fatal("parity checks must pass when parity is disabled")
	}
}
