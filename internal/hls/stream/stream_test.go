package stream

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	s := New[int]("q", 4, 32)
	for i := 1; i <= 4; i++ {
		if err := s.Write(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 4; i++ {
		v, err := s.Read()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("read %d, want %d", v, i)
		}
	}
	if !s.Empty() {
		t.Fatal("should be empty")
	}
}

func TestOverflowUnderflow(t *testing.T) {
	s := New[int]("q", 2, 8)
	s.MustWrite(1)
	s.MustWrite(2)
	if !s.Full() {
		t.Fatal("should be full")
	}
	if err := s.Write(3); err == nil {
		t.Fatal("write to full FIFO must error")
	}
	s.MustRead()
	s.MustRead()
	if _, err := s.Read(); err == nil {
		t.Fatal("read from empty FIFO must error")
	}
}

func TestMustPanics(t *testing.T) {
	s := New[int]("q", 1, 8)
	s.MustWrite(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustWrite on full FIFO must panic")
			}
		}()
		s.MustWrite(2)
	}()
	s.MustRead()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRead on empty FIFO must panic")
			}
		}()
		s.MustRead()
	}()
}

func TestHighWaterMark(t *testing.T) {
	s := New[int]("q", 8, 16)
	s.MustWrite(1)
	s.MustWrite(2)
	s.MustWrite(3)
	s.MustRead()
	s.MustWrite(4)
	if s.MaxOccupancy() != 3 {
		t.Fatalf("MaxOccupancy = %d, want 3", s.MaxOccupancy())
	}
	if s.Reads() != 1 || s.Writes() != 4 {
		t.Fatalf("reads/writes = %d/%d, want 1/4", s.Reads(), s.Writes())
	}
}

func TestDrain(t *testing.T) {
	s := New[string]("q", 4, 8)
	s.MustWrite("a")
	s.MustWrite("b")
	got := s.Drain()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Drain = %v", got)
	}
	if !s.Empty() {
		t.Fatal("Drain must empty the FIFO")
	}
}

func TestMetadata(t *testing.T) {
	s := New[int]("merged_integrals", 5, 512)
	if s.Name() != "merged_integrals" || s.Depth() != 5 || s.WidthBits() != 512 {
		t.Fatal("metadata wrong")
	}
	if s.Bits() != 2560 {
		t.Fatalf("Bits = %d, want 2560", s.Bits())
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New[int]("q", 0, 8) },
		func() { New[int]("q", 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor args must panic")
				}
			}()
			fn()
		}()
	}
}

// Property: any interleaving of writes and reads preserves FIFO order.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		s := New[int]("q", 64, 32)
		next, expect := 0, 0
		for _, isWrite := range ops {
			if isWrite {
				if s.Full() {
					continue
				}
				s.MustWrite(next)
				next++
			} else {
				if s.Empty() {
					continue
				}
				if s.MustRead() != expect {
					return false
				}
				expect++
			}
		}
		// Drain remainder.
		for !s.Empty() {
			if s.MustRead() != expect {
				return false
			}
			expect++
		}
		return expect == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ring wrap-around never corrupts data across many cycles.
func TestRingWrapProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := New[int]("q", 3, 8)
		val := 0
		for i := 0; i < int(n); i++ {
			s.MustWrite(val)
			if s.MustRead() != val {
				return false
			}
			val++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
