// Package stream models hls::stream FIFO channels as used by the dataflow
// pipeline in the paper (§5.4): bounded queues connecting design stages, with
// occupancy tracking so the resource estimator can size their hardware
// implementation (shift registers vs. LUTRAM vs. BRAM).
//
// The designs in internal/design execute single-threaded cycle simulations,
// so streams are simple bounded queues rather than goroutine-safe channels;
// a full (or empty) stream is a design error the hardware would express as a
// stall or deadlock, reported here as an error.
package stream

import "fmt"

// Stream is a bounded FIFO of T with hardware metadata.
type Stream[T any] struct {
	name      string
	depth     int
	widthBits int
	buf       []T
	head      int // index of the oldest element in buf (ring)
	n         int // current occupancy
	maxOcc    int
	reads     int64
	writes    int64
}

// New returns an empty stream. depth is the FIFO capacity in elements;
// widthBits is the hardware width of one element (for resource estimation).
func New[T any](name string, depth, widthBits int) *Stream[T] {
	if depth < 1 {
		panic(fmt.Sprintf("stream %q: depth must be >= 1, got %d", name, depth))
	}
	if widthBits < 1 {
		panic(fmt.Sprintf("stream %q: widthBits must be >= 1, got %d", name, widthBits))
	}
	return &Stream[T]{name: name, depth: depth, widthBits: widthBits, buf: make([]T, depth)}
}

// Name returns the stream's name.
func (s *Stream[T]) Name() string { return s.name }

// Depth returns the FIFO capacity in elements.
func (s *Stream[T]) Depth() int { return s.depth }

// WidthBits returns the element width in bits.
func (s *Stream[T]) WidthBits() int { return s.widthBits }

// Len returns the current occupancy.
func (s *Stream[T]) Len() int { return s.n }

// Empty reports whether the FIFO holds no elements.
func (s *Stream[T]) Empty() bool { return s.n == 0 }

// Full reports whether the FIFO is at capacity.
func (s *Stream[T]) Full() bool { return s.n == s.depth }

// MaxOccupancy returns the high-water mark since creation — what the FIFO
// depth actually needed to be.
func (s *Stream[T]) MaxOccupancy() int { return s.maxOcc }

// Reads returns the total successful Read count.
func (s *Stream[T]) Reads() int64 { return s.reads }

// Writes returns the total successful Write count.
func (s *Stream[T]) Writes() int64 { return s.writes }

// Write appends v. Writing to a full FIFO is an error: in hardware the
// producer would stall, and in the paper's dataflow designs FIFO depths are
// chosen so this never happens.
func (s *Stream[T]) Write(v T) error {
	if s.n == s.depth {
		return fmt.Errorf("stream %q: write to full FIFO (depth %d)", s.name, s.depth)
	}
	s.buf[(s.head+s.n)%s.depth] = v
	s.n++
	s.writes++
	if s.n > s.maxOcc {
		s.maxOcc = s.n
	}
	return nil
}

// Read removes and returns the oldest element. Reading an empty FIFO is an
// error (the hardware consumer would stall forever on a design bug).
func (s *Stream[T]) Read() (T, error) {
	var zero T
	if s.n == 0 {
		return zero, fmt.Errorf("stream %q: read from empty FIFO", s.name)
	}
	v := s.buf[s.head]
	s.buf[s.head] = zero
	s.head = (s.head + 1) % s.depth
	s.n--
	s.reads++
	return v, nil
}

// MustWrite is Write that panics on overflow; used by designs whose FIFO
// sizing has been proven sufficient (a panic indicates a design bug, exactly
// like a co-sim deadlock).
func (s *Stream[T]) MustWrite(v T) {
	if err := s.Write(v); err != nil {
		panic(err)
	}
}

// MustRead is Read that panics on underflow.
func (s *Stream[T]) MustRead() T {
	v, err := s.Read()
	if err != nil {
		panic(err)
	}
	return v
}

// Drain reads every element currently queued, in order.
func (s *Stream[T]) Drain() []T {
	out := make([]T, 0, s.n)
	for s.n > 0 {
		out = append(out, s.MustRead())
	}
	return out
}

// Bits returns the total storage the FIFO represents (depth × width), used
// by the resource estimator to pick an implementation.
func (s *Stream[T]) Bits() int { return s.depth * s.widthBits }
