//go:build !unix

package wal

import "os"

// mmapSupported is false here: segments buffer in the heap and flush at seal
// or Sync, so recording works but a process kill can lose buffered records.
// The recovery scanner behaves identically either way.
const mmapSupported = false

func mapFile(f *os.File, size int64) ([]byte, error) {
	panic("wal: mapFile called on a platform without mmap support")
}

func unmapFile(data []byte) error {
	panic("wal: unmapFile called on a platform without mmap support")
}
