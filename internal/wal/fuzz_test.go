package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// buildSegmentBytes assembles a well-formed in-memory segment with n records.
func buildSegmentBytes(index uint64, n int) []byte {
	seg := make([]byte, segHeaderLen)
	copy(seg, segMagic)
	binary.BigEndian.PutUint32(seg[8:], segVersion)
	binary.BigEndian.PutUint64(seg[12:], index)
	binary.BigEndian.PutUint64(seg[20:], 1234567890)
	for i := 0; i < n; i++ {
		ev := uint32(i)
		payload := payloadFor(ev, 20+i*13)
		hdr := make([]byte, recHeaderLen)
		binary.BigEndian.PutUint32(hdr, recMagic)
		binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[8:], ev)
		binary.BigEndian.PutUint64(hdr[12:], uint64(i)*1000)
		crc := crc32.Update(0, castagnoli, hdr[:20])
		crc = crc32.Update(crc, castagnoli, payload)
		binary.BigEndian.PutUint32(hdr[20:], crc)
		seg = append(seg, hdr...)
		seg = append(seg, payload...)
	}
	return seg
}

// FuzzSegmentScan throws chaos-corrupted segments at the recovery scanner:
// byte flips, truncation, mid-record cuts, and appended garbage, driven by the
// fuzzer's choice bytes. The scanner must never panic, never return a record
// whose CRC does not cover its bytes, and always terminate.
func FuzzSegmentScan(f *testing.F) {
	clean := buildSegmentBytes(1, 8)
	f.Add(clean, []byte{})
	f.Add(clean, []byte{0x01, 0x10, 0x00})       // flip a byte near the front
	f.Add(clean, []byte{0x02, 0x00, 0x40})       // truncate mid-record
	f.Add(clean, []byte{0x03, 0xA1, 0xFA, 0x55}) // append garbage
	f.Add([]byte("HEPCWAL1 short"), []byte{})
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, seg []byte, ops []byte) {
		// Apply the op stream: each op consumes up to 3 bytes of choice.
		for len(ops) >= 3 {
			kind, a, b := ops[0], ops[1], ops[2]
			ops = ops[3:]
			if len(seg) == 0 {
				break
			}
			pos := (int(a)<<8 | int(b)) % len(seg)
			switch kind % 4 {
			case 0: // flip one byte
				seg[pos] ^= 1 << (a % 8)
			case 1: // truncate (torn write / mid-record cut)
				seg = seg[:pos]
			case 2: // zero a run (preallocation debris boundary)
				end := pos + int(a)%64
				if end > len(seg) {
					end = len(seg)
				}
				for i := pos; i < end; i++ {
					seg[i] = 0
				}
			case 3: // splice garbage
				seg = append(seg[:pos:pos], append([]byte{a, b, 0xFF}, seg[pos:]...)...)
			}
		}

		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, seg, 0o600); err != nil {
			t.Fatal(err)
		}
		sc, err := NewScanner(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		n, searchFrom := 0, 0
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			// Re-encode the record from its returned fields. nextRecord only
			// returns records whose stored CRC matches, so the re-encoded
			// bytes must appear verbatim in the file, in order — anything
			// else means the scanner surfaced a bad-CRC record.
			enc := make([]byte, recHeaderLen+len(rec.Payload))
			binary.BigEndian.PutUint32(enc, recMagic)
			binary.BigEndian.PutUint32(enc[4:], uint32(len(rec.Payload)))
			binary.BigEndian.PutUint32(enc[8:], rec.Event)
			binary.BigEndian.PutUint64(enc[12:], rec.TsNanos)
			crc := crc32.Update(0, castagnoli, enc[:20])
			crc = crc32.Update(crc, castagnoli, rec.Payload)
			binary.BigEndian.PutUint32(enc[20:], crc)
			copy(enc[recHeaderLen:], rec.Payload)
			at := bytes.Index(seg[searchFrom:], enc)
			if at < 0 {
				t.Fatalf("record %d (event %d) not found verbatim in segment bytes", n, rec.Event)
			}
			searchFrom += at + len(enc)
			n++
			if n > len(seg) {
				t.Fatalf("scanner returned %d records from a %d-byte segment", n, len(seg))
			}
		}
		if uint64(n) != sc.Records() {
			t.Fatalf("Records() = %d, returned %d", sc.Records(), n)
		}

		// repairSegment must also terminate and leave a file the scanner
		// then reads with zero torn segments.
		if _, err := repairSegment(path); err != nil {
			t.Fatalf("repair: %v", err)
		}
		sc2, err := NewScanner(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer sc2.Close()
		m := 0
		for {
			if _, err := sc2.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("post-repair scan: %v", err)
			}
			m++
		}
		if m != n {
			t.Fatalf("repair changed record count: %d -> %d", n, m)
		}
		if sc2.Torn() != 0 {
			t.Fatalf("post-repair scan still torn: %d segments, %d bytes", sc2.Torn(), sc2.TornBytes())
		}
	})
}
