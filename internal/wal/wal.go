// Package wal is the durable frame write-ahead log: a zero-copy,
// crash-recoverable record of every raw ALPHA event the ingest spine
// admitted. Production detectors reprocess — a recorded run is replayed
// through the same spine for regression, capacity, and forensic work — so
// the log stores the exact wire bytes of each assembled event, not a decoded
// form, and hepccld -replay re-serves them byte-for-byte.
//
// # On-disk format
//
// A log is a directory of fixed-size segment files named wal-%08d.seg with a
// strictly increasing index. Each segment starts with a 32-byte header
// (magic "HEPCWAL1", format version, segment index, creation time) and is
// preallocated to its full size at creation, then filled by pure memcpy into
// a shared mmap of the file — an append is two header stores, one payload
// copy, and a CRC, with no syscall on the hot path. Records are laid
// back-to-back:
//
//	offset  size  field
//	0       4     record magic "WALR"
//	4       4     payload length (bytes)
//	8       4     event id (the id carried by every frame of the payload)
//	12      8     timestamp: nanoseconds since the writer opened (monotonic),
//	              which is what lets replay reproduce the recorded pacing
//	20      4     CRC-32C over bytes 0..19 and the payload
//	24      n     payload: the event's frames, exact wire bytes
//
// # Torn-write rules
//
// The CRC is written last, after the payload, so a record interrupted by a
// crash — SIGKILL, OOM kill, power loss after the pages flushed — fails its
// CRC and is treated as the end of the segment. Preallocated-but-unwritten
// space is zeros, which fail the record magic, so a clean scan and a torn
// scan terminate the same way: at the first invalid record. Open repairs the
// newest segment by truncating everything past the last valid record (at
// most one partial record is lost, the one being appended at the kill) and
// starts a fresh segment, never appending into a recovered one.
//
// Durability is at the process level by default: appends land in the page
// cache, so a process kill loses nothing that Append returned for, while a
// machine crash can lose recently appended records. Sync forces the dirty
// pages down when a caller needs machine-crash durability.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// segMagic opens every segment file.
	segMagic = "HEPCWAL1"
	// segVersion is the current format version.
	segVersion = 1
	// segHeaderLen is the segment header size.
	segHeaderLen = 32
	// recMagic opens every record ("WALR" big-endian).
	recMagic = 0x57414C52
	// recHeaderLen is the per-record header size.
	recHeaderLen = 24
	// minSegmentBytes bounds SegmentBytes below so a segment always fits its
	// header and at least one small record.
	minSegmentBytes = 4 << 10
	// defaultSegmentBytes is the segment size when Options leaves it zero.
	defaultSegmentBytes = 64 << 20
)

// castagnoli is the CRC-32C table shared by writer and scanner.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes a Writer.
type Options struct {
	// Dir is the log directory, created if missing.
	Dir string
	// SegmentBytes is the preallocated size of each segment file.
	// Default 64 MiB; values below 4 KiB are raised to 4 KiB. A record
	// larger than one segment gets a dedicated exactly-sized segment.
	SegmentBytes int64
	// Retain bounds how many segment files are kept: when a rotation pushes
	// the count past Retain, the oldest segments are deleted. 0 keeps all.
	Retain int
	// Logger receives recovery and failure lines. nil silences them.
	Logger *log.Logger
}

// RecoverInfo reports what Open found and repaired in an existing log.
type RecoverInfo struct {
	// Segments is how many segment files existed before recovery.
	Segments int
	// TailRecords is how many valid records the newest segment held.
	TailRecords int
	// TornBytes is how many bytes of non-zero data past the last valid
	// record were truncated from the newest segment — the remains of at most
	// one record torn by a crash mid-append.
	TornBytes int64
}

// Writer appends event records to a segmented log. Append is safe for
// concurrent use (the ingest spine has one reader goroutine per connection);
// everything else must be called from one goroutine.
type Writer struct {
	opts Options

	mu       sync.Mutex
	seg      *segment
	segIndex uint64
	off      int64
	failed   error // sticky: after an I/O error the writer refuses appends
	lastErr  string
	paths    []string // live segment files, oldest first (retention input)
	start    time.Time

	records      atomic.Uint64
	bytes        atomic.Uint64
	segments     atomic.Uint64
	appendErrors atomic.Uint64
}

// Open creates or recovers the log at opts.Dir and returns a writer that
// appends to a fresh segment. An existing newest segment is repaired first:
// its tail is truncated at the last CRC-valid record, so at most one record
// (the one torn by a crash) is dropped. Recovered segments are never
// appended to again.
func Open(opts Options) (*Writer, RecoverInfo, error) {
	if opts.Dir == "" {
		return nil, RecoverInfo{}, fmt.Errorf("wal: no directory configured")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SegmentBytes < minSegmentBytes {
		opts.SegmentBytes = minSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoverInfo{}, fmt.Errorf("wal: %w", err)
	}
	paths, indexes, err := listSegments(opts.Dir)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	w := &Writer{opts: opts, paths: paths, start: time.Now()}
	info := RecoverInfo{Segments: len(paths)}
	if n := len(paths); n > 0 {
		w.segIndex = indexes[n-1]
		res, err := repairSegment(paths[n-1])
		if err != nil {
			return nil, info, err
		}
		info.TailRecords = res.records
		info.TornBytes = res.tornBytes
		if info.TornBytes > 0 && opts.Logger != nil {
			opts.Logger.Printf("wal: recovered %s: kept %d records, truncated %d torn bytes",
				filepath.Base(paths[n-1]), res.records, res.tornBytes)
		}
	}
	return w, info, nil
}

// segName formats a segment file name for index.
func segName(index uint64) string { return fmt.Sprintf("wal-%08d.seg", index) }

// listSegments returns the directory's segment paths and indexes, sorted by
// index.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	type seg struct {
		path  string
		index uint64
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, seg{filepath.Join(dir, name), idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	paths := make([]string, len(segs))
	indexes := make([]uint64, len(segs))
	for i, s := range segs {
		paths[i], indexes[i] = s.path, s.index
	}
	return paths, indexes, nil
}

// Append writes one event record. payload must be the event's exact wire
// bytes; tsNanos is stamped from the writer's monotonic clock. Concurrent
// callers serialize on the writer's mutex; the append itself is a memcpy
// into the mapped segment, no syscalls. After any I/O error the writer is
// failed: the error is sticky and every later Append returns it immediately,
// so recording can never stall or wedge the serving path.
func (w *Writer) Append(event uint32, payload []byte) error {
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		w.appendErrors.Add(1)
		return err
	}
	need := int64(recHeaderLen + len(payload))
	if w.seg == nil || w.off+need > int64(len(w.seg.data)) {
		if err := w.rotate(need); err != nil {
			w.fail(err)
			w.mu.Unlock()
			w.appendErrors.Add(1)
			return err
		}
	}
	buf := w.seg.data[w.off : w.off+need]
	binary.BigEndian.PutUint32(buf[0:], recMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[8:], event)
	binary.BigEndian.PutUint64(buf[12:], uint64(time.Since(w.start)))
	copy(buf[recHeaderLen:], payload)
	// The CRC is the commit point: it is computed over everything before it
	// and stored last, so a crash anywhere mid-append leaves a record that
	// fails validation and is truncated at recovery.
	crc := crc32.Update(0, castagnoli, buf[:20])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(buf[20:], crc)
	w.off += need
	w.mu.Unlock()
	w.records.Add(1)
	w.bytes.Add(uint64(need))
	return nil
}

// fail records the sticky failure. Caller holds w.mu.
func (w *Writer) fail(err error) {
	w.failed = err
	w.lastErr = err.Error()
	if w.opts.Logger != nil {
		w.opts.Logger.Printf("wal: recording failed (sticky): %v", err)
	}
}

// rotate seals the active segment and opens the next one, enforcing
// retention. Caller holds w.mu.
func (w *Writer) rotate(need int64) error {
	if w.seg != nil {
		if err := w.seg.seal(w.off); err != nil {
			return err
		}
		w.seg = nil
	}
	size := w.opts.SegmentBytes
	if min := need + segHeaderLen; size < min {
		size = min // oversized record: dedicated exactly-sized segment
	}
	idx := w.segIndex + 1
	path := filepath.Join(w.opts.Dir, segName(idx))
	seg, err := createSegment(path, size)
	if err != nil {
		return err
	}
	hdr := seg.data[:segHeaderLen]
	copy(hdr[0:8], segMagic)
	binary.BigEndian.PutUint32(hdr[8:], segVersion)
	binary.BigEndian.PutUint64(hdr[12:], idx)
	binary.BigEndian.PutUint64(hdr[20:], uint64(time.Now().UnixNano()))
	w.seg, w.segIndex, w.off = seg, idx, segHeaderLen
	w.paths = append(w.paths, path)
	w.segments.Add(1)
	if r := w.opts.Retain; r > 0 && len(w.paths) > r {
		for _, old := range w.paths[:len(w.paths)-r] {
			if err := os.Remove(old); err != nil && w.opts.Logger != nil {
				w.opts.Logger.Printf("wal: retention: %v", err)
			}
		}
		w.paths = append(w.paths[:0], w.paths[len(w.paths)-r:]...)
	}
	return nil
}

// Sync flushes the active segment's dirty pages to stable storage, for
// callers that need machine-crash (not just process-crash) durability.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.seg == nil {
		return nil
	}
	return w.seg.sync(w.off)
}

// Close seals the active segment (truncating it to its written length) and
// releases the mapping. Idempotent; Append after Close fails cleanly.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return nil
	}
	w.failed = fmt.Errorf("wal: closed")
	var err error
	if w.seg != nil {
		err = w.seg.seal(w.off)
		w.seg = nil
	}
	return err
}

// Snapshot is the writer's operational state as published on /stats.
type Snapshot struct {
	Dir           string `json:"dir"`
	Records       uint64 `json:"records"`
	Bytes         uint64 `json:"bytes"`
	Segments      uint64 `json:"segments"`
	ActiveSegment uint64 `json:"active_segment"`
	AppendErrors  uint64 `json:"append_errors"`
	LastError     string `json:"last_error,omitempty"`
}

// Snapshot returns the current counters.
func (w *Writer) Snapshot() Snapshot {
	s := Snapshot{
		Dir:          w.opts.Dir,
		Records:      w.records.Load(),
		Bytes:        w.bytes.Load(),
		Segments:     w.segments.Load(),
		AppendErrors: w.appendErrors.Load(),
	}
	w.mu.Lock()
	s.ActiveSegment = w.segIndex
	s.LastError = w.lastErr
	w.mu.Unlock()
	return s
}

// AppendErrors returns how many appends have failed (all of them, once the
// writer is failed: the first error is sticky).
func (w *Writer) AppendErrors() uint64 { return w.appendErrors.Load() }

// segment is one preallocated, writable segment file.
type segment struct {
	f      *os.File
	data   []byte
	mapped bool
}

// createSegment preallocates path at size and maps it writable. On platforms
// without mmap the buffer is heap-backed and flushed at seal — recording
// still works, but a process kill there can lose buffered records.
func createSegment(path string, size int64) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("wal: preallocate %s: %w", filepath.Base(path), err)
	}
	if mmapSupported {
		data, err := mapFile(f, size)
		if err == nil {
			return &segment{f: f, data: data, mapped: true}, nil
		}
		// Fall through to the heap-backed path (e.g. a filesystem that
		// refuses shared writable mappings).
	}
	return &segment{f: f, data: make([]byte, size)}, nil
}

// seal truncates the segment to its written length and closes it.
func (sg *segment) seal(off int64) error {
	var err error
	if sg.mapped {
		err = unmapFile(sg.data)
	} else if _, werr := sg.f.WriteAt(sg.data[:off], 0); werr != nil {
		err = werr
	}
	sg.data = nil
	if terr := sg.f.Truncate(off); err == nil {
		err = terr
	}
	if cerr := sg.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: seal: %w", err)
	}
	return nil
}

// sync pushes the written prefix to stable storage.
func (sg *segment) sync(off int64) error {
	if !sg.mapped {
		if _, err := sg.f.WriteAt(sg.data[:off], 0); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	// For a shared file mapping the dirty pages live in the page cache, so
	// fsync flushes them along with the metadata.
	if err := sg.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}
