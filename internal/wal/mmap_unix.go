//go:build unix

package wal

import (
	"os"
	"syscall"
)

// mmapSupported selects the zero-syscall append path: segment writes are
// plain stores into a shared file mapping, so a SIGKILL loses nothing the
// writer finished (the dirty pages belong to the page cache, not the
// process).
const mmapSupported = true

// mapFile maps size bytes of f readable and writable, shared.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile mapping.
func unmapFile(data []byte) error { return syscall.Munmap(data) }
