package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
)

// payloadFor builds a deterministic pseudo-payload for event ev.
func payloadFor(ev uint32, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(ev + uint32(i)*7)
	}
	return p
}

// appendN appends events base..base+n-1 with varying payload sizes.
func appendN(t *testing.T, w *Writer, base uint32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev := base + uint32(i)
		if err := w.Append(ev, payloadFor(ev, 100+int(ev%311))); err != nil {
			t.Fatalf("append %d: %v", ev, err)
		}
	}
}

// scanAll drains a scanner, verifying payload contents against payloadFor.
func scanAll(t *testing.T, dir string) []Record {
	t.Helper()
	sc, err := NewScanner(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var recs []Record
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("scan record %d: %v", len(recs), err)
		}
		if want := payloadFor(rec.Event, len(rec.Payload)); !bytes.Equal(rec.Payload, want) {
			t.Fatalf("event %d: payload mismatch", rec.Event)
		}
		rec.Payload = append([]byte(nil), rec.Payload...)
		recs = append(recs, rec)
	}
	return recs
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, info, err := Open(Options{Dir: dir, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if info.Segments != 0 {
		t.Fatalf("fresh dir reported %d segments", info.Segments)
	}
	const n = 200
	appendN(t, w, 0, n) // several thousand bytes -> multiple 8 KiB segments
	snap := w.Snapshot()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if snap.Records != n {
		t.Fatalf("snapshot records = %d, want %d", snap.Records, n)
	}
	if snap.Segments < 2 {
		t.Fatalf("expected multiple segments at 8 KiB, got %d", snap.Segments)
	}
	recs := scanAll(t, dir)
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	var lastTs uint64
	for i, rec := range recs {
		if rec.Event != uint32(i) {
			t.Fatalf("record %d has event %d (order broken)", i, rec.Event)
		}
		if rec.TsNanos < lastTs {
			t.Fatalf("record %d timestamp went backwards: %d < %d", i, rec.TsNanos, lastTs)
		}
		lastTs = rec.TsNanos
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("y")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if w.AppendErrors() == 0 {
		t.Fatal("append errors not counted")
	}
}

func TestOversizedRecordGetsOwnSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	big := payloadFor(7, 64<<10)
	if err := w.Append(7, big); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 100, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs := scanAll(t, dir)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	if len(recs[0].Payload) != len(big) {
		t.Fatalf("oversized payload came back %d bytes, want %d", len(recs[0].Payload), len(big))
	}
}

func TestRetentionDropsOldest(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 400)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("retention kept %d segments, want 2", len(paths))
	}
	recs := scanAll(t, dir)
	if len(recs) == 0 || len(recs) >= 400 {
		t.Fatalf("retained scan returned %d records, want a strict suffix", len(recs))
	}
	// The retained records must be a contiguous suffix of the appended ids.
	first := recs[0].Event
	for i, rec := range recs {
		if rec.Event != first+uint32(i) {
			t.Fatalf("retained record %d has event %d, want %d", i, rec.Event, first+uint32(i))
		}
	}
	if recs[len(recs)-1].Event != 399 {
		t.Fatalf("newest retained event = %d, want 399", recs[len(recs)-1].Event)
	}
}

// TestRecoveryTruncatesTornTail simulates the kill -9 torn write: a valid
// prefix followed by a record whose CRC never committed.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	appendN(t, w, 0, n)
	// Simulate the crash: leave the file preallocated (no seal) with a torn
	// record appended by hand past the valid prefix.
	snap := w.Snapshot()
	path := filepath.Join(dir, segName(snap.ActiveSegment))
	w.mu.Lock()
	off := w.off
	torn := make([]byte, 40)
	binary.BigEndian.PutUint32(torn, recMagic)
	binary.BigEndian.PutUint32(torn[4:], 16) // claims 16 payload bytes
	copy(torn[recHeaderLen:], "partial payload!")
	// Deliberately wrong CRC (left zero): the append died before commit.
	copy(w.seg.data[off:], torn)
	w.mu.Unlock()
	// Abandon the writer without Close/seal, as a kill would.

	// A raw scan sees the debris as exactly one torn segment.
	sc, err := NewScanner(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	for {
		if _, err := sc.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		k++
	}
	if k != n {
		t.Fatalf("pre-repair scan returned %d records, want %d", k, n)
	}
	if sc.Torn() != 1 {
		t.Fatalf("pre-repair scan found %d torn segments, want 1", sc.Torn())
	}

	// Reopen: recovery truncates the torn tail and reports it.
	w2, info, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.TailRecords != n {
		t.Fatalf("recovery kept %d records, want %d", info.TailRecords, n)
	}
	if info.TornBytes == 0 {
		t.Fatal("recovery reported no torn bytes for a torn tail")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != off {
		t.Fatalf("repaired segment is %d bytes, want %d", st.Size(), off)
	}
	// Recovery is idempotent and the log stays appendable.
	if err := w2.Append(1000, payloadFor(1000, 64)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := scanAll(t, dir)
	if len(recs) != n+1 {
		t.Fatalf("post-recovery scan returned %d records, want %d", len(recs), n+1)
	}
	if recs[n].Event != 1000 {
		t.Fatalf("appended-after-recovery event = %d, want 1000", recs[n].Event)
	}
}

func TestPayloadValidator(t *testing.T) {
	cfg := adapt.DefaultADAPT()
	cfg.ASICs = 4
	cfg.SamplesPerChannel = 4
	rng := detector.NewRNG(11)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	tracker := detector.DefaultTracker()
	tracker.Channels = cfg.ASICs * adapt.ChannelsPerASIC
	tracker.Threshold = 0
	ev, err := adapt.GenerateEvent(tracker.Event(rng).Values, cfg.ASICs, 42, 7, dig, rng)
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	for i := range ev {
		f, err := ev[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		payload = append(payload, f...)
	}
	v := NewPayloadValidator()
	for round := 0; round < 3; round++ { // validator must be reusable
		id, err := v.Validate(payload, cfg.ASICs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if id != 42 {
			t.Fatalf("round %d: event id = %d, want 42", round, id)
		}
	}
	if _, err := v.Validate(payload[:len(payload)-10], cfg.ASICs); err == nil {
		t.Fatal("truncated payload validated")
	}
	if _, err := v.Validate(append(append([]byte(nil), payload...), 0xA1), cfg.ASICs); err == nil {
		t.Fatal("payload with trailing garbage validated")
	}
}

func TestScannerIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-junk.seg"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := scanAll(t, dir); len(recs) != 3 {
		t.Fatalf("scan returned %d records, want 3", len(recs))
	}
}

func TestSync(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil { // no active segment yet
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsMissingDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no dir succeeded")
	}
}

func TestSegmentNameOrdering(t *testing.T) {
	// Indexes past 8 digits must still sort numerically.
	dir := t.TempDir()
	for _, idx := range []uint64{99999999, 100000000, 100000001} {
		name := segName(idx)
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, indexes, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{99999999, 100000000, 100000001}
	if fmt.Sprint(indexes) != fmt.Sprint(want) {
		t.Fatalf("indexes = %v, want %v", indexes, want)
	}
}
