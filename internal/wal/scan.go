package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// Record is one recovered log entry. Payload aliases the scanner's segment
// buffer and is valid until the next Next call.
type Record struct {
	// Event is the event id stamped at append time.
	Event uint32
	// TsNanos is the append time as nanoseconds since the recording writer
	// opened — the monotonic offsets replay pacing is derived from.
	TsNanos uint64
	// Payload is the event's raw wire bytes.
	Payload []byte
}

// Scanner iterates a log directory's records in append order: segments by
// index, records by offset. It is tolerant by construction — a segment scan
// ends at the first invalid byte (zeros from preallocation, a torn record, a
// corrupted header), never returns a record whose CRC does not match, and
// always terminates because the scan offset strictly advances.
type Scanner struct {
	paths []string
	next  int
	data  []byte
	off   int64

	records   uint64
	torn      int
	tornBytes int64
}

// NewScanner opens the log directory for scanning.
func NewScanner(dir string) (*Scanner, error) {
	paths, _, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	return &Scanner{paths: paths}, nil
}

// Next returns the next valid record, or io.EOF after the last segment.
func (s *Scanner) Next() (Record, error) {
	for {
		if s.data == nil {
			if s.next >= len(s.paths) {
				return Record{}, io.EOF
			}
			path := s.paths[s.next]
			s.next++
			data, err := os.ReadFile(path)
			if err != nil {
				return Record{}, fmt.Errorf("wal: %w", err)
			}
			if len(data) == 0 {
				continue // fully truncated by a previous repair
			}
			if len(data) < segHeaderLen || string(data[:8]) != segMagic ||
				binary.BigEndian.Uint32(data[8:]) != segVersion {
				s.markTorn(data, 0)
				continue
			}
			s.data, s.off = data, segHeaderLen
		}
		rec, ok := nextRecord(s.data, &s.off)
		if !ok {
			// End of this segment: zeros (clean preallocated tail) or a torn
			// record. Either way the segment is exhausted.
			s.markTorn(s.data, s.off)
			s.data = nil
			continue
		}
		s.records++
		return rec, nil
	}
}

// nextRecord validates and decodes the record at *off, advancing *off past
// it. ok is false at the first invalid byte.
func nextRecord(data []byte, off *int64) (Record, bool) {
	rem := int64(len(data)) - *off
	if rem < recHeaderLen {
		return Record{}, false
	}
	hdr := data[*off:]
	if binary.BigEndian.Uint32(hdr) != recMagic {
		return Record{}, false
	}
	size := int64(binary.BigEndian.Uint32(hdr[4:]))
	if size > rem-recHeaderLen {
		return Record{}, false
	}
	payload := hdr[recHeaderLen : recHeaderLen+size]
	crc := crc32.Update(0, castagnoli, hdr[:20])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.BigEndian.Uint32(hdr[20:]) {
		return Record{}, false
	}
	*off += recHeaderLen + size
	return Record{
		Event:   binary.BigEndian.Uint32(hdr[8:]),
		TsNanos: binary.BigEndian.Uint64(hdr[12:]),
		Payload: payload,
	}, true
}

// markTorn accounts non-zero bytes found past the valid prefix of a segment
// (the debris of at most one record torn mid-append).
func (s *Scanner) markTorn(data []byte, valid int64) {
	end := dataEnd(data)
	if end > valid {
		s.torn++
		s.tornBytes += end - valid
	}
}

// dataEnd returns the offset just past the last non-zero byte.
func dataEnd(data []byte) int64 {
	i := len(data)
	for i > 0 && data[i-1] == 0 {
		i--
	}
	return int64(i)
}

// Records returns how many valid records have been returned so far.
func (s *Scanner) Records() uint64 { return s.records }

// Torn returns how many segments ended in non-zero debris past their last
// valid record. A log repaired by Open scans with Torn() == 0; a log taken
// straight from a crash reports at most one torn segment (the newest).
func (s *Scanner) Torn() int { return s.torn }

// TornBytes returns the total non-zero debris bytes behind Torn.
func (s *Scanner) TornBytes() int64 { return s.tornBytes }

// Close releases the scanner. (Segments are read whole; nothing stays open.)
func (s *Scanner) Close() error {
	s.data = nil
	return nil
}

// repairResult is what repairSegment found.
type repairResult struct {
	records   int
	validEnd  int64
	tornBytes int64
}

// repairSegment truncates path at the end of its last valid record,
// discarding a torn tail and the preallocated zeros behind it. A segment
// whose header is unreadable is truncated to zero (nothing in it ever
// committed).
func repairSegment(path string) (repairResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return repairResult{}, fmt.Errorf("wal: %w", err)
	}
	var res repairResult
	if len(data) >= segHeaderLen && string(data[:8]) == segMagic &&
		binary.BigEndian.Uint32(data[8:]) == segVersion {
		res.validEnd = segHeaderLen
		for {
			if _, ok := nextRecord(data, &res.validEnd); !ok {
				break
			}
			res.records++
		}
	}
	if end := dataEnd(data); end > res.validEnd {
		res.tornBytes = end - res.validEnd
	}
	if int64(len(data)) != res.validEnd {
		if err := os.Truncate(path, res.validEnd); err != nil {
			return res, fmt.Errorf("wal: repair %s: %w", filepath.Base(path), err)
		}
	}
	return res, nil
}

// PayloadValidator re-frames record payloads with the same adapt framing
// layer the gateway uses (RawEventReader), verifying that a payload is
// exactly `asics` well-framed ALPHA frames sharing one event id with no
// leftover bytes. One validator amortizes the reader's 64 KiB window across
// a whole segment scan.
type PayloadValidator struct {
	br *bytes.Reader
	rr *adapt.RawEventReader
	// scratch receives the re-framed bytes, recycled between calls.
	scratch []byte
}

// NewPayloadValidator returns a reusable validator.
func NewPayloadValidator() *PayloadValidator {
	v := &PayloadValidator{br: bytes.NewReader(nil)}
	v.rr = adapt.NewRawEventReader(v.br)
	return v
}

// Validate frames payload as one event of `asics` frames and returns its
// event id. It fails if framing fails, if any bytes had to be skipped, or if
// the event does not consume the payload exactly.
func (v *PayloadValidator) Validate(payload []byte, asics int) (uint32, error) {
	v.br.Reset(payload)
	v.rr.Reset(v.br)
	event, raw, err := v.rr.ReadEventInto(v.scratch, asics)
	v.scratch = raw[:0]
	if err != nil {
		return 0, fmt.Errorf("wal: payload framing: %w", err)
	}
	if v.rr.SkippedBytes != 0 || len(raw) != len(payload) {
		return event, fmt.Errorf("wal: payload for event %d is not exactly %d frames (%d of %d bytes framed, %d skipped)",
			event, asics, len(raw), len(payload), v.rr.SkippedBytes)
	}
	return event, nil
}
