package design

import (
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

func vcfg(strategy PassStrategy, conn grid.Connectivity, rows, cols int) VariantConfig {
	return VariantConfig{Rows: rows, Cols: cols, Connectivity: conn, Strategy: strategy}
}

func TestPassStrategyStrings(t *testing.T) {
	if PassOneAndHalf.String() != "1.5-pass" || PassTwo.String() != "two-pass" ||
		PassSingle.String() != "single-pass" {
		t.Fatal("strategy names wrong")
	}
	if PassStrategy(9).Valid() || PassStrategy(9).String() == "" {
		t.Fatal("invalid strategy handling wrong")
	}
}

// The §3 design rationale, quantified: under 4-way the 1.5-pass design
// beats both alternatives at every studied size. Under 8-way, single-pass
// edges it on raw latency (no resolve loop, diagonal merges absorbed into
// the II=2 scan) — the upside §6 cites for investigating single-pass — but
// two-pass always loses, and single-pass pays a large resource premium
// (TestSinglePassResourcePremium).
func TestPassStrategyRanking(t *testing.T) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		for _, sz := range [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}} {
			l15 := VariantLatency(vcfg(PassOneAndHalf, conn, sz[0], sz[1]))
			l2 := VariantLatency(vcfg(PassTwo, conn, sz[0], sz[1]))
			l1 := VariantLatency(vcfg(PassSingle, conn, sz[0], sz[1]))
			if l15 >= l2 {
				t.Errorf("%v %dx%d: 1.5-pass (%d) not faster than two-pass (%d)",
					conn, sz[0], sz[1], l15, l2)
			}
			if conn == grid.FourWay && l15 >= l1 {
				t.Errorf("4-way %dx%d: 1.5-pass (%d) not faster than single-pass (%d)",
					sz[0], sz[1], l15, l1)
			}
			if conn == grid.EightWay && l1 >= l15 {
				t.Errorf("8-way %dx%d: single-pass (%d) should edge 1.5-pass (%d) in this model",
					sz[0], sz[1], l1, l15)
			}
		}
	}
}

// The 1.5-pass variant's latency model must agree with the published
// pipelined design's (same schedule).
func TestVariantOneAndHalfMatchesPublishedModel(t *testing.T) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		for _, sz := range [][2]int{{8, 10}, {43, 43}, {64, 64}} {
			v := VariantLatency(vcfg(PassOneAndHalf, conn, sz[0], sz[1]))
			p := Latency(StagePipelined, conn, sz[0], sz[1])
			if v != p {
				t.Errorf("%v %dx%d: variant %d != published %d", conn, sz[0], sz[1], v, p)
			}
		}
	}
}

// Two-pass adds exactly one II=1 full-array relabel pass.
func TestTwoPassDelta(t *testing.T) {
	for _, sz := range [][2]int{{8, 10}, {43, 43}} {
		n := int64(sz[0] * sz[1])
		d := VariantLatency(vcfg(PassTwo, grid.FourWay, sz[0], sz[1])) -
			VariantLatency(vcfg(PassOneAndHalf, grid.FourWay, sz[0], sz[1]))
		if d != n-1+loadDepth {
			t.Errorf("%dx%d relabel delta = %d, want %d", sz[0], sz[1], d, n-1+loadDepth)
		}
	}
}

// Single-pass removes the resolve loop but pays II=2 in the scan.
func TestSinglePassStructure(t *testing.T) {
	cfg := vcfg(PassSingle, grid.FourWay, 8, 10)
	// 4N + 59: load (80+11) + scan (2*79+24) + output (80+11) + 15 = 379.
	if got := VariantLatency(cfg); got != 379 {
		t.Fatalf("single-pass 8x10 latency = %d, want 379", got)
	}
	g := grid.MustParse("##\n##")
	out, err := RunVariant(g, vcfg(PassSingle, grid.FourWay, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.InnerII != 2 {
		t.Fatalf("single-pass inner II = %d, want 2", out.Report.InnerII)
	}
}

// All variants are label-isomorphic to the golden model on random inputs —
// except the merge-table strategies on corner-case patterns, which is the
// point of the comparison. The single-pass variant must be correct even
// there.
func TestVariantsCorrectness(t *testing.T) {
	golden := labeling.FloodFill{}
	f := func(cells [80]byte) bool {
		g := grid.New(8, 10)
		for i, b := range cells {
			if b%3 == 0 {
				g.Flat()[i] = grid.Value(b%7) + 1
			}
		}
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				return false
			}
			out, err := RunVariant(g, vcfg(PassSingle, conn, 8, 10))
			if err != nil || !out.Labels.Isomorphic(want) {
				return false
			}
			// 1.5-pass and two-pass agree with each other exactly.
			a, err := RunVariant(g, vcfg(PassOneAndHalf, conn, 8, 10))
			if err != nil {
				return false
			}
			b, err := RunVariant(g, vcfg(PassTwo, conn, 8, 10))
			if err != nil || !a.Labels.Equal(b.Labels) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The single-pass variant is immune to the §6 corner case (its flat table is
// always fully resolved), while the merge-table variants reproduce it.
func TestSinglePassImmuneToCornerCase(t *testing.T) {
	g := grid.MustParse("#..#.\n#.##.\n###..")
	single, err := RunVariant(g, vcfg(PassSingle, grid.FourWay, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if single.Islands != 1 {
		t.Fatalf("single-pass islands = %d, want 1", single.Islands)
	}
	oneHalf, err := RunVariant(g, vcfg(PassOneAndHalf, grid.FourWay, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if oneHalf.Islands != 2 {
		t.Fatalf("1.5-pass islands = %d, want the documented 2", oneHalf.Islands)
	}
}

// §6 wide-output enhancement: more lanes shorten the output loop.
func TestOutputLanesShortenOutput(t *testing.T) {
	base := vcfg(PassOneAndHalf, grid.FourWay, 64, 64)
	prev := VariantLatency(base)
	for _, lanes := range []int{2, 4, 8, 16} {
		cfg := base
		cfg.OutputLanes = lanes
		got := VariantLatency(cfg)
		if got >= prev {
			t.Errorf("lanes=%d latency %d did not improve on %d", lanes, got, prev)
		}
		prev = got
	}
	// With 16 lanes the output loop nearly vanishes: latency approaches
	// 2N + 2MT + const.
	cfg := base
	cfg.OutputLanes = 16
	n, mt := int64(4096), int64(1024)
	want := (n + 11) + (n + 23) + 2*mt + (n/16 + 11) + 15
	if got := VariantLatency(cfg); got != want {
		t.Fatalf("16-lane latency = %d, want %d", got, want)
	}
}

func TestOutputLanesResources(t *testing.T) {
	base := vcfg(PassOneAndHalf, grid.FourWay, 64, 64)
	u1 := VariantResources(base)
	wide := base
	wide.OutputLanes = 8
	u8 := VariantResources(wide)
	if u8.LUT <= u1.LUT || u8.FF <= u1.FF {
		t.Fatal("wider output must cost logic")
	}
}

func TestVariantValidation(t *testing.T) {
	g := grid.New(2, 2)
	bad := []VariantConfig{
		{Rows: 0, Cols: 2, Connectivity: grid.FourWay},
		{Rows: 2, Cols: 2, Connectivity: grid.Connectivity(3)},
		{Rows: 2, Cols: 2, Connectivity: grid.FourWay, Strategy: PassStrategy(5)},
		{Rows: 2, Cols: 2, Connectivity: grid.FourWay, OutputLanes: 99},
	}
	for i, cfg := range bad {
		if _, err := RunVariant(g, cfg); err == nil {
			t.Errorf("config %d must error", i)
		}
	}
	if _, err := RunVariant(grid.New(3, 3), vcfg(PassSingle, grid.FourWay, 2, 2)); err == nil {
		t.Error("shape mismatch must error")
	}
}

// Single-pass resource premium: more FF/LUT/BRAM than the published design.
func TestSinglePassResourcePremium(t *testing.T) {
	pub := Resources(StagePipelined, grid.FourWay, 43, 43)
	sp := VariantResources(vcfg(PassSingle, grid.FourWay, 43, 43))
	if sp.FF <= pub.FF || sp.LUT <= pub.LUT || sp.BRAM18K <= pub.BRAM18K {
		t.Fatalf("single-pass %+v should exceed published %+v", sp, pub)
	}
}

// Checkerboard worst case through the single-pass variant (its table is
// sized for the 4-way worst case, so it must not overflow).
func TestSinglePassCheckerboard(t *testing.T) {
	g := grid.New(8, 10)
	for r := 0; r < 8; r++ {
		for c := 0; c < 10; c++ {
			if (r+c)%2 == 0 {
				g.Set(r, c, 1)
			}
		}
	}
	out, err := RunVariant(g, vcfg(PassSingle, grid.FourWay, 8, 10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Islands != 40 {
		t.Fatalf("islands = %d, want 40", out.Islands)
	}
	golden, _ := labeling.FloodFill{}.Label(g, grid.FourWay)
	if !out.Labels.Isomorphic(golden) {
		t.Fatal("single-pass wrong on checkerboard")
	}
}

// Variant reports carry coherent metadata.
func TestVariantReportMetadata(t *testing.T) {
	g := grid.New(8, 10)
	g.Set(0, 0, 3)
	for _, s := range []PassStrategy{PassOneAndHalf, PassTwo, PassSingle} {
		out, err := RunVariant(g, vcfg(s, grid.FourWay, 8, 10))
		if err != nil {
			t.Fatal(err)
		}
		if out.Report.LatencyCycles != VariantLatency(vcfg(s, grid.FourWay, 8, 10)) {
			t.Errorf("%v: report/model latency mismatch", s)
		}
		if out.Report.Usage != VariantResources(vcfg(s, grid.FourWay, 8, 10)) {
			t.Errorf("%v: report/model usage mismatch", s)
		}
		if out.Islands != 1 || out.Groups != 1 {
			t.Errorf("%v: islands/groups = %d/%d", s, out.Islands, out.Groups)
		}
	}
	// MergeTableCap guard for ccl path: 4-way checkerboard via merge-table
	// variants still works because ccl.Label sizes safely by default.
	cb := ccl.SizeFor(8, 10, grid.FourWay)
	if cb != 40 {
		t.Fatalf("sanity: safe size = %d", cb)
	}
}

// §6 "fully pipelined first pass": overlapped dataflow cuts latency toward
// the bottleneck stage and lets events enter at the stage interval.
func TestOverlappedDataflow(t *testing.T) {
	base := vcfg(PassOneAndHalf, grid.FourWay, 64, 64)
	seq := VariantLatency(base)
	over := base
	over.OverlappedDataflow = true
	lat := VariantLatency(over)
	if lat >= seq {
		t.Fatalf("overlap latency %d not below sequential %d", lat, seq)
	}
	// Bottleneck is one N-trip II=1 loop: interval ≈ N + depth.
	interval := VariantInterval(over)
	if interval >= seq || interval > 4096+scanDepth {
		t.Fatalf("interval = %d, want ≈N", interval)
	}
	// Sequential designs admit one event per latency (II = latency).
	if VariantInterval(base) != seq {
		t.Fatal("sequential interval must equal latency")
	}
	// The overlap costs buffering resources.
	if VariantResources(over).FF <= VariantResources(base).FF {
		t.Fatal("overlap must cost FF")
	}
	if VariantResources(over).BRAM18K <= VariantResources(base).BRAM18K {
		t.Fatal("overlap must cost BRAM (ping-pong buffers)")
	}
}

// Overlapped 43x43 4-way: throughput comfortably beyond the CTA target —
// the quantified payoff of the §6 direction.
func TestOverlappedDataflowBeatsCTATarget(t *testing.T) {
	cfg := vcfg(PassOneAndHalf, grid.FourWay, 43, 43)
	cfg.OverlappedDataflow = true
	interval := VariantInterval(cfg)
	eps := 1e8 / float64(interval)
	if eps < 45000 {
		t.Fatalf("overlapped events/s = %.0f, want ≥ 45k", eps)
	}
	out, err := RunVariant(grid.New(43, 43), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.II != interval {
		t.Fatal("report II must be the dataflow interval")
	}
	if out.Report.LatencyCycles <= out.Report.II {
		t.Fatal("overlapped latency must exceed the steady-state interval")
	}
}
