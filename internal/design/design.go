package design

import (
	"fmt"
	"io"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Stage is one step of the paper's optimization study (§5).
type Stage int

const (
	// StageBaseline is the naïve pragma-free design (§5.1).
	StageBaseline Stage = iota
	// StageBindStorage binds the merge table to dual-port BRAM (§5.2).
	StageBindStorage
	// StageUnrolled adds ×16 loop unrolling with cyclic array partitioning
	// on the input structuring loop (§5.3).
	StageUnrolled
	// StagePipelined pipelines the load/scan/output loops to II=1 (§5.4) —
	// the configuration evaluated for scalability in §5.5.
	StagePipelined
)

// Stages lists all optimization stages in study order.
func Stages() []Stage {
	return []Stage{StageBaseline, StageBindStorage, StageUnrolled, StagePipelined}
}

// String returns the stage name as printed in Tables 1 and 2.
func (s Stage) String() string {
	switch s {
	case StageBaseline:
		return "Baseline"
	case StageBindStorage:
		return "Bind Storage"
	case StageUnrolled:
		return "Unrolled"
	case StagePipelined:
		return "Pipelined"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Valid reports whether s names a real stage.
func (s Stage) Valid() bool { return s >= StageBaseline && s <= StagePipelined }

// Config selects a synthesizable configuration of the island-detection
// design — the knobs the paper sets with preprocessor macros and template
// parameters (TWO_DIMENSION, EIGHTWAY_NEIGHBORS, NROWS/NCOLS, and the
// pragma set of each optimization stage).
type Config struct {
	// Rows, Cols fix the sensor array shape (NROWS × NCOLS).
	Rows, Cols int
	// Connectivity selects 4-way or 8-way CCL (EIGHTWAY_NEIGHBORS).
	Connectivity grid.Connectivity
	// Stage selects the optimization stage.
	Stage Stage
	// DualWriteStreams reproduces the pre-Fig-12 pipelined design whose two
	// possible writers to stream_top created a false memory dependency and
	// forced the scan to II=2. Only meaningful for StagePipelined.
	DualWriteStreams bool
	// FixedUpdate enables the §6 "logical fix" (root-chasing merge-table
	// unions) instead of the published raw minimum-update. The published
	// hardware uses false.
	FixedUpdate bool
	// MergeTableCap overrides the merge-table capacity. Zero uses the
	// paper's sizing, ⌈(R+1)/2⌉·⌈(C+1)/2⌉ (§5.5). Note the reproduction
	// finding (EXPERIMENTS.md E9): that sizing can overflow under 4-way
	// worst-case inputs; Run reports ErrMergeTableFull when it does.
	MergeTableCap int
	// TraceWriter, when non-nil, receives a VCD waveform of the scan loop
	// (one tick per pixel: scan index, litness, assigned label, merge-table
	// activity) — the co-simulation debugging artifact.
	TraceWriter io.Writer
}

func (c Config) validate() error {
	if c.Rows < 1 || c.Cols < 1 {
		return fmt.Errorf("design: invalid array size %dx%d", c.Rows, c.Cols)
	}
	if !c.Connectivity.Valid() {
		return fmt.Errorf("design: invalid connectivity %d", int(c.Connectivity))
	}
	if !c.Stage.Valid() {
		return fmt.Errorf("design: invalid stage %d", int(c.Stage))
	}
	return nil
}
