package design

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
	"github.com/wustl-adapt/hepccl/internal/hls/sched"
)

// Island1D is one island of consecutive nonzero integrals in a 1D channel
// array (Fig 2, right) with its centroid — the original ADAPT
// island_detection_and_centroiding output (§1).
type Island1D struct {
	// Start and End are the inclusive channel bounds of the island.
	Start, End int
	// Sum is the total integrated value (deposited energy estimate).
	Sum int64
	// Centroid is the energy-weighted mean channel position,
	// Σ(i·vᵢ)/Σ(vᵢ), the interaction-position estimate.
	Centroid float64
}

// Width returns the island's channel span.
func (i Island1D) Width() int { return i.End - i.Start + 1 }

// Output1D is the result of the 1D design on one event.
type Output1D struct {
	Islands []Island1D
	Report  resource.Report
	Ledger  *sched.Ledger
}

// Latency model for the 1D design. The paper does not tabulate the 1D stage
// (it predates this work, [21, 23]); the model mirrors the 2D pipelined
// schedule's conventions: an II=1 scan over the channel array plus a
// per-island centroid division.
const (
	oneDScanDepth    = 16
	oneDSerialIter   = 6
	oneDDivideCycles = 12 // fixed-point divide latency per island
	oneDOverhead     = 30
)

// MaxIslands1D returns the worst-case island count for n channels
// (alternating lit/dark).
func MaxIslands1D(n int) int { return (n + 1) / 2 }

// RunIsland1D executes the 1D island detection + centroiding design over a
// channel array. pipelined selects the optimized schedule (the shipped ADAPT
// configuration); false models the naïve serialized one.
func RunIsland1D(values []grid.Value, pipelined bool) (*Output1D, error) {
	n := len(values)
	if n == 0 {
		return nil, fmt.Errorf("design: 1D island detection needs at least one channel")
	}

	var islands []Island1D
	start := -1
	var sum, weighted int64
	flush := func(end int) {
		if start < 0 {
			return
		}
		islands = append(islands, Island1D{
			Start:    start,
			End:      end,
			Sum:      sum,
			Centroid: float64(weighted) / float64(sum),
		})
		start, sum, weighted = -1, 0, 0
	}
	for i, v := range values {
		if v != 0 {
			if start < 0 {
				start = i
			}
			sum += int64(v)
			weighted += int64(i) * int64(v)
			continue
		}
		flush(i - 1)
	}
	flush(n - 1)

	ledger := sched.NewLedger()
	scan := sched.Loop{Name: "scan", Trip: int64(n)}
	if pipelined {
		scan.Pipelined, scan.II, scan.Depth = true, 1, oneDScanDepth
	} else {
		scan.IterLatency = oneDSerialIter
	}
	ledger.ChargeLoop(scan)
	// Worst-case centroid divides: one per possible island.
	ledger.ChargeLoop(sched.Loop{
		Name: "centroid", Trip: int64(MaxIslands1D(n)), IterLatency: oneDDivideCycles,
	})
	ledger.Charge("overhead", oneDOverhead)
	worst := ledger.Total()
	dynamic := worst - int64(oneDDivideCycles)*int64(MaxIslands1D(n)-len(islands))

	stage := "Pipelined"
	innerII := int64(1)
	if !pipelined {
		stage = "Baseline"
		innerII = 0
	}
	return &Output1D{
		Islands: islands,
		Report: resource.Report{
			Design:        "island_detection_and_centroiding",
			Stage:         stage,
			Rows:          1,
			Cols:          n,
			LatencyCycles: worst,
			II:            worst,
			InnerII:       innerII,
			Usage: resource.Usage{
				BRAM18K: 2 + resource.BRAM18KFor(n, PixelBits),
				FF:      8*n + 520,
				LUT:     3*n + 410,
			},
			ClockMHz:      ClockMHz,
			DynamicCycles: dynamic,
		},
		Ledger: ledger,
	}, nil
}
