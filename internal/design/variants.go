package design

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
	"github.com/wustl-adapt/hepccl/internal/hls/sched"
	"github.com/wustl-adapt/hepccl/internal/unionfind"
)

// This file implements the §6 future-work design variants the paper names:
//
//	"Future work should investigate a single-pass CCL approach to reduce
//	 latency by removing the need for a second scan. … We also intend to
//	 evaluate a two-pass implementation."
//
// Both are built on the same pipelined substrate as the published 1.5-pass
// design and produce comparable synthesis reports, so the three pass
// strategies can be ranked the way the paper intends. The latency and
// resource models for the variants are this reproduction's estimates — the
// paper publishes no numbers for them — constructed with the same per-loop
// conventions that reproduce Tables 1–4 (see model.go):
//
//   - Two-pass keeps the 1.5-pass front half (II=1 scan + ascending merge-
//     table resolution) and adds the classic second raster pass that
//     rewrites the label array before output: one extra II=1 full-array
//     loop, so latency ≈ 4N + 2·MT + 71.
//   - Single-pass resolves equivalences on the fly with a flat
//     representative-label table (He et al. style), eliminating the resolve
//     loop entirely — but the flat-table relabeling on every merge is a
//     loop-carried dependency the scheduler cannot hide, holding the scan at
//     II=2 ("significant control complexity and data dependencies", §3).
//     Latency ≈ 4N + 59, with noticeably higher FF/LUT for the duplicated
//     table banks and row-relabel datapath.
//
// Ranking: with MT ≈ N/4, the published 4-way 1.5-pass costs ≈3.5N against
// two-pass ≈4.5N and single-pass ≈4N — the balanced 1.5-pass wins at every
// size, which is the design rationale of §3 made quantitative. Under 8-way
// the picture inverts slightly: the 1.5-pass design pays the 1.5N merge-
// update drain (≈5N total) while single-pass absorbs diagonal merges into
// its already-serialized II=2 scan (≈4N), so single-pass can edge it on raw
// latency — exactly the latency upside §6 cites as the reason to
// "investigate a single-pass CCL approach" — at a 25 %+ FF/LUT premium and
// with the control complexity §3 warns about. A second observation the
// comparison surfaces: the single-pass variant's flat table keeps every
// class fully resolved at all times, so it is immune to the §6 corner case
// that affects the merge-table designs.

// PassStrategy selects how label equivalences are resolved across passes.
type PassStrategy int

const (
	// PassOneAndHalf is the paper's published 1.5-pass design (§4).
	PassOneAndHalf PassStrategy = iota
	// PassTwo adds a full relabeling raster pass after resolution.
	PassTwo
	// PassSingle resolves on the fly with a flat representative table.
	PassSingle
)

// String implements fmt.Stringer.
func (p PassStrategy) String() string {
	switch p {
	case PassOneAndHalf:
		return "1.5-pass"
	case PassTwo:
		return "two-pass"
	case PassSingle:
		return "single-pass"
	default:
		return fmt.Sprintf("PassStrategy(%d)", int(p))
	}
}

// Valid reports whether p names a real strategy.
func (p PassStrategy) Valid() bool { return p >= PassOneAndHalf && p <= PassSingle }

// VariantConfig configures a future-work variant run. Variants are built on
// the fully pipelined schedule only.
type VariantConfig struct {
	// Rows, Cols fix the array shape.
	Rows, Cols int
	// Connectivity selects 4-way or 8-way.
	Connectivity grid.Connectivity
	// Strategy selects the pass structure.
	Strategy PassStrategy
	// OutputLanes widens the output interface to emit this many labels per
	// cycle — the §6 "widening the interface to output multiple labels per
	// cycle" enhancement. Zero means 1.
	OutputLanes int
	// OverlappedDataflow streams the stages into each other (#pragma HLS
	// DATAFLOW) instead of running them back-to-back — the §6 "achieving a
	// fully pipelined first pass" direction. The slowest stage then sets the
	// latency; the rest contribute only pipeline fill. It costs "additional
	// buffering and logic replication" (§6), modeled in VariantResources.
	OverlappedDataflow bool
}

func (c VariantConfig) validate() error {
	if c.Rows < 1 || c.Cols < 1 {
		return fmt.Errorf("design: invalid array size %dx%d", c.Rows, c.Cols)
	}
	if !c.Connectivity.Valid() {
		return fmt.Errorf("design: invalid connectivity %d", int(c.Connectivity))
	}
	if !c.Strategy.Valid() {
		return fmt.Errorf("design: invalid pass strategy %d", int(c.Strategy))
	}
	if c.OutputLanes < 0 || c.OutputLanes > Channels {
		return fmt.Errorf("design: output lanes %d outside 0..%d", c.OutputLanes, Channels)
	}
	return nil
}

func (c VariantConfig) lanes() int {
	if c.OutputLanes < 1 {
		return 1
	}
	return c.OutputLanes
}

// variantLoops builds the stage list of a variant configuration.
func variantLoops(cfg VariantConfig) []sched.Loop {
	n := int64(cfg.Rows * cfg.Cols)
	mt := int64(ccl.SizeForPaper(cfg.Rows, cfg.Cols))
	lanes := int64(cfg.lanes())
	outTrip := (n + lanes - 1) / lanes

	var loops []sched.Loop
	switch cfg.Strategy {
	case PassOneAndHalf:
		loops = []sched.Loop{
			{Name: "load", Trip: n, Pipelined: true, II: 1, Depth: loadDepth},
			{Name: "scan", Trip: n, Pipelined: true, II: 1, Depth: scanDepth},
			{Name: "resolve", Trip: mt, IterLatency: resolveIter},
			{Name: "output", Trip: outTrip, Pipelined: true, II: 1, Depth: outputDepth},
		}
	case PassTwo:
		loops = []sched.Loop{
			{Name: "load", Trip: n, Pipelined: true, II: 1, Depth: loadDepth},
			{Name: "scan", Trip: n, Pipelined: true, II: 1, Depth: scanDepth},
			{Name: "resolve", Trip: mt, IterLatency: resolveIter},
			{Name: "relabel", Trip: n, Pipelined: true, II: 1, Depth: loadDepth},
			{Name: "output", Trip: outTrip, Pipelined: true, II: 1, Depth: outputDepth},
		}
	case PassSingle:
		loops = []sched.Loop{
			{Name: "load", Trip: n, Pipelined: true, II: 1, Depth: loadDepth},
			// Flat-table relabeling is a loop-carried dependency: II=2.
			{Name: "scan", Trip: n, Pipelined: true, II: 2, Depth: scanDepth},
			{Name: "output", Trip: outTrip, Pipelined: true, II: 1, Depth: outputDepth},
		}
	}
	// Diagonal merge traffic: same 1.5N drain as the published design for
	// the merge-table strategies; the single-pass variant absorbs it in the
	// II=2 scan.
	if cfg.Connectivity == grid.EightWay && cfg.Strategy != PassSingle {
		loops = append(loops, sched.Loop{
			Name: "drain", Trip: (3*n + 1) / 2, Pipelined: true, II: 1, Depth: drainDepth,
		})
	}
	return loops
}

// VariantLatency returns the modeled worst-case latency of a variant
// configuration.
func VariantLatency(cfg VariantConfig) int64 {
	df := sched.Dataflow{Stages: variantLoops(cfg)}
	var total int64
	if cfg.OverlappedDataflow {
		total = df.OverlappedLatency()
	} else {
		total = df.SequentialLatency()
	}
	if cfg.Connectivity == grid.EightWay {
		return total + pipeOverhead8
	}
	return total + pipeOverhead4
}

// VariantInterval returns the steady-state event interval: with overlapped
// dataflow, back-to-back events enter at the bottleneck stage's pace; the
// sequential design admits one event per full latency (II = latency, as the
// paper's tables report).
func VariantInterval(cfg VariantConfig) int64 {
	if !cfg.OverlappedDataflow {
		return VariantLatency(cfg)
	}
	return sched.Dataflow{Stages: variantLoops(cfg)}.Interval()
}

// VariantResources estimates a variant's resource usage relative to the
// published pipelined design.
func VariantResources(cfg VariantConfig) resource.Usage {
	base := Resources(StagePipelined, cfg.Connectivity, cfg.Rows, cfg.Cols)
	n := cfg.Rows * cfg.Cols
	mt := ccl.SizeForPaper(cfg.Rows, cfg.Cols)
	lanes := cfg.lanes()
	// Wider output: multiplexed lanes add datapath; the output FIFO repacks
	// to lanes×16-bit words.
	if lanes > 1 {
		base.LUT += (lanes - 1) * 64
		base.FF += (lanes - 1) * 32
		outNarrow := resource.BRAM18KFor(n, LabelBits)
		if outNarrow < 1 {
			outNarrow = 1
		}
		outWide := resource.BRAM18KFor((n+lanes-1)/lanes, LabelBits*lanes)
		if outWide < 1 {
			outWide = 1
		}
		base.BRAM18K += outWide - outNarrow
	}
	if cfg.OverlappedDataflow {
		// §6: "may require additional buffering and logic replication" —
		// ping-pong buffers between stages plus replicated row state.
		base.FF += n/2 + 800
		base.LUT += n/4 + 600
		base.BRAM18K += 2 * resource.BRAM18KFor(n, LabelBits)
	}
	switch cfg.Strategy {
	case PassTwo:
		// The relabel pass needs a second port set on the label array and
		// its own control FSM.
		base.FF += 220
		base.LUT += 180
	case PassSingle:
		// Flat table: three arrays (rl/next/tail) instead of one, plus the
		// merge-relabel datapath.
		base.BRAM18K += 2 * 2 * resource.BRAM18KFor(mt, LabelBits)
		base.FF += n/2 + 640
		base.LUT += n/3 + 520
	}
	return base
}

// RunVariant executes a variant functionally and returns labels plus its
// modeled synthesis report. The single-pass variant uses the flat
// representative table (correct on all inputs); the 1.5-pass and two-pass
// variants use the published merge-table update and therefore share its §6
// corner case.
func RunVariant(g *grid.Grid, cfg VariantConfig) (*Output, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.Rows() != cfg.Rows || g.Cols() != cfg.Cols {
		return nil, fmt.Errorf("design: image is %dx%d but variant was compiled for %dx%d",
			g.Rows(), g.Cols(), cfg.Rows, cfg.Cols)
	}

	var labels *grid.Labels
	var groups int
	var err error
	switch cfg.Strategy {
	case PassOneAndHalf, PassTwo:
		// Functionally identical to the published design: the two-pass
		// variant rewrites the label array instead of resolving at output,
		// producing the same final labels.
		res, lerr := ccl.Label(g, ccl.Options{
			Connectivity: cfg.Connectivity,
			Mode:         ccl.ModePaper,
		})
		if lerr != nil {
			return nil, lerr
		}
		labels, groups = res.Labels, res.Groups
	case PassSingle:
		labels, groups, err = singlePassLabel(g, cfg.Connectivity)
		if err != nil {
			return nil, err
		}
	}

	lat := VariantLatency(cfg)
	ledger := sched.NewLedger()
	ledger.Charge("variant:"+cfg.Strategy.String(), lat)
	innerII := int64(1)
	if cfg.Strategy == PassSingle {
		innerII = 2
	}
	return &Output{
		Labels: labels,
		Report: resource.Report{
			Design:        "island_detection_2d_" + cfg.Strategy.String(),
			Stage:         StagePipelined.String(),
			Connectivity:  cfg.Connectivity,
			Rows:          cfg.Rows,
			Cols:          cfg.Cols,
			LatencyCycles: lat,
			II:            VariantInterval(cfg),
			InnerII:       innerII,
			Usage:         VariantResources(cfg),
			ClockMHz:      ClockMHz,
			DynamicCycles: lat,
		},
		Ledger:  ledger,
		Groups:  groups,
		Islands: labels.Count(),
	}, nil
}

// singlePassLabel is the Bailey–Johnston-style on-the-fly labeling over the
// flat representative table: neighbor labels are resolved through the table
// during the scan, merges relabel the absorbed class immediately, and the
// output stage is a single table read per pixel.
func singlePassLabel(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, int, error) {
	rows, cols := g.Rows(), g.Cols()
	out := grid.NewLabels(rows, cols)
	flat := unionfind.NewFlat((rows*cols + 1) / 2)
	offsets := conn.ScanNeighbors()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !g.Lit(r, c) {
				continue
			}
			minL := grid.Label(0)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 {
					rep := flat.Find(l)
					if minL == 0 || rep < minL {
						minL = rep
					}
				}
			}
			if minL == 0 {
				l, err := flat.MakeSet()
				if err != nil {
					return nil, 0, fmt.Errorf("design: single-pass: %w", err)
				}
				out.Set(r, c, l)
				continue
			}
			out.Set(r, c, minL)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 {
					flat.Union(l, minL)
				}
			}
		}
	}
	for i, n := 0, rows*cols; i < n; i++ {
		if l := out.AtFlat(i); l != 0 {
			out.SetFlat(i, flat.Find(l))
		}
	}
	return out, flat.Len(), nil
}
