package design

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Table 1 of the paper: island detection results for size 8×10, 4-way.
// Every cell below is reproduced exactly by the calibrated model.
func TestTable1Anchors4Way(t *testing.T) {
	cases := []struct {
		stage   Stage
		latency int64
		bram    int
		ff, lut int
	}{
		{StageBaseline, 998, 4, 1076, 2257},
		{StageBindStorage, 1158, 7, 1014, 2303},
		{StageUnrolled, 1018, 5, 1068, 2629},
		{StagePipelined, 340, 5, 4229, 4096},
	}
	for _, tc := range cases {
		if got := Latency(tc.stage, grid.FourWay, 8, 10); got != tc.latency {
			t.Errorf("%v latency = %d, want %d", tc.stage, got, tc.latency)
		}
		u := Resources(tc.stage, grid.FourWay, 8, 10)
		if u.BRAM18K != tc.bram {
			t.Errorf("%v BRAM = %d, want %d", tc.stage, u.BRAM18K, tc.bram)
		}
		if u.FF != tc.ff {
			t.Errorf("%v FF = %d, want %d", tc.stage, u.FF, tc.ff)
		}
		if u.LUT != tc.lut {
			t.Errorf("%v LUT = %d, want %d", tc.stage, u.LUT, tc.lut)
		}
	}
}

// Table 2: 8×10, 8-way. Latency anchors are exact for the serialized stages;
// the pipelined stage models 485 cycles and 5 BRAM where the paper reports
// 406 and 3 (the paper attributes its own 8-way outliers at this size to
// LUTRAM↔BRAM FIFO implementation flips — tool noise a deterministic model
// does not emulate; see EXPERIMENTS.md E2).
func TestTable2Anchors8Way(t *testing.T) {
	cases := []struct {
		stage   Stage
		latency int64
		bram    int
		ff, lut int
	}{
		{StageBaseline, 1398, 4, 1196, 2746},
		{StageBindStorage, 1718, 7, 1200, 2863},
		{StageUnrolled, 1578, 5, 1254, 3189},
		{StagePipelined, 485, 5, 7041, 6583},
	}
	for _, tc := range cases {
		if got := Latency(tc.stage, grid.EightWay, 8, 10); got != tc.latency {
			t.Errorf("%v latency = %d, want %d", tc.stage, got, tc.latency)
		}
		u := Resources(tc.stage, grid.EightWay, 8, 10)
		if u.BRAM18K != tc.bram {
			t.Errorf("%v BRAM = %d, want %d", tc.stage, u.BRAM18K, tc.bram)
		}
		if u.FF != tc.ff {
			t.Errorf("%v FF = %d, want %d", tc.stage, u.FF, tc.ff)
		}
		if u.LUT != tc.lut {
			t.Errorf("%v LUT = %d, want %d", tc.stage, u.LUT, tc.lut)
		}
	}
}

// The bind-storage latency regression is EXACTLY one cycle per merge-table
// read: +2/pixel for 4-way, +4/pixel for 8-way (§5.2).
func TestBindStorageRegressionExact(t *testing.T) {
	for _, sz := range [][2]int{{8, 10}, {16, 16}, {43, 43}} {
		n := int64(sz[0] * sz[1])
		d4 := Latency(StageBindStorage, grid.FourWay, sz[0], sz[1]) -
			Latency(StageBaseline, grid.FourWay, sz[0], sz[1])
		if d4 != 2*n {
			t.Errorf("%dx%d 4-way bind delta = %d, want %d", sz[0], sz[1], d4, 2*n)
		}
		d8 := Latency(StageBindStorage, grid.EightWay, sz[0], sz[1]) -
			Latency(StageBaseline, grid.EightWay, sz[0], sz[1])
		if d8 != 4*n {
			t.Errorf("%dx%d 8-way bind delta = %d, want %d", sz[0], sz[1], d8, 4*n)
		}
	}
}

// Table 3 scalability anchors, 4-way pipelined. The model reproduces the
// paper exactly at every even array size; 43×43 models 6575 vs the paper's
// 6668 (−1.4%).
func TestTable3LatencyScaling(t *testing.T) {
	cases := []struct {
		r, c    int
		latency int64
		ff      int
	}{
		{8, 10, 340, 4229},
		{16, 16, 956, 9861},
		{24, 24, 2076, 20101},
		{32, 32, 3644, 34437},
		{43, 43, 6575, 60837},
		{64, 64, 14396, 132741},
	}
	for _, tc := range cases {
		if got := Latency(StagePipelined, grid.FourWay, tc.r, tc.c); got != tc.latency {
			t.Errorf("%dx%d latency = %d, want %d", tc.r, tc.c, got, tc.latency)
		}
		if got := Resources(StagePipelined, grid.FourWay, tc.r, tc.c).FF; got != tc.ff {
			t.Errorf("%dx%d FF = %d, want %d", tc.r, tc.c, got, tc.ff)
		}
	}
}

// Table 4 anchors the model hits exactly: 16×16 and 32×32 within one cycle
// of the paper (1365, 5205 vs published 1365, 5208).
func TestTable4LatencyScaling(t *testing.T) {
	if got := Latency(StagePipelined, grid.EightWay, 16, 16); got != 1365 {
		t.Errorf("16x16 8-way latency = %d, want 1365 (paper: 1365)", got)
	}
	if got := Latency(StagePipelined, grid.EightWay, 32, 32); got != 5205 {
		t.Errorf("32x32 8-way latency = %d, want 5205 (paper: 5208)", got)
	}
	if got := Latency(StagePipelined, grid.EightWay, 64, 64); got != 20565 {
		t.Errorf("64x64 8-way latency = %d, want 20565 (paper: 20570)", got)
	}
}

// BRAM usage grows in discrete steps: flat at small sizes, jumping by 16
// blocks when the partitioned data banks exceed the LUTRAM threshold
// between 16×16 and 24×24 (§5.5 "stepwise increases").
func TestBRAMStepBetween16And24(t *testing.T) {
	b16 := Resources(StagePipelined, grid.FourWay, 16, 16).BRAM18K
	b24 := Resources(StagePipelined, grid.FourWay, 24, 24).BRAM18K
	if b16 != 5 || b24 != 21 {
		t.Fatalf("BRAM 16x16=%d 24x24=%d, want 5 and 21", b16, b24)
	}
}

// The §5.4 headline deltas: pipelining reduces 4-way latency by ~66.6% and
// 8-way by ~69% from the unrolled stage (paper: 66.6% and 74.3%).
func TestPipeliningSpeedup(t *testing.T) {
	u4 := Latency(StageUnrolled, grid.FourWay, 8, 10)
	p4 := Latency(StagePipelined, grid.FourWay, 8, 10)
	if red := 1 - float64(p4)/float64(u4); red < 0.60 || red > 0.72 {
		t.Errorf("4-way pipelining reduction = %.1f%%, want ≈66.6%%", red*100)
	}
	u8 := Latency(StageUnrolled, grid.EightWay, 8, 10)
	p8 := Latency(StagePipelined, grid.EightWay, 8, 10)
	if red := 1 - float64(p8)/float64(u8); red < 0.60 || red > 0.80 {
		t.Errorf("8-way pipelining reduction = %.1f%%, want ≈74%%", red*100)
	}
	// And the relative speedup is larger for 8-way than 4-way (§5.4's
	// "even larger relative speedup" observation).
	if float64(p8)/float64(u8) >= float64(p4)/float64(u4) {
		t.Error("8-way should gain relatively more from pipelining than 4-way")
	}
}

// §5.5: 43×43 4-way meets CTA's 15 kHz target at 100 MHz.
func TestCTAEventRateTarget(t *testing.T) {
	lat := Latency(StagePipelined, grid.FourWay, 43, 43)
	eventsPerSec := 1e8 / float64(lat)
	if eventsPerSec < 15000 {
		t.Fatalf("43x43 4-way = %.0f events/s, want ≥ 15000", eventsPerSec)
	}
	// 8-way misses it slightly, as the paper's 7664-cycle figure implies.
	lat8 := Latency(StagePipelined, grid.EightWay, 43, 43)
	if 1e8/float64(lat8) > 15000 {
		t.Errorf("8-way 43x43 unexpectedly meets 15 kHz (lat %d)", lat8)
	}
}

// §5.5: under ideal scaling the pipelined designs sustain 30 fps up to
// ≈975×975 (4-way) and ≈813×813 (8-way). The model lands within 1% of both.
func TestThirtyFPSMaxSizes(t *testing.T) {
	budget := int64(100_000_000) / 30
	maxSide := func(conn grid.Connectivity) int {
		side := 0
		for s := 16; s <= 1200; s++ {
			if Latency(StagePipelined, conn, s, s) <= budget {
				side = s
			}
		}
		return side
	}
	if got := maxSide(grid.FourWay); got < 966 || got > 986 {
		t.Errorf("4-way max side at 30fps = %d, want ≈975", got)
	}
	if got := maxSide(grid.EightWay); got < 805 || got > 821 {
		t.Errorf("8-way max side at 30fps = %d, want ≈813", got)
	}
}

// Latency is strictly monotone in pixel count for every stage/connectivity.
func TestLatencyMonotone(t *testing.T) {
	sizes := [][2]int{{4, 4}, {8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}}
	for _, stage := range Stages() {
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			prev := int64(0)
			for _, sz := range sizes {
				l := Latency(stage, conn, sz[0], sz[1])
				if l <= prev {
					t.Errorf("%v/%v latency not monotone at %dx%d: %d after %d",
						stage, conn, sz[0], sz[1], l, prev)
				}
				prev = l
			}
		}
	}
}

// 8-way overheads vs 4-way at the same size (§5.5 "Additional 8-Way
// Connectivity Observations"): latency +15–43%… in the paper; the model's
// drain loop keeps it in a similar band, and FF/LUT overheads land inside
// the published +51–67% / +61–82% ranges.
func TestEightWayOverheadBands(t *testing.T) {
	sizes := [][2]int{{16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}}
	for _, sz := range sizes {
		l4 := Latency(StagePipelined, grid.FourWay, sz[0], sz[1])
		l8 := Latency(StagePipelined, grid.EightWay, sz[0], sz[1])
		if rel := float64(l8-l4) / float64(l4); rel < 0.15 || rel > 0.55 {
			t.Errorf("%dx%d latency overhead %.0f%%, want within 15–55%%", sz[0], sz[1], rel*100)
		}
		u4 := Resources(StagePipelined, grid.FourWay, sz[0], sz[1])
		u8 := Resources(StagePipelined, grid.EightWay, sz[0], sz[1])
		if rel := float64(u8.FF-u4.FF) / float64(u4.FF); rel < 0.45 || rel > 0.70 {
			t.Errorf("%dx%d FF overhead %.0f%%, want ≈51–67%%", sz[0], sz[1], rel*100)
		}
		if rel := float64(u8.LUT-u4.LUT) / float64(u4.LUT); rel < 0.55 || rel > 0.85 {
			t.Errorf("%dx%d LUT overhead %.0f%%, want ≈61–82%%", sz[0], sz[1], rel*100)
		}
	}
}

// LUT grows sublinearly relative to FF (§5.5): the LUT/FF ratio falls as the
// array grows.
func TestLUTSublinearVsFF(t *testing.T) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		prev := 10.0
		for _, sz := range [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}} {
			u := Resources(StagePipelined, conn, sz[0], sz[1])
			ratio := float64(u.LUT) / float64(u.FF)
			if ratio >= prev {
				t.Errorf("%v %dx%d LUT/FF ratio %.3f did not fall (prev %.3f)",
					conn, sz[0], sz[1], ratio, prev)
			}
			prev = ratio
		}
	}
}

func TestInnerII(t *testing.T) {
	if InnerII(StagePipelined, false) != 1 {
		t.Error("pipelined single-write II must be 1")
	}
	if InnerII(StagePipelined, true) != 2 {
		t.Error("pre-Fig-12 dual-write II must be 2")
	}
	if InnerII(StageBaseline, false) != 0 {
		t.Error("serialized stages have no pipelined inner II")
	}
}

// Fig 12: removing the false dependency halves the scan cost.
func TestFalseDependencyLatency(t *testing.T) {
	n, mt := 80, 20
	var dual, single int64
	for _, l := range loops(StagePipelined, grid.FourWay, n, mt, true) {
		dual += l.Latency()
	}
	for _, l := range loops(StagePipelined, grid.FourWay, n, mt, false) {
		single += l.Latency()
	}
	if dual-single != int64(n-1) {
		t.Fatalf("dual-write penalty = %d, want %d (one extra cycle per scan iteration)", dual-single, n-1)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageBaseline: "Baseline", StageBindStorage: "Bind Storage",
		StageUnrolled: "Unrolled", StagePipelined: "Pipelined",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("stage %d = %q, want %q", int(s), s.String(), w)
		}
		if !s.Valid() {
			t.Errorf("stage %v should be valid", s)
		}
	}
	if Stage(9).Valid() || Stage(9).String() == "" {
		t.Error("invalid stage handling wrong")
	}
	if len(Stages()) != 4 {
		t.Error("Stages() must list all four")
	}
}
