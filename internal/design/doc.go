// Package design implements the synthesizable island-detection designs of §5
// as functional, cycle-accounted simulations over the HLS substrate
// (internal/hls/...). Each optimization stage of the paper's study is a
// distinct schedule + storage binding of the same 1.5-pass CCL algorithm:
//
//   - StageBaseline (§5.1): no pragmas. The merge table lives in registers,
//     every loop is serialized, and the inner loop's initiation interval
//     equals its trip count.
//   - StageBindStorage (§5.2): `bind_storage ... RAM_2P` moves the merge
//     table to dual-port BRAM — saving flip-flops but adding one cycle per
//     merge-table read to the still-serialized scan (998→1158 in Table 1).
//   - StageUnrolled (§5.3): the channel-structuring loop is unrolled ×16 with
//     cyclic array partitioning, so input loading processes one 16-channel
//     ALPHA ASIC word per burst instead of one pixel at a time.
//   - StagePipelined (§5.4): the scan, load, and output loops reach II=1;
//     merge-table updates are decoupled through hls::stream queues and the
//     BRAM read latency hides inside the pipeline. This is the shipping
//     configuration evaluated in Tables 3–4.
//
// Running a design produces both the functional result (final labels,
// identical to internal/ccl with the matching mode) and a
// resource.Report whose latency comes from the loop schedules and whose
// BRAM/FF/LUT come from the calibrated estimator in model.go — the
// reproduction's stand-in for a Vitis synthesis report.
package design
