package design

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/mem"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
	"github.com/wustl-adapt/hepccl/internal/hls/sched"
)

// The centroiding half of Fig 3's "2D Island + Centroiding" box, in
// hardware form: instead of collecting pixel lists (unbounded storage), the
// design streams the labeled pixels once, accumulating Σv, Σv·row and Σv·col
// in BRAM arrays indexed by final label, then a short loop over the labels
// performs fixed-point divides. One II=1 pass plus K divides — the same
// structure the 1D design uses, generalized to 2D.

// CentroidFx is one island's hardware centroid in Q16.16 fixed point (the
// FPGA has no float datapath; the downlink format of transmit.go matches).
type CentroidFx struct {
	// Label is the island's final label.
	Label grid.Label
	// RowQ16, ColQ16 are the centroid coordinates in Q16.16.
	RowQ16, ColQ16 int32
	// Sum is the island's total integrated value.
	Sum int64
	// Pixels is the island's pixel count.
	Pixels int32
}

// Row returns the centroid row as a float.
func (c CentroidFx) Row() float64 { return float64(c.RowQ16) / 65536 }

// Col returns the centroid column as a float.
func (c CentroidFx) Col() float64 { return float64(c.ColQ16) / 65536 }

// CentroidOutput is the centroid design's result.
type CentroidOutput struct {
	// Centroids lists islands in ascending label order.
	Centroids []CentroidFx
	// Report is the stage's synthesis report.
	Report resource.Report
	// Ledger breaks down the latency.
	Ledger *sched.Ledger
}

// Centroid model constants: accumulate pass II=1; one fixed-point divide
// unit shared across the three quotients of each island.
const (
	centroidAccumDepth = 14
	// The divider core is fully pipelined: one island enters every
	// centroidDivideII cycles (row and col quotients interleaved), with
	// centroidDivideDepth cycles of fill.
	centroidDivideII    = 2
	centroidDivideDepth = 36
	centroidOverhead    = 10
)

// CentroidLatency returns the worst-case cycles for an image with n pixels
// and up to maxLabels islands.
func CentroidLatency(n, maxLabels int) int64 {
	accum := sched.Loop{Name: "accumulate", Trip: int64(n), Pipelined: true, II: 1, Depth: centroidAccumDepth}
	divide := sched.Loop{Name: "divide", Trip: int64(maxLabels), Pipelined: true, II: centroidDivideII, Depth: centroidDivideDepth}
	return accum.Latency() + divide.Latency() + centroidOverhead
}

// CentroidResources estimates the design's resource usage: three 48-bit
// accumulator arrays plus a pixel counter, all dual-port BRAM, and the
// sequential divider.
func CentroidResources(n, maxLabels int) resource.Usage {
	acc := 3 * resource.BRAM18KFor(maxLabels, 48)
	cnt := resource.BRAM18KFor(maxLabels, 24)
	if acc < 3 {
		acc = 3
	}
	if cnt < 1 {
		cnt = 1
	}
	return resource.Usage{
		BRAM18K: acc + cnt + 1, // + input label FIFO
		FF:      4*n/16 + 1450, // streaming regs + divider state
		LUT:     3*n/16 + 1800, // address muxing + divider
	}
}

// RunCentroid2D executes the centroid stage over a labeled image. maxLabels
// bounds the accumulator arrays (0 means the paper's merge-table sizing of
// the image shape, the natural bound on final labels).
func RunCentroid2D(g *grid.Grid, labels *grid.Labels, maxLabels int) (*CentroidOutput, error) {
	if g.Rows() != labels.Rows() || g.Cols() != labels.Cols() {
		return nil, fmt.Errorf("design: centroid needs matching shapes, got %dx%d vs %dx%d",
			g.Rows(), g.Cols(), labels.Rows(), labels.Cols())
	}
	if maxLabels == 0 {
		maxLabels = (g.Rows()*g.Cols() + 1) / 2 // any label assignment fits
	}
	n := g.Pixels()

	// Accumulator arrays, indexed by label (1-based).
	sumV := mem.NewArray("acc_v", maxLabels+1, 48, mem.BRAMDualPort)
	sumR := mem.NewArray("acc_vr", maxLabels+1, 48, mem.BRAMDualPort)
	sumC := mem.NewArray("acc_vc", maxLabels+1, 48, mem.BRAMDualPort)
	count := mem.NewArray("acc_n", maxLabels+1, 24, mem.BRAMDualPort)
	// 48-bit accumulators exceed the int32 Array cells; model the values in
	// shadow slices while charging the arrays for access accounting.
	shadowV := make([]int64, maxLabels+1)
	shadowR := make([]int64, maxLabels+1)
	shadowC := make([]int64, maxLabels+1)

	// Pass 1: accumulate (II=1 over all pixels).
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			l := labels.At(r, c)
			if l == 0 {
				continue
			}
			if int(l) > maxLabels {
				return nil, fmt.Errorf("design: label %d exceeds accumulator bound %d", l, maxLabels)
			}
			v := int64(g.At(r, c))
			shadowV[l] += v
			shadowR[l] += v * int64(r)
			shadowC[l] += v * int64(c)
			sumV.Write(int(l), int32(shadowV[l]&0x7FFFFFFF))
			sumR.Write(int(l), int32(shadowR[l]&0x7FFFFFFF))
			sumC.Write(int(l), int32(shadowC[l]&0x7FFFFFFF))
			count.Write(int(l), count.Read(int(l))+1)
		}
	}

	// Pass 2: fixed-point divides per live label, ascending.
	var out []CentroidFx
	for l := 1; l <= maxLabels; l++ {
		if shadowV[l] == 0 {
			continue
		}
		out = append(out, CentroidFx{
			Label:  grid.Label(l),
			RowQ16: fxDivide(shadowR[l], shadowV[l]),
			ColQ16: fxDivide(shadowC[l], shadowV[l]),
			Sum:    shadowV[l],
			Pixels: count.Read(l),
		})
	}

	ledger := sched.NewLedger()
	ledger.ChargeLoop(sched.Loop{Name: "accumulate", Trip: int64(n), Pipelined: true, II: 1, Depth: centroidAccumDepth})
	ledger.ChargeLoop(sched.Loop{Name: "divide", Trip: int64(maxLabels), Pipelined: true, II: centroidDivideII, Depth: centroidDivideDepth})
	ledger.Charge("overhead", centroidOverhead)
	worst := ledger.Total()
	dynamic := worst - int64(centroidDivideII)*int64(maxLabels-len(out))

	return &CentroidOutput{
		Centroids: out,
		Report: resource.Report{
			Design:        "island_centroid_2d",
			Stage:         "Pipelined",
			Rows:          g.Rows(),
			Cols:          g.Cols(),
			LatencyCycles: worst,
			II:            worst,
			InnerII:       1,
			Usage:         CentroidResources(n, maxLabels),
			ClockMHz:      ClockMHz,
			DynamicCycles: dynamic,
		},
		Ledger: ledger,
	}, nil
}

// fxDivide computes (num << 16) / den with round-to-nearest — the Q16.16
// restoring divider the hardware would instantiate.
func fxDivide(num, den int64) int32 {
	if den == 0 {
		return 0
	}
	q := ((num << 16) + den/2) / den
	const maxQ = int64(1)<<31 - 1
	if q > maxQ {
		q = maxQ
	}
	if q < -(maxQ + 1) {
		q = -(maxQ + 1)
	}
	return int32(q)
}
