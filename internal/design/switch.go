package design

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// TopConfig models the top-level compile-time switch TWO_DIMENSION (§5.1):
// "When set, the island_detection_2d function is compiled into the pipeline
// instead of the original island_detection_and_centroiding, which adds
// flexibility to the pipeline without touching the core design."
type TopConfig struct {
	// TwoDimension selects the 2D CCL stage; false selects the original 1D
	// island detection + centroiding.
	TwoDimension bool
	// TwoD configures the 2D design (used when TwoDimension is true).
	TwoD Config
	// OneDPipelined selects the optimized 1D schedule (used otherwise).
	OneDPipelined bool
}

// TopOutput is the result of the configured island-detection stage; exactly
// one of TwoD/OneD is set, matching the compile-time exclusivity of the
// hardware.
type TopOutput struct {
	TwoD *Output
	OneD *Output1D
}

// IslandDetection runs the stage the TWO_DIMENSION switch selects on the
// flattened channel values from the Merge module.
func IslandDetection(values []grid.Value, cfg TopConfig) (*TopOutput, error) {
	if cfg.TwoDimension {
		g, err := grid.FromFlat(cfg.TwoD.Rows, cfg.TwoD.Cols, values)
		if err != nil {
			return nil, fmt.Errorf("design: 2D island detection: %w", err)
		}
		out, err := Run(g, cfg.TwoD)
		if err != nil {
			return nil, err
		}
		return &TopOutput{TwoD: out}, nil
	}
	out, err := RunIsland1D(values, cfg.OneDPipelined)
	if err != nil {
		return nil, err
	}
	return &TopOutput{OneD: out}, nil
}
