package design

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/centroid"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func TestCentroid2DBasic(t *testing.T) {
	g, err := grid.FromRows([][]grid.Value{
		{0, 10, 0},
		{0, 30, 0},
		{5, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ccl.Label(g, ccl.Options{Connectivity: grid.FourWay, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunCentroid2D(g, res.Labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Centroids) != 2 {
		t.Fatalf("centroids = %d, want 2", len(out.Centroids))
	}
	a := out.Centroids[0] // the 10/30 column
	// row centroid = (0*10 + 1*30)/40 = 0.75; col = 1.
	if math.Abs(a.Row()-0.75) > 1e-4 || math.Abs(a.Col()-1) > 1e-4 {
		t.Fatalf("centroid A = (%v, %v), want (0.75, 1)", a.Row(), a.Col())
	}
	if a.Sum != 40 || a.Pixels != 2 {
		t.Fatalf("centroid A stats = %+v", a)
	}
	b := out.Centroids[1]
	if b.Row() != 2 || b.Col() != 0 || b.Sum != 5 || b.Pixels != 1 {
		t.Fatalf("centroid B = %+v", b)
	}
	if out.Report.DynamicCycles > out.Report.LatencyCycles {
		t.Fatal("dynamic exceeds worst case")
	}
	if out.Report.LatencyCycles != CentroidLatency(9, 5) {
		t.Fatal("report/model latency mismatch")
	}
}

func TestCentroid2DErrors(t *testing.T) {
	if _, err := RunCentroid2D(grid.New(2, 2), grid.NewLabels(3, 3), 0); err == nil {
		t.Fatal("shape mismatch must error")
	}
	g := grid.New(2, 2)
	g.Set(0, 0, 1)
	l := grid.NewLabels(2, 2)
	l.Set(0, 0, 9)
	if _, err := RunCentroid2D(g, l, 4); err == nil {
		t.Fatal("label above accumulator bound must error")
	}
}

// Property: the hardware fixed-point centroids match the software float
// centroids within Q16.16 rounding on generated shower images.
func TestCentroid2DMatchesSoftware(t *testing.T) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(99)
	for i := 0; i < 15; i++ {
		g := cam.Shower(cam.TypicalShower(rng), rng)
		res, err := ccl.Label(g, ccl.Options{Connectivity: grid.FourWay, CompactLabels: true})
		if err != nil {
			t.Fatal(err)
		}
		hw, err := RunCentroid2D(g, res.Labels, 0)
		if err != nil {
			t.Fatal(err)
		}
		sw := centroid.All2D(ccl.Islands(g, res.Labels))
		if len(hw.Centroids) != len(sw) {
			t.Fatalf("count mismatch: hw %d vs sw %d", len(hw.Centroids), len(sw))
		}
		for k := range sw {
			if hw.Centroids[k].Label != sw[k].Label {
				t.Fatalf("label order mismatch at %d", k)
			}
			if math.Abs(hw.Centroids[k].Row()-sw[k].Row) > 1.0/65536*2 ||
				math.Abs(hw.Centroids[k].Col()-sw[k].Col) > 1.0/65536*2 {
				t.Fatalf("centroid %d: hw (%v,%v) vs sw (%v,%v)",
					k, hw.Centroids[k].Row(), hw.Centroids[k].Col(), sw[k].Row, sw[k].Col)
			}
			if hw.Centroids[k].Sum != sw[k].Sum || int(hw.Centroids[k].Pixels) != sw[k].Pixels {
				t.Fatalf("centroid %d stats mismatch", k)
			}
		}
	}
}

func TestCentroid2DLatencyModel(t *testing.T) {
	// 43×43 with the label bound from the merge-table sizing: the stage is
	// far cheaper than labeling itself and cannot bottleneck the pipeline.
	lat := CentroidLatency(1849, ccl.SizeForPaper(43, 43))
	if lat >= Latency(StagePipelined, grid.FourWay, 43, 43) {
		t.Fatalf("centroid stage (%d) should be cheaper than labeling (%d)",
			lat, Latency(StagePipelined, grid.FourWay, 43, 43))
	}
	u := CentroidResources(1849, 484)
	if u.BRAM18K < 4 || u.FF <= 0 || u.LUT <= 0 {
		t.Fatalf("resources implausible: %+v", u)
	}
}

// Property: every live label gets exactly one centroid, inside its bbox.
func TestCentroid2DCoverageProperty(t *testing.T) {
	f := func(cells [108]byte) bool {
		g := grid.New(9, 12)
		for i, b := range cells {
			if b%2 == 0 {
				g.Flat()[i] = grid.Value(b%9) + 1
			}
		}
		res, err := ccl.Label(g, ccl.Options{Connectivity: grid.EightWay, CompactLabels: true})
		if err != nil {
			return false
		}
		out, err := RunCentroid2D(g, res.Labels, 0)
		if err != nil {
			return false
		}
		if len(out.Centroids) != res.Islands {
			return false
		}
		islands := ccl.Islands(g, res.Labels)
		for k, c := range out.Centroids {
			is := islands[k]
			if c.Label != is.Label {
				return false
			}
			if c.Row() < float64(is.MinRow)-1e-4 || c.Row() > float64(is.MaxRow)+1e-4 ||
				c.Col() < float64(is.MinCol)-1e-4 || c.Col() > float64(is.MaxCol)+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFxDivide(t *testing.T) {
	if fxDivide(3, 2) != 98304 { // 1.5 in Q16.16
		t.Fatalf("fxDivide(3,2) = %d", fxDivide(3, 2))
	}
	if fxDivide(1, 0) != 0 {
		t.Fatal("divide by zero must return 0")
	}
	if fxDivide(1<<40, 1) != 1<<31-1 {
		t.Fatal("positive saturation")
	}
}
