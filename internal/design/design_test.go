package design

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

func cfg(stage Stage, conn grid.Connectivity, rows, cols int) Config {
	return Config{
		Rows: rows, Cols: cols, Connectivity: conn, Stage: stage,
		// Worst-case capacity so random 4-way inputs cannot overflow.
		MergeTableCap: ccl.SizeFor(rows, cols, conn),
	}
}

func randomGrid(cells []byte, rows, cols, litPermille int) *grid.Grid {
	g := grid.New(rows, cols)
	for i := 0; i < rows*cols && i < len(cells); i++ {
		if int(cells[i])*1000/256 < litPermille {
			g.Flat()[i] = grid.Value(cells[i]) + 1
		}
	}
	return g
}

// Every stage is functionally identical: the optimization study changes the
// schedule, never the algorithm. All stages must produce bit-identical labels
// to internal/ccl running in paper mode.
func TestStagesMatchCCLPaperMode(t *testing.T) {
	f := func(cells [80]byte) bool {
		g := randomGrid(cells[:], 8, 10, 550)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := ccl.Label(g, ccl.Options{Connectivity: conn, Mode: ccl.ModePaper})
			if err != nil {
				return false
			}
			for _, stage := range Stages() {
				out, err := Run(g, cfg(stage, conn, 8, 10))
				if err != nil {
					return false
				}
				if !out.Labels.Equal(want.Labels) {
					return false
				}
				if out.Groups != want.Groups {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// FixedUpdate must make the hardware match the golden model on every input,
// including the §6 corner case patterns.
func TestFixedUpdateMatchesGolden(t *testing.T) {
	f := func(cells [80]byte) bool {
		g := randomGrid(cells[:], 8, 10, 550)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			golden, err := labeling.FloodFill{}.Label(g, conn)
			if err != nil {
				return false
			}
			c := cfg(StagePipelined, conn, 8, 10)
			c.FixedUpdate = true
			out, err := Run(g, c)
			if err != nil || !out.Labels.Isomorphic(golden) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCornerCaseInHardware(t *testing.T) {
	g := grid.MustParse(`
		#..#.
		#.##.
		###..
	`)
	out, err := Run(g, cfg(StagePipelined, grid.FourWay, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Islands != 2 {
		t.Fatalf("published design islands = %d, want the documented split into 2", out.Islands)
	}
	c := cfg(StagePipelined, grid.FourWay, 3, 5)
	c.FixedUpdate = true
	fixed, err := Run(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Islands != 1 {
		t.Fatalf("fixed design islands = %d, want 1", fixed.Islands)
	}
}

// The dual-write (pre-Fig-12) design is functionally identical to the
// single-write one — the fix removes a false dependency, not real behaviour —
// but costs one extra cycle per scan iteration.
func TestDualWriteFunctionalEquivalence(t *testing.T) {
	g := grid.MustParse(`
		##.#.#.##.
		#.##.##..#
		.#.##.#.#.
		##..#..##.
		.#.##.#..#
		#..#.##.#.
		.##..#..##
		#.#.##.#..
	`)
	single, err := Run(g, cfg(StagePipelined, grid.FourWay, 8, 10))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(StagePipelined, grid.FourWay, 8, 10)
	c.DualWriteStreams = true
	dual, err := Run(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if !dual.Labels.Equal(single.Labels) {
		t.Fatal("dual-write must be functionally identical")
	}
	if dual.Report.InnerII != 2 || single.Report.InnerII != 1 {
		t.Fatalf("InnerII = %d/%d, want 2/1", dual.Report.InnerII, single.Report.InnerII)
	}
	if dual.Report.LatencyCycles-single.Report.LatencyCycles != 79 {
		t.Fatalf("dual-write penalty = %d cycles, want 79",
			dual.Report.LatencyCycles-single.Report.LatencyCycles)
	}
}

func TestReportMatchesModel(t *testing.T) {
	g := grid.New(8, 10)
	g.Set(0, 0, 5)
	for _, stage := range Stages() {
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			c := Config{Rows: 8, Cols: 10, Connectivity: conn, Stage: stage}
			out, err := Run(g, c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Report.LatencyCycles != Latency(stage, conn, 8, 10) {
				t.Errorf("%v/%v report latency %d != model %d",
					stage, conn, out.Report.LatencyCycles, Latency(stage, conn, 8, 10))
			}
			if out.Report.II != out.Report.LatencyCycles {
				t.Errorf("%v/%v II must equal latency in the tables", stage, conn)
			}
			if out.Report.Usage != Resources(stage, conn, 8, 10) {
				t.Errorf("%v/%v report usage mismatch", stage, conn)
			}
			if out.Report.DynamicCycles > out.Report.LatencyCycles {
				t.Errorf("%v/%v dynamic cycles exceed worst case", stage, conn)
			}
			if out.Report.ClockMHz != 100 {
				t.Errorf("clock = %v, want 100 MHz", out.Report.ClockMHz)
			}
		}
	}
}

func TestLedgerBreakdown(t *testing.T) {
	g := grid.New(8, 10)
	out, err := Run(g, cfg(StagePipelined, grid.EightWay, 8, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, region := range []string{"load", "scan", "drain", "resolve", "output", "overhead"} {
		if out.Ledger.Get(region) <= 0 {
			t.Errorf("ledger region %q missing", region)
		}
	}
	if out.Ledger.Total() != out.Report.LatencyCycles {
		t.Fatal("ledger total must equal report latency")
	}
	// 4-way has no drain loop.
	out4, err := Run(g, cfg(StagePipelined, grid.FourWay, 8, 10))
	if err != nil {
		t.Fatal(err)
	}
	if out4.Ledger.Get("drain") != 0 {
		t.Fatal("4-way pipelined must not have a drain loop")
	}
}

func TestStreamTraffic(t *testing.T) {
	g := grid.MustParse(`
		#.#.#
		#.#.#
		##.##
		..#..
	`)
	out, err := Run(g, cfg(StagePipelined, grid.FourWay, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Streams) != 2 {
		t.Fatalf("4-way pipelined streams = %d, want 2 (top, left)", len(out.Streams))
	}
	var totalWrites int64
	for _, s := range out.Streams {
		totalWrites += s.Writes
	}
	// Every new group writes an init to stream_top; plus one merge. 5 groups
	// + 1 merge = 6 updates.
	if totalWrites != 6 {
		t.Fatalf("stream writes = %d, want 6", totalWrites)
	}
	out8, err := Run(g, cfg(StagePipelined, grid.EightWay, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out8.Streams) != 4 {
		t.Fatalf("8-way pipelined streams = %d, want 4 (+topleft, topright)", len(out8.Streams))
	}
	// Serialized stages use no streams.
	outB, err := Run(g, cfg(StageBaseline, grid.FourWay, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(outB.Streams) != 0 {
		t.Fatal("baseline must not report streams")
	}
}

func TestPaperSizingOverflow(t *testing.T) {
	// 4-way checkerboard overflows the paper's merge-table sizing (E9).
	g := grid.New(6, 6)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			if (r+c)%2 == 0 {
				g.Set(r, c, 1)
			}
		}
	}
	c := Config{Rows: 6, Cols: 6, Connectivity: grid.FourWay, Stage: StagePipelined}
	if _, err := Run(g, c); !errors.Is(err, ccl.ErrMergeTableFull) {
		t.Fatalf("err = %v, want ErrMergeTableFull", err)
	}
	c.Connectivity = grid.EightWay
	out, err := Run(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Islands != 1 {
		t.Fatalf("8-way checkerboard islands = %d, want 1", out.Islands)
	}
}

func TestConfigValidation(t *testing.T) {
	g := grid.New(2, 2)
	bad := []Config{
		{Rows: 0, Cols: 2, Connectivity: grid.FourWay},
		{Rows: 2, Cols: 0, Connectivity: grid.FourWay},
		{Rows: 2, Cols: 2, Connectivity: grid.Connectivity(3)},
		{Rows: 2, Cols: 2, Connectivity: grid.FourWay, Stage: Stage(7)},
	}
	for i, c := range bad {
		if _, err := Run(g, c); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
	// Shape mismatch.
	if _, err := Run(grid.New(3, 3), Config{Rows: 2, Cols: 2, Connectivity: grid.FourWay}); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestWordsForPacking(t *testing.T) {
	g := grid.New(3, 6) // 18 pixels → 2 words
	for i := 0; i < 18; i++ {
		g.Flat()[i] = grid.Value(i + 1)
	}
	words := WordsFor(g)
	if len(words) != 2 {
		t.Fatalf("words = %d, want 2", len(words))
	}
	if words[0][0] != 1 || words[0][15] != 16 || words[1][0] != 17 || words[1][1] != 18 {
		t.Fatal("packing order wrong")
	}
	if words[1][2] != 0 {
		t.Fatal("tail must be zero-padded")
	}
}

func TestRunWords(t *testing.T) {
	g := grid.MustParse("##..\n..##")
	want, err := Run(g, cfg(StagePipelined, grid.FourWay, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWords(WordsFor(g), cfg(StagePipelined, grid.FourWay, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Labels.Equal(want.Labels) {
		t.Fatal("RunWords must match Run")
	}
	if _, err := RunWords(nil, cfg(StagePipelined, grid.FourWay, 2, 4)); err == nil {
		t.Fatal("word-count mismatch must error")
	}
}

func TestIsland1D(t *testing.T) {
	values := []grid.Value{0, 3, 5, 0, 0, 7, 0, 2, 2, 2}
	out, err := RunIsland1D(values, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Islands) != 3 {
		t.Fatalf("islands = %d, want 3", len(out.Islands))
	}
	a := out.Islands[0]
	if a.Start != 1 || a.End != 2 || a.Sum != 8 || a.Width() != 2 {
		t.Fatalf("island 0 = %+v", a)
	}
	// centroid = (1*3 + 2*5)/8 = 13/8.
	if a.Centroid != 13.0/8.0 {
		t.Fatalf("centroid = %v, want 1.625", a.Centroid)
	}
	b := out.Islands[1]
	if b.Start != 5 || b.End != 5 || b.Centroid != 5 {
		t.Fatalf("island 1 = %+v", b)
	}
	c := out.Islands[2]
	if c.Start != 7 || c.End != 9 || c.Sum != 6 || c.Centroid != 8 {
		t.Fatalf("island 2 = %+v", c)
	}
	if out.Report.DynamicCycles > out.Report.LatencyCycles {
		t.Fatal("dynamic cycles exceed worst case")
	}
}

func TestIsland1DTrailingAndEdges(t *testing.T) {
	out, err := RunIsland1D([]grid.Value{4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Islands) != 1 || out.Islands[0].Centroid != 0 {
		t.Fatalf("single channel: %+v", out.Islands)
	}
	out, err = RunIsland1D([]grid.Value{0, 0, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Islands) != 0 {
		t.Fatal("all-dark must yield no islands")
	}
	if _, err := RunIsland1D(nil, true); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestIsland1DPipelinedFaster(t *testing.T) {
	values := make([]grid.Value, 128)
	values[5] = 9
	fast, _ := RunIsland1D(values, true)
	slow, _ := RunIsland1D(values, false)
	if fast.Report.LatencyCycles >= slow.Report.LatencyCycles {
		t.Fatal("pipelined 1D must be faster")
	}
	if fast.Report.InnerII != 1 || slow.Report.InnerII != 0 {
		t.Fatal("1D InnerII wrong")
	}
}

// Property: 1D islands exactly tile the nonzero runs.
func TestIsland1DProperty(t *testing.T) {
	f := func(vals [64]uint8) bool {
		values := make([]grid.Value, len(vals))
		for i, v := range vals {
			values[i] = grid.Value(v % 5) // plenty of zeros
		}
		out, err := RunIsland1D(values, true)
		if err != nil {
			return false
		}
		covered := make([]bool, len(values))
		prevEnd := -1
		for _, is := range out.Islands {
			if is.Start <= prevEnd {
				return false // overlapping or unordered
			}
			if is.Start > 0 && values[is.Start-1] != 0 {
				return false // not maximal on the left
			}
			if is.End < len(values)-1 && values[is.End+1] != 0 {
				return false // not maximal on the right
			}
			var sum int64
			for i := is.Start; i <= is.End; i++ {
				if values[i] == 0 {
					return false // hole inside island
				}
				covered[i] = true
				sum += int64(values[i])
			}
			if sum != is.Sum {
				return false
			}
			if is.Centroid < float64(is.Start) || is.Centroid > float64(is.End) {
				return false // centroid inside the island span
			}
			prevEnd = is.End
		}
		for i, v := range values {
			if (v != 0) != covered[i] {
				return false // every lit channel in exactly one island
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopLevelSwitch(t *testing.T) {
	values := []grid.Value{1, 1, 0, 0, 0, 2}
	// 1D mode.
	out, err := IslandDetection(values, TopConfig{OneDPipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.OneD == nil || out.TwoD != nil {
		t.Fatal("1D mode must populate OneD only")
	}
	if len(out.OneD.Islands) != 2 {
		t.Fatalf("1D islands = %d, want 2", len(out.OneD.Islands))
	}
	// 2D mode on the same stream, interpreted as 2×3.
	out, err = IslandDetection(values, TopConfig{
		TwoDimension: true,
		TwoD:         Config{Rows: 2, Cols: 3, Connectivity: grid.FourWay, Stage: StagePipelined},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.TwoD == nil || out.OneD != nil {
		t.Fatal("2D mode must populate TwoD only")
	}
	if out.TwoD.Islands != 2 {
		t.Fatalf("2D islands = %d, want 2", out.TwoD.Islands)
	}
	// Mismatched flat length errors in 2D mode.
	if _, err := IslandDetection(values[:5], TopConfig{
		TwoDimension: true,
		TwoD:         Config{Rows: 2, Cols: 3, Connectivity: grid.FourWay, Stage: StagePipelined},
	}); err == nil {
		t.Fatal("flat length mismatch must error")
	}
}

func TestTraceWriterEmitsVCD(t *testing.T) {
	g := grid.MustParse("#.#\n###")
	var buf bytes.Buffer
	c := cfg(StagePipelined, grid.FourWay, 2, 3)
	c.TraceWriter = &buf
	out, err := Run(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Islands != 1 {
		t.Fatalf("islands = %d", out.Islands)
	}
	vcd := buf.String()
	for _, want := range []string{
		"$timescale 10ns $end",
		"$scope module island_detection_2d $end",
		"scan_idx", "curr_label", "merge_updates",
		"$enddefinitions $end",
		"#0", "#5", // one tick per pixel, six pixels
	} {
		if !strings.Contains(vcd, want) {
			t.Fatalf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// Tracing must not change functional output.
	plain, err := Run(g, cfg(StagePipelined, grid.FourWay, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Labels.Equal(out.Labels) {
		t.Fatal("tracing changed labels")
	}
}
