package design

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/mem"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
	"github.com/wustl-adapt/hepccl/internal/hls/sched"
	"github.com/wustl-adapt/hepccl/internal/hls/stream"
	"github.com/wustl-adapt/hepccl/internal/hls/trace"
)

// Word is one 16-channel output word of the Merge module — the wide FIFO
// element the island-detection function consumes (§4.1).
type Word [Channels]grid.Value

// WordsFor packs a grid's pixels, in row-major order, into 16-channel Merge
// words, zero-padding the tail — the format produced by merging
// zero-suppressed integrals from the ALPHA ASICs.
func WordsFor(g *grid.Grid) []Word {
	flat := g.Flat()
	words := make([]Word, (len(flat)+Channels-1)/Channels)
	for i, v := range flat {
		words[i/Channels][i%Channels] = v
	}
	return words
}

// StreamStat summarizes one hls::stream's traffic during a run.
type StreamStat struct {
	Name         string
	Writes       int64
	MaxOccupancy int
}

// Output is the result of running a design configuration on one event.
type Output struct {
	// Labels is the final label image emitted on the output FIFO.
	Labels *grid.Labels
	// Report is the Vitis-style synthesis report for the configuration.
	Report resource.Report
	// Ledger breaks the worst-case latency down by loop.
	Ledger *sched.Ledger
	// Streams reports merge-update stream traffic (pipelined stage only).
	Streams []StreamStat
	// Groups is the number of provisional groups the scan allocated.
	Groups int
	// Islands is the number of distinct final labels.
	Islands int
}

// mergeUpdate is one queued merge-table operation: Group==Target initializes
// a new group; otherwise it is an equivalence record.
type mergeUpdate struct {
	Group, Target grid.Label
}

// Run executes the island_detection_2d design on one event image and returns
// its functional output and synthesis report. The grid shape must match the
// configured NROWS×NCOLS.
func Run(g *grid.Grid, cfg Config) (*Output, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.Rows() != cfg.Rows || g.Cols() != cfg.Cols {
		return nil, fmt.Errorf("design: image is %dx%d but design was compiled for %dx%d",
			g.Rows(), g.Cols(), cfg.Rows, cfg.Cols)
	}
	return run(WordsFor(g), cfg)
}

// RunWords executes the design directly on Merge-module words, the hand-off
// used by the ADAPT pipeline integration (internal/adapt).
func RunWords(words []Word, cfg Config) (*Output, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	need := (cfg.Rows*cfg.Cols + Channels - 1) / Channels
	if len(words) != need {
		return nil, fmt.Errorf("design: got %d merge words, want %d for %dx%d",
			len(words), need, cfg.Rows, cfg.Cols)
	}
	return run(words, cfg)
}

func run(words []Word, cfg Config) (*Output, error) {
	rows, cols := cfg.Rows, cfg.Cols
	n := rows * cols
	mtCap := cfg.MergeTableCap
	if mtCap == 0 {
		mtCap = ccl.SizeForPaper(rows, cols)
	}

	// Storage bindings per stage (§5.1–5.4).
	mtKind := mem.Registers
	if cfg.Stage != StageBaseline {
		mtKind = mem.BRAMDualPort
	}
	data := mem.NewArray("data", n, PixelBits, mem.BRAMDualPort)
	if cfg.Stage == StageUnrolled || cfg.Stage == StagePipelined {
		// Arrays smaller than the unroll factor partition completely.
		data.Partition(min(Channels, n))
	}
	labels := mem.NewArray("labels", n, LabelBits, mem.BRAMDualPort)
	mt := mem.NewArray("merge_table", mtCap+1, LabelBits, mtKind)

	// Merge-update streams (pipelined stage, §5.4). Depth covers the worst
	// case of one update per pixel per stream.
	pipelined := cfg.Stage == StagePipelined
	var updateStreams []*stream.Stream[mergeUpdate]
	var top, left, topLeft, topRight *stream.Stream[mergeUpdate]
	if pipelined {
		mkdepth := n + 1
		top = stream.New[mergeUpdate]("stream_top", mkdepth, 2*LabelBits)
		left = stream.New[mergeUpdate]("stream_left", mkdepth, 2*LabelBits)
		updateStreams = []*stream.Stream[mergeUpdate]{top, left}
		if cfg.Connectivity == grid.EightWay {
			topLeft = stream.New[mergeUpdate]("stream_topleft", mkdepth, 2*LabelBits)
			topRight = stream.New[mergeUpdate]("stream_topright", mkdepth, 2*LabelBits)
			updateStreams = append(updateStreams, topLeft, topRight)
		}
	}

	// ---- Load: refactor the 16-channel words into the data array (§4.1).
	for w, word := range words {
		base := w * Channels
		for c := 0; c < Channels; c++ {
			if i := base + c; i < n {
				data.Write(i, word[c])
			}
		}
	}

	// ---- Scan: provisional labels + merge-table maintenance (§4.2).
	next := grid.Label(1)
	alloc := func() (grid.Label, error) {
		if int(next) > mtCap {
			return 0, fmt.Errorf("design: %w: capacity %d at 4-way worst case; see EXPERIMENTS.md E9",
				ccl.ErrMergeTableFull, mtCap)
		}
		l := next
		next++
		return l, nil
	}
	// apply performs one queued merge-table operation with the configured
	// update rule.
	apply := func(u mergeUpdate) {
		if u.Group == u.Target {
			mt.Write(int(u.Group), int32(u.Group)) // new-group init
			return
		}
		if cfg.FixedUpdate {
			// §6 "logical fix": chase both to roots, link max at min.
			ra, rb := u.Group, u.Target
			for grid.Label(mt.Read(int(ra))) != ra {
				ra = grid.Label(mt.Read(int(ra)))
			}
			for grid.Label(mt.Read(int(rb))) != rb {
				rb = grid.Label(mt.Read(int(rb)))
			}
			switch {
			case ra == rb:
			case ra < rb:
				mt.Write(int(rb), int32(ra))
			default:
				mt.Write(int(ra), int32(rb))
			}
			return
		}
		// Published rule (Fig 6): entry takes the minimum of its current
		// value and the incoming label, if the group exists.
		cur := grid.Label(mt.Read(int(u.Group)))
		if cur != 0 && u.Target < cur {
			mt.Write(int(u.Group), int32(u.Target))
		}
	}
	// emit queues (pipelined) or applies (serialized) a merge update.
	emit := func(s *stream.Stream[mergeUpdate], u mergeUpdate) error {
		if !pipelined {
			apply(u)
			return nil
		}
		return s.Write(u)
	}

	offsets := cfg.Connectivity.ScanNeighbors()
	// Map a scan-neighbor offset to its stream (pipelined stage).
	streamFor := func(o grid.Offset) *stream.Stream[mergeUpdate] {
		switch {
		case o.DR == -1 && o.DC == -1:
			return topLeft
		case o.DR == -1 && o.DC == 0:
			return top
		case o.DR == -1 && o.DC == 1:
			return topRight
		default:
			return left
		}
	}

	// Optional co-sim waveform of the scan loop (one tick per pixel).
	var vcd *trace.VCD
	var sigIdx, sigLit, sigLabel, sigMerges trace.SignalID
	if cfg.TraceWriter != nil {
		vcd = trace.NewVCD(cfg.TraceWriter, "island_detection_2d", "10ns")
		sigIdx = vcd.Signal("scan_idx", 16)
		sigLit = vcd.Signal("lit", 1)
		sigLabel = vcd.Signal("curr_label", LabelBits)
		sigMerges = vcd.Signal("merge_updates", 8)
		if err := vcd.Begin(); err != nil {
			return nil, err
		}
	}
	tracePixel := func(idx int, lit bool, label grid.Label, merges int) error {
		if vcd == nil {
			return nil
		}
		vcd.Set(sigIdx, int64(idx))
		b := int64(0)
		if lit {
			b = 1
		}
		vcd.Set(sigLit, b)
		vcd.Set(sigLabel, int64(label))
		vcd.Set(sigMerges, int64(merges))
		return vcd.Tick(1)
	}

	// prev holds the left neighbor's label in a register to break the
	// read-after-write hazard the paper removes with a buffer (§5.4).
	for r := 0; r < rows; r++ {
		prev := grid.Label(0)
		for c := 0; c < cols; c++ {
			idx := r*cols + c
			if data.Read(idx) == 0 {
				labels.Write(idx, 0)
				prev = 0
				if err := tracePixel(idx, false, 0, 0); err != nil {
					return nil, err
				}
				continue
			}
			// Gather scanned-neighbor labels.
			minL := grid.Label(0)
			type nb struct {
				label grid.Label
				off   grid.Offset
			}
			var neigh [4]nb
			nn := 0
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				var l grid.Label
				if o.DR == 0 && o.DC == -1 {
					l = prev // buffered left neighbor
				} else {
					l = grid.Label(labels.Read(nr*cols + nc))
				}
				if l == 0 {
					continue
				}
				neigh[nn] = nb{label: l, off: o}
				nn++
				if minL == 0 || l < minL {
					minL = l
				}
			}
			var cur grid.Label
			pixelUpdates := 0
			if nn == 0 {
				l, err := alloc()
				if err != nil {
					return nil, err
				}
				cur = l
				// New-island initialization travels on stream_top — the
				// Fig 12 single-write pattern guarantees at most one
				// stream_top write per iteration, because this branch and
				// the top-merge branch are exclusive.
				if err := emit(top, mergeUpdate{Group: l, Target: l}); err != nil {
					return nil, err
				}
				pixelUpdates++
			} else {
				cur = minL
				for i := 0; i < nn; i++ {
					nbr := neigh[i]
					if nbr.label == minL {
						continue
					}
					s := left
					if pipelined {
						s = streamFor(nbr.off)
					}
					if err := emit(s, mergeUpdate{Group: nbr.label, Target: cur}); err != nil {
						return nil, err
					}
					pixelUpdates++
				}
			}
			labels.Write(idx, int32(cur))
			prev = cur
			if err := tracePixel(idx, true, cur, pixelUpdates); err != nil {
				return nil, err
			}
			// The decoupled merge process consumes queued updates
			// concurrently with the scan; draining here preserves the
			// hardware's per-pixel ordering.
			if pipelined {
				for _, s := range updateStreams {
					for !s.Empty() {
						apply(s.MustRead())
					}
				}
			}
		}
	}

	// ---- Resolve: ascending double-dereference (§4.3).
	dynResolve := 0
	for i := 1; i <= mtCap; i++ {
		dynResolve++
		e := mt.Read(i)
		if e == 0 {
			break
		}
		mt.Write(i, mt.Read(int(e)))
	}

	// ---- Output: direct merge-table lookup per pixel (§4.4).
	if vcd != nil {
		if err := vcd.Close(); err != nil {
			return nil, err
		}
	}
	outFIFO := stream.New[grid.Label]("labels_out", n, LabelBits)
	for i := 0; i < n; i++ {
		l := grid.Label(labels.Read(i))
		if l != 0 {
			l = grid.Label(mt.Read(int(l)))
		}
		outFIFO.MustWrite(l)
	}
	final := grid.NewLabels(rows, cols)
	for i := 0; i < n; i++ {
		final.SetFlat(i, outFIFO.MustRead())
	}

	// ---- Schedule & report.
	ledger := sched.NewLedger()
	for _, l := range loops(cfg.Stage, cfg.Connectivity, n, mtCap, cfg.DualWriteStreams) {
		ledger.ChargeLoop(l)
	}
	ledger.Charge("overhead", overhead(cfg.Stage, cfg.Connectivity))

	worst := ledger.Total()
	// Data-dependent latency: the resolve loop exits at the first zero entry.
	dynamic := worst - int64(resolveIter)*int64(mtCap-dynResolve)

	var stats []StreamStat
	for _, s := range updateStreams {
		stats = append(stats, StreamStat{Name: s.Name(), Writes: s.Writes(), MaxOccupancy: s.MaxOccupancy()})
	}

	out := &Output{
		Labels: final,
		Report: resource.Report{
			Design:        "island_detection_2d",
			Stage:         cfg.Stage.String(),
			Connectivity:  cfg.Connectivity,
			Rows:          rows,
			Cols:          cols,
			LatencyCycles: worst,
			II:            worst, // function interval = latency (§5 tables)
			InnerII:       InnerII(cfg.Stage, cfg.DualWriteStreams),
			Usage:         Resources(cfg.Stage, cfg.Connectivity, rows, cols),
			ClockMHz:      ClockMHz,
			DynamicCycles: dynamic,
		},
		Ledger:  ledger,
		Streams: stats,
		Groups:  int(next) - 1,
		Islands: final.Count(),
	}
	return out, nil
}
