package design

import (
	"math"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
	"github.com/wustl-adapt/hepccl/internal/hls/sched"
)

// Hardware-wide constants of the ADAPT pipeline integration (§4.1, §5.3).
const (
	// Channels is the channel count of one ALPHA digitizer ASIC; the Merge
	// module emits 16-channel-wide words and the unroll factor matches it.
	Channels = 16
	// PixelBits is the width of one integrated channel value.
	PixelBits = 32
	// LabelBits is the width of a group label / merge-table entry.
	LabelBits = 16
	// ClockMHz is the synthesis clock of §5.5.
	ClockMHz = 100.0
)

// Latency model coefficients, calibrated so the schedule reproduces Tables
// 1–4 (derivation in DESIGN.md §5 and EXPERIMENTS.md):
//
//   - serialized scan iteration: 8 cycles (4-way) / 13 cycles (8-way);
//     binding the merge table to BRAM adds exactly one cycle per merge-table
//     read (2 reads/pixel 4-way, 4 reads/pixel 8-way);
//   - serialized load: 2 cycles/pixel; unrolled load: 4 cycles per 16-channel
//     ASIC word;
//   - pipelined loops: II=1 with depths 12 (load), 24 (scan), 12 (output);
//   - merge-table resolution: 2 cycles/entry over the full table (worst
//     case — the hardware cannot know where the first zero entry is until it
//     reads it);
//   - 8-way pipelined adds a merge-update drain loop of ⌈3N/2⌉ worst-case
//     entries (three update streams, amortized half-occupied).
const (
	baseScanIter4    = 8
	baseScanIter8    = 13
	mtReadsPerPixel4 = 2
	mtReadsPerPixel8 = 4
	serialLoadIter   = 2
	unrolledLoadIter = 4
	resolveIter      = 2
	outputIter       = 1
	loadDepth        = 12
	scanDepth        = 24
	drainDepth       = 24
	outputDepth      = 12
	serialOverhead   = 78
	pipeOverhead4    = 15
	pipeOverhead8    = 17
)

// loops returns the scheduled loop nest for a configuration. n is the pixel
// count, mt the merge-table capacity used for the worst-case resolve trip.
func loops(stage Stage, conn grid.Connectivity, n, mt int, dualWrite bool) []sched.Loop {
	n64, mt64 := int64(n), int64(mt)
	asics := int64((n + Channels - 1) / Channels)

	scanIter := int64(baseScanIter4)
	mtReads := int64(mtReadsPerPixel4)
	if conn == grid.EightWay {
		scanIter = baseScanIter8
		mtReads = mtReadsPerPixel8
	}

	switch stage {
	case StageBaseline:
		return []sched.Loop{
			{Name: "load", Trip: n64, IterLatency: serialLoadIter},
			{Name: "scan", Trip: n64, IterLatency: scanIter},
			{Name: "resolve", Trip: mt64, IterLatency: resolveIter},
			{Name: "output", Trip: n64, IterLatency: outputIter},
		}
	case StageBindStorage:
		return []sched.Loop{
			{Name: "load", Trip: n64, IterLatency: serialLoadIter},
			// BRAM's 1-cycle read latency is exposed on every merge-table
			// read because the loop is not pipelined (§5.2).
			{Name: "scan", Trip: n64, IterLatency: scanIter + mtReads},
			{Name: "resolve", Trip: mt64, IterLatency: resolveIter},
			{Name: "output", Trip: n64, IterLatency: outputIter},
		}
	case StageUnrolled:
		return []sched.Loop{
			{Name: "load", Trip: asics, IterLatency: unrolledLoadIter},
			{Name: "scan", Trip: n64, IterLatency: scanIter + mtReads},
			{Name: "resolve", Trip: mt64, IterLatency: resolveIter},
			{Name: "output", Trip: n64, IterLatency: outputIter},
		}
	case StagePipelined:
		scanII := int64(1)
		if dualWrite {
			// Fig 12's false memory dependency: two possible writers to
			// stream_top force the scheduler to serialize alternate
			// iterations (II=2) until the single-write rewrite.
			scanII = 2
		}
		ls := []sched.Loop{
			{Name: "load", Trip: n64, Pipelined: true, II: 1, Depth: loadDepth},
			{Name: "scan", Trip: n64, Pipelined: true, II: scanII, Depth: scanDepth},
		}
		if conn == grid.EightWay {
			ls = append(ls, sched.Loop{
				Name: "drain", Trip: (3*n64 + 1) / 2, Pipelined: true, II: 1, Depth: drainDepth,
			})
		}
		ls = append(ls,
			sched.Loop{Name: "resolve", Trip: mt64, IterLatency: resolveIter},
			sched.Loop{Name: "output", Trip: n64, Pipelined: true, II: 1, Depth: outputDepth},
		)
		return ls
	default:
		panic("design: unknown stage")
	}
}

// overhead returns the fixed function entry/exit cycles for a configuration.
func overhead(stage Stage, conn grid.Connectivity) int64 {
	if stage == StagePipelined {
		if conn == grid.EightWay {
			return pipeOverhead8
		}
		return pipeOverhead4
	}
	return serialOverhead
}

// Latency returns the worst-case function latency in cycles for a
// configuration, the number a Vitis report's Latency column would show.
func Latency(stage Stage, conn grid.Connectivity, rows, cols int) int64 {
	n := rows * cols
	mt := ccl.SizeForPaper(rows, cols)
	var total int64
	for _, l := range loops(stage, conn, n, mt, false) {
		total += l.Latency()
	}
	return total + overhead(stage, conn)
}

// InnerII returns the initiation interval achieved by the labeling scan loop.
func InnerII(stage Stage, dualWrite bool) int64 {
	if stage != StagePipelined {
		return 0 // serialized: reported as latency-matching in the tables
	}
	if dualWrite {
		return 2
	}
	return 1
}

// Resource model. Component formulas calibrated to the 8×10 anchors of
// Tables 1–2 and the scaling slopes of Tables 3–4 (EXPERIMENTS.md records
// paper-vs-model for every cell):
//
//	FF  (pipelined) = 32·N + 1669 (4-way) | 48·N + 3201 (8-way)
//	LUT (pipelined) = 5.845·N + 254.6·√N + 1351 | 11.716·N + 399.6·√N + 2072
//
// Non-pipelined stages are dominated by merge-table storage and control:
//
//	FF  = 16·MT + 756|876 (baseline); control-only after binding
//	LUT = 60·MT + const(stage, conn)
const (
	ffCtl4, ffCtl8            = 756, 876
	ffBindCtl4, ffBindCtl8    = 258, 324
	ffUnrollDelta             = 54
	ffPipeSlope4, ffPipeBase4 = 32, 1669
	ffPipeSlope8, ffPipeBase8 = 48, 3201

	lutBase4, lutBase8           = 1057, 1546
	lutBindDelta4, lutBindDelta8 = 46, 117
	lutUnrollDelta               = 326
	lutMTSlope                   = 60
)

var (
	lutPipe4 = [3]float64{5.845, 254.6, 1351}
	lutPipe8 = [3]float64{11.716, 399.6, 2072}
)

// Resources estimates the BRAM/FF/LUT usage of a configuration.
func Resources(stage Stage, conn grid.Connectivity, rows, cols int) resource.Usage {
	n := rows * cols
	mt := ccl.SizeForPaper(rows, cols)
	return resource.Usage{
		BRAM18K: bramBlocks(stage, n, mt),
		FF:      ffEstimate(stage, conn, n, mt),
		LUT:     lutEstimate(stage, conn, n, mt),
	}
}

// bramBlocks sums the design's block-RAM consumers:
//
//   - the input stream buffers from the Merge module (2 blocks);
//   - the output label FIFO (16-bit × N, ≥1 block);
//   - the data array: one monolithic memory before partitioning, 16 cyclic
//     banks afterwards (banks below the LUTRAM threshold cost nothing —
//     this is the 5→21 step between 16×16 and 24×24 in Table 3);
//   - the merge table: registers at baseline (0 blocks); RAM_2P binding
//     costs 1+2·pack blocks at §5.2 (the +75% jump of Table 1), pruned to
//     2·pack once partitioning reorganizes the layout (§5.3).
func bramBlocks(stage Stage, n, mt int) int {
	const inputBlocks = 2
	out := resource.BRAM18KFor(n, LabelBits)
	if out < 1 {
		out = 1
	}
	var data, mtB int
	switch stage {
	case StageBaseline:
		data = resource.BRAM18KFor(n, PixelBits)
		mtB = 0
	case StageBindStorage:
		data = resource.BRAM18KFor(n, PixelBits)
		mtB = 1 + 2*resource.BRAM18KFor(mt, LabelBits)
	case StageUnrolled, StagePipelined:
		bankDepth := (n + Channels - 1) / Channels
		if bankDepth*PixelBits > resource.LUTRAMThresholdBits {
			data = Channels * resource.BRAM18KFor(bankDepth, PixelBits)
		}
		mtB = 2 * resource.BRAM18KFor(mt, LabelBits)
	}
	return inputBlocks + out + data + mtB
}

func ffEstimate(stage Stage, conn grid.Connectivity, n, mt int) int {
	eight := conn == grid.EightWay
	switch stage {
	case StageBaseline:
		if eight {
			return LabelBits*mt + ffCtl8
		}
		return LabelBits*mt + ffCtl4
	case StageBindStorage:
		if eight {
			return ffCtl8 + ffBindCtl8
		}
		return ffCtl4 + ffBindCtl4
	case StageUnrolled:
		if eight {
			return ffCtl8 + ffBindCtl8 + ffUnrollDelta
		}
		return ffCtl4 + ffBindCtl4 + ffUnrollDelta
	case StagePipelined:
		if eight {
			return ffPipeSlope8*n + ffPipeBase8
		}
		return ffPipeSlope4*n + ffPipeBase4
	}
	return 0
}

func lutEstimate(stage Stage, conn grid.Connectivity, n, mt int) int {
	eight := conn == grid.EightWay
	base, bind := lutBase4, lutBindDelta4
	if eight {
		base, bind = lutBase8, lutBindDelta8
	}
	switch stage {
	case StageBaseline:
		return lutMTSlope*mt + base
	case StageBindStorage:
		return lutMTSlope*mt + base + bind
	case StageUnrolled:
		return lutMTSlope*mt + base + bind + lutUnrollDelta
	case StagePipelined:
		c := lutPipe4
		if eight {
			c = lutPipe8
		}
		v := c[0]*float64(n) + c[1]*math.Sqrt(float64(n)) + c[2]
		return int(v + 0.5)
	}
	return 0
}
