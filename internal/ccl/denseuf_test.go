package ccl

import (
	"math/rand"
	"testing"
)

func TestDenseUFBasics(t *testing.T) {
	var u DenseUF
	u.Reset(4)
	if u.Len() != 4 {
		t.Fatalf("Len = %d, want 4", u.Len())
	}
	for i := int32(0); i < 4; i++ {
		if r := u.Find(i); r != i {
			t.Fatalf("fresh Find(%d) = %d", i, r)
		}
	}
	if r := u.Union(3, 1); r != 1 {
		t.Fatalf("Union(3,1) root = %d, want 1", r)
	}
	if r := u.Union(1, 3); r != 1 {
		t.Fatalf("re-Union root = %d, want 1", r)
	}
	if l := u.Add(); l != 4 {
		t.Fatalf("Add = %d, want 4", l)
	}
	u.Union(4, 3)
	u.Flatten()
	for _, x := range []int32{1, 3, 4} {
		if u.Root(x) != 1 {
			t.Fatalf("Root(%d) = %d after Flatten, want 1", x, u.Root(x))
		}
	}
	if u.Root(0) != 0 || u.Root(2) != 2 {
		t.Fatal("untouched singletons must keep their own roots")
	}
}

// TestDenseUFResetReuses checks that Reset with a smaller or equal size never
// reallocates (the zero-steady-state-allocation contract of the serving path).
func TestDenseUFResetReuses(t *testing.T) {
	var u DenseUF
	u.Reset(128)
	base := &u.parent[0]
	u.Union(100, 7)
	u.Reset(64)
	if &u.parent[0] != base {
		t.Fatal("Reset to a smaller size must reuse storage")
	}
	if r := u.Find(7); r != 7 {
		t.Fatalf("Reset must clear prior unions: Find(7) = %d", r)
	}
}

// TestDenseUFAgainstForest cross-checks random union sequences against the
// package unionfind-style reference semantics: same partition, and Flatten's
// single sweep fully resolves every element.
func TestDenseUFAgainstForest(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		var u DenseUF
		u.Reset(n)
		// Reference: naive label array where merging rewrites all members.
		ref := make([]int32, n)
		for i := range ref {
			ref[i] = int32(i)
		}
		for m := rng.Intn(3 * n); m > 0; m-- {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			u.Union(a, b)
			ra, rb := ref[a], ref[b]
			if ra != rb {
				lo := min(ra, rb)
				for i := range ref {
					if ref[i] == ra || ref[i] == rb {
						ref[i] = lo
					}
				}
			}
		}
		u.Flatten()
		for i := 0; i < n; i++ {
			if u.Root(int32(i)) != ref[i] {
				t.Fatalf("trial %d: Root(%d) = %d, want %d", trial, i, u.Root(int32(i)), ref[i])
			}
		}
	}
}
