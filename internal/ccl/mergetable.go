package ccl

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// MergeTable tracks provisional-label equivalences during the raster scan and
// is resolved afterwards to map provisional labels to final island IDs.
//
// It mirrors the hardware structure of §4.2: a 1-indexed array whose entry at
// index g names the group that group g resolves to. A value of 0 means group
// g does not exist yet (no pixels carry that label). A root group points to
// itself. Non-root entries always point to a strictly smaller group number,
// because labels propagate as minima during the scan.
type MergeTable struct {
	// entries[0] is unused so that group numbers index directly (1-indexed,
	// like the hardware array in Fig 5).
	entries []grid.Label
	// parity holds one even-parity bit per entry, refreshed on every write
	// through setEntry and deliberately left stale by InjectSEU; Scrub
	// compares it against the data to detect upsets (see scrub.go).
	parity []uint8
	next   grid.Label
}

// ErrMergeTableFull is returned by Alloc when every slot is in use. The
// hardware cannot grow its BRAM at runtime; neither does this model.
var ErrMergeTableFull = fmt.Errorf("ccl: merge table full")

// SizeForPaper returns the merge-table capacity used by the paper (§5.5):
//
//	MERGETABLE_SIZE = (ROW+1)/2 × (COL+1)/2   (integer division)
//
// i.e. ⌈R/2⌉·⌈C/2⌉. This is the exact worst case for 8-way connectivity
// (new provisional groups form an 8-way independent set, densest on a
// 2×2-spaced lattice). For 4-way connectivity it is NOT sufficient in the
// worst case — see SizeFor — a reproduction finding recorded in
// EXPERIMENTS.md.
func SizeForPaper(rows, cols int) int {
	return ((rows + 1) / 2) * ((cols + 1) / 2)
}

// SizeFor returns a capacity sufficient for any input of the given shape and
// connectivity. New provisional groups are allocated only at lit pixels whose
// scanned neighbors are all dark, so allocation sites form an independent set
// under the connectivity relation restricted to {top, left} / {top-left, top,
// top-right, left}:
//
//   - 4-way: no two allocation sites are edge-adjacent; the checkerboard
//     achieves ⌈R·C/2⌉ groups, and that is the maximum.
//   - 8-way: no two allocation sites are 8-adjacent; a 2×2-spaced lattice
//     achieves ⌈R/2⌉·⌈C/2⌉ groups, the paper's formula.
func SizeFor(rows, cols int, conn grid.Connectivity) int {
	if conn == grid.EightWay {
		return SizeForPaper(rows, cols)
	}
	return (rows*cols + 1) / 2
}

// NewMergeTable returns an empty merge table with room for capacity groups.
func NewMergeTable(capacity int) *MergeTable {
	if capacity < 1 {
		capacity = 1
	}
	return &MergeTable{
		entries: make([]grid.Label, capacity+1),
		parity:  make([]uint8, capacity+1),
		next:    1,
	}
}

// setEntry is the single write port of the table: every legitimate write goes
// through it so the stored parity bit always matches the data.
func (mt *MergeTable) setEntry(g, v grid.Label) {
	mt.entries[g] = v
	mt.parity[g] = parityOf(v)
}

// Cap returns the capacity (maximum number of groups).
func (mt *MergeTable) Cap() int { return len(mt.entries) - 1 }

// Len returns the number of groups allocated so far.
func (mt *MergeTable) Len() int { return int(mt.next) - 1 }

// Alloc creates a new group pointing to itself and returns its label.
func (mt *MergeTable) Alloc() (grid.Label, error) {
	if int(mt.next) >= len(mt.entries) {
		return 0, ErrMergeTableFull
	}
	l := mt.next
	mt.setEntry(l, l)
	mt.next++
	return l, nil
}

// Entry returns the raw table value for group g (0 if g does not exist or is
// out of range).
func (mt *MergeTable) Entry(g grid.Label) grid.Label {
	if g < 1 || int(g) >= len(mt.entries) {
		return 0
	}
	return mt.entries[g]
}

// Entries returns a copy of the live 1-indexed entries (index 0 excluded),
// one per allocated group — the "bottom row" of the tables drawn in Fig 5.
func (mt *MergeTable) Entries() []grid.Label {
	out := make([]grid.Label, mt.Len())
	copy(out, mt.entries[1:mt.next])
	return out
}

// Record notes that group g is equivalent to group target using the paper's
// update rule (§4.2, Example 4.4): the entry takes the minimum of its current
// value and target, "avoid[ing] overwriting earlier merge table entries
// pointing to smaller labels". The rule can still lose an equivalence when
// the overwritten value differs from target — the §6 corner case; use Union
// for the corrected behaviour.
func (mt *MergeTable) Record(g, target grid.Label) {
	if g < 1 || int(g) >= len(mt.entries) || mt.entries[g] == 0 {
		return
	}
	if target < mt.entries[g] {
		mt.setEntry(g, target)
	}
}

// root chases parent pointers to the representative of g's group.
// Entries always point downward (parent ≤ child), so this terminates.
func (mt *MergeTable) root(g grid.Label) grid.Label {
	for mt.entries[g] != g {
		g = mt.entries[g]
	}
	return g
}

// Union merges the groups of a and b, pointing the larger root at the
// smaller. This is the corrected update (ModeFixed): by operating on roots it
// never discards an equivalence the way a raw minimum-overwrite can.
// Both labels must have been allocated.
func (mt *MergeTable) Union(a, b grid.Label) {
	ra, rb := mt.root(a), mt.root(b)
	switch {
	case ra == rb:
	case ra < rb:
		mt.setEntry(rb, ra)
	default:
		mt.setEntry(ra, rb)
	}
}

// Resolve collapses transitive chains using the paper's ascending-order
// double-dereference (§4.3): for each existing group i in increasing order,
// mt[i] = mt[mt[i]]. Because entries point to smaller indices, each target is
// already resolved when visited, so chains of any length collapse — provided
// the scan recorded every equivalence (true for Union; true for Record except
// in the §6 corner case).
func (mt *MergeTable) Resolve() {
	for i := grid.Label(1); int(i) < len(mt.entries); i++ {
		if mt.entries[i] == 0 {
			// First zero entry: no more groups (§4.3).
			break
		}
		mt.setEntry(i, mt.entries[mt.entries[i]])
	}
}

// Lookup returns the final label for provisional label g — the direct
// merge-table indexing of §4.4. Background (0) maps to 0.
func (mt *MergeTable) Lookup(g grid.Label) grid.Label {
	if g == 0 {
		return 0
	}
	return mt.entries[g]
}

// Roots returns the sorted list of root groups (entries pointing to
// themselves) — the final island IDs after Resolve.
func (mt *MergeTable) Roots() []grid.Label {
	var roots []grid.Label
	for i := grid.Label(1); i < mt.next; i++ {
		if mt.entries[i] == i {
			roots = append(roots, i)
		}
	}
	return roots
}

// String renders the table like the two-row figures under each image in
// Fig 5: group numbers on top, resolution targets underneath.
func (mt *MergeTable) String() string {
	top, bot := "", ""
	for i := grid.Label(1); int(i) < len(mt.entries); i++ {
		top += fmt.Sprintf("%3d", i)
		bot += fmt.Sprintf("%3d", mt.entries[i])
	}
	return top + "\n" + bot
}
