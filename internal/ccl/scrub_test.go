package ccl

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func TestScrubCleanTableIsClean(t *testing.T) {
	for _, mode := range []Mode{ModeFixed, ModePaper} {
		res, err := Label(grid.MustParse(workedExample), Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if bad := res.MergeTable.Scrub(); bad != nil {
			t.Fatalf("mode %v: clean table reported corrupt groups %v", mode, bad)
		}
		bad, err := res.Repair(Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if bad != nil {
			t.Fatalf("mode %v: Repair on a clean result touched groups %v", mode, bad)
		}
	}
}

// TestScrubDetectsEverySingleBitSEU: for every allocated group and every bit
// position, an injected flip is detected by the parity check and repaired so
// the final labeling matches the fault-free run exactly.
func TestScrubDetectsEverySingleBitSEU(t *testing.T) {
	g := grid.MustParse(workedExample)
	for _, opt := range []Options{
		{Connectivity: grid.FourWay, Mode: ModeFixed},
		{Connectivity: grid.FourWay, Mode: ModePaper},
		{Connectivity: grid.EightWay, Mode: ModeFixed},
	} {
		clean, err := Label(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		for gi := grid.Label(1); int(gi) <= clean.Groups; gi++ {
			for b := uint(0); b < 32; b++ {
				res, err := Label(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				res.MergeTable.InjectSEU(gi, b)
				bad := res.MergeTable.Scrub()
				if len(bad) != 1 || bad[0] != gi {
					t.Fatalf("opt %+v flip g=%d b=%d: Scrub = %v, want [%d]", opt, gi, b, bad, gi)
				}
				if repaired, err := res.Repair(opt); err != nil {
					t.Fatalf("opt %+v flip g=%d b=%d: %v", opt, gi, b, err)
				} else if len(repaired) != 1 {
					t.Fatalf("Repair reported %v", repaired)
				}
				if !res.Labels.Equal(clean.Labels) {
					t.Fatalf("opt %+v flip g=%d b=%d: repaired labels differ\n%s\nwant\n%s",
						opt, gi, b, res.Labels, clean.Labels)
				}
				if res.Islands != clean.Islands || res.Groups != clean.Groups {
					t.Fatalf("opt %+v flip g=%d b=%d: islands/groups %d/%d, want %d/%d",
						opt, gi, b, res.Islands, res.Groups, clean.Islands, clean.Groups)
				}
				if rest := res.MergeTable.Scrub(); rest != nil {
					t.Fatalf("table still corrupt after repair: %v", rest)
				}
			}
		}
	}
}

// TestScrubDetectsUnallocatedSlotUpset: a strike on a never-written slot
// breaks both parity and the all-zero invariant.
func TestScrubDetectsUnallocatedSlotUpset(t *testing.T) {
	res, err := Label(grid.MustParse(workedExample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.MergeTable
	if mt.Len() >= mt.Cap() {
		t.Skip("no unallocated slot to corrupt")
	}
	slot := grid.Label(mt.Len() + 1)
	mt.InjectSEU(slot, 3)
	bad := mt.Scrub()
	if len(bad) != 1 || bad[0] != slot {
		t.Fatalf("Scrub = %v, want [%d]", bad, slot)
	}
	if _, err := res.Repair(Options{}); err != nil {
		t.Fatal(err)
	}
	if mt.Entry(slot) != 0 {
		t.Fatalf("repair left unallocated slot %d at %d", slot, mt.Entry(slot))
	}
}

// TestScrubStructuralCatchesDoubleFlip: two flips in one word are invisible
// to parity, but an entry pointing above its own index violates table
// structure and is still caught.
func TestScrubStructuralCatchesDoubleFlip(t *testing.T) {
	res, err := Label(grid.MustParse(workedExample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.MergeTable
	g := grid.Label(1) // root: entry == 1
	mt.InjectSEU(g, 30)
	mt.InjectSEU(g, 0) // 1 -> huge even-popcount value, parity-consistent
	if mt.parity[g] != parityOf(mt.entries[g]) {
		t.Fatal("test premise broken: double flip should preserve parity")
	}
	bad := mt.Scrub()
	if len(bad) != 1 || bad[0] != g {
		t.Fatalf("Scrub = %v, want [%d]", bad, g)
	}
}

// TestRebuildReproducesTable: rebuilding from the provisional image without
// any fault reproduces the resolved table entry-for-entry.
func TestRebuildReproducesTable(t *testing.T) {
	for _, mode := range []Mode{ModeFixed, ModePaper} {
		opt := Options{Connectivity: grid.FourWay, Mode: mode}
		res, err := Label(grid.MustParse(workedExample), opt)
		if err != nil {
			t.Fatal(err)
		}
		want := res.MergeTable.Entries()
		if err := res.MergeTable.RebuildFrom(res.Provisional, opt); err != nil {
			t.Fatal(err)
		}
		got := res.MergeTable.Entries()
		if len(got) != len(want) {
			t.Fatalf("mode %v: rebuilt %d entries, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mode %v: entry %d rebuilt as %d, want %d", mode, i+1, got[i], want[i])
			}
		}
	}
}

// TestRepairRandomGrids: property check over random images — any single
// injected flip is repaired back to the fault-free labeling.
func TestRepairRandomGrids(t *testing.T) {
	rng := detector.NewRNG(0xD06)
	for trial := 0; trial < 60; trial++ {
		rows, cols := 2+rng.Intn(9), 2+rng.Intn(9)
		g := grid.New(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < 0.55 {
					g.Set(r, c, 1)
				}
			}
		}
		conn := grid.FourWay
		if trial%2 == 1 {
			conn = grid.EightWay
		}
		opt := Options{Connectivity: conn, Mode: ModeFixed, CompactLabels: true}
		clean, err := Label(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if clean.Groups == 0 {
			continue
		}
		res, err := Label(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		target := grid.Label(1 + rng.Intn(clean.Groups))
		res.MergeTable.InjectSEU(target, uint(rng.Intn(32)))
		bad, err := res.Repair(opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(bad) != 1 || bad[0] != target {
			t.Fatalf("trial %d: Repair found %v, want [%d]", trial, bad, target)
		}
		if !res.Labels.Equal(clean.Labels) {
			t.Fatalf("trial %d: repaired labels differ from fault-free\n%s\nwant\n%s",
				trial, res.Labels, clean.Labels)
		}
	}
}
