package ccl

// DenseUF is an allocation-free union-find over the dense index range
// 0..Len()-1, shared by the serving-path labelers (the per-pixel scan in
// internal/adapt and the run-based engine in internal/runccl). It uses
// union-by-minimum-root — the smaller root always wins, matching CCL's
// minimum-label merge semantics — and path halving, which together maintain
// the invariant parent[x] <= x, so Flatten can resolve every element with a
// single ascending sweep instead of a second find pass.
//
// Unlike MergeTable (the hardware merge-table model) and unionfind.Forest
// (the §3 baseline structure), DenseUF has no group/root bookkeeping at all:
// it is the minimal hot-path core, designed for Reset-and-reuse across
// events with zero steady-state allocations.
type DenseUF struct {
	parent []int32
}

// Reset re-initializes the structure to n singleton sets 0..n-1, reusing
// prior storage when it suffices.
//
//hepccl:hotpath
func (u *DenseUF) Reset(n int) {
	//hepccl:amortized
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
	}
	u.parent = u.parent[:n]
	// A local header: writing through the field would force a reload (the
	// store could alias u) and keep a per-element bounds check.
	p := u.parent
	for i := range p {
		p[i] = int32(i)
	}
}

// Len returns the number of elements.
func (u *DenseUF) Len() int { return len(u.parent) }

// Add appends one new singleton set and returns its index.
//
//hepccl:hotpath
func (u *DenseUF) Add() int32 {
	l := int32(len(u.parent))
	u.parent = append(u.parent, l)
	return l
}

// Find returns the root of x, halving the path as it goes.
//
//hepccl:hotpath
func (u *DenseUF) Find(x int32) int32 {
	p := u.parent
	// The chase indexes with loaded parent values: 0 ≤ p[x] ≤ x < len(p)
	// by union-by-minimum and path halving, a data invariant outside
	// compiler range proofs.
	//hepccl:checked
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// Union merges the sets of a and b and returns the surviving (smaller) root.
// The link is predicated rather than branched: min and max of the two roots
// are computed with a sign-mask blend and the parent store is unconditional
// (self-assignment when the roots already coincide), so the merge inner loops
// built on it — runccl's batched run merge, tileccl's seam sweeps — carry no
// data-dependent branch beyond the find itself.
//
//hepccl:hotpath
func (u *DenseUF) Union(a, b int32) int32 {
	ra, rb := u.Find(a), u.Find(b)
	// m = rb-ra when rb < ra, else 0; min = ra+m, max = rb-m. ra == rb writes
	// parent[root] = root, which is the identity the structure already holds.
	d := rb - ra
	m := d & (d >> 31)
	mn := ra + m
	u.parent[rb-m] = mn
	return mn
}

// Flatten points every element directly at its root. Because unions and path
// halving only ever point elements at smaller indices, one ascending
// double-dereference sweep (the same trick as the §4.3 merge-table
// resolution) is complete.
//
//hepccl:hotpath
func (u *DenseUF) Flatten() {
	p := u.parent
	// The inner index is the loaded parent value, bounded by parent[i] ≤ i
	// — see Find.
	//hepccl:checked
	for i := range p {
		p[i] = p[p[i]]
	}
}

// Root returns the representative of x without compressing. After Flatten it
// is a single table read.
//
//hepccl:hotpath
func (u *DenseUF) Root(x int32) int32 { return u.parent[x] }
