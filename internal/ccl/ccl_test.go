package ccl

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// workedExample is a small image exercising every rule of §4.2: new-group
// allocation, min-label assignment, and a merge-table update.
//
//	#.#.#        1.2.3
//	#.#.#   →    1.2.3     provisional; (2,3) allocates group 4,
//	##.##        11.43     then (2,4) merges it into 3.
//	..#..        ..5..
const workedExample = `
	#.#.#
	#.#.#
	##.##
	..#..
`

func TestWorkedExampleProvisionalLabels(t *testing.T) {
	g := grid.MustParse(workedExample)
	res, err := Label(g, Options{Connectivity: grid.FourWay, Mode: ModePaper})
	if err != nil {
		t.Fatal(err)
	}
	wantProv := grid.MustParseLabels(`
		1.2.3
		1.2.3
		11.43
		..5..
	`)
	if !res.Provisional.Equal(wantProv) {
		t.Fatalf("provisional labels:\n%s\nwant:\n%s", res.Provisional, wantProv)
	}
	if res.Groups != 5 {
		t.Fatalf("Groups = %d, want 5", res.Groups)
	}
	// Merge table after resolution: group 4 resolves to 3.
	if res.MergeTable.Lookup(4) != 3 {
		t.Fatalf("mt[4] = %d, want 3", res.MergeTable.Lookup(4))
	}
	wantFinal := grid.MustParseLabels(`
		1.2.3
		1.2.3
		11.33
		..5..
	`)
	if !res.Labels.Equal(wantFinal) {
		t.Fatalf("final labels:\n%s\nwant:\n%s", res.Labels, wantFinal)
	}
	if res.Islands != 4 {
		t.Fatalf("Islands = %d, want 4", res.Islands)
	}
}

func TestWorkedExampleCompact(t *testing.T) {
	g := grid.MustParse(workedExample)
	res, err := Label(g, Options{Connectivity: grid.FourWay, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	want := grid.MustParseLabels(`
		1.2.3
		1.2.3
		11.33
		..4..
	`)
	if !res.Labels.Equal(want) {
		t.Fatalf("compact labels:\n%s\nwant:\n%s", res.Labels, want)
	}
}

// cornerCase is the concave pattern that triggers the §6 disclosure: for
// 4-way connectivity, the published min-update loses the equivalence 3≡2
// when (2,2) re-points group 3 at group 1, so the true single component
// splits. 8-way sees (0,3) from (1,2) via the top-right neighbor and never
// allocates the intermediate group, so it is unaffected — exactly as §6
// reports.
const cornerCase = `
	#..#.
	#.##.
	###..
`

func TestCornerCasePaperModeSplits(t *testing.T) {
	g := grid.MustParse(cornerCase)
	golden, err := labeling.FloodFill{}.Label(g, grid.FourWay)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Count() != 1 {
		t.Fatalf("fixture must be one 4-way component, got %d", golden.Count())
	}
	res, err := Label(g, Options{Connectivity: grid.FourWay, Mode: ModePaper})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 2 {
		t.Fatalf("paper mode islands = %d, want the documented split into 2\n%s", res.Islands, res.Labels)
	}
	if res.Labels.Isomorphic(golden) {
		t.Fatal("paper mode should NOT match the golden model on this pattern")
	}
	// The split is a refinement: no two distinct true components merged.
	assertRefines(t, res.Labels, golden)
}

func TestCornerCaseFixedModeCorrect(t *testing.T) {
	g := grid.MustParse(cornerCase)
	golden, _ := labeling.FloodFill{}.Label(g, grid.FourWay)
	res, err := Label(g, Options{Connectivity: grid.FourWay, Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Labels.Isomorphic(golden) {
		t.Fatalf("fixed mode wrong on corner case:\n%s\nwant iso to:\n%s", res.Labels, golden)
	}
	if res.Islands != 1 {
		t.Fatalf("fixed mode islands = %d, want 1", res.Islands)
	}
}

func TestCornerCaseEightWayUnaffected(t *testing.T) {
	g := grid.MustParse(cornerCase)
	golden, _ := labeling.FloodFill{}.Label(g, grid.EightWay)
	for _, mode := range []Mode{ModePaper, ModeFixed} {
		res, err := Label(g, Options{Connectivity: grid.EightWay, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Labels.Isomorphic(golden) {
			t.Fatalf("8-way %v mode wrong:\n%s", mode, res.Labels)
		}
	}
}

// assertRefines checks every component of fine lies inside one component of
// coarse (same lit set).
func assertRefines(t *testing.T, fine, coarse *grid.Labels) {
	t.Helper()
	to := map[grid.Label]grid.Label{}
	for i := 0; i < fine.Pixels(); i++ {
		a, b := fine.AtFlat(i), coarse.AtFlat(i)
		if (a == 0) != (b == 0) {
			t.Fatal("lit sets differ")
		}
		if a == 0 {
			continue
		}
		if prev, ok := to[a]; ok && prev != b {
			t.Fatalf("component %d of fine spans coarse components %d and %d", a, prev, b)
		}
		to[a] = b
	}
}

func TestFixedModeMatchesGoldenOnFixtures(t *testing.T) {
	arts := []string{
		"...\n...", "#", "###\n###", "#.#\n.#.\n#.#",
		"#.#.#.#.#.\n#.#.#.#.#.\n##########",
		"#######\n......#\n#####.#\n#...#.#\n#.#.#.#\n#.###.#\n#.....#\n#######",
		cornerCase, workedExample,
	}
	for _, art := range arts {
		g := grid.MustParse(art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			golden, err := labeling.FloodFill{}.Label(g, conn)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Label(g, Options{Connectivity: conn, Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Labels.Isomorphic(golden) {
				t.Errorf("%v:\n%s\ngot:\n%s\nwant iso to:\n%s", conn, g, res.Labels, golden)
			}
		}
	}
}

func TestEmptyImage(t *testing.T) {
	g := grid.New(6, 6)
	for _, mode := range []Mode{ModePaper, ModeFixed} {
		res, err := Label(g, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if res.Islands != 0 || res.Groups != 0 {
			t.Fatalf("empty image: islands=%d groups=%d", res.Islands, res.Groups)
		}
	}
}

func TestInvalidConnectivity(t *testing.T) {
	g := grid.New(2, 2)
	if _, err := Label(g, Options{Connectivity: grid.Connectivity(3)}); err == nil {
		t.Fatal("invalid connectivity must error")
	}
}

func TestDefaultsAreFourWayFixed(t *testing.T) {
	g := grid.MustParse(cornerCase)
	res, err := Label(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 1 {
		t.Fatalf("defaults should be 4-way + fixed: islands = %d, want 1", res.Islands)
	}
}

func TestPaperSizingOverflowsOnCheckerboard(t *testing.T) {
	// Reproduction finding: the paper's MERGETABLE_SIZE is the 8-way worst
	// case; a 4-way checkerboard allocates ⌈R·C/2⌉ groups and overflows it.
	g := grid.New(6, 6)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			if (r+c)%2 == 0 {
				g.Set(r, c, 1)
			}
		}
	}
	_, err := Label(g, Options{
		Connectivity:  grid.FourWay,
		MergeTableCap: SizeForPaper(6, 6),
	})
	if !errors.Is(err, ErrMergeTableFull) {
		t.Fatalf("err = %v, want ErrMergeTableFull", err)
	}
	// The same image under 8-way fits the paper's sizing (one component).
	res, err := Label(g, Options{
		Connectivity:  grid.EightWay,
		MergeTableCap: SizeForPaper(6, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 1 {
		t.Fatalf("8-way checkerboard islands = %d, want 1", res.Islands)
	}
	// And with the corrected 4-way sizing it labels fine: 18 singletons.
	res, err = Label(g, Options{Connectivity: grid.FourWay})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 18 {
		t.Fatalf("4-way checkerboard islands = %d, want 18", res.Islands)
	}
}

func randomGrid(cells []byte, rows, cols, litPermille int) *grid.Grid {
	g := grid.New(rows, cols)
	for i := 0; i < rows*cols && i < len(cells); i++ {
		if int(cells[i])*1000/256 < litPermille {
			g.Flat()[i] = grid.Value(cells[i]) + 1
		}
	}
	return g
}

// Property: ModeFixed is label-isomorphic to flood fill on random grids for
// both connectivities and several densities.
func TestFixedModeGoldenProperty(t *testing.T) {
	golden := labeling.FloodFill{}
	for _, density := range []int{150, 400, 650, 900} {
		density := density
		f := func(cells [108]byte) bool {
			g := randomGrid(cells[:], 9, 12, density)
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				want, err := golden.Label(g, conn)
				if err != nil {
					return false
				}
				res, err := Label(g, Options{Connectivity: conn, Mode: ModeFixed})
				if err != nil || !res.Labels.Isomorphic(want) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("density %d: %v", density, err)
		}
	}
}

// Property: ModePaper never merges distinct true components — its output is
// always a refinement of the golden partition (the §6 bug only splits).
func TestPaperModeRefinementProperty(t *testing.T) {
	golden := labeling.FloodFill{}
	f := func(cells [108]byte) bool {
		g := randomGrid(cells[:], 9, 12, 550)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				return false
			}
			res, err := Label(g, Options{Connectivity: conn, Mode: ModePaper})
			if err != nil {
				return false
			}
			to := map[grid.Label]grid.Label{}
			for i := 0; i < g.Pixels(); i++ {
				a, b := res.Labels.AtFlat(i), want.AtFlat(i)
				if (a == 0) != (b == 0) {
					return false
				}
				if a == 0 {
					continue
				}
				if prev, ok := to[a]; ok && prev != b {
					return false
				}
				to[a] = b
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// cornerCase8 is a reproduction finding: the paper states the §6 corner case
// "does not arise in 8-way CCL", but this adversarial pattern triggers it
// under 8-way as well. (1,2) allocates group 3; (1,3) merges it into group 2
// via the top-right neighbor; then (2,1) re-points group 3 at group 1 via ITS
// top-right neighbor, losing 3≡2. The paper's claim is empirical for the
// "relatively concave island shapes" of its target instruments, not
// categorical. Recorded in EXPERIMENTS.md (E9).
const cornerCase8 = `
	#...#
	#.##.
	##...
`

func TestCornerCaseEightWayCounterexample(t *testing.T) {
	g := grid.MustParse(cornerCase8)
	golden, err := labeling.FloodFill{}.Label(g, grid.EightWay)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Count() != 1 {
		t.Fatalf("fixture must be one 8-way component, got %d", golden.Count())
	}
	res, err := Label(g, Options{Connectivity: grid.EightWay, Mode: ModePaper})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 2 {
		t.Fatalf("paper-mode 8-way islands = %d, want the documented split into 2\n%s", res.Islands, res.Labels)
	}
	assertRefines(t, res.Labels, golden)
	// The fixed mode handles it.
	fixed, err := Label(g, Options{Connectivity: grid.EightWay, Mode: ModeFixed})
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Labels.Isomorphic(golden) {
		t.Fatalf("fixed mode wrong on 8-way corner case:\n%s", fixed.Labels)
	}
}

// Property: provisional labels always resolve downward — the final label of a
// pixel never exceeds its provisional label.
func TestResolutionMonotoneProperty(t *testing.T) {
	f := func(cells [108]byte) bool {
		g := randomGrid(cells[:], 9, 12, 500)
		for _, mode := range []Mode{ModePaper, ModeFixed} {
			res, err := Label(g, Options{Mode: mode})
			if err != nil {
				return false
			}
			for i := 0; i < g.Pixels(); i++ {
				if res.Labels.AtFlat(i) > res.Provisional.AtFlat(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIslandsExtraction(t *testing.T) {
	g, err := grid.FromRows([][]grid.Value{
		{5, 0, 0, 7},
		{3, 0, 0, 0},
		{0, 0, 2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Label(g, Options{Connectivity: grid.FourWay, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	islands := Islands(g, res.Labels)
	if len(islands) != 3 {
		t.Fatalf("islands = %d, want 3", len(islands))
	}
	// Sorted by label (raster order of first appearance after Compact).
	first := islands[0] // the 5,3 column
	if first.Sum != 8 || first.Size() != 2 {
		t.Fatalf("island 1 sum=%d size=%d, want 8,2", first.Sum, first.Size())
	}
	if first.MinRow != 0 || first.MaxRow != 1 || first.MinCol != 0 || first.MaxCol != 0 {
		t.Fatalf("island 1 bbox wrong: %+v", first)
	}
	if first.Width() != 1 || first.Height() != 2 {
		t.Fatalf("island 1 dims %dx%d, want 1x2", first.Width(), first.Height())
	}
	second := islands[1] // the single 7
	if second.Sum != 7 || second.Size() != 1 {
		t.Fatalf("island 2 sum=%d size=%d, want 7,1", second.Sum, second.Size())
	}
	third := islands[2] // the 2,2 pair
	if third.Sum != 4 || third.Width() != 2 || third.Height() != 1 {
		t.Fatalf("island 3 wrong: %+v", third)
	}
	largest := LargestIsland(islands)
	if largest == nil || largest.Label != first.Label {
		t.Fatalf("LargestIsland = %+v, want label %d", largest, first.Label)
	}
}

func TestIslandsEmptyAndNil(t *testing.T) {
	g := grid.New(3, 3)
	res, _ := Label(g, Options{})
	if got := Islands(g, res.Labels); len(got) != 0 {
		t.Fatalf("empty image islands = %d, want 0", len(got))
	}
	if LargestIsland(nil) != nil {
		t.Fatal("LargestIsland(nil) must be nil")
	}
}

func TestIslandsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	Islands(grid.New(2, 2), grid.NewLabels(3, 3))
}

func TestModeString(t *testing.T) {
	if ModePaper.String() != "paper" || ModeFixed.String() != "fixed" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still print")
	}
}
