package ccl

import (
	"fmt"
	"math/bits"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// This file models single-event-upset (SEU) tolerance for the merge table.
// On the instrument the table lives in BRAM inside a radiation environment; a
// particle strike can invert one stored bit between the scan and the readout
// of the resolved labels. The defense mirrors what radiation-tolerant FPGA
// designs do: one parity bit per word to detect the flip, and a scrubbing
// pass that repairs the damaged state — here by rebuilding the equivalence
// set from the provisional label image, which the upset cannot have touched.

func parityOf(v grid.Label) uint8 { return uint8(bits.OnesCount32(uint32(v)) & 1) }

// InjectSEU flips bit b (mod 32) of group g's entry directly in storage,
// bypassing the write port so the stored parity bit goes stale — exactly the
// signature a real upset leaves. It returns the corrupted value. Out-of-range
// groups are ignored (the strike hit unused silicon) and return 0.
func (mt *MergeTable) InjectSEU(g grid.Label, b uint) grid.Label {
	if g < 1 || int(g) >= len(mt.entries) {
		return 0
	}
	mt.entries[g] ^= 1 << (b % 32)
	return mt.entries[g]
}

// Scrub sweeps the table and returns the groups whose entries are corrupted,
// in ascending order (nil when clean). Two independent detectors run per
// entry:
//
//   - parity: the stored parity bit disagrees with the data — catches any
//     odd number of flipped bits, in particular every single-bit SEU;
//   - structure: the value violates a table invariant — an allocated group
//     must hold 1..g (entries never point upward), an unallocated slot must
//     hold 0. This catches some multi-bit corruption parity misses.
func (mt *MergeTable) Scrub() []grid.Label {
	var bad []grid.Label
	for g := grid.Label(1); int(g) < len(mt.entries); g++ {
		e := mt.entries[g]
		corrupt := mt.parity[g] != parityOf(e)
		if !corrupt {
			if g < mt.next {
				corrupt = e < 1 || e > g
			} else {
				corrupt = e != 0
			}
		}
		if corrupt {
			bad = append(bad, g)
		}
	}
	return bad
}

// RebuildFrom reconstructs the table from a provisional label image and
// re-resolves it. The provisional image determines the table completely: each
// group's allocation site carries its own label, and every equivalence the
// scan recorded is visible as a pixel whose label differs from a scanned
// neighbor's. Replaying those in raster order reproduces the fault-free
// table, so a detected SEU is repaired without re-reading the pixel data.
//
// prov must be the Provisional result of a scan that used the same
// connectivity and mode as opt; the rebuilt capacity is unchanged.
func (mt *MergeTable) RebuildFrom(prov *grid.Labels, opt Options) error {
	opt = opt.withDefaults()
	groups := grid.Label(0)
	for _, l := range prov.Flat() {
		if l > groups {
			groups = l
		}
	}
	if int(groups) >= len(mt.entries) {
		return fmt.Errorf("ccl: rebuild needs %d groups, table capacity %d", groups, mt.Cap())
	}
	for g := grid.Label(1); int(g) < len(mt.entries); g++ {
		if g <= groups {
			mt.setEntry(g, g)
		} else {
			mt.setEntry(g, 0)
		}
	}
	mt.next = groups + 1

	// Replay the scan's equivalence stream. Pixel labels were assigned as
	// the minimum of the scanned neighbors, so each pixel's own label stands
	// in for the minL of the original pass and every differing neighbor
	// yields the same Record/Union call the scan made.
	offsets := opt.Connectivity.ScanNeighbors()
	rows, cols := prov.Rows(), prov.Cols()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			l := prov.At(r, c)
			if l == 0 {
				continue
			}
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				n := prov.At(nr, nc)
				if n == 0 || n == l {
					continue
				}
				if opt.Mode == ModeFixed {
					mt.Union(n, l)
				} else {
					mt.Record(n, l)
				}
			}
		}
	}
	mt.Resolve()
	return nil
}

// Repair runs the scrubbing pass over r's merge table. When corruption is
// detected the table is rebuilt from the provisional labels, the final label
// image is recomputed, and the island count refreshed. It returns the groups
// found corrupted (nil means the table was clean and nothing changed).
// opt must match the Options the result was produced with.
func (r *Result) Repair(opt Options) ([]grid.Label, error) {
	bad := r.MergeTable.Scrub()
	if bad == nil {
		return nil, nil
	}
	if err := r.MergeTable.RebuildFrom(r.Provisional, opt); err != nil {
		return bad, err
	}
	opt = opt.withDefaults()
	r.Labels, r.Islands = finalize(r.Provisional, r.MergeTable, opt)
	r.Groups = r.MergeTable.Len()
	return bad, nil
}
