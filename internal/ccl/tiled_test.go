package ccl

import (
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

func TestTiledMatchesGoldenOnFixtures(t *testing.T) {
	arts := []string{
		"#", "...\n...",
		"###\n###\n###",
		"#.#.#\n#.#.#\n##.##\n..#..",
		"#..#.\n#.##.\n###..", // corner-case pattern: tiled must still be right
		"#######\n......#\n#####.#\n#...#.#\n#.#.#.#\n#.###.#\n#.....#\n#######",
	}
	golden := labeling.FloodFill{}
	for _, art := range arts {
		g := grid.MustParse(art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			for _, tile := range [][2]int{{1, 1}, {2, 3}, {3, 2}, {4, 4}, {8, 8}, {100, 100}} {
				want, err := golden.Label(g, conn)
				if err != nil {
					t.Fatal(err)
				}
				res, err := LabelTiled(g, TiledOptions{
					Connectivity: conn, TileRows: tile[0], TileCols: tile[1],
				})
				if err != nil {
					t.Fatalf("%v tile %v: %v", conn, tile, err)
				}
				if !res.Labels.Isomorphic(want) {
					t.Errorf("%v tile %v:\n%s\ngot:\n%s\nwant iso to:\n%s",
						conn, tile, g, res.Labels, want)
				}
				if res.Islands != want.Count() {
					t.Errorf("%v tile %v: islands %d, want %d", conn, tile, res.Islands, want.Count())
				}
			}
		}
	}
}

func TestTiledDefaults(t *testing.T) {
	g := grid.MustParse("##\n##")
	res, err := LabelTiled(g, TiledOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != 1 || res.Tiles != 1 {
		t.Fatalf("defaults: %+v", res)
	}
}

func TestTiledCompact(t *testing.T) {
	g := grid.MustParse("#.#\n...\n#.#")
	res, err := LabelTiled(g, TiledOptions{TileRows: 2, TileCols: 2, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Labels.Distinct()
	if len(d) != 4 || d[0] != 1 || d[3] != 4 {
		t.Fatalf("compact labels = %v", d)
	}
}

func TestTiledValidation(t *testing.T) {
	g := grid.New(4, 4)
	if _, err := LabelTiled(g, TiledOptions{Connectivity: grid.Connectivity(3)}); err == nil {
		t.Error("bad connectivity must error")
	}
	if _, err := LabelTiled(g, TiledOptions{TileRows: -1}); err == nil {
		t.Error("bad tile size must error")
	}
}

func TestTiledMetrics(t *testing.T) {
	// 16x16 full grid with 4x4 tiles: 16 tiles, one component spanning all,
	// per-tile groups bounded by the tile's worst case.
	g := grid.New(16, 16)
	for i := range g.Flat() {
		g.Flat()[i] = 1
	}
	res, err := LabelTiled(g, TiledOptions{TileRows: 4, TileCols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 16 {
		t.Fatalf("tiles = %d, want 16", res.Tiles)
	}
	if res.Islands != 1 {
		t.Fatalf("islands = %d, want 1", res.Islands)
	}
	if res.MaxTileGroups < 1 || res.MaxTileGroups > SizeFor(4, 4, grid.FourWay) {
		t.Fatalf("MaxTileGroups = %d outside bounds", res.MaxTileGroups)
	}
	// 15 unions minimum to join 16 tiles' components.
	if res.BoundaryUnions < 15 {
		t.Fatalf("BoundaryUnions = %d, want ≥ 15", res.BoundaryUnions)
	}
}

// The headline property the tiling buys: per-tile merge-table demand is
// bounded by the TILE size regardless of image size.
func TestTiledBoundsMergeTableGrowth(t *testing.T) {
	for _, side := range []int{16, 32, 64} {
		g := grid.New(side, side)
		// Checkerboard: the 4-way worst case for provisional labels.
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				if (r+c)%2 == 0 {
					g.Set(r, c, 1)
				}
			}
		}
		res, err := LabelTiled(g, TiledOptions{TileRows: 8, TileCols: 8})
		if err != nil {
			t.Fatal(err)
		}
		bound := SizeFor(8, 8, grid.FourWay) // 32, independent of side
		if res.MaxTileGroups > bound {
			t.Fatalf("side %d: MaxTileGroups %d exceeds tile bound %d", side, res.MaxTileGroups, bound)
		}
		if res.Islands != side*side/2 {
			t.Fatalf("side %d: islands = %d, want %d", side, res.Islands, side*side/2)
		}
	}
}

// Property: tiled labeling is isomorphic to flood fill for random images,
// tile shapes, and both connectivities — including tiles that do not divide
// the image evenly.
func TestTiledGoldenProperty(t *testing.T) {
	golden := labeling.FloodFill{}
	f := func(cells [143]byte, tr, tc uint8) bool {
		g := grid.New(11, 13)
		for i, b := range cells {
			if b%2 == 0 {
				g.Flat()[i] = grid.Value(b%9) + 1
			}
		}
		tileR := int(tr)%6 + 1
		tileC := int(tc)%6 + 1
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				return false
			}
			res, err := LabelTiled(g, TiledOptions{
				Connectivity: conn, TileRows: tileR, TileCols: tileC,
			})
			if err != nil || !res.Labels.Isomorphic(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
