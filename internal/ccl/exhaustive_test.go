package ccl

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// Exhaustive verification over EVERY binary image of small shapes — not
// sampled: 2^12 images at 3×4 and 2^16 at 4×4. This is the strongest
// correctness statement short of a proof:
//
//   - ModeFixed is label-isomorphic to flood fill on all of them;
//   - ModePaper always refines the true partition (it can split, never
//     merge);
//   - the tiled labeler matches flood fill on all of them;
//   - and we count exactly how many images trigger the §6 corner case.
func enumGrids(rows, cols int, fn func(g *grid.Grid)) {
	n := rows * cols
	g := grid.New(rows, cols)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				g.Flat()[i] = 1
			} else {
				g.Flat()[i] = 0
			}
		}
		fn(g)
	}
}

func runExhaustive(t *testing.T, rows, cols int) (paperSplits4, paperSplits8 int) {
	t.Helper()
	golden := labeling.FloodFill{}
	enumGrids(rows, cols, func(g *grid.Grid) {
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := Label(g, Options{Connectivity: conn, Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			if !fixed.Labels.Isomorphic(want) {
				t.Fatalf("ModeFixed wrong (%v):\n%s", conn, g)
			}
			paper, err := Label(g, Options{Connectivity: conn, Mode: ModePaper})
			if err != nil {
				t.Fatal(err)
			}
			if !paper.Labels.Isomorphic(want) {
				// Must still be a refinement.
				to := map[grid.Label]grid.Label{}
				for i := 0; i < g.Pixels(); i++ {
					a, b := paper.Labels.AtFlat(i), want.AtFlat(i)
					if (a == 0) != (b == 0) {
						t.Fatalf("ModePaper changed lit set (%v):\n%s", conn, g)
					}
					if a == 0 {
						continue
					}
					if prev, ok := to[a]; ok && prev != b {
						t.Fatalf("ModePaper merged components (%v):\n%s", conn, g)
					}
					to[a] = b
				}
				if conn == grid.FourWay {
					paperSplits4++
				} else {
					paperSplits8++
				}
			}
		}
	})
	return paperSplits4, paperSplits8
}

// Exact trigger counts below are measured by the exhaustive sweep and pinned
// as regression anchors. Notably the minimal 4-way trigger already fits in
// 3×4 (four images), while the 8-way variant needs 5 columns — quantifying
// how much narrower the 8-way failure window is, consistent with the paper
// observing it only under 4-way.
func TestExhaustive3x4(t *testing.T) {
	s4, s8 := runExhaustive(t, 3, 4)
	if s4 != 4 || s8 != 0 {
		t.Fatalf("corner-case triggers at 3x4 = %d/%d, want 4/0", s4, s8)
	}
}

func TestExhaustive3x5(t *testing.T) {
	s4, s8 := runExhaustive(t, 3, 5)
	// 3×5 is the smallest shape with 8-way triggers (E9's fixture lives
	// here — the reproduction finding that 8-way is not immune).
	if s4 != 84 || s8 != 40 {
		t.Fatalf("corner-case triggers at 3x5 = %d/%d, want 84/40", s4, s8)
	}
}

func TestExhaustive4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 4x4 in -short mode")
	}
	s4, s8 := runExhaustive(t, 4, 4)
	if s4 != 139 || s8 != 0 {
		t.Fatalf("corner-case triggers at 4x4 = %d/%d, want 139/0", s4, s8)
	}
}

// Exhaustive tiled check at 3×4 with awkward tile shapes.
func TestExhaustiveTiled3x4(t *testing.T) {
	golden := labeling.FloodFill{}
	enumGrids(3, 4, func(g *grid.Grid) {
		want, err := golden.Label(g, grid.FourWay)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LabelTiled(g, TiledOptions{TileRows: 2, TileCols: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Labels.Isomorphic(want) {
			t.Fatalf("tiled wrong:\n%s", g)
		}
	})
}
