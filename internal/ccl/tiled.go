package ccl

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/unionfind"
)

// Tiled (hierarchical) CCL — the §6 future-work direction "exploring
// hierarchical or tiled processing to limit merge table and FIFO growth".
//
// The image is split into fixed-size tiles; each tile is labeled
// independently with the 1.5-pass algorithm and a tile-local merge table
// (whose capacity depends only on the tile size, not the image size —
// bounding the BRAM the §5.5 scaling study shows growing with the array).
// Tile components then receive globally unique ids, and a boundary pass
// unions components that touch across tile edges (including corners for
// 8-way). In hardware the tiles would be processed by replicated small
// engines; here the tile loop is sequential but the data structures and
// the work partition match.

// TiledOptions configures hierarchical labeling.
type TiledOptions struct {
	// Connectivity is 4-way or 8-way (default FourWay).
	Connectivity grid.Connectivity
	// TileRows, TileCols set the tile shape (defaults 8×8). Edge tiles may
	// be smaller when the image is not an exact multiple.
	TileRows, TileCols int
	// CompactLabels renumbers final labels to 1..K in raster order.
	CompactLabels bool
}

func (o TiledOptions) withDefaults() TiledOptions {
	if o.Connectivity == 0 {
		o.Connectivity = grid.FourWay
	}
	if o.TileRows == 0 {
		o.TileRows = 8
	}
	if o.TileCols == 0 {
		o.TileCols = 8
	}
	return o
}

// TiledResult is the output of hierarchical labeling.
type TiledResult struct {
	// Labels is the final global label assignment.
	Labels *grid.Labels
	// Islands is the number of distinct components.
	Islands int
	// Tiles is the number of tiles processed.
	Tiles int
	// MaxTileGroups is the largest per-tile merge table actually needed —
	// the resource bound the tiling buys.
	MaxTileGroups int
	// BoundaryUnions counts cross-tile merges performed.
	BoundaryUnions int
}

// LabelTiled runs hierarchical CCL over g.
func LabelTiled(g *grid.Grid, opt TiledOptions) (*TiledResult, error) {
	opt = opt.withDefaults()
	if !opt.Connectivity.Valid() {
		return nil, fmt.Errorf("ccl: invalid connectivity %d", int(opt.Connectivity))
	}
	if opt.TileRows < 1 || opt.TileCols < 1 {
		return nil, fmt.Errorf("ccl: invalid tile size %dx%d", opt.TileRows, opt.TileCols)
	}
	rows, cols := g.Rows(), g.Cols()
	out := grid.NewLabels(rows, cols)

	// Phase 1: label each tile independently with globally offset ids.
	// The per-tile component count is bounded by the 4-way worst case of
	// the tile shape, so the forest capacity is exact.
	tilesR := (rows + opt.TileRows - 1) / opt.TileRows
	tilesC := (cols + opt.TileCols - 1) / opt.TileCols
	perTileCap := SizeFor(opt.TileRows, opt.TileCols, grid.FourWay)
	uf := unionfind.NewForest(perTileCap * tilesR * tilesC)

	maxGroups := 0
	for tr := 0; tr < tilesR; tr++ {
		for tc := 0; tc < tilesC; tc++ {
			r0 := tr * opt.TileRows
			c0 := tc * opt.TileCols
			r1 := min(r0+opt.TileRows, rows)
			c1 := min(c0+opt.TileCols, cols)
			tile := extractTile(g, r0, c0, r1, c1)
			res, err := Label(tile, Options{
				Connectivity: opt.Connectivity,
				Mode:         ModeFixed,
			})
			if err != nil {
				return nil, fmt.Errorf("ccl: tile (%d,%d): %w", tr, tc, err)
			}
			if res.Groups > maxGroups {
				maxGroups = res.Groups
			}
			// Map tile-local roots to fresh global labels.
			local := make(map[grid.Label]grid.Label)
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					l := res.Labels.At(r-r0, c-c0)
					if l == 0 {
						continue
					}
					gl, ok := local[l]
					if !ok {
						var err error
						gl, err = uf.MakeSet()
						if err != nil {
							return nil, fmt.Errorf("ccl: tile label pool: %w", err)
						}
						local[l] = gl
					}
					out.Set(r, c, gl)
				}
			}
		}
	}

	// Phase 2: boundary pass. For every lit pixel, union with lit forward
	// neighbors that live in a different tile. Forward offsets cover each
	// adjacent pair exactly once.
	forward := []grid.Offset{{DR: 0, DC: 1}, {DR: 1, DC: 0}}
	if opt.Connectivity == grid.EightWay {
		forward = []grid.Offset{{DR: 0, DC: 1}, {DR: 1, DC: -1}, {DR: 1, DC: 0}, {DR: 1, DC: 1}}
	}
	unions := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			a := out.At(r, c)
			if a == 0 {
				continue
			}
			for _, o := range forward {
				nr, nc := r+o.DR, c+o.DC
				if nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				if sameTile(r, c, nr, nc, opt.TileRows, opt.TileCols) {
					continue
				}
				b := out.At(nr, nc)
				if b == 0 {
					continue
				}
				if uf.Union(a, b) {
					unions++
				}
			}
		}
	}

	// Phase 3: output through the forest.
	seen := make(map[grid.Label]struct{})
	for i, n := 0, rows*cols; i < n; i++ {
		if l := out.AtFlat(i); l != 0 {
			root := uf.Find(l)
			out.SetFlat(i, root)
			seen[root] = struct{}{}
		}
	}
	islands := len(seen)
	if opt.CompactLabels {
		islands = out.Compact()
	}
	return &TiledResult{
		Labels:         out,
		Islands:        islands,
		Tiles:          tilesR * tilesC,
		MaxTileGroups:  maxGroups,
		BoundaryUnions: unions,
	}, nil
}

// extractTile copies a sub-rectangle into its own grid.
func extractTile(g *grid.Grid, r0, c0, r1, c1 int) *grid.Grid {
	t := grid.New(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			t.Set(r-r0, c-c0, g.At(r, c))
		}
	}
	return t
}

func sameTile(r, c, nr, nc, th, tw int) bool {
	return r/th == nr/th && c/tw == nc/tw
}
