package ccl

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Mode selects how label equivalences are recorded and resolved.
type Mode int

const (
	// ModeFixed (the default) records equivalences as root-chasing unions,
	// preserving the 1.5-pass structure while handling every transitive
	// chain correctly.
	ModeFixed Mode = iota
	// ModePaper is the published algorithm: raw minimum-update of merge-table
	// entries during the scan (Fig 6) and ascending double-dereference
	// resolution (§4.3). It exhibits the corner case disclosed in §6 on
	// certain concave patterns — primarily under 4-way connectivity, but
	// (a reproduction finding, see EXPERIMENTS.md) adversarial patterns
	// trigger it under 8-way as well; the paper's "does not arise in 8-way"
	// holds only for the instrument's representative island shapes.
	ModePaper
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePaper:
		return "paper"
	case ModeFixed:
		return "fixed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a labeling run. These correspond to the design's
// compile-time switches: EIGHTWAY_NEIGHBORS selects connectivity and the
// merge-table sizing macro sets capacity.
type Options struct {
	// Connectivity is 4-way or 8-way (default FourWay, like the paper's
	// primary CTA use case).
	Connectivity grid.Connectivity
	// Mode selects the published or the corrected equivalence handling
	// (default ModeFixed; use ModePaper to reproduce the paper bit-for-bit).
	Mode Mode
	// MergeTableCap overrides the merge-table capacity. Zero means
	// "sufficient for the input" (SizeFor). Set to SizeForPaper(r, c) to
	// reproduce the paper's sizing.
	MergeTableCap int
	// CompactLabels renumbers final labels to 1..K in raster order.
	// When false, final labels are the merge-table root group numbers.
	CompactLabels bool
}

func (o Options) withDefaults() Options {
	if o.Connectivity == 0 {
		o.Connectivity = grid.FourWay
	}
	return o
}

// Result carries everything the 1.5-pass run produced: the final labels, the
// provisional labels from the first pass, and the resolved merge table. The
// extra detail exists because the optimization study (internal/design) and
// the worked examples need to show intermediate state, exactly as Fig 5 does.
type Result struct {
	// Labels is the final per-pixel label assignment.
	Labels *grid.Labels
	// Provisional is the label assignment after the raster scan, before
	// merge-table resolution (the state shown in Fig 5f).
	Provisional *grid.Labels
	// MergeTable is the resolved merge table.
	MergeTable *MergeTable
	// Groups is the number of provisional groups allocated.
	Groups int
	// Islands is the number of distinct final components.
	Islands int
}

// Label runs 1.5-pass CCL over g and returns the labeling result.
//
// It returns an error only if the merge table overflows, which cannot happen
// unless Options.MergeTableCap is set below SizeFor(rows, cols, conn).
func Label(g *grid.Grid, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if !opt.Connectivity.Valid() {
		return nil, fmt.Errorf("ccl: invalid connectivity %d", int(opt.Connectivity))
	}
	capacity := opt.MergeTableCap
	if capacity == 0 {
		capacity = SizeFor(g.Rows(), g.Cols(), opt.Connectivity)
	}
	mt := NewMergeTable(capacity)
	prov := grid.NewLabels(g.Rows(), g.Cols())

	if err := scan(g, prov, mt, opt); err != nil {
		return nil, err
	}
	mt.Resolve()

	final, islands := finalize(prov, mt, opt)
	return &Result{
		Labels:      final,
		Provisional: prov,
		MergeTable:  mt,
		Groups:      mt.Len(),
		Islands:     islands,
	}, nil
}

// finalize produces the final label output (§4.4) from a resolved merge
// table: index the table directly with each provisional label; no second scan
// of the pixel data. Shared by Label and Result.Repair.
func finalize(prov *grid.Labels, mt *MergeTable, opt Options) (*grid.Labels, int) {
	final := grid.NewLabels(prov.Rows(), prov.Cols())
	for i, n := 0, prov.Pixels(); i < n; i++ {
		final.SetFlat(i, mt.Lookup(prov.AtFlat(i)))
	}
	islands := len(mt.Roots())
	if opt.Mode == ModePaper {
		// In the corner case some roots become unreachable through Lookup
		// only in the other direction (extra roots survive); count what the
		// output actually contains.
		islands = final.Count()
	}
	if opt.CompactLabels {
		islands = final.Compact()
	}
	return final, islands
}

// scan performs the first pass: raster order, provisional labels, merge-table
// updates. It is shared by both modes; only the equivalence-recording rule
// differs.
func scan(g *grid.Grid, prov *grid.Labels, mt *MergeTable, opt Options) error {
	offsets := opt.Connectivity.ScanNeighbors()
	rows, cols := g.Rows(), g.Cols()
	// Scratch for the (at most 4) scanned-neighbor labels of one pixel.
	var neigh [4]grid.Label
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !g.Lit(r, c) {
				continue
			}
			nn := 0
			minL := grid.Label(0)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				l := prov.At(nr, nc)
				if l == 0 {
					continue
				}
				neigh[nn] = l
				nn++
				if minL == 0 || l < minL {
					minL = l
				}
			}
			if nn == 0 {
				// No lit scanned neighbors: open a new group (Example 4.1).
				l, err := mt.Alloc()
				if err != nil {
					return fmt.Errorf("ccl: %w at pixel (%d,%d): capacity %d insufficient (4-way worst case needs SizeFor)", err, r, c, mt.Cap())
				}
				prov.Set(r, c, l)
				continue
			}
			// Assign the minimum neighbor label (Example 4.2) and record
			// equivalences for every differing neighbor.
			prov.Set(r, c, minL)
			for i := 0; i < nn; i++ {
				if neigh[i] == minL {
					continue
				}
				if opt.Mode == ModeFixed {
					mt.Union(neigh[i], minL)
				} else {
					mt.Record(neigh[i], minL)
				}
			}
		}
	}
	return nil
}
