package ccl

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// gridFromBytes decodes fuzz input into a bounded grid: the first two bytes
// pick dimensions in [1,16], the rest fill pixels (bit 0 decides litness).
func gridFromBytes(data []byte) *grid.Grid {
	if len(data) < 3 {
		return nil
	}
	rows := int(data[0])%16 + 1
	cols := int(data[1])%16 + 1
	g := grid.New(rows, cols)
	for i := 0; i < rows*cols; i++ {
		b := data[2+i%(len(data)-2)]
		if (b>>(uint(i)%8))&1 == 1 {
			g.Flat()[i] = grid.Value(b%9) + 1
		}
	}
	return g
}

// FuzzLabelAgainstGolden checks, for arbitrary images: ModeFixed is
// label-isomorphic to flood fill; ModePaper refines the true partition; the
// tiled labeler matches flood fill; and nothing panics.
func FuzzLabelAgainstGolden(f *testing.F) {
	f.Add([]byte{3, 5, 0xFF, 0x0F, 0xAA})
	f.Add([]byte{16, 16, 0x55, 0x33, 0x0F, 0xF0})
	f.Add([]byte("#..#.#.##.###..corner"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := gridFromBytes(data)
		if g == nil {
			return
		}
		golden := labeling.FloodFill{}
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := Label(g, Options{Connectivity: conn, Mode: ModeFixed})
			if err != nil {
				t.Fatal(err)
			}
			if !fixed.Labels.Isomorphic(want) {
				t.Fatalf("ModeFixed diverged from golden on %v:\n%s", conn, g)
			}
			paper, err := Label(g, Options{Connectivity: conn, Mode: ModePaper})
			if err != nil {
				t.Fatal(err)
			}
			// Refinement: paper-mode components never span two true ones.
			to := map[grid.Label]grid.Label{}
			for i := 0; i < g.Pixels(); i++ {
				a, b := paper.Labels.AtFlat(i), want.AtFlat(i)
				if (a == 0) != (b == 0) {
					t.Fatalf("ModePaper changed the lit set on %v", conn)
				}
				if a == 0 {
					continue
				}
				if prev, ok := to[a]; ok && prev != b {
					t.Fatalf("ModePaper merged distinct components on %v:\n%s", conn, g)
				}
				to[a] = b
			}
			tiled, err := LabelTiled(g, TiledOptions{Connectivity: conn, TileRows: 3, TileCols: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !tiled.Labels.Isomorphic(want) {
				t.Fatalf("tiled diverged from golden on %v:\n%s", conn, g)
			}
		}
	})
}

// FuzzMergeTableOps checks the merge table never breaks its downward-pointer
// invariant and Resolve stays idempotent under arbitrary operation tapes.
func FuzzMergeTableOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, tape []byte) {
		mt := NewMergeTable(32)
		for _, op := range tape {
			switch op % 3 {
			case 0:
				mt.Alloc() // may fail at capacity; fine
			case 1:
				if mt.Len() >= 2 {
					a := grid.Label(op/3)%grid.Label(mt.Len()) + 1
					b := grid.Label(op/7)%grid.Label(mt.Len()) + 1
					if a < b {
						a, b = b, a
					}
					mt.Record(a, b)
				}
			case 2:
				if mt.Len() >= 2 {
					a := grid.Label(op/3)%grid.Label(mt.Len()) + 1
					b := grid.Label(op/5)%grid.Label(mt.Len()) + 1
					mt.Union(a, b)
				}
			}
		}
		for i := grid.Label(1); int(i) <= mt.Len(); i++ {
			if e := mt.Entry(i); e < 1 || e > i {
				t.Fatalf("entry %d = %d violates downward invariant", i, e)
			}
		}
		mt.Resolve()
		snap := mt.Entries()
		mt.Resolve()
		for i, v := range mt.Entries() {
			if snap[i] != v {
				t.Fatal("Resolve not idempotent")
			}
		}
	})
}
