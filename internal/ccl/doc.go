// Package ccl implements the paper's primary contribution: 1.5-pass
// connected-component labeling (CCL) for 2D island detection in high-energy
// particle physics instruments (Song, Sudvarg, Chamberlain, SC Workshops '25,
// §4).
//
// The algorithm has three stages:
//
//  1. A row-major raster scan assigns provisional group labels to lit pixels
//     from the minimum label among already-scanned lit neighbors (top/left
//     for 4-way connectivity; also top-left and top-right for 8-way),
//     recording label equivalences in a merge table (§4.2).
//  2. The merge table is resolved in ascending label order by
//     double-dereference, mt[i] = mt[mt[i]], collapsing transitive chains
//     (§4.3).
//  3. Final labels are produced by indexing the resolved merge table with
//     each pixel's provisional label — no second raster pass over pixel data,
//     hence "1.5-pass" (§4.4).
//
// Two resolution modes are provided. ModePaper reproduces the published
// algorithm exactly, including the corner case disclosed in §6: for 4-way
// connectivity, certain concave patterns overwrite a merge-table entry that
// already carries an equivalence, splitting one component into two. ModeFixed
// replaces the raw minimum-update with a root-chasing union (the "logical
// fix" the paper alludes to) and is correct on all inputs. Both modes retain
// the merge table, ascending resolution, and direct-lookup output of the
// published design.
package ccl
