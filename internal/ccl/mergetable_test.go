package ccl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

func allocN(t *testing.T, mt *MergeTable, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		l, err := mt.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if int(l) != i {
			t.Fatalf("Alloc #%d = %d", i, l)
		}
	}
}

func TestSizeForPaper(t *testing.T) {
	// §5.5: MERGETABLE_SIZE = (ROW+1)/2 × (COL+1)/2.
	cases := []struct{ r, c, want int }{
		{8, 10, 20}, {16, 16, 64}, {24, 24, 144},
		{32, 32, 256}, {43, 43, 484}, {64, 64, 1024},
	}
	for _, tc := range cases {
		if got := SizeForPaper(tc.r, tc.c); got != tc.want {
			t.Errorf("SizeForPaper(%d,%d) = %d, want %d", tc.r, tc.c, got, tc.want)
		}
	}
}

func TestSizeFor(t *testing.T) {
	// 8-way matches the paper; 4-way needs the checkerboard worst case.
	if got := SizeFor(8, 10, grid.EightWay); got != 20 {
		t.Errorf("SizeFor 8-way = %d, want 20", got)
	}
	if got := SizeFor(8, 10, grid.FourWay); got != 40 {
		t.Errorf("SizeFor 4-way = %d, want 40 (checkerboard)", got)
	}
	if got := SizeFor(3, 3, grid.FourWay); got != 5 {
		t.Errorf("SizeFor(3,3) 4-way = %d, want 5", got)
	}
}

func TestAllocSelfPointing(t *testing.T) {
	mt := NewMergeTable(4)
	allocN(t, mt, 3)
	for i := grid.Label(1); i <= 3; i++ {
		if mt.Entry(i) != i {
			t.Errorf("fresh group %d entry = %d, want self", i, mt.Entry(i))
		}
	}
	if mt.Entry(4) != 0 {
		t.Error("unallocated group must read 0 (does not exist)")
	}
	if mt.Len() != 3 || mt.Cap() != 4 {
		t.Errorf("Len/Cap = %d/%d, want 3/4", mt.Len(), mt.Cap())
	}
}

func TestAllocOverflow(t *testing.T) {
	mt := NewMergeTable(2)
	allocN(t, mt, 2)
	if _, err := mt.Alloc(); !errors.Is(err, ErrMergeTableFull) {
		t.Fatalf("overflow err = %v, want ErrMergeTableFull", err)
	}
}

func TestEntryOutOfRange(t *testing.T) {
	mt := NewMergeTable(2)
	if mt.Entry(0) != 0 || mt.Entry(-1) != 0 || mt.Entry(99) != 0 {
		t.Error("out-of-range Entry must return 0")
	}
}

func TestRecordTakesMinimum(t *testing.T) {
	// §4.2: entries update to the minimum of neighbor label and existing
	// value — Example 4.4's protection against overwriting smaller targets.
	mt := NewMergeTable(10)
	allocN(t, mt, 10)
	mt.Record(9, 7)
	if mt.Entry(9) != 7 {
		t.Fatalf("mt[9] = %d, want 7", mt.Entry(9))
	}
	// Later attempt to point 9 at a LARGER value must not overwrite.
	mt.Record(9, 8)
	if mt.Entry(9) != 7 {
		t.Fatalf("mt[9] = %d after Record(9,8), want 7 kept", mt.Entry(9))
	}
	// A smaller value does overwrite (this is where the §6 corner case can
	// lose the 7-equivalence — that behaviour is intentional here).
	mt.Record(9, 3)
	if mt.Entry(9) != 3 {
		t.Fatalf("mt[9] = %d after Record(9,3), want 3", mt.Entry(9))
	}
}

func TestRecordIgnoresNonexistent(t *testing.T) {
	mt := NewMergeTable(5)
	allocN(t, mt, 2)
	mt.Record(4, 1) // group 4 does not exist
	if mt.Entry(4) != 0 {
		t.Fatal("Record must not create groups")
	}
	mt.Record(0, 1)
	mt.Record(-3, 1)
	mt.Record(99, 1) // out of range: no panic
}

func TestResolveCollapsesChain(t *testing.T) {
	// Example 4.3/4.5: transitive chains collapse because ascending order
	// resolves targets before their dependents.
	mt := NewMergeTable(16)
	allocN(t, mt, 16)
	mt.Record(5, 4)
	mt.Record(8, 5)
	mt.Record(13, 4)
	mt.Record(16, 8)
	mt.Resolve()
	for _, g := range []grid.Label{4, 5, 8, 13, 16} {
		if mt.Lookup(g) != 4 {
			t.Errorf("Lookup(%d) = %d, want 4", g, mt.Lookup(g))
		}
	}
	roots := mt.Roots()
	for _, r := range roots {
		switch r {
		case 5, 8, 13, 16:
			t.Errorf("group %d still a root after Resolve", r)
		}
	}
}

func TestResolveStopsAtZero(t *testing.T) {
	// §4.3: resolution proceeds "until a zero-value entry ... is reached".
	mt := NewMergeTable(10)
	allocN(t, mt, 3)
	mt.Record(3, 1)
	mt.Resolve()
	if mt.Lookup(3) != 1 {
		t.Fatal("allocated entries must resolve")
	}
	if mt.Entry(5) != 0 {
		t.Fatal("entries past the first zero must stay untouched")
	}
}

func TestResolveIdempotent(t *testing.T) {
	mt := NewMergeTable(12)
	allocN(t, mt, 12)
	mt.Record(5, 4)
	mt.Record(8, 5)
	mt.Record(12, 8)
	mt.Resolve()
	snap := mt.Entries()
	mt.Resolve()
	for i, v := range mt.Entries() {
		if v != snap[i] {
			t.Fatalf("Resolve not idempotent at %d: %d vs %d", i+1, v, snap[i])
		}
	}
}

func TestUnionChasesRoots(t *testing.T) {
	// The corrected update: Union(7, 4) when mt[7] already points to 6 must
	// keep 6, 7, and 4 together — the exact shape the §6 corner case loses.
	mt := NewMergeTable(8)
	allocN(t, mt, 8)
	mt.Union(7, 6)
	mt.Union(7, 4)
	mt.Resolve()
	for _, g := range []grid.Label{4, 6, 7} {
		if mt.Lookup(g) != 4 {
			t.Errorf("Lookup(%d) = %d, want 4", g, mt.Lookup(g))
		}
	}
}

func TestLookupBackground(t *testing.T) {
	mt := NewMergeTable(3)
	if mt.Lookup(0) != 0 {
		t.Fatal("background must map to background")
	}
}

func TestStringShape(t *testing.T) {
	mt := NewMergeTable(3)
	allocN(t, mt, 2)
	s := mt.String()
	if !strings.Contains(s, "\n") {
		t.Fatalf("String should have two rows, got %q", s)
	}
}

// Property: after Union-based construction and Resolve, Lookup is a
// fixed point (Lookup(Lookup(x)) == Lookup(x)) and roots are class minima.
func TestResolveFixedPointProperty(t *testing.T) {
	const n = 24
	f := func(pairs [40][2]uint8) bool {
		mt := NewMergeTable(n)
		for i := 0; i < n; i++ {
			if _, err := mt.Alloc(); err != nil {
				return false
			}
		}
		for _, p := range pairs {
			a := grid.Label(p[0]%n) + 1
			b := grid.Label(p[1]%n) + 1
			mt.Union(a, b)
		}
		mt.Resolve()
		for i := grid.Label(1); i <= n; i++ {
			r := mt.Lookup(i)
			if r < 1 || r > i {
				return false // entries must point downward
			}
			if mt.Lookup(r) != r {
				return false // not a fixed point
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: entries always point to a label ≤ their index during the scan
// update rules (minimum propagation invariant from §4.2).
func TestDownwardPointerProperty(t *testing.T) {
	const n = 16
	f := func(ops [30][2]uint8, useUnion bool) bool {
		mt := NewMergeTable(n)
		for i := 0; i < n; i++ {
			mt.Alloc()
		}
		for _, p := range ops {
			a := grid.Label(p[0]%n) + 1
			b := grid.Label(p[1]%n) + 1
			if a < b {
				a, b = b, a
			}
			if a == b {
				continue
			}
			if useUnion {
				mt.Union(a, b)
			} else {
				mt.Record(a, b)
			}
		}
		for i := grid.Label(1); i <= n; i++ {
			if e := mt.Entry(i); e < 1 || e > i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
