package ccl

import (
	"sort"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Pixel is one lit pixel belonging to an island, with its integrated value.
type Pixel struct {
	Row, Col int
	Value    grid.Value
}

// Island is one connected component of lit pixels — a cluster of spatially
// correlated sensor activations corresponding to a physical event (§3).
type Island struct {
	// Label is the final label shared by every pixel of the island.
	Label grid.Label
	// Pixels lists member pixels in raster order.
	Pixels []Pixel
	// Sum is the total integrated value (proportional to deposited energy).
	Sum int64
	// MinRow, MinCol, MaxRow, MaxCol bound the island.
	MinRow, MinCol, MaxRow, MaxCol int
}

// Size returns the number of pixels in the island.
func (is *Island) Size() int { return len(is.Pixels) }

// Width returns the bounding-box width in pixels.
func (is *Island) Width() int { return is.MaxCol - is.MinCol + 1 }

// Height returns the bounding-box height in pixels.
func (is *Island) Height() int { return is.MaxRow - is.MinRow + 1 }

// Islands groups the lit pixels of g by their final labels, enabling the
// "efficient downstream tracking of interactions" the paper lists as a goal
// (§3). Islands are returned sorted by label. The label map must have the
// same shape as g.
func Islands(g *grid.Grid, labels *grid.Labels) []Island {
	if g.Rows() != labels.Rows() || g.Cols() != labels.Cols() {
		panic("ccl: Islands requires grid and labels of identical shape")
	}
	byLabel := make(map[grid.Label]*Island)
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			l := labels.At(r, c)
			if l == 0 {
				continue
			}
			is, ok := byLabel[l]
			if !ok {
				is = &Island{Label: l, MinRow: r, MinCol: c, MaxRow: r, MaxCol: c}
				byLabel[l] = is
			}
			v := g.At(r, c)
			is.Pixels = append(is.Pixels, Pixel{Row: r, Col: c, Value: v})
			is.Sum += int64(v)
			if r < is.MinRow {
				is.MinRow = r
			}
			if r > is.MaxRow {
				is.MaxRow = r
			}
			if c < is.MinCol {
				is.MinCol = c
			}
			if c > is.MaxCol {
				is.MaxCol = c
			}
		}
	}
	out := make([]Island, 0, len(byLabel))
	for _, is := range byLabel {
		out = append(out, *is)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LargestIsland returns the island with the greatest pixel count (ties broken
// by smaller label), or nil if there are none. IACT analysis pipelines keep
// the brightest/largest island as the shower image candidate.
func LargestIsland(islands []Island) *Island {
	var best *Island
	for i := range islands {
		if best == nil || islands[i].Size() > best.Size() {
			best = &islands[i]
		}
	}
	return best
}
