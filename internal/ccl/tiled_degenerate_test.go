package ccl

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// Degenerate tile geometries: decompositions where the tiling machinery earns
// nothing (one tile covers everything) or where no tile dimension divides the
// grid (prime-sided grids, so every edge tile is ragged). The hierarchical
// path must stay isomorphic to the flood-fill golden model in all of them —
// these are exactly the shapes where off-by-one errors in tile clamping and
// boundary stitching live.

// checkTiledGolden labels g both ways and requires an isomorphic partition.
func checkTiledGolden(t *testing.T, g *grid.Grid, conn grid.Connectivity, tileR, tileC int) *TiledResult {
	t.Helper()
	golden := labeling.FloodFill{}
	want, err := golden.Label(g, conn)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LabelTiled(g, TiledOptions{Connectivity: conn, TileRows: tileR, TileCols: tileC})
	if err != nil {
		t.Fatalf("%dx%d grid, %dx%d tiles, %v: %v", g.Rows(), g.Cols(), tileR, tileC, conn, err)
	}
	if !res.Labels.Isomorphic(want) {
		t.Fatalf("%dx%d grid, %dx%d tiles, %v: partition diverges from golden\n%s\ngot:\n%s\nwant iso to:\n%s",
			g.Rows(), g.Cols(), tileR, tileC, conn, g, res.Labels, want)
	}
	if res.Islands != want.Count() {
		t.Fatalf("%dx%d grid, %dx%d tiles, %v: islands %d, want %d",
			g.Rows(), g.Cols(), tileR, tileC, conn, res.Islands, want.Count())
	}
	return res
}

// denseTestGrid fills a rows×cols grid with a deterministic ~55%-occupancy
// pattern that produces components crossing any tile seam.
func denseTestGrid(rows, cols int) *grid.Grid {
	g := grid.New(rows, cols)
	flat := g.Flat()
	for i := range flat {
		// LCG-ish hash: dense enough to span seams, irregular enough to
		// exercise merges in both directions.
		if (i*2654435761)>>8%9 < 5 {
			flat[i] = grid.Value(i%7 + 1)
		}
	}
	return g
}

// TestTiledTileCoversGrid pins the single-tile degenerate cases: tile
// dimensions equal to, and strictly larger than, the grid in either or both
// axes. All must collapse to plain labeling with exactly the expected tile
// count.
func TestTiledTileCoversGrid(t *testing.T) {
	g := denseTestGrid(9, 14)
	cases := []struct {
		tileR, tileC, wantTiles int
	}{
		{9, 14, 1},   // exact cover
		{9, 100, 1},  // cols overshoot
		{100, 14, 1}, // rows overshoot
		{64, 64, 1},  // both overshoot
		{9, 7, 2},    // rows exact, cols halved
		{3, 14, 3},   // cols exact, rows in thirds
	}
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		for _, tc := range cases {
			res := checkTiledGolden(t, g, conn, tc.tileR, tc.tileC)
			if res.Tiles != tc.wantTiles {
				t.Fatalf("%dx%d tiles over 9x14, %v: Tiles = %d, want %d",
					tc.tileR, tc.tileC, conn, res.Tiles, tc.wantTiles)
			}
		}
	}
}

// TestTiledPrimeGrids runs prime-sided grids against tile shapes that cannot
// divide them, so the last tile row and column are always ragged. The tile
// count must follow the ceiling arithmetic and the partition must match the
// golden model.
func TestTiledPrimeGrids(t *testing.T) {
	ceil := func(a, b int) int { return (a + b - 1) / b }
	for _, dims := range [][2]int{{7, 11}, {13, 17}, {31, 29}, {1, 19}, {23, 1}} {
		g := denseTestGrid(dims[0], dims[1])
		for _, tile := range [][2]int{{2, 2}, {4, 4}, {4, 6}, {8, 8}, {1, 5}, {5, 1}, {3, 16}} {
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				res := checkTiledGolden(t, g, conn, tile[0], tile[1])
				want := ceil(dims[0], tile[0]) * ceil(dims[1], tile[1])
				if res.Tiles != want {
					t.Fatalf("grid %v tiles %v: Tiles = %d, want %d", dims, tile, res.Tiles, want)
				}
			}
		}
	}
}

// TestTiledSliverGrids covers 1-row and 1-column grids — decompositions where
// every tile seam is the entire tile — plus the 1×1 grid under an oversized
// tile.
func TestTiledSliverGrids(t *testing.T) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		row := grid.MustParse("##.#.###.#######.#.##")
		checkTiledGolden(t, row, conn, 1, 1)
		checkTiledGolden(t, row, conn, 1, 4)
		checkTiledGolden(t, row, conn, 3, 5) // tile rows overshoot the single row

		col := grid.New(21, 1)
		for r := 0; r < 21; r++ {
			if r%4 != 3 {
				col.Set(r, 0, grid.Value(r+1))
			}
		}
		checkTiledGolden(t, col, conn, 1, 1)
		checkTiledGolden(t, col, conn, 4, 1)
		checkTiledGolden(t, col, conn, 5, 3) // tile cols overshoot the single column

		dot := grid.MustParse("#")
		res := checkTiledGolden(t, dot, conn, 8, 8)
		if res.Tiles != 1 || res.Islands != 1 {
			t.Fatalf("1x1 grid under 8x8 tile: %+v", res)
		}
	}
}

// TestTiledRaggedSeamComponent pins a component that lives entirely in the
// ragged remainder: a ring hugging the last tile row and column of a 13×17
// grid under 4×4 tiles (final tiles are 1 row and 1 column wide). The ring
// must come back as one island, stitched only through ragged tiles.
func TestTiledRaggedSeamComponent(t *testing.T) {
	g := grid.New(13, 17)
	for c := 0; c < 17; c++ {
		g.Set(12, c, 1) // last row: lives in the 1-row ragged tiles
	}
	for r := 0; r < 13; r++ {
		g.Set(r, 16, 1) // last col: lives in the 1-col ragged tiles
	}
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		res := checkTiledGolden(t, g, conn, 4, 4)
		if res.Islands != 1 {
			t.Fatalf("%v: ragged-edge ring split into %d islands", conn, res.Islands)
		}
		if res.BoundaryUnions == 0 {
			t.Fatalf("%v: ring spans tiles but no boundary unions recorded", conn)
		}
	}
}
