package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// corruptAll runs data through a fresh Reader in chunks of chunk bytes and
// returns everything delivered plus the terminal error.
func corruptAll(t *testing.T, data []byte, cfg Config, chunk int) ([]byte, Counts, error) {
	t.Helper()
	cr := NewReader(bytes.NewReader(data), cfg)
	var out []byte
	buf := make([]byte, chunk)
	for {
		n, err := cr.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return out, cr.Counts(), err
		}
	}
}

func TestReaderTransparentByDefault(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	out, counts, err := corruptAll(t, data, Config{Seed: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("zero config must be transparent: got %q", out)
	}
	if counts != (Counts{}) {
		t.Fatalf("zero config fired faults: %+v", counts)
	}
}

// TestReaderDeterministicAcrossChunking: corruption depends only on the seed
// and the byte stream, never on Read call sizes.
func TestReaderDeterministicAcrossChunking(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	cfg := Config{Seed: 42, BitFlip: 0.05, Drop: 0.02, Duplicate: 0.02, Insert: 0.02}
	a, ca, err := corruptAll(t, data, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, cb, err := corruptAll(t, data, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("corruption differs across chunkings")
	}
	if ca != cb {
		t.Fatalf("counts differ across chunkings: %+v vs %+v", ca, cb)
	}
	if ca.BitFlips == 0 || ca.DroppedBytes == 0 || ca.DuplicatedBytes == 0 || ca.InsertedBytes == 0 {
		t.Fatalf("4096 bytes at these rates must fire every fault kind: %+v", ca)
	}
	if len(a) == len(data) && bytes.Equal(a, data) {
		t.Fatal("stream not corrupted at all")
	}
	// A different seed must corrupt differently.
	c, _, err := corruptAll(t, data, Config{Seed: 43, BitFlip: 0.05, Drop: 0.02, Duplicate: 0.02, Insert: 0.02}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestReaderDisconnectIsSticky(t *testing.T) {
	data := make([]byte, 10000)
	cfg := Config{Seed: 7, Disconnect: 0.01}
	out, counts, err := corruptAll(t, data, cfg, 256)
	if !errors.Is(err, ErrDisconnect) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrDisconnect wrapping ErrInjected, got %v", err)
	}
	if counts.Disconnects != 1 {
		t.Fatalf("disconnects = %d, want 1 (stream dies at the first)", counts.Disconnects)
	}
	if len(out) >= len(data) {
		t.Fatalf("disconnect at 1%%/byte must cut the stream early, delivered %d", len(out))
	}
	// The dead stream stays dead.
	cr := NewReader(bytes.NewReader(data), cfg)
	buf := make([]byte, 64)
	for {
		if _, err := cr.Read(buf); err != nil {
			break
		}
	}
	if _, err := cr.Read(buf); !errors.Is(err, ErrDisconnect) {
		t.Fatalf("post-disconnect read returned %v", err)
	}
}

func TestReaderStalls(t *testing.T) {
	data := make([]byte, 400)
	cfg := Config{Seed: 3, Stall: 0.05, StallDur: time.Millisecond}
	start := time.Now()
	_, counts, err := corruptAll(t, data, cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Stalls == 0 {
		t.Fatal("400 bytes at 5% stall probability must stall")
	}
	if elapsed := time.Since(start); elapsed < time.Duration(counts.Stalls)*time.Millisecond/2 {
		t.Fatalf("%d stalls elapsed only %v", counts.Stalls, elapsed)
	}
}

// TestReaderAgainstStreamParser: a corrupted packet stream must never break
// the parser — it recovers valid packets and accounts for the rest.
func TestReaderAgainstStreamParser(t *testing.T) {
	var buf bytes.Buffer
	sw := adapt.NewStreamWriter(&buf)
	const events = 200
	var p adapt.Packet
	p.Header = adapt.Header{SamplesPerChannel: 2}
	for ch := 0; ch < adapt.ChannelsPerASIC; ch++ {
		p.Samples[ch] = []int32{10, 20}
	}
	for e := 0; e < events; e++ {
		p.Event = uint32(e)
		if err := sw.WritePacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	cr := NewReader(bytes.NewReader(buf.Bytes()), Config{Seed: 11, BitFlip: 0.002, Drop: 0.001})
	sr := adapt.NewStreamReader(cr)
	recovered := 0
	for {
		_, err := sr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("parser must see corruption as EOF-or-skip, got: %v", err)
		}
		recovered++
	}
	counts := cr.Counts()
	if counts.BitFlips == 0 && counts.DroppedBytes == 0 {
		t.Fatal("no corruption fired; rates too low for stream length")
	}
	if recovered == 0 || recovered >= events {
		t.Fatalf("recovered %d of %d packets under corruption (want some, not all)", recovered, events)
	}
	if sr.SkippedBytes == 0 {
		t.Fatal("corruption must surface as skipped bytes")
	}
}

func TestConnWriteSideCorruptionAndDisconnect(t *testing.T) {
	client, srv := net.Pipe()
	defer srv.Close()
	cc := WrapConn(client, nil, &Config{Seed: 5, BitFlip: 0.01, Disconnect: 0.0005})
	recv := make(chan []byte, 1)
	go func() {
		got, _ := io.ReadAll(srv)
		recv <- got
	}()
	payload := make([]byte, 1000)
	var sent int
	var lastErr error
	for i := 0; i < 20; i++ {
		n, err := cc.Write(payload)
		sent += n
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrDisconnect) {
		t.Fatalf("20kB at 0.05%%/byte disconnect must sever the conn, got %v", lastErr)
	}
	if sent == 0 {
		t.Fatal("no source bytes consumed before the disconnect")
	}
	// The underlying conn is closed: the peer sees EOF, local writes fail.
	got := <-recv
	if len(got) == 0 {
		t.Fatal("nothing reached the peer before the disconnect")
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn must be closed after an injected disconnect")
	}
	if cc.WriteCounts().Disconnects != 1 {
		t.Fatalf("write counts: %+v", cc.WriteCounts())
	}
	if cc.ReadCounts() != (Counts{}) {
		t.Fatalf("read side must be transparent: %+v", cc.ReadCounts())
	}
}

func TestConnReadSidePassThrough(t *testing.T) {
	client, srv := net.Pipe()
	defer srv.Close()
	cc := WrapConn(client, &Config{Seed: 9}, nil) // zero rates: transparent
	go func() {
		srv.Write([]byte("hello"))
		srv.Close()
	}()
	got, err := io.ReadAll(cc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if cc.LocalAddr() == nil || cc.RemoteAddr() == nil {
		t.Fatal("addresses must delegate")
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameInjectorFaults(t *testing.T) {
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i)
	}
	fi := NewFrameInjector(FrameConfig{
		Seed: 17, BitFlip: 0.1, Truncate: 0.1, Drop: 0.1, Duplicate: 0.1, Insert: 0.1,
	})
	const frames = 2000
	emitted := 0
	for i := 0; i < frames; i++ {
		chunks, fault := fi.Mutate(frame)
		switch fault {
		case FaultNone:
			if len(chunks) != 1 || !bytes.Equal(chunks[0], frame) {
				t.Fatal("untouched frame altered")
			}
		case FaultBitFlip:
			if len(chunks) != 1 || len(chunks[0]) != len(frame) {
				t.Fatalf("bitflip changed frame length")
			}
			diff := 0
			for j := range frame {
				diff += popcount8(chunks[0][j] ^ frame[j])
			}
			if diff != 1 {
				t.Fatalf("bitflip changed %d bits, want 1", diff)
			}
		case FaultTruncate:
			if len(chunks) != 1 || len(chunks[0]) >= len(frame) || len(chunks[0]) < 1 {
				t.Fatalf("truncate produced %d bytes of %d", len(chunks[0]), len(frame))
			}
		case FaultDrop:
			if chunks != nil {
				t.Fatal("dropped frame still emitted bytes")
			}
		case FaultDuplicate:
			if len(chunks) != 2 || !bytes.Equal(chunks[0], frame) || !bytes.Equal(chunks[1], frame) {
				t.Fatal("duplicate must emit the frame twice")
			}
		case FaultInsert:
			if len(chunks) != 2 || !bytes.Equal(chunks[1], frame) || len(chunks[0]) == 0 {
				t.Fatal("insert must prepend garbage and keep the frame")
			}
		}
		for _, c := range chunks {
			emitted += len(c)
		}
	}
	var total uint64
	for f := FaultNone; f < numFrameFaults; f++ {
		n := fi.Count(f)
		if n == 0 {
			t.Fatalf("fault %v never fired in %d frames", f, frames)
		}
		total += n
	}
	if total != frames {
		t.Fatalf("fault counts sum to %d, want %d (one roll per frame)", total, frames)
	}
	if fi.Faulted()+fi.Count(FaultNone) != frames {
		t.Fatalf("Faulted()=%d inconsistent with counts", fi.Faulted())
	}
	if emitted == frames*len(frame) {
		t.Fatal("emitted byte count unchanged; faults had no effect")
	}
}

// TestFrameInjectorDeterministic: same seed, same faults.
func TestFrameInjectorDeterministic(t *testing.T) {
	frame := bytes.Repeat([]byte{0xAB}, 32)
	mk := func(seed uint64) []FrameFault {
		fi := NewFrameInjector(FrameConfig{Seed: seed, BitFlip: 0.2, Truncate: 0.2})
		out := make([]FrameFault, 100)
		for i := range out {
			_, out[i] = fi.Mutate(frame)
		}
		return out
	}
	a, b := mk(123), mk(123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs for equal seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestFrameFaultString(t *testing.T) {
	for f := FaultNone; f < numFrameFaults; f++ {
		if f.String() == "unknown" {
			t.Fatalf("fault %d has no name", int(f))
		}
	}
	if FrameFault(99).String() != "unknown" {
		t.Fatal("out-of-range fault must stringify as unknown")
	}
}
