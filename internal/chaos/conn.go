package chaos

import (
	"errors"
	"net"
	"time"
)

// Conn is a net.Conn whose read and/or write side passes through fault
// injection. When a disconnect fault fires on either side, the underlying
// connection is closed (the peer observes a real teardown) and the fault
// surfaces as ErrDisconnect locally.
type Conn struct {
	nc net.Conn
	rd *Reader   // nil: reads are transparent
	wr *Injector // nil: writes are transparent
	wb []byte    // write-side corruption staging
}

// WrapConn wraps nc. readCfg and writeCfg independently enable injection per
// direction; a nil config leaves that direction untouched.
func WrapConn(nc net.Conn, readCfg, writeCfg *Config) *Conn {
	c := &Conn{nc: nc}
	if readCfg != nil {
		c.rd = NewReader(nc, *readCfg)
	}
	if writeCfg != nil {
		c.wr = NewInjector(*writeCfg)
	}
	return c
}

// ReadCounts returns read-side fault counts (zero value when transparent).
func (c *Conn) ReadCounts() Counts {
	if c.rd == nil {
		return Counts{}
	}
	return c.rd.Counts()
}

// WriteCounts returns write-side fault counts (zero value when transparent).
func (c *Conn) WriteCounts() Counts {
	if c.wr == nil {
		return Counts{}
	}
	return c.wr.Counts()
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.rd == nil {
		return c.nc.Read(p)
	}
	n, err := c.rd.Read(p)
	if errors.Is(err, ErrDisconnect) {
		c.nc.Close()
	}
	return n, err
}

// Write implements net.Conn. The returned count is the number of source
// bytes consumed (corruption may change how many reach the wire). On an
// injected disconnect the corrupted prefix is flushed, the connection is
// closed, and ErrDisconnect is returned.
func (c *Conn) Write(p []byte) (int, error) {
	if c.wr == nil {
		return c.nc.Write(p)
	}
	out, n, ierr := c.wr.Corrupt(c.wb[:0], p)
	c.wb = out[:0] // retain grown staging storage
	if len(out) > 0 {
		if _, werr := c.nc.Write(out); werr != nil {
			return 0, werr
		}
	}
	if ierr != nil {
		c.nc.Close()
		return n, ierr
	}
	return n, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline delegates to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline delegates to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline delegates to the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }
