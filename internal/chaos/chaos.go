package chaos

import (
	"errors"
	"fmt"
	"time"

	"github.com/wustl-adapt/hepccl/internal/detector"
)

// ErrInjected is the root of every error this package fabricates; consumers
// can errors.Is against it to separate injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// ErrDisconnect reports an injected mid-stream disconnect.
var ErrDisconnect = fmt.Errorf("%w: disconnect", ErrInjected)

// Config sets the per-byte fault probabilities of an Injector. All
// probabilities are independent and rolled per byte, so corruption is a pure
// function of (seed, byte stream) regardless of I/O chunking. The zero value
// injects nothing.
type Config struct {
	// Seed drives the deterministic RNG. Two injectors with equal configs
	// corrupt identical streams identically.
	Seed uint64
	// BitFlip is the probability a byte has one random bit inverted.
	BitFlip float64
	// Drop is the probability a byte is deleted (frame truncation when it
	// lands inside a frame).
	Drop float64
	// Duplicate is the probability a byte is emitted twice.
	Duplicate float64
	// Insert is the probability a random garbage byte is emitted before a
	// byte.
	Insert float64
	// Disconnect is the probability, per byte, that the stream fails with
	// ErrDisconnect at that position.
	Disconnect float64
	// Stall is the probability, per byte, of sleeping StallDur (jittered
	// ±50%) before delivering the byte — slow-link jitter.
	Stall float64
	// StallDur is the nominal stall length. Zero disables stalls regardless
	// of Stall.
	StallDur time.Duration
}

// Counts tallies the faults an Injector has fired.
type Counts struct {
	BitFlips        uint64
	DroppedBytes    uint64
	DuplicatedBytes uint64
	InsertedBytes   uint64
	Stalls          uint64
	Disconnects     uint64
}

// Injector is the byte-level fault engine. Not safe for concurrent use; give
// each stream its own.
type Injector struct {
	cfg    Config
	rng    *detector.RNG
	counts Counts
}

// NewInjector returns an engine rolling faults with cfg's probabilities.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: detector.NewRNG(cfg.Seed)}
}

// Counts returns the faults fired so far.
func (in *Injector) Counts() Counts { return in.counts }

// Corrupt processes src, appending the corrupted rendition to dst and
// returning it along with the number of src bytes consumed. When a
// disconnect fault fires at src[n], it returns (dst, n, ErrDisconnect) with
// all corruption up to byte n applied; the remainder of src is untouched.
func (in *Injector) Corrupt(dst, src []byte) ([]byte, int, error) {
	cfg := &in.cfg
	for i, b := range src {
		if cfg.Disconnect > 0 && in.rng.Float64() < cfg.Disconnect {
			in.counts.Disconnects++
			return dst, i, ErrDisconnect
		}
		if cfg.Stall > 0 && cfg.StallDur > 0 && in.rng.Float64() < cfg.Stall {
			in.counts.Stalls++
			time.Sleep(time.Duration((0.5 + in.rng.Float64()) * float64(cfg.StallDur)))
		}
		if cfg.Drop > 0 && in.rng.Float64() < cfg.Drop {
			in.counts.DroppedBytes++
			continue
		}
		if cfg.Insert > 0 && in.rng.Float64() < cfg.Insert {
			in.counts.InsertedBytes++
			dst = append(dst, byte(in.rng.Uint64()))
		}
		if cfg.BitFlip > 0 && in.rng.Float64() < cfg.BitFlip {
			in.counts.BitFlips++
			b ^= 1 << (in.rng.Uint64() & 7)
		}
		dst = append(dst, b)
		if cfg.Duplicate > 0 && in.rng.Float64() < cfg.Duplicate {
			in.counts.DuplicatedBytes++
			dst = append(dst, b)
		}
	}
	return dst, len(src), nil
}
