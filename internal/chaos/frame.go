package chaos

import "github.com/wustl-adapt/hepccl/internal/detector"

// FrameFault identifies one frame-granular fault kind.
type FrameFault int

// Frame-granular fault kinds. FaultBitFlip, FaultTruncate, and FaultDrop are
// "clean kills": on a self-framing checksummed stream each destroys exactly
// the frame's own event and nothing downstream, which is what lets a soak
// test balance its books event-for-event. FaultDuplicate and FaultInsert
// stress the consumer in messier ways (duplicate ASIC rejection, resync
// hunting) and are accounted separately.
const (
	FaultNone FrameFault = iota
	// FaultBitFlip inverts one random bit anywhere in the frame. Always
	// detected by the additive frame checksum (a single flip changes the
	// folded sum), so the frame is dropped by the parser, never mis-parsed.
	FaultBitFlip
	// FaultTruncate cuts the frame after a random prefix — a link dropping
	// mid-frame.
	FaultTruncate
	// FaultDrop deletes the frame entirely — a readout FIFO overrun.
	FaultDrop
	// FaultDuplicate emits the frame twice — a retransmitting link layer.
	FaultDuplicate
	// FaultInsert emits random garbage bytes before the frame — line noise.
	FaultInsert
	numFrameFaults
)

// String implements fmt.Stringer.
func (f FrameFault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultBitFlip:
		return "bitflip"
	case FaultTruncate:
		return "truncate"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultInsert:
		return "insert"
	default:
		return "unknown"
	}
}

// FrameConfig sets per-frame fault probabilities. The probabilities are
// tried in declaration order and at most one fault fires per frame, so the
// per-frame fault distribution is exact and accountable.
type FrameConfig struct {
	Seed      uint64
	BitFlip   float64
	Truncate  float64
	Drop      float64
	Duplicate float64
	Insert    float64
}

// FrameInjector applies at most one fault to each frame it is offered. Not
// safe for concurrent use.
type FrameInjector struct {
	cfg    FrameConfig
	rng    *detector.RNG
	counts [numFrameFaults]uint64
	buf    []byte
}

// NewFrameInjector returns an injector rolling with cfg's probabilities.
func NewFrameInjector(cfg FrameConfig) *FrameInjector {
	return &FrameInjector{cfg: cfg, rng: detector.NewRNG(cfg.Seed)}
}

// Count returns how many times the given fault has fired (FaultNone counts
// untouched frames).
func (fi *FrameInjector) Count(f FrameFault) uint64 {
	if f < 0 || f >= numFrameFaults {
		return 0
	}
	return fi.counts[f]
}

// Faulted returns the total number of frames that received any fault.
func (fi *FrameInjector) Faulted() uint64 {
	var n uint64
	for f := FaultNone + 1; f < numFrameFaults; f++ {
		n += fi.counts[f]
	}
	return n
}

// roll picks the fault for the next frame.
func (fi *FrameInjector) roll() FrameFault {
	c := &fi.cfg
	for _, t := range []struct {
		p float64
		f FrameFault
	}{
		{c.BitFlip, FaultBitFlip},
		{c.Truncate, FaultTruncate},
		{c.Drop, FaultDrop},
		{c.Duplicate, FaultDuplicate},
		{c.Insert, FaultInsert},
	} {
		if t.p > 0 && fi.rng.Float64() < t.p {
			return t.f
		}
	}
	return FaultNone
}

// Mutate rolls a fault for frame and returns the byte chunks to transmit in
// its place, plus the fault applied. The returned slices may alias frame and
// the injector's scratch buffer; they are valid until the next Mutate call.
// A nil result means the frame was dropped.
func (fi *FrameInjector) Mutate(frame []byte) ([][]byte, FrameFault) {
	f := fi.roll()
	fi.counts[f]++
	switch f {
	case FaultBitFlip:
		fi.buf = append(fi.buf[:0], frame...)
		if len(fi.buf) > 0 {
			i := fi.rng.Intn(len(fi.buf))
			fi.buf[i] ^= 1 << (fi.rng.Uint64() & 7)
		}
		return [][]byte{fi.buf}, f
	case FaultTruncate:
		if len(frame) < 2 {
			return nil, f
		}
		return [][]byte{frame[:1+fi.rng.Intn(len(frame)-1)]}, f
	case FaultDrop:
		return nil, f
	case FaultDuplicate:
		return [][]byte{frame, frame}, f
	case FaultInsert:
		fi.buf = fi.buf[:0]
		for n := 1 + fi.rng.Intn(16); n > 0; n-- {
			fi.buf = append(fi.buf, byte(fi.rng.Uint64()))
		}
		return [][]byte{fi.buf, frame}, f
	default:
		return [][]byte{frame}, FaultNone
	}
}
