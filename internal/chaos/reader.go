package chaos

import "io"

// Reader passes an io.Reader's bytes through an Injector. After a disconnect
// fault fires, buffered corrupted bytes are still delivered, then every Read
// returns ErrDisconnect — the stream is dead, like a reset socket.
type Reader struct {
	r   io.Reader
	in  *Injector
	raw []byte // staging for underlying reads
	out []byte // corrupted bytes awaiting delivery
	off int
	err error // sticky: ErrDisconnect or the underlying reader's error
}

// NewReader wraps r with a fresh Injector for cfg.
func NewReader(r io.Reader, cfg Config) *Reader {
	return &Reader{r: r, in: NewInjector(cfg), raw: make([]byte, 32<<10)}
}

// Counts returns the faults fired so far.
func (cr *Reader) Counts() Counts { return cr.in.Counts() }

// Read implements io.Reader.
func (cr *Reader) Read(p []byte) (int, error) {
	for cr.off == len(cr.out) {
		if cr.err != nil {
			return 0, cr.err
		}
		cr.out, cr.off = cr.out[:0], 0
		n, err := cr.r.Read(cr.raw)
		if n > 0 {
			var cerr error
			cr.out, _, cerr = cr.in.Corrupt(cr.out, cr.raw[:n])
			if cerr != nil {
				cr.err = cerr
			}
		}
		if err != nil && cr.err == nil {
			cr.err = err
		}
	}
	n := copy(p, cr.out[cr.off:])
	cr.off += n
	return n, nil
}
