// Package chaos is a composable, reproducible fault-injection layer for the
// serving stack: every failure mode a front-end link or its peer can exhibit,
// driven by a seeded deterministic RNG so any observed failure replays
// exactly from its seed.
//
// Three injection surfaces, from lowest to highest level:
//
//   - Injector: the byte-level engine. Rolls one fault decision per byte
//     (bit flips, byte drops, duplication, insertion, stalls, disconnects),
//     so a corruption sequence depends only on the seed and the byte stream —
//     never on how the stream is chunked into Read/Write calls.
//   - Reader / Conn: io.Reader and net.Conn wrappers that pass traffic
//     through an Injector. Conn can corrupt either direction and optionally
//     severs the underlying connection when a disconnect fault fires,
//     modeling a peer vanishing mid-event.
//   - FrameInjector: frame-granular faults (corrupt / truncate / drop /
//     duplicate / insert-garbage, one whole frame at a time) with per-fault
//     counters. Load generators use it when a test must account exactly for
//     which events were sacrificed — a byte-level fault can straddle frame
//     boundaries, a frame-level fault cannot.
//
// The fault model matches what the paper's front-end electronics face:
// radiation-induced bit flips on the link, dropped and repeated frames from
// readout FIFO overruns, idle links from powered-down ASICs, and hard
// disconnects from link retraining. Single-event upsets in on-chip state
// (BRAM) are modeled separately: see MergeTable.InjectSEU in internal/ccl
// and Array.FlipBit in internal/hls/mem.
package chaos
