package unionfind

import (
	"testing"
	"testing/quick"
)

func TestForestBasics(t *testing.T) {
	f := NewForest(10)
	a, _ := f.MakeSet()
	b, _ := f.MakeSet()
	c, _ := f.MakeSet()
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("labels = %d,%d,%d, want 1,2,3", a, b, c)
	}
	if f.Find(a) != a || f.Find(c) != c {
		t.Fatal("fresh sets must be their own representatives")
	}
	if !f.Union(b, c) {
		t.Fatal("union of distinct sets must report true")
	}
	if f.Find(c) != b {
		t.Fatalf("Find(c) = %d, want %d (union-by-min)", f.Find(c), b)
	}
	if f.Union(b, c) {
		t.Fatal("union of same set must report false")
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
}

func TestForestUnionByMin(t *testing.T) {
	f := NewForest(10)
	var ls []Label
	for i := 0; i < 5; i++ {
		l, _ := f.MakeSet()
		ls = append(ls, l)
	}
	// Chain unions from the top down; min must win regardless of order.
	f.Union(ls[4], ls[3])
	f.Union(ls[3], ls[2])
	f.Union(ls[2], ls[0])
	for _, l := range []Label{ls[0], ls[2], ls[3], ls[4]} {
		if f.Find(l) != ls[0] {
			t.Fatalf("Find(%d) = %d, want %d", l, f.Find(l), ls[0])
		}
	}
	if f.Find(ls[1]) != ls[1] {
		t.Fatal("untouched set joined a union")
	}
}

func TestForestCapacity(t *testing.T) {
	f := NewForest(2)
	f.MakeSet()
	f.MakeSet()
	if _, err := f.MakeSet(); err == nil {
		t.Fatal("exceeding capacity must error")
	}
}

func TestForestZeroCapacity(t *testing.T) {
	f := NewForest(0)
	if _, err := f.MakeSet(); err != nil {
		t.Fatal("capacity is clamped to at least 1")
	}
	if _, err := f.MakeSet(); err == nil {
		t.Fatal("second MakeSet must fail at clamped capacity 1")
	}
}

func TestFlatBasics(t *testing.T) {
	ft := NewFlat(10)
	a, _ := ft.MakeSet()
	b, _ := ft.MakeSet()
	c, _ := ft.MakeSet()
	if ft.Find(a) != a || ft.Find(b) != b {
		t.Fatal("fresh labels must self-represent")
	}
	if !ft.Union(c, b) {
		t.Fatal("union of distinct classes must report true")
	}
	if ft.Find(c) != b {
		t.Fatalf("Find(c) = %d, want %d", ft.Find(c), b)
	}
	if ft.Union(b, c) {
		t.Fatal("repeat union must report false")
	}
	if ft.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ft.Len())
	}
	_ = a
}

func TestFlatAlwaysResolved(t *testing.T) {
	// The defining property: rl[x] is the final representative after ANY
	// sequence of unions, with no chasing. Build a chain worst case.
	ft := NewFlat(100)
	var ls []Label
	for i := 0; i < 50; i++ {
		l, _ := ft.MakeSet()
		ls = append(ls, l)
	}
	// Merge in reverse, creating the longest transitive chains.
	for i := 48; i >= 0; i-- {
		ft.Union(ls[i+1], ls[i])
	}
	for _, l := range ls {
		if got := ft.Find(l); got != ls[0] {
			t.Fatalf("Find(%d) = %d, want %d — flat table not fully resolved", l, got, ls[0])
		}
	}
	if got := len(ft.Members(ls[7])); got != 50 {
		t.Fatalf("Members = %d labels, want 50", got)
	}
}

func TestFlatMembersOrderContainsAll(t *testing.T) {
	ft := NewFlat(10)
	a, _ := ft.MakeSet()
	b, _ := ft.MakeSet()
	c, _ := ft.MakeSet()
	ft.Union(a, c) // c's list absorbed into a
	ft.Union(b, a) // b's list absorbed into a
	members := ft.Members(b)
	if len(members) != 3 {
		t.Fatalf("Members = %v, want 3 labels", members)
	}
	seen := map[Label]bool{}
	for _, m := range members {
		seen[m] = true
	}
	if !seen[a] || !seen[b] || !seen[c] {
		t.Fatalf("Members = %v, want {a,b,c}", members)
	}
}

func TestFlatCapacity(t *testing.T) {
	ft := NewFlat(1)
	ft.MakeSet()
	if _, err := ft.MakeSet(); err == nil {
		t.Fatal("exceeding capacity must error")
	}
}

// Property: Forest and Flat agree on the partition induced by any random
// union sequence.
func TestForestFlatEquivalenceProperty(t *testing.T) {
	const n = 20
	f := func(pairs [30][2]uint8) bool {
		fo := NewForest(n)
		fl := NewFlat(n)
		for i := 0; i < n; i++ {
			fo.MakeSet()
			fl.MakeSet()
		}
		for _, p := range pairs {
			a := Label(p[0]%n) + 1
			b := Label(p[1]%n) + 1
			fo.Union(a, b)
			fl.Union(a, b)
		}
		for i := Label(1); i <= n; i++ {
			for j := Label(1); j <= n; j++ {
				if (fo.Find(i) == fo.Find(j)) != (fl.Find(i) == fl.Find(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: representatives are always the minimum label of their class.
func TestMinRepresentativeProperty(t *testing.T) {
	const n = 16
	f := func(pairs [24][2]uint8) bool {
		fo := NewForest(n)
		fl := NewFlat(n)
		for i := 0; i < n; i++ {
			fo.MakeSet()
			fl.MakeSet()
		}
		for _, p := range pairs {
			a := Label(p[0]%n) + 1
			b := Label(p[1]%n) + 1
			fo.Union(a, b)
			fl.Union(a, b)
		}
		// Compute class minima by brute force over forest partition.
		min := map[Label]Label{}
		for i := Label(1); i <= n; i++ {
			r := fo.Find(i)
			if m, ok := min[r]; !ok || i < m {
				min[r] = i
			}
		}
		for i := Label(1); i <= n; i++ {
			if fo.Find(i) != min[fo.Find(i)] {
				return false
			}
			if fl.Find(i) != min[fo.Find(i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
