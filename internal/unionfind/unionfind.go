// Package unionfind provides the label-equivalence structures used by the
// baseline CCL algorithms this paper compares against (§3).
//
// Two structures are provided:
//
//   - Forest: a conventional union-find with path halving and union-by-min,
//     as used by Rosenfeld–Pfaltz style two-pass labelers.
//   - Flat: the flat representative-label table of He et al. [14], in which
//     every provisional label always points directly at its representative —
//     resolution is a single table read, with equivalence lists (rl/next/
//     tail arrays) maintained so a merge relabels the smaller-rooted list in
//     one sweep. This is the "flat union-find data structure with a
//     representative label table" the paper cites.
package unionfind

import "fmt"

// Label is a provisional component label. 0 is reserved for background.
type Label = int32

// Forest is a classic disjoint-set forest over labels 1..n with union-by-min
// (the smaller representative wins, matching CCL's minimum-label semantics)
// and path halving.
type Forest struct {
	parent []Label
	next   Label
}

// NewForest returns a forest with room for capacity labels.
func NewForest(capacity int) *Forest {
	if capacity < 1 {
		capacity = 1
	}
	return &Forest{parent: make([]Label, capacity+1), next: 1}
}

// MakeSet allocates the next label as a singleton set.
func (f *Forest) MakeSet() (Label, error) {
	if int(f.next) >= len(f.parent) {
		return 0, fmt.Errorf("unionfind: forest capacity %d exhausted", len(f.parent)-1)
	}
	l := f.next
	f.parent[l] = l
	f.next++
	return l, nil
}

// Len returns the number of labels allocated.
func (f *Forest) Len() int { return int(f.next) - 1 }

// Find returns the representative of x, compressing paths as it goes.
func (f *Forest) Find(x Label) Label {
	for f.parent[x] != x {
		f.parent[x] = f.parent[f.parent[x]] // path halving
		x = f.parent[x]
	}
	return x
}

// Union merges the sets of a and b; the smaller representative becomes the
// root. It reports whether the two sets were previously distinct.
func (f *Forest) Union(a, b Label) bool {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return false
	}
	if ra < rb {
		f.parent[rb] = ra
	} else {
		f.parent[ra] = rb
	}
	return true
}

// Flat is He et al.'s representative-label table. rl[x] is always the current
// representative of x (no chasing needed); next/tail thread the members of
// each equivalence list so Union can relabel the absorbed list in one sweep.
type Flat struct {
	rl   []Label // representative label, always fully resolved
	next []Label // next member of the equivalence list, 0 = end
	tail []Label // last member of the list rooted at a representative
	cnt  Label
}

// NewFlat returns a flat table with room for capacity labels.
func NewFlat(capacity int) *Flat {
	if capacity < 1 {
		capacity = 1
	}
	return &Flat{
		rl:   make([]Label, capacity+1),
		next: make([]Label, capacity+1),
		tail: make([]Label, capacity+1),
	}
}

// MakeSet allocates the next label as a singleton equivalence list.
func (t *Flat) MakeSet() (Label, error) {
	if int(t.cnt)+1 >= len(t.rl) {
		return 0, fmt.Errorf("unionfind: flat table capacity %d exhausted", len(t.rl)-1)
	}
	t.cnt++
	l := t.cnt
	t.rl[l] = l
	t.next[l] = 0
	t.tail[l] = l
	return l, nil
}

// Len returns the number of labels allocated.
func (t *Flat) Len() int { return int(t.cnt) }

// Find returns the representative of x. It is a single array read — the
// property that makes the structure attractive in hardware.
func (t *Flat) Find(x Label) Label { return t.rl[x] }

// Union merges the equivalence classes of a and b. The class with the larger
// representative is relabeled member-by-member to the smaller representative
// and its list is appended, so every rl entry stays fully resolved.
// It reports whether the two classes were previously distinct.
func (t *Flat) Union(a, b Label) bool {
	u, v := t.rl[a], t.rl[b]
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	// Relabel every member of v's list to u.
	for m := v; m != 0; m = t.next[m] {
		t.rl[m] = u
	}
	// Append v's list after u's tail.
	t.next[t.tail[u]] = v
	t.tail[u] = t.tail[v]
	return true
}

// Members returns the labels equivalent to x (including x), in list order.
// Only valid when called with a representative or any member.
func (t *Flat) Members(x Label) []Label {
	var out []Label
	for m := t.rl[x]; m != 0; m = t.next[m] {
		out = append(out, m)
	}
	return out
}
