package experiments

import (
	"fmt"
	"io"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// E14 examines what the §5.5 "meets CTA's 15 kHz" claim needs in practice:
// triggers arrive as a Poisson process, so running a 15.2k events/s pipeline
// at a 15 kHz mean rate (ρ ≈ 0.99) loses events unless a derandomizer FIFO
// absorbs the bursts — the first of the "system scalability concerns" §6
// defers to future work.

// DeadtimeRow is one FIFO-depth point of the sweep.
type DeadtimeRow struct {
	FIFODepth int
	Result    adapt.DeadtimeResult
}

// DeadtimeSweep simulates the CTA pipeline under Poisson triggers at rateHz
// across derandomizer depths.
func DeadtimeSweep(rateHz float64, events int) ([]DeadtimeRow, error) {
	p, err := adapt.New(adapt.DefaultCTA())
	if err != nil {
		return nil, err
	}
	var rows []DeadtimeRow
	for _, depth := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		res, err := p.SimulateTrigger(adapt.TriggerConfig{
			RateHz: rateHz, FIFODepth: depth, Events: events, Seed: 1860,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeadtimeRow{FIFODepth: depth, Result: res})
	}
	return rows, nil
}

// WriteDeadtime renders E14.
func WriteDeadtime(w io.Writer) error {
	const rate = 15000.0
	rows, err := DeadtimeSweep(rate, 60000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E14: Poisson triggers at %.0f Hz into the 43x43 4-way pipeline (ρ≈0.99)\n", rate)
	fmt.Fprintf(w, "%-10s %10s %12s %10s %10s\n", "FIFO depth", "loss", "utilization", "max queue", "mean queue")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %9.3f%% %12.3f %10d %10.2f\n",
			r.FIFODepth, 100*r.Result.LossFraction, r.Result.Utilization,
			r.Result.MaxQueue, r.Result.MeanQueue)
	}
	fmt.Fprintln(w, "reading: with no derandomizer, ~half the triggers die (ρ/(1+ρ) deadtime);")
	fmt.Fprintln(w, "a modest event FIFO recovers most of the §5.5 headline capacity, but at")
	fmt.Fprintln(w, "ρ≈0.99 losses fall slowly with depth — capacity headroom (e.g. the §6")
	fmt.Fprintln(w, "overlapped first pass, E11) matters more than buffering.")
	return nil
}
