package experiments

import (
	"fmt"
	"io"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// E13 quantifies the §6 claim that "the image patterns that cause this
// [corner case] do not arise in the relatively concave island shapes present
// in our target application": run the published algorithm over ensembles of
// realistic and adversarial workloads and count events whose labeling
// differs from the flood-fill golden model.

// IncidenceRow summarizes one workload ensemble.
type IncidenceRow struct {
	Workload  string
	Events    int
	Mismatch4 int // paper-mode 4-way events not isomorphic to golden
	Mismatch8 int // paper-mode 8-way events not isomorphic to golden
}

// CornerCaseIncidence labels `events` generated images per workload on a
// 43×43 camera and counts paper-mode mislabelings.
func CornerCaseIncidence(events int, seed uint64) ([]IncidenceRow, error) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(seed)
	workloads := []struct {
		name string
		gen  func() *grid.Grid
	}{
		{"showers", func() *grid.Grid { return cam.Shower(cam.TypicalShower(rng), rng) }},
		{"muon-rings", func() *grid.Grid { return cam.Ring(cam.TypicalMuonRing(rng), rng) }},
		{"blobs", func() *grid.Grid { return detector.RandomIslands(43, 43, 6, 1.6, rng) }},
		{"occupancy-30", func() *grid.Grid { return detector.RandomOccupancy(43, 43, 0.30, rng) }},
		{"occupancy-50", func() *grid.Grid { return detector.RandomOccupancy(43, 43, 0.50, rng) }},
	}
	golden := labeling.FloodFill{}
	out := make([]IncidenceRow, 0, len(workloads))
	for _, w := range workloads {
		row := IncidenceRow{Workload: w.name, Events: events}
		for e := 0; e < events; e++ {
			g := w.gen()
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				want, err := golden.Label(g, conn)
				if err != nil {
					return nil, err
				}
				res, err := ccl.Label(g, ccl.Options{
					Connectivity: conn,
					Mode:         ccl.ModePaper,
					// Safe capacity: E13 measures labeling fidelity, not the
					// E9 sizing overflow (occupancy-50 would overflow the
					// paper sizing otherwise).
					MergeTableCap: ccl.SizeFor(43, 43, conn),
				})
				if err != nil {
					return nil, err
				}
				if !res.Labels.Isomorphic(want) {
					if conn == grid.FourWay {
						row.Mismatch4++
					} else {
						row.Mismatch8++
					}
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteIncidence renders E13.
func WriteIncidence(w io.Writer) error {
	const events = 400
	rows, err := CornerCaseIncidence(events, 20260704)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E13: §6 corner-case incidence of the published algorithm, 43x43 camera")
	fmt.Fprintf(w, "%-14s %8s %18s %18s\n", "workload", "events", "4-way mislabeled", "8-way mislabeled")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %12d (%4.1f%%) %12d (%4.1f%%)\n",
			r.Workload, r.Events,
			r.Mismatch4, 100*float64(r.Mismatch4)/float64(r.Events),
			r.Mismatch8, 100*float64(r.Mismatch8)/float64(r.Events))
	}
	fmt.Fprintln(w, "reading: compact convex islands (blobs, and showers at ~1%) support the")
	fmt.Fprintln(w, "paper's in-practice claim — but thin concave shapes do not: muon rings, a")
	fmt.Fprintln(w, "routine IACT calibration workload, trigger the corner case in roughly a")
	fmt.Fprintln(w, "quarter of events, and dense occupancies mislabel under BOTH connectivities.")
	fmt.Fprintln(w, "This sharpens §6's own conclusion that the fix is needed for generality.")
	return nil
}
