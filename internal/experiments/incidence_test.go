package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCornerCaseIncidence(t *testing.T) {
	rows, err := CornerCaseIncidence(120, 99)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]IncidenceRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.Mismatch4 < 0 || r.Mismatch4 > r.Events || r.Mismatch8 < 0 || r.Mismatch8 > r.Events {
			t.Fatalf("row %+v out of range", r)
		}
	}
	// Compact convex blobs never trigger the corner case.
	if byName["blobs"].Mismatch4 != 0 || byName["blobs"].Mismatch8 != 0 {
		t.Errorf("blobs mislabeled: %+v", byName["blobs"])
	}
	// Showers rarely trigger it (the paper's in-practice claim).
	if r := byName["showers"]; r.Mismatch4 > r.Events/10 {
		t.Errorf("showers mislabeled too often: %+v", r)
	}
	// Muon rings — thin concave shapes — trigger it substantially.
	if r := byName["muon-rings"]; r.Mismatch4 <= r.Events/20 {
		t.Errorf("expected rings to trigger the corner case: %+v", r)
	}
	// Dense occupancy mislabels heavily under 4-way AND is not 8-way-safe.
	if r := byName["occupancy-50"]; r.Mismatch4 <= r.Events/2 || r.Mismatch8 == 0 {
		t.Errorf("occupancy-50 incidence unexpectedly low: %+v", r)
	}
}

func TestWriteIncidence(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIncidence(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E13", "muon-rings", "occupancy-50", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("E13 output missing %q", want)
		}
	}
}

func TestDeadtimeSweep(t *testing.T) {
	rows, err := DeadtimeSweep(15000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Loss must fall monotonically with FIFO depth; utilization must rise.
	for i := 1; i < len(rows); i++ {
		if rows[i].Result.LossFraction >= rows[i-1].Result.LossFraction {
			t.Fatalf("loss not decreasing at depth %d", rows[i].FIFODepth)
		}
		if rows[i].Result.Utilization <= rows[i-1].Result.Utilization {
			t.Fatalf("utilization not increasing at depth %d", rows[i].FIFODepth)
		}
	}
	// Zero-FIFO loss matches non-paralyzable deadtime ρ/(1+ρ) ≈ 0.497.
	if l := rows[0].Result.LossFraction; l < 0.45 || l > 0.55 {
		t.Fatalf("zero-FIFO loss = %.3f, want ≈0.5", l)
	}
	var buf bytes.Buffer
	if err := WriteDeadtime(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E14") {
		t.Fatal("E14 header missing")
	}
}
