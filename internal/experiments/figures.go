package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Figure regeneration. Fig 10 plots latency vs array size for 4-way and
// 8-way; Fig 11 plots FF and LUT scaling. Both derive from the Table 3/4
// data; the harness emits the series as CSV (for replotting) plus an ASCII
// rendering for terminal inspection.

// Fig10CSV writes the latency-scaling series: one row per array size with
// paper and model values for both connectivities.
func Fig10CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"size", "pixels",
		"latency_4way_paper", "latency_4way_model",
		"latency_8way_paper", "latency_8way_model",
	}); err != nil {
		return err
	}
	s4 := ScalingStudy(grid.FourWay)
	s8 := ScalingStudy(grid.EightWay)
	for i := range s4 {
		rec := []string{
			fmt.Sprintf("%dx%d", s4[i].Rows, s4[i].Cols),
			strconv.Itoa(s4[i].Rows * s4[i].Cols),
			strconv.FormatInt(s4[i].Paper.Latency, 10),
			strconv.FormatInt(s4[i].Model.LatencyCycles, 10),
			strconv.FormatInt(s8[i].Paper.Latency, 10),
			strconv.FormatInt(s8[i].Model.LatencyCycles, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig11CSV writes the FF/LUT-scaling series.
func Fig11CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"size", "pixels",
		"ff_4way_paper", "ff_4way_model", "ff_8way_paper", "ff_8way_model",
		"lut_4way_paper", "lut_4way_model", "lut_8way_paper", "lut_8way_model",
	}); err != nil {
		return err
	}
	s4 := ScalingStudy(grid.FourWay)
	s8 := ScalingStudy(grid.EightWay)
	for i := range s4 {
		rec := []string{
			fmt.Sprintf("%dx%d", s4[i].Rows, s4[i].Cols),
			strconv.Itoa(s4[i].Rows * s4[i].Cols),
			strconv.Itoa(s4[i].Paper.FF), strconv.Itoa(s4[i].Model.Usage.FF),
			strconv.Itoa(s8[i].Paper.FF), strconv.Itoa(s8[i].Model.Usage.FF),
			strconv.Itoa(s4[i].Paper.LUT), strconv.Itoa(s4[i].Model.Usage.LUT),
			strconv.Itoa(s8[i].Paper.LUT), strconv.Itoa(s8[i].Model.Usage.LUT),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// asciiSeries renders one named series as a horizontal bar chart scaled to
// its maximum, which is how the log-ish growth of Figs 10–11 reads in a
// terminal.
func asciiSeries(w io.Writer, title string, labels []string, values []float64) {
	fmt.Fprintln(w, title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		max = 1
	}
	const width = 50
	for i, v := range values {
		n := int(v / max * width)
		fmt.Fprintf(w, "  %-7s %10.0f |%s\n", labels[i], v, strings.Repeat("#", n))
	}
}

// WriteFig10 renders Fig 10 (latency scaling, 4-way vs 8-way) as ASCII bars
// for the model series, annotated with the paper values.
func WriteFig10(w io.Writer) error {
	fmt.Fprintln(w, "Fig 10: Latency scaling of the fully optimized pipelined design")
	labels := make([]string, 0, len(ScalingSizes))
	var m4, m8 []float64
	for _, sz := range ScalingSizes {
		labels = append(labels, fmt.Sprintf("%dx%d", sz[0], sz[1]))
	}
	s4 := ScalingStudy(grid.FourWay)
	s8 := ScalingStudy(grid.EightWay)
	for i := range s4 {
		m4 = append(m4, float64(s4[i].Model.LatencyCycles))
		m8 = append(m8, float64(s8[i].Model.LatencyCycles))
	}
	asciiSeries(w, "4-way latency (cycles, model)", labels, m4)
	asciiSeries(w, "8-way latency (cycles, model)", labels, m8)
	fmt.Fprintln(w, "(CSV series incl. paper values: experiments fig10 --csv)")
	return nil
}

// WriteFig11 renders Fig 11 (FF and LUT scaling).
func WriteFig11(w io.Writer) error {
	fmt.Fprintln(w, "Fig 11: FF and LUT scaling, pipelined design")
	labels := make([]string, 0, len(ScalingSizes))
	for _, sz := range ScalingSizes {
		labels = append(labels, fmt.Sprintf("%dx%d", sz[0], sz[1]))
	}
	s4 := ScalingStudy(grid.FourWay)
	s8 := ScalingStudy(grid.EightWay)
	var ff4, ff8, lut4, lut8 []float64
	for i := range s4 {
		ff4 = append(ff4, float64(s4[i].Model.Usage.FF))
		ff8 = append(ff8, float64(s8[i].Model.Usage.FF))
		lut4 = append(lut4, float64(s4[i].Model.Usage.LUT))
		lut8 = append(lut8, float64(s8[i].Model.Usage.LUT))
	}
	asciiSeries(w, "FF 4-way (model)", labels, ff4)
	asciiSeries(w, "FF 8-way (model)", labels, ff8)
	asciiSeries(w, "LUT 4-way (model)", labels, lut4)
	asciiSeries(w, "LUT 8-way (model)", labels, lut8)
	fmt.Fprintln(w, "(CSV series incl. paper values: experiments fig11 --csv)")
	return nil
}
