package experiments

import (
	"fmt"
	"io"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Experiment is one regenerable table/figure/claim of the paper.
type Experiment struct {
	// ID is the short name used on the command line (e.g. "table1").
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run writes the paper-vs-model comparison to w.
	Run func(w io.Writer) error
}

// All returns every experiment in DESIGN.md index order (E1–E10).
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: optimization stages, 8x10, 4-way", func(w io.Writer) error {
			return WriteStageStudy(w, grid.FourWay)
		}},
		{"table2", "Table 2: optimization stages, 8x10, 8-way", func(w io.Writer) error {
			return WriteStageStudy(w, grid.EightWay)
		}},
		{"table3", "Table 3: scalability, pipelined, 4-way", func(w io.Writer) error {
			return WriteScalingStudy(w, grid.FourWay)
		}},
		{"table4", "Table 4: scalability, pipelined, 8-way", func(w io.Writer) error {
			return WriteScalingStudy(w, grid.EightWay)
		}},
		{"fig10", "Fig 10: latency scaling, 4-way vs 8-way", WriteFig10},
		{"fig11", "Fig 11: FF/LUT scaling", WriteFig11},
		{"throughput", "§5.5 throughput claims (15 kHz at 43x43; 30 fps max sizes)", WriteThroughput},
		{"fig12", "Fig 12: false stream dependency, single-write rewrite", WriteFalseDependency},
		{"cornercase", "§6 corner case + merge-table sizing findings", WriteCornerCase},
		{"cta", "§2 motivation: FPGA pipeline vs reported CTA/ADAPT numbers", WriteCTAComparison},
		{"variants", "E11 (§6 future work): 1.5-pass vs two-pass vs single-pass", WritePassStrategies},
		{"tiled", "E12 (§6 future work): tiled processing bounds merge-table growth", WriteTiled},
		{"incidence", "E13: corner-case incidence on realistic vs adversarial workloads", WriteIncidence},
		{"deadtime", "E14: Poisson trigger deadtime vs derandomizer FIFO depth", WriteDeadtime},
	}
}

// ByID looks an experiment up by its command-line name.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order, separated by blank lines.
func RunAll(w io.Writer) error {
	for i, e := range All() {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
	}
	return nil
}
