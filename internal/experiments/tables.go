package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/hls/resource"
)

// StageComparison pairs one optimization-stage row with its published values.
type StageComparison struct {
	Stage design.Stage
	Paper PaperStageRow
	Model resource.Report
}

// StageStudy regenerates Table 1 (4-way) or Table 2 (8-way): the four
// optimization stages on the 8×10 array.
func StageStudy(conn grid.Connectivity) []StageComparison {
	paper := Table1Paper
	if conn == grid.EightWay {
		paper = Table2Paper
	}
	out := make([]StageComparison, 0, len(paper))
	for _, p := range paper {
		out = append(out, StageComparison{
			Stage: p.Stage,
			Paper: p,
			Model: reportFor(p.Stage, conn, 8, 10),
		})
	}
	return out
}

// ScalingComparison pairs one scalability row with its published values.
type ScalingComparison struct {
	Rows, Cols int
	Paper      PaperScalingRow
	Model      resource.Report
}

// ScalingStudy regenerates Table 3 (4-way) or Table 4 (8-way): the pipelined
// design across array sizes, with % utilization on the Kintex-7 target.
func ScalingStudy(conn grid.Connectivity) []ScalingComparison {
	paper := paperScalingFor(conn)
	out := make([]ScalingComparison, 0, len(paper))
	for _, p := range paper {
		out = append(out, ScalingComparison{
			Rows: p.Rows, Cols: p.Cols,
			Paper: p,
			Model: reportFor(design.StagePipelined, conn, p.Rows, p.Cols),
		})
	}
	return out
}

// reportFor builds the synthesis report for a configuration without running
// an event through it (tables are data-independent worst cases).
func reportFor(stage design.Stage, conn grid.Connectivity, rows, cols int) resource.Report {
	lat := design.Latency(stage, conn, rows, cols)
	return resource.Report{
		Design:        "island_detection_2d",
		Stage:         stage.String(),
		Connectivity:  conn,
		Rows:          rows,
		Cols:          cols,
		LatencyCycles: lat,
		II:            lat,
		InnerII:       design.InnerII(stage, false),
		Usage:         design.Resources(stage, conn, rows, cols),
		ClockMHz:      design.ClockMHz,
	}
}

// pctDiff returns the signed relative difference model-vs-paper in percent.
func pctDiff(model, paper float64) float64 {
	if paper == 0 {
		return 0
	}
	return (model - paper) / paper * 100
}

func fmtDelta(model, paper float64) string {
	d := pctDiff(model, paper)
	if d == 0 {
		return "exact"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

// WriteStageStudy renders Table 1/2 with paper-vs-model columns.
func WriteStageStudy(w io.Writer, conn grid.Connectivity) error {
	table := "Table 1"
	if conn == grid.EightWay {
		table = "Table 2"
	}
	fmt.Fprintf(w, "%s: Island Detection Results for Size 8x10 (%s)\n", table, conn)
	fmt.Fprintf(w, "%-13s %23s %17s %19s %19s\n", "Stage", "Latency=II (ppr/mdl)", "BRAM (ppr/mdl)", "FF (ppr/mdl)", "LUT (ppr/mdl)")
	for _, row := range StageStudy(conn) {
		fmt.Fprintf(w, "%-13s %8d /%8d %6s  %4d /%4d %6s  %6d /%6d %6s %6d /%6d %6s\n",
			row.Stage,
			row.Paper.Latency, row.Model.LatencyCycles, fmtDelta(float64(row.Model.LatencyCycles), float64(row.Paper.Latency)),
			row.Paper.BRAM, row.Model.Usage.BRAM18K, fmtDelta(float64(row.Model.Usage.BRAM18K), float64(row.Paper.BRAM)),
			row.Paper.FF, row.Model.Usage.FF, fmtDelta(float64(row.Model.Usage.FF), float64(row.Paper.FF)),
			row.Paper.LUT, row.Model.Usage.LUT, fmtDelta(float64(row.Model.Usage.LUT), float64(row.Paper.LUT)))
	}
	return nil
}

// WriteScalingStudy renders Table 3/4 with paper-vs-model columns and the
// device utilization percentages.
func WriteScalingStudy(w io.Writer, conn grid.Connectivity) error {
	table := "Table 3"
	if conn == grid.EightWay {
		table = "Table 4"
	}
	dev := resource.KintexXC7K325T
	fmt.Fprintf(w, "%s: Scalability Analysis (%s Connectivity), pipelined design on %s\n",
		table, conn, dev.Name)
	fmt.Fprintf(w, "%-7s %22s %15s %22s %22s\n",
		"Size", "Latency=II (ppr/mdl)", "BRAM (ppr/mdl)", "FF (ppr/mdl/%)", "LUT (ppr/mdl/%)")
	for _, row := range ScalingStudy(conn) {
		fmt.Fprintf(w, "%-7s %8d /%8d %5s %4d /%4d %5s %7d /%7d %3d%% %5s %6d /%6d %3d%% %5s\n",
			fmt.Sprintf("%dx%d", row.Rows, row.Cols),
			row.Paper.Latency, row.Model.LatencyCycles, fmtDelta(float64(row.Model.LatencyCycles), float64(row.Paper.Latency)),
			row.Paper.BRAM, row.Model.Usage.BRAM18K, fmtDelta(float64(row.Model.Usage.BRAM18K), float64(row.Paper.BRAM)),
			row.Paper.FF, row.Model.Usage.FF, dev.PctFF(row.Model.Usage.FF),
			fmtDelta(float64(row.Model.Usage.FF), float64(row.Paper.FF)),
			row.Paper.LUT, row.Model.Usage.LUT, dev.PctLUT(row.Model.Usage.LUT),
			fmtDelta(float64(row.Model.Usage.LUT), float64(row.Paper.LUT)))
	}
	return nil
}

// MaxAbsLatencyError returns the largest |relative latency error| across a
// scaling study, used by tests to bound model drift.
func MaxAbsLatencyError(conn grid.Connectivity) float64 {
	worst := 0.0
	for _, row := range ScalingStudy(conn) {
		if d := math.Abs(pctDiff(float64(row.Model.LatencyCycles), float64(row.Paper.Latency))); d > worst {
			worst = d
		}
	}
	return worst
}
