package experiments

import (
	"fmt"
	"io"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// E11/E12: the §6 future-work directions, implemented and evaluated.
// The paper publishes no numbers for these; the tables below are this
// reproduction's model estimates, built with the same conventions that
// regenerate Tables 1–4.

// PassStrategyRow compares the three pass structures at one size.
type PassStrategyRow struct {
	Rows, Cols int
	Latency    map[design.PassStrategy]int64
	FF         map[design.PassStrategy]int
	LUT        map[design.PassStrategy]int
}

// PassStrategyStudy evaluates 1.5-pass vs two-pass vs single-pass across the
// paper's sizes for one connectivity.
func PassStrategyStudy(conn grid.Connectivity) []PassStrategyRow {
	strategies := []design.PassStrategy{design.PassOneAndHalf, design.PassTwo, design.PassSingle}
	rows := make([]PassStrategyRow, 0, len(ScalingSizes))
	for _, sz := range ScalingSizes {
		row := PassStrategyRow{
			Rows: sz[0], Cols: sz[1],
			Latency: map[design.PassStrategy]int64{},
			FF:      map[design.PassStrategy]int{},
			LUT:     map[design.PassStrategy]int{},
		}
		for _, s := range strategies {
			cfg := design.VariantConfig{Rows: sz[0], Cols: sz[1], Connectivity: conn, Strategy: s}
			row.Latency[s] = design.VariantLatency(cfg)
			u := design.VariantResources(cfg)
			row.FF[s] = u.FF
			row.LUT[s] = u.LUT
		}
		rows = append(rows, row)
	}
	return rows
}

// WritePassStrategies renders E11.
func WritePassStrategies(w io.Writer) error {
	fmt.Fprintln(w, "E11 (§6 future work): pass-strategy comparison, pipelined substrate")
	fmt.Fprintln(w, "  (model estimates — the paper names these directions without numbers)")
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		fmt.Fprintf(w, "%s:\n%-7s %28s %28s\n", conn, "Size",
			"Latency (1.5 / two / single)", "FF (1.5 / two / single)")
		for _, row := range PassStrategyStudy(conn) {
			fmt.Fprintf(w, "%-7s %9d /%8d /%8d %9d /%8d /%8d\n",
				fmt.Sprintf("%dx%d", row.Rows, row.Cols),
				row.Latency[design.PassOneAndHalf], row.Latency[design.PassTwo], row.Latency[design.PassSingle],
				row.FF[design.PassOneAndHalf], row.FF[design.PassTwo], row.FF[design.PassSingle])
		}
	}
	fmt.Fprintln(w, "summary: 1.5-pass wins on latency under 4-way everywhere; under 8-way the")
	fmt.Fprintln(w, "single-pass variant edges it (no resolve loop, diagonal merges absorbed in")
	fmt.Fprintln(w, "its II=2 scan) at a 25%+ FF/LUT premium — the trade §3/§6 describe.")
	fmt.Fprintln(w, "bonus: the flat-table single-pass variant is immune to the §6 corner case.")
	return nil
}

// TiledRow is one row of E12: hierarchical labeling at one image size.
type TiledRow struct {
	Side            int
	MonolithicMT    int
	TileBoundMT     int
	MeasuredTileMax int
	Islands         int
	BoundaryUnions  int
}

// TiledStudy evaluates the §6 tiled-processing direction: how the per-engine
// merge-table requirement stops growing with image size.
func TiledStudy(tile int) ([]TiledRow, error) {
	rng := detector.NewRNG(2027)
	var rows []TiledRow
	for _, side := range []int{16, 32, 64, 128} {
		g := detector.RandomIslands(side, side, side*side/64, 1.6, rng)
		res, err := ccl.LabelTiled(g, ccl.TiledOptions{
			Connectivity: grid.FourWay, TileRows: tile, TileCols: tile,
		})
		if err != nil {
			return nil, err
		}
		// Cross-check against the monolithic labeler.
		mono, err := ccl.Label(g, ccl.Options{
			Connectivity:  grid.FourWay,
			MergeTableCap: ccl.SizeFor(side, side, grid.FourWay),
		})
		if err != nil {
			return nil, err
		}
		if !res.Labels.Isomorphic(mono.Labels) {
			return nil, fmt.Errorf("experiments: tiled labeling diverged at side %d", side)
		}
		rows = append(rows, TiledRow{
			Side:            side,
			MonolithicMT:    ccl.SizeForPaper(side, side),
			TileBoundMT:     ccl.SizeFor(tile, tile, grid.FourWay),
			MeasuredTileMax: res.MaxTileGroups,
			Islands:         res.Islands,
			BoundaryUnions:  res.BoundaryUnions,
		})
	}
	return rows, nil
}

// WriteTiled renders E12.
func WriteTiled(w io.Writer) error {
	const tile = 8
	rows, err := TiledStudy(tile)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E12 (§6 future work): tiled processing, %dx%d tiles, 4-way\n", tile, tile)
	fmt.Fprintf(w, "%-7s %14s %14s %16s %9s %10s\n",
		"Size", "monolithic MT", "tile bound", "measured max/tile", "islands", "boundary∪")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %14d %14d %16d %9d %10d\n",
			fmt.Sprintf("%dx%d", r.Side, r.Side),
			r.MonolithicMT, r.TileBoundMT, r.MeasuredTileMax, r.Islands, r.BoundaryUnions)
	}
	fmt.Fprintln(w, "summary: the monolithic merge table grows with the image (the §5.5 BRAM")
	fmt.Fprintln(w, "scaling driver), while the per-tile requirement is a constant set by the")
	fmt.Fprintln(w, "tile shape — the growth-limiting effect §6 proposes. Every tiled labeling")
	fmt.Fprintln(w, "is verified label-isomorphic to the monolithic one.")
	return nil
}
