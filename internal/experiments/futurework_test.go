package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func TestPassStrategyStudyShape(t *testing.T) {
	rows := PassStrategyStudy(grid.FourWay)
	if len(rows) != len(ScalingSizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// 4-way: published strategy fastest; two-pass slowest on latency.
		l15 := r.Latency[design.PassOneAndHalf]
		if l15 >= r.Latency[design.PassTwo] || l15 >= r.Latency[design.PassSingle] {
			t.Errorf("%dx%d: 1.5-pass not fastest: %v", r.Rows, r.Cols, r.Latency)
		}
		// Single-pass costs the most FF at every size.
		if r.FF[design.PassSingle] <= r.FF[design.PassOneAndHalf] {
			t.Errorf("%dx%d: single-pass FF premium missing", r.Rows, r.Cols)
		}
	}
}

func TestTiledStudyBoundsGrowth(t *testing.T) {
	rows, err := TiledStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	bound := rows[0].TileBoundMT
	for i, r := range rows {
		if r.TileBoundMT != bound {
			t.Fatal("tile bound must be size-independent")
		}
		if r.MeasuredTileMax > bound {
			t.Fatalf("measured per-tile groups %d exceed bound %d", r.MeasuredTileMax, bound)
		}
		if i > 0 && r.MonolithicMT <= rows[i-1].MonolithicMT {
			t.Fatal("monolithic merge table must grow with image size")
		}
	}
	// At 128x128 the monolithic table is far beyond the constant tile bound.
	last := rows[len(rows)-1]
	if last.MonolithicMT < 40*last.TileBoundMT {
		t.Fatalf("expected dramatic growth gap: %d vs %d", last.MonolithicMT, last.TileBoundMT)
	}
}

func TestFutureWorkWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePassStrategies(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E11", "4-way", "8-way", "single-pass"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("E11 output missing %q", want)
		}
	}
	buf.Reset()
	if err := WriteTiled(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E12", "128x128", "isomorphic"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("E12 output missing %q", want)
		}
	}
}
