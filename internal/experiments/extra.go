package experiments

import (
	"fmt"
	"io"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

// ThroughputResult carries the §5.5 headline throughput numbers (E7).
type ThroughputResult struct {
	// LST43x43EventsPerSec is the 4-way pipelined event rate at 43×43.
	LST43x43EventsPerSec float64
	// LST43x43EventsPerSec8 is the 8-way counterpart.
	LST43x43EventsPerSec8 float64
	// MaxSide30FPS4 and MaxSide30FPS8 are the largest square arrays the
	// pipelined designs sustain at 30 fps under ideal scaling.
	MaxSide30FPS4, MaxSide30FPS8 int
}

// Throughput computes E7.
func Throughput() ThroughputResult {
	res := ThroughputResult{
		LST43x43EventsPerSec:  eventsPerSec(design.Latency(design.StagePipelined, grid.FourWay, 43, 43)),
		LST43x43EventsPerSec8: eventsPerSec(design.Latency(design.StagePipelined, grid.EightWay, 43, 43)),
	}
	res.MaxSide30FPS4 = maxSideAt30FPS(grid.FourWay)
	res.MaxSide30FPS8 = maxSideAt30FPS(grid.EightWay)
	return res
}

func eventsPerSec(cycles int64) float64 {
	return design.ClockMHz * 1e6 / float64(cycles)
}

func maxSideAt30FPS(conn grid.Connectivity) int {
	budget := int64(design.ClockMHz*1e6) / 30
	lo, hi := 1, 4000
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if design.Latency(design.StagePipelined, conn, mid, mid) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// WriteThroughput renders E7 with the paper's claims alongside.
func WriteThroughput(w io.Writer) error {
	r := Throughput()
	fmt.Fprintln(w, "E7: throughput claims (§5.5), pipelined design @ 100 MHz")
	fmt.Fprintf(w, "  43x43 4-way: %8.0f events/s  (paper: ≥15,000 — %.0f from 6668 cycles)\n",
		r.LST43x43EventsPerSec, 1e8/6668.0)
	fmt.Fprintf(w, "  43x43 8-way: %8.0f events/s  (paper: %.0f from 7664 cycles)\n",
		r.LST43x43EventsPerSec8, 1e8/7664.0)
	fmt.Fprintf(w, "  max square at 30 fps, 4-way: %4d  (paper: %d)\n", r.MaxSide30FPS4, Paper30FPSMaxSide4)
	fmt.Fprintf(w, "  max square at 30 fps, 8-way: %4d  (paper: %d)\n", r.MaxSide30FPS8, Paper30FPSMaxSide8)
	return nil
}

// FalseDependencyResult carries E8: the Fig 12 single-write rewrite.
type FalseDependencyResult struct {
	SingleWriteLatency, DualWriteLatency int64
	SingleWriteII, DualWriteII           int64
	FunctionallyIdentical                bool
}

// FalseDependency runs E8 on a generated workload.
func FalseDependency() (FalseDependencyResult, error) {
	rng := detector.NewRNG(42)
	g := detector.RandomIslands(8, 10, 4, 1.4, rng)
	// Paper merge-table sizing so latencies line up with Table 1 (the
	// sparse blob workload cannot overflow it).
	base := design.Config{
		Rows: 8, Cols: 10, Connectivity: grid.FourWay, Stage: design.StagePipelined,
	}
	single, err := design.Run(g, base)
	if err != nil {
		return FalseDependencyResult{}, err
	}
	dualCfg := base
	dualCfg.DualWriteStreams = true
	dual, err := design.Run(g, dualCfg)
	if err != nil {
		return FalseDependencyResult{}, err
	}
	return FalseDependencyResult{
		SingleWriteLatency:    single.Report.LatencyCycles,
		DualWriteLatency:      dual.Report.LatencyCycles,
		SingleWriteII:         single.Report.InnerII,
		DualWriteII:           dual.Report.InnerII,
		FunctionallyIdentical: single.Labels.Equal(dual.Labels),
	}, nil
}

// WriteFalseDependency renders E8.
func WriteFalseDependency(w io.Writer) error {
	r, err := FalseDependency()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E8: false memory dependency on stream_top (Fig 12), 8x10 4-way pipelined")
	fmt.Fprintf(w, "  dual-write pattern:   inner II=%d, latency %d cycles\n", r.DualWriteII, r.DualWriteLatency)
	fmt.Fprintf(w, "  single-write rewrite: inner II=%d, latency %d cycles\n", r.SingleWriteII, r.SingleWriteLatency)
	fmt.Fprintf(w, "  functionally identical: %v\n", r.FunctionallyIdentical)
	return nil
}

// CornerCaseResult carries E9: the §6 corner case and sizing findings.
type CornerCaseResult struct {
	// FourWaySplit reports the paper-mode island count on the 4-way trigger
	// pattern (true components: 1).
	FourWaySplit int
	// FixedCorrect reports whether the fixed update labels it correctly.
	FixedCorrect bool
	// EightWaySplit is the island count on the 8-way trigger pattern —
	// the reproduction finding that the corner case is NOT 4-way-only.
	EightWaySplit int
	// PaperSizingOverflows4Way reports whether the published merge-table
	// sizing overflows on the 4-way checkerboard worst case.
	PaperSizingOverflows4Way bool
}

// CornerCase runs E9.
func CornerCase() (CornerCaseResult, error) {
	var res CornerCaseResult
	g4 := grid.MustParse("#..#.\n#.##.\n###..")
	p4, err := ccl.Label(g4, ccl.Options{Connectivity: grid.FourWay, Mode: ccl.ModePaper})
	if err != nil {
		return res, err
	}
	res.FourWaySplit = p4.Islands
	f4, err := ccl.Label(g4, ccl.Options{Connectivity: grid.FourWay, Mode: ccl.ModeFixed})
	if err != nil {
		return res, err
	}
	golden, err := labeling.FloodFill{}.Label(g4, grid.FourWay)
	if err != nil {
		return res, err
	}
	res.FixedCorrect = f4.Labels.Isomorphic(golden)

	g8 := grid.MustParse("#...#\n#.##.\n##...")
	p8, err := ccl.Label(g8, ccl.Options{Connectivity: grid.EightWay, Mode: ccl.ModePaper})
	if err != nil {
		return res, err
	}
	res.EightWaySplit = p8.Islands

	_, err = ccl.Label(detector.Checkerboard(8, 10), ccl.Options{
		Connectivity:  grid.FourWay,
		MergeTableCap: ccl.SizeForPaper(8, 10),
	})
	res.PaperSizingOverflows4Way = err != nil
	return res, nil
}

// WriteCornerCase renders E9.
func WriteCornerCase(w io.Writer) error {
	r, err := CornerCase()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E9: §6 corner case — unresolved transitive merge chains")
	fmt.Fprintf(w, "  4-way trigger pattern: paper algorithm finds %d islands (truth: 1); fixed update correct: %v\n",
		r.FourWaySplit, r.FixedCorrect)
	fmt.Fprintf(w, "  8-way trigger pattern: paper algorithm finds %d islands (truth: 1)\n", r.EightWaySplit)
	fmt.Fprintln(w, "    → reproduction finding: the corner case also arises under 8-way on")
	fmt.Fprintln(w, "      adversarial concave patterns; the paper's 8-way immunity is empirical")
	fmt.Fprintln(w, "      for its instruments' island shapes, not categorical.")
	fmt.Fprintf(w, "  paper merge-table sizing overflows on 4-way checkerboard: %v\n", r.PaperSizingOverflows4Way)
	fmt.Fprintln(w, "    → ⌈R/2⌉·⌈C/2⌉ is the 8-way worst case; 4-way needs ⌈R·C/2⌉.")
	return nil
}

// CTAComparisonResult carries E10: FPGA pipeline vs the reported CTA CPU
// cluster numbers.
type CTAComparisonResult struct {
	FPGAEventsPerSec      float64
	Bottleneck            string
	CPUServerEventsPerSec float64
	DL1DL2EventsPerSec    float64
	ADAPTEventsPerSec     float64
}

// CTAComparison runs E10.
func CTAComparison() (CTAComparisonResult, error) {
	cta, err := adapt.New(adapt.DefaultCTA())
	if err != nil {
		return CTAComparisonResult{}, err
	}
	ad, err := adapt.New(adapt.DefaultADAPT())
	if err != nil {
		return CTAComparisonResult{}, err
	}
	return CTAComparisonResult{
		FPGAEventsPerSec:      cta.EventsPerSecond(),
		Bottleneck:            cta.Bottleneck(),
		CPUServerEventsPerSec: PaperCTAThreadEventsPerSec * PaperCTAThreadsPerServer,
		DL1DL2EventsPerSec:    1 / PaperCTADL1DL2SecondsPerEvent,
		ADAPTEventsPerSec:     ad.EventsPerSecond(),
	}, nil
}

// WriteCTAComparison renders E10.
func WriteCTAComparison(w io.Writer) error {
	r, err := CTAComparison()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E10: motivation numbers (§2)")
	fmt.Fprintf(w, "  CTA CPU cluster, R0→DL1 per server: %6.0f events/s (8 × 1.25 kHz, reported)\n", r.CPUServerEventsPerSec)
	fmt.Fprintf(w, "  CTA CPU cluster, DL1→DL2:           %6.0f events/s (1.3 ms/event, reported)\n", r.DL1DL2EventsPerSec)
	fmt.Fprintf(w, "  CTA target:                         %6d events/s\n", PaperCTATargetEventsPerSec)
	fmt.Fprintf(w, "  this FPGA pipeline (43x43, 4-way):  %6.0f events/s (bottleneck: %s)\n", r.FPGAEventsPerSec, r.Bottleneck)
	fmt.Fprintf(w, "  ADAPT 1D pipeline:                  %6.0f events/s (paper: ~%d)\n", r.ADAPTEventsPerSec, PaperADAPTEventsPerSec)
	return nil
}
