// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from this reproduction's designs and compares each cell
// against the published value. It is the engine behind cmd/experiments and
// the root-level benchmarks, and the source of record for EXPERIMENTS.md.
package experiments

import (
	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// PaperStageRow is one published row of Table 1 or Table 2.
type PaperStageRow struct {
	Stage   design.Stage
	Latency int64 // the tables report II = Latency
	BRAM    int
	FF      int
	LUT     int
}

// Table1Paper is the published Table 1: size 8×10, 4-way connectivity.
var Table1Paper = []PaperStageRow{
	{design.StageBaseline, 998, 4, 1076, 2257},
	{design.StageBindStorage, 1158, 7, 1014, 2303},
	{design.StageUnrolled, 1018, 5, 1068, 2629},
	{design.StagePipelined, 340, 5, 4229, 4096},
}

// Table2Paper is the published Table 2: size 8×10, 8-way connectivity.
var Table2Paper = []PaperStageRow{
	{design.StageBaseline, 1398, 4, 1196, 2746},
	{design.StageBindStorage, 1718, 7, 1200, 2863},
	{design.StageUnrolled, 1578, 5, 1254, 3189},
	{design.StagePipelined, 406, 3, 7041, 6583},
}

// PaperScalingRow is one published row of Table 3 or Table 4.
type PaperScalingRow struct {
	Rows, Cols int
	Latency    int64
	BRAM       int
	FF         int
	FFPct      int
	LUT        int
	LUTPct     int
}

// ScalingSizes are the array sizes of the §5.5 scalability study.
var ScalingSizes = [][2]int{{8, 10}, {16, 16}, {24, 24}, {32, 32}, {43, 43}, {64, 64}}

// Table3Paper is the published Table 3: pipelined design, 4-way.
var Table3Paper = []PaperScalingRow{
	{8, 10, 340, 5, 4229, 1, 4096, 2},
	{16, 16, 956, 5, 9885, 2, 6003, 2},
	{24, 24, 2076, 21, 19682, 4, 10133, 4},
	{32, 32, 3644, 21, 34029, 8, 15485, 7},
	{43, 43, 6668, 23, 63358, 15, 26416, 12},
	{64, 64, 14396, 28, 132369, 32, 41588, 20},
}

// Table4Paper is the published Table 4: pipelined design, 8-way.
var Table4Paper = []PaperScalingRow{
	{8, 10, 406, 3, 7041, 1, 6583, 3},
	{16, 16, 1365, 3, 15631, 3, 10031, 4},
	{24, 24, 2392, 25, 30303, 7, 17128, 8},
	{32, 32, 5208, 25, 51989, 12, 26860, 13},
	{43, 43, 7664, 25, 95729, 23, 46001, 22},
	{64, 64, 20570, 32, 199694, 48, 75641, 37},
}

// Published headline claims of §2 and §5.5 used by the throughput and CTA
// experiments.
const (
	// PaperCTATargetEventsPerSec is CTA's real-time analysis goal.
	PaperCTATargetEventsPerSec = 15000
	// PaperCTAThreadEventsPerSec is the reported per-thread R0→DL1 rate of
	// the CPU cluster (1.25 kHz), 8 threads per server.
	PaperCTAThreadEventsPerSec = 1250
	PaperCTAThreadsPerServer   = 8
	// PaperCTADL1DL2SecondsPerEvent is the reported DL1→DL2 processing time.
	PaperCTADL1DL2SecondsPerEvent = 1.3e-3
	// PaperADAPTEventsPerSec is the ADAPT prototype pipeline's reported rate.
	PaperADAPTEventsPerSec = 300000
	// Paper30FPSMaxSide4 and Paper30FPSMaxSide8 are the §5.5 ideal-scaling
	// claims: the largest square arrays sustainable at 30 fps.
	Paper30FPSMaxSide4 = 975
	Paper30FPSMaxSide8 = 813
)

// paperScalingFor returns the published scaling table for a connectivity.
func paperScalingFor(conn grid.Connectivity) []PaperScalingRow {
	if conn == grid.EightWay {
		return Table4Paper
	}
	return Table3Paper
}
