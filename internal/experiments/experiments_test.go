package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/design"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func TestStageStudyExactWhereCalibrated(t *testing.T) {
	// Table 1 (4-way) must reproduce every cell exactly.
	for _, row := range StageStudy(grid.FourWay) {
		if row.Model.LatencyCycles != row.Paper.Latency {
			t.Errorf("T1 %v latency %d != paper %d", row.Stage, row.Model.LatencyCycles, row.Paper.Latency)
		}
		if row.Model.Usage.BRAM18K != row.Paper.BRAM ||
			row.Model.Usage.FF != row.Paper.FF ||
			row.Model.Usage.LUT != row.Paper.LUT {
			t.Errorf("T1 %v resources %+v != paper %+v", row.Stage, row.Model.Usage, row.Paper)
		}
	}
	// Table 2: serialized stages exact; pipelined deviates only in the
	// documented latency/BRAM cells.
	for _, row := range StageStudy(grid.EightWay) {
		if row.Stage != design.StagePipelined {
			if row.Model.LatencyCycles != row.Paper.Latency {
				t.Errorf("T2 %v latency %d != paper %d", row.Stage, row.Model.LatencyCycles, row.Paper.Latency)
			}
			continue
		}
		if row.Model.Usage.FF != row.Paper.FF || row.Model.Usage.LUT != row.Paper.LUT {
			t.Errorf("T2 pipelined FF/LUT %+v != paper %+v", row.Model.Usage, row.Paper)
		}
		if d := math.Abs(float64(row.Model.LatencyCycles-row.Paper.Latency)) / float64(row.Paper.Latency); d > 0.25 {
			t.Errorf("T2 pipelined latency drifts %.0f%%", d*100)
		}
	}
}

func TestScalingLatencyErrorBounds(t *testing.T) {
	// 4-way: within 1.5% everywhere (exact at even sizes).
	if e := MaxAbsLatencyError(grid.FourWay); e > 1.5 {
		t.Errorf("4-way max latency error %.2f%% > 1.5%%", e)
	}
	// 8-way: within 25% (the paper's own tool-noise sizes dominate).
	if e := MaxAbsLatencyError(grid.EightWay); e > 25 {
		t.Errorf("8-way max latency error %.2f%% > 25%%", e)
	}
}

func TestScalingShapePreserved(t *testing.T) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		rows := ScalingStudy(conn)
		for i := 1; i < len(rows); i++ {
			if rows[i].Model.LatencyCycles <= rows[i-1].Model.LatencyCycles {
				t.Errorf("%v latency not increasing at %dx%d", conn, rows[i].Rows, rows[i].Cols)
			}
			if rows[i].Model.Usage.FF <= rows[i-1].Model.Usage.FF {
				t.Errorf("%v FF not increasing at %dx%d", conn, rows[i].Rows, rows[i].Cols)
			}
			if rows[i].Model.Usage.BRAM18K < rows[i-1].Model.Usage.BRAM18K {
				t.Errorf("%v BRAM decreasing at %dx%d", conn, rows[i].Rows, rows[i].Cols)
			}
		}
		// Who-wins: 8-way always costs more latency than 4-way.
	}
	s4, s8 := ScalingStudy(grid.FourWay), ScalingStudy(grid.EightWay)
	for i := range s4 {
		if s8[i].Model.LatencyCycles <= s4[i].Model.LatencyCycles {
			t.Errorf("8-way not slower at %dx%d", s4[i].Rows, s4[i].Cols)
		}
	}
}

func TestThroughputMatchesPaperClaims(t *testing.T) {
	r := Throughput()
	if r.LST43x43EventsPerSec < 15000 {
		t.Errorf("43x43 4-way = %.0f events/s, paper claims ≥15k", r.LST43x43EventsPerSec)
	}
	if math.Abs(float64(r.MaxSide30FPS4-Paper30FPSMaxSide4)) > 15 {
		t.Errorf("30fps 4-way max side %d, paper %d", r.MaxSide30FPS4, Paper30FPSMaxSide4)
	}
	if math.Abs(float64(r.MaxSide30FPS8-Paper30FPSMaxSide8)) > 15 {
		t.Errorf("30fps 8-way max side %d, paper %d", r.MaxSide30FPS8, Paper30FPSMaxSide8)
	}
}

func TestFalseDependencyExperiment(t *testing.T) {
	r, err := FalseDependency()
	if err != nil {
		t.Fatal(err)
	}
	if !r.FunctionallyIdentical {
		t.Error("rewrite must not change labels")
	}
	if r.SingleWriteII != 1 || r.DualWriteII != 2 {
		t.Errorf("II = %d/%d, want 1/2", r.SingleWriteII, r.DualWriteII)
	}
	if r.DualWriteLatency <= r.SingleWriteLatency {
		t.Error("dual-write must be slower")
	}
}

func TestCornerCaseExperiment(t *testing.T) {
	r, err := CornerCase()
	if err != nil {
		t.Fatal(err)
	}
	if r.FourWaySplit != 2 || r.EightWaySplit != 2 {
		t.Errorf("splits = %d/%d, want 2/2", r.FourWaySplit, r.EightWaySplit)
	}
	if !r.FixedCorrect {
		t.Error("fixed update must be correct")
	}
	if !r.PaperSizingOverflows4Way {
		t.Error("paper sizing must overflow on the 4-way checkerboard")
	}
}

func TestCTAComparisonExperiment(t *testing.T) {
	r, err := CTAComparison()
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUServerEventsPerSec != 10000 {
		t.Errorf("CPU server rate = %v, want 10000", r.CPUServerEventsPerSec)
	}
	if r.FPGAEventsPerSec < 15000 {
		t.Errorf("FPGA rate = %v, want ≥ 15000", r.FPGAEventsPerSec)
	}
	if r.ADAPTEventsPerSec < 280e3 || r.ADAPTEventsPerSec > 320e3 {
		t.Errorf("ADAPT rate = %v, want ≈300k", r.ADAPTEventsPerSec)
	}
	// The headline "who wins": the FPGA beats the reported per-server CPU
	// rate and the DL1→DL2 per-core rate.
	if r.FPGAEventsPerSec <= r.CPUServerEventsPerSec || r.FPGAEventsPerSec <= r.DL1DL2EventsPerSec {
		t.Error("FPGA pipeline should beat the reported CPU rates")
	}
}

func TestFigCSVWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig10CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ScalingSizes)+1 {
		t.Fatalf("fig10 rows = %d, want %d", len(recs), len(ScalingSizes)+1)
	}
	// Model latency column is numeric and increasing.
	prev := int64(0)
	for _, rec := range recs[1:] {
		v, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil || v <= prev {
			t.Fatalf("fig10 model column broken: %v %v", rec, err)
		}
		prev = v
	}

	buf.Reset()
	if err := Fig11CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ScalingSizes)+1 || len(recs[0]) != 10 {
		t.Fatalf("fig11 shape = %dx%d", len(recs), len(recs[0]))
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("experiments = %d, want 14 (E1–E14)", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if ids[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4",
		"Fig 10", "Fig 11", "E7", "E8", "E9", "E10", "exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestWriteStudiesMentionDeltas(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStageStudy(&buf, grid.FourWay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exact") {
		t.Error("Table 1 should be exact everywhere")
	}
	buf.Reset()
	if err := WriteScalingStudy(&buf, grid.EightWay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%") {
		t.Error("Table 4 should include percentage deltas")
	}
}
