package detector

import "math"

// Waveform modeling for the SiPM/PMT front end. A triggered channel's analog
// pulse is sampled by the waveform digitizer ASIC (ALPHA on ADAPT, NECTAr-
// class on CTA); the FPGA pipeline integrates the samples, subtracts the
// pedestal, and converts to photo-electron counts.

// PulseShape evaluates the normalized single-photo-electron pulse at time t
// (in sample units) after onset: a standard log-normal-ish fast-rise,
// slow-decay scintillator/SiPM response t·exp(1−t/τ)/τ, peaking at t = τ
// with amplitude 1.
func PulseShape(t, tau float64) float64 {
	if t <= 0 || tau <= 0 {
		return 0
	}
	x := t / tau
	return x * math.Exp(1-x)
}

// DigitizerConfig models one waveform digitizer channel.
type DigitizerConfig struct {
	// Samples per readout window.
	Samples int
	// Pedestal is the baseline ADC offset added to every sample.
	Pedestal int32
	// NoiseRMS is the Gaussian electronic noise per sample, in ADC counts.
	NoiseRMS float64
	// GainADC is the ADC integral corresponding to one photo-electron.
	GainADC float64
	// PulseTau is the pulse shape time constant in sample units.
	PulseTau float64
	// MaxADC saturates each sample (12-bit ADCs are typical).
	MaxADC int32
}

// DefaultDigitizer returns the configuration used by the synthetic ADAPT
// front end: 12-bit ADC, 16-sample window, pedestal 200, 2 ADC counts of
// noise, 40 ADC counts per photo-electron.
func DefaultDigitizer() DigitizerConfig {
	return DigitizerConfig{
		Samples:  16,
		Pedestal: 200,
		NoiseRMS: 2.0,
		GainADC:  40.0,
		PulseTau: 3.0,
		MaxADC:   4095,
	}
}

// Digitize produces one channel's sampled waveform for a deposit of pe
// photo-electrons arriving at sample time t0. Zero pe still produces
// pedestal + noise samples, which is what the pedestal-subtraction and
// zero-suppression stages must reject.
func (c DigitizerConfig) Digitize(pe float64, t0 float64, rng *RNG) []int32 {
	out := make([]int32, c.Samples)
	c.DigitizeInto(out, pe, t0, rng)
	return out
}

// DigitizeInto is Digitize writing into dst (len ≥ Samples), so event
// generators can lay many channels into one contiguous backing array.
// Every sample written is clamped to be non-negative.
func (c DigitizerConfig) DigitizeInto(dst []int32, pe float64, t0 float64, rng *RNG) {
	// Normalize the pulse so its discrete integral over the window is
	// GainADC per photo-electron.
	var norm float64
	for i := 0; i < c.Samples; i++ {
		norm += PulseShape(float64(i)-t0, c.PulseTau)
	}
	if norm <= 0 {
		norm = 1
	}
	amp := pe * c.GainADC / norm
	for i := 0; i < c.Samples; i++ {
		v := float64(c.Pedestal) + amp*PulseShape(float64(i)-t0, c.PulseTau)
		if c.NoiseRMS > 0 && rng != nil {
			v += c.NoiseRMS * rng.Norm()
		}
		s := int32(math.Round(v))
		if s < 0 {
			s = 0
		}
		if c.MaxADC > 0 && s > c.MaxADC {
			s = c.MaxADC
		}
		dst[i] = s
	}
}

// Integrate sums a sampled waveform — the FPGA pipeline's waveform
// integration stage.
func Integrate(samples []int32) int64 {
	var sum int64
	for _, s := range samples {
		sum += int64(s)
	}
	return sum
}

// ExpectedPedestalIntegral returns the integral a pedestal-only window
// produces, the value the pedestal-subtraction stage removes.
func (c DigitizerConfig) ExpectedPedestalIntegral() int64 {
	return int64(c.Pedestal) * int64(c.Samples)
}
