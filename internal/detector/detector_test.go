package detector

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/labeling"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ≈1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(4)
	for _, mean := range []float64{0.5, 3, 12, 60} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive mean must give 0")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(7)
		if v < 0 {
			t.Fatal("Exp must be non-negative")
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-7) > 0.35 {
		t.Errorf("Exp(7) sample mean = %v", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(6)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split generators should differ")
	}
}

func TestPulseShape(t *testing.T) {
	if PulseShape(-1, 3) != 0 || PulseShape(0, 3) != 0 || PulseShape(1, 0) != 0 {
		t.Fatal("pulse must be zero before onset / for bad tau")
	}
	// Peak at t = tau with amplitude 1.
	if math.Abs(PulseShape(3, 3)-1) > 1e-12 {
		t.Fatalf("peak = %v, want 1", PulseShape(3, 3))
	}
	if PulseShape(1, 3) >= 1 || PulseShape(9, 3) >= 1 {
		t.Fatal("off-peak must be below peak")
	}
}

func TestDigitizePedestalOnly(t *testing.T) {
	cfg := DefaultDigitizer()
	cfg.NoiseRMS = 0
	rng := NewRNG(7)
	samples := cfg.Digitize(0, 4, rng)
	if len(samples) != cfg.Samples {
		t.Fatalf("samples = %d, want %d", len(samples), cfg.Samples)
	}
	for _, s := range samples {
		if s != cfg.Pedestal {
			t.Fatalf("pedestal-only sample = %d, want %d", s, cfg.Pedestal)
		}
	}
	if Integrate(samples) != cfg.ExpectedPedestalIntegral() {
		t.Fatal("pedestal integral mismatch")
	}
}

func TestDigitizeGainCalibration(t *testing.T) {
	cfg := DefaultDigitizer()
	cfg.NoiseRMS = 0
	for _, pe := range []float64{1, 5, 20} {
		samples := cfg.Digitize(pe, 4, nil)
		net := Integrate(samples) - cfg.ExpectedPedestalIntegral()
		want := pe * cfg.GainADC
		if math.Abs(float64(net)-want) > want*0.05+4 {
			t.Errorf("pe=%v net integral = %d, want ≈%v", pe, net, want)
		}
	}
}

func TestDigitizeSaturation(t *testing.T) {
	cfg := DefaultDigitizer()
	cfg.NoiseRMS = 0
	samples := cfg.Digitize(1e6, 4, nil)
	for _, s := range samples {
		if s > cfg.MaxADC {
			t.Fatalf("sample %d exceeds ADC max %d", s, cfg.MaxADC)
		}
	}
}

func TestShowerProducesIsland(t *testing.T) {
	cam := LSTCamera()
	rng := NewRNG(8)
	found := 0
	for i := 0; i < 20; i++ {
		sh := cam.TypicalShower(rng)
		g := cam.Shower(sh, rng)
		if g.Rows() != 43 || g.Cols() != 43 {
			t.Fatal("LST camera must be 43x43")
		}
		if g.LitCount() > 0 {
			found++
			// The brightest region should be near the configured center.
			var bestR, bestC int
			var best grid.Value
			for r := 0; r < g.Rows(); r++ {
				for c := 0; c < g.Cols(); c++ {
					if v := g.At(r, c); v > best {
						best, bestR, bestC = v, r, c
					}
				}
			}
			dr := float64(bestR) - sh.CenterRow
			dc := float64(bestC) - sh.CenterCol
			if math.Hypot(dr, dc) > 3*(sh.Length+sh.Width) {
				t.Errorf("brightest pixel (%d,%d) far from center (%.1f,%.1f)",
					bestR, bestC, sh.CenterRow, sh.CenterCol)
			}
		}
	}
	if found < 18 {
		t.Fatalf("only %d/20 typical showers survived cleaning", found)
	}
}

func TestShowerCleaning(t *testing.T) {
	cam := LSTCamera()
	cam.NSBMeanPE = 5 // heavy background
	rng := NewRNG(9)
	g := cam.Shower(ShowerConfig{CenterRow: 21, CenterCol: 21, Length: 3, Width: 1.5, TotalPE: 200}, rng)
	// Every surviving pixel is at or above threshold.
	for i := 0; i < g.Pixels(); i++ {
		if v := g.Flat()[i]; v != 0 && v < cam.CleaningThresholdPE {
			t.Fatalf("pixel %d = %d below cleaning threshold", i, v)
		}
	}
}

func TestRandomIslandsCount(t *testing.T) {
	rng := NewRNG(10)
	g := RandomIslands(32, 32, 5, 1.5, rng)
	labels, err := labeling.FloodFill{}.Label(g, grid.FourWay)
	if err != nil {
		t.Fatal(err)
	}
	n := labels.Count()
	if n < 1 || n > 5 {
		t.Fatalf("islands = %d, want 1..5 (blobs may overlap)", n)
	}
}

func TestRandomOccupancyDensity(t *testing.T) {
	rng := NewRNG(11)
	g := RandomOccupancy(64, 64, 0.3, rng)
	occ := g.Occupancy()
	if occ < 0.25 || occ > 0.35 {
		t.Fatalf("occupancy = %v, want ≈0.3", occ)
	}
}

func TestCheckerboard(t *testing.T) {
	g := Checkerboard(6, 6)
	if g.LitCount() != 18 {
		t.Fatalf("lit = %d, want 18", g.LitCount())
	}
	labels, _ := labeling.FloodFill{}.Label(g, grid.FourWay)
	if labels.Count() != 18 {
		t.Fatal("checkerboard must be 18 isolated pixels under 4-way")
	}
	labels8, _ := labeling.FloodFill{}.Label(g, grid.EightWay)
	if labels8.Count() != 1 {
		t.Fatal("checkerboard must be one component under 8-way")
	}
}

func TestCornerCaseTile(t *testing.T) {
	g := CornerCaseTile(2, 3)
	labels, _ := labeling.FloodFill{}.Label(g, grid.FourWay)
	if labels.Count() != 6 {
		t.Fatalf("tiles = %d components, want 6", labels.Count())
	}
}

// Property: Spiral is always exactly one 4-way component.
func TestSpiralSingleComponentProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		rows := int(a)%40 + 1
		cols := int(b)%40 + 1
		g := Spiral(rows, cols)
		labels, err := labeling.FloodFill{}.Label(g, grid.FourWay)
		if err != nil {
			return false
		}
		return labels.Count() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpiralLooksLikeASpiral(t *testing.T) {
	g := Spiral(7, 7)
	want := grid.MustParse(`
		#######
		......#
		#####.#
		#...#.#
		#.###.#
		#.....#
		#######
	`)
	if !g.Equal(want) {
		t.Fatalf("spiral 7x7:\n%s\nwant:\n%s", g, want)
	}
}

func TestEvent1DGeneration(t *testing.T) {
	tc := DefaultTracker()
	rng := NewRNG(12)
	sawDeposit := false
	for i := 0; i < 20; i++ {
		ev := tc.Event(rng)
		if len(ev.Values) != tc.Channels {
			t.Fatalf("channels = %d, want %d", len(ev.Values), tc.Channels)
		}
		for ch, v := range ev.Values {
			if v != 0 && v <= tc.Threshold {
				t.Fatalf("channel %d = %d under threshold survived", ch, v)
			}
			if v < 0 {
				t.Fatalf("negative photo-electron count at %d", ch)
			}
		}
		if len(ev.Truth) > 0 {
			sawDeposit = true
			// Energy should appear near at least one truth position.
			it := ev.Truth[0]
			var near grid.Value
			for d := -3; d <= 3; d++ {
				ch := int(it.Channel) + d
				if ch >= 0 && ch < tc.Channels {
					near += ev.Values[ch]
				}
			}
			if it.PE > 50 && near == 0 {
				t.Errorf("deposit of %.0f pe at %.1f left no signal", it.PE, it.Channel)
			}
		}
	}
	if !sawDeposit {
		t.Fatal("20 events with mean 2 interactions produced none")
	}
}

func TestEvent1DDeterminism(t *testing.T) {
	tc := DefaultTracker()
	a := tc.Event(NewRNG(99))
	b := tc.Event(NewRNG(99))
	if len(a.Values) != len(b.Values) {
		t.Fatal("length mismatch")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed must reproduce the event")
		}
	}
}

func TestMuonRingShape(t *testing.T) {
	cam := LSTCamera()
	rng := NewRNG(13)
	ring := MuonRing{CenterRow: 21, CenterCol: 21, Radius: 12, WidthPx: 0.8, TotalPE: 1500}
	g := cam.Ring(ring, rng)
	if g.LitCount() < 30 {
		t.Fatalf("ring too sparse: %d lit", g.LitCount())
	}
	// Lit pixels concentrate near the ring radius; the center stays dark.
	var nearRing, nearCenter int
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			if !g.Lit(r, c) {
				continue
			}
			dr, dc := float64(r)-21, float64(c)-21
			d := math.Hypot(dr, dc)
			if math.Abs(d-12) < 3 {
				nearRing++
			}
			if d < 6 {
				nearCenter++
			}
		}
	}
	if nearCenter > nearRing/10 {
		t.Fatalf("ring interior too bright: %d center vs %d ring", nearCenter, nearRing)
	}
}

func TestTypicalMuonRingInBounds(t *testing.T) {
	cam := LSTCamera()
	rng := NewRNG(14)
	for i := 0; i < 50; i++ {
		ring := cam.TypicalMuonRing(rng)
		if ring.Radius <= 0 || ring.Radius > 21 {
			t.Fatalf("radius %v out of bounds", ring.Radius)
		}
		g := cam.Ring(ring, rng)
		if g.Rows() != 43 || g.Cols() != 43 {
			t.Fatal("wrong camera size")
		}
	}
}
