package detector

import (
	"math"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// XY event generation for an ADAPT tracker station: "ADAPT's 2D spatial
// reconstruction uses perpendicular 1D arrays of optical fibers" (§2). One
// particle interaction deposits light in both the X layer (measuring column
// position) and the Y layer (measuring row position); the scintillation
// light splits between the two fiber planes roughly evenly.

// PointTruth is the ground truth of one interaction in station coordinates.
type PointTruth struct {
	// Row, Col are the true fractional positions (Y-layer and X-layer
	// channels respectively).
	Row, Col float64
	// PE is the total photo-electron yield across both layers.
	PE float64
}

// XYEvent is one generated station event: both layers' channel values plus
// the truth.
type XYEvent struct {
	X, Y  []grid.Value
	Truth []PointTruth
}

// XYEvent generates one station event: interactions are drawn like Event's,
// each splitting its light between the layers with a small asymmetry.
func (tc TrackerConfig) XYEvent(rng *RNG) XYEvent {
	n := tc.Channels
	xMeans := make([]float64, n)
	yMeans := make([]float64, n)
	count := rng.Poisson(tc.MeanInteractions)
	truth := make([]PointTruth, 0, count)
	for k := 0; k < count; k++ {
		pt := PointTruth{
			Row: rng.Float64() * float64(n-1),
			Col: rng.Float64() * float64(n-1),
			PE:  tc.PEMin + rng.Float64()*(tc.PEMax-tc.PEMin),
		}
		truth = append(truth, pt)
		// Light sharing between planes: 50 % ± 5 % RMS.
		share := 0.5 + 0.05*rng.Norm()
		share = math.Max(0.2, math.Min(0.8, share))
		depositGaussian(xMeans, pt.Col, pt.PE*share, tc.Spread)
		depositGaussian(yMeans, pt.Row, pt.PE*(1-share), tc.Spread)
	}
	sample := func(means []float64) []grid.Value {
		out := make([]grid.Value, n)
		for ch := 0; ch < n; ch++ {
			v := grid.Value(rng.Poisson(means[ch] + tc.NoisePE))
			if v <= tc.Threshold {
				v = 0
			}
			out[ch] = v
		}
		return out
	}
	return XYEvent{X: sample(xMeans), Y: sample(yMeans), Truth: truth}
}

// depositGaussian spreads pe photo-electrons over channels around center
// with the given RMS, normalized over the in-range window.
func depositGaussian(means []float64, center, pe, spread float64) {
	if spread <= 0 {
		spread = 0.5
	}
	lo := int(center - 4*spread)
	hi := int(center + 4*spread + 1)
	var wsum float64
	ws := make([]float64, 0, hi-lo+1)
	for ch := lo; ch <= hi; ch++ {
		d := float64(ch) - center
		w := math.Exp(-0.5 * d * d / (spread * spread))
		ws = append(ws, w)
		wsum += w
	}
	if wsum <= 0 {
		return
	}
	for i, ch := 0, lo; ch <= hi; i, ch = i+1, ch+1 {
		if ch < 0 || ch >= len(means) {
			continue
		}
		means[ch] += pe * ws[i] / wsum
	}
}
