package detector

import (
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// 1D event generation for ADAPT-style fiber trackers: particle interactions
// deposit light over a few adjacent fibers (channels), read out by SiPMs in
// 1D arrays (§2, Fig 2 right).

// Interaction is the ground truth of one energy deposit in a 1D array.
type Interaction struct {
	// Channel is the true (fractional) interaction position.
	Channel float64
	// PE is the mean total photo-electron yield.
	PE float64
	// SpreadChannels is the RMS light spread over neighboring channels.
	SpreadChannels float64
}

// Event1D is a generated 1D event: integrated photo-electron counts per
// channel plus the truth that produced them.
type Event1D struct {
	Values []grid.Value
	Truth  []Interaction
}

// TrackerConfig parameterizes the 1D array and its generator.
type TrackerConfig struct {
	// Channels is the array length (ADAPT reads SiPM arrays through
	// 16-channel ALPHA ASICs, so this is a multiple of 16 in practice).
	Channels int
	// MeanInteractions is the Poisson mean of deposits per event.
	MeanInteractions float64
	// PEMin, PEMax bound the per-deposit yield (uniform).
	PEMin, PEMax float64
	// Spread is the RMS channel spread of one deposit.
	Spread float64
	// NoisePE is the mean dark-count photo-electrons per channel.
	NoisePE float64
	// Threshold zero-suppresses channels at or below this count.
	Threshold grid.Value
}

// DefaultTracker returns the synthetic ADAPT tracker layer configuration:
// 320 channels (20 ALPHA ASICs), ~2 interactions per event.
func DefaultTracker() TrackerConfig {
	return TrackerConfig{
		Channels:         320,
		MeanInteractions: 2,
		PEMin:            20,
		PEMax:            150,
		Spread:           1.2,
		NoisePE:          0.02,
		Threshold:        2,
	}
}

// Event generates one 1D event.
func (tc TrackerConfig) Event(rng *RNG) Event1D {
	n := tc.Channels
	means := make([]float64, n)
	count := rng.Poisson(tc.MeanInteractions)
	truth := make([]Interaction, 0, count)
	for k := 0; k < count; k++ {
		it := Interaction{
			Channel:        rng.Float64() * float64(n-1),
			PE:             tc.PEMin + rng.Float64()*(tc.PEMax-tc.PEMin),
			SpreadChannels: tc.Spread,
		}
		truth = append(truth, it)
		// Deposit the light as a discrete Gaussian around the position.
		depositGaussian(means, it.Channel, it.PE, it.SpreadChannels)
	}
	values := make([]grid.Value, n)
	for ch := 0; ch < n; ch++ {
		pe := rng.Poisson(means[ch] + tc.NoisePE)
		v := grid.Value(pe)
		if v <= tc.Threshold {
			v = 0
		}
		values[ch] = v
	}
	return Event1D{Values: values, Truth: truth}
}
