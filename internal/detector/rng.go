// Package detector generates the synthetic instrument workloads this
// reproduction substitutes for the paper's "representative event data from
// the ADAPT pipeline" (§5.5) and for CTA's camera images: SiPM/PMT waveforms
// with pedestals and noise, Cherenkov-shower-like elliptical images on 2D
// pixel arrays, ADAPT-style 1D interaction events, and the adversarial
// patterns used to probe the merge-table corner case.
//
// All generation is driven by an explicit, deterministic splitmix64 RNG so
// every experiment is exactly reproducible from its seed.
package detector

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator. The zero value
// is a valid generator with seed 0; prefer NewRNG for clarity.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from Box–Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("detector: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box–Muller, with caching).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Poisson returns a Poisson deviate with the given mean, using Knuth's
// method for small means and a normal approximation above 30 (adequate for
// photo-electron counting).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(mean + math.Sqrt(mean)*r.Norm() + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exp returns an exponential deviate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Split returns a new independent generator derived from this one, so
// sub-workloads can be generated in parallel without sharing state.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
