package detector

import (
	"math"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// 2D event generation for IACT-style cameras (CTA). A gamma-ray shower
// appears in the camera as a roughly elliptical blob of Cherenkov light; the
// generator produces an elliptical Gaussian photo-electron distribution with
// Poisson statistics plus night-sky-background (NSB) noise, which is the
// workload the 2D island-detection stage cleans and clusters.

// ShowerConfig parameterizes one synthetic Cherenkov shower image.
type ShowerConfig struct {
	// CenterRow, CenterCol locate the image centroid in pixel coordinates.
	CenterRow, CenterCol float64
	// Length and Width are the RMS extents (in pixels) of the ellipse's
	// major and minor axes — Hillas length/width.
	Length, Width float64
	// AngleRad orients the major axis (0 = along columns).
	AngleRad float64
	// TotalPE is the mean total photo-electron count (image "size").
	TotalPE float64
}

// CameraConfig parameterizes the sensor array and its noise environment.
type CameraConfig struct {
	Rows, Cols int
	// NSBMeanPE is the mean night-sky-background photo-electrons per pixel.
	NSBMeanPE float64
	// CleaningThresholdPE zero-suppresses pixels below this many p.e.
	// (applied by the upstream cleaning stage; islands are then labeled on
	// the survivors).
	CleaningThresholdPE int32
}

// LSTCamera approximates CTA's Large-Sized Telescope camera as the 43×43
// array the paper uses ("the array size of 43×43 roughly corresponds to
// CTA's Large Size Telescope (LST), which has 1855 pixels", §5.5).
func LSTCamera() CameraConfig {
	return CameraConfig{Rows: 43, Cols: 43, NSBMeanPE: 0.12, CleaningThresholdPE: 4}
}

// Shower renders one shower onto a fresh grid: photo-electron means from the
// elliptical Gaussian, Poisson-fluctuated, NSB added, then cleaned with the
// camera threshold. The result is the zero-suppressed image the island
// detection stage consumes.
func (cam CameraConfig) Shower(sh ShowerConfig, rng *RNG) *grid.Grid {
	g := grid.New(cam.Rows, cam.Cols)
	cos, sin := math.Cos(sh.AngleRad), math.Sin(sh.AngleRad)
	l2 := sh.Length * sh.Length
	w2 := sh.Width * sh.Width
	if l2 <= 0 {
		l2 = 1e-6
	}
	if w2 <= 0 {
		w2 = 1e-6
	}
	// Normalize the Gaussian over the grid so TotalPE is the expected sum.
	weights := make([]float64, cam.Rows*cam.Cols)
	var wsum float64
	for r := 0; r < cam.Rows; r++ {
		for c := 0; c < cam.Cols; c++ {
			dr := float64(r) - sh.CenterRow
			dc := float64(c) - sh.CenterCol
			// Rotate into the ellipse frame.
			u := dr*cos + dc*sin
			v := -dr*sin + dc*cos
			w := math.Exp(-0.5 * (u*u/l2 + v*v/w2))
			weights[r*cam.Cols+c] = w
			wsum += w
		}
	}
	if wsum <= 0 {
		wsum = 1
	}
	for i, w := range weights {
		mean := sh.TotalPE*w/wsum + cam.NSBMeanPE
		pe := rng.Poisson(mean)
		g.Flat()[i] = grid.Value(pe)
	}
	return g.Threshold(cam.CleaningThresholdPE)
}

// TypicalShower returns a randomized shower configuration roughly matching
// LST gamma events: centered within the inner 2/3 of the camera, lengths
// 2–6 pixels, widths 1–2.5 pixels, 80–800 p.e.
func (cam CameraConfig) TypicalShower(rng *RNG) ShowerConfig {
	inR := float64(cam.Rows) / 6
	inC := float64(cam.Cols) / 6
	return ShowerConfig{
		CenterRow: inR + rng.Float64()*float64(cam.Rows)*2/3,
		CenterCol: inC + rng.Float64()*float64(cam.Cols)*2/3,
		Length:    2 + 4*rng.Float64(),
		Width:     1 + 1.5*rng.Float64(),
		AngleRad:  rng.Float64() * math.Pi,
		TotalPE:   80 + 720*rng.Float64(),
	}
}

// RandomIslands scatters count roughly-circular blobs of the given radius
// (in pixels) across the grid — the generic "clusters of detections" workload
// of §3. Values are 1–9.
func RandomIslands(rows, cols, count int, radius float64, rng *RNG) *grid.Grid {
	g := grid.New(rows, cols)
	for b := 0; b < count; b++ {
		cr := rng.Intn(rows)
		cc := rng.Intn(cols)
		rad := radius * (0.5 + rng.Float64())
		lo := int(math.Ceil(rad))
		for dr := -lo; dr <= lo; dr++ {
			for dc := -lo; dc <= lo; dc++ {
				r, c := cr+dr, cc+dc
				if r < 0 || r >= rows || c < 0 || c >= cols {
					continue
				}
				if float64(dr*dr+dc*dc) <= rad*rad {
					g.Set(r, c, grid.Value(1+rng.Intn(9)))
				}
			}
		}
	}
	return g
}

// RandomOccupancy lights each pixel independently with the given probability
// (values 1–9) — the density-sweep workload for merge-table stress tests.
func RandomOccupancy(rows, cols int, p float64, rng *RNG) *grid.Grid {
	g := grid.New(rows, cols)
	for i := range g.Flat() {
		if rng.Float64() < p {
			g.Flat()[i] = grid.Value(1 + rng.Intn(9))
		}
	}
	return g
}

// Checkerboard returns the 4-way worst-case allocation pattern: every other
// pixel lit. It allocates ⌈R·C/2⌉ provisional groups under 4-way CCL and
// overflows the paper's merge-table sizing (EXPERIMENTS.md E9).
func Checkerboard(rows, cols int) *grid.Grid {
	g := grid.New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if (r+c)%2 == 0 {
				g.Set(r, c, 1)
			}
		}
	}
	return g
}

// CornerCaseTile tiles the 3×5 concave pattern that triggers the §6
// transitive-chain corner case under 4-way labeling, separated by dark rows
// and columns so each tile is an independent instance. The returned grid has
// tilesR×tilesC instances.
func CornerCaseTile(tilesR, tilesC int) *grid.Grid {
	pattern := grid.MustParse(`
		#..#.
		#.##.
		###..
	`)
	const tr, tc = 4, 6 // tile pitch with one-pixel dark margins
	g := grid.New(tilesR*tr, tilesC*tc)
	for i := 0; i < tilesR; i++ {
		for j := 0; j < tilesC; j++ {
			for r := 0; r < pattern.Rows(); r++ {
				for c := 0; c < pattern.Cols(); c++ {
					if pattern.Lit(r, c) {
						g.Set(i*tr+r, j*tc+c, 1)
					}
				}
			}
		}
	}
	return g
}

// Spiral draws one maximally-concave single component: a rectangular spiral
// arm wound inward with a one-pixel gap between turns, the stress case for
// transitive merge chains. The arm is drawn as a continuous path, so the
// result is always exactly one 4-way component.
func Spiral(rows, cols int) *grid.Grid {
	g := grid.New(rows, cols)
	// Turtle walk: right, down, left, up, shrinking the walkable box so a
	// one-pixel dark gap separates successive windings.
	r, c := 0, 0
	g.Set(r, c, 1)
	top, left, bottom, right := 0, 0, rows-1, cols-1
	dir := 0 // 0=right 1=down 2=left 3=up
	for {
		var dr, dc int
		switch dir {
		case 0:
			dr, dc = 0, 1
		case 1:
			dr, dc = 1, 0
		case 2:
			dr, dc = 0, -1
		default:
			dr, dc = -1, 0
		}
		moved := false
		for {
			nr, nc := r+dr, c+dc
			// Each direction is bounded only by the wall it runs toward;
			// walls behind the turtle were already shrunk for the NEXT
			// winding and must not block the current one.
			var blocked bool
			switch dir {
			case 0:
				blocked = nc > right
			case 1:
				blocked = nr > bottom
			case 2:
				blocked = nc < left
			default:
				blocked = nr < top
			}
			if blocked {
				break
			}
			r, c = nr, nc
			g.Set(r, c, 1)
			moved = true
		}
		// Shrink the box behind the turn so the next winding keeps a gap.
		switch dir {
		case 0:
			top = r + 2 // finished the top edge of this winding
		case 1:
			right = c - 2
		case 2:
			bottom = r - 2
		default:
			left = c + 2
		}
		if !moved || top > bottom || left > right {
			break
		}
		dir = (dir + 1) % 4
	}
	return g
}

// MuonRing renders a muon-ring image: local muons produce thin Cherenkov
// rings in IACT cameras, the most concave island shape a real instrument
// sees — the natural stress case for transitive merge chains (§6 discusses
// concavity as the trigger condition for the disclosed corner case).
type MuonRing struct {
	// CenterRow, CenterCol locate the ring center.
	CenterRow, CenterCol float64
	// Radius is the ring radius in pixels.
	Radius float64
	// WidthPx is the Gaussian radial thickness.
	WidthPx float64
	// TotalPE is the mean total photo-electron count around the ring.
	TotalPE float64
}

// TypicalMuonRing returns a randomized ring well inside the camera.
func (cam CameraConfig) TypicalMuonRing(rng *RNG) MuonRing {
	maxR := float64(min(cam.Rows, cam.Cols))/2 - 4
	return MuonRing{
		CenterRow: float64(cam.Rows)/2 + (rng.Float64()-0.5)*4,
		CenterCol: float64(cam.Cols)/2 + (rng.Float64()-0.5)*4,
		Radius:    maxR * (0.4 + 0.5*rng.Float64()),
		WidthPx:   0.6 + 0.6*rng.Float64(),
		TotalPE:   600 + 1200*rng.Float64(),
	}
}

// Ring renders one muon ring onto a fresh grid with Poisson statistics and
// NSB, then applies the cleaning threshold.
func (cam CameraConfig) Ring(ring MuonRing, rng *RNG) *grid.Grid {
	g := grid.New(cam.Rows, cam.Cols)
	w2 := ring.WidthPx * ring.WidthPx
	if w2 <= 0 {
		w2 = 0.25
	}
	weights := make([]float64, cam.Rows*cam.Cols)
	var wsum float64
	for r := 0; r < cam.Rows; r++ {
		for c := 0; c < cam.Cols; c++ {
			dr := float64(r) - ring.CenterRow
			dc := float64(c) - ring.CenterCol
			d := math.Hypot(dr, dc) - ring.Radius
			w := math.Exp(-0.5 * d * d / w2)
			weights[r*cam.Cols+c] = w
			wsum += w
		}
	}
	if wsum <= 0 {
		wsum = 1
	}
	for i, w := range weights {
		mean := ring.TotalPE*w/wsum + cam.NSBMeanPE
		g.Flat()[i] = grid.Value(rng.Poisson(mean))
	}
	return g.Threshold(cam.CleaningThresholdPE)
}
