package server

import (
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// worker drains one derandomizer shard through its own calibrated pipeline.
// Runs until the shard's queue is closed and empty (graceful drain).
func (s *Server) worker(p *adapt.Pipeline, queue chan *event) {
	defer s.workersWG.Done()
	var rec adapt.EventRecord
	var interval time.Duration
	if s.cfg.PaceHardware {
		// Serve no faster than the modeled FPGA pipeline: one event per
		// EventIntervalCycles at the design clock. This makes the server's
		// loss-vs-depth behaviour directly comparable to E14.
		interval = time.Duration(float64(time.Second) / p.EventsPerSecond())
	}
	// Absolute service schedule: each event's service slot is one interval
	// after the previous one. Short sleeps overshoot badly, so the worker
	// sleeps only when the schedule runs ahead by more than sleepSlack and
	// then serves the queued backlog back-to-back — exactly how a fixed-rate
	// derandomizer drains. Slots are banked only while the queue is non-empty:
	// a receive that had to wait means the queue went idle, and the schedule
	// restarts from now.
	const sleepSlack = 200 * time.Microsecond
	var due time.Time
	idle := time.Now()
	for ev := range queue {
		if interval > 0 {
			now := time.Now()
			if now.Sub(idle) > 20*time.Microsecond {
				due = now // queue was empty; unused slots are not banked
			}
			if wait := due.Sub(now); wait > sleepSlack {
				time.Sleep(wait)
			}
			due = due.Add(interval)
		}
		var err error
		if s.cfg.FullPipeline {
			var res *adapt.EventResult
			if res, err = p.ProcessEvent(ev.packets); err == nil {
				rec = adapt.RecordOf(res)
			}
		} else {
			err = p.ServeEvent(ev.packets, &rec)
		}
		if err != nil {
			ev.c.stats.BadEvents.Add(1)
			s.stats.BadEvents.Add(1)
		} else {
			buf := bufPool.Get().([]byte)
			ev.c.respond(rec.AppendTo(buf[:0]))
			ev.c.stats.EventsOut.Add(1)
			s.stats.EventsOut.Add(1)
		}
		s.stats.latency.observe(time.Since(ev.enqueued))
		ev.c.inflight.Done()
		putEvent(ev)
		idle = time.Now()
	}
}
