package server

import (
	"runtime"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// serveBatchMax bounds how many queued events one worker drains into a single
// adapt.ServeBatch call. Large enough to amortize the per-wakeup costs (ring
// scans, clock reads, scheduler churn) across a backlog — and, with the
// batch-resident ServeBatch, to amortize its whole-batch resolution sweep —
// small enough that a burst cannot hold response flushing hostage for long.
const serveBatchMax = 64

// lingerMin is the batch size below which the worker yields once and re-polls
// its rings before serving. Under load a tiny drain usually means the reader
// goroutines are mid-flight on the same core; one bounded linger lets their
// pushes land and refills the batch, instead of paying a full serve-and-flush
// cycle per near-empty drain. The linger is a single yield — trickle traffic
// is delayed by at most one scheduler pass, never parked (TestTrickleFlushesPromptly).
const lingerMin = 8

// run is one worker's serving loop, draining the ingest rings of its assigned
// connections until ingress closes and the rings are empty (graceful drain).
//
// In the unpaced functional mode (the serving configuration), the worker
// drains whatever backlog its lanes hold — up to serveBatchMax events — into
// one ServeBatch call and coalesces the batch's responses into one pooled
// write buffer per connection, so a busy lane pays for clock reads, ring
// traffic, and writer wakeups once per batch instead of once per event.
// Paced and full-pipeline modes keep the one-event-at-a-time loop: pacing
// needs a service slot per event, and ProcessEvent has no batch entry point.
//
// Parking: when every ring is empty the worker announces parked, re-drains
// (closing the race against a producer that pushed before the announcement),
// and then blocks on its wake channel. Producers only touch the channel when
// they observe parked, so the steady-state hot path is ring-only.
func (s *Server) run(w *worker, p *adapt.Pipeline) {
	defer s.workersWG.Done()
	defer p.Close() // release the tile-parallel labeling pool, if any
	if s.cfg.PaceHardware || s.cfg.FullPipeline || s.cfg.PaceRate > 0 {
		s.runSerial(w, p)
		return
	}
	batch := make([]*event, serveBatchMax)
	pkts := make([][]adapt.Packet, 0, serveBatchMax)
	recs := make([]adapt.EventRecord, serveBatchMax)
	errs := make([]error, serveBatchMax)

	serve := func(evs []*event) {
		pkts = pkts[:0]
		for _, ev := range evs {
			pkts = append(pkts, ev.packets)
		}
		served := time.Now()
		p.ServeBatch(pkts, recs[:len(evs)], errs[:len(evs)])
		s.stats.ServeNs.Add(uint64(time.Since(served).Nanoseconds()))
		// Responses coalesce per connection: drain pops each ring's backlog
		// contiguously, so same-conn events form runs and each run becomes a
		// single pooled buffer — one ring push and one writer wakeup.
		for i := 0; i < len(evs); {
			c := evs[i].c
			j := i
			var buf []byte
			for ; j < len(evs) && evs[j].c == c; j++ {
				if errs[j] != nil {
					c.stats.BadEvents.Add(1)
					s.stats.BadEvents.Add(1)
					continue
				}
				if buf == nil {
					buf = bufPool.Get().([]byte)[:0]
				}
				buf = recs[j].AppendTo(buf)
				c.stats.EventsOut.Add(1)
				s.stats.EventsOut.Add(1)
			}
			if buf != nil {
				c.pushResponse(buf)
			}
			// The response is in the ring before inflight.Done, so the
			// writer's final drain (armed by inflight.Wait) cannot miss it.
			for k := i; k < j; k++ {
				ev := evs[k]
				s.stats.latency.observe(time.Since(ev.enqueued))
				ev.c.inflight.Done()
				putEvent(ev)
			}
			i = j
		}
	}

	for {
		evs := w.drain(batch[:0])
		if len(evs) > 0 {
			if len(evs) < lingerMin {
				// Bounded linger: one yield, one re-poll, then serve
				// whatever is there. drain appends, so the already-drained
				// events keep their positions (and their latency clocks).
				runtime.Gosched()
				evs = w.drain(evs)
			}
			serve(evs)
			continue
		}
		w.parked.Store(true)
		if evs = w.drain(batch[:0]); len(evs) > 0 {
			w.parked.Store(false)
			serve(evs)
			continue
		}
		select {
		case <-w.wake:
			w.parked.Store(false)
		case <-s.ingressDone:
			w.parked.Store(false)
			// Ingress is closed: every reader has exited, so the rings are
			// frozen. Serve the remainder and retire.
			for {
				if evs = w.drain(batch[:0]); len(evs) == 0 {
					return
				}
				serve(evs)
			}
		}
	}
}

// runSerial is the paced / full-pipeline loop: one event per service slot.
func (s *Server) runSerial(w *worker, p *adapt.Pipeline) {
	var rec adapt.EventRecord
	var interval time.Duration
	if s.cfg.PaceRate > 0 {
		// Explicit fixed-capacity backend model: one event per 1/PaceRate,
		// regardless of what the modeled FPGA would sustain.
		interval = time.Duration(float64(time.Second) / s.cfg.PaceRate)
	} else if s.cfg.PaceHardware {
		// Serve no faster than the modeled FPGA pipeline: one event per
		// EventIntervalCycles at the design clock. This makes the server's
		// loss-vs-depth behaviour directly comparable to E14.
		interval = time.Duration(float64(time.Second) / p.EventsPerSecond())
	}
	// Absolute service schedule: each event's service slot is one interval
	// after the previous one. Short sleeps overshoot badly, so the worker
	// sleeps only when the schedule runs ahead by more than sleepSlack and
	// then serves the queued backlog back-to-back — exactly how a fixed-rate
	// derandomizer drains. Slots are banked only while events keep arriving:
	// a pop that found the lane idle restarts the schedule from now.
	const sleepSlack = 200 * time.Microsecond
	var due time.Time
	idle := time.Now()

	serve := func(ev *event) {
		if interval > 0 {
			now := time.Now()
			if now.Sub(idle) > 20*time.Microsecond {
				due = now // lane was empty; unused slots are not banked
			}
			if wait := due.Sub(now); wait > sleepSlack {
				time.Sleep(wait)
			}
			due = due.Add(interval)
		}
		var err error
		served := time.Now()
		if s.cfg.FullPipeline {
			var res *adapt.EventResult
			if res, err = p.ProcessEvent(ev.packets); err == nil {
				rec = adapt.RecordOf(res)
			}
		} else {
			err = p.ServeEvent(ev.packets, &rec)
		}
		s.stats.ServeNs.Add(uint64(time.Since(served).Nanoseconds()))
		s.finishEvent(ev, &rec, err)
		idle = time.Now()
	}

	for {
		if ev, ok := w.popOne(); ok {
			serve(ev)
			continue
		}
		w.parked.Store(true)
		if ev, ok := w.popOne(); ok {
			w.parked.Store(false)
			serve(ev)
			continue
		}
		select {
		case <-w.wake:
			w.parked.Store(false)
		case <-s.ingressDone:
			w.parked.Store(false)
			for {
				ev, ok := w.popOne()
				if !ok {
					return
				}
				serve(ev)
			}
		}
	}
}

// finishEvent records the outcome of one serially served event: response
// handoff and counters on success, error counters otherwise, then latency
// accounting and event-storage recycling.
//
//hepccl:hotpath
func (s *Server) finishEvent(ev *event, rec *adapt.EventRecord, err error) {
	if err != nil {
		ev.c.stats.BadEvents.Add(1)
		s.stats.BadEvents.Add(1)
	} else {
		buf := bufPool.Get().([]byte)
		ev.c.pushResponse(rec.AppendTo(buf[:0]))
		ev.c.stats.EventsOut.Add(1)
		s.stats.EventsOut.Add(1)
	}
	s.stats.latency.observe(time.Since(ev.enqueued))
	ev.c.inflight.Done()
	putEvent(ev)
}
