package server

import (
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// serveBatchMax bounds how many queued events one worker drains into a single
// adapt.ServeBatch call. Large enough to amortize the per-wakeup costs (queue
// receive, clock reads, scheduler churn) across a backlog, small enough that a
// burst cannot hold response flushing hostage for long.
const serveBatchMax = 32

// worker drains one derandomizer shard through its own calibrated pipeline.
// Runs until the shard's queue is closed and empty (graceful drain).
//
// In the unpaced functional mode (the serving configuration), the worker
// drains whatever backlog the shard has accumulated — up to serveBatchMax
// events — into one ServeBatch call, so a busy shard pays for the clock reads
// and bookkeeping once per batch instead of once per event. Paced and
// full-pipeline modes keep the one-event-at-a-time loop: pacing needs a
// service slot per event, and ProcessEvent has no batch entry point.
func (s *Server) worker(p *adapt.Pipeline, queue chan *event) {
	defer s.workersWG.Done()
	if !s.cfg.PaceHardware && !s.cfg.FullPipeline {
		s.workerBatched(p, queue)
		return
	}
	var rec adapt.EventRecord
	var interval time.Duration
	if s.cfg.PaceHardware {
		// Serve no faster than the modeled FPGA pipeline: one event per
		// EventIntervalCycles at the design clock. This makes the server's
		// loss-vs-depth behaviour directly comparable to E14.
		interval = time.Duration(float64(time.Second) / p.EventsPerSecond())
	}
	// Absolute service schedule: each event's service slot is one interval
	// after the previous one. Short sleeps overshoot badly, so the worker
	// sleeps only when the schedule runs ahead by more than sleepSlack and
	// then serves the queued backlog back-to-back — exactly how a fixed-rate
	// derandomizer drains. Slots are banked only while the queue is non-empty:
	// a receive that had to wait means the queue went idle, and the schedule
	// restarts from now.
	const sleepSlack = 200 * time.Microsecond
	var due time.Time
	idle := time.Now()
	for ev := range queue {
		if interval > 0 {
			now := time.Now()
			if now.Sub(idle) > 20*time.Microsecond {
				due = now // queue was empty; unused slots are not banked
			}
			if wait := due.Sub(now); wait > sleepSlack {
				time.Sleep(wait)
			}
			due = due.Add(interval)
		}
		var err error
		served := time.Now()
		if s.cfg.FullPipeline {
			var res *adapt.EventResult
			if res, err = p.ProcessEvent(ev.packets); err == nil {
				rec = adapt.RecordOf(res)
			}
		} else {
			err = p.ServeEvent(ev.packets, &rec)
		}
		s.stats.ServeNs.Add(uint64(time.Since(served).Nanoseconds()))
		s.finishEvent(ev, &rec, err)
		idle = time.Now()
	}
}

// workerBatched is the unpaced functional-mode drain loop: block for the first
// event of a batch, then opportunistically take whatever else the shard
// already holds and serve the whole slice through ServeBatch.
func (s *Server) workerBatched(p *adapt.Pipeline, queue chan *event) {
	batch := make([]*event, 0, serveBatchMax)
	pkts := make([][]adapt.Packet, 0, serveBatchMax)
	recs := make([]adapt.EventRecord, serveBatchMax)
	errs := make([]error, serveBatchMax)
	for ev := range queue {
		batch = append(batch[:0], ev)
	fill:
		for len(batch) < serveBatchMax {
			select {
			case more, ok := <-queue:
				if !ok {
					// Queue closed: serve what we hold, then exit via the
					// outer range (which observes the same closed channel).
					break fill
				}
				batch = append(batch, more)
			default:
				break fill
			}
		}
		pkts = pkts[:0]
		for _, b := range batch {
			pkts = append(pkts, b.packets)
		}
		served := time.Now()
		p.ServeBatch(pkts, recs[:len(batch)], errs[:len(batch)])
		s.stats.ServeNs.Add(uint64(time.Since(served).Nanoseconds()))
		for i, b := range batch {
			s.finishEvent(b, &recs[i], errs[i])
		}
	}
}

// finishEvent records the outcome of one served event: response handoff and
// counters on success, error counters otherwise, then latency accounting and
// event-storage recycling.
func (s *Server) finishEvent(ev *event, rec *adapt.EventRecord, err error) {
	if err != nil {
		ev.c.stats.BadEvents.Add(1)
		s.stats.BadEvents.Add(1)
	} else {
		buf := bufPool.Get().([]byte)
		ev.c.respond(rec.AppendTo(buf[:0]))
		ev.c.stats.EventsOut.Add(1)
		s.stats.EventsOut.Add(1)
	}
	s.stats.latency.observe(time.Since(ev.enqueued))
	ev.c.inflight.Done()
	putEvent(ev)
}
