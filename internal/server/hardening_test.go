package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// TestIdleTimeoutClosesConnection: a client that connects and goes silent is
// reaped by the idle deadline and counted, without disturbing active clients.
func TestIdleTimeoutClosesConnection(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 8, Policy: PolicyBlock,
		IdleTimeout: 50 * time.Millisecond,
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Silence. The server must hang up on us.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server never closed an idle connection")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.StatsSnapshot().IdleTimeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle timeout not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := s.StatsSnapshot()
	if snap.ReadErrors != 0 {
		t.Fatalf("idle reap miscounted as read error: %+v", snap.CounterSnapshot)
	}
}

// TestAssemblyTimeoutReapsHalfEvent: a client that dies mid-event must not
// hold a reader goroutine beyond the assembly deadline.
func TestAssemblyTimeoutReapsHalfEvent(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 8, Policy: PolicyBlock,
		IdleTimeout:     time.Hour, // only the assembly deadline may fire
		AssemblyTimeout: 50 * time.Millisecond,
	})
	events := makeEvents(t, cfg, 1, 5)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sw := adapt.NewStreamWriter(nc)
	// First packet only; then stall forever.
	if err := sw.WritePacket(&events[0][0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.StatsSnapshot().IdleTimeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("assembly timeout never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBreakerTripsOnGarbageStorm: a connection spewing unframeable bytes is
// cut by the resync breaker instead of being resynced forever.
func TestBreakerTripsOnGarbageStorm(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 8, Policy: PolicyBlock,
		BreakerBadPackets: 5, BreakerWindow: 10 * time.Second,
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Valid headers with corrupt payloads parse as bad packets (checksum
	// failures) — the breaker's trigger.
	events := makeEvents(t, cfg, 1, 7)
	frame, err := events[0][0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-3] ^= 0xFF
	go func() {
		for i := 0; i < 1000; i++ {
			if _, err := nc.Write(frame); err != nil {
				return // breaker closed the conn: expected
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.StatsSnapshot().BreakerTrips == 0 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.StatsSnapshot().BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", s.StatsSnapshot().BreakerTrips)
	}
}

func TestResyncBreakerWindowSlides(t *testing.T) {
	b := resyncBreaker{window: 100 * time.Millisecond, limit: 10}
	now := time.Now()
	if b.add(now, 10) {
		t.Fatal("breaker tripped at the limit, must require exceeding it")
	}
	if !b.add(now.Add(50*time.Millisecond), 1) {
		t.Fatal("breaker did not trip past the limit inside the window")
	}
	b = resyncBreaker{window: 100 * time.Millisecond, limit: 10}
	b.add(now, 10)
	if b.add(now.Add(200*time.Millisecond), 1) {
		t.Fatal("stale window must reset the count")
	}
	var off resyncBreaker
	if off.add(now, 1<<30) {
		t.Fatal("zero limit must disable the breaker")
	}
}

// TestHealthzDegradedAndOverloaded drives the health evaluation directly
// through the server counters and checks both the verdicts and the HTTP
// status codes.
func TestHealthzDegradedAndOverloaded(t *testing.T) {
	cfg := testConfig()
	s, _ := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 8, Policy: PolicyDrop, StatsAddr: "127.0.0.1:0",
	})
	var statsAddr net.Addr
	for i := 0; i < 100 && statsAddr == nil; i++ {
		statsAddr = s.StatsAddr()
		time.Sleep(5 * time.Millisecond)
	}
	if statsAddr == nil {
		t.Fatal("stats endpoint never came up")
	}
	get := func() (HealthState, int) {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", statsAddr))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body [64]byte
		n, _ := resp.Body.Read(body[:])
		return HealthState(strings.TrimSpace(string(body[:n]))), resp.StatusCode
	}

	if st, code := get(); st != HealthOK || code != http.StatusOK {
		t.Fatalf("idle server: %q %d, want ok 200", st, code)
	}

	// 2%% recent loss: degraded, still HTTP 200.
	s.stats.EventsIn.Add(1000)
	s.stats.Dropped.Add(20)
	time.Sleep(healthMinWindow + 20*time.Millisecond)
	if st, code := get(); st != HealthDegraded || code != http.StatusOK {
		t.Fatalf("2%% loss: %q %d, want degraded 200", st, code)
	}

	// 20%% recent loss: overloaded, HTTP 503.
	s.stats.EventsIn.Add(1000)
	s.stats.Dropped.Add(200)
	time.Sleep(healthMinWindow + 20*time.Millisecond)
	if st, code := get(); st != HealthOverloaded || code != http.StatusServiceUnavailable {
		t.Fatalf("20%% loss: %q %d, want overloaded 503", st, code)
	}

	// Clean window again: recovery to ok.
	s.stats.EventsIn.Add(10000)
	time.Sleep(healthMinWindow + 20*time.Millisecond)
	if st, code := get(); st != HealthOK || code != http.StatusOK {
		t.Fatalf("clean window: %q %d, want ok 200", st, code)
	}

	// Resync storm without drops: degraded.
	s.stats.EventsIn.Add(1000)
	s.stats.BadPackets.Add(500)
	time.Sleep(healthMinWindow + 20*time.Millisecond)
	if st, _ := get(); st != HealthDegraded {
		t.Fatalf("resync storm: %q, want degraded", st)
	}
}

// deadlineConn records SetWriteDeadline calls for the flush test.
type deadlineConn struct {
	net.Conn  // nil; only the methods below are used
	deadlines []time.Time
	failSet   bool
	wrote     int
}

func (d *deadlineConn) Write(p []byte) (int, error) { d.wrote += len(p); return len(p), nil }

func (d *deadlineConn) SetWriteDeadline(t time.Time) error {
	if d.failSet {
		return errors.New("boom")
	}
	d.deadlines = append(d.deadlines, t)
	return nil
}

// TestDeadlineWriterClearsDeadline: each successful flush must arm then clear
// the write deadline, and SetWriteDeadline failures must surface.
func TestDeadlineWriterClearsDeadline(t *testing.T) {
	dc := &deadlineConn{}
	w := newDeadlineWriter(dc, time.Second)
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if dc.wrote != 3 {
		t.Fatalf("wrote %d bytes, want 3", dc.wrote)
	}
	if len(dc.deadlines) != 2 {
		t.Fatalf("got %d SetWriteDeadline calls, want arm+clear", len(dc.deadlines))
	}
	if dc.deadlines[0].IsZero() || !dc.deadlines[1].IsZero() {
		t.Fatalf("deadline sequence %v: want non-zero arm then zero clear", dc.deadlines)
	}
	// An empty flush must not touch the deadline.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(dc.deadlines) != 2 {
		t.Fatal("empty flush touched the write deadline")
	}
	// A failing SetWriteDeadline must surface instead of being ignored.
	dc.failSet = true
	w.Write([]byte("x"))
	if err := w.Flush(); err == nil {
		t.Fatal("SetWriteDeadline failure swallowed")
	}
}

// flakyListener feeds Accept a burst of timeout errors, then a permanent
// error, so the backoff path and the give-up path are both exercised.
type flakyListener struct {
	timeouts int
	closed   chan struct{}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "simulated accept timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

var errPermanent = errors.New("permanent accept failure")

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.timeouts > 0 {
		l.timeouts--
		return nil, timeoutErr{}
	}
	return nil, errPermanent
}

func (l *flakyListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestAcceptBackoffRetriesTimeouts: timeout errors are retried with growing
// sleeps; only the permanent error ends Serve.
func TestAcceptBackoffRetriesTimeouts(t *testing.T) {
	s, err := New(Config{Pipeline: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ln := &flakyListener{timeouts: 3, closed: make(chan struct{})}
	start := time.Now()
	err = s.Serve(ln)
	elapsed := time.Since(start)
	if !errors.Is(err, errPermanent) {
		t.Fatalf("Serve returned %v, want the permanent error", err)
	}
	// 3 retries at 5+10+20ms minimum.
	if elapsed < 35*time.Millisecond {
		t.Fatalf("Serve returned after %v; backoff sleeps missing", elapsed)
	}
}
