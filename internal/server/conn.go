package server

import (
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// conn is one client connection: a reader goroutine assembling events and a
// writer goroutine streaming downlink records back. Both legs ride SPSC
// rings: the reader feeds its worker through in, the worker feeds the writer
// through out. A connection is pinned to one worker at accept, which is what
// makes both rings single-producer/single-consumer.
type conn struct {
	s      *Server
	nc     net.Conn
	w      *worker
	id     uint64
	remote string
	// in carries assembled events to the owning worker. Its capacity covers
	// the full derandomizer depth, so an admitted event always has a slot.
	in *ring[*event]
	// out carries serialized responses from the owning worker to the writer.
	out *ring[[]byte]
	// outWake nudges a writer parked on an empty out ring (capacity 1).
	outWake chan struct{}
	// done is closed once the reader has exited and every in-flight event
	// for this connection has been resolved; the writer then drains out a
	// final time and exits.
	done chan struct{}
	// readerGone is raised by the reader after its final ring push; the
	// worker uses it to retire the connection from its drain list.
	readerGone atomic.Bool
	inflight   sync.WaitGroup
	stats      counters
}

// responseRingDepth is the out ring's capacity in coalesced buffers. The
// worker coalesces a whole batch into one buffer, so even a deep backlog
// occupies few slots; a stalled client eventually fills it and the worker's
// pushResponse stalls with it (the writer's deadline then kills the conn).
const responseRingDepth = 128

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 256) }}

// readLoop assembles events off the wire and feeds them to the owning worker.
func (c *conn) readLoop() {
	defer c.s.readersWG.Done()
	s := c.s
	asics := s.cfg.Pipeline.ASICs
	tr := &timeoutReader{
		nc:       c.nc,
		idle:     s.cfg.IdleTimeout,
		assembly: s.cfg.AssemblyTimeout,
		draining: s.isDraining,
	}
	sr := adapt.NewStreamReader(tr)
	// With recording on, the stream reader accumulates each accepted event's
	// raw wire bytes alongside the decode — no second pass over the stream.
	wlog := s.wal
	if wlog != nil {
		sr.SetCapture(true)
	}
	brk := resyncBreaker{window: s.cfg.BreakerWindow, limit: s.cfg.BreakerBadPackets}
	if s.cfg.BreakerBadPackets > 0 {
		// Surface control (ErrResyncStorm) often enough for the breaker to
		// evaluate even when the link never yields a valid packet.
		sr.BadPacketBudget = s.cfg.BreakerBadPackets
	}
	var lastSkipped, lastBad int

	// syncStream publishes the stream reader's resync counters and returns
	// the new bad packets since the previous call (the breaker's input).
	syncStream := func() int {
		if d := sr.SkippedBytes - lastSkipped; d > 0 {
			c.stats.SkippedBytes.Add(uint64(d))
			s.stats.SkippedBytes.Add(uint64(d))
			lastSkipped = sr.SkippedBytes
		}
		d := sr.BadPackets - lastBad
		if d > 0 {
			c.stats.BadPackets.Add(uint64(d))
			s.stats.BadPackets.Add(uint64(d))
			lastBad = sr.BadPackets
		}
		return d
	}
	defer syncStream()

	ev := getEvent()
	for {
		tr.MarkBoundary()
		// When the lane is already at derandomizer depth under drop policy,
		// the incoming event is condemned before it is read: skim it —
		// header-only framing with the same resync and held-packet behaviour,
		// but no checksum and no sample decode, matching a hardware
		// derandomizer that never inspects the trigger it refuses. On a
		// saturated host this is the difference between the readers burning
		// the core verifying events the queue will refuse and that CPU going
		// to the worker that could drain the queue.
		skimmed := false
		var packets []adapt.Packet
		var err error
		if s.cfg.Policy == PolicyDrop && c.w.fill.Load() >= int64(s.cfg.QueueDepth) {
			skimmed = true
			_, err = sr.SkimEvent(asics)
		} else {
			packets, err = sr.ReadEventInto(ev.packets, asics)
		}
		if bad := syncStream(); bad > 0 && brk.add(time.Now(), bad) {
			// Resync storm: this link is producing mostly garbage. Cut it
			// loose rather than burn a reader on an unframeable stream.
			c.stats.BreakerTrips.Add(1)
			s.stats.BreakerTrips.Add(1)
			c.nc.Close()
			putEvent(ev)
			c.finishReads()
			return
		}
		if err != nil {
			// A read-deadline timeout ends the connection no matter where
			// assembly stood (it may arrive wrapped in ErrIncompleteEvent
			// when it struck mid-event).
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if !s.isDraining() {
					if tr.started {
						// The deadline cut a half-assembled event.
						c.stats.IncompleteEvents.Add(1)
						s.stats.IncompleteEvents.Add(1)
					}
					if tr.active() {
						c.stats.IdleTimeouts.Add(1)
						s.stats.IdleTimeouts.Add(1)
					} else {
						c.stats.ReadErrors.Add(1)
						s.stats.ReadErrors.Add(1)
					}
				}
				putEvent(ev)
				c.finishReads()
				return
			}
		}
		switch {
		case err == nil && skimmed:
			// A fully assembled event that was never decoded: it is a FIFO
			// loss exactly like an enqueue rejection.
			c.stats.EventsIn.Add(1)
			s.stats.EventsIn.Add(1)
			c.stats.Dropped.Add(1)
			s.stats.Dropped.Add(1)
		case err == nil:
			ev.packets = packets
			ev.c = c
			ev.enqueued = time.Now()
			c.stats.EventsIn.Add(1)
			s.stats.EventsIn.Add(1)
			if wlog != nil {
				// Write ahead of the enqueue so a crash never serves an event
				// the log missed. A failed append sticky-fails the writer and
				// shows up in /healthz; ingest itself keeps flowing.
				//hepccl:amortized
				wlog.Append(packets[0].Event, sr.Captured())
			}
			c.inflight.Add(1)
			if s.enqueue(ev) {
				ev = getEvent()
			} else {
				c.stats.Dropped.Add(1)
				s.stats.Dropped.Add(1)
				c.inflight.Done() // reuse ev for the next read
			}
		case errors.Is(err, adapt.ErrIncompleteEvent):
			// Missing or interleaved packets: count and resynchronize. If
			// the cause was a transport fault, the next read surfaces it.
			c.stats.IncompleteEvents.Add(1)
			s.stats.IncompleteEvents.Add(1)
		case errors.Is(err, adapt.ErrResyncStorm):
			// Bad-packet budget exhausted without a valid frame. The
			// counters were synced above and the breaker already had its
			// chance to trip; if it didn't, keep hunting.
		case errors.Is(err, io.EOF):
			// Clean end of stream.
			putEvent(ev)
			c.finishReads()
			return
		default:
			// Transport fault (timeouts were classified above).
			if !s.isDraining() {
				c.stats.ReadErrors.Add(1)
				s.stats.ReadErrors.Add(1)
			}
			putEvent(ev)
			c.finishReads()
			return
		}
	}
}

// timeoutReader arms the connection's read deadline according to where event
// assembly stands: between events (MarkBoundary called, no byte delivered
// since) the idle timeout applies; once an event's first byte arrives the
// assembly timeout bounds the whole event. Either duration being zero
// disables that deadline. The boundary is approximate when the stream reader
// buffers ahead, which only ever errs toward the stricter assembly deadline.
type timeoutReader struct {
	nc       net.Conn
	idle     time.Duration
	assembly time.Duration
	draining func() bool
	started  bool
	deadline time.Time // absolute assembly deadline for the current event
}

// active reports whether the reader arms deadlines at all, so the read loop
// can attribute timeout errors to it.
func (tr *timeoutReader) active() bool { return tr.idle > 0 || tr.assembly > 0 }

// MarkBoundary declares that the next delivered byte starts a new event.
func (tr *timeoutReader) MarkBoundary() { tr.started = false }

//hepccl:hotpath
func (tr *timeoutReader) Read(p []byte) (int, error) {
	if tr.active() && !tr.draining() {
		// During drain the shutdown path has armed an immediate deadline;
		// leave it in place.
		var d time.Time
		if !tr.started {
			if tr.idle > 0 {
				d = time.Now().Add(tr.idle)
			}
		} else if tr.assembly > 0 {
			d = tr.deadline
		}
		if err := tr.nc.SetReadDeadline(d); err != nil {
			return 0, err
		}
	}
	n, err := tr.nc.Read(p)
	if n > 0 && !tr.started {
		tr.started = true
		if tr.assembly > 0 {
			tr.deadline = time.Now().Add(tr.assembly)
		}
	}
	return n, err
}

// resyncBreaker trips when more than limit bad packets land within one
// sliding window — the storm signature of a peer whose framing will never
// recover.
type resyncBreaker struct {
	window time.Duration
	limit  int
	start  time.Time
	n      int
}

// add accounts d more bad packets at time now and reports whether the
// breaker trips. A zero limit disables the breaker.
//
//hepccl:hotpath
func (b *resyncBreaker) add(now time.Time, d int) bool {
	if b.limit <= 0 {
		return false
	}
	if b.start.IsZero() || now.Sub(b.start) > b.window {
		b.start, b.n = now, 0
	}
	b.n += d
	return b.n > b.limit
}

// finishReads marks ingress over for this connection (letting the worker
// retire it) and arranges for the writer to terminate once every event this
// connection put in flight has been resolved.
func (c *conn) finishReads() {
	c.readerGone.Store(true)
	c.w.notify()
	go func() {
		c.inflight.Wait()
		close(c.done)
	}()
}

// pushResponse hands a serialized record buffer to the connection's writer.
// Called only by the owning worker (the out ring's single producer); the
// writer owns buf afterwards. A full ring means the client has stalled long
// enough for responseRingDepth coalesced buffers to pile up — the worker
// waits here, which is the same backpressure the old channel send applied,
// and the writer's deadline bounds how long the stall can last.
//
//hepccl:hotpath
func (c *conn) pushResponse(buf []byte) {
	for spins := 0; !c.out.push(buf); spins++ {
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
	select {
	case c.outWake <- struct{}{}:
	default:
	}
}

// writeLoop streams serialized records back to the client. After a write
// fault it keeps draining the ring (discarding) so the worker never stalls
// against a dead connection. The loop flushes whenever the ring goes empty —
// the natural batch boundary — and parks on outWake until the worker pushes
// again or done reports the connection resolved.
func (c *conn) writeLoop() {
	defer func() {
		c.nc.Close()
		c.s.removeConn(c)
		c.s.connsWG.Done()
	}()
	w := newDeadlineWriter(c.nc, c.s.cfg.WriteTimeout)
	failed := false
	write := func(buf []byte) {
		if !failed {
			if _, err := w.Write(buf); err != nil {
				failed = true
				c.nc.Close() // unblock the reader too
			} else {
				c.stats.BytesOut.Add(uint64(len(buf)))
				c.s.stats.BytesOut.Add(uint64(len(buf)))
			}
		}
		bufPool.Put(buf[:0]) //nolint:staticcheck // []byte pooling is intentional
	}
	flush := func() {
		if !failed {
			if err := w.Flush(); err != nil {
				failed = true
				c.nc.Close()
			}
		}
	}
	for {
		buf, ok := c.out.pop()
		if ok {
			write(buf)
			continue
		}
		flush()
		select {
		case <-c.outWake:
		case <-c.done:
			// Every response was pushed before its inflight.Done, so after
			// done nothing more can arrive: drain what remains and exit.
			for {
				buf, ok := c.out.pop()
				if !ok {
					break
				}
				write(buf)
			}
			flush()
			return
		}
	}
}

// deadlineWriter is a buffered writer that arms a write deadline before each
// flush, so a stalled client cannot wedge the writer goroutine forever.
type deadlineWriter struct {
	nc      net.Conn
	timeout time.Duration
	buf     []byte
}

func newDeadlineWriter(nc net.Conn, timeout time.Duration) *deadlineWriter {
	return &deadlineWriter{nc: nc, timeout: timeout, buf: make([]byte, 0, 32<<10)}
}

//hepccl:hotpath
func (w *deadlineWriter) Write(p []byte) (int, error) {
	if len(w.buf)+len(p) > cap(w.buf) {
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

//hepccl:hotpath
func (w *deadlineWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.timeout > 0 {
		if err := w.nc.SetWriteDeadline(time.Now().Add(w.timeout)); err != nil {
			w.buf = w.buf[:0]
			return err
		}
	}
	_, err := w.nc.Write(w.buf)
	w.buf = w.buf[:0]
	if w.timeout > 0 {
		// Clear the deadline after a successful flush so it cannot fire
		// spuriously during a later long idle stretch.
		if cerr := w.nc.SetWriteDeadline(time.Time{}); err == nil {
			err = cerr
		}
	}
	return err
}
