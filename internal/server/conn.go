package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// conn is one client connection: a reader goroutine assembling events and a
// writer goroutine streaming downlink records back.
type conn struct {
	s      *Server
	nc     net.Conn
	id     uint64
	remote string
	// out carries serialized responses from workers to the writer. It is
	// closed once the reader has exited and every in-flight event for this
	// connection has been resolved.
	out      chan []byte
	inflight sync.WaitGroup
	stats    counters
}

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 256) }}

// readLoop assembles events off the wire and shards them to the workers.
func (c *conn) readLoop() {
	defer c.s.readersWG.Done()
	s := c.s
	asics := s.cfg.Pipeline.ASICs
	sr := adapt.NewStreamReader(c.nc)
	var lastSkipped, lastBad int

	syncStream := func() {
		if d := sr.SkippedBytes - lastSkipped; d > 0 {
			c.stats.SkippedBytes.Add(uint64(d))
			s.stats.SkippedBytes.Add(uint64(d))
			lastSkipped = sr.SkippedBytes
		}
		if d := sr.BadPackets - lastBad; d > 0 {
			c.stats.BadPackets.Add(uint64(d))
			s.stats.BadPackets.Add(uint64(d))
			lastBad = sr.BadPackets
		}
	}
	defer syncStream()

	ev := getEvent()
	for {
		packets, err := sr.ReadEventInto(ev.packets, asics)
		syncStream()
		switch {
		case err == nil:
			ev.packets = packets
			ev.c = c
			ev.enqueued = time.Now()
			c.stats.EventsIn.Add(1)
			s.stats.EventsIn.Add(1)
			c.inflight.Add(1)
			if s.enqueue(ev) {
				ev = getEvent()
			} else {
				c.stats.Dropped.Add(1)
				s.stats.Dropped.Add(1)
				c.inflight.Done() // reuse ev for the next read
			}
		case errors.Is(err, adapt.ErrIncompleteEvent):
			// Missing or interleaved packets: count and resynchronize. If
			// the cause was a transport fault, the next read surfaces it.
			c.stats.IncompleteEvents.Add(1)
			s.stats.IncompleteEvents.Add(1)
		case errors.Is(err, io.EOF):
			// Clean end of stream.
			putEvent(ev)
			c.finishReads()
			return
		default:
			// Transport fault — or our own read deadline during drain.
			if !s.isDraining() {
				c.stats.ReadErrors.Add(1)
				s.stats.ReadErrors.Add(1)
			}
			putEvent(ev)
			c.finishReads()
			return
		}
	}
}

// finishReads arranges for the writer to terminate once every event this
// connection put in flight has been processed.
func (c *conn) finishReads() {
	go func() {
		c.inflight.Wait()
		close(c.out)
	}()
}

// respond hands a serialized record to the connection's writer. Called by
// workers; safe concurrently. The writer owns buf afterwards.
func (c *conn) respond(buf []byte) {
	c.out <- buf
}

// writeLoop streams serialized records back to the client. After a write
// fault it keeps draining the channel (discarding) so workers never block on
// a dead connection.
func (c *conn) writeLoop() {
	defer func() {
		c.nc.Close()
		c.s.removeConn(c)
		c.s.connsWG.Done()
	}()
	w := newDeadlineWriter(c.nc, c.s.cfg.WriteTimeout)
	failed := false
	for buf := range c.out {
		if !failed {
			if _, err := w.Write(buf); err != nil {
				failed = true
				c.nc.Close() // unblock the reader too
			} else {
				c.stats.BytesOut.Add(uint64(len(buf)))
				c.s.stats.BytesOut.Add(uint64(len(buf)))
				if len(c.out) == 0 {
					if err := w.Flush(); err != nil {
						failed = true
						c.nc.Close()
					}
				}
			}
		}
		bufPool.Put(buf[:0]) //nolint:staticcheck // []byte pooling is intentional
	}
	if !failed {
		w.Flush()
	}
}

// deadlineWriter is a buffered writer that arms a write deadline before each
// flush, so a stalled client cannot wedge the writer goroutine forever.
type deadlineWriter struct {
	nc      net.Conn
	timeout time.Duration
	buf     []byte
}

func newDeadlineWriter(nc net.Conn, timeout time.Duration) *deadlineWriter {
	return &deadlineWriter{nc: nc, timeout: timeout, buf: make([]byte, 0, 32<<10)}
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if len(w.buf)+len(p) > cap(w.buf) {
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *deadlineWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.timeout > 0 {
		w.nc.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	_, err := w.nc.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}
