package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// conn is one client connection: a reader goroutine assembling events and a
// writer goroutine streaming downlink records back.
type conn struct {
	s      *Server
	nc     net.Conn
	id     uint64
	remote string
	// out carries serialized responses from workers to the writer. It is
	// closed once the reader has exited and every in-flight event for this
	// connection has been resolved.
	out      chan []byte
	inflight sync.WaitGroup
	stats    counters
}

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 256) }}

// readLoop assembles events off the wire and shards them to the workers.
func (c *conn) readLoop() {
	defer c.s.readersWG.Done()
	s := c.s
	asics := s.cfg.Pipeline.ASICs
	tr := &timeoutReader{
		nc:       c.nc,
		idle:     s.cfg.IdleTimeout,
		assembly: s.cfg.AssemblyTimeout,
		draining: s.isDraining,
	}
	sr := adapt.NewStreamReader(tr)
	brk := resyncBreaker{window: s.cfg.BreakerWindow, limit: s.cfg.BreakerBadPackets}
	if s.cfg.BreakerBadPackets > 0 {
		// Surface control (ErrResyncStorm) often enough for the breaker to
		// evaluate even when the link never yields a valid packet.
		sr.BadPacketBudget = s.cfg.BreakerBadPackets
	}
	var lastSkipped, lastBad int

	// syncStream publishes the stream reader's resync counters and returns
	// the new bad packets since the previous call (the breaker's input).
	syncStream := func() int {
		if d := sr.SkippedBytes - lastSkipped; d > 0 {
			c.stats.SkippedBytes.Add(uint64(d))
			s.stats.SkippedBytes.Add(uint64(d))
			lastSkipped = sr.SkippedBytes
		}
		d := sr.BadPackets - lastBad
		if d > 0 {
			c.stats.BadPackets.Add(uint64(d))
			s.stats.BadPackets.Add(uint64(d))
			lastBad = sr.BadPackets
		}
		return d
	}
	defer syncStream()

	ev := getEvent()
	for {
		tr.MarkBoundary()
		packets, err := sr.ReadEventInto(ev.packets, asics)
		if bad := syncStream(); bad > 0 && brk.add(time.Now(), bad) {
			// Resync storm: this link is producing mostly garbage. Cut it
			// loose rather than burn a reader on an unframeable stream.
			c.stats.BreakerTrips.Add(1)
			s.stats.BreakerTrips.Add(1)
			c.nc.Close()
			putEvent(ev)
			c.finishReads()
			return
		}
		if err != nil {
			// A read-deadline timeout ends the connection no matter where
			// assembly stood (it may arrive wrapped in ErrIncompleteEvent
			// when it struck mid-event).
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if !s.isDraining() {
					if tr.started {
						// The deadline cut a half-assembled event.
						c.stats.IncompleteEvents.Add(1)
						s.stats.IncompleteEvents.Add(1)
					}
					if tr.active() {
						c.stats.IdleTimeouts.Add(1)
						s.stats.IdleTimeouts.Add(1)
					} else {
						c.stats.ReadErrors.Add(1)
						s.stats.ReadErrors.Add(1)
					}
				}
				putEvent(ev)
				c.finishReads()
				return
			}
		}
		switch {
		case err == nil:
			ev.packets = packets
			ev.c = c
			ev.enqueued = time.Now()
			c.stats.EventsIn.Add(1)
			s.stats.EventsIn.Add(1)
			c.inflight.Add(1)
			if s.enqueue(ev) {
				ev = getEvent()
			} else {
				c.stats.Dropped.Add(1)
				s.stats.Dropped.Add(1)
				c.inflight.Done() // reuse ev for the next read
			}
		case errors.Is(err, adapt.ErrIncompleteEvent):
			// Missing or interleaved packets: count and resynchronize. If
			// the cause was a transport fault, the next read surfaces it.
			c.stats.IncompleteEvents.Add(1)
			s.stats.IncompleteEvents.Add(1)
		case errors.Is(err, adapt.ErrResyncStorm):
			// Bad-packet budget exhausted without a valid frame. The
			// counters were synced above and the breaker already had its
			// chance to trip; if it didn't, keep hunting.
		case errors.Is(err, io.EOF):
			// Clean end of stream.
			putEvent(ev)
			c.finishReads()
			return
		default:
			// Transport fault (timeouts were classified above).
			if !s.isDraining() {
				c.stats.ReadErrors.Add(1)
				s.stats.ReadErrors.Add(1)
			}
			putEvent(ev)
			c.finishReads()
			return
		}
	}
}

// timeoutReader arms the connection's read deadline according to where event
// assembly stands: between events (MarkBoundary called, no byte delivered
// since) the idle timeout applies; once an event's first byte arrives the
// assembly timeout bounds the whole event. Either duration being zero
// disables that deadline. The boundary is approximate when the stream reader
// buffers ahead, which only ever errs toward the stricter assembly deadline.
type timeoutReader struct {
	nc       net.Conn
	idle     time.Duration
	assembly time.Duration
	draining func() bool
	started  bool
	deadline time.Time // absolute assembly deadline for the current event
}

// active reports whether the reader arms deadlines at all, so the read loop
// can attribute timeout errors to it.
func (tr *timeoutReader) active() bool { return tr.idle > 0 || tr.assembly > 0 }

// MarkBoundary declares that the next delivered byte starts a new event.
func (tr *timeoutReader) MarkBoundary() { tr.started = false }

func (tr *timeoutReader) Read(p []byte) (int, error) {
	if tr.active() && !tr.draining() {
		// During drain the shutdown path has armed an immediate deadline;
		// leave it in place.
		var d time.Time
		if !tr.started {
			if tr.idle > 0 {
				d = time.Now().Add(tr.idle)
			}
		} else if tr.assembly > 0 {
			d = tr.deadline
		}
		if err := tr.nc.SetReadDeadline(d); err != nil {
			return 0, err
		}
	}
	n, err := tr.nc.Read(p)
	if n > 0 && !tr.started {
		tr.started = true
		if tr.assembly > 0 {
			tr.deadline = time.Now().Add(tr.assembly)
		}
	}
	return n, err
}

// resyncBreaker trips when more than limit bad packets land within one
// sliding window — the storm signature of a peer whose framing will never
// recover.
type resyncBreaker struct {
	window time.Duration
	limit  int
	start  time.Time
	n      int
}

// add accounts d more bad packets at time now and reports whether the
// breaker trips. A zero limit disables the breaker.
func (b *resyncBreaker) add(now time.Time, d int) bool {
	if b.limit <= 0 {
		return false
	}
	if b.start.IsZero() || now.Sub(b.start) > b.window {
		b.start, b.n = now, 0
	}
	b.n += d
	return b.n > b.limit
}

// finishReads arranges for the writer to terminate once every event this
// connection put in flight has been processed.
func (c *conn) finishReads() {
	go func() {
		c.inflight.Wait()
		close(c.out)
	}()
}

// respond hands a serialized record to the connection's writer. Called by
// workers; safe concurrently. The writer owns buf afterwards.
func (c *conn) respond(buf []byte) {
	c.out <- buf
}

// writeLoop streams serialized records back to the client. After a write
// fault it keeps draining the channel (discarding) so workers never block on
// a dead connection.
func (c *conn) writeLoop() {
	defer func() {
		c.nc.Close()
		c.s.removeConn(c)
		c.s.connsWG.Done()
	}()
	w := newDeadlineWriter(c.nc, c.s.cfg.WriteTimeout)
	failed := false
	for buf := range c.out {
		if !failed {
			if _, err := w.Write(buf); err != nil {
				failed = true
				c.nc.Close() // unblock the reader too
			} else {
				c.stats.BytesOut.Add(uint64(len(buf)))
				c.s.stats.BytesOut.Add(uint64(len(buf)))
				if len(c.out) == 0 {
					if err := w.Flush(); err != nil {
						failed = true
						c.nc.Close()
					}
				}
			}
		}
		bufPool.Put(buf[:0]) //nolint:staticcheck // []byte pooling is intentional
	}
	if !failed {
		w.Flush()
	}
}

// deadlineWriter is a buffered writer that arms a write deadline before each
// flush, so a stalled client cannot wedge the writer goroutine forever.
type deadlineWriter struct {
	nc      net.Conn
	timeout time.Duration
	buf     []byte
}

func newDeadlineWriter(nc net.Conn, timeout time.Duration) *deadlineWriter {
	return &deadlineWriter{nc: nc, timeout: timeout, buf: make([]byte, 0, 32<<10)}
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if len(w.buf)+len(p) > cap(w.buf) {
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *deadlineWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.timeout > 0 {
		if err := w.nc.SetWriteDeadline(time.Now().Add(w.timeout)); err != nil {
			w.buf = w.buf[:0]
			return err
		}
	}
	_, err := w.nc.Write(w.buf)
	w.buf = w.buf[:0]
	if w.timeout > 0 {
		// Clear the deadline after a successful flush so it cannot fire
		// spuriously during a later long idle stretch.
		if cerr := w.nc.SetWriteDeadline(time.Time{}); err == nil {
			err = cerr
		}
	}
	return err
}
