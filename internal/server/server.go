package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/wal"
)

// Config parameterizes one ingest server.
type Config struct {
	// Pipeline is the per-worker pipeline build (array geometry, samples,
	// detection mode). Every worker instantiates its own copy.
	Pipeline adapt.Config
	// Workers is the pipeline pool size. Default 1.
	Workers int
	// QueueDepth is the per-worker derandomizer queue capacity in events,
	// mirroring adapt.TriggerConfig.FIFODepth. Default 64.
	QueueDepth int
	// Policy selects drop (derandomizer semantics) or block (backpressure)
	// on a full queue.
	Policy OverflowPolicy
	// AcceptorShards is the accept-loop count for ListenAndServe. Above 1 on
	// Linux, each shard owns its own SO_REUSEPORT listener and the kernel
	// spreads incoming connections across them; elsewhere the shards share
	// one listener. Each shard pins its connections to its own partition of
	// the worker pool (lane-per-core placement), so a connection's ingest and
	// response rings keep exactly one producer and one consumer no matter how
	// many cores accept traffic. Default 1.
	AcceptorShards int
	// PaceRate, when positive, throttles each worker to this many events per
	// second — a fixed-capacity backend model (the generalization of
	// PaceHardware's modeled FPGA interval), used to study scale-out with
	// capacity-bound backends. Forces the serial serve loop.
	PaceRate float64
	// Calibration holds pedestal-only events used to calibrate each worker
	// pipeline at startup. Nil keeps nominal pedestals.
	Calibration [][]adapt.Packet
	// FullPipeline routes events through the cycle-accurate ProcessEvent
	// instead of the functional ServeEvent fast path.
	FullPipeline bool
	// PaceHardware throttles each worker to the modeled FPGA event interval,
	// making measured loss-vs-depth comparable to experiments deadtime (E14).
	PaceHardware bool
	// StatsAddr, when non-empty, serves GET /stats (JSON snapshot) and
	// GET /healthz on this address.
	StatsAddr string
	// EnablePprof additionally registers net/http/pprof handlers under
	// /debug/pprof/ on the stats address. Off by default: the profiling
	// surface is a debugging aid, not part of the operational API.
	EnablePprof bool
	// WriteTimeout bounds each response flush. Default 10s.
	WriteTimeout time.Duration
	// IdleTimeout closes a connection that delivers no data between events
	// for this long. Zero disables (the seed behavior).
	IdleTimeout time.Duration
	// AssemblyTimeout bounds the wall-clock time one event may spend
	// assembling once its first byte arrives, so a client that dies
	// mid-event cannot hold packets (and a reader goroutine) forever.
	// Zero disables.
	AssemblyTimeout time.Duration
	// BreakerBadPackets arms the resync-storm circuit breaker: a connection
	// that produces more than this many bad packets within BreakerWindow is
	// closed, on the theory that its framing is unrecoverably wedged or the
	// peer is garbage. Zero disables.
	BreakerBadPackets int
	// BreakerWindow is the breaker's sliding window. Default 1s when
	// BreakerBadPackets is set.
	BreakerWindow time.Duration
	// DegradedLossRate is the recent drop fraction (dropped/assembled) at
	// which /healthz reports "degraded". Default 0.01.
	DegradedLossRate float64
	// OverloadLossRate is the recent drop fraction at which /healthz
	// reports "overloaded" with HTTP 503. Default 0.10.
	OverloadLossRate float64
	// DegradedResyncRate is the recent fraction of assembly attempts lost
	// to resync (bad packets + incomplete events vs events assembled) at
	// which /healthz reports "degraded". Default 0.05.
	DegradedResyncRate float64
	// RecordDir, when non-empty, appends the raw wire bytes of every decoded
	// event to a write-ahead log in this directory (see internal/wal) before
	// it is enqueued, so a crash can never have served an event the log
	// missed. Skimmed (condemned-before-read) events are not recorded; an
	// event that decodes but then loses the enqueue race under drop policy is
	// in the log yet counted dropped, so the log bounds the accepted load
	// from above by at most those rare rejections. Opening the log recovers
	// from a previous crash by truncating at the last valid record.
	RecordDir string
	// RecordSegmentBytes sets the WAL segment size. Zero means the wal
	// package default (64 MiB).
	RecordSegmentBytes int64
	// RecordRetain, when positive, keeps only the newest N sealed segments.
	RecordRetain int
	// LogInterval emits a periodic one-line stats summary. Zero disables.
	LogInterval time.Duration
	// Logger receives the periodic line and lifecycle messages. Nil means
	// log.Default() when LogInterval is set, silent otherwise.
	Logger *log.Logger
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.AcceptorShards <= 0 {
		cfg.AcceptorShards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.BreakerBadPackets > 0 && cfg.BreakerWindow <= 0 {
		cfg.BreakerWindow = time.Second
	}
	if cfg.DegradedLossRate <= 0 {
		cfg.DegradedLossRate = 0.01
	}
	if cfg.OverloadLossRate <= 0 {
		cfg.OverloadLossRate = 0.10
	}
	if cfg.DegradedResyncRate <= 0 {
		cfg.DegradedResyncRate = 0.05
	}
	if cfg.Logger == nil && cfg.LogInterval > 0 {
		cfg.Logger = log.Default()
	}
	return cfg
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Server is a concurrent ALPHA-packet event-ingest service.
type Server struct {
	cfg     Config
	stats   Stats
	workers []*worker
	// ingressDone is closed (during Shutdown, after every reader has exited)
	// to tell workers the ingest rings are frozen: drain and retire.
	ingressDone chan struct{}

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[*conn]struct{}
	connID uint64

	draining  chan struct{}
	drainOnce sync.Once

	// acceptWG tracks the accept loops. Shutdown waits it out (the closed
	// listeners make the loops exit) before waiting on readersWG, so no
	// late-accepted connection can Add a reader concurrently with the Wait.
	acceptWG  sync.WaitGroup
	readersWG sync.WaitGroup
	workersWG sync.WaitGroup
	connsWG   sync.WaitGroup

	statsSrv *http.Server
	statsLn  net.Listener

	// wal, when non-nil, receives the raw bytes of every admitted event.
	wal *wal.Writer

	health healthWindow
	rates  rateWindow

	// Static gauge values surfaced on /stats: the per-worker pipelines'
	// resolved labeling backend, its tile-pool concurrency (0 unless tiled),
	// and the served frame size in pixels (channels for 1D configs).
	serveBackend string
	tileWorkers  int
	pixels       int
}

// New validates the configuration, builds and calibrates the worker
// pipelines, and returns a server ready to Serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		conns:       make(map[*conn]struct{}),
		draining:    make(chan struct{}),
		ingressDone: make(chan struct{}),
	}
	s.stats.start = time.Now()
	// Seed the rate-gauge baseline at startup so the very first /stats scrape
	// reports the since-start average instead of an empty window.
	s.rates.at = s.stats.start
	// Build every pipeline before starting any worker so a late construction
	// error cannot strand already-running goroutines.
	pipes := make([]*adapt.Pipeline, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		p, err := adapt.New(cfg.Pipeline)
		if err != nil {
			return nil, fmt.Errorf("server: worker %d: %w", i, err)
		}
		if len(cfg.Calibration) > 0 {
			if err := p.Calibrate(cfg.Calibration); err != nil {
				return nil, fmt.Errorf("server: worker %d: %w", i, err)
			}
		}
		pipes[i] = p
	}
	// Gauge surface for /stats: every worker pipeline is built from the same
	// config, so the first one's resolved backend describes them all.
	if len(pipes) > 0 {
		s.serveBackend, s.tileWorkers = pipes[0].ServeEngine()
	}
	if det := cfg.Pipeline.Detection; det.TwoDimension {
		s.pixels = det.TwoD.Rows * det.TwoD.Cols
	} else {
		s.pixels = cfg.Pipeline.ASICs * adapt.ChannelsPerASIC
	}
	if cfg.RecordDir != "" {
		w, info, err := wal.Open(wal.Options{
			Dir:          cfg.RecordDir,
			SegmentBytes: cfg.RecordSegmentBytes,
			Retain:       cfg.RecordRetain,
			Logger:       cfg.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("server: record log: %w", err)
		}
		s.wal = w
		if l := cfg.Logger; l != nil {
			l.Printf("hepccld: recording to %s (%d segments recovered, %d tail records, %d torn bytes truncated)",
				cfg.RecordDir, info.Segments, info.TailRecords, info.TornBytes)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		w := newWorker()
		s.workers = append(s.workers, w)
		s.workersWG.Add(1)
		go s.run(w, pipes[i])
	}
	return s, nil
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ListenAndServe listens on addr and serves until Shutdown. With
// Config.AcceptorShards above 1 it opens one SO_REUSEPORT listener per shard
// (kernel-sharded accepts) where the platform supports it, and otherwise
// runs the shards as accept loops over a single shared listener.
func (s *Server) ListenAndServe(addr string) error {
	shards := s.cfg.AcceptorShards
	if shards <= 1 || !reusePortSupported {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		lns := make([]net.Listener, shards)
		for i := range lns {
			lns[i] = ln // !linux fallback: shards share one listener
		}
		if shards <= 1 {
			lns = lns[:1]
		}
		return s.serveListeners(lns)
	}
	lns := make([]net.Listener, shards)
	ln0, err := listenReusePort(addr)
	if err != nil {
		return err
	}
	lns[0] = ln0
	// Later shards bind the first listener's concrete address, so an
	// ephemeral-port request (":0") lands every shard on the same port.
	bound := ln0.Addr().String()
	for i := 1; i < shards; i++ {
		ln, err := listenReusePort(bound)
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return fmt.Errorf("server: acceptor shard %d: %w", i, err)
		}
		lns[i] = ln
	}
	return s.serveListeners(lns)
}

// Serve accepts connections on ln until Shutdown, returning ErrServerClosed
// on a clean shutdown. The stats endpoint and periodic log line run for the
// lifetime of the serve loop.
func (s *Server) Serve(ln net.Listener) error {
	return s.serveListeners([]net.Listener{ln})
}

// serveListeners runs one accept loop per listener entry (shard). Distinct
// entries may alias one net.Listener (the no-SO_REUSEPORT fallback).
func (s *Server) serveListeners(lns []net.Listener) error {
	s.mu.Lock()
	s.lns = append(s.lns[:0], lns...)
	if s.isDraining() {
		s.mu.Unlock()
		for _, ln := range lns {
			ln.Close()
		}
		return ErrServerClosed
	}
	// Registered under the same lock Shutdown closes listeners under: either
	// the loops exist before Shutdown runs (it closes their listeners and
	// waits them out), or draining was observed above and none start.
	s.acceptWG.Add(len(lns))
	s.mu.Unlock()
	s.startStats()
	stopLog := s.startPeriodicLog()
	defer stopLog()
	if l := s.cfg.Logger; l != nil {
		l.Printf("hepccld: serving on %s (%d acceptor shards, %d workers, queue depth %d, policy %s)",
			lns[0].Addr(), len(lns), s.cfg.Workers, s.cfg.QueueDepth, s.cfg.Policy)
	}
	if len(lns) == 1 {
		return s.acceptLoop(lns[0], 0)
	}
	errc := make(chan error, len(lns))
	for i, ln := range lns {
		go func(ln net.Listener, shard int) {
			errc <- s.acceptLoop(ln, shard)
		}(ln, i)
	}
	var first error
	for range lns {
		if err := <-errc; first == nil || (errors.Is(first, ErrServerClosed) && !errors.Is(err, ErrServerClosed)) {
			if err != nil {
				first = err
			}
		}
	}
	return first
}

// acceptLoop accepts connections on ln and pins them to shard's worker
// partition until Shutdown or a fatal accept error.
func (s *Server) acceptLoop(ln net.Listener, shard int) error {
	defer s.acceptWG.Done()
	var backoff time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return ErrServerClosed
			}
			// Transient accept failures (EMFILE, ENFILE, ...) surface as
			// net.Error timeouts; back off exponentially instead of tearing
			// the whole server down over a descriptor spike.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				if l := s.cfg.Logger; l != nil {
					l.Printf("hepccld: accept: %v; retrying in %v", err, backoff)
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.addConn(nc, shard)
	}
}

// partition returns the worker lanes owned by one acceptor shard: an equal
// contiguous slice of the pool, so shard i's connections (and therefore
// their SPSC rings) stay on shard i's lanes. With fewer workers than shards,
// shards share lanes round-robin — the rings stay single-producer because a
// connection is still pinned to exactly one worker.
func (s *Server) partition(shard int) []*worker {
	w, n := len(s.workers), s.cfg.AcceptorShards
	if n <= 1 || w < n {
		if w < n && n > 1 {
			i := shard % w
			return s.workers[i : i+1]
		}
		return s.workers
	}
	lo, hi := shard*w/n, (shard+1)*w/n
	return s.workers[lo:hi]
}

// Addr returns the listener address, once serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.lns) == 0 {
		return nil
	}
	return s.lns[0].Addr()
}

func (s *Server) addConn(nc net.Conn, shard int) {
	c := &conn{
		s:       s,
		nc:      nc,
		remote:  nc.RemoteAddr().String(),
		in:      newRing[*event](s.cfg.QueueDepth),
		out:     newRing[[]byte](responseRingDepth),
		outWake: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	part := s.partition(shard)
	s.mu.Lock()
	s.connID++
	c.id = s.connID
	// Pin the connection to one worker lane (within its acceptor shard's
	// partition) for its lifetime: that is what makes both of its rings
	// single-producer/single-consumer.
	c.w = part[int(c.id)%len(part)]
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	c.w.addConn(c)
	s.stats.ConnsTotal.Add(1)
	s.stats.ConnsActive.Add(1)
	s.readersWG.Add(1)
	s.connsWG.Add(1)
	if s.isDraining() {
		// Shutdown may already have swept the conn table; make sure this
		// late arrival's reader unblocks immediately too.
		nc.SetReadDeadline(time.Now())
	}
	go c.readLoop()
	go c.writeLoop()
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.stats.ConnsActive.Add(-1)
}

// Shutdown gracefully drains the server: stop accepting, stop reading,
// process every queued event, flush every response, then close. A second
// call is a no-op. If ctx expires first, remaining connections are closed
// and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
	})
	s.mu.Lock()
	for _, ln := range s.lns {
		ln.Close()
	}
	// Unblock readers parked in a socket read; their next read error is
	// treated as end of ingress because draining is closed.
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		// The listeners are closed, so the accept loops are on their way
		// out; once they are gone no new reader can appear.
		s.acceptWG.Wait()
		s.readersWG.Wait()
		// All readers have exited: the ingest rings are frozen. Tell the
		// workers to serve the remainder and retire.
		close(s.ingressDone)
		s.workersWG.Wait()
		s.connsWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		err = ctx.Err()
	}
	if s.statsSrv != nil {
		s.statsSrv.Close()
	}
	if s.wal != nil {
		// On the clean path every reader has exited; on the ctx path a racing
		// Append serializes against Close on the writer's mutex and then
		// sticky-fails, which is fine for a server being torn down.
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// startStats serves /stats and /healthz if configured.
func (s *Server) startStats() {
	if s.cfg.StatsAddr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.StatsSnapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := s.HealthSnapshot()
		if r.URL.Query().Get("verbose") != "" {
			w.Header().Set("Content-Type", "application/json")
			if snap.State == HealthOverloaded {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		if snap.State == HealthOverloaded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, snap.State)
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", s.cfg.StatsAddr)
	if err != nil {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("hepccld: stats endpoint: %v", err)
		}
		return
	}
	s.mu.Lock()
	s.statsLn = ln
	s.mu.Unlock()
	s.statsSrv = &http.Server{Handler: mux}
	go func() {
		if err := s.statsSrv.Serve(ln); err != nil &&
			!errors.Is(err, http.ErrServerClosed) && s.cfg.Logger != nil {
			s.cfg.Logger.Printf("hepccld: stats endpoint: %v", err)
		}
	}()
}

// StatsAddr returns the stats endpoint's listen address, or nil when the
// endpoint is disabled or not yet serving.
func (s *Server) StatsAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.statsLn == nil {
		return nil
	}
	return s.statsLn.Addr()
}

// startPeriodicLog emits the one-line summary every LogInterval.
func (s *Server) startPeriodicLog() (stop func()) {
	if s.cfg.LogInterval <= 0 || s.cfg.Logger == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		tick := time.NewTicker(s.cfg.LogInterval)
		defer tick.Stop()
		var lastOut uint64
		last := time.Now()
		for {
			select {
			case <-stopCh:
				return
			case now := <-tick.C:
				snap := s.StatsSnapshot()
				rate := float64(snap.EventsOut-lastOut) / now.Sub(last).Seconds()
				s.cfg.Logger.Printf(
					"hepccld: in=%d out=%d (%.0f ev/s) dropped=%d bad_pkts=%d skipped=%dB conns=%d hwm=%d p50=%dµs p99=%dµs",
					snap.EventsIn, snap.EventsOut, rate, snap.Dropped,
					snap.BadPackets, snap.SkippedBytes, snap.ConnsActive,
					snap.QueueHWM, snap.Latency.P50Us, snap.Latency.P99Us)
				lastOut = snap.EventsOut
				last = now
			}
		}
	}()
	return func() { close(stopCh) }
}
