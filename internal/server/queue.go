package server

import (
	"sync"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// OverflowPolicy selects what happens when an event arrives at a full
// derandomizer queue.
type OverflowPolicy int

const (
	// PolicyDrop counts and discards the arriving event — the semantics of a
	// hardware derandomizer FIFO with the pipeline busy (adapt.SimulateTrigger,
	// E14). The default.
	PolicyDrop OverflowPolicy = iota
	// PolicyBlock stalls the connection's reader until the queue has room,
	// pushing backpressure onto the TCP link instead of losing events.
	PolicyBlock
)

// String implements fmt.Stringer.
func (p OverflowPolicy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	default:
		return "drop"
	}
}

// event is one assembled trigger travelling from a connection reader to a
// worker. Events and their packet storage are pooled.
type event struct {
	c        *conn
	packets  []adapt.Packet
	enqueued time.Time
}

var eventPool = sync.Pool{New: func() any { return new(event) }}

func getEvent() *event  { return eventPool.Get().(*event) }
func putEvent(e *event) { e.c = nil; eventPool.Put(e) }

// enqueue shards ev round-robin across the worker queues and applies the
// overflow policy. It reports whether the event was accepted; rejected
// events are counted as drops (the caller still owns ev).
func (s *Server) enqueue(ev *event) bool {
	shard := int(s.seq.Add(1)-1) % len(s.queues)
	q := s.queues[shard]
	if s.cfg.Policy == PolicyBlock {
		select {
		case q <- ev:
		case <-s.draining:
			// Ingress is closing; nothing will drain a full queue fast
			// enough to honor a blocking send. Count it like a FIFO loss.
			select {
			case q <- ev:
			default:
				return false
			}
		}
	} else {
		select {
		case q <- ev:
		default:
			return false
		}
	}
	// len(q) just after the send is a racy but monotone-sampled depth; the
	// high-water mark only ever grows, so stale reads cannot inflate it.
	s.stats.observeQueueDepth(len(q))
	return true
}
