package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// OverflowPolicy selects what happens when an event arrives at a full
// derandomizer queue.
type OverflowPolicy int

const (
	// PolicyDrop counts and discards the arriving event — the semantics of a
	// hardware derandomizer FIFO with the pipeline busy (adapt.SimulateTrigger,
	// E14). The default.
	PolicyDrop OverflowPolicy = iota
	// PolicyBlock stalls the connection's reader until the queue has room,
	// pushing backpressure onto the TCP link instead of losing events.
	PolicyBlock
)

// String implements fmt.Stringer.
func (p OverflowPolicy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	default:
		return "drop"
	}
}

// event is one assembled trigger travelling from a connection reader to a
// worker. Events and their packet storage are pooled.
type event struct {
	c        *conn
	packets  []adapt.Packet
	enqueued time.Time
}

var eventPool = sync.Pool{New: func() any { return new(event) }}

func getEvent() *event  { return eventPool.Get().(*event) }
func putEvent(e *event) { e.c = nil; eventPool.Put(e) }

// worker is one serving lane: a pipeline goroutine draining the ingest rings
// of the connections assigned to it. The derandomizer-depth bound lives in
// fill, not in the rings — fill counts events admitted (enqueue) and not yet
// drained by the worker, and admission CASes it against Config.QueueDepth.
// Because at most QueueDepth events are admitted across the worker's
// connections and every ingest ring holds at least QueueDepth, an admitted
// event's ring push can never find the ring full.
//
//hepccl:pool
type worker struct {
	fill   atomic.Int64  //hepccl:cursor — admitted, not yet drained; bounded by QueueDepth
	parked atomic.Bool   // worker is about to park (or parked) on wake
	wake   chan struct{} //hepccl:wake — capacity 1: producers nudge a parked worker

	mu    sync.Mutex
	conns []*conn // connections assigned to this lane (accept adds, drain prunes)
	next  int     // round-robin drain offset across conns
}

func newWorker() *worker {
	return &worker{wake: make(chan struct{}, 1)}
}

// addConn assigns c to this lane.
func (w *worker) addConn(c *conn) {
	w.mu.Lock()
	w.conns = append(w.conns, c)
	w.mu.Unlock()
}

// notify wakes the worker if it is parked (or about to park: a producer that
// loads parked==true before the worker's pre-park recheck just leaves a token
// the select consumes immediately). Producers that observe parked==false are
// safe to skip the send — their ring write is sequenced before the load, so
// the worker's pre-park drain sees the event.
//
//hepccl:hotpath
func (w *worker) notify() {
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// drain moves events from the lane's ingest rings into dst (up to cap(dst)),
// round-robining across connections so one saturated link cannot starve the
// rest, and prunes connections whose reader has exited with nothing left
// queued. Worker-side only.
//
//hepccl:hotpath
func (w *worker) drain(dst []*event) []*event {
	w.mu.Lock()
	defer w.mu.Unlock()
	conns := w.conns
	n := len(conns)
	if n == 0 {
		return dst
	}
	// Round-robin as two provable chunks, [next, n) then [0, next): the
	// split happens inside one branch where next < n is a direct fact, so
	// both reslices (and the range loops) carry no bounds checks — the
	// modulus form defeats the prover.
	next := w.next
	head := conns[:0]
	tail := conns
	if next > 0 && next < n {
		head = conns[:next]
		tail = conns[next:]
	} else {
		next = 0
	}
	for _, c := range tail {
		if len(dst) >= cap(dst) {
			break
		}
		k := c.in.popBatch(dst[len(dst):cap(dst)])
		if k > 0 {
			w.fill.Add(int64(-k))
			// popBatch returns at most the spare capacity it was handed.
			//hepccl:checked
			dst = dst[:len(dst)+k]
		}
	}
	for _, c := range head {
		if len(dst) >= cap(dst) {
			break
		}
		k := c.in.popBatch(dst[len(dst):cap(dst)])
		if k > 0 {
			w.fill.Add(int64(-k))
			// popBatch returns at most the spare capacity it was handed.
			//hepccl:checked
			dst = dst[:len(dst)+k]
		}
	}
	w.next = next + 1
	w.prune()
	return dst
}

// popOne takes a single event for the paced/full-pipeline serial modes.
// Worker-side only.
//
//hepccl:hotpath
func (w *worker) popOne() (*event, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	conns := w.conns
	// Same two-chunk round-robin as drain; base recovers the absolute
	// connection index for the resume cursor.
	next := w.next
	head := conns[:0]
	tail := conns
	base := 0
	if next > 0 && next < len(conns) {
		head = conns[:next]
		tail = conns[next:]
		base = next
	}
	for k, c := range tail {
		if ev, ok := c.in.pop(); ok {
			w.next = base + k + 1
			w.fill.Add(-1)
			return ev, true
		}
	}
	for k, c := range head {
		if ev, ok := c.in.pop(); ok {
			w.next = k + 1
			w.fill.Add(-1)
			return ev, true
		}
	}
	w.next = base
	w.prune()
	return nil, false
}

// prune drops connections that can never produce again: reader exited and
// ingest ring empty (the reader raises readerGone only after its final push,
// so this order of observation is conclusive). Callers hold w.mu.
func (w *worker) prune() {
	live := w.conns[:0]
	for _, c := range w.conns {
		if c.readerGone.Load() && c.in.len() == 0 {
			continue
		}
		live = append(live, c)
	}
	for i := len(live); i < len(w.conns); i++ {
		w.conns[i] = nil
	}
	w.conns = live
}

// enqueue admits ev to its connection's worker lane under the overflow
// policy. It reports whether the event was accepted; rejected events are
// counted as drops (the caller still owns ev).
//
//hepccl:hotpath
func (s *Server) enqueue(ev *event) bool {
	c := ev.c
	w := c.w
	depth := int64(s.cfg.QueueDepth)
	var f int64
	for spins := 0; ; {
		f = w.fill.Load()
		if f < depth {
			if w.fill.CompareAndSwap(f, f+1) {
				break
			}
			continue
		}
		if s.cfg.Policy != PolicyBlock || s.isDraining() {
			// Full lane under drop policy — or ingress is closing, where
			// nothing will drain fast enough to honor a blocking admit.
			// Either way it is a FIFO loss.
			return false
		}
		// Backpressure: stall this reader (and through TCP, the sender)
		// until the worker frees a slot. Yield first — on few-core hosts
		// the worker needs this core to make that progress — then back off
		// to short sleeps so a long stall does not burn the CPU.
		if spins++; spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
	c.in.push(ev)
	s.stats.observeQueueDepth(int(f + 1))
	w.notify()
	return true
}
