//go:build linux

package server

import (
	"context"
	"net"
	"syscall"
)

// reusePortSupported reports whether this platform can open multiple
// listeners on one address via SO_REUSEPORT, letting the kernel shard
// incoming connections across acceptor goroutines without a shared accept
// lock.
const reusePortSupported = true

// soReusePort is SO_REUSEPORT on Linux. The syscall package does not export
// it (it lives in x/sys/unix, which this module deliberately avoids); the
// value is 15 on every Linux architecture this module targets.
const soReusePort = 0xf

// listenReusePort opens a TCP listener on addr with SO_REUSEPORT set, so N
// such listeners on the same address each receive a kernel-chosen share of
// incoming connections.
func listenReusePort(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}
