// Package server is the network serving layer over the ADAPT pipeline: a TCP
// event-ingest service speaking the self-framing ALPHA packet wire format
// (adapt.StreamReader / adapt.StreamWriter), the software analogue of
// integrating the paper's island-detection stage into a real-time camera
// readout (§6's "system scalability concerns").
//
// Architecture:
//
//	conn 1 ──reader──[SPSC ring]──┐
//	conn 2 ──reader──[SPSC ring]──┼─ lane 1: worker (Pipeline) ─ batched drain
//	                              │     │ ServeBatch → coalesced response
//	conn 3 ──reader──[SPSC ring]──┐     ▼ write per conn
//	conn N ──reader──[SPSC ring]──┼─ lane W: worker (Pipeline)
//
// Each connection carries a stream of ALPHA packets; a per-connection reader
// assembles them into events (resynchronizing in place inside the read
// window across corrupted frames) and pushes them onto its own single-
// producer/single-consumer ring. Connections are assigned to worker lanes at
// accept time (least-loaded), so every ring has exactly one producer (the
// conn's reader) and one consumer (the lane's worker) — event handoff on the
// hot path is two atomic position updates, no locks and no channel ops.
// Pipelines hold pedestal-calibration and scratch state and are not
// concurrency-safe, so every worker owns one calibrated adapt.Pipeline.
//
// The derandomizer-depth bound lives in a per-lane admission counter, not in
// the rings: admission CASes the counter against Config.QueueDepth, and the
// worker decrements it as it drains, so the bound spans all connections of a
// lane exactly like one hardware FIFO shared by the lane. Under PolicyDrop
// an event arriving at a full lane is counted and discarded — and the reader
// skims it off the wire on frame headers alone (no checksum, no sample
// decode), the way a full hardware derandomizer never inspects the trigger
// it refuses; under PolicyBlock the reader stalls, pushing backpressure onto
// the TCP connection instead. Both are reported in the stats, so the
// server's observed loss fraction under Poisson load can be compared
// directly against the discrete-event simulation (adapt.SimulateTrigger,
// E14).
//
// An idle worker parks on a wake channel after publishing a parked flag and
// re-checking its rings (producers that observe the flag nudge the channel),
// so a quiet server spins nothing. When running unpaced, the worker drains
// its rings in batches, serves the batch through adapt.Pipeline.ServeBatch,
// and coalesces the batch's serialized adapt.EventRecord responses into one
// pooled write per originating connection. The whole path — frame decode,
// ring handoff, serving, response write — runs at zero heap allocations per
// event in steady state (gated in CI via BenchmarkIngestPath).
//
// The server supports graceful drain on shutdown (stop ingress, process
// everything queued, flush responses), and exposes global and per-connection
// statistics — events in/out, drops, bad packets, skipped bytes, queue
// high-water mark, latency percentiles — via a JSON stats endpoint and a
// periodic log line.
package server
