// Package server is the network serving layer over the ADAPT pipeline: a TCP
// event-ingest service speaking the self-framing ALPHA packet wire format
// (adapt.StreamReader / adapt.StreamWriter), the software analogue of
// integrating the paper's island-detection stage into a real-time camera
// readout (§6's "system scalability concerns").
//
// Architecture:
//
//	conn 1 ──reader──┐                        ┌─worker 1 (Pipeline)─┐
//	conn 2 ──reader──┼──> sharded bounded ────┼─worker 2 (Pipeline)─┼──> per-conn
//	conn N ──reader──┘    derandomizer queues └─worker W (Pipeline)─┘    writers
//
// Each connection carries a stream of ALPHA packets; a per-connection reader
// assembles them into events (resynchronizing across corrupted frames) and
// shards complete events round-robin across a pool of worker goroutines.
// Pipelines hold pedestal-calibration and scratch state and are not
// concurrency-safe, so every worker owns one calibrated adapt.Pipeline.
//
// Each worker's bounded event queue mirrors the §6 derandomizer FIFO modeled
// by adapt.SimulateTrigger (experiments deadtime, E14): with PolicyDrop an
// event arriving at a full queue is counted and discarded, exactly like a
// trigger hitting a full FIFO; with PolicyBlock the reader stalls, pushing
// backpressure onto the TCP connection instead. Both are reported in the
// stats, so the server's observed loss fraction under Poisson load can be
// compared directly against the discrete-event simulation.
//
// Workers emit serialized adapt.EventRecord downlink responses back on the
// originating connection. The server supports graceful drain on shutdown
// (stop ingress, process everything queued, flush responses), and exposes
// global and per-connection statistics — events in/out, drops, bad packets,
// skipped bytes, queue high-water mark, latency percentiles — via a JSON
// stats endpoint and a periodic log line.
package server
