package server

import (
	"io"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/wal"
)

// loopStream replays one serialized event stream forever — an infinite clean
// link with zero per-read allocation, so the ingest benchmark measures the
// spine, not the source.
type loopStream struct {
	data []byte
	off  int
}

func (l *loopStream) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// BenchmarkIngestPath measures the full software spine between the socket and
// the response bytes: stream decode (resync scan + frame parse), queue
// handoff, batched serving, and response serialization into a pooled write
// buffer. It is single-goroutine on purpose — the point is the per-event CPU
// and allocation cost of the path, not scheduler throughput — and the CI
// bench smoke gates on allocs/op == 0 in steady state. The record variant
// runs the same spine with frame capture and WAL appends enabled, gating that
// durability stays off the allocator too.
func BenchmarkIngestPath(b *testing.B) {
	b.Run("bare", func(b *testing.B) { benchIngestPath(b, false) })
	b.Run("record", func(b *testing.B) { benchIngestPath(b, true) })
}

func benchIngestPath(b *testing.B, record bool) {
	cfg := testConfig()
	p, err := adapt.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	events := makeEvents(b, cfg, 4, 42)
	var stream []byte
	for _, ev := range events {
		for i := range ev {
			frame, err := ev[i].Marshal()
			if err != nil {
				b.Fatal(err)
			}
			stream = append(stream, frame...)
		}
	}
	sr := adapt.NewStreamReader(&loopStream{data: stream})
	var wlog *wal.Writer
	if record {
		w, _, err := wal.Open(wal.Options{Dir: b.TempDir(), Retain: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		wlog = w
		sr.SetCapture(true)
	}

	const batch = 32
	queue := newRing[*event](64)
	out := newRing[[]byte](responseRingDepth)
	evs := make([]*event, batch)
	pkts := make([][]adapt.Packet, 0, batch)
	recs := make([]adapt.EventRecord, batch)
	errs := make([]error, batch)

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		// Ingest leg: decode and push one batch through the ingest ring.
		for i := 0; i < batch; i++ {
			ev := getEvent()
			packets, err := sr.ReadEventInto(ev.packets, cfg.ASICs)
			if err != nil && err != io.EOF {
				b.Fatal(err)
			}
			ev.packets = packets
			if wlog != nil {
				if err := wlog.Append(packets[0].Event, sr.Captured()); err != nil {
					b.Fatal(err)
				}
			}
			if !queue.push(ev) {
				b.Fatal("ingest ring full")
			}
		}
		// Worker leg: drain, serve, coalesce into one pooled buffer.
		if got := queue.popBatch(evs); got != batch {
			b.Fatalf("drained %d of %d", got, batch)
		}
		pkts = pkts[:0]
		for _, e := range evs {
			pkts = append(pkts, e.packets)
		}
		p.ServeBatch(pkts, recs[:batch], errs[:batch])
		buf := bufPool.Get().([]byte)[:0]
		for i, e := range evs {
			if errs[i] != nil {
				b.Fatal(errs[i])
			}
			buf = recs[i].AppendTo(buf)
			putEvent(e)
		}
		if !out.push(buf) {
			b.Fatal("response ring full")
		}
		// Writer leg: take ownership and recycle.
		w, ok := out.pop()
		if !ok {
			b.Fatal("response ring empty")
		}
		bufPool.Put(w[:0]) //nolint:staticcheck // []byte pooling is intentional
	}
}
