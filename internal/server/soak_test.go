package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/chaos"
	"github.com/wustl-adapt/hepccl/internal/detector"
)

// countRecords parses the downlink record framing (8-byte header carrying
// the event id and island count, then fixed-size island entries) until EOF,
// returning how many complete records arrived. Any malformed tail is an
// error: the server must never emit a partial record.
func countRecords(nc net.Conn) (int, error) {
	br := bufio.NewReaderSize(nc, 64<<10)
	var hdr [8]byte
	n := 0
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, fmt.Errorf("record %d header: %w", n, err)
		}
		islands := int(binary.BigEndian.Uint32(hdr[4:]))
		if _, err := io.CopyN(io.Discard, br, int64(islands)*adapt.RecordIslandBytes); err != nil {
			return n, fmt.Errorf("record %d body (%d islands): %w", n, islands, err)
		}
		n++
	}
}

// TestChaosSoak drives Poisson-paced traffic through frame-level fault
// injection for several seconds and then balances the books exactly:
//
//	events assembled        == events offered - events killed by faults + skimmed flips
//	incomplete events       == corrupted events + disconnect partials - skimmed flips
//	served + dropped + bad  == events assembled
//
// so served + dropped + incomplete accounts for every offered event. The
// server must stay up, never report overloaded, and leak no goroutines.
//
// "Skimmed flips" is the one sanctioned crossover between the client's
// fault ledger and the server's: at ρ≈0.99 under PolicyDrop the lane
// occasionally hits derandomizer depth, and a condemned event is skimmed on
// frame headers alone — no checksum, no decode (DESIGN.md §9). A bit flip
// in a skimmed event's payload is therefore never detected: the event
// counts as assembled-and-dropped rather than incomplete, exactly as a full
// hardware derandomizer refuses a trigger without inspecting it. The
// crossover count is not client-observable, so the two equalities above are
// checked with the measured crossover X = EventsIn - (offered - corrupted -
// partials), asserting 0 <= X <= min(corrupted, Dropped); the headline
// identity stays exact regardless.
//
// The fault set is restricted to "clean kills" — single bit flips (always
// caught by the frame checksum), frame truncation, and mid-event disconnects
// at packet boundaries — because each destroys exactly one event and nothing
// else, which is what makes exact accounting possible. Duplication and
// insertion faults break the 1:1 mapping (a duplicated ASIC also poisons the
// assembly it lands in) and are exercised in the chaos package's own tests
// instead. Faults and disconnects are mutually exclusive per event so each
// lost event has exactly one cause.
func TestChaosSoak(t *testing.T) {
	const (
		targetRate  = 15000 // events/s
		soakSeconds = 5
		seed        = 0x50AC
		corruptProb = 0.01  // per frame: 0.5% bit flip + 0.5% truncate
		discProb    = 0.001 // per event: cut mid-event, reconnect
	)
	totalEvents := targetRate * soakSeconds
	if testing.Short() {
		totalEvents = targetRate // one second under -race CI
	}

	baseline := runtime.NumGoroutine()

	cfg := testConfig()
	s, err := New(Config{
		Pipeline: cfg, Workers: 2, QueueDepth: 256, Policy: PolicyDrop,
		// Generous guards: they must exist (a wedged soak should fail fast,
		// not hang the suite) without tripping on healthy traffic.
		IdleTimeout:       30 * time.Second,
		AssemblyTimeout:   30 * time.Second,
		BreakerBadPackets: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	addr := ln.Addr().String()

	// One template event, rewritten per event id: generating 75k distinct
	// events dominates runtime without adding fault coverage.
	template := makeEvents(t, cfg, 1, seed)[0]
	frames := make([][]byte, len(template))
	for i := range template {
		f, err := template[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}

	rng := detector.NewRNG(seed)
	inj := chaos.NewFrameInjector(chaos.FrameConfig{
		Seed:     seed + 1,
		BitFlip:  corruptProb / 2,
		Truncate: corruptProb / 2,
	})

	var (
		offered    int // events whose packets we began writing
		corrupted  int // events with >= 1 faulted frame
		partials   int // events cut mid-assembly by a disconnect
		reconnects int
	)

	// drains collects the response-reader goroutines; each parses the record
	// framing until its connection is done so server writers never feel
	// backpressure AND every response byte is accounted for: the ring spine
	// recycles event and buffer storage aggressively, so a coalesced batch
	// buffer written from recycled memory that had been corrupted by a stale
	// writer would surface here as a framing error or a record-count
	// mismatch against EventsOut.
	var drains []chan struct{}
	var recordsDrained atomic.Int64
	var drainMu sync.Mutex
	var drainErrs []error
	drainConn := func(nc net.Conn) {
		done := make(chan struct{})
		drains = append(drains, done)
		go func() {
			defer close(done)
			n, err := countRecords(nc)
			recordsDrained.Add(int64(n))
			if err != nil {
				drainMu.Lock()
				drainErrs = append(drainErrs, err)
				drainMu.Unlock()
			}
			nc.Close()
		}()
	}

	dial := func() net.Conn {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		drainConn(nc)
		return nc
	}
	nc := dial()

	// reframe points the wire frames at event id ev.
	reframe := func(ev uint32) {
		for _, f := range frames {
			if err := adapt.PatchFrameEventID(f, ev); err != nil {
				t.Fatal(err)
			}
		}
	}

	start := time.Now()
	interval := time.Second / time.Duration(targetRate)
	for ev := 0; ev < totalEvents; ev++ {
		// Poisson pacing: exponential inter-arrival around the target rate,
		// checked every 64 events to keep syscall overhead off the clock.
		if ev%64 == 0 {
			due := start.Add(time.Duration(ev) * interval)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		reframe(uint32(ev))
		offered++

		if rng.Float64() < discProb {
			// Mid-event disconnect: at least one full packet, never all.
			k := 1 + rng.Intn(len(frames)-1)
			for i := 0; i < k; i++ {
				if _, err := nc.Write(frames[i]); err != nil {
					t.Fatalf("event %d packet %d: %v", ev, i, err)
				}
			}
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.CloseWrite() // clean FIN: buffered packets still arrive
			} else {
				nc.Close()
			}
			partials++
			reconnects++
			nc = dial()
			continue
		}

		hit := false
		for _, f := range frames {
			chunks, fault := inj.Mutate(f)
			if fault != chaos.FaultNone {
				hit = true
			}
			for _, c := range chunks {
				if _, err := nc.Write(c); err != nil {
					t.Fatalf("event %d: %v", ev, err)
				}
			}
		}
		if hit {
			corrupted++
		}
	}
	elapsed := time.Since(start)
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		nc.Close()
	}

	// The server must still be answering while loaded.
	if h := s.Health(); h == HealthOverloaded {
		t.Errorf("health = %v at end of soak", h)
	}

	// Wait for every response stream to finish, then drain the server.
	for _, done := range drains {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("response drain wedged")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}

	snap := s.StatsSnapshot()
	t.Logf("soak: %d events in %v (%.0f ev/s), corrupted=%d partials=%d reconnects=%d",
		offered, elapsed.Round(time.Millisecond),
		float64(offered)/elapsed.Seconds(), corrupted, partials, reconnects)
	t.Logf("server: in=%d out=%d dropped=%d bad_ev=%d incomplete=%d bad_pkts=%d skipped=%dB",
		snap.EventsIn, snap.EventsOut, snap.Dropped, snap.BadEvents,
		snap.IncompleteEvents, snap.BadPackets, snap.SkippedBytes)

	if corrupted == 0 || partials == 0 {
		t.Fatalf("fault mix too thin to prove anything: corrupted=%d partials=%d", corrupted, partials)
	}
	// Corrupted events that were condemned by a full lane were skimmed on
	// headers alone, so a payload flip there goes undetected: the event is
	// assembled (and dropped) instead of incomplete. That crossover X is the
	// only permitted deviation from the client's ledger, and it is bounded
	// by both sides of the overlap.
	clean := uint64(offered - corrupted - partials)
	if snap.EventsIn < clean {
		t.Fatalf("EventsIn = %d, want >= %d (offered %d - corrupted %d - partials %d)",
			snap.EventsIn, clean, offered, corrupted, partials)
	}
	skimmedFlips := snap.EventsIn - clean
	if skimmedFlips > 0 {
		t.Logf("skimmed flips: %d corrupted events condemned before checksum", skimmedFlips)
	}
	if skimmedFlips > snap.Dropped || skimmedFlips > uint64(corrupted) {
		t.Errorf("EventsIn = %d exceeds %d by %d, more than dropped %d / corrupted %d",
			snap.EventsIn, clean, skimmedFlips, snap.Dropped, corrupted)
	}
	if want := uint64(corrupted+partials) - skimmedFlips; snap.IncompleteEvents != want {
		t.Errorf("IncompleteEvents = %d, want %d (corrupted %d + partials %d - skimmed %d)",
			snap.IncompleteEvents, want, corrupted, partials, skimmedFlips)
	}
	if got := snap.EventsOut + snap.Dropped + snap.BadEvents; got != snap.EventsIn {
		t.Errorf("served %d + dropped %d + bad %d = %d, want EventsIn %d",
			snap.EventsOut, snap.Dropped, snap.BadEvents, got, snap.EventsIn)
	}
	// The headline identity: every offered event is accounted for.
	if got := snap.EventsOut + snap.Dropped + snap.BadEvents + snap.IncompleteEvents; got != uint64(offered) {
		t.Errorf("served+dropped+bad+incomplete = %d, want offered %d", got, offered)
	}
	if snap.ReadErrors != 0 {
		t.Errorf("ReadErrors = %d, want 0 (all disconnects were clean FINs)", snap.ReadErrors)
	}
	if snap.IdleTimeouts != 0 || snap.BreakerTrips != 0 {
		t.Errorf("guards tripped during healthy soak: idle=%d breaker=%d",
			snap.IdleTimeouts, snap.BreakerTrips)
	}
	// Downlink integrity: every record the server counts as served must have
	// arrived as a well-framed record. A pooled buffer recycled while still
	// in a writer's hands would break the framing or the count.
	for _, err := range drainErrs {
		t.Errorf("response stream: %v", err)
	}
	if got := recordsDrained.Load(); got != int64(snap.EventsOut) {
		t.Errorf("client parsed %d records, server served %d", got, snap.EventsOut)
	}

	// Goroutine accounting: everything the soak spawned must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines: %d after soak, %d before\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
