package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// admissionHarness wires a bare Server, one worker lane, and n connections —
// just enough state for enqueue/drain without sockets.
func admissionHarness(depth, nconns int, policy OverflowPolicy) (*Server, *worker, []*conn) {
	s := &Server{
		cfg:      Config{QueueDepth: depth, Policy: policy}.withDefaults(),
		draining: make(chan struct{}),
	}
	w := newWorker()
	conns := make([]*conn, nconns)
	for i := range conns {
		conns[i] = &conn{in: newRing[*event](depth), w: w}
		w.addConn(conns[i])
	}
	return s, w, conns
}

// TestEnqueueAdmissionCASRace hammers the derandomizer admission CAS from
// many producers against a concurrently draining consumer. Invariants: fill
// never exceeds QueueDepth, every accepted event is drained exactly once,
// and accepted+rejected accounts for every attempt. Under -race this is the
// data-race proof for the admission path.
func TestEnqueueAdmissionCASRace(t *testing.T) {
	const (
		producers   = 8
		perProducer = 5000
		depth       = 16
	)
	s, w, conns := admissionHarness(depth, producers, PolicyDrop)
	var accepted, rejected atomic.Int64
	stop := make(chan struct{})
	consumerDone := make(chan struct{})
	var drained int64
	go func() {
		defer close(consumerDone)
		dst := make([]*event, 0, depth)
		final := false
		for {
			dst = w.drain(dst[:0])
			if f := w.fill.Load(); f < 0 || f > depth {
				t.Errorf("fill = %d outside [0,%d]", f, depth)
			}
			drained += int64(len(dst))
			for _, ev := range dst {
				putEvent(ev)
			}
			if len(dst) == 0 {
				if final {
					return
				}
				select {
				case <-stop:
					// Producers are done; one more empty drain proves the
					// lane is fully swept.
					final = true
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(c *conn) {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				ev := getEvent()
				ev.c = c
				if s.enqueue(ev) {
					accepted.Add(1)
				} else {
					putEvent(ev)
					rejected.Add(1)
				}
			}
		}(conns[i])
	}
	wg.Wait()
	close(stop)
	<-consumerDone
	if got := accepted.Load() + rejected.Load(); got != producers*perProducer {
		t.Fatalf("accepted %d + rejected %d = %d, want %d attempts",
			accepted.Load(), rejected.Load(), got, producers*perProducer)
	}
	if drained != accepted.Load() {
		t.Fatalf("drained %d events, accepted %d", drained, accepted.Load())
	}
	if f := w.fill.Load(); f != 0 {
		t.Fatalf("fill = %d after full drain, want 0", f)
	}
}

// TestEnqueueBlockPolicyBackpressure runs the same contention under
// PolicyBlock: no event may be rejected — producers stall in the admission
// loop until the consumer frees a slot — and the fill bound still holds.
func TestEnqueueBlockPolicyBackpressure(t *testing.T) {
	const (
		producers   = 4
		perProducer = 2000
		depth       = 8
		total       = producers * perProducer
	)
	s, w, conns := admissionHarness(depth, producers, PolicyBlock)
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		dst := make([]*event, 0, depth)
		drained := 0
		for drained < total {
			dst = w.drain(dst[:0])
			if f := w.fill.Load(); f < 0 || f > depth {
				t.Errorf("fill = %d outside [0,%d]", f, depth)
			}
			drained += len(dst)
			for _, ev := range dst {
				putEvent(ev)
			}
			if len(dst) == 0 {
				runtime.Gosched()
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(c *conn) {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				ev := getEvent()
				ev.c = c
				if !s.enqueue(ev) {
					t.Errorf("enqueue rejected an event under PolicyBlock")
					putEvent(ev)
				}
			}
		}(conns[i])
	}
	wg.Wait()
	<-consumerDone
	if f := w.fill.Load(); f != 0 {
		t.Fatalf("fill = %d after consuming all %d events, want 0", f, total)
	}
}
