package server

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// TestTrickleFlushesPromptly guards the bounded linger in the batch worker
// loop: paced trickle traffic — each event sent only after the previous
// response came back, so the worker's rings never hold more than one event —
// must still see every response promptly. The linger is a single yield and
// re-poll; a variant that waited for a fuller batch would stall every
// iteration of this loop and trip the per-event read deadline.
func TestTrickleFlushesPromptly(t *testing.T) {
	cfg := testConfig()
	_, addr := startServer(t, Config{Pipeline: cfg, Workers: 1, QueueDepth: 8, Policy: PolicyBlock})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 25
	events := makeEvents(t, cfg, n, 7)
	sw := adapt.NewStreamWriter(nc)
	var hdr [8]byte
	for i, ev := range events {
		if err := sw.WriteEvent(ev); err != nil {
			t.Fatalf("event %d: write: %v", i, err)
		}
		if err := nc.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			t.Fatalf("event %d: response did not flush promptly: %v", i, err)
		}
		if got := binary.BigEndian.Uint32(hdr[:4]); got != uint32(i) {
			t.Fatalf("event %d: got response for event %d", i, got)
		}
		body := make([]byte, adapt.RecordIslandBytes*int(binary.BigEndian.Uint32(hdr[4:])))
		if _, err := io.ReadFull(nc, body); err != nil {
			t.Fatalf("event %d: record body: %v", i, err)
		}
		// Pace the trickle: leave the worker parked-or-idle between events so
		// every drain is a batch of one.
		time.Sleep(2 * time.Millisecond)
	}
}
