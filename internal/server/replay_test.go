package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/chaos"
	"github.com/wustl-adapt/hepccl/internal/wal"
)

// recordChaosRun streams n seeded, chaos-mutated events through a recording
// block-policy server and returns how many events made it into the log.
func recordChaosRun(t *testing.T, dir string, n int) uint64 {
	t.Helper()
	cfg := testConfig()
	s, err := New(Config{
		Pipeline:  cfg,
		Workers:   2,
		Policy:    PolicyBlock,
		RecordDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan int, 1)
	go func() {
		k, _ := countRecords(nc)
		drained <- k
	}()

	template := makeEvents(t, cfg, 1, 99)[0]
	frames := make([][]byte, len(template))
	for i := range template {
		f, err := template[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	inj := chaos.NewFrameInjector(chaos.FrameConfig{
		Seed:     0xD0_0D,
		BitFlip:  0.01,
		Truncate: 0.01,
	})
	for ev := 0; ev < n; ev++ {
		for _, f := range frames {
			if err := adapt.PatchFrameEventID(f, uint32(ev)); err != nil {
				t.Fatal(err)
			}
			chunks, _ := inj.Mutate(f)
			for _, c := range chunks {
				if _, err := nc.Write(c); err != nil {
					t.Fatalf("event %d: %v", ev, err)
				}
			}
		}
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		nc.Close()
	}
	<-drained
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}

	sc, err := wal.NewScanner(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for {
		if _, err := sc.Next(); err != nil {
			break
		}
	}
	if sc.Torn() != 0 {
		t.Fatalf("cleanly shut-down log has %d torn segments", sc.Torn())
	}
	return sc.Records()
}

// replayTuple is the accounting fingerprint one replay must reproduce.
type replayTuple struct {
	in, out, dropped, bad, incomplete uint64
	downlinkRecords, downlinkBytes    uint64
	crc                               uint32
}

// replayOnce replays dir into a fresh block-policy server and returns the
// combined server+client accounting.
func replayOnce(t *testing.T, dir string, rate float64) replayTuple {
	t.Helper()
	s, err := New(Config{
		Pipeline: testConfig(),
		Workers:  2,
		Policy:   PolicyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Replay(ctx, ReplayOptions{Addr: ln.Addr().String(), Dir: dir, Rate: rate})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	snap := s.StatsSnapshot()
	return replayTuple{
		in: snap.EventsIn, out: snap.EventsOut, dropped: snap.Dropped,
		bad: snap.BadEvents, incomplete: snap.IncompleteEvents,
		downlinkRecords: res.DownlinkRecords, downlinkBytes: res.DownlinkBytes,
		crc: res.DownlinkCRC,
	}
}

// TestReplayDeterminism is the replay-check gate: record a seeded-chaos run,
// replay the log twice, and require byte-identical accounting — same
// served/dropped/bad/incomplete counts and the same downlink CRC — plus
// agreement between the log and what each replay served.
func TestReplayDeterminism(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 1000
	}
	dir := t.TempDir()
	recorded := recordChaosRun(t, dir, n)
	if recorded == 0 || recorded >= uint64(n) {
		// Chaos must have culled some events but nowhere near all: the log
		// holds exactly the decoded survivors.
		t.Fatalf("recorded %d of %d offered events; fault mix is broken", recorded, n)
	}
	t.Logf("recorded %d of %d offered events", recorded, n)

	a := replayOnce(t, dir, 0)
	b := replayOnce(t, dir, 0)
	if a != b {
		t.Fatalf("replays diverged:\n  first:  %+v\n  second: %+v", a, b)
	}
	if a.in != recorded {
		t.Errorf("replay ingested %d events, log holds %d", a.in, recorded)
	}
	if a.out+a.bad != recorded || a.dropped != 0 || a.incomplete != 0 {
		t.Errorf("replay of a clean log under block policy must account for everything: %+v (recorded %d)", a, recorded)
	}
	if a.downlinkRecords != a.out {
		t.Errorf("client framed %d records, server served %d", a.downlinkRecords, a.out)
	}
	if a.crc == 0 {
		t.Error("downlink CRC is zero; fingerprint is vacuous")
	}
}
