package server

import (
	"bufio"
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/wal"
)

// Replay re-serves a recorded WAL through a live ingest endpoint: each
// record's raw wire bytes are streamed over one TCP connection in append
// order, optionally paced by the recorded inter-event timing, while the
// responses are drained and fingerprinted. Because one connection pins to one
// worker and the payloads are byte-identical to the recorded uplink, a replay
// against a block-policy server is deterministic: two replays of the same log
// produce identical served/dropped/bad/incomplete counts and an identical
// downlink byte stream.

// replayCRCTable fingerprints replay downlink streams (CRC-32C).
var replayCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ReplayOptions parameterizes one replay run.
type ReplayOptions struct {
	// Addr is the ingest endpoint to replay against.
	Addr string
	// Dir is the WAL directory to read.
	Dir string
	// Rate scales the recorded pacing: 1 replays at recorded speed, 2 at
	// double speed, and 0 (or negative) replays as fast as the link accepts.
	Rate float64
	// Logger receives progress lines. Nil is silent.
	Logger *log.Logger
}

// ReplayResult summarizes one replay run.
type ReplayResult struct {
	// Events and Bytes count the records streamed and their payload bytes.
	Events uint64
	// Bytes is the total payload bytes written.
	Bytes uint64
	// Torn is how many torn segments the scan encountered (0 for a log that
	// was repaired by a recording restart).
	Torn int
	// DownlinkRecords and DownlinkBytes count the response stream.
	DownlinkRecords uint64
	DownlinkBytes   uint64
	// DownlinkCRC is the CRC-32C of the entire response byte stream, the
	// fingerprint two replays of the same log must agree on.
	DownlinkCRC uint32
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// Replay streams the WAL at opts.Dir into opts.Addr and drains the responses.
// It returns once the log is exhausted and the server has answered everything
// it will answer (the connection's write side is closed and the response
// stream read to EOF).
func Replay(ctx context.Context, opts ReplayOptions) (ReplayResult, error) {
	var res ReplayResult
	sc, err := wal.NewScanner(opts.Dir)
	if err != nil {
		return res, err
	}
	defer sc.Close()

	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", opts.Addr)
	if err != nil {
		return res, fmt.Errorf("replay: dial %s: %w", opts.Addr, err)
	}
	defer nc.Close()

	// Drain responses concurrently so server backpressure cannot deadlock the
	// uplink against an unread downlink.
	type drainResult struct {
		records uint64
		bytes   uint64
		crc     uint32
		err     error
	}
	drained := make(chan drainResult, 1)
	go func() {
		var dr drainResult
		rs := adapt.NewRecordScanner(nc, nil)
		for {
			rec, err := rs.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				dr.err = err
				break
			}
			dr.records++
			dr.bytes += uint64(len(rec))
			dr.crc = crc32.Update(dr.crc, replayCRCTable, rec)
		}
		drained <- dr
	}()

	start := time.Now()
	bw := bufio.NewWriterSize(nc, 256<<10)
	var firstTs uint64
	haveFirst := false
	werr := func() error {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			rec, err := sc.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if opts.Rate > 0 {
				if !haveFirst {
					firstTs, haveFirst = rec.TsNanos, true
				}
				target := time.Duration(float64(rec.TsNanos-firstTs) / opts.Rate)
				if wait := time.Until(start.Add(target)); wait > 0 {
					// Flush what is queued before sleeping so pacing gaps are
					// pacing gaps, not buffering artifacts.
					if err := bw.Flush(); err != nil {
						return err
					}
					time.Sleep(wait)
				}
			}
			if _, err := bw.Write(rec.Payload); err != nil {
				return err
			}
			res.Events++
			res.Bytes += uint64(len(rec.Payload))
		}
	}()
	if werr == nil {
		werr = bw.Flush()
	}
	res.Torn = sc.Torn()
	if werr != nil {
		// Abort: tear the whole connection down so the drainer unblocks.
		nc.Close()
	} else if cw, ok := nc.(interface{ CloseWrite() error }); ok {
		// Half-close the uplink so the server sees a clean end of stream,
		// serves the tail, and closes the downlink — unblocking the drainer.
		werr = cw.CloseWrite()
	}
	dr := <-drained
	res.DownlinkRecords = dr.records
	res.DownlinkBytes = dr.bytes
	res.DownlinkCRC = dr.crc
	res.Duration = time.Since(start)
	if werr != nil {
		return res, fmt.Errorf("replay: uplink: %w", werr)
	}
	if dr.err != nil {
		return res, fmt.Errorf("replay: downlink: %w", dr.err)
	}
	if l := opts.Logger; l != nil {
		l.Printf("replay: %d events (%d bytes) in %v, %d records back (%d bytes, crc %08x)",
			res.Events, res.Bytes, res.Duration.Round(time.Millisecond),
			res.DownlinkRecords, res.DownlinkBytes, res.DownlinkCRC)
	}
	return res, nil
}
