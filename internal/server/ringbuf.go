package server

import "sync/atomic"

// ring is a lock-free single-producer single-consumer queue over a
// power-of-two circular buffer. Head and tail are monotonically increasing
// positions (never wrapped), masked into the buffer on access, and each lives
// on its own cache line so the producer and consumer cores do not false-share.
//
// The SPSC contract is structural, not checked: exactly one goroutine may
// call push and exactly one may call pop/popBatch. In the ingest spine every
// ring has a natural owner pair — a connection's reader feeds its worker, a
// worker feeds the connection's writer — which is what makes the single-slot
// atomics sufficient. Visibility follows from the Go memory model: the
// producer writes the slot before the tail store, and the consumer's tail
// load synchronizes with that store, so the slot read observes the value
// (and symmetrically for head when the producer checks for space).
//
// The physical capacity is the logical depth rounded up to a power of two;
// callers that need an exact bound (the derandomizer depth) enforce it with
// an external admission counter and treat the ring as never-full.
//
//hepccl:spsc
type ring[T any] struct {
	buf  []T      //hepccl:const
	mask uint64   //hepccl:const
	_    [48]byte // keep head off the buf/mask line
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// newRing returns a ring holding at least depth elements.
func newRing[T any](depth int) *ring[T] {
	if depth < 1 {
		depth = 1
	}
	r := &ring[T]{}
	r.buf = make([]T, ceilPow2(depth))
	r.mask = uint64(len(r.buf) - 1)
	return r
}

// push appends v, reporting false when the ring is physically full.
// Producer-side only.
//
//hepccl:hotpath
func (r *ring[T]) push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	// Masking with len(buf)-1 (== mask, by construction) under the
	// emptiness guard is what lets the compiler prove the store in range —
	// including when push inlines into a caller's retry loop.
	buf := r.buf
	if len(buf) == 0 {
		return false
	}
	buf[t&uint64(len(buf)-1)] = v
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest element. Consumer-side only. The vacated slot is
// zeroed so the ring never pins a popped element's storage.
//
//hepccl:hotpath
func (r *ring[T]) pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	// Same shape as push: the len-derived mask plus the emptiness guard
	// prove the slot access in range, even when pop inlines into the
	// worker's round-robin scan.
	buf := r.buf
	if len(buf) == 0 {
		return zero, false
	}
	i := h & uint64(len(buf)-1)
	v := buf[i]
	buf[i] = zero
	r.head.Store(h + 1)
	return v, true
}

// popBatch removes up to len(dst) elements in arrival order, returning the
// count. Consumer-side only. One head store publishes the whole batch, so a
// backlog costs one shared-line write instead of one per element.
//
//hepccl:hotpath
func (r *ring[T]) popBatch(dst []T) int {
	var zero T
	h := r.head.Load()
	n := int(r.tail.Load() - h)
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	// Same shape as push: the len-derived mask plus the emptiness guard
	// prove both slot accesses in range, so the drain loop runs check-free.
	buf := r.buf
	if len(buf) == 0 {
		return 0
	}
	mask := uint64(len(buf) - 1)
	for i := 0; i < n; i++ {
		j := (h + uint64(i)) & mask
		dst[i] = buf[j]
		buf[j] = zero
	}
	r.head.Store(h + uint64(n))
	return n
}

// len reports the element count. Racy by nature (either end may move), but
// each end's own view is exact: after the producer sees len()==0 having
// stopped pushing, the consumer has taken everything.
//
//hepccl:hotpath
func (r *ring[T]) len() int {
	return int(r.tail.Load() - r.head.Load())
}
