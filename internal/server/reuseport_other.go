//go:build !linux

package server

import (
	"fmt"
	"net"
)

// reusePortSupported: without SO_REUSEPORT the acceptor shards fall back to
// sharing one listener — the accept loops still run per shard and the
// lane-per-core worker placement is unchanged, only the kernel-side socket
// sharding is lost.
const reusePortSupported = false

// listenReusePort is unavailable on this platform.
func listenReusePort(addr string) (net.Listener, error) {
	return nil, fmt.Errorf("server: SO_REUSEPORT not supported on this platform")
}
