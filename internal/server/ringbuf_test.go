package server

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRingCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 64: 64, 65: 128, 1000: 1024}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRingEmptyAndFullBoundaries(t *testing.T) {
	r := newRing[int](4)
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring reported a value")
	}
	if r.len() != 0 {
		t.Fatalf("len = %d on empty ring", r.len())
	}
	for i := 0; i < 4; i++ {
		if !r.push(i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.push(99) {
		t.Fatal("push accepted beyond capacity")
	}
	if r.len() != 4 {
		t.Fatalf("len = %d, want 4", r.len())
	}
	// One pop frees exactly one slot.
	if v, ok := r.pop(); !ok || v != 0 {
		t.Fatalf("pop = %d,%v, want 0,true", v, ok)
	}
	if !r.push(4) {
		t.Fatal("push rejected after a pop freed a slot")
	}
	if r.push(99) {
		t.Fatal("push accepted with the freed slot already reused")
	}
	for want := 1; want <= 4; want++ {
		v, ok := r.pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on drained ring reported a value")
	}
}

// TestRingDepthOne covers QueueDepth=1 (TestServerDropPolicy runs the server
// this way): a single-slot ring must alternate push/pop cleanly.
func TestRingDepthOne(t *testing.T) {
	r := newRing[string](1)
	for i := 0; i < 3; i++ {
		if !r.push("x") {
			t.Fatal("push rejected on empty depth-1 ring")
		}
		if r.push("y") {
			t.Fatal("second push accepted on depth-1 ring")
		}
		if v, ok := r.pop(); !ok || v != "x" {
			t.Fatalf("pop = %q,%v", v, ok)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing[int](8)
	next := 0 // next value to push
	want := 0 // next value expected from pop
	// Offset phases force head/tail through several buffer wraps while the
	// ring stays partially full.
	for round := 0; round < 64; round++ {
		for i := 0; i < 5; i++ {
			if !r.push(next) {
				t.Fatalf("round %d: push %d rejected with len %d", round, next, r.len())
			}
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := r.pop()
			if !ok || v != want {
				t.Fatalf("round %d: pop = %d,%v, want %d,true", round, v, ok, want)
			}
			want++
		}
		if r.len() != next-want {
			t.Fatalf("round %d: len = %d, want %d", round, r.len(), next-want)
		}
		// Keep the ring from overflowing: drain the surplus every 2 rounds.
		if (round+1)%2 == 0 {
			for want < next {
				v, ok := r.pop()
				if !ok || v != want {
					t.Fatalf("drain: pop = %d,%v, want %d,true", v, ok, want)
				}
				want++
			}
		}
	}
}

func TestRingPopBatch(t *testing.T) {
	r := newRing[int](8)
	dst := make([]int, 8)
	if n := r.popBatch(dst); n != 0 {
		t.Fatalf("popBatch on empty = %d", n)
	}
	for i := 0; i < 6; i++ {
		r.push(i)
	}
	// A short dst bounds the batch.
	if n := r.popBatch(dst[:4]); n != 4 {
		t.Fatalf("popBatch = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	// The remainder wraps the buffer edge.
	for i := 6; i < 10; i++ {
		r.push(i)
	}
	if n := r.popBatch(dst); n != 6 {
		t.Fatalf("popBatch = %d, want 6", n)
	}
	for i := 0; i < 6; i++ {
		if dst[i] != 4+i {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], 4+i)
		}
	}
}

// TestRingPopClearsSlot checks that popped pointer slots are released for GC
// — a ring that pins old elements would defeat the event pool.
func TestRingPopClearsSlot(t *testing.T) {
	r := newRing[*int](4)
	v := new(int)
	r.push(v)
	r.pop()
	if r.buf[0] != nil {
		t.Fatal("pop left the slot pointing at the element")
	}
	r.push(new(int))
	r.push(new(int))
	if r.popBatch(make([]*int, 2)) != 2 {
		t.Fatal("popBatch short")
	}
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("popBatch left slot %d populated", i)
		}
	}
}

// TestRingConcurrentSPSC hammers one producer against one consumer; under
// -race this doubles as the memory-model proof that slot contents published
// by the tail store are visible to the consumer.
func TestRingConcurrentSPSC(t *testing.T) {
	const total = 200000
	r := newRing[int](64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := 0; v < total; {
			if r.push(v) {
				v++
			} else {
				runtime.Gosched()
			}
		}
	}()
	dst := make([]int, 32)
	want := 0
	for want < total {
		n := r.popBatch(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("out of order: got %d, want %d", dst[i], want)
			}
			want++
		}
	}
	<-done
	if _, ok := r.pop(); ok {
		t.Fatal("ring not empty after consuming every pushed value")
	}
}

// TestRingDrainAfterClose models the shutdown protocol the spine uses: the
// producer pushes a tail of values, raises a done flag (the stand-in for
// ingressDone / the writer's done channel), and the consumer must still
// recover every value pushed before the flag — lossless drain after close.
func TestRingDrainAfterClose(t *testing.T) {
	const total = 50000
	r := newRing[int](128)
	var closed atomic.Bool
	go func() {
		for v := 0; v < total; {
			if r.push(v) {
				v++
			} else {
				runtime.Gosched()
			}
		}
		closed.Store(true) // push happens-before close, as in the spine
	}()
	dst := make([]int, 16)
	want := 0
	for {
		n := r.popBatch(dst)
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("got %d, want %d", dst[i], want)
			}
			want++
		}
		if n == 0 {
			if closed.Load() && r.len() == 0 {
				break
			}
			runtime.Gosched()
		}
	}
	if want != total {
		t.Fatalf("drained %d values, want %d", want, total)
	}
}

// TestRingPositionOverflowUint64 drives the monotonic head/tail positions
// across the uint64 overflow boundary. Positions are never wrapped into the
// buffer; correctness across ^uint64(0) rests on 2^64 being a multiple of
// the power-of-two buffer size, which keeps pos&mask continuous through the
// overflow — this test pins that invariant.
func TestRingPositionOverflowUint64(t *testing.T) {
	r := newRing[int](8)
	start := ^uint64(0) - 21 // overflow lands mid-test
	r.head.Store(start)
	r.tail.Store(start)
	next, want := 0, 0
	for round := 0; round < 16; round++ {
		for i := 0; i < 5; i++ {
			if !r.push(next) {
				t.Fatalf("round %d: push %d rejected with len %d", round, next, r.len())
			}
			next++
		}
		if r.len() != 5 {
			t.Fatalf("round %d: len = %d, want 5", round, r.len())
		}
		for i := 0; i < 5; i++ {
			v, ok := r.pop()
			if !ok || v != want {
				t.Fatalf("round %d: pop = %d,%v, want %d,true", round, v, ok, want)
			}
			want++
		}
	}
	if tail := r.tail.Load(); tail >= start {
		t.Fatalf("tail = %d never crossed the uint64 boundary (start %d)", tail, start)
	}
}

// TestRingFullSpanningOverflow parks a full ring exactly across ^uint64(0):
// the occupancy check (tail-head > mask) and the batched drain must both be
// exact when tail has overflowed and head has not.
func TestRingFullSpanningOverflow(t *testing.T) {
	r := newRing[int](8)
	start := ^uint64(0) - 3 // 4 slots before overflow, 4 after
	r.head.Store(start)
	r.tail.Store(start)
	for i := 0; i < 8; i++ {
		if !r.push(i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.push(99) {
		t.Fatal("push accepted on a full ring spanning the overflow")
	}
	if r.len() != 8 {
		t.Fatalf("len = %d, want 8", r.len())
	}
	if r.tail.Load() >= r.head.Load() {
		t.Fatal("test did not span the boundary: tail should have overflowed past head")
	}
	dst := make([]int, 8)
	if n := r.popBatch(dst); n != 8 {
		t.Fatalf("popBatch = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d across the boundary", i, dst[i])
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("ring not empty after draining across the boundary")
	}
}

// TestRingConcurrentSPSCOverflow repeats the producer/consumer hammer with
// the positions seeded just below ^uint64(0), so the -race run also covers
// the overflow window under real concurrency.
func TestRingConcurrentSPSCOverflow(t *testing.T) {
	const total = 200000
	r := newRing[int](64)
	start := ^uint64(0) - total/2 // overflow mid-run
	r.head.Store(start)
	r.tail.Store(start)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := 0; v < total; {
			if r.push(v) {
				v++
			} else {
				runtime.Gosched()
			}
		}
	}()
	dst := make([]int, 32)
	want := 0
	for want < total {
		n := r.popBatch(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("out of order across overflow: got %d, want %d", dst[i], want)
			}
			want++
		}
	}
	<-done
	if head := r.head.Load(); head >= start {
		t.Fatalf("head = %d never crossed the uint64 boundary", head)
	}
}
