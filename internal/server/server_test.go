package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
)

// testConfig is a cheap 1D pipeline: 4 ASICs, 4 samples — fast enough for
// race-enabled runs.
func testConfig() adapt.Config {
	cfg := adapt.DefaultADAPT()
	cfg.ASICs = 4
	cfg.SamplesPerChannel = 4
	return cfg
}

// startServer builds, serves on an ephemeral port, and tears down with t.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return s, ln.Addr().String()
}

// makeEvents digitizes n tracker events for cfg.
func makeEvents(t testing.TB, cfg adapt.Config, n int, seed uint64) [][]adapt.Packet {
	t.Helper()
	rng := detector.NewRNG(seed)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	tracker := detector.DefaultTracker()
	tracker.Channels = cfg.ASICs * adapt.ChannelsPerASIC
	tracker.Threshold = 0
	events := make([][]adapt.Packet, n)
	for i := range events {
		ev, err := adapt.GenerateEvent(tracker.Event(rng).Values, cfg.ASICs,
			uint32(i), uint64(i), dig, rng)
		if err != nil {
			t.Fatal(err)
		}
		events[i] = ev
	}
	return events
}

// readAllRecords consumes downlink records until EOF.
func readAllRecords(t testing.TB, r io.Reader) []adapt.EventRecord {
	t.Helper()
	var out []adapt.EventRecord
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return out
			}
			t.Fatalf("record header: %v", err)
		}
		n := int(binary.BigEndian.Uint32(hdr[4:]))
		body := make([]byte, 8+adapt.RecordIslandBytes*n)
		copy(body, hdr[:])
		if _, err := io.ReadFull(r, body[8:]); err != nil {
			t.Fatalf("record body: %v", err)
		}
		rec, err := adapt.UnmarshalEventRecord(body)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// sendEvents writes events over the wire and half-closes.
func sendEvents(t testing.TB, nc net.Conn, events [][]adapt.Packet) {
	t.Helper()
	sw := adapt.NewStreamWriter(nc)
	for _, ev := range events {
		if err := sw.WriteEvent(ev); err != nil {
			t.Errorf("write event: %v", err)
			return
		}
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

func TestServerEndToEnd(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{Pipeline: cfg, Workers: 2, QueueDepth: 16, Policy: PolicyBlock})
	const conns, perConn = 3, 40
	events := makeEvents(t, cfg, perConn, 99)

	var wg sync.WaitGroup
	recs := make([][]adapt.EventRecord, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			go sendEvents(t, nc, events)
			recs[c] = readAllRecords(t, nc)
		}(c)
	}
	wg.Wait()

	for c := 0; c < conns; c++ {
		if len(recs[c]) != perConn {
			t.Fatalf("conn %d: got %d records, want %d", c, len(recs[c]), perConn)
		}
		seen := make(map[uint32]bool)
		for _, r := range recs[c] {
			seen[r.Event] = true
		}
		for i := 0; i < perConn; i++ {
			if !seen[uint32(i)] {
				t.Fatalf("conn %d: missing record for event %d", c, i)
			}
		}
	}
	snap := s.StatsSnapshot()
	if snap.EventsIn != conns*perConn || snap.EventsOut != conns*perConn {
		t.Fatalf("stats in=%d out=%d, want %d", snap.EventsIn, snap.EventsOut, conns*perConn)
	}
	if snap.Dropped != 0 || snap.BadEvents != 0 || snap.ReadErrors != 0 {
		t.Fatalf("unexpected failures in %+v", snap.CounterSnapshot)
	}
	if snap.Latency.Count != conns*perConn {
		t.Fatalf("latency count %d, want %d", snap.Latency.Count, conns*perConn)
	}
}

// TestServerRecordsMatchPipeline verifies the served records equal what a
// local pipeline produces for the same packets.
func TestServerRecordsMatchPipeline(t *testing.T) {
	cfg := testConfig()
	_, addr := startServer(t, Config{Pipeline: cfg, QueueDepth: 8, Policy: PolicyBlock})
	events := makeEvents(t, cfg, 10, 7)

	p, err := adapt.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint32]adapt.EventRecord)
	for _, ev := range events {
		var rec adapt.EventRecord
		if err := p.ServeEvent(ev, &rec); err != nil {
			t.Fatal(err)
		}
		rec.Islands = append([]adapt.IslandRecord(nil), rec.Islands...)
		want[rec.Event] = rec
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	go sendEvents(t, nc, events)
	for _, got := range readAllRecords(t, nc) {
		w, ok := want[got.Event]
		if !ok {
			t.Fatalf("unexpected event %d", got.Event)
		}
		if len(got.Islands) != len(w.Islands) {
			t.Fatalf("event %d: %d islands, want %d", got.Event, len(got.Islands), len(w.Islands))
		}
		for i := range got.Islands {
			if got.Islands[i] != w.Islands[i] {
				t.Fatalf("event %d island %d: %+v, want %+v", got.Event, i, got.Islands[i], w.Islands[i])
			}
		}
	}
}

func TestServerDropPolicy(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 1, Policy: PolicyDrop, PaceHardware: true,
	})
	const n = 60
	events := makeEvents(t, cfg, n, 3)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	go sendEvents(t, nc, events)
	recs := readAllRecords(t, nc)

	snap := s.StatsSnapshot()
	if snap.EventsIn != n {
		t.Fatalf("events in %d, want %d", snap.EventsIn, n)
	}
	if snap.Dropped == 0 {
		t.Fatal("burst into a depth-1 paced queue must drop events")
	}
	if snap.EventsOut+snap.Dropped+snap.BadEvents != n {
		t.Fatalf("in=%d != out=%d + dropped=%d + bad=%d",
			snap.EventsIn, snap.EventsOut, snap.Dropped, snap.BadEvents)
	}
	if uint64(len(recs)) != snap.EventsOut {
		t.Fatalf("client got %d records, server says %d", len(recs), snap.EventsOut)
	}
}

func TestServerBlockPolicy(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 1, Policy: PolicyBlock, PaceHardware: true,
	})
	const n = 30
	events := makeEvents(t, cfg, n, 4)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	go sendEvents(t, nc, events)
	recs := readAllRecords(t, nc)
	if len(recs) != n {
		t.Fatalf("got %d records, want %d (block policy must not lose events)", len(recs), n)
	}
	// One worker, one connection: FIFO order is preserved end to end.
	for i, r := range recs {
		if r.Event != uint32(i) {
			t.Fatalf("record %d is event %d, want %d", i, r.Event, i)
		}
	}
	if snap := s.StatsSnapshot(); snap.Dropped != 0 {
		t.Fatalf("block policy dropped %d events", snap.Dropped)
	}
}

// TestServerGracefulShutdownMidLoad drives continuous load from several
// connections, shuts down mid-stream, and checks every accepted event is
// accounted for. Run under -race this also exercises reader/worker/writer
// teardown ordering.
func TestServerGracefulShutdownMidLoad(t *testing.T) {
	cfg := testConfig()
	s, err := New(Config{Pipeline: cfg, Workers: 2, QueueDepth: 8, Policy: PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	const conns = 3
	events := makeEvents(t, cfg, 50, 5)
	received := make([]int, conns)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			go func() {
				sw := adapt.NewStreamWriter(nc)
				for i := 0; ; i++ {
					if err := sw.WriteEvent(events[i%len(events)]); err != nil {
						return // server went away mid-stream; expected
					}
				}
			}()
			var hdr [8]byte
			for {
				if _, err := io.ReadFull(nc, hdr[:]); err != nil {
					return
				}
				n := int(binary.BigEndian.Uint32(hdr[4:]))
				if _, err := io.ReadFull(nc, make([]byte, adapt.RecordIslandBytes*n)); err != nil {
					return
				}
				received[c]++
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	wg.Wait()

	snap := s.StatsSnapshot()
	if snap.EventsIn == 0 {
		t.Fatal("no events processed before shutdown")
	}
	if snap.EventsOut+snap.Dropped+snap.BadEvents != snap.EventsIn {
		t.Fatalf("in=%d != out=%d + dropped=%d + bad=%d",
			snap.EventsIn, snap.EventsOut, snap.Dropped, snap.BadEvents)
	}
	var got uint64
	for c := 0; c < conns; c++ {
		got += uint64(received[c])
	}
	// Clients may have missed trailing responses if their conn died first,
	// but can never see more than the server sent.
	if got > snap.EventsOut {
		t.Fatalf("clients saw %d records, server sent %d", got, snap.EventsOut)
	}
	if snap.ConnsActive != 0 {
		t.Fatalf("%d connections still active after shutdown", snap.ConnsActive)
	}
}

func TestServeAfterShutdown(t *testing.T) {
	s, err := New(Config{Pipeline: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.ListenAndServe("127.0.0.1:0"); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("got %v, want ErrServerClosed", err)
	}
}

// TestServerBadInput feeds garbage, a corrupted frame, an interleaved event,
// and then a valid event; the valid event must still be served and the
// failure counters must reflect each fault.
func TestServerBadInput(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{Pipeline: cfg, QueueDepth: 8, Policy: PolicyBlock})
	events := makeEvents(t, cfg, 2, 11)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Link garbage before anything parses.
	if _, err := nc.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	// A corrupted frame: valid start, flipped payload byte.
	frame, err := events[0][0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-3] ^= 0xFF
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	// An interleaved event: first packet of event 0, then a packet of
	// event 1 — assembly of event 0 must fail without killing the
	// connection, and the interrupting packet is retained as the start of
	// the next assembly.
	sw := adapt.NewStreamWriter(nc)
	if err := sw.WritePacket(&events[0][0]); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePacket(&events[1][0]); err != nil {
		t.Fatal(err)
	}
	// The rest of event 1 completes the assembly started by the retained
	// packet, so event 1 survives the interleave intact.
	for i := 1; i < len(events[1]); i++ {
		if err := sw.WritePacket(&events[1][i]); err != nil {
			t.Fatal(err)
		}
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	recs := readAllRecords(t, nc)
	if len(recs) != 1 || recs[0].Event != 1 {
		t.Fatalf("got %d records %+v, want 1 record for event 1", len(recs), recs)
	}
	snap := s.StatsSnapshot()
	if snap.SkippedBytes == 0 {
		t.Fatal("garbage bytes not counted")
	}
	if snap.BadPackets == 0 {
		t.Fatal("corrupted frame not counted")
	}
	if snap.IncompleteEvents == 0 {
		t.Fatal("interleaved event not counted")
	}
	if snap.BadEvents != 0 {
		t.Fatalf("BadEvents = %d, want 0 (retained packet must not duplicate)", snap.BadEvents)
	}
}

func TestStatsEndpoint(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{
		Pipeline: cfg, QueueDepth: 8, Policy: PolicyBlock, StatsAddr: "127.0.0.1:0",
	})
	events := makeEvents(t, cfg, 5, 21)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	go sendEvents(t, nc, events)
	if got := len(readAllRecords(t, nc)); got != 5 {
		t.Fatalf("got %d records, want 5", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.StatsAddr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("stats endpoint never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + s.StatsAddr().String()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.EventsIn != 5 || snap.EventsOut != 5 {
		t.Fatalf("endpoint reports in=%d out=%d, want 5", snap.EventsIn, snap.EventsOut)
	}
	if snap.Workers != 1 || snap.QueueDepth != 8 {
		t.Fatalf("endpoint reports workers=%d depth=%d", snap.Workers, snap.QueueDepth)
	}
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hz.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Pipeline: adapt.Config{}}); err == nil {
		t.Fatal("zero pipeline config must fail")
	}
}

func TestOverflowPolicyString(t *testing.T) {
	if PolicyDrop.String() != "drop" || PolicyBlock.String() != "block" {
		t.Fatalf("got %q, %q", PolicyDrop.String(), PolicyBlock.String())
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h latencyHist
	for us := uint64(0); us < 1<<20; us = us*2 + 1 {
		b := bucketOf(us)
		if b < 0 || b >= len(h.buckets) {
			t.Fatalf("bucketOf(%d) = %d out of range", us, b)
		}
		if up := bucketUpper(b); us > up {
			t.Fatalf("us %d above its bucket upper bound %d (bucket %d)", us, up, b)
		}
		if us >= 4 {
			// Log-scale guarantee: the bound overestimates by < 25%.
			if up := bucketUpper(b); float64(up) > float64(us)*1.25+1 {
				t.Fatalf("bucketUpper(%d)=%d too loose for %d", b, up, us)
			}
		}
	}
	for _, ms := range []int{1, 1, 2, 2, 2, 3, 10, 50} {
		h.observe(time.Duration(ms) * time.Millisecond)
	}
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %d > p99 %d", p50, p99)
	}
	if p50 < 1000 || p50 > 3000 {
		t.Fatalf("p50 %dµs implausible for samples around 2ms", p50)
	}
	if p99 < 10000 {
		t.Fatalf("p99 %dµs must reflect the 50ms tail (>= max bucket of 10ms sample)", p99)
	}
}

// TestQueueSharding checks round-robin placement over multiple workers.
func TestQueueSharding(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, Config{Pipeline: cfg, Workers: 3, QueueDepth: 4, Policy: PolicyBlock})
	events := makeEvents(t, cfg, 9, 8)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	go sendEvents(t, nc, events)
	if got := len(readAllRecords(t, nc)); got != 9 {
		t.Fatalf("got %d records, want 9", got)
	}
	if snap := s.StatsSnapshot(); len(snap.QueueLens) != 3 {
		t.Fatalf("expected 3 worker queues, got %d", len(snap.QueueLens))
	}
}
