package server

import (
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/wal"
)

// TestWALCrashRecoveryChild is the subprocess body of TestWALCrashRecovery:
// a recording block-policy server that runs until its parent SIGKILLs it.
// Without the env marker (the normal test run) it skips immediately.
func TestWALCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv("HEPCCL_WAL_DIR")
	addrFile := os.Getenv("HEPCCL_WAL_ADDRFILE")
	if os.Getenv("HEPCCL_WAL_CRASH_CHILD") == "" || dir == "" || addrFile == "" {
		t.Skip("crash-recovery child: only runs under TestWALCrashRecovery")
	}
	s, err := New(Config{
		Pipeline:  testConfig(),
		Workers:   1,
		Policy:    PolicyBlock,
		RecordDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the bound address atomically (write + rename) so the parent
	// never reads a half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	// Serve until the parent kills the process. SIGKILL gives no chance to
	// seal the log — that torn tail is the point of the test.
	s.Serve(ln)
}

// TestWALCrashRecovery SIGKILLs a recording server mid-stream and verifies
// the durability contract: every event the server responded to is in the
// recovered log, the log is an exact prefix of what the client sent, at most
// one torn tail record is lost, and a reopen repairs the log back to
// appendable.
func TestWALCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	cfg := testConfig()
	work := t.TempDir()
	walDir := filepath.Join(work, "wal")
	addrFile := filepath.Join(work, "addr")

	cmd := exec.Command(os.Args[0], "-test.run", "^TestWALCrashRecoveryChild$")
	cmd.Env = append(os.Environ(),
		"HEPCCL_WAL_CRASH_CHILD=1",
		"HEPCCL_WAL_DIR="+walDir,
		"HEPCCL_WAL_ADDRFILE="+addrFile,
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	for deadline := time.Now().Add(20 * time.Second); ; {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Count responses as they arrive; each response proves its event was
	// served, and write-ahead ordering proves a served event is in the log.
	var responded atomic.Int64
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		// Count record-by-record (countRecords only reports at EOF, too late
		// for the kill trigger). A malformed tail is expected at the kill.
		rs := adapt.NewRecordScanner(nc, nil)
		for {
			if _, err := rs.Next(); err != nil {
				return
			}
			responded.Add(1)
		}
	}()

	template := makeEvents(t, cfg, 1, 77)[0]
	frames := make([][]byte, len(template))
	for i := range template {
		f, err := template[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}

	// Stream sequential event ids until at least 200 responses have landed,
	// then SIGKILL the child mid-stream.
	const minResponded = 200
	written := 0
	killDeadline := time.Now().Add(30 * time.Second)
stream:
	for ; ; written++ {
		for _, f := range frames {
			if err := adapt.PatchFrameEventID(f, uint32(written)); err != nil {
				t.Fatal(err)
			}
			if _, err := nc.Write(f); err != nil {
				break stream // the kill below may race a final write
			}
		}
		if written%16 == 0 {
			if responded.Load() >= minResponded {
				break
			}
			if time.Now().After(killDeadline) {
				t.Fatalf("only %d responses after 30s", responded.Load())
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no seal
		t.Fatal(err)
	}
	cmd.Wait()
	<-drainDone
	resp := responded.Load()
	if resp < minResponded {
		t.Fatalf("child died after only %d responses", resp)
	}

	// Pre-repair scan: every complete record recovered, at most one torn
	// tail, ids an exact prefix of the written sequence.
	validator := wal.NewPayloadValidator()
	scanLog := func() (int, int) {
		sc, err := wal.NewScanner(walDir)
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		n := 0
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("record %d: %v", n, err)
			}
			if rec.Event != uint32(n) {
				t.Fatalf("record %d carries event %d: not a prefix of the written sequence", n, rec.Event)
			}
			if id, err := validator.Validate(rec.Payload, cfg.ASICs); err != nil || id != rec.Event {
				t.Fatalf("record %d payload: id=%d err=%v", n, id, err)
			}
			n++
		}
		return n, sc.Torn()
	}
	recovered, torn := scanLog()
	t.Logf("crash: wrote %d events, %d responded, %d recovered, %d torn segment(s)", written, resp, recovered, torn)
	if torn > 1 {
		t.Fatalf("found %d torn segments, want at most 1", torn)
	}
	if int64(recovered) < resp {
		t.Fatalf("recovered %d records but the server responded to %d", recovered, resp)
	}
	if recovered > written+1 {
		t.Fatalf("recovered %d records from %d written events", recovered, written)
	}

	// Reopen repairs: the torn tail is truncated and the log is appendable.
	w, info, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	if info.TailRecords == 0 {
		t.Fatal("recovery reported an empty tail segment")
	}
	if err := w.Append(0xFFFFFFFF, frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := wal.NewScanner(walDir)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	n := 0
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n < recovered && rec.Event != uint32(n) {
			t.Fatalf("post-repair record %d carries event %d", n, rec.Event)
		}
		n++
	}
	if sc.Torn() != 0 {
		t.Fatalf("post-repair scan still torn: %d", sc.Torn())
	}
	if n != recovered+1 {
		t.Fatalf("post-repair scan returned %d records, want %d", n, recovered+1)
	}
}
