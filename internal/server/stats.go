package server

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wustl-adapt/hepccl/internal/wal"
)

// latencyHist is a lock-free log-scale histogram of event latencies
// (assembly → response handoff). Each power-of-two octave of microseconds is
// split into four sub-buckets, giving ~19% worst-case quantile error with a
// fixed 256-counter footprint.
type latencyHist struct {
	buckets [256]atomic.Uint64
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
}

// bucketOf maps a microsecond latency to its histogram bucket.
func bucketOf(us uint64) int {
	if us < 4 {
		return int(us) // buckets 0..3 are exact
	}
	exp := bits.Len64(us) - 1        // top bit position, >= 2
	sub := (us >> (exp - 2)) & 3     // next two bits
	return int(4*(exp-1)) + int(sub) // 4 sub-buckets per octave
}

// bucketUpper returns the inclusive upper bound (µs) of a bucket.
func bucketUpper(b int) uint64 {
	if b < 4 {
		return uint64(b)
	}
	exp := b/4 + 1
	sub := uint64(b%4) + 1
	return (1 << exp) + sub<<(exp-2) - 1
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bucketOf(us)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		old := h.maxUs.Load()
		if us <= old || h.maxUs.CompareAndSwap(old, us) {
			break
		}
	}
}

// quantile returns the upper bound of the bucket holding the q-th sample.
func (h *latencyHist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum > target {
			return bucketUpper(b)
		}
	}
	return h.maxUs.Load()
}

// counters is the shared shape of global and per-connection statistics.
// All fields are atomic; each is updated by exactly one logical stage.
type counters struct {
	EventsIn         atomic.Uint64 // events fully assembled
	EventsOut        atomic.Uint64 // responses handed to a writer
	Dropped          atomic.Uint64 // lost to a full queue (or shutdown)
	BadEvents        atomic.Uint64 // events the pipeline rejected
	IncompleteEvents atomic.Uint64 // assembly failures (missing/interleaved)
	BadPackets       atomic.Uint64 // frames failing validation
	SkippedBytes     atomic.Uint64 // link garbage skipped while resyncing
	BytesOut         atomic.Uint64 // response bytes written
	ReadErrors       atomic.Uint64 // transport faults surfaced by readers
	IdleTimeouts     atomic.Uint64 // connections closed by idle/assembly deadline
	BreakerTrips     atomic.Uint64 // connections closed by the resync breaker
}

// Stats aggregates the server-wide counters and derived gauges.
type Stats struct {
	counters
	ConnsTotal  atomic.Uint64
	ConnsActive atomic.Int64
	QueueHWM    atomic.Int64  // high-water mark across all shards
	ServeNs     atomic.Uint64 // cumulative pipeline service time, nanoseconds
	latency     latencyHist
	start       time.Time
}

func (st *Stats) observeQueueDepth(depth int) {
	d := int64(depth)
	for {
		old := st.QueueHWM.Load()
		if d <= old || st.QueueHWM.CompareAndSwap(old, d) {
			return
		}
	}
}

// LatencySnapshot summarizes the latency distribution in microseconds.
type LatencySnapshot struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  uint64  `json:"p50_us"`
	P90Us  uint64  `json:"p90_us"`
	P99Us  uint64  `json:"p99_us"`
	MaxUs  uint64  `json:"max_us"`
}

// CounterSnapshot is the JSON form of a counters block.
type CounterSnapshot struct {
	EventsIn         uint64 `json:"events_in"`
	EventsOut        uint64 `json:"events_out"`
	Dropped          uint64 `json:"dropped"`
	BadEvents        uint64 `json:"bad_events"`
	IncompleteEvents uint64 `json:"incomplete_events"`
	BadPackets       uint64 `json:"bad_packets"`
	SkippedBytes     uint64 `json:"skipped_bytes"`
	BytesOut         uint64 `json:"bytes_out"`
	ReadErrors       uint64 `json:"read_errors"`
	IdleTimeouts     uint64 `json:"idle_timeouts"`
	BreakerTrips     uint64 `json:"breaker_trips"`
}

func (c *counters) snapshot() CounterSnapshot {
	return CounterSnapshot{
		EventsIn:         c.EventsIn.Load(),
		EventsOut:        c.EventsOut.Load(),
		Dropped:          c.Dropped.Load(),
		BadEvents:        c.BadEvents.Load(),
		IncompleteEvents: c.IncompleteEvents.Load(),
		BadPackets:       c.BadPackets.Load(),
		SkippedBytes:     c.SkippedBytes.Load(),
		BytesOut:         c.BytesOut.Load(),
		ReadErrors:       c.ReadErrors.Load(),
		IdleTimeouts:     c.IdleTimeouts.Load(),
		BreakerTrips:     c.BreakerTrips.Load(),
	}
}

// ConnSnapshot is one active connection's statistics.
type ConnSnapshot struct {
	ID     uint64 `json:"id"`
	Remote string `json:"remote"`
	CounterSnapshot
}

// HealthState classifies how the server is coping with its current load.
type HealthState string

// The three health states reported by Health and GET /healthz. Degraded and
// ok both answer HTTP 200 (the service is still doing useful work);
// overloaded answers 503 so a load balancer can shed traffic.
const (
	HealthOK         HealthState = "ok"
	HealthDegraded   HealthState = "degraded"
	HealthOverloaded HealthState = "overloaded"
)

// HealthSnapshot is the typed form of a health verdict: the state plus the
// windowed inputs that produced it, served as JSON on /healthz?verbose=1 so
// a gateway prober (or a human) sees *why* a backend is degraded, not just
// that it is.
type HealthSnapshot struct {
	State HealthState `json:"state"`
	// LossFraction is the recent dropped/assembled fraction of the window.
	LossFraction float64 `json:"loss_fraction"`
	// ResyncFraction is the recent resync-loss fraction: (bad packets +
	// incomplete events) per assembly attempt over the window.
	ResyncFraction float64 `json:"resync_fraction"`
	// WindowSeconds is the evaluation window the fractions cover.
	WindowSeconds float64 `json:"window_seconds"`
	// EventsIn, Dropped, and ResyncLoss are the window's raw counter deltas.
	EventsIn   uint64 `json:"events_in"`
	Dropped    uint64 `json:"dropped"`
	ResyncLoss uint64 `json:"resync_loss"`
	// The thresholds the fractions were judged against.
	DegradedLossRate   float64 `json:"degraded_loss_rate"`
	OverloadLossRate   float64 `json:"overload_loss_rate"`
	DegradedResyncRate float64 `json:"degraded_resync_rate"`
	// WALAppendErrors is the recording log's failed-append count. Any failure
	// sticky-fails the writer, so a nonzero value degrades an otherwise-ok
	// verdict: the server still serves but the durability guarantee is gone.
	WALAppendErrors uint64 `json:"wal_append_errors,omitempty"`
}

// healthWindow holds the counter baseline of the previous health evaluation
// so each verdict reflects the recent window, not lifetime averages.
type healthWindow struct {
	mu         sync.Mutex
	at         time.Time
	snap       HealthSnapshot
	in         uint64
	dropped    uint64
	resyncLoss uint64
}

// healthMinWindow is the shortest interval between fresh health evaluations;
// requests inside it reuse the cached verdict so rates are computed over a
// meaningful sample.
const healthMinWindow = 250 * time.Millisecond

// Health evaluates the server's recent drop and resync rates against the
// configured thresholds:
//
//	overloaded: drop fraction >= OverloadLossRate
//	degraded:   drop fraction >= DegradedLossRate, or resync-loss fraction
//	            (bad packets + incomplete events per assembly attempt)
//	            >= DegradedResyncRate
//	ok:         otherwise
//
// Verdicts are cached for healthMinWindow; an idle window keeps the previous
// verdict's thresholds trivially satisfied and reports ok.
func (s *Server) Health() HealthState {
	return s.HealthSnapshot().State
}

// HealthSnapshot evaluates (or returns the cached) health verdict together
// with the windowed fractions that produced it.
func (s *Server) HealthSnapshot() HealthSnapshot {
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	if h.snap.State != "" && now.Sub(h.at) < healthMinWindow {
		return h.snap
	}
	in := s.stats.EventsIn.Load()
	dropped := s.stats.Dropped.Load()
	resyncLoss := s.stats.BadPackets.Load() + s.stats.IncompleteEvents.Load()

	din := in - h.in
	ddrop := dropped - h.dropped
	dresync := resyncLoss - h.resyncLoss
	window := now.Sub(h.at)
	if h.at.IsZero() {
		window = now.Sub(s.stats.start)
	}
	h.at, h.in, h.dropped, h.resyncLoss = now, in, dropped, resyncLoss

	snap := HealthSnapshot{
		State:              HealthOK,
		WindowSeconds:      window.Seconds(),
		EventsIn:           din,
		Dropped:            ddrop,
		ResyncLoss:         dresync,
		DegradedLossRate:   s.cfg.DegradedLossRate,
		OverloadLossRate:   s.cfg.OverloadLossRate,
		DegradedResyncRate: s.cfg.DegradedResyncRate,
	}
	if din > 0 {
		snap.LossFraction = float64(ddrop) / float64(din)
		snap.ResyncFraction = float64(dresync) / float64(din+dresync)
		switch {
		case snap.LossFraction >= s.cfg.OverloadLossRate:
			snap.State = HealthOverloaded
		case snap.LossFraction >= s.cfg.DegradedLossRate || snap.ResyncFraction >= s.cfg.DegradedResyncRate:
			snap.State = HealthDegraded
		}
	} else if dresync > 0 {
		// Nothing assembled but the link is producing garbage.
		snap.ResyncFraction = 1
		snap.State = HealthDegraded
	}
	if s.wal != nil {
		if snap.WALAppendErrors = s.wal.AppendErrors(); snap.WALAppendErrors > 0 && snap.State == HealthOK {
			snap.State = HealthDegraded
		}
	}
	h.snap = snap
	return snap
}

// rateWindow maintains the EWMA throughput gauges published on /stats. Like
// healthWindow, it is advanced lazily by snapshot requests: each request at
// least rateMinWindow after the previous evaluation folds the window's
// delta-rates into the smoothed gauges, so scrape cadence sets the sample
// window and an unwatched server does no background work.
type rateWindow struct {
	mu      sync.Mutex
	at      time.Time
	out     uint64  // EventsOut baseline at the last evaluation
	serveNs uint64  // ServeNs baseline at the last evaluation
	evRate  float64 // smoothed events/s out
	nsPerEv float64 // smoothed pipeline ns per served event
}

// rateMinWindow is the shortest sample window for a fresh EWMA update;
// requests inside it read the cached gauges.
const rateMinWindow = 250 * time.Millisecond

// rateTau is the EWMA time constant: a rate step reaches ~63% of its new
// value after rateTau of scraping, regardless of scrape cadence.
const rateTau = 5 * time.Second

// update folds the counter deltas since the previous evaluation into the
// smoothed gauges and returns them.
func (rw *rateWindow) update(st *Stats) (evPerSec, nsPerEvent float64) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	now := time.Now()
	if rw.at.IsZero() {
		rw.at, rw.out, rw.serveNs = now, st.EventsOut.Load(), st.ServeNs.Load()
		return 0, 0
	}
	dt := now.Sub(rw.at)
	if dt < rateMinWindow {
		return rw.evRate, rw.nsPerEv
	}
	out := st.EventsOut.Load()
	serveNs := st.ServeNs.Load()
	dout := out - rw.out
	dns := serveNs - rw.serveNs
	rw.at, rw.out, rw.serveNs = now, out, serveNs

	alpha := 1 - math.Exp(-dt.Seconds()/rateTau.Seconds())
	rw.evRate += alpha * (float64(dout)/dt.Seconds() - rw.evRate)
	if dout > 0 {
		rw.nsPerEv += alpha * (float64(dns)/float64(dout) - rw.nsPerEv)
	}
	return rw.evRate, rw.nsPerEv
}

// Snapshot is the JSON document served by the stats endpoint.
type Snapshot struct {
	Health        HealthState `json:"health"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	ConnsActive   int64       `json:"conns_active"`
	ConnsTotal    uint64      `json:"conns_total"`
	Workers       int         `json:"workers"`
	QueueDepth    int         `json:"queue_depth"`
	Pixels        int         `json:"pixels"`        // served frame size (channels for 1D)
	ServeBackend  string      `json:"serve_backend"` // resolved labeling backend: run, tiled, pixel, 1d
	TileWorkers   int         `json:"tile_workers"`  // tile-pool concurrency; 0 unless tiled
	QueueLens     []int       `json:"queue_lens"`
	QueueHWM      int64       `json:"queue_hwm"`
	LossFraction  float64     `json:"loss_fraction"`
	EventsPerSec  float64     `json:"events_per_sec"` // EWMA served throughput
	NsPerEvent    float64     `json:"ns_per_event"`   // EWMA pipeline time per event
	CounterSnapshot
	Latency LatencySnapshot `json:"latency"`
	// WAL is the recording log's state, present only when recording.
	WAL   *wal.Snapshot  `json:"wal,omitempty"`
	Conns []ConnSnapshot `json:"conns"`
}

// StatsSnapshot returns a consistent-enough view of the server statistics.
// Counters are read individually, so totals may be skewed by in-flight
// events; the loss fraction is computed from the values read.
func (s *Server) StatsSnapshot() Snapshot {
	st := &s.stats
	snap := Snapshot{
		Health:          s.Health(),
		UptimeSeconds:   time.Since(st.start).Seconds(),
		ConnsActive:     st.ConnsActive.Load(),
		ConnsTotal:      st.ConnsTotal.Load(),
		Workers:         len(s.workers),
		QueueDepth:      s.cfg.QueueDepth,
		Pixels:          s.pixels,
		ServeBackend:    s.serveBackend,
		TileWorkers:     s.tileWorkers,
		QueueHWM:        st.QueueHWM.Load(),
		CounterSnapshot: st.counters.snapshot(),
	}
	snap.EventsPerSec, snap.NsPerEvent = s.rates.update(st)
	if s.wal != nil {
		w := s.wal.Snapshot()
		snap.WAL = &w
	}
	for _, w := range s.workers {
		// A lane's admitted-but-undrained fill is the ring-spine analogue of
		// the old channel length.
		snap.QueueLens = append(snap.QueueLens, int(w.fill.Load()))
	}
	if snap.EventsIn > 0 {
		snap.LossFraction = float64(snap.Dropped) / float64(snap.EventsIn)
	}
	h := &st.latency
	snap.Latency = LatencySnapshot{
		Count: h.count.Load(),
		P50Us: h.quantile(0.50),
		P90Us: h.quantile(0.90),
		P99Us: h.quantile(0.99),
		MaxUs: h.maxUs.Load(),
	}
	if snap.Latency.Count > 0 {
		snap.Latency.MeanUs = float64(h.sumUs.Load()) / float64(snap.Latency.Count)
	}
	s.mu.Lock()
	for c := range s.conns {
		snap.Conns = append(snap.Conns, ConnSnapshot{
			ID:              c.id,
			Remote:          c.remote,
			CounterSnapshot: c.stats.snapshot(),
		})
	}
	s.mu.Unlock()
	return snap
}
