package server

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// TestAcceptorShards drives a sharded-listener server end to end: several
// clients connect to one address served by AcceptorShards accept loops
// (SO_REUSEPORT listeners on Linux), send events, and every event must come
// back. Worker placement is exercised implicitly: each shard pins its
// connections to its own lane partition.
func TestAcceptorShards(t *testing.T) {
	cfg := Config{
		Pipeline:       testConfig(),
		Workers:        2,
		AcceptorShards: 2,
		QueueDepth:     64,
		Policy:         PolicyBlock,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	var addr net.Addr
	for i := 0; i < 200; i++ {
		if addr = s.Addr(); addr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == nil {
		t.Fatal("server never bound a listener")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, ErrServerClosed) {
			t.Errorf("ListenAndServe returned %v, want ErrServerClosed", err)
		}
	})

	const conns, perConn = 4, 25
	events := makeEvents(t, cfg.Pipeline, conns*perConn, 99)
	var wg sync.WaitGroup
	got := make([]int, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr.String())
			if err != nil {
				t.Errorf("conn %d: %v", ci, err)
				return
			}
			defer nc.Close()
			sw := adapt.NewStreamWriter(nc)
			for i := 0; i < perConn; i++ {
				if err := sw.WriteEvent(events[ci*perConn+i]); err != nil {
					t.Errorf("conn %d write: %v", ci, err)
					return
				}
			}
			nc.(*net.TCPConn).CloseWrite()
			got[ci] = len(readAllRecords(t, nc))
		}(ci)
	}
	wg.Wait()
	total := 0
	for _, n := range got {
		total += n
	}
	if total != conns*perConn {
		t.Fatalf("served %d of %d events across shards", total, conns*perConn)
	}
}

// TestHealthzVerbose asserts the typed JSON health snapshot on
// /healthz?verbose=1: state plus the windowed fractions and thresholds.
func TestHealthzVerbose(t *testing.T) {
	cfg := Config{
		Pipeline:  testConfig(),
		StatsAddr: "127.0.0.1:0",
	}
	s, addr := startServer(t, cfg)
	_ = addr
	var statsAddr net.Addr
	for i := 0; i < 200; i++ {
		if statsAddr = s.StatsAddr(); statsAddr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if statsAddr == nil {
		t.Fatal("stats endpoint never bound")
	}
	resp, err := http.Get("http://" + statsAddr.String() + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap HealthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != HealthOK {
		t.Fatalf("idle server state %q, want ok", snap.State)
	}
	if snap.DegradedLossRate <= 0 || snap.OverloadLossRate <= snap.DegradedLossRate {
		t.Fatalf("thresholds not populated: %+v", snap)
	}
}
