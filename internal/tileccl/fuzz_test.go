package tileccl

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
)

// FuzzTiledVsSingle is the differential fuzzer for the tile-parallel path:
// the fuzzer picks the frame geometry, pixel contents, tile shape (including
// 1-row/1-col tiles and tiles larger than the grid), worker count, and
// connectivity; the test asserts the tiled engine's island list is
// positionally identical to single-core runccl and to the flood-fill golden.
func FuzzTiledVsSingle(f *testing.F) {
	f.Add(uint16(4), uint16(4), uint16(2), uint16(2), uint8(2), false, []byte{0xff, 0x00, 0x81})
	f.Add(uint16(3), uint16(70), uint16(1), uint16(64), uint8(3), true, []byte{0xaa, 0x55, 0xaa, 0x55})
	f.Add(uint16(7), uint16(7), uint16(1), uint16(1), uint8(1), true, []byte{0x12, 0x34, 0x56})
	f.Add(uint16(5), uint16(5), uint16(9), uint16(9), uint8(4), false, []byte{0x0f})
	f.Add(uint16(2), uint16(130), uint16(2), uint16(63), uint8(2), true, []byte{0xc3, 0x3c, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, rows, cols, tileRows, tileCols uint16, workers uint8, eight bool, pix []byte) {
		r := 1 + int(rows)%80
		c := 1 + int(cols)%200
		cfg := Config{
			Rows:     r,
			Cols:     c,
			TileRows: 1 + int(tileRows)%(r+4), // may exceed the grid
			TileCols: 1 + int(tileCols)%(c+4),
			Workers:  1 + int(workers)%8,
		}
		cfg.Connectivity = grid.FourWay
		if eight {
			cfg.Connectivity = grid.EightWay
		}
		g := grid.New(r, c)
		if len(pix) > 0 {
			flat := g.Flat()
			for i := range flat {
				b := pix[i%len(pix)]
				// Bit-expand the corpus bytes into lit pixels with values
				// derived from position, so identical bytes still produce
				// varied accumulator sums.
				if b>>(uint(i/len(pix))%8)&1 == 1 {
					flat[i] = grid.Value(1 + (i*7+int(b))%40)
				}
			}
		}

		e, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		defer e.Close()
		got := e.Label(e.Pack(g.Flat(), nil), g.Flat(), nil)

		se, err := runccl.NewEngine(r, c, cfg.Connectivity)
		if err != nil {
			t.Fatal(err)
		}
		single := se.Label(se.Pack(g.Flat(), nil), g.Flat(), nil)
		want := refIslands(t, g, cfg.Connectivity)

		if len(single) != len(want) {
			t.Fatalf("runccl disagrees with flood fill: %d vs %d islands", len(single), len(want))
		}
		if len(got) != len(want) {
			t.Fatalf("%dx%d tiles=%dx%d w=%d %s: tiled %d islands, want %d\n%s",
				r, c, cfg.TileRows, cfg.TileCols, cfg.Workers, cfg.Connectivity,
				len(got), len(want), g)
		}
		for i := range got {
			if got[i] != want[i] || got[i] != single[i] {
				t.Fatalf("%dx%d tiles=%dx%d w=%d %s island %d: tiled %+v, single %+v, ref %+v\n%s",
					r, c, cfg.TileRows, cfg.TileCols, cfg.Workers, cfg.Connectivity,
					i+1, got[i], single[i], want[i], g)
			}
		}
	})
}
