// Package tileccl implements tile-parallel connected-component labeling for
// megapixel bit-packed frames — the intra-event parallelism layer on top of
// the run-based engine of internal/runccl.
//
// The paper's geometries top out at 64×64, where one event is too small to be
// worth splitting. Pixel-telescope and imaging workloads are not: a 512×512–
// 1024×1024 frame carries hundreds of kilopixels per trigger, and the related
// work (Chen et al.'s coarse-to-fine strategy, arXiv:1712.09789; Kowalczyk &
// Kryjak's multi-pixel-per-clock streams, arXiv:2105.09658) shows the
// parallel speedup lives in labeling tiles independently and reconciling only
// the boundaries. This package does exactly that, in software:
//
//   - the frame is cut into a fixed grid of tiles (full-width row bands by
//     default; arbitrary rectangles are supported and fuzzed);
//   - a persistent worker pool — goroutines started once at engine
//     construction, parked between events, never spawned per event — labels
//     tiles concurrently with the run-based kernel (word-at-a-time run
//     extraction, per-tile union-find over runs) against per-worker and
//     per-tile arena scratch, accumulating per-island statistics (pixels,
//     charge, Q16.16 centroid moments) locally;
//   - a small cross-tile union-find then merges islands that touch across
//     tile edges: one two-pointer overlap sweep per horizontal seam over the
//     boundary-row runs (±1 column dilation for 8-way, which also covers
//     corner adjacency where four tiles meet), and per-row edge matching
//     across vertical seams;
//   - per-island accumulators reduce across tiles with integer addition, so
//     the merged statistics are bit-identical to a single-core runccl pass,
//     and islands are renumbered 1..K by first raster appearance — the
//     identical compact numbering runccl and the per-pixel path produce.
//
// The sequential work per event is O(boundary runs + islands): everything
// proportional to frame area or lit content runs inside the tiles.
// FuzzTiledVsSingle asserts exact equivalence (labels partition, statistics,
// numbering) against runccl and the ccl.Label flood-fill golden on random
// geometries, tile shapes, and both connectivities.
package tileccl

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
)

// Config parameterizes one tile-parallel engine.
type Config struct {
	// Rows, Cols set the frame geometry.
	Rows, Cols int
	// Connectivity is 4-way or 8-way (default FourWay, matching ccl.Options).
	Connectivity grid.Connectivity
	// TileRows, TileCols set the tile shape in pixels. Zero picks an
	// automatic shape: full-width row bands of roughly Rows/(4×Workers) rows
	// (several tiles per worker for dynamic load balance, full width so run
	// extraction never pays column clipping). Edge tiles are clipped to the
	// frame.
	TileRows, TileCols int
	// Workers is the total labeling concurrency, including the caller's
	// goroutine: Workers-1 pool goroutines are started at construction and
	// the calling thread labels alongside them. Zero means
	// min(GOMAXPROCS, 8). Workers is capped at the tile count; 1 runs
	// everything inline on the caller with no pool at all.
	Workers int
}

// run is one maximal horizontal segment of lit pixels within a tile, in
// global column coordinates; the row is implicit in per-row index ranges.
type run struct {
	start, end int32
}

// bRun is a boundary-row run annotated with the island it belongs to: the
// tile-local island id in tile storage, the global island node once copied
// into a seam sweep list.
type bRun struct {
	start, end, isl int32
}

// tile is one rectangle of the decomposition plus its per-event results.
// Exactly one worker writes a tile per event (tiles are claimed off an atomic
// cursor); the merge phase reads them after the pool barrier, so no field
// needs further synchronization. All slices are persistent arenas grown to
// the workload's high-water mark.
type tile struct {
	r0, r1, c0, c1 int32  // pixel rectangle, half-open
	w0, w1         int32  // word range covering [c0,c1) within a row
	mask0, mask1   uint64 // column-clip masks for the first and last word

	nIsl   int32 // islands found in this tile this event
	pixels []uint32
	sums   []int64
	rowM   []int64
	colM   []int64
	minPos []int64 // per island: first lit pixel in global raster order

	topRuns []bRun  // runs on the tile's first row (local island ids)
	botRuns []bRun  // runs on the tile's last row
	left    []int32 // per local row: island touching col c0, or -1
	right   []int32 // per local row: island touching col c1-1, or -1
}

// worker is one labeler's private scratch: the run store and union-find for
// whichever tile it currently holds. Contents do not survive the tile, so one
// arena per worker suffices no matter how many tiles it processes.
type worker struct {
	runs   []run
	rowOff []int32
	uf     ccl.DenseUF
	remap  []int32 // run root -> 1+local island id; cleared per tile
	runIsl []int32 // run -> local island id
}

// ordIsl pairs a merged island's root node with its first-appearance raster
// position, for the final compact renumbering sort.
type ordIsl struct {
	pos  int64
	node int32
}

// Engine labels bit-packed binary frames of one fixed geometry across a
// persistent worker pool. The bitmap layout (words per row, bit order) is
// identical to runccl.Engine's, so the serving path's zero-suppression fills
// either engine's bitmap with the same litWord/litMask tables. Label may be
// called from one goroutine at a time; the pool synchronizes internally.
//
//hepccl:pool
type Engine struct {
	rows, cols, wpr    int
	eight              bool
	tileRows, tileCols int
	trows, tcols       int
	nWorkers           int

	tiles []tile
	ws    []worker

	// Per-event job state: published before the pool is woken, consumed by
	// the wake-channel happens-before edge. job selects what a woken worker
	// does (label tiles or scatter merge accumulators); it is written only by
	// the caller between barriers, so the channel edge orders it.
	bitmap []uint64
	values []grid.Value
	next   atomic.Int64 //hepccl:cursor
	job    int32

	wake   chan struct{} //hepccl:wake — one token per background worker per event
	done   chan struct{} //hepccl:done — one token back per background worker
	closed bool

	// Merge-phase scratch. The g* reduction arenas are written by the pool
	// during the scatter barrier (disjoint per-tile ranges) and owned by the
	// caller goroutine otherwise.
	guf          ccl.DenseUF
	base         []int32
	gPixels      []uint32
	gSums        []int64
	gRowM        []int64
	gColM        []int64
	gMinPos      []int64
	upper, lower []bRun
	ord          []ordIsl
	ordTmp       []ordIsl
	cntRow       []int32 // counting-order scratch, one slot per frame row
	cntCol       []int32 // counting-order scratch, one slot per frame column

	// Optional phase instrumentation (benchmarks): wall ns of the last
	// event's tile phase and merge phase, plus the merge phase's stat-scatter
	// sub-phase — the part of merge that parallelizes across the pool.
	instrument                 bool
	tileNs, mergeNs, scatterNs int64
}

// New validates the configuration, builds the tile decomposition, and starts
// the worker pool. Call Close to stop the pool when the engine is discarded.
func New(cfg Config) (*Engine, error) {
	if cfg.Rows < 1 || cfg.Cols < 1 {
		return nil, fmt.Errorf("tileccl: invalid dimensions %dx%d", cfg.Rows, cfg.Cols)
	}
	conn := cfg.Connectivity
	if conn == 0 {
		conn = grid.FourWay
	}
	if !conn.Valid() {
		return nil, fmt.Errorf("tileccl: invalid connectivity %d", int(cfg.Connectivity))
	}
	if cfg.TileRows < 0 || cfg.TileCols < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("tileccl: negative tile shape or worker count")
	}
	w := cfg.Workers
	if w == 0 {
		w = min(runtime.GOMAXPROCS(0), 8)
	}
	th, tw := cfg.TileRows, cfg.TileCols
	if tw == 0 {
		tw = cfg.Cols
	}
	if th == 0 {
		// Several tiles per worker for dynamic balance, but at least 8 rows
		// per tile so seam merging stays a small fraction of tile labeling.
		th = max(cfg.Rows/(4*w), 8)
	}
	th = min(th, cfg.Rows)
	tw = min(tw, cfg.Cols)
	e := &Engine{
		rows:     cfg.Rows,
		cols:     cfg.Cols,
		wpr:      (cfg.Cols + 63) / 64,
		eight:    conn == grid.EightWay,
		tileRows: th,
		tileCols: tw,
		trows:    (cfg.Rows + th - 1) / th,
		tcols:    (cfg.Cols + tw - 1) / tw,
	}
	e.tiles = make([]tile, e.trows*e.tcols)
	for tr := 0; tr < e.trows; tr++ {
		for tc := 0; tc < e.tcols; tc++ {
			t := &e.tiles[tr*e.tcols+tc]
			t.r0 = int32(tr * th)
			t.r1 = int32(min((tr+1)*th, cfg.Rows))
			t.c0 = int32(tc * tw)
			t.c1 = int32(min((tc+1)*tw, cfg.Cols))
			t.w0 = t.c0 >> 6
			t.w1 = (t.c1 - 1) >> 6
			t.mask0 = ^uint64(0) << uint(t.c0&63)
			t.mask1 = ^uint64(0) >> uint(63-(t.c1-1)&63)
		}
	}
	e.nWorkers = min(w, len(e.tiles))
	e.ws = make([]worker, e.nWorkers)
	for i := range e.ws {
		e.ws[i].rowOff = make([]int32, th+1)
		e.ws[i].runs = make([]run, 0, 4*th)
	}
	e.base = make([]int32, len(e.tiles)+1)
	if n := e.nWorkers - 1; n > 0 {
		e.wake = make(chan struct{}, n)
		e.done = make(chan struct{}, n)
		for i := 1; i <= n; i++ {
			go e.workerLoop(i)
		}
	}
	return e, nil
}

// Close stops the pool goroutines. The engine must not be used after Close.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.wake != nil {
		close(e.wake)
	}
}

// WordsPerRow returns the packed-bitmap stride, identical to
// runccl.Engine.WordsPerRow for the same geometry.
func (e *Engine) WordsPerRow() int { return e.wpr }

// BitmapLen returns the required bitmap length, rows × WordsPerRow.
func (e *Engine) BitmapLen() int { return e.rows * e.wpr }

// Rows returns the configured row count.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the configured column count.
func (e *Engine) Cols() int { return e.cols }

// Workers returns the effective labeling concurrency (including the caller).
func (e *Engine) Workers() int { return e.nWorkers }

// Tiles returns the tile-grid shape (tile rows, tile cols).
func (e *Engine) Tiles() (int, int) { return e.trows, e.tcols }

// SetInstrument enables per-phase wall-clock instrumentation for benchmarks.
func (e *Engine) SetInstrument(on bool) { e.instrument = on }

// Phases returns the last labeled event's tile-phase and merge-phase wall
// nanoseconds (zero unless SetInstrument(true)).
func (e *Engine) Phases() (tileNs, mergeNs int64) { return e.tileNs, e.mergeNs }

// MergeScatterNs returns the wall nanoseconds the last event's merge phase
// spent in the stat-scatter sub-phase (zero unless SetInstrument(true)).
// Scatter parallelizes across the pool like the tile phase; the rest of merge
// is serial, so the split refines the modeled multi-core speedup.
func (e *Engine) MergeScatterNs() int64 { return e.scatterNs }

// Pack fills bitmap with the lit-pixel bits of the flat row-major values
// image in the engine's layout — the reference producer for tests; the
// serving path builds the bitmap inline during zero-suppression.
func (e *Engine) Pack(values []grid.Value, bitmap []uint64) []uint64 {
	n := e.BitmapLen()
	if cap(bitmap) < n {
		bitmap = make([]uint64, n)
	}
	bitmap = bitmap[:n]
	for i := range bitmap {
		bitmap[i] = 0
	}
	for r := 0; r < e.rows; r++ {
		rowBase := r * e.cols
		wordBase := r * e.wpr
		for c := 0; c < e.cols; c++ {
			if values[rowBase+c] != 0 {
				bitmap[wordBase+c>>6] |= 1 << uint(c&63)
			}
		}
	}
	return bitmap
}

// Label labels the packed bitmap across the pool, accumulates per-island
// statistics from the flat row-major values image (only lit pixels are read),
// and appends one Island per component to dst in compact raster order of
// first appearance — output bit-identical to runccl.Engine.Label on the same
// frame. dst is returned grown; pass dst[:0] of a reused slice for the
// zero-allocation steady state.
//
//hepccl:hotpath
func (e *Engine) Label(bitmap []uint64, values []grid.Value, dst []runccl.Island) []runccl.Island {
	//hepccl:coldpath
	if len(bitmap) != e.BitmapLen() {
		panic(fmt.Sprintf("tileccl: bitmap length %d, want %d", len(bitmap), e.BitmapLen()))
	}
	//hepccl:coldpath
	if len(values) != e.rows*e.cols {
		panic(fmt.Sprintf("tileccl: values length %d, want %d", len(values), e.rows*e.cols))
	}
	var t0 int64
	if e.instrument {
		t0 = nanotime()
	}
	e.bitmap, e.values = bitmap, values
	e.job = jobLabel
	e.next.Store(0)
	bg := e.nWorkers - 1
	for i := 0; i < bg; i++ {
		e.wake <- struct{}{}
	}
	e.runTiles(0) // the caller labels alongside the pool
	for i := 0; i < bg; i++ {
		<-e.done
	}
	var t1 int64
	if e.instrument {
		t1 = nanotime()
		e.tileNs = t1 - t0
	}
	dst = e.merge(dst)
	if e.instrument {
		e.mergeNs = nanotime() - t1
	}
	e.bitmap, e.values = nil, nil
	return dst
}

// Jobs a woken pool worker can run. jobLabel is the per-event tile labeling
// phase; jobScatter is the merge phase's accumulator scatter.
const (
	jobLabel = iota
	jobScatter
)

// workerLoop is one pool goroutine: park on the wake channel, run whichever
// job the caller published, report done. It exits when Close closes the
// channel.
func (e *Engine) workerLoop(id int) {
	for range e.wake {
		if e.job == jobScatter {
			e.runScatter()
		} else {
			e.runTiles(id)
		}
		e.done <- struct{}{}
	}
}

// scatterParallelMin is the merged-node count below which the merge phase's
// accumulator scatter stays on the caller: the two channel crossings per
// worker of a second barrier cost a few microseconds, which only a large
// island population amortizes.
const scatterParallelMin = 1024

// runScatter claims tiles off the shared cursor and copies each one's island
// accumulators into its contiguous range of the engine-wide reduction arrays.
// Ranges are disjoint by construction, so concurrent workers never touch the
// same element.
//
//hepccl:hotpath
func (e *Engine) runScatter() {
	nt := int64(len(e.tiles))
	// The cursor yields 0 ≤ i < nt, and base is the tiles' island prefix
	// sum with base[i] + nIsl ≤ len(gPixels) — claim-protocol and fence
	// invariants the compiler cannot see.
	//hepccl:checked
	for {
		i := e.next.Add(1) - 1
		if i >= nt {
			return
		}
		t := &e.tiles[i]
		b := int(e.base[i])
		k := int(t.nIsl)
		copy(e.gPixels[b:b+k], t.pixels[:k])
		copy(e.gSums[b:b+k], t.sums[:k])
		copy(e.gRowM[b:b+k], t.rowM[:k])
		copy(e.gColM[b:b+k], t.colM[:k])
		copy(e.gMinPos[b:b+k], t.minPos[:k])
	}
}

// runTiles claims tiles off the shared cursor until none remain.
//
//hepccl:hotpath
func (e *Engine) runTiles(id int) {
	w := &e.ws[id]
	n := int64(len(e.tiles))
	// The shared cursor yields 0 ≤ i < n by the claim protocol.
	//hepccl:checked
	for {
		i := e.next.Add(1) - 1
		if i >= n {
			return
		}
		e.labelTile(w, &e.tiles[i])
	}
}

// labelTile runs the per-tile kernel: clipped run extraction, local
// union-find, per-island accumulation, and boundary recording — the run-based
// engine restricted to one rectangle, against this worker's arena scratch.
//
//hepccl:hotpath
func (e *Engine) labelTile(w *worker, t *tile) {
	bitmap := e.bitmap
	h := int(t.r1 - t.r0)

	// Run extraction, word-at-a-time with the tile's column-clip masks.
	// Identical to runccl's extractor except for the masked first/last word.
	runs := w.runs[:0]
	rowOff := w.rowOff[:h+1]
	rowHead := rowOff[:h]
	for r := range rowHead {
		rowHead[r] = int32(len(runs))
		wordBase := (int(t.r0) + r) * e.wpr
		openStart, openEnd := int32(-1), int32(-1)
		// The tile's word window lies inside the frame bitmap by the tiling
		// construction; ranging over the row view keeps the word loads
		// check-free.
		//hepccl:checked
		rowWords := bitmap[wordBase+int(t.w0) : wordBase+int(t.w1)+1]
		for wi, x := range rowWords {
			if wi == 0 {
				x &= t.mask0
			}
			if wi == len(rowWords)-1 {
				x &= t.mask1
			}
			base := (t.w0 + int32(wi)) << 6
			for x != 0 {
				s := bits.TrailingZeros64(x)
				n := bits.TrailingZeros64(^(x >> uint(s))) // run length 1..64
				start := base + int32(s)
				end := start + int32(n)
				if start == openEnd {
					openEnd = end // continues through the word boundary
				} else {
					if openStart >= 0 {
						runs = append(runs, run{openStart, openEnd})
					}
					openStart, openEnd = start, end
				}
				// Clear the consumed run; x<<64 == 0 covers the all-ones word.
				x &^= ((uint64(1) << uint(n)) - 1) << uint(s)
			}
		}
		if openStart >= 0 {
			runs = append(runs, run{openStart, openEnd})
		}
	}
	rowOff[h] = int32(len(runs))
	w.runs = runs

	// Local union-find over vertically adjacent runs (±1 column dilation for
	// 8-way), the same two-pointer sweep as runccl.connect.
	w.uf.Reset(len(runs))
	var dil int32
	if e.eight {
		dil = 1
	}
	// The same shifted-fence and row-local-view shapes as runccl.connect:
	// per-row-pair checks on the fence loads buy check-free sweeps.
	if len(rowOff) >= 3 {
		offA := rowOff[: len(rowOff)-2 : len(rowOff)-2]
		offB := rowOff[1 : len(rowOff)-1 : len(rowOff)-1]
		offC := rowOff[2:]
		for r := range offA {
			lo, hiOff := offA[r], offB[r]
			cur, curEnd := hiOff, offC[r]
			if lo == hiOff || cur == curEnd {
				continue
			}
			//hepccl:checked the row fence is monotone with rowOff[h] == len(runs)
			prev := runs[lo:hiOff]
			//hepccl:checked same fence invariant
			cur2 := runs[cur:curEnd]
			jj := 0
			for i := range cur2 {
				a := cur2[i].start - dil
				b := cur2[i].end + dil
				j := int(uint32(jj))
				for j < len(prev) && prev[j].end <= a {
					j++
				}
				jj = j
				for k := int(uint32(j)); k < len(prev) && prev[k].start < b; k++ {
					w.uf.Union(cur+int32(i), lo+int32(k))
				}
			}
		}
	}

	// Compact local islands in tile-raster order and accumulate statistics.
	w.uf.Flatten()
	nr := len(runs)
	//hepccl:amortized
	if cap(w.remap) < nr {
		w.remap = make([]int32, nr)
		w.runIsl = make([]int32, nr)
	}
	remap := w.remap[:nr]
	runIsl := w.runIsl[:nr]
	for i := range remap {
		remap[i] = 0
	}
	//hepccl:amortized
	if cap(t.pixels) < nr {
		t.pixels = make([]uint32, nr)
		t.sums = make([]int64, nr)
		t.rowM = make([]int64, nr)
		t.colM = make([]int64, nr)
		t.minPos = make([]int64, nr)
	}
	pixels := t.pixels[:nr]
	sums := t.sums[:nr]
	rowM := t.rowM[:nr]
	colM := t.colM[:nr]
	minPos := t.minPos[:nr]
	values := e.values
	cols := e.cols
	k := int32(0)
	// As in runccl.accumulate: the island-label indexes (root, cl) are
	// loaded or counted values with root < nr and cl ≤ k ≤ nr; the provable
	// checks — per-pixel value loads — are hoisted into per-row and per-run
	// slice headers instead.
	//hepccl:checked
	for r := 0; r < h; r++ {
		row := int(t.r0) + r
		rowBase := int64(row) * int64(cols)
		rowVals := values[rowBase:][:cols]
		for i := rowOff[r]; i < rowOff[r+1]; i++ {
			root := w.uf.Root(i)
			cl := remap[root]
			if cl == 0 {
				k++
				cl = k
				remap[root] = cl
				pixels[cl-1] = 0
				sums[cl-1] = 0
				rowM[cl-1] = 0
				colM[cl-1] = 0
				minPos[cl-1] = rowBase + int64(runs[i].start)
			}
			runIsl[i] = cl - 1
			rn := runs[i]
			var sum, colm int64
			vals := rowVals[:rn.end]
			for c := int(uint32(rn.start)); c < len(vals); c++ {
				v := int64(vals[c])
				sum += v
				colm += int64(c) * v
			}
			pixels[cl-1] += uint32(rn.end - rn.start)
			sums[cl-1] += sum
			rowM[cl-1] += int64(row) * sum
			colM[cl-1] += colm
		}
	}
	t.nIsl = k

	// Boundary records for the merge phase: the first and last rows' runs
	// with their island ids, and the per-row islands touching the left and
	// right tile edges.
	top := t.topRuns[:0]
	topRuns := runs[rowOff[0]:rowOff[1]]
	topIsl := runIsl[rowOff[0]:rowOff[1]]
	for i := range topRuns {
		top = append(top, bRun{topRuns[i].start, topRuns[i].end, topIsl[i]})
	}
	t.topRuns = top
	bot := t.botRuns[:0]
	botRuns := runs[rowOff[h-1]:rowOff[h]]
	botIsl := runIsl[rowOff[h-1]:rowOff[h]]
	for i := range botRuns {
		bot = append(bot, bRun{botRuns[i].start, botRuns[i].end, botIsl[i]})
	}
	t.botRuns = bot
	//hepccl:amortized
	if cap(t.left) < h {
		t.left = make([]int32, h)
		t.right = make([]int32, h)
	}
	left := t.left[:h]
	right := t.right[:h]
	// The fence loads and the edge-run loads they bound are loaded values
	// (rowOff is monotone with rowOff[h] == len(runs)).
	//hepccl:checked
	for r := 0; r < h; r++ {
		left[r], right[r] = -1, -1
		lo, hi := rowOff[r], rowOff[r+1]
		if lo == hi {
			continue
		}
		if runs[lo].start == t.c0 {
			left[r] = runIsl[lo]
		}
		if runs[hi-1].end == t.c1 {
			right[r] = runIsl[hi-1]
		}
	}
	t.left, t.right = left, right
}

// merge reconciles tile boundaries and reduces per-island accumulators into
// the final compact island list. It runs on the caller's goroutine after the
// pool barrier; its cost is O(boundary runs + islands), independent of frame
// area and lit interior content.
//
//hepccl:hotpath
func (e *Engine) merge(dst []runccl.Island) []runccl.Island {
	// Assign each tile's islands a contiguous range of global nodes and copy
	// their accumulators into the engine-wide reduction arrays.
	tiles := e.tiles
	base := e.base
	n := int32(0)
	// A tile-count view of base ties the prefix-sum store to the range bound.
	bh := base[:len(tiles)]
	for i := range tiles {
		bh[i] = n
		n += tiles[i].nIsl
	}
	base[len(tiles)] = n
	nn := int(n)
	//hepccl:amortized
	if cap(e.gPixels) < nn {
		e.gPixels = make([]uint32, nn)
		e.gSums = make([]int64, nn)
		e.gRowM = make([]int64, nn)
		e.gColM = make([]int64, nn)
		e.gMinPos = make([]int64, nn)
	}
	gPixels := e.gPixels[:nn]
	gSums := e.gSums[:nn]
	gRowM := e.gRowM[:nn]
	gColM := e.gColM[:nn]
	gMinPos := e.gMinPos[:nn]
	// Scatter each tile's accumulators into its contiguous node range. Tiles
	// write disjoint ranges, so the copy parallelizes with no synchronization
	// beyond the pool barrier; it is a second barrier phase only when the
	// island population is large enough to amortize the two channel crossings
	// per worker — small frames stay on the caller.
	var s0 int64
	if e.instrument {
		s0 = nanotime()
	}
	e.next.Store(0)
	if bg := e.nWorkers - 1; bg > 0 && nn >= scatterParallelMin {
		e.job = jobScatter
		for i := 0; i < bg; i++ {
			e.wake <- struct{}{}
		}
		e.runScatter()
		for i := 0; i < bg; i++ {
			<-e.done
		}
	} else {
		e.runScatter()
	}
	if e.instrument {
		e.scatterNs = nanotime() - s0
	}

	guf := &e.guf
	guf.Reset(nn)
	var dil int32
	if e.eight {
		dil = 1
	}

	// Horizontal seams (between vertically adjacent tile rows): one overlap
	// sweep per seam over the full-width boundary rows. Concatenating every
	// tile's boundary runs left to right yields sorted lists, and the ±1
	// dilation makes the sweep also union 8-way corner adjacency where four
	// tiles meet.
	for tr := 0; tr+1 < e.trows; tr++ {
		upper := e.upper[:0]
		lower := e.lower[:0]
		// Tile-grid products stay inside the tiles/base arrays by the grid
		// construction (tr < trows-1, tc < tcols).
		//hepccl:checked
		for tc := 0; tc < e.tcols; tc++ {
			t := &tiles[tr*e.tcols+tc]
			for _, br := range t.botRuns {
				upper = append(upper, bRun{br.start, br.end, base[tr*e.tcols+tc] + br.isl})
			}
			t = &tiles[(tr+1)*e.tcols+tc]
			for _, br := range t.topRuns {
				lower = append(lower, bRun{br.start, br.end, base[(tr+1)*e.tcols+tc] + br.isl})
			}
		}
		e.upper, e.lower = upper, lower
		jj := 0
		for i := range lower {
			a := lower[i].start - dil
			b := lower[i].end + dil
			// Re-prove the persistent cursor each row: its non-negativity
			// does not survive the loop phi.
			j := int(uint32(jj))
			for j < len(upper) && upper[j].end <= a {
				j++
			}
			jj = j
			for k := int(uint32(j)); k < len(upper) && upper[k].start < b; k++ {
				guf.Union(lower[i].isl, upper[k].isl)
			}
		}
	}

	// Vertical seams (between horizontally adjacent tiles): per-row edge
	// matching. Same-row adjacency for 4-way; 8-way adds the two diagonals
	// within the band — diagonals that leave the band cross a tile corner and
	// are already covered by the dilated horizontal-seam sweep above.
	// Tile-grid products index inside tiles/base by construction, and
	// horizontally adjacent tiles share their band's height, so the edge
	// lists are equal-length — neither visible to compiler range proofs.
	//hepccl:checked
	for tr := 0; tr < e.trows; tr++ {
		for tc := 0; tc+1 < e.tcols; tc++ {
			lt := &tiles[tr*e.tcols+tc]
			rt := &tiles[tr*e.tcols+tc+1]
			lb, rb := base[tr*e.tcols+tc], base[tr*e.tcols+tc+1]
			h := len(lt.right)
			for r := 0; r < h; r++ {
				l := lt.right[r]
				if l < 0 {
					continue
				}
				ln := lb + l
				if rr := rt.left[r]; rr >= 0 {
					guf.Union(ln, rb+rr)
				}
				if e.eight {
					if r > 0 {
						if rr := rt.left[r-1]; rr >= 0 {
							guf.Union(ln, rb+rr)
						}
					}
					if r+1 < h {
						if rr := rt.left[r+1]; rr >= 0 {
							guf.Union(ln, rb+rr)
						}
					}
				}
			}
		}
	}

	// Reduce accumulators onto roots. DenseUF's min-root unions guarantee
	// root < member, so one ascending fold after Flatten is complete.
	guf.Flatten()
	k := 0
	// Roots are loaded parent values with root ≤ member < nn — the
	// union-by-minimum invariant, outside compiler range proofs.
	//hepccl:checked
	for x := 0; x < nn; x++ {
		r := guf.Root(int32(x))
		if int(r) == x {
			k++
			continue
		}
		gPixels[r] += gPixels[x]
		gSums[r] += gSums[x]
		gRowM[r] += gRowM[x]
		gColM[r] += gColM[x]
		if gMinPos[x] < gMinPos[r] {
			gMinPos[r] = gMinPos[x]
		}
	}

	// Renumber 1..K by first raster appearance — the numbering a single
	// raster-order pass (runccl, the per-pixel path) produces. Tile-raster
	// node order is not frame-raster order, so sort the roots by the position
	// of their first lit pixel.
	//hepccl:amortized
	if cap(e.ord) < k {
		e.ord = make([]ordIsl, k)
	}
	ord := e.ord[:0]
	// Same root invariant as the reduction above.
	//hepccl:checked
	for x := 0; x < nn; x++ {
		if int(guf.Root(int32(x))) == x {
			ord = append(ord, ordIsl{gMinPos[x], int32(x)})
		}
	}
	e.ord = ord
	e.orderByPos(ord)

	b := len(dst)
	//hepccl:amortized
	if cap(dst) < b+k {
		grown := make([]runccl.Island, b+k, b+k+k/2+8)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:b+k]
	out := dst[b:][:len(ord)]
	// Every ord entry's node is a root < nn, an invariant of the reduction
	// pass the compiler cannot carry into the gather loads.
	//hepccl:checked
	for i := range ord {
		x := ord[i].node
		out[i] = runccl.Island{
			Pixels: gPixels[x],
			Sum:    gSums[x],
			RowQ16: q16Ratio(gRowM[x], gSums[x]),
			ColQ16: q16Ratio(gColM[x], gSums[x]),
		}
	}
	return dst
}

// orderByPos puts the root list (built in ascending node order) into
// ascending first-appearance order.
//
// For the default full-width row-band decomposition (one tile column) the
// list is already ordered and the call is free: local island ids are assigned
// in band-raster order, which within a full-width band is frame-raster order;
// tile bases grow with the band row; and the min-root union rule makes every
// merged island's root the component that contains its first lit pixel (that
// component lives in the island's earliest band and first-appears at the
// island's global minimum position, so it carries the smallest local id among
// the island's components there). Ascending node order is therefore exactly
// ascending first-appearance order — no comparison sort at all.
//
// General tile grids break that guarantee (node order is tile-row-major, and
// a root's own first appearance need not be the island's minimum — only the
// folded gMinPos key is), so the roots are ordered by their minPos key with a
// two-pass LSD counting sort: a stable scatter by column digit, then by row
// digit, each pass one count / prefix-sum / scatter over a frame-dimension
// count array. O(K + rows + cols), no data-dependent branching, and
// allocation-free against persistent scratch — replacing the former
// comparison shellsort.
//
//hepccl:hotpath
func (e *Engine) orderByPos(ord []ordIsl) {
	if e.tcols == 1 || len(ord) < 2 {
		return
	}
	k := len(ord)
	//hepccl:amortized
	if cap(e.ordTmp) < k {
		e.ordTmp = make([]ordIsl, k)
	}
	//hepccl:amortized
	if e.cntCol == nil {
		e.cntCol = make([]int32, e.cols)
		e.cntRow = make([]int32, e.rows)
	}
	tmp := e.ordTmp[:k]
	cols := int64(e.cols)

	// Every digit below is pos mod/div cols with pos = row·cols + col for
	// an in-frame pixel, so the count indexes lie in [0, cols) and
	// [0, rows) and the scatter targets are prefix sums bounded by k — sort
	// invariants outside compiler range proofs.
	cntCol := e.cntCol
	for i := range cntCol {
		cntCol[i] = 0
	}
	//hepccl:checked
	for i := range ord {
		cntCol[ord[i].pos%cols]++
	}
	off := int32(0)
	for i := range cntCol {
		c := cntCol[i]
		cntCol[i] = off
		off += c
	}
	//hepccl:checked
	for i := range ord {
		c := ord[i].pos % cols
		tmp[cntCol[c]] = ord[i]
		cntCol[c]++
	}

	cntRow := e.cntRow
	for i := range cntRow {
		cntRow[i] = 0
	}
	//hepccl:checked
	for i := range tmp {
		cntRow[tmp[i].pos/cols]++
	}
	off = 0
	for i := range cntRow {
		c := cntRow[i]
		cntRow[i] = off
		off += c
	}
	//hepccl:checked
	for i := range tmp {
		r := tmp[i].pos / cols
		ord[cntRow[r]] = tmp[i]
		cntRow[r]++
	}
}

// q16Ratio returns round(num/den × 2^16) in Q16.16 — the identical rounding
// runccl and the per-pixel serving path use, so centroids stay bit-identical.
func q16Ratio(num, den int64) int32 {
	if den == 0 {
		return 0
	}
	return int32((num<<16 + den/2) / den)
}
