package tileccl

import "time"

// nanotime returns wall-clock nanoseconds for the optional per-phase
// instrumentation. It only runs when SetInstrument(true) was called — never
// in production serving — so it is excluded from the hot-path closure.
//
//hepccl:coldpath
func nanotime() int64 { return time.Now().UnixNano() }
