package tileccl

import (
	"fmt"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
)

// The BENCH_7 sweep: tile-parallel vs single-core run-based labeling over
// frame size × occupancy × worker count. Workloads are blob fields (clustered
// lit pixels, the detector-like shape) at the stated fraction of lit pixels.
//
//	go test -run '^$' -bench BenchmarkLabel -benchtime 200x -benchmem ./internal/tileccl/
//
// On a single-core host the tiled numbers measure the engine's overhead
// (tile pass serialized through one core plus the merge pass); the modeled
// multi-core speedup comes from BenchmarkLabelPhases, which separates the
// perfectly parallel tile phase from the serial merge.

// benchFrame builds a bitmap+values pair at roughly the requested occupancy.
func benchFrame(rows, cols int, occ float64) ([]uint64, []grid.Value, *runccl.Engine) {
	rng := detector.NewRNG(uint64(rows*31+cols) + uint64(occ*1e4))
	// RandomIslands blobs average ~8 lit px (radius 1.5×[0.5,1.5)); count to
	// hit the occupancy target, overlap losses make it approximate.
	blobs := int(float64(rows*cols) * occ / 8)
	if blobs < 1 {
		blobs = 1
	}
	g := detector.RandomIslands(rows, cols, blobs, 1.5, rng)
	single, err := runccl.NewEngine(rows, cols, grid.FourWay)
	if err != nil {
		panic(err)
	}
	values := g.Flat()
	bitmap := single.Pack(values, nil)
	return bitmap, values, single
}

func BenchmarkLabelSingle(b *testing.B) {
	for _, size := range []int{256, 512, 1024} {
		for _, occ := range []float64{0.005, 0.02, 0.1} {
			b.Run(fmt.Sprintf("%dx%d/occ=%g", size, size, occ), func(b *testing.B) {
				bitmap, values, single := benchFrame(size, size, occ)
				var islands []runccl.Island
				islands = single.Label(bitmap, values, islands[:0]) // warmup: grow arenas
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					islands = single.Label(bitmap, values, islands[:0])
				}
				b.ReportMetric(float64(len(islands)), "islands")
			})
		}
	}
}

func BenchmarkLabelTiled(b *testing.B) {
	for _, size := range []int{256, 512, 1024} {
		for _, occ := range []float64{0.005, 0.02, 0.1} {
			for _, workers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%dx%d/occ=%g/workers=%d", size, size, occ, workers)
				b.Run(name, func(b *testing.B) {
					bitmap, values, _ := benchFrame(size, size, occ)
					e, err := New(Config{Rows: size, Cols: size, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					defer e.Close()
					var islands []runccl.Island
					islands = e.Label(bitmap, values, islands[:0]) // warmup: grow arenas, start the pool
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						islands = e.Label(bitmap, values, islands[:0])
					}
					b.ReportMetric(float64(len(islands)), "islands")
				})
			}
		}
	}
}

// BenchmarkLabelPhases instruments the engine's two phases separately. The
// tile phase is embarrassingly parallel (independent tiles, per-worker
// scratch), and so is the merge phase's stat-scatter sub-phase (disjoint
// global ranges per tile); the rest of merge is serial. On a W-core host the
// modeled steady-state cost is (tileNs+scatterNs)/W + (mergeNs−scatterNs),
// so the phase split measured on one core predicts the parallel speedup:
//
//	speedup(W) = (tileNs + mergeNs) / ((tileNs+scatterNs)/W + mergeNs − scatterNs)
//
// The emitted tile_ns, merge_ns, and scatter_ns metrics are per-Label
// averages (scatter_ns is a sub-span of merge_ns, not additional time).
func BenchmarkLabelPhases(b *testing.B) {
	for _, size := range []int{512, 1024} {
		for _, occ := range []float64{0.02} {
			b.Run(fmt.Sprintf("%dx%d/occ=%g", size, size, occ), func(b *testing.B) {
				bitmap, values, _ := benchFrame(size, size, occ)
				e, err := New(Config{Rows: size, Cols: size, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				e.SetInstrument(true)
				var islands []runccl.Island
				islands = e.Label(bitmap, values, islands[:0]) // warmup: grow arenas
				b.ReportAllocs()
				b.ResetTimer()
				var tileNs, mergeNs, scatterNs int64
				for i := 0; i < b.N; i++ {
					islands = e.Label(bitmap, values, islands[:0])
					tn, mn := e.Phases()
					tileNs += tn
					mergeNs += mn
					scatterNs += e.MergeScatterNs()
				}
				b.StopTimer()
				_ = islands
				n := int64(b.N)
				b.ReportMetric(float64(tileNs/n), "tile_ns")
				b.ReportMetric(float64(mergeNs/n), "merge_ns")
				b.ReportMetric(float64(scatterNs/n), "scatter_ns")
				for _, w := range []int{2, 4, 8} {
					model := float64(tileNs+mergeNs) /
						(float64(tileNs+scatterNs)/float64(w) + float64(mergeNs-scatterNs))
					b.ReportMetric(model, fmt.Sprintf("modeled_speedup_w%d", w))
				}
			})
		}
	}
}
