package tileccl

import (
	"fmt"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/runccl"
)

// refIslands computes the expected island list from the reference flood-fill
// labeler with compact raster numbering, accumulating the identical integer
// moments both engines use. Positional comparison: both sides number islands
// 1..K in raster order of first appearance.
func refIslands(t testing.TB, g *grid.Grid, conn grid.Connectivity) []runccl.Island {
	t.Helper()
	res, err := ccl.Label(g, ccl.Options{Connectivity: conn, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	islands := make([]runccl.Island, res.Islands)
	rowM := make([]int64, res.Islands+1)
	colM := make([]int64, res.Islands+1)
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			l := res.Labels.At(r, c)
			if l == 0 {
				continue
			}
			v := int64(g.At(r, c))
			is := &islands[l-1]
			is.Pixels++
			is.Sum += v
			rowM[l] += int64(r) * v
			colM[l] += int64(c) * v
		}
	}
	for l := 1; l <= res.Islands; l++ {
		islands[l-1].RowQ16 = q16Ratio(rowM[l], islands[l-1].Sum)
		islands[l-1].ColQ16 = q16Ratio(colM[l], islands[l-1].Sum)
	}
	return islands
}

// checkTriple labels g with the tiled engine under cfg and asserts the result
// is positionally identical to both single-core runccl and the flood-fill
// reference.
func checkTriple(t *testing.T, g *grid.Grid, cfg Config) {
	t.Helper()
	cfg.Rows, cfg.Cols = g.Rows(), g.Cols()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bitmap := e.Pack(g.Flat(), nil)
	got := e.Label(bitmap, g.Flat(), nil)

	conn := cfg.Connectivity
	if conn == 0 {
		conn = grid.FourWay
	}
	se, err := runccl.NewEngine(g.Rows(), g.Cols(), conn)
	if err != nil {
		t.Fatal(err)
	}
	single := se.Label(se.Pack(g.Flat(), nil), g.Flat(), nil)
	want := refIslands(t, g, conn)

	ctx := fmt.Sprintf("%s %dx%d tiles=%dx%d workers=%d",
		conn, g.Rows(), g.Cols(), e.tileRows, e.tileCols, e.Workers())
	if len(single) != len(want) {
		t.Fatalf("%s: runccl reference disagrees with flood fill: %d vs %d islands",
			ctx, len(single), len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d islands, want %d\n%s", ctx, len(got), len(want), g)
	}
	for i := range got {
		if got[i] != want[i] || got[i] != single[i] {
			t.Fatalf("%s island %d: tiled %+v, single %+v, ref %+v\n%s",
				ctx, i+1, got[i], single[i], want[i], g)
		}
	}
}

// tileShapes returns decompositions that stress every seam case for an
// rows×cols frame: word-misaligned column splits, 1-row and 1-col tiles,
// tiles larger than the grid, and the automatic shape.
func tileShapes(rows, cols int) []Config {
	return []Config{
		{},                                       // automatic full-width bands
		{TileRows: 1, TileCols: cols},            // every seam horizontal
		{TileRows: rows, TileCols: 1},            // every seam vertical
		{TileRows: 1, TileCols: 1},               // both, single-pixel tiles
		{TileRows: rows + 3, TileCols: cols + 5}, // one tile larger than grid
		{TileRows: (rows + 1) / 2, TileCols: (cols + 1) / 2}, // 2x2-ish
		{TileRows: 3, TileCols: 7},                           // ragged, word-misaligned
		{TileRows: 5, TileCols: 64},                          // word-aligned column seams
		{TileRows: 5, TileCols: 63},                          // one off word alignment
	}
}

func TestLabelHandPicked(t *testing.T) {
	arts := []string{
		`#`,
		`.`,
		`####`,
		`#.#.#`,
		`
		 #.#
		 .#.
		 #.#
		`,
		`
		 ##..##
		 .#..#.
		 ..##..
		`,
		`
		 #######
		 #.....#
		 #.###.#
		 #.#.#.#
		 #.#####
		 #......
		 #######
		`,
		// Island crossing a 64-bit word boundary and multiple tile columns.
		`
		 ................................................................####
		 ####............................................................####
		`,
	}
	for i, art := range arts {
		g := grid.MustParse(art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			for j, cfg := range tileShapes(g.Rows(), g.Cols()) {
				cfg.Connectivity = conn
				t.Run(fmt.Sprintf("art-%d/%s/shape-%d", i, conn, j), func(t *testing.T) {
					checkTriple(t, g, cfg)
				})
			}
		}
	}
}

// TestLabelCornerSeams pins the four-tile corner cases: diagonally adjacent
// pixels in all four corner orientations around a 2x2 tile intersection must
// merge under 8-way and stay separate under 4-way.
func TestLabelCornerSeams(t *testing.T) {
	arts := []string{
		`
		 .#..
		 ..#.
		`,
		`
		 ..#.
		 .#..
		`,
		`
		 .#.#
		 #.#.
		`,
		`
		 #..#
		 .##.
		 .##.
		 #..#
		`,
	}
	for i, art := range arts {
		g := grid.MustParse(art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			// Tile splits placed exactly through the diagonal contacts.
			for _, cfg := range []Config{
				{TileRows: 1, TileCols: 2},
				{TileRows: 2, TileCols: 2},
				{TileRows: 1, TileCols: 1},
			} {
				cfg.Connectivity = conn
				t.Run(fmt.Sprintf("art-%d/%s/%dx%d", i, conn, cfg.TileRows, cfg.TileCols), func(t *testing.T) {
					checkTriple(t, g, cfg)
				})
			}
		}
	}
}

func TestLabelRandom(t *testing.T) {
	rng := detector.NewRNG(1234)
	sizes := [][2]int{{1, 1}, {1, 70}, {70, 1}, {8, 10}, {43, 43}, {64, 64}, {5, 129}, {67, 131}}
	for _, sz := range sizes {
		rows, cols := sz[0], sz[1]
		for _, occ := range []float64{0.02, 0.1, 0.3, 0.6, 0.95} {
			g := grid.New(rows, cols)
			for i := 0; i < g.Pixels(); i++ {
				if rng.Float64() < occ {
					g.Flat()[i] = grid.Value(1 + rng.Intn(40))
				}
			}
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				for _, cfg := range tileShapes(rows, cols) {
					cfg.Connectivity = conn
					cfg.Workers = 1 + rng.Intn(8)
					checkTriple(t, g, cfg)
				}
			}
		}
	}
}

// TestLabelMegapixel runs the target workload class: a 512x512 frame at ~2%
// occupancy of blob-shaped islands, across worker counts.
func TestLabelMegapixel(t *testing.T) {
	if testing.Short() {
		t.Skip("megapixel differential in -short mode")
	}
	rng := detector.NewRNG(99)
	g := detector.RandomIslands(512, 512, 512*512/400, 1.6, rng)
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		for _, w := range []int{1, 2, 4, 8} {
			checkTriple(t, g, Config{Connectivity: conn, Workers: w})
		}
	}
}

// TestLabelZeroAlloc asserts the steady-state contract: after one warmup
// event on the largest workload, Label with reused destination storage never
// allocates — including the pool wake/park round trip.
func TestLabelZeroAlloc(t *testing.T) {
	rng := detector.NewRNG(5)
	g := detector.RandomIslands(256, 256, 256*256/400, 1.6, rng)
	e, err := New(Config{Rows: 256, Cols: 256, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bitmap := e.Pack(g.Flat(), nil)
	islands := e.Label(bitmap, g.Flat(), nil) // warmup grows all arenas
	if len(islands) == 0 {
		t.Fatal("workload produced no islands")
	}
	allocs := testing.AllocsPerRun(100, func() {
		islands = e.Label(bitmap, g.Flat(), islands[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state Label allocates %.1f times per call, want 0", allocs)
	}
}

// TestLabelDstAppend checks Label appends to a non-empty destination without
// disturbing prior entries (the ServeBatch reuse pattern).
func TestLabelDstAppend(t *testing.T) {
	g := grid.MustParse(`
	 #..#
	 #..#
	`)
	e, err := New(Config{Rows: 2, Cols: 4, TileRows: 1, TileCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bitmap := e.Pack(g.Flat(), nil)
	sentinel := runccl.Island{Pixels: 99}
	out := e.Label(bitmap, g.Flat(), []runccl.Island{sentinel})
	if len(out) != 3 || out[0] != sentinel {
		t.Fatalf("append semantics broken: %+v", out)
	}
	if out[1].Pixels != 2 || out[2].Pixels != 2 {
		t.Fatalf("islands wrong: %+v", out[1:])
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Rows: 0, Cols: 5},
		{Rows: 5, Cols: 0},
		{Rows: 5, Cols: 5, Connectivity: grid.Connectivity(3)},
		{Rows: 5, Cols: 5, TileRows: -1},
		{Rows: 5, Cols: 5, Workers: -2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d (%+v): want error", i, cfg)
		}
	}
}

// TestWorkersCappedAtTiles checks the pool never exceeds the tile count and a
// single-tile engine runs with no pool at all.
func TestWorkersCappedAtTiles(t *testing.T) {
	e, err := New(Config{Rows: 4, Cols: 4, TileRows: 4, TileCols: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Workers() != 1 {
		t.Fatalf("single-tile engine has %d workers, want 1", e.Workers())
	}
	if tr, tc := e.Tiles(); tr != 1 || tc != 1 {
		t.Fatalf("tile grid %dx%d, want 1x1", tr, tc)
	}
}

func TestCloseIdempotent(t *testing.T) {
	e, err := New(Config{Rows: 64, Cols: 64, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // second close must not panic
}

// TestInstrumentPhases checks the optional phase timers report non-negative
// spans covering a labeled event.
func TestInstrumentPhases(t *testing.T) {
	rng := detector.NewRNG(7)
	g := detector.RandomIslands(128, 128, 40, 1.6, rng)
	e, err := New(Config{Rows: 128, Cols: 128, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetInstrument(true)
	bitmap := e.Pack(g.Flat(), nil)
	e.Label(bitmap, g.Flat(), nil)
	tileNs, mergeNs := e.Phases()
	if tileNs < 0 || mergeNs < 0 {
		t.Fatalf("negative phase times: tile=%d merge=%d", tileNs, mergeNs)
	}
	e.SetInstrument(false)
	e.Label(bitmap, g.Flat(), nil)
}
