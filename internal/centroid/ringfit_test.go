package centroid

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// perfectCircleIsland builds an island of pixels on an exact circle.
func perfectCircleIsland(cr, cc, radius float64, points int) ccl.Island {
	is := ccl.Island{Label: 1}
	for k := 0; k < points; k++ {
		th := 2 * math.Pi * float64(k) / float64(points)
		r := int(math.Round(cr + radius*math.Cos(th)))
		c := int(math.Round(cc + radius*math.Sin(th)))
		is.Pixels = append(is.Pixels, ccl.Pixel{Row: r, Col: c, Value: 5})
		is.Sum += 5
	}
	return is
}

func TestFitRingExactCircle(t *testing.T) {
	is := perfectCircleIsland(20, 22, 10, 48)
	ring, err := FitRing(is)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ring.CenterRow-20) > 0.3 || math.Abs(ring.CenterCol-22) > 0.3 {
		t.Fatalf("center = (%.2f, %.2f), want ≈(20, 22)", ring.CenterRow, ring.CenterCol)
	}
	if math.Abs(ring.Radius-10) > 0.3 {
		t.Fatalf("radius = %.2f, want ≈10", ring.Radius)
	}
	if ring.RMS > 0.5 {
		t.Fatalf("RMS = %.2f, want small (pixelization only)", ring.RMS)
	}
}

func TestFitRingErrors(t *testing.T) {
	// Too few pixels.
	if _, err := FitRing(ccl.Island{Pixels: []ccl.Pixel{{Value: 1}, {Row: 1, Value: 1}}}); err == nil {
		t.Error("2 pixels must error")
	}
	// Collinear pixels: singular system.
	var line ccl.Island
	for i := 0; i < 8; i++ {
		line.Pixels = append(line.Pixels, ccl.Pixel{Row: i, Col: 3, Value: 2})
		line.Sum += 2
	}
	if _, err := FitRing(line); err == nil {
		t.Error("collinear pixels must error")
	}
}

func TestFitRingOnGeneratedRings(t *testing.T) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(321)
	good, total := 0, 0
	for i := 0; i < 25; i++ {
		cfg := cam.TypicalMuonRing(rng)
		g := cam.Ring(cfg, rng)
		res, err := ccl.Label(g, ccl.Options{
			Connectivity:  grid.EightWay,
			MergeTableCap: ccl.SizeFor(43, 43, grid.EightWay),
		})
		if err != nil {
			t.Fatal(err)
		}
		islands := ccl.Islands(g, res.Labels)
		main := ccl.LargestIsland(islands)
		if main == nil || main.Size() < 12 {
			continue
		}
		total++
		ring, err := FitRing(*main)
		if err != nil {
			continue
		}
		if math.Abs(ring.Radius-cfg.Radius) < 1.5 &&
			math.Abs(ring.CenterRow-cfg.CenterRow) < 2 &&
			math.Abs(ring.CenterCol-cfg.CenterCol) < 2 {
			good++
		}
	}
	if total < 15 {
		t.Fatalf("only %d usable rings", total)
	}
	if good < total*2/3 {
		t.Fatalf("radius recovered for %d/%d rings", good, total)
	}
}

// Property: the fit is translation-invariant.
func TestFitRingTranslationProperty(t *testing.T) {
	f := func(dr, dc uint8) bool {
		base := perfectCircleIsland(15, 15, 7, 36)
		shift := base
		shift.Pixels = nil
		for _, p := range base.Pixels {
			shift.Pixels = append(shift.Pixels, ccl.Pixel{
				Row: p.Row + int(dr%20), Col: p.Col + int(dc%20), Value: p.Value,
			})
		}
		a, err1 := FitRing(base)
		b, err2 := FitRing(shift)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Radius-b.Radius) < 1e-6 &&
			math.Abs((b.CenterRow-a.CenterRow)-float64(dr%20)) < 1e-6 &&
			math.Abs((b.CenterCol-a.CenterCol)-float64(dc%20)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
