package centroid

import (
	"fmt"
	"math"

	"github.com/wustl-adapt/hepccl/internal/ccl"
)

// Ring is a fitted circle: the muon-calibration observable IACT pipelines
// extract from ring islands (ring radius calibrates the optical throughput).
type Ring struct {
	// CenterRow, CenterCol is the fitted circle center.
	CenterRow, CenterCol float64
	// Radius is the fitted circle radius.
	Radius float64
	// RMS is the intensity-weighted RMS radial residual — a goodness of fit.
	RMS float64
}

// FitRing fits a circle to an island's pixels with the Kåsa algebraic
// least-squares method, weighting each pixel by its intensity. It needs at
// least three non-collinear pixels.
func FitRing(is ccl.Island) (Ring, error) {
	if len(is.Pixels) < 3 {
		return Ring{}, fmt.Errorf("centroid: ring fit needs ≥3 pixels, got %d", len(is.Pixels))
	}
	// Weighted Kåsa: minimize Σ w·(x²+y² + D·x + E·y + F)², a linear system
	//   [Sxx Sxy Sx] [D]   [-Sxz]
	//   [Sxy Syy Sy] [E] = [-Syz]
	//   [Sx  Sy  Sw] [F]   [-Sz ]
	// with z = x²+y².
	var sxx, sxy, syy, sx, sy, sw, sxz, syz, sz float64
	for _, p := range is.Pixels {
		w := float64(p.Value)
		x := float64(p.Row)
		y := float64(p.Col)
		z := x*x + y*y
		sxx += w * x * x
		sxy += w * x * y
		syy += w * y * y
		sx += w * x
		sy += w * y
		sw += w
		sxz += w * x * z
		syz += w * y * z
		sz += w * z
	}
	d, e, f, err := solve3(
		[3][3]float64{
			{sxx, sxy, sx},
			{sxy, syy, sy},
			{sx, sy, sw},
		},
		[3]float64{-sxz, -syz, -sz},
	)
	if err != nil {
		return Ring{}, fmt.Errorf("centroid: ring fit degenerate (collinear pixels?): %w", err)
	}
	cr := -d / 2
	cc := -e / 2
	r2 := cr*cr + cc*cc - f
	if r2 <= 0 {
		return Ring{}, fmt.Errorf("centroid: ring fit produced non-positive radius²")
	}
	ring := Ring{CenterRow: cr, CenterCol: cc, Radius: math.Sqrt(r2)}
	// Weighted RMS radial residual.
	var res2 float64
	for _, p := range is.Pixels {
		w := float64(p.Value)
		dr := float64(p.Row) - cr
		dc := float64(p.Col) - cc
		diff := math.Hypot(dr, dc) - ring.Radius
		res2 += w * diff * diff
	}
	ring.RMS = math.Sqrt(res2 / sw)
	return ring, nil
}

// solve3 solves a 3×3 linear system by Cramer's rule.
func solve3(a [3][3]float64, b [3]float64) (x, y, z float64, err error) {
	det := det3(a)
	if math.Abs(det) < 1e-9 {
		return 0, 0, 0, fmt.Errorf("singular system (det %g)", det)
	}
	ax, ay, az := a, a, a
	for i := 0; i < 3; i++ {
		ax[i][0] = b[i]
		ay[i][1] = b[i]
		az[i][2] = b[i]
	}
	return det3(ax) / det, det3(ay) / det, det3(az) / det, nil
}

func det3(a [3][3]float64) float64 {
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}
