// Package centroid implements the centroiding stage that follows island
// detection in the ADAPT pipeline (Fig 3) and its 2D generalization: the
// position and energy of each particle interaction are estimated from the
// energy-weighted first moments of its island, and — for IACT-style image
// analysis — Hillas-style second moments (length, width, orientation) that
// downstream DL1→DL2 reconstruction consumes (§2).
package centroid

import (
	"math"

	"github.com/wustl-adapt/hepccl/internal/ccl"
)

// Centroid2D is the first-moment summary of one island.
type Centroid2D struct {
	// Label is the island's final label.
	Label int32
	// Row, Col are the energy-weighted mean coordinates.
	Row, Col float64
	// Sum is the island's total integrated value (energy estimate).
	Sum int64
	// Pixels is the island's pixel count.
	Pixels int
}

// Compute2D returns the centroid of one island.
func Compute2D(is ccl.Island) Centroid2D {
	var wr, wc float64
	for _, p := range is.Pixels {
		wr += float64(p.Row) * float64(p.Value)
		wc += float64(p.Col) * float64(p.Value)
	}
	s := float64(is.Sum)
	if s == 0 {
		// Degenerate (cannot happen for islands of lit pixels, which are
		// strictly positive); fall back to the bounding-box center.
		return Centroid2D{
			Label:  is.Label,
			Row:    float64(is.MinRow+is.MaxRow) / 2,
			Col:    float64(is.MinCol+is.MaxCol) / 2,
			Pixels: len(is.Pixels),
		}
	}
	return Centroid2D{
		Label:  is.Label,
		Row:    wr / s,
		Col:    wc / s,
		Sum:    is.Sum,
		Pixels: len(is.Pixels),
	}
}

// All2D returns centroids for every island, in island order.
func All2D(islands []ccl.Island) []Centroid2D {
	out := make([]Centroid2D, len(islands))
	for i, is := range islands {
		out[i] = Compute2D(is)
	}
	return out
}

// Hillas is the second-moment ellipse description of an island — the
// parameterization IACT analysis uses for energy/direction/gammaness
// estimation (§2 describes CTA's DL1→DL2 phase consuming these).
type Hillas struct {
	// Size is the total integrated value.
	Size int64
	// CogRow, CogCol is the center of gravity.
	CogRow, CogCol float64
	// Length and Width are the RMS spreads along the major and minor axes.
	Length, Width float64
	// PsiRad is the major-axis orientation in radians, in (-π/2, π/2],
	// measured from the row axis.
	PsiRad float64
}

// HillasParameters computes the second-moment ellipse of one island.
// Islands with fewer than 2 pixels have zero length/width.
func HillasParameters(is ccl.Island) Hillas {
	c := Compute2D(is)
	h := Hillas{Size: is.Sum, CogRow: c.Row, CogCol: c.Col}
	if len(is.Pixels) < 2 || is.Sum == 0 {
		return h
	}
	var srr, scc, src float64
	s := float64(is.Sum)
	for _, p := range is.Pixels {
		w := float64(p.Value)
		dr := float64(p.Row) - c.Row
		dc := float64(p.Col) - c.Col
		srr += w * dr * dr
		scc += w * dc * dc
		src += w * dr * dc
	}
	srr /= s
	scc /= s
	src /= s
	// Eigenvalues of the 2×2 covariance matrix.
	tr := srr + scc
	det := srr*scc - src*src
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc // major
	l2 := tr/2 - disc // minor
	h.Length = math.Sqrt(math.Max(0, l1))
	h.Width = math.Sqrt(math.Max(0, l2))
	// Major-axis angle from the row axis.
	if src == 0 && srr >= scc {
		h.PsiRad = 0
	} else if src == 0 {
		h.PsiRad = math.Pi / 2
	} else {
		h.PsiRad = math.Atan2(l1-srr, src)
	}
	// Normalize the axis direction into (-π/2, π/2].
	for h.PsiRad > math.Pi/2 {
		h.PsiRad -= math.Pi
	}
	for h.PsiRad <= -math.Pi/2 {
		h.PsiRad += math.Pi
	}
	return h
}
