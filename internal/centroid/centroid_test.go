package centroid

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

func islandsOf(t *testing.T, g *grid.Grid, conn grid.Connectivity) []ccl.Island {
	t.Helper()
	res, err := ccl.Label(g, ccl.Options{Connectivity: conn, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	return ccl.Islands(g, res.Labels)
}

func TestCentroidSinglePixel(t *testing.T) {
	g := grid.New(5, 5)
	g.Set(2, 3, 7)
	is := islandsOf(t, g, grid.FourWay)
	if len(is) != 1 {
		t.Fatal("want one island")
	}
	c := Compute2D(is[0])
	if c.Row != 2 || c.Col != 3 || c.Sum != 7 || c.Pixels != 1 {
		t.Fatalf("centroid = %+v", c)
	}
}

func TestCentroidWeighted(t *testing.T) {
	// Two pixels: (0,0)=1 and (0,3)=3 are separate 4-way islands; join them.
	g := grid.New(1, 4)
	g.Set(0, 0, 1)
	g.Set(0, 1, 1)
	g.Set(0, 2, 1)
	g.Set(0, 3, 3)
	is := islandsOf(t, g, grid.FourWay)
	if len(is) != 1 {
		t.Fatal("want one island")
	}
	c := Compute2D(is[0])
	// col centroid = (0+1+2+9)/6 = 2.
	if c.Row != 0 || c.Col != 2 || c.Sum != 6 {
		t.Fatalf("centroid = %+v", c)
	}
}

func TestAll2D(t *testing.T) {
	g := grid.MustParse("#.#")
	is := islandsOf(t, g, grid.FourWay)
	cs := All2D(is)
	if len(cs) != 2 || cs[0].Col != 0 || cs[1].Col != 2 {
		t.Fatalf("All2D = %+v", cs)
	}
}

func TestCentroidDegenerateFallback(t *testing.T) {
	// Hand-built island with zero sum exercises the bounding-box fallback.
	is := ccl.Island{Label: 1, MinRow: 2, MaxRow: 4, MinCol: 1, MaxCol: 3,
		Pixels: []ccl.Pixel{{Row: 2, Col: 1}, {Row: 4, Col: 3}}}
	c := Compute2D(is)
	if c.Row != 3 || c.Col != 2 {
		t.Fatalf("fallback centroid = %+v", c)
	}
}

func TestHillasHorizontalLine(t *testing.T) {
	g := grid.New(5, 9)
	for c := 1; c <= 7; c++ {
		g.Set(2, c, 2)
	}
	is := islandsOf(t, g, grid.FourWay)
	h := HillasParameters(is[0])
	if h.CogRow != 2 || h.CogCol != 4 {
		t.Fatalf("cog = (%v,%v), want (2,4)", h.CogRow, h.CogCol)
	}
	if h.Width != 0 {
		t.Fatalf("width = %v, want 0 for a 1-pixel-thick line", h.Width)
	}
	// Major axis along columns: psi = ±π/2 from the row axis.
	if math.Abs(math.Abs(h.PsiRad)-math.Pi/2) > 1e-9 {
		t.Fatalf("psi = %v, want ±π/2", h.PsiRad)
	}
	// RMS of {-3..3} uniform = sqrt(4) = 2.
	if math.Abs(h.Length-2) > 1e-9 {
		t.Fatalf("length = %v, want 2", h.Length)
	}
}

func TestHillasVerticalLine(t *testing.T) {
	g := grid.New(9, 5)
	for r := 1; r <= 7; r++ {
		g.Set(r, 2, 1)
	}
	is := islandsOf(t, g, grid.FourWay)
	h := HillasParameters(is[0])
	if math.Abs(h.PsiRad) > 1e-9 {
		t.Fatalf("psi = %v, want 0 (along rows)", h.PsiRad)
	}
	if math.Abs(h.Length-2) > 1e-9 || h.Width != 0 {
		t.Fatalf("length/width = %v/%v, want 2/0", h.Length, h.Width)
	}
}

func TestHillasDiagonal(t *testing.T) {
	g := grid.New(8, 8)
	for i := 1; i <= 6; i++ {
		g.Set(i, i, 5)
	}
	is := islandsOf(t, g, grid.EightWay)
	if len(is) != 1 {
		t.Fatal("diagonal must be one 8-way island")
	}
	h := HillasParameters(is[0])
	if math.Abs(h.PsiRad-math.Pi/4) > 1e-9 {
		t.Fatalf("psi = %v, want π/4", h.PsiRad)
	}
	if h.Width > 1e-9 {
		t.Fatalf("width = %v, want 0", h.Width)
	}
}

func TestHillasSinglePixel(t *testing.T) {
	g := grid.New(3, 3)
	g.Set(1, 1, 4)
	is := islandsOf(t, g, grid.FourWay)
	h := HillasParameters(is[0])
	if h.Length != 0 || h.Width != 0 || h.Size != 4 {
		t.Fatalf("single pixel hillas = %+v", h)
	}
}

// Property: length ≥ width ≥ 0, cog inside the bounding box, size equals the
// island sum — on generated shower images.
func TestHillasInvariantsOnShowers(t *testing.T) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(77)
	checked := 0
	for i := 0; i < 50; i++ {
		g := cam.Shower(cam.TypicalShower(rng), rng)
		res, err := ccl.Label(g, ccl.Options{Connectivity: grid.FourWay})
		if err != nil {
			t.Fatal(err)
		}
		for _, is := range ccl.Islands(g, res.Labels) {
			h := HillasParameters(is)
			if h.Width < 0 || h.Length < h.Width {
				t.Fatalf("length/width invariant broken: %+v", h)
			}
			if h.CogRow < float64(is.MinRow)-1e-9 || h.CogRow > float64(is.MaxRow)+1e-9 ||
				h.CogCol < float64(is.MinCol)-1e-9 || h.CogCol > float64(is.MaxCol)+1e-9 {
				t.Fatalf("cog outside bbox: %+v vs %+v", h, is)
			}
			if h.Size != is.Sum {
				t.Fatalf("size %d != sum %d", h.Size, is.Sum)
			}
			if h.PsiRad <= -math.Pi/2-1e-9 || h.PsiRad > math.Pi/2+1e-9 {
				t.Fatalf("psi out of range: %v", h.PsiRad)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no islands produced by shower generator")
	}
}

// Property: a shower's reconstructed orientation tracks the configured angle
// for elongated, bright images.
func TestHillasRecoversOrientation(t *testing.T) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(123)
	good, total := 0, 0
	for i := 0; i < 30; i++ {
		angle := rng.Float64()*math.Pi - math.Pi/2
		sh := detector.ShowerConfig{
			CenterRow: 21, CenterCol: 21,
			Length: 6, Width: 1.2, AngleRad: angle, TotalPE: 2500,
		}
		g := cam.Shower(sh, rng)
		res, err := ccl.Label(g, ccl.Options{Connectivity: grid.FourWay})
		if err != nil {
			t.Fatal(err)
		}
		islands := ccl.Islands(g, res.Labels)
		main := ccl.LargestIsland(islands)
		if main == nil || main.Size() < 10 {
			continue
		}
		total++
		h := HillasParameters(*main)
		diff := math.Abs(h.PsiRad - angle)
		if diff > math.Pi/2 {
			diff = math.Pi - diff // axis is direction-free
		}
		if diff < 0.25 {
			good++
		}
	}
	if total < 20 {
		t.Fatalf("only %d usable showers", total)
	}
	if good < total*3/4 {
		t.Fatalf("orientation recovered for %d/%d showers", good, total)
	}
}

// Property: centroid lies within the island's bounding box for random blobs.
func TestCentroidInBBoxProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := detector.NewRNG(uint64(seed))
		g := detector.RandomIslands(16, 16, 4, 1.5, rng)
		res, err := ccl.Label(g, ccl.Options{Connectivity: grid.EightWay})
		if err != nil {
			return false
		}
		for _, is := range ccl.Islands(g, res.Labels) {
			c := Compute2D(is)
			if c.Row < float64(is.MinRow) || c.Row > float64(is.MaxRow) ||
				c.Col < float64(is.MinCol) || c.Col > float64(is.MaxCol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
