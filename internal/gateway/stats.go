package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"github.com/wustl-adapt/hepccl/internal/server"
)

// gwStats is the gateway-level accounting. Every offered event lands in
// exactly one terminal bucket (relayed or one of the sheds) or is in flight.
// retried is supplementary, not a bucket: it counts events resubmitted to a
// new owner after a backend death, each of which still terminates exactly
// once — so offered == relayed + shed + inflight holds with retries active.
// The //hepccl:accounted fields are the identity's terms; acctproto requires
// every mutation to hold the charging upstream's //hepccl:acctmu mutex, or to
// carry a //hepccl:checked justification for why no charge/settle race exists
// (the pre-placement sheds, charged before any upstream does).
type gwStats struct {
	offered            atomic.Uint64 //hepccl:accounted
	relayed            atomic.Uint64 //hepccl:accounted
	retried            atomic.Uint64
	shedOverload       atomic.Uint64 //hepccl:accounted
	shedNoBackend      atomic.Uint64 //hepccl:accounted
	shedBackendFailed  atomic.Uint64 //hepccl:accounted
	shedBackendDropped atomic.Uint64 //hepccl:accounted
	clientErrors       atomic.Uint64
	inflight           atomic.Int64 //hepccl:accounted
	conns              atomic.Int64
}

// ShedSnapshot breaks shed events out by cause.
type ShedSnapshot struct {
	// Overload: the whole candidate chain stayed overloaded through
	// hold-and-retry.
	Overload uint64 `json:"overload"`
	// NoBackend: no routable backend existed when the event arrived.
	NoBackend uint64 `json:"no_backend"`
	// BackendFailed: charged to a backend whose connection dialed, wrote,
	// or read out with an error before answering.
	BackendFailed uint64 `json:"backend_failed"`
	// BackendDropped: the backend consumed the event and closed cleanly
	// without answering it (its derandomizer dropped it).
	BackendDropped uint64 `json:"backend_dropped"`
}

// Total sums the shed causes.
func (s ShedSnapshot) Total() uint64 {
	return s.Overload + s.NoBackend + s.BackendFailed + s.BackendDropped
}

// FleetSnapshot is the aggregated /stats document.
type FleetSnapshot struct {
	Offered uint64 `json:"offered"`
	Relayed uint64 `json:"relayed"`
	// Retried counts events resubmitted once to a new slot owner after a
	// backend death severed the connection holding them.
	Retried      uint64       `json:"retried"`
	Shed         ShedSnapshot `json:"shed"`
	Inflight     int64        `json:"inflight"`
	ClientErrors uint64       `json:"client_errors"`
	Conns        int64        `json:"conns"`
	// Routable and Joined describe the live routing table.
	Routable int                `json:"routable_backends"`
	Joined   int                `json:"joined_backends"`
	Health   server.HealthState `json:"health"`
	Backends []BackendSnapshot  `json:"backends"`
}

// StatsSnapshot captures the fleet accounting and per-backend detail.
func (g *Gateway) StatsSnapshot() FleetSnapshot {
	snap := FleetSnapshot{
		Offered: g.stats.offered.Load(),
		Relayed: g.stats.relayed.Load(),
		Retried: g.stats.retried.Load(),
		Shed: ShedSnapshot{
			Overload:       g.stats.shedOverload.Load(),
			NoBackend:      g.stats.shedNoBackend.Load(),
			BackendFailed:  g.stats.shedBackendFailed.Load(),
			BackendDropped: g.stats.shedBackendDropped.Load(),
		},
		Inflight:     g.stats.inflight.Load(),
		ClientErrors: g.stats.clientErrors.Load(),
		Conns:        g.stats.conns.Load(),
	}
	t := g.table.Load()
	slotsOf := map[*Backend]int{}
	if t != nil {
		snap.Routable = t.routable
		snap.Joined = t.joined
		for i := range t.slots {
			sc := &t.slots[i]
			if sc.n > 0 {
				slotsOf[sc.bs[sc.primary]]++
			}
		}
	}
	for _, b := range g.fleet() {
		bs := b.snapshot()
		bs.Slots = slotsOf[b]
		snap.Backends = append(snap.Backends, bs)
	}
	snap.Health = snap.healthState()
	return snap
}

// healthState folds the fleet into the gateway's own three-state health:
// overloaded (503) when nothing is routable, degraded when the fleet is
// impaired but serving, ok otherwise.
func (s FleetSnapshot) healthState() server.HealthState {
	if s.Routable == 0 {
		return server.HealthOverloaded
	}
	for _, b := range s.Backends {
		if b.State != adminJoined.String() || b.Health != healthGood.String() {
			return server.HealthDegraded
		}
	}
	return server.HealthOK
}

// Health returns the gateway's aggregate health state.
func (g *Gateway) Health() server.HealthState {
	return g.StatsSnapshot().Health
}

// startStats serves the admin endpoint: GET /stats, GET /healthz,
// POST /drain?addr=..., POST /add?addr=...&stats=...
func (g *Gateway) startStats() {
	if g.cfg.StatsAddr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(g.StatsSnapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := g.StatsSnapshot()
		if snap.Health == server.HealthOverloaded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if r.URL.Query().Get("verbose") != "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		fmt.Fprintln(w, snap.Health)
	})
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		b, err := g.Drain(r.URL.Query().Get("addr"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "draining %s (inflight %d)\n", b.Addr, b.Inflight())
	})
	mux.HandleFunc("/add", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		b, err := g.Add(r.URL.Query().Get("addr"), r.URL.Query().Get("stats"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "joined %s (%s)\n", b.Addr, b.HealthClass())
	})
	ln, err := net.Listen("tcp", g.cfg.StatsAddr)
	if err != nil {
		g.logf("gateway: stats endpoint: %v", err)
		return
	}
	g.mu.Lock()
	g.statsLn = ln
	g.mu.Unlock()
	g.statsSrv = &http.Server{Handler: mux}
	go func() {
		if err := g.statsSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			g.logf("gateway: stats endpoint: %v", err)
		}
	}()
}

// AdminAddr returns the admin endpoint's address, or nil when disabled or
// not yet serving.
func (g *Gateway) AdminAddr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.statsLn == nil {
		return nil
	}
	return g.statsLn.Addr()
}
