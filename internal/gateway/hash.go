package gateway

// Integer mixing for event placement. The gateway routes by event id, a dense
// counter-like u32, so the placement hash must decorrelate low bits; splitmix64
// is the standard single-multiply finalizer family with full avalanche, needs
// no tables and no dependencies, and keeps the routing path float-free.

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix on u64.
//
//hepccl:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a backend address into a u64 vnode seed (FNV-1a then
// avalanche, so near-identical addresses — ":9310" vs ":9312" — land far
// apart on the ring).
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return splitmix64(h)
}

// slotSalt decorrelates slot probe points from vnode hashes.
const slotSalt = 0x5ca1ab1e0ddba11

// slotOf maps an event id to its routing slot.
//
//hepccl:hotpath
func slotOf(event uint32, mask uint32) uint32 {
	return uint32(splitmix64(uint64(event))) & mask
}
