package gateway

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
)

// Per-client forwarding. One goroutine frames events off the client link
// with adapt.RawEventReader and writes each event's raw bytes to the
// upstream connection for its chosen backend; one relay goroutine per
// upstream frames downlink records with adapt.RecordScanner and writes them
// back to the client. Upstream connections are per (client, backend) and
// lazily dialed, which gives per-source FIFO ordering for free: a client's
// events for one backend travel a single ordered TCP stream, and hepccld
// answers a connection's events in order.
//
// Accounting is exact by construction: every event framed off a client is
// counted offered, and ends in exactly one of relayed (a record reached the
// client), shed_overload, shed_no_backend, shed_backend_failed,
// shed_backend_dropped — or is still in flight. Charging and settling share
// the upstream's mutex, so an event charged concurrently with the stream
// dying is always either in the settle remainder or individually shed,
// never both and never neither. The soak test asserts the identity
// offered == relayed + shed_total + inflight at quiesce.
//
// Backend death does not shed what it can still save: each charged event's
// raw bytes stay held on the upstream until its record comes back, and when
// the connection dies with events unanswered, the never-retried ones are
// resubmitted once to a new slot owner instead of being shed. The retried
// counter tallies those resubmissions; a resubmitted event is still exactly
// one offered event and still lands in exactly one terminal bucket, so the
// identity above is unchanged. An event whose retry also dies sheds as
// backend_failed — one retry, never a storm.

// upstreamFlushEvery caps how many events stage in one upstream write
// buffer before a forced flush, bounding latency under a steady client
// stream that never drains the read window.
const upstreamFlushEvery = 32

// heldEvent is one charged event's identity and raw bytes, kept until its
// record comes back so a dying connection can resubmit it instead of
// shedding it.
type heldEvent struct {
	event   uint32
	retried bool
	raw     []byte
}

// upstream is one lazily-dialed (client, backend) connection pair.
type upstream struct {
	b  *Backend
	nc *net.TCPConn
	bw *bufio.Writer

	// mu guards the held queue and the closed transition; charge (forwarder)
	// and ack/settle (relay) both take it, so the final remainder is exact.
	// It is also the accounting mutex: every accounted-counter mutation tied
	// to a charged event happens with mu held (acctproto enforces this).
	mu sync.Mutex //hepccl:acctmu
	// held queues the charged-but-unanswered events in write order;
	// held[head:] are live. hepccld answers a connection's events in order,
	// so a record always settles the queue front (a skipped entry was
	// dropped by the backend, proven by the later record arriving).
	held []heldEvent
	head int
	// free recycles raw buffers from answered events.
	free [][]byte
	// closed means no further writes: set by graceful half-close, write
	// failure, or the relay's settle.
	closed atomic.Bool

	// pending counts events staged since the last flush (forwarder-owned).
	pending int
}

// clientConn is the per-client forwarding state.
type clientConn struct {
	g  *Gateway
	nc *net.TCPConn
	rr *adapt.RawEventReader

	// wmu serializes relay goroutines writing downlink records.
	wmu sync.Mutex
	bw  *bufio.Writer

	ups     map[*Backend]*upstream
	relayWG sync.WaitGroup
	gen     uint64

	eventBuf []byte
}

// handleConn owns one client connection for its lifetime.
func (g *Gateway) handleConn(nc net.Conn) {
	defer g.connsWG.Done()
	defer g.stats.conns.Add(-1)
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		nc.Close()
		return
	}
	tc.SetNoDelay(false)
	c := &clientConn{
		g:   g,
		nc:  tc,
		rr:  adapt.NewRawEventReader(tc),
		bw:  bufio.NewWriterSize(tc, 64<<10),
		ups: make(map[*Backend]*upstream, 4),
		gen: g.gen.Load(),
	}
	c.run()
}

// run is the forwarding loop: frame, place, forward, flush.
func (c *clientConn) run() {
	g := c.g
	defer c.nc.Close()
	for {
		if gen := g.gen.Load(); gen != c.gen {
			c.gen = gen
			c.sweepUpstreams()
		}
		event, buf, err := c.rr.ReadEventInto(c.eventBuf, g.cfg.ASICs)
		c.eventBuf = buf
		if err != nil {
			if errors.Is(err, adapt.ErrIncompleteEvent) {
				// One broken event; the reader resynced. Count and continue.
				g.stats.clientErrors.Add(1)
				continue
			}
			// EOF is the client's graceful half-close; anything else ends
			// the connection the same way, after draining what's in flight.
			if err != io.EOF {
				g.stats.clientErrors.Add(1)
				g.logf("gateway: client %s: %v", c.nc.RemoteAddr(), err)
			}
			c.finish()
			return
		}
		// offered is charged before the event touches any upstream: there is
		// no held entry yet, so no charge/settle pair exists to race with.
		//hepccl:checked
		g.stats.offered.Add(1)
		c.forward(event, buf)
		// Flush boundary: when the read window holds no complete frame the
		// next read blocks on the socket, so push staged work downstream
		// first.
		if c.rr.Buffered() < adapt.PacketHeaderBytes {
			c.flushAll()
		}
	}
}

// forward places one framed event and writes it upstream, shedding with
// accounting when the fleet cannot take it.
func (c *clientConn) forward(event uint32, raw []byte) {
	g := c.g
	for attempt := 0; ; attempt++ {
		t := g.table.Load()
		b := c.pick(t, event)
		if b == nil {
			if t.routable == 0 {
				// Pre-placement shed: the event was never charged to an
				// upstream, so no settle can also count it.
				//hepccl:checked
				g.stats.shedNoBackend.Add(1)
				return
			}
			// Whole chain overloaded: hold and retry — the prober refreshes
			// health underneath us — then shed.
			if attempt >= g.cfg.HoldRetries {
				// Pre-placement shed, as above: never charged, no settle race.
				//hepccl:checked
				g.stats.shedOverload.Add(1)
				return
			}
			c.flushAll() // let held-up backends drain while we wait
			time.Sleep(g.cfg.HoldDelay)
			continue
		}
		u, err := c.upstreamFor(b)
		if err != nil {
			// Dial failure: no upstream exists, the event was never charged,
			// so this shed has no settle to race with.
			//hepccl:checked
			g.stats.shedBackendFailed.Add(1)
			b.failed.Add(1)
			g.markBackendDown(b, err)
			return
		}
		if !c.charge(u, event, raw, false) {
			// The relay settled this upstream between pick and charge: the
			// event was never written. Drop the dead upstream and re-pick —
			// the rebuilt table routes around the failure.
			delete(c.ups, b)
			continue
		}
		if _, err := u.bw.Write(raw); err != nil {
			// The event stays charged; the relay's settle classifies it.
			c.failUpstream(u, err)
			return
		}
		if u.pending++; u.pending >= upstreamFlushEvery {
			c.flushUpstream(u)
		}
		return
	}
}

// charge reserves one in-flight slot on u and stashes a copy of the event's
// raw bytes for one-shot resubmission, failing if the upstream already died.
func (c *clientConn) charge(u *upstream, event uint32, raw []byte, retried bool) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed.Load() {
		return false
	}
	var buf []byte
	if n := len(u.free); n > 0 {
		buf, u.free = u.free[n-1], u.free[:n-1]
	}
	u.held = append(u.held, heldEvent{event: event, retried: retried, raw: append(buf[:0], raw...)})
	u.b.inflight.Add(1)
	u.b.forwarded.Add(1)
	c.g.stats.inflight.Add(1)
	return true
}

// ack settles the held entry answered by a record for event id. Older
// entries skipped over got no answer from an in-order backend, so the later
// record's arrival proves they were dropped — they are classified
// backend_dropped here rather than at stream end, which would misfile them
// as failed if the connection later dies. A record for an id not held at all
// settles the queue front instead (positional fallback, so accounting never
// drifts on a confused stream). All counter movement happens with u.mu held:
// a record's settle and a concurrent charge serialize on the same lock.
func (c *clientConn) ack(u *upstream, id uint32) {
	u.mu.Lock()
	defer u.mu.Unlock()
	j := u.head
	for ; j < len(u.held); j++ {
		if u.held[j].event == id {
			break
		}
	}
	if j == len(u.held) {
		if u.head == len(u.held) {
			// Nothing held at all: still one delivered record.
			u.b.inflight.Add(-1)
			u.b.relayed.Add(1)
			c.g.stats.inflight.Add(-1)
			c.g.stats.relayed.Add(1)
			return
		}
		j = u.head
	}
	if skipped := int64(j - u.head); skipped > 0 {
		u.b.inflight.Add(-skipped)
		u.b.dropped.Add(uint64(skipped))
		c.g.stats.inflight.Add(-skipped)
		c.g.stats.shedBackendDropped.Add(uint64(skipped))
	}
	u.b.inflight.Add(-1)
	u.b.relayed.Add(1)
	c.g.stats.inflight.Add(-1)
	c.g.stats.relayed.Add(1)
	for i := u.head; i <= j; i++ {
		u.free = append(u.free, u.held[i].raw)
		u.held[i].raw = nil
	}
	u.head = j + 1
	if u.head == len(u.held) {
		u.held = u.held[:0]
		u.head = 0
	} else if u.head >= 64 && u.head*2 >= len(u.held) {
		n := copy(u.held, u.held[u.head:])
		u.held = u.held[:n]
		u.head = 0
	}
}

// pick chooses a backend for the event's slot chain: ring order starting at
// the health-spilled primary, skipping overloaded backends and candidates
// past their bounded-load cap. nil means nothing in the chain can take the
// event right now.
func (c *clientConn) pick(t *table, event uint32) *Backend {
	sc := t.chain(event)
	if sc.n == 0 {
		return nil
	}
	loadCap := c.loadCap(t)
	for k := int8(0); k < sc.n; k++ {
		b := sc.bs[(sc.primary+k)%sc.n]
		if b.HealthClass() == healthOverloaded {
			continue
		}
		if b.Inflight() > loadCap && k < sc.n-1 {
			// Bounded load: past the cap, overflow to the next candidate.
			// The last candidate takes the event regardless — bounded-load
			// placement spreads, it never sheds; only overload sheds.
			continue
		}
		return b
	}
	return nil
}

// loadCap is the bounded-load ceiling: LoadFactorPct of the fleet-mean
// in-flight, plus a burst allowance so quiet fleets don't bounce.
func (c *clientConn) loadCap(t *table) int64 {
	if t.routable == 0 {
		return 1 << 62
	}
	total := c.g.stats.inflight.Load()
	return (total*int64(c.g.cfg.LoadFactorPct))/(int64(t.routable)*100) + 8
}

// upstreamFor returns the live upstream for b, dialing if needed.
func (c *clientConn) upstreamFor(b *Backend) (*upstream, error) {
	if u, ok := c.ups[b]; ok {
		return u, nil
	}
	nc, err := net.DialTimeout("tcp", b.Addr, c.g.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	tc := nc.(*net.TCPConn)
	tc.SetNoDelay(false)
	// Deep socket buffers absorb backend backpressure bursts: the forwarder
	// is one goroutine per client, so a write blocking on one backend
	// head-of-line-blocks events bound for the others.
	tc.SetWriteBuffer(1 << 20)
	u := &upstream{b: b, nc: tc, bw: bufio.NewWriterSize(tc, 64<<10)}
	b.conns.Add(1)
	c.ups[b] = u
	c.relayWG.Add(1)
	go c.relay(u)
	return u, nil
}

// flushUpstream pushes one upstream's staged events onto the wire.
func (c *clientConn) flushUpstream(u *upstream) {
	if u.closed.Load() || u.pending == 0 {
		return
	}
	u.pending = 0
	if t := c.g.cfg.UpstreamWriteTimeout; t > 0 {
		u.nc.SetWriteDeadline(time.Now().Add(t))
	}
	if err := u.bw.Flush(); err != nil {
		c.failUpstream(u, err)
	}
}

// flushAll flushes every upstream with staged events.
func (c *clientConn) flushAll() {
	for _, u := range c.ups {
		c.flushUpstream(u)
	}
}

// failUpstream tears an upstream down after a write error. Closing the
// socket forces the relay off its read; the relay's settle classifies the
// charged-but-unanswered events as failed.
func (c *clientConn) failUpstream(u *upstream, err error) {
	if u.closed.Swap(true) {
		return
	}
	u.pending = 0
	u.nc.Close()
	delete(c.ups, u.b)
	c.g.markBackendDown(u.b, err)
}

// closeWriteUpstream half-closes an upstream: the backend sees EOF, drains
// its in-flight events, streams the remaining records, then closes — the
// relay runs to completion behind it.
func (c *clientConn) closeWriteUpstream(u *upstream) {
	c.flushUpstream(u)
	if u.closed.Swap(true) {
		return
	}
	u.nc.CloseWrite()
}

// sweepUpstreams reacts to a table generation change: upstreams to backends
// that left the ring (draining, detached) are half-closed so the backend can
// finish its in-flight work and the drain can complete.
func (c *clientConn) sweepUpstreams() {
	for b, u := range c.ups {
		if b.AdminState() != adminJoined {
			c.closeWriteUpstream(u)
			delete(c.ups, b) // a re-added backend gets a fresh upstream
		}
	}
}

// finish is the graceful teardown after the client stops sending: flush and
// half-close every upstream, let the relays drain the responses, then close
// the downlink.
func (c *clientConn) finish() {
	for b, u := range c.ups {
		c.closeWriteUpstream(u)
		delete(c.ups, b)
	}
	c.relayWG.Wait()
	c.wmu.Lock()
	c.bw.Flush()
	c.wmu.Unlock()
	c.nc.CloseWrite()
}

// relay streams one upstream's downlink records back to the client,
// settling whatever never came back when the stream ends.
func (c *clientConn) relay(u *upstream) {
	defer c.relayWG.Done()
	defer u.b.conns.Add(-1)
	defer u.nc.Close()
	sc := adapt.NewRecordScanner(u.nc, adapt.NewDeadlineRearmer(u.nc, c.g.cfg.UpstreamReadTimeout))
	for {
		rec, err := sc.Next()
		if err != nil {
			c.settle(u, err)
			return
		}
		c.ack(u, adapt.RecordEventID(rec))
		c.writeRecord(rec, sc.Buffered() >= adapt.RecordHeaderBytes)
	}
}

// settle classifies an ended upstream's unanswered events: a clean EOF means
// the backend consumed them without answering (its derandomizer dropped
// them); anything else is a connection failure — never-retried events are
// resubmitted once to a new slot owner, already-retried ones shed as failed.
func (c *clientConn) settle(u *upstream, err error) {
	u.mu.Lock()
	u.closed.Store(true)
	held := u.held[u.head:]
	u.held = nil
	u.head = 0
	u.free = nil
	// Classify the remainder while still holding the lock: a forwarder
	// racing charge against this settle either lands its entry in held
	// (settled here) or observes closed and re-picks — the shared critical
	// section is what makes the accounting identity exact.
	left := int64(len(held))
	if left > 0 {
		u.b.inflight.Add(-left)
		c.g.stats.inflight.Add(-left)
	}
	clean := err == io.EOF
	var spent uint64
	var fresh []heldEvent
	if clean {
		if left > 0 {
			u.b.dropped.Add(uint64(left))
			c.g.stats.shedBackendDropped.Add(uint64(left))
		}
	} else {
		fresh = held[:0]
		for i := range held {
			if held[i].retried {
				spent++
			} else {
				fresh = append(fresh, held[i])
			}
		}
		if spent > 0 {
			u.b.failed.Add(spent)
			c.g.stats.shedBackendFailed.Add(spent)
		}
	}
	u.mu.Unlock()
	if clean {
		return
	}
	// Mark the backend down before resubmitting: the rebuild routes the
	// resubmissions' pick away from the connection that just died.
	c.g.markBackendDown(u.b, err)
	if len(fresh) > 0 {
		c.resubmit(fresh, u.b)
	}
}

// resubmit replays never-retried events from a dead upstream to new slot
// owners, one retry each. It runs on the dead upstream's relay goroutine;
// the retry upstreams it dials are private — never in c.ups, which the
// forwarder owns — written, half-closed, and drained by their own relays.
func (c *clientConn) resubmit(events []heldEvent, dead *Backend) {
	g := c.g
	targets := make(map[*Backend]*upstream, 2)
	for i := range events {
		he := &events[i]
		b := c.placeRetry(he.event, dead)
		if b == nil {
			continue // placeRetry accounted the shed
		}
		u, ok := targets[b]
		if !ok {
			u = c.dialRetry(b)
			targets[b] = u // a nil caches the dial failure
		}
		if u == nil {
			// Retry dial failed: the event is no longer charged anywhere
			// (its dead upstream already settled it out), so this terminal
			// shed has no concurrent settle to race with.
			b.failed.Add(1)
			//hepccl:checked
			g.stats.shedBackendFailed.Add(1)
			continue
		}
		if !c.charge(u, he.event, he.raw, true) {
			// The retry target died under us mid-batch and its relay
			// settled; this event was never written there, so it is charged
			// nowhere and the shed cannot be double-counted.
			b.failed.Add(1)
			//hepccl:checked
			g.stats.shedBackendFailed.Add(1)
			continue
		}
		if _, err := u.bw.Write(he.raw); err != nil {
			// Stays charged; the retry relay's settle sheds it as spent.
			c.failRetry(u, err)
			continue
		}
		g.stats.retried.Add(1)
	}
	for _, u := range targets {
		if u == nil || u.closed.Load() {
			continue
		}
		if t := g.cfg.UpstreamWriteTimeout; t > 0 {
			u.nc.SetWriteDeadline(time.Now().Add(t))
		}
		if err := u.bw.Flush(); err != nil {
			c.failRetry(u, err)
			continue
		}
		u.closed.Store(true)
		u.nc.CloseWrite()
	}
}

// placeRetry picks a new owner for a resubmitted event, treating the dead
// backend as unroutable and holding through table lag the same way forward
// holds through overload. nil means the event sheds, already accounted.
func (c *clientConn) placeRetry(event uint32, dead *Backend) *Backend {
	g := c.g
	for attempt := 0; ; attempt++ {
		t := g.table.Load()
		b := c.pick(t, event)
		if b == dead {
			b = nil // rebuild has not propagated yet; hold
		}
		if b != nil {
			return b
		}
		if t.routable == 0 {
			// The resubmitted event was settled out of its dead upstream
			// before placeRetry ran; it is charged nowhere now.
			//hepccl:checked
			g.stats.shedNoBackend.Add(1)
			return nil
		}
		if attempt >= g.cfg.HoldRetries {
			// Same as above: uncharged between settle and re-placement.
			//hepccl:checked
			g.stats.shedOverload.Add(1)
			return nil
		}
		time.Sleep(g.cfg.HoldDelay)
	}
}

// dialRetry dials a dedicated upstream for one resubmission batch and starts
// its relay. nil means the dial failed (and the backend is marked down).
func (c *clientConn) dialRetry(b *Backend) *upstream {
	nc, err := net.DialTimeout("tcp", b.Addr, c.g.cfg.DialTimeout)
	if err != nil {
		c.g.markBackendDown(b, err)
		return nil
	}
	tc := nc.(*net.TCPConn)
	tc.SetNoDelay(false)
	if t := c.g.cfg.UpstreamWriteTimeout; t > 0 {
		tc.SetWriteDeadline(time.Now().Add(t))
	}
	u := &upstream{b: b, nc: tc, bw: bufio.NewWriterSize(tc, 64<<10)}
	b.conns.Add(1)
	// Safe from this relay goroutine: its own Done has not run, so the
	// WaitGroup cannot be at zero while we Add.
	c.relayWG.Add(1)
	go c.relay(u)
	return u
}

// failRetry tears a retry upstream down after a write error; its relay
// settles the charged events (all retried, so they shed as failed).
func (c *clientConn) failRetry(u *upstream, err error) {
	if u.closed.Swap(true) {
		return
	}
	u.nc.Close()
	c.g.markBackendDown(u.b, err)
}

// writeRecord relays one record to the client; flushes when the scanner has
// no further complete record buffered (the relay is about to block).
func (c *clientConn) writeRecord(rec []byte, more bool) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.bw.Write(rec); err != nil {
		return // client gone; the forwarder notices on its own side
	}
	if !more {
		if t := c.g.cfg.ClientWriteTimeout; t > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(t))
		}
		c.bw.Flush()
	}
}
