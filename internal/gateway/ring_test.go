package gateway

import (
	"testing"
)

func joinedBackend(addr string, h healthClass) *Backend {
	b := newBackend(addr, addr+"-stats")
	b.health.Store(int32(h))
	return b
}

func primaries(t *table) map[string]int {
	owners := map[string]int{}
	for i := range t.slots {
		sc := &t.slots[i]
		if sc.n > 0 {
			owners[sc.bs[sc.primary].Addr]++
		}
	}
	return owners
}

// TestTableBalance checks every backend owns a reasonable share of slots.
func TestTableBalance(t *testing.T) {
	fleet := []*Backend{
		joinedBackend("a:1", healthGood),
		joinedBackend("b:1", healthGood),
		joinedBackend("c:1", healthGood),
	}
	tab := buildTable(fleet, 512, 64)
	if tab.routable != 3 || tab.joined != 3 {
		t.Fatalf("routable %d joined %d, want 3/3", tab.routable, tab.joined)
	}
	owners := primaries(tab)
	for _, b := range fleet {
		n := owners[b.Addr]
		// Fair share is ~171 of 512; vnode variance should stay well inside
		// a 2x band.
		if n < 512/6 || n > 512/2+512/6 {
			t.Fatalf("backend %s owns %d of 512 slots (badly unbalanced: %v)", b.Addr, n, owners)
		}
	}
}

// TestTableStability asserts the consistent-hashing contract: removing one
// backend reassigns only the slots it owned, and re-adding it restores the
// original assignment exactly.
func TestTableStability(t *testing.T) {
	a := joinedBackend("a:1", healthGood)
	b := joinedBackend("b:1", healthGood)
	c := joinedBackend("c:1", healthGood)
	full := buildTable([]*Backend{a, b, c}, 512, 64)
	without := buildTable([]*Backend{a, c}, 512, 64)
	moved := 0
	for s := range full.slots {
		was := full.slots[s].bs[full.slots[s].primary]
		now := without.slots[s].bs[without.slots[s].primary]
		if was != b && was != now {
			t.Fatalf("slot %d moved %s -> %s though %s was not removed", s, was.Addr, now.Addr, was.Addr)
		}
		if was == b {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed backend owned no slots; stability test vacuous")
	}
	restored := buildTable([]*Backend{a, b, c}, 512, 64)
	for s := range full.slots {
		if full.slots[s].bs[full.slots[s].primary] != restored.slots[s].bs[restored.slots[s].primary] {
			t.Fatalf("slot %d not restored after re-add", s)
		}
	}
}

// TestTableDegradedSpill: a degraded backend loses its primaries to ring
// successors but stays in every chain it was in (last-resort candidate),
// and recovers its exact slots when healthy again.
func TestTableDegradedSpill(t *testing.T) {
	a := joinedBackend("a:1", healthGood)
	b := joinedBackend("b:1", healthGood)
	c := joinedBackend("c:1", healthGood)
	fleet := []*Backend{a, b, c}
	healthy := buildTable(fleet, 512, 64)
	before := primaries(healthy)

	b.setHealth(healthDegraded)
	spilled := buildTable(fleet, 512, 64)
	owners := primaries(spilled)
	if owners[b.Addr] != 0 {
		t.Fatalf("degraded backend still owns %d slots", owners[b.Addr])
	}
	if spilled.routable != 3 {
		t.Fatalf("degraded backend should stay routable, routable = %d", spilled.routable)
	}
	// Chain membership is ring-derived, so it must be unchanged.
	inChain := 0
	for s := range spilled.slots {
		for j := int8(0); j < spilled.slots[s].n; j++ {
			if spilled.slots[s].bs[j] == b {
				inChain++
			}
		}
	}
	if inChain == 0 {
		t.Fatal("degraded backend vanished from every chain")
	}
	// Slots that were not b's keep their owner.
	for s := range healthy.slots {
		was := healthy.slots[s].bs[healthy.slots[s].primary]
		if was == b {
			continue
		}
		if now := spilled.slots[s].bs[spilled.slots[s].primary]; now != was {
			t.Fatalf("slot %d owner changed %s -> %s on unrelated degradation", s, was.Addr, now.Addr)
		}
	}

	b.setHealth(healthGood)
	recovered := buildTable(fleet, 512, 64)
	after := primaries(recovered)
	if after[a.Addr] != before[a.Addr] || after[b.Addr] != before[b.Addr] || after[c.Addr] != before[c.Addr] {
		t.Fatalf("recovery did not restore ownership: before %v after %v", before, after)
	}
}

// TestTableDown: an unreachable backend leaves the ring entirely — no chain
// membership, routable count drops.
func TestTableDown(t *testing.T) {
	a := joinedBackend("a:1", healthGood)
	b := joinedBackend("b:1", healthDown)
	c := joinedBackend("c:1", healthGood)
	tab := buildTable([]*Backend{a, b, c}, 512, 64)
	if tab.routable != 2 || tab.joined != 3 {
		t.Fatalf("routable %d joined %d, want 2/3", tab.routable, tab.joined)
	}
	for s := range tab.slots {
		for j := int8(0); j < tab.slots[s].n; j++ {
			if tab.slots[s].bs[j] == b {
				t.Fatalf("down backend still in slot %d chain", s)
			}
		}
	}
}

// TestTableAllDegraded: a fleet degraded everywhere still assigns every slot
// (better degraded service than none).
func TestTableAllDegraded(t *testing.T) {
	fleet := []*Backend{
		joinedBackend("a:1", healthDegraded),
		joinedBackend("b:1", healthDegraded),
	}
	tab := buildTable(fleet, 512, 64)
	for s := range tab.slots {
		if tab.slots[s].n == 0 {
			t.Fatalf("slot %d unassigned in all-degraded fleet", s)
		}
	}
}

// TestSlotOf sanity-checks the event hash spreads dense ids.
func TestSlotOf(t *testing.T) {
	const mask = 511
	counts := make([]int, mask+1)
	for id := uint32(0); id < 1<<16; id++ {
		counts[slotOf(id, mask)]++
	}
	min, max := 1<<30, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	// 65536 ids over 512 slots is 128 per slot; a decent mix stays within
	// a generous band.
	if min < 64 || max > 256 {
		t.Fatalf("dense event ids bunch up: min %d max %d per slot", min, max)
	}
}
