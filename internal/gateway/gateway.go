// Package gateway implements hepcclgw's L4 event router: it speaks the ALPHA
// packet protocol on the front, frames events without decoding them, and
// consistent-hashes each event by event id across a fleet of hepccld
// backends. Placement uses a stable vnode hash ring flattened into a slot
// table, with bounded-load overflow to ring successors; backend health is
// probed from each hepccld's three-state /healthz, spilling slots away from
// degraded backends, holding-and-retrying (then shedding, with exact
// accounting) on overloaded ones, resubmitting events held on a dead
// backend's connection once to a new slot owner, and supporting draining
// removal and hot re-addition without disturbing the rest of the ring. Responses relay back
// on the client connection that offered the event; per-source FIFO order is
// preserved per backend because one client's events for one backend share a
// single ordered upstream connection.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrGatewayClosed is returned by Serve after Shutdown.
var ErrGatewayClosed = errors.New("gateway: closed")

// BackendSpec names one backend at configuration time.
type BackendSpec struct {
	// Addr is the event-ingest address.
	Addr string
	// StatsAddr is the /healthz HTTP address.
	StatsAddr string
}

// Config parameterizes a Gateway.
type Config struct {
	// Backends is the initial fleet.
	Backends []BackendSpec
	// ASICs is the number of frames composing one event on the wire (the
	// fleet's pipeline geometry; the gateway frames but never decodes).
	ASICs int

	// Slots is the routing-table size (power of two). Default 512.
	Slots int
	// Vnodes is the ring points per backend. Default 64.
	Vnodes int
	// LoadFactorPct bounds per-backend load: a slot's primary is skipped
	// when its in-flight count exceeds LoadFactorPct/100 of the fleet mean
	// (plus a small burst allowance). Default 125. Values <= 100 are
	// rejected; bounded-load needs headroom above the mean.
	LoadFactorPct int

	// ProbeInterval is the health-poll period. Default 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health request. Default 1s.
	ProbeTimeout time.Duration

	// HoldRetries and HoldDelay shape overload handling: an event whose
	// whole candidate chain is overloaded is held for up to
	// HoldRetries*HoldDelay before being shed. Defaults 40 and 5ms.
	HoldRetries int
	HoldDelay   time.Duration

	// DialTimeout bounds one upstream dial. Default 5s.
	DialTimeout time.Duration
	// UpstreamWriteTimeout bounds one upstream flush. Default 10s.
	UpstreamWriteTimeout time.Duration
	// UpstreamReadTimeout is the record-relay read deadline (re-armed every
	// adapt.DeadlineRearmEvery records). 0 disables.
	UpstreamReadTimeout time.Duration
	// ClientWriteTimeout bounds one downlink flush to a client. 0 disables.
	ClientWriteTimeout time.Duration

	// StatsAddr serves GET /stats, GET /healthz, POST /drain, POST /add.
	// Empty disables.
	StatsAddr string
	// Logger receives one-line operational logs. nil silences them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 512
	}
	if c.Vnodes == 0 {
		c.Vnodes = 64
	}
	if c.LoadFactorPct == 0 {
		c.LoadFactorPct = 125
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Second
	}
	if c.HoldRetries == 0 {
		c.HoldRetries = 40
	}
	if c.HoldDelay == 0 {
		c.HoldDelay = 5 * time.Millisecond
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.UpstreamWriteTimeout == 0 {
		c.UpstreamWriteTimeout = 10 * time.Second
	}
	return c
}

// Gateway routes framed events across the backend fleet.
type Gateway struct {
	cfg         Config
	probeClient *http.Client

	// mu guards fleet membership and table rebuilds (rebuild reads the
	// fleet slice and swaps table; the forward path only loads table).
	mu       sync.Mutex
	backends []*Backend
	table    atomic.Pointer[table]
	// gen bumps on every rebuild; forwarders re-check their upstream maps
	// when they observe a new generation.
	gen atomic.Uint64

	stats gwStats

	ln       net.Listener
	statsLn  net.Listener
	statsSrv *http.Server

	done     chan struct{}
	closing  atomic.Bool
	connsWG  sync.WaitGroup
	bgWG     sync.WaitGroup
	shutOnce sync.Once
}

// New validates cfg and builds a gateway (not yet serving or probing).
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.ASICs < 1 {
		return nil, fmt.Errorf("gateway: ASICs = %d, need >= 1", cfg.ASICs)
	}
	if cfg.Slots&(cfg.Slots-1) != 0 || cfg.Slots < chainLen {
		return nil, fmt.Errorf("gateway: Slots = %d must be a power of two >= %d", cfg.Slots, chainLen)
	}
	if cfg.LoadFactorPct <= 100 {
		return nil, fmt.Errorf("gateway: LoadFactorPct = %d must exceed 100", cfg.LoadFactorPct)
	}
	g := &Gateway{
		cfg:         cfg,
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		done:        make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, spec := range cfg.Backends {
		if spec.Addr == "" || spec.StatsAddr == "" {
			return nil, fmt.Errorf("gateway: backend needs both addr and stats addr, got %+v", spec)
		}
		if seen[spec.Addr] {
			return nil, fmt.Errorf("gateway: duplicate backend %s", spec.Addr)
		}
		seen[spec.Addr] = true
		g.backends = append(g.backends, newBackend(spec.Addr, spec.StatsAddr))
	}
	return g, nil
}

// fleet returns the current backend slice.
func (g *Gateway) fleet() []*Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backends
}

// rebuild recomputes the slot table from the current fleet and bumps the
// generation.
func (g *Gateway) rebuild() {
	g.mu.Lock()
	t := buildTable(g.backends, g.cfg.Slots, g.cfg.Vnodes)
	g.table.Store(t)
	g.mu.Unlock()
	g.gen.Add(1)
}

// ListenAndServe binds addr and serves until Shutdown.
func (g *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	return g.Serve(ln)
}

// Serve probes the fleet once (so routing starts from real health, not
// guesses), builds the first table, starts the prober and admin endpoint,
// and accepts client connections until Shutdown.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closing.Load() {
		g.mu.Unlock()
		ln.Close()
		return ErrGatewayClosed
	}
	g.ln = ln
	g.mu.Unlock()

	for _, b := range g.fleet() {
		// Startup probe: retry through probeDownAfter so one blip does not
		// class a live backend down before the first event arrives.
		for i := 0; i < probeDownAfter; i++ {
			if g.probeOnce(b); b.HealthClass() != healthUnknown {
				break
			}
		}
		if b.HealthClass() == healthUnknown {
			b.setHealth(healthDown)
			g.logf("gateway: backend %s unreachable at startup", b.Addr)
		}
	}
	g.rebuild()
	g.bgWG.Add(1)
	go g.runProber()
	g.startStats()

	var backoff time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if g.closing.Load() {
				g.connsWG.Wait()
				return ErrGatewayClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return fmt.Errorf("gateway: accept: %w", err)
		}
		backoff = 0
		g.connsWG.Add(1)
		g.stats.conns.Add(1)
		go g.handleConn(nc)
	}
}

// Addr returns the client-facing listen address, or nil before Serve.
func (g *Gateway) Addr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return nil
	}
	return g.ln.Addr()
}

// Shutdown stops accepting, waits for client connections to finish their
// graceful drains (bounded by ctx), and stops the prober and admin endpoint.
func (g *Gateway) Shutdown(ctx context.Context) error {
	var err error
	g.shutOnce.Do(func() {
		g.closing.Store(true)
		close(g.done)
		g.mu.Lock()
		if g.ln != nil {
			g.ln.Close()
		}
		g.mu.Unlock()
		finished := make(chan struct{})
		go func() {
			g.connsWG.Wait()
			close(finished)
		}()
		select {
		case <-finished:
		case <-ctx.Done():
			err = ctx.Err()
		}
		g.bgWG.Wait()
		if g.statsSrv != nil {
			g.statsSrv.Close()
		}
	})
	return err
}

// Drain begins removing a backend: it stops receiving new assignments
// immediately; in-flight events finish and relay normally; once its
// in-flight count and upstream connections reach zero it detaches. Returns
// the backend or an error if the address is unknown or already leaving.
func (g *Gateway) Drain(addr string) (*Backend, error) {
	g.mu.Lock()
	var b *Backend
	for _, cand := range g.backends {
		if cand.Addr == addr {
			b = cand
			break
		}
	}
	if b == nil {
		g.mu.Unlock()
		return nil, fmt.Errorf("gateway: drain: unknown backend %s", addr)
	}
	if !b.admin.CompareAndSwap(int32(adminJoined), int32(adminDraining)) {
		g.mu.Unlock()
		return nil, fmt.Errorf("gateway: drain: backend %s is %s", addr, b.AdminState())
	}
	g.mu.Unlock()
	g.rebuild()
	g.logf("gateway: backend %s draining", addr)
	g.bgWG.Add(1)
	go g.watchDetach(b)
	return b, nil
}

// watchDetach flips a draining backend to detached once its in-flight count
// and upstream connections hit zero.
func (g *Gateway) watchDetach(b *Backend) {
	defer g.bgWG.Done()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-tick.C:
			if b.Inflight() == 0 && b.conns.Load() == 0 &&
				b.admin.CompareAndSwap(int32(adminDraining), int32(adminDetached)) {
				g.logf("gateway: backend %s detached", b.Addr)
				return
			}
		}
	}
}

// Add hot-adds a backend: a brand-new address joins the fleet, and a
// previously detached (or still-draining) address rejoins in place, keeping
// its counters. The backend is probed synchronously so the rebuilt table
// sees real health.
func (g *Gateway) Add(addr, statsAddr string) (*Backend, error) {
	g.mu.Lock()
	var b *Backend
	for _, cand := range g.backends {
		if cand.Addr == addr {
			b = cand
			break
		}
	}
	if b != nil {
		if b.Joined() {
			g.mu.Unlock()
			return nil, fmt.Errorf("gateway: add: backend %s already joined", addr)
		}
		if statsAddr != "" {
			b.setStatsAddr(statsAddr)
		}
		b.admin.Store(int32(adminJoined))
	} else {
		if statsAddr == "" {
			g.mu.Unlock()
			return nil, fmt.Errorf("gateway: add: %s needs a stats addr", addr)
		}
		b = newBackend(addr, statsAddr)
		g.backends = append(g.backends, b)
	}
	b.probeFails.Store(0)
	g.mu.Unlock()
	g.probeOnce(b)
	if b.HealthClass() == healthUnknown {
		b.setHealth(healthDown)
	}
	g.rebuild()
	g.logf("gateway: backend %s joined (%s)", addr, b.HealthClass())
	return b, nil
}

// markBackendDown is the dial-failure path: the prober will bring the
// backend back when it answers again.
func (g *Gateway) markBackendDown(b *Backend, err error) {
	b.probeFails.Store(probeDownAfter)
	if b.setHealth(healthDown) {
		g.logf("gateway: backend %s down: %v", b.Addr, err)
		g.rebuild()
	}
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logger != nil {
		g.cfg.Logger.Printf(format, args...)
	}
}
