package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/adapt"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/server"
)

// testPipeline keeps events small so end-to-end runs stay fast under -race.
func testPipeline() adapt.Config {
	cfg := adapt.DefaultADAPT()
	cfg.ASICs = 4
	cfg.SamplesPerChannel = 4
	return cfg
}

// backendHandle wraps one in-process hepccld for lifecycle control.
type backendHandle struct {
	srv   *server.Server
	addr  string
	stats string
	dead  bool
}

// startBackend serves one hepccld on ephemeral ports.
func startBackend(t *testing.T, policy server.OverflowPolicy, listen string) *backendHandle {
	return startPacedBackend(t, policy, listen, 0)
}

// startPacedBackend serves one hepccld throttled to rate events/s (0
// disables) so events pile up in flight — the substrate for killing a
// backend with work outstanding.
func startPacedBackend(t *testing.T, policy server.OverflowPolicy, listen string, rate float64) *backendHandle {
	t.Helper()
	queue := 64
	if rate > 0 {
		// A shallow queue keeps a throttled backend's backlog in the socket,
		// not the derandomizer, so a kill severs with data unread.
		queue = 16
	}
	s, err := server.New(server.Config{
		Pipeline:   testPipeline(),
		Workers:    1,
		QueueDepth: queue,
		Policy:     policy,
		PaceRate:   rate,
		StatsAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	go s.ListenAndServe(listen)
	h := &backendHandle{srv: s}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if a, sa := s.Addr(), s.StatsAddr(); a != nil && sa != nil {
			h.addr, h.stats = a.String(), sa.String()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backend never bound")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Cleanup(func() { h.stop(t) })
	return h
}

// stop drains the backend gracefully (no-op if already stopped).
func (h *backendHandle) stop(t *testing.T) {
	if h.dead {
		return
	}
	h.dead = true
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h.srv.Shutdown(ctx)
}

// kill force-closes the backend: expired context, so live connections are
// cut, not drained.
func (h *backendHandle) kill() {
	h.dead = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.srv.Shutdown(ctx)
}

// startGateway serves a gateway over the handles with fast probe cadence.
func startGateway(t *testing.T, handles ...*backendHandle) *Gateway {
	return startGatewayCfg(t, nil, handles...)
}

// startGatewayCfg is startGateway with a config hook applied before New.
func startGatewayCfg(t *testing.T, mut func(*Config), handles ...*backendHandle) *Gateway {
	t.Helper()
	cfg := Config{
		ASICs:         testPipeline().ASICs,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		HoldRetries:   50,
		HoldDelay:     2 * time.Millisecond,
		StatsAddr:     "127.0.0.1:0",
	}
	for _, h := range handles {
		cfg.Backends = append(cfg.Backends, BackendSpec{Addr: h.addr, StatsAddr: h.stats})
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.ListenAndServe("127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("gateway never bound")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, ErrGatewayClosed) {
			t.Errorf("Serve returned %v, want ErrGatewayClosed", err)
		}
	})
	return g
}

// makeEvents digitizes n tracker events with ids base..base+n-1.
func makeEvents(t testing.TB, n int, base uint32) [][]adapt.Packet {
	t.Helper()
	cfg := testPipeline()
	rng := detector.NewRNG(uint64(base) + 7)
	dig := detector.DefaultDigitizer()
	dig.Samples = cfg.SamplesPerChannel
	tracker := detector.DefaultTracker()
	tracker.Channels = cfg.ASICs * adapt.ChannelsPerASIC
	tracker.Threshold = 0
	events := make([][]adapt.Packet, n)
	for i := range events {
		ev, err := adapt.GenerateEvent(tracker.Event(rng).Values, cfg.ASICs,
			base+uint32(i), uint64(i), dig, rng)
		if err != nil {
			t.Fatal(err)
		}
		events[i] = ev
	}
	return events
}

// recordCollector drains a client's downlink concurrently with sending.
type recordCollector struct {
	mu  sync.Mutex
	ids map[uint32]int
	n   int
	err error
	wg  sync.WaitGroup
}

func collectRecords(nc net.Conn) *recordCollector {
	rc := &recordCollector{ids: map[uint32]int{}}
	rc.wg.Add(1)
	go func() {
		defer rc.wg.Done()
		sc := adapt.NewRecordScanner(nc, nil)
		for {
			rec, err := sc.Next()
			if err != nil {
				if err != io.EOF {
					rc.mu.Lock()
					rc.err = err
					rc.mu.Unlock()
				}
				return
			}
			rc.mu.Lock()
			rc.ids[adapt.RecordEventID(rec)]++
			rc.n++
			rc.mu.Unlock()
		}
	}()
	return rc
}

func (rc *recordCollector) wait(t *testing.T) (int, map[uint32]int) {
	t.Helper()
	rc.wg.Wait()
	if rc.err != nil {
		t.Fatalf("record stream: %v", rc.err)
	}
	return rc.n, rc.ids
}

// checkIdentity asserts the exact accounting contract at quiesce.
func checkIdentity(t *testing.T, g *Gateway) FleetSnapshot {
	t.Helper()
	snap := g.StatsSnapshot()
	if snap.Offered != snap.Relayed+snap.Shed.Total()+uint64(snap.Inflight) {
		t.Fatalf("accounting identity broken: offered %d != relayed %d + shed %d + inflight %d",
			snap.Offered, snap.Relayed, snap.Shed.Total(), snap.Inflight)
	}
	// Retried is supplementary (resubmissions, not a terminal bucket), but
	// one-retry-per-event bounds it by what was offered.
	if snap.Retried > snap.Offered {
		t.Fatalf("retried %d exceeds offered %d", snap.Retried, snap.Offered)
	}
	return snap
}

// TestGatewayEndToEnd routes two clients' events across two backends and
// checks every event comes back on the connection that offered it.
func TestGatewayEndToEnd(t *testing.T) {
	b0 := startBackend(t, server.PolicyBlock, "")
	b1 := startBackend(t, server.PolicyBlock, "")
	g := startGateway(t, b0, b1)

	const perClient = 200
	var wg sync.WaitGroup
	for ci := 0; ci < 2; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			events := makeEvents(t, perClient, uint32(ci*100000))
			nc, err := net.Dial("tcp", g.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			rc := collectRecords(nc)
			sw := adapt.NewStreamWriter(nc)
			for _, ev := range events {
				if err := sw.WriteEvent(ev); err != nil {
					t.Error(err)
					return
				}
			}
			nc.(*net.TCPConn).CloseWrite()
			n, ids := rc.wait(t)
			if n != perClient {
				t.Errorf("client %d: %d records, want %d", ci, n, perClient)
				return
			}
			for _, ev := range events {
				id := uint32(0)
				// event id lives in every frame; take it from the first.
				id = ev[0].Event
				if ids[id] != 1 {
					t.Errorf("client %d: event %d answered %d times", ci, id, ids[id])
					return
				}
			}
		}(ci)
	}
	wg.Wait()

	snap := checkIdentity(t, g)
	if snap.Offered != 2*perClient || snap.Relayed != 2*perClient || snap.Shed.Total() != 0 {
		t.Fatalf("offered %d relayed %d shed %d, want %d/%d/0",
			snap.Offered, snap.Relayed, snap.Shed.Total(), 2*perClient, 2*perClient)
	}
	for _, bs := range snap.Backends {
		if bs.Forwarded == 0 {
			t.Fatalf("backend %s got no traffic: %+v", bs.Addr, snap.Backends)
		}
	}
}

// TestGatewayDrainZeroLoss drains a backend in the middle of a stream and
// hot re-adds it: every offered event must still be answered — drain means
// finish-in-flight, not shed — and the re-added backend must take traffic
// again.
func TestGatewayDrainZeroLoss(t *testing.T) {
	b0 := startBackend(t, server.PolicyBlock, "")
	b1 := startBackend(t, server.PolicyBlock, "")
	g := startGateway(t, b0, b1)

	const phase = 300
	events := makeEvents(t, 3*phase, 0)
	nc, err := net.Dial("tcp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rc := collectRecords(nc)
	sw := adapt.NewStreamWriter(nc)
	send := func(evs [][]adapt.Packet) {
		t.Helper()
		for _, ev := range evs {
			if err := sw.WriteEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
	}

	send(events[:phase])

	// Drain via the admin endpoint (exercising the HTTP handler too).
	resp, err := http.Post(fmt.Sprintf("http://%s/drain?addr=%s", g.AdminAddr(), b0.addr), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: HTTP %d", resp.StatusCode)
	}
	var drained *Backend
	for _, b := range g.fleet() {
		if b.Addr == b0.addr {
			drained = b
		}
	}

	// Keep streaming: the forwarder notices the rebuild, half-closes its
	// upstream to b0, and b0 finishes its in-flight work.
	send(events[phase : 2*phase])
	deadline := time.Now().Add(5 * time.Second)
	for drained.AdminState() != adminDetached {
		if time.Now().After(deadline) {
			t.Fatalf("backend never detached (state %s inflight %d conns %d)",
				drained.AdminState(), drained.Inflight(), drained.conns.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hot re-add and stream the final phase; b0 must serve again.
	forwardedAtReadd := drained.forwarded.Load()
	resp, err = http.Post(fmt.Sprintf("http://%s/add?addr=%s&stats=%s", g.AdminAddr(), b0.addr, b0.stats), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: HTTP %d", resp.StatusCode)
	}
	send(events[2*phase:])
	nc.(*net.TCPConn).CloseWrite()

	n, ids := rc.wait(t)
	if n != 3*phase {
		t.Fatalf("%d records, want %d (zero loss through drain + re-add)", n, 3*phase)
	}
	for _, ev := range events {
		if ids[ev[0].Event] != 1 {
			t.Fatalf("event %d answered %d times", ev[0].Event, ids[ev[0].Event])
		}
	}
	snap := checkIdentity(t, g)
	if snap.Shed.Total() != 0 || snap.Inflight != 0 {
		t.Fatalf("shed %d inflight %d, want 0/0", snap.Shed.Total(), snap.Inflight)
	}
	if drained.forwarded.Load() == forwardedAtReadd {
		t.Fatal("re-added backend took no traffic")
	}
}

// crashProxy forwards TCP bytes to a backend and converts any backend-side
// termination into an RST toward its clients — an in-process kill() lets the
// dying server's conn teardown FIN gracefully, which a real process crash
// never does, and the gateway rightly treats a clean EOF as "backend dropped
// these", not "backend died". The proxy restores crash semantics.
type crashProxy struct {
	ln   net.Listener
	addr string
}

func startCrashProxy(t *testing.T, target string) *crashProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &crashProxy{ln: ln, addr: ln.Addr().String()}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			tc := nc.(*net.TCPConn)
			up, err := net.Dial("tcp", target)
			if err != nil {
				tc.SetLinger(0)
				tc.Close()
				continue
			}
			ut := up.(*net.TCPConn)
			go func() { // client -> backend: graceful half-close forwards
				io.Copy(ut, tc)
				ut.CloseWrite()
			}()
			go func() { // backend -> client: ANY end is a crash: RST out
				io.Copy(tc, ut)
				tc.SetLinger(0)
				tc.Close()
				ut.Close()
			}()
		}
	}()
	return p
}

// TestGatewayRetryOnBackendDeath kills a slow backend with events piled up
// in flight and requires zero loss: every held event must be resubmitted to
// the surviving backend and answered exactly once, with nothing shed and the
// retried counter accounting for the resubmissions.
func TestGatewayRetryOnBackendDeath(t *testing.T) {
	// b0 paced slow so events pile up on it, fronted by the crash proxy so
	// its death reaches the gateway as an RST; b1 unpaced takes the retries.
	// Bounded load is effectively off so the pile-up stays on b0.
	b0 := startPacedBackend(t, server.PolicyBlock, "", 200)
	proxy := startCrashProxy(t, b0.addr)
	front := &backendHandle{srv: b0.srv, addr: proxy.addr, stats: b0.stats, dead: true}
	b1 := startBackend(t, server.PolicyBlock, "")
	g := startGatewayCfg(t, func(cfg *Config) { cfg.LoadFactorPct = 100000 }, front, b1)

	const total = 400
	events := makeEvents(t, total, 0)
	nc, err := net.Dial("tcp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rc := collectRecords(nc)
	sw := adapt.NewStreamWriter(nc)
	for _, ev := range events {
		if err := sw.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}

	// Kill b0 once the whole stream is placed and it demonstrably holds a
	// backlog. The crash proxy turns its death into an RST on the gateway's
	// upstream, exactly like a crashed process.
	var killed *Backend
	for _, b := range g.fleet() {
		if b.Addr == proxy.addr {
			killed = b
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.stats.offered.Load() < total || killed.Inflight() < 80 {
		if time.Now().After(deadline) {
			t.Fatalf("slow backend never accumulated a backlog (offered %d, inflight %d)",
				g.stats.offered.Load(), killed.Inflight())
		}
		time.Sleep(2 * time.Millisecond)
	}
	b0.kill()

	nc.(*net.TCPConn).CloseWrite()
	n, ids := rc.wait(t)
	snap := checkIdentity(t, g)
	if snap.Retried == 0 {
		t.Fatalf("killing a backend with in-flight events must resubmit them: %+v", snap)
	}
	if n != total || snap.Relayed != total || snap.Shed.Total() != 0 {
		t.Fatalf("records=%d relayed=%d shed=%+v, want %d/%d/none — backend death must not lose held events",
			n, snap.Relayed, snap.Shed, total, total)
	}
	for _, ev := range events {
		if ids[ev[0].Event] != 1 {
			t.Fatalf("event %d answered %d times; retry must never duplicate", ev[0].Event, ids[ev[0].Event])
		}
	}
	t.Logf("retry: offered=%d relayed=%d retried=%d", snap.Offered, snap.Relayed, snap.Retried)
}

// TestGatewaySoak is the chaos smoke: a client streams continuously while
// one backend is hard-killed mid-run and later re-added on the same address.
// The accounting identity must hold exactly: every offered event is either
// relayed or accounted shed, none vanish. Scale with GW_SOAK_EVENTS.
func TestGatewaySoak(t *testing.T) {
	perPhase := 400
	if v := os.Getenv("GW_SOAK_EVENTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 3 {
			t.Fatalf("bad GW_SOAK_EVENTS %q", v)
		}
		perPhase = n / 3
	}
	b0 := startBackend(t, server.PolicyBlock, "")
	b1 := startBackend(t, server.PolicyBlock, "")
	g := startGateway(t, b0, b1)

	events := makeEvents(t, 3*perPhase, 0)
	nc, err := net.Dial("tcp", g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rc := collectRecords(nc)
	sw := adapt.NewStreamWriter(nc)
	send := func(evs [][]adapt.Packet) {
		t.Helper()
		for _, ev := range evs {
			if err := sw.WriteEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
	}

	send(events[:perPhase])
	killedAddr := b0.addr

	// Kill b0 while phase two is streaming: the relay settles the severed
	// upstream (shedding its in-flight with accounting), the prober marks
	// the backend down, and subsequent events spill to b1.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(3 * time.Millisecond)
		b0.kill()
	}()
	send(events[perPhase : 2*perPhase])
	<-killDone

	// Re-add: a fresh backend process on the same address.
	reborn := startBackend(t, server.PolicyBlock, killedAddr)
	if reborn.addr != killedAddr {
		t.Fatalf("rebind got %s, want %s", reborn.addr, killedAddr)
	}
	// Point the existing fleet entry at the reborn stats endpoint. (Add on
	// a joined backend is rejected; the prober just needs the new address
	// and a successful probe to bring it back from down.)
	var killed *Backend
	for _, b := range g.fleet() {
		if b.Addr == killedAddr {
			killed = b
		}
	}
	killed.setStatsAddr(reborn.stats)
	deadline := time.Now().Add(5 * time.Second)
	for killed.HealthClass() != healthGood {
		if time.Now().After(deadline) {
			t.Fatalf("killed backend never recovered (health %s)", killed.HealthClass())
		}
		time.Sleep(5 * time.Millisecond)
	}

	send(events[2*perPhase:])
	nc.(*net.TCPConn).CloseWrite()
	n, ids := rc.wait(t)

	snap := checkIdentity(t, g)
	if snap.Inflight != 0 {
		t.Fatalf("inflight %d after quiesce", snap.Inflight)
	}
	if uint64(n) != snap.Relayed {
		t.Fatalf("client saw %d records, gateway relayed %d", n, snap.Relayed)
	}
	if snap.Offered != uint64(3*perPhase) {
		t.Fatalf("offered %d, want %d", snap.Offered, 3*perPhase)
	}
	// The kill may shed events (severed retries, events routed in the
	// window before the prober reacts) but must never lose one silently.
	if snap.Relayed+snap.Shed.Total() != snap.Offered {
		t.Fatalf("lost events: offered %d relayed %d shed %d",
			snap.Offered, snap.Relayed, snap.Shed.Total())
	}
	// Resubmission must never answer one event twice.
	for id, k := range ids {
		if k > 1 {
			t.Fatalf("event %d answered %d times", id, k)
		}
	}
	if killed.forwarded.Load() == 0 {
		t.Fatal("killed backend never took traffic")
	}
	t.Logf("soak: offered=%d relayed=%d retried=%d shed=%+v",
		snap.Offered, snap.Relayed, snap.Retried, snap.Shed)
}
