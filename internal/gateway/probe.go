package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/wustl-adapt/hepccl/internal/server"
)

// The prober is the gateway's only view of backend health: it polls each
// backend's /healthz?verbose=1 (the typed server.HealthSnapshot JSON) on a
// fixed interval and folds the three-state answer plus reachability into the
// backend's health class. Any class transition triggers a slot-table rebuild,
// which is where degraded spill and down-removal take effect; overload
// transitions only bump the generation so forwarders re-read state promptly.

// probeDownAfter is how many consecutive probe failures class a backend down.
const probeDownAfter = 3

// probeOnce fetches one health snapshot and updates the backend's class.
// It reports whether the class changed.
func (g *Gateway) probeOnce(b *Backend) bool {
	snap, err := fetchHealth(g.probeClient, b.StatsAddr())
	if err != nil {
		n := b.probeFails.Add(1)
		if n < probeDownAfter {
			return false
		}
		if b.setHealth(healthDown) {
			g.logf("gateway: backend %s down: %v", b.Addr, err)
			return true
		}
		return false
	}
	b.probeFails.Store(0)
	b.snap.Store(snap)
	var h healthClass
	switch snap.State {
	case server.HealthOverloaded:
		h = healthOverloaded
	case server.HealthDegraded:
		h = healthDegraded
	default:
		h = healthGood
	}
	if b.setHealth(h) {
		g.logf("gateway: backend %s health -> %s", b.Addr, h)
		return true
	}
	return false
}

// fetchHealth GETs one verbose health snapshot. A 503 still carries a valid
// snapshot (that is how hepccld reports overloaded), so only transport and
// decode failures are errors.
func fetchHealth(c *http.Client, statsAddr string) (*server.HealthSnapshot, error) {
	resp, err := c.Get("http://" + statsAddr + "/healthz?verbose=1")
	if err != nil {
		return nil, fmt.Errorf("gateway: probe %s: %w", statsAddr, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("gateway: probe %s: HTTP %d", statsAddr, resp.StatusCode)
	}
	var snap server.HealthSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("gateway: probe %s: decode: %w", statsAddr, err)
	}
	return &snap, nil
}

// probeAll probes the whole fleet (concurrently — one hung backend must not
// delay the others' transitions) and rebuilds the table if anything changed.
func (g *Gateway) probeAll() {
	backends := g.fleet()
	changed := make(chan bool, len(backends))
	for _, b := range backends {
		go func(b *Backend) { changed <- g.probeOnce(b) }(b)
	}
	rebuild := false
	for range backends {
		if <-changed {
			rebuild = true
		}
	}
	if rebuild {
		g.rebuild()
	}
}

// runProber polls until the gateway shuts down.
func (g *Gateway) runProber() {
	defer g.bgWG.Done()
	tick := time.NewTicker(g.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-tick.C:
			g.probeAll()
		}
	}
}
