package gateway

import (
	"sync/atomic"

	"github.com/wustl-adapt/hepccl/internal/server"
)

// Backend lifecycle has two independent axes:
//
//   - admin state, set by operators (or the gateway itself on dial failure):
//     joined -> draining -> detached, with detached -> joined on hot re-add.
//     Draining means "stop assigning, finish in-flight"; detached means the
//     in-flight count hit zero and the last upstream connection closed.
//
//   - health class, set by the prober from the backend's three-state
//     /healthz?verbose=1: good, degraded, overloaded, or down (unreachable).
//     Degraded spills slots at rebuild; overloaded is handled per event on
//     the forward path; down removes the backend from the ring until probes
//     succeed again.

// adminState is the operator-controlled lifecycle axis.
type adminState int32

const (
	adminJoined adminState = iota
	adminDraining
	adminDetached
)

func (a adminState) String() string {
	switch a {
	case adminJoined:
		return "joined"
	case adminDraining:
		return "draining"
	default:
		return "detached"
	}
}

// healthClass is the prober-controlled axis.
type healthClass int32

const (
	// healthUnknown is the pre-first-probe state; the gateway probes every
	// backend synchronously at startup and on add, so routing never sees it.
	healthUnknown healthClass = iota
	healthGood
	healthDegraded
	healthOverloaded
	healthDown
)

func (h healthClass) String() string {
	switch h {
	case healthGood:
		return "ok"
	case healthDegraded:
		return "degraded"
	case healthOverloaded:
		return "overloaded"
	case healthDown:
		return "down"
	default:
		return "unknown"
	}
}

// Backend is one hepccld instance in the fleet.
type Backend struct {
	// Addr is the data-plane (event ingest) address.
	Addr string
	// statsAddr is the HTTP address probed for /healthz; atomic because a
	// hot re-add may repoint it while the prober is mid-cycle.
	statsAddr atomic.Pointer[string]

	admin  atomic.Int32
	health atomic.Int32
	// snap holds the last decoded verbose health snapshot for /stats.
	snap atomic.Pointer[server.HealthSnapshot]
	// probeFails counts consecutive probe errors; at probeDownAfter the
	// backend is classed down.
	probeFails atomic.Int32

	// forwarded counts events written toward this backend; relayed counts
	// records returned and relayed to clients; inflight is their difference
	// plus any events staged in upstream write buffers.
	forwarded atomic.Uint64
	relayed   atomic.Uint64
	inflight  atomic.Int64
	// failed counts events charged to this backend on connection errors;
	// dropped counts events the backend consumed but never answered (its
	// derandomizer dropped them under PolicyDrop).
	failed  atomic.Uint64
	dropped atomic.Uint64
	// conns counts live upstream connections to this backend.
	conns atomic.Int64
}

// newBackend builds a joined, not-yet-probed backend.
func newBackend(addr, statsAddr string) *Backend {
	b := &Backend{Addr: addr}
	b.setStatsAddr(statsAddr)
	return b
}

// StatsAddr returns the HTTP address probed for /healthz.
func (b *Backend) StatsAddr() string { return *b.statsAddr.Load() }

// setStatsAddr repoints the health endpoint (hot re-add).
func (b *Backend) setStatsAddr(addr string) { b.statsAddr.Store(&addr) }

// Joined reports whether the backend participates in the ring (admin axis).
func (b *Backend) Joined() bool { return adminState(b.admin.Load()) == adminJoined }

// AdminState returns the operator-controlled lifecycle state.
func (b *Backend) AdminState() adminState { return adminState(b.admin.Load()) }

// HealthClass returns the probed health class.
//
//hepccl:hotpath
func (b *Backend) HealthClass() healthClass { return healthClass(b.health.Load()) }

// Inflight returns the events currently charged to this backend.
//
//hepccl:hotpath
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// setHealth records a probe outcome and reports whether the class changed
// (a change obligates the caller to rebuild the slot table).
func (b *Backend) setHealth(h healthClass) bool {
	return healthClass(b.health.Swap(int32(h))) != h
}

// BackendSnapshot is the per-backend slice of the fleet /stats document.
type BackendSnapshot struct {
	Addr      string `json:"addr"`
	StatsAddr string `json:"stats_addr,omitempty"`
	State     string `json:"state"`
	Health    string `json:"health"`
	Slots     int    `json:"slots"`
	Forwarded uint64 `json:"forwarded"`
	Relayed   uint64 `json:"relayed"`
	Inflight  int64  `json:"inflight"`
	Failed    uint64 `json:"failed"`
	Dropped   uint64 `json:"dropped"`
	Conns     int64  `json:"conns"`
	// Probe carries the backend's own verbose health snapshot when the last
	// probe decoded one.
	Probe *server.HealthSnapshot `json:"probe,omitempty"`
}

// snapshot captures the backend's counters; slots is filled in by the caller
// from the live table.
func (b *Backend) snapshot() BackendSnapshot {
	return BackendSnapshot{
		Addr:      b.Addr,
		StatsAddr: b.StatsAddr(),
		State:     b.AdminState().String(),
		Health:    b.HealthClass().String(),
		Forwarded: b.forwarded.Load(),
		Relayed:   b.relayed.Load(),
		Inflight:  b.inflight.Load(),
		Failed:    b.failed.Load(),
		Dropped:   b.dropped.Load(),
		Conns:     b.conns.Load(),
		Probe:     b.snap.Load(),
	}
}
