package gateway

import (
	"sort"
)

// Slot table construction. Placement is a classic vnode hash ring flattened
// into a fixed power-of-two slot table: every joined backend contributes
// Vnodes pseudo-random points, each slot has a fixed probe point, and the
// slot's candidate chain is the first chainLen distinct backends clockwise
// from that point. Flattening means the per-event hot path is one hash, one
// mask, one array load — the ring walk happens only at rebuild time, which is
// rare (membership or health transitions).
//
// Stability: a backend's vnode points depend only on its address, and a
// slot's probe point only on its index, so removing a backend perturbs
// exactly the slots it owned, and (re-)adding one steals ~1/n of the slots
// back — the consistent-hashing contract the drain/re-add choreography
// relies on.
//
// Health spill happens at rebuild: the chain keeps ring order, but the
// slot's primary is the first candidate whose probed health is good, so a
// degraded backend's slots spill to their clockwise successors while the
// degraded backend stays in the chain as a last resort (a fleet that is
// degraded everywhere still serves). Overload is NOT handled here — it is
// transient on probe timescales, so the forward path deals with it per event
// (hold-and-retry, then shed).

// chainLen is how many distinct fallback backends each slot records.
const chainLen = 3

// slotChain is one slot's candidate backends in ring order. primary indexes
// the preferred candidate after health spill; entries beyond n are nil.
type slotChain struct {
	bs      [chainLen]*Backend
	n       int8
	primary int8
}

// table is an immutable routing table; the gateway swaps it atomically on
// every rebuild.
type table struct {
	slots []slotChain
	mask  uint32
	// routable counts backends that are joined and not probed down — the
	// gateway's own /healthz is derived from it.
	routable int
	// joined counts backends participating in the ring at all.
	joined int
}

// vnode is one ring point.
type vnode struct {
	h uint64
	b *Backend
}

// buildTable computes the slot table over the current fleet. slots must be a
// power of two. Backends that are draining or detached contribute no vnodes;
// backends probed down stay off the ring too (they are unreachable, there is
// nothing to spill *to* them).
func buildTable(backends []*Backend, slots, vnodes int) *table {
	t := &table{slots: make([]slotChain, slots), mask: uint32(slots - 1)}
	ring := make([]vnode, 0, len(backends)*vnodes)
	for _, b := range backends {
		if !b.Joined() {
			continue
		}
		t.joined++
		if b.HealthClass() == healthDown {
			continue
		}
		t.routable++
		seed := hashString(b.Addr)
		for v := 0; v < vnodes; v++ {
			ring = append(ring, vnode{h: splitmix64(seed + uint64(v)), b: b})
		}
	}
	if len(ring) == 0 {
		return t
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].h < ring[j].h })
	for s := range t.slots {
		p := splitmix64(slotSalt ^ uint64(s))
		i := sort.Search(len(ring), func(k int) bool { return ring[k].h >= p })
		sc := &t.slots[s]
		for k := 0; k < len(ring) && int(sc.n) < chainLen; k++ {
			v := ring[(i+k)%len(ring)]
			dup := false
			for j := int8(0); j < sc.n; j++ {
				if sc.bs[j] == v.b {
					dup = true
					break
				}
			}
			if !dup {
				sc.bs[sc.n] = v.b
				sc.n++
			}
		}
		// Health spill: prefer the first candidate that probed good.
		for j := int8(0); j < sc.n; j++ {
			if sc.bs[j].HealthClass() == healthGood {
				sc.primary = j
				break
			}
		}
	}
	return t
}

// chain returns the candidate list and preferred index for an event id.
//
//hepccl:hotpath
func (t *table) chain(event uint32) *slotChain {
	return &t.slots[slotOf(event, t.mask)]
}
