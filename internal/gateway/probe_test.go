package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/wustl-adapt/hepccl/internal/server"
)

// fakeBackend is an httptest /healthz endpoint whose reported state the test
// walks through the three health states.
type fakeBackend struct {
	mu    sync.Mutex
	state server.HealthState
	srv   *httptest.Server
}

func newFakeBackend(t *testing.T) *fakeBackend {
	fb := &fakeBackend{state: server.HealthOK}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		st := fb.state
		fb.mu.Unlock()
		snap := server.HealthSnapshot{State: st, LossFraction: 0.5, WindowSeconds: 0.25}
		if st == server.HealthOverloaded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(snap)
	})
	fb.srv = httptest.NewServer(mux)
	t.Cleanup(fb.srv.Close)
	return fb
}

func (fb *fakeBackend) set(st server.HealthState) {
	fb.mu.Lock()
	fb.state = st
	fb.mu.Unlock()
}

func (fb *fakeBackend) addr() string { return fb.srv.Listener.Addr().String() }

// probeGateway builds a gateway over fake health endpoints (the data
// addresses are never dialed), probes once, and builds the first table.
func probeGateway(t *testing.T, fakes ...*fakeBackend) *Gateway {
	t.Helper()
	cfg := Config{ASICs: 4}
	for i, fb := range fakes {
		cfg.Backends = append(cfg.Backends, BackendSpec{
			Addr:      fb.addr() + "#data" + string(rune('a'+i)), // unique, never dialed
			StatsAddr: fb.addr(),
		})
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.probeAll()
	g.rebuild()
	return g
}

// slotsOwnedBy counts slots whose (health-spilled) primary is b.
func slotsOwnedBy(g *Gateway, b *Backend) int {
	t := g.table.Load()
	n := 0
	for i := range t.slots {
		sc := &t.slots[i]
		if sc.n > 0 && sc.bs[sc.primary] == b {
			n++
		}
	}
	return n
}

// TestProberStateWalk walks one backend of three through
// ok -> degraded -> overloaded -> ok and asserts the routing consequences
// at each step: spillover on degraded, forward-path refusal (not table
// eviction) on overloaded, exact slot restoration on recovery. It then
// drains the backend and checks removal plus detach, and hot re-adds it.
func TestProberStateWalk(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	g := probeGateway(t, fakes...)
	fleet := g.fleet()
	walker := fleet[1]

	// ok: everyone owns a share and the whole fleet is routable.
	base := slotsOwnedBy(g, walker)
	if base == 0 {
		t.Fatal("healthy backend owns no slots")
	}
	if got := g.table.Load().routable; got != 3 {
		t.Fatalf("routable = %d, want 3", got)
	}
	baseline := map[int]*Backend{}
	tab := g.table.Load()
	for s := range tab.slots {
		baseline[s] = tab.slots[s].bs[tab.slots[s].primary]
	}

	// degraded: primaries spill to ring successors; chain keeps the backend;
	// slots not owned by the walker do not move.
	fakes[1].set(server.HealthDegraded)
	g.probeAll()
	if walker.HealthClass() != healthDegraded {
		t.Fatalf("health = %s, want degraded", walker.HealthClass())
	}
	if n := slotsOwnedBy(g, walker); n != 0 {
		t.Fatalf("degraded backend still owns %d slots", n)
	}
	tab = g.table.Load()
	for s := range tab.slots {
		if baseline[s] != walker && tab.slots[s].bs[tab.slots[s].primary] != baseline[s] {
			t.Fatalf("slot %d moved though its owner stayed healthy", s)
		}
	}

	// overloaded: table treatment identical to degraded (still routable,
	// spilled); the per-event forward path is what refuses it, which pick()
	// models directly.
	fakes[1].set(server.HealthOverloaded)
	g.probeAll()
	if walker.HealthClass() != healthOverloaded {
		t.Fatalf("health = %s, want overloaded", walker.HealthClass())
	}
	if got := g.table.Load().routable; got != 3 {
		t.Fatalf("overloaded backend must stay routable, routable = %d", got)
	}
	cc := &clientConn{g: g}
	tab = g.table.Load()
	for ev := uint32(0); ev < 4096; ev++ {
		if b := cc.pick(tab, ev); b == walker {
			t.Fatalf("pick chose the overloaded backend for event %d", ev)
		}
	}

	// recovered: exact slot restoration (consistent-hashing stability).
	fakes[1].set(server.HealthOK)
	g.probeAll()
	if n := slotsOwnedBy(g, walker); n != base {
		t.Fatalf("recovered backend owns %d slots, owned %d before", n, base)
	}
	tab = g.table.Load()
	for s := range tab.slots {
		if tab.slots[s].bs[tab.slots[s].primary] != baseline[s] {
			t.Fatalf("slot %d not restored after recovery", s)
		}
	}

	// drain: leaves the ring immediately, detaches once idle, and the other
	// backends' slots still do not move.
	if _, err := g.Drain(walker.Addr); err != nil {
		t.Fatal(err)
	}
	if n := slotsOwnedBy(g, walker); n != 0 {
		t.Fatalf("draining backend still owns %d slots", n)
	}
	tab = g.table.Load()
	for s := range tab.slots {
		for j := int8(0); j < tab.slots[s].n; j++ {
			if tab.slots[s].bs[j] == walker {
				t.Fatalf("draining backend still in slot %d chain", s)
			}
		}
		if baseline[s] != walker && tab.slots[s].bs[tab.slots[s].primary] != baseline[s] {
			t.Fatalf("slot %d moved on unrelated drain", s)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for walker.AdminState() != adminDetached {
		if time.Now().After(deadline) {
			t.Fatalf("drained backend never detached (state %s)", walker.AdminState())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// hot re-add: exact restoration again.
	if _, err := g.Add(walker.Addr, walker.StatsAddr()); err != nil {
		t.Fatal(err)
	}
	if n := slotsOwnedBy(g, walker); n != base {
		t.Fatalf("re-added backend owns %d slots, owned %d before", n, base)
	}

	close(g.done) // stop watchDetach pollers
	g.bgWG.Wait()
}

// TestProberDown verifies consecutive probe failures class a backend down
// and remove it from the ring, and that a successful probe brings it back.
func TestProberDown(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t), newFakeBackend(t)}
	g := probeGateway(t, fakes...)
	walker := g.fleet()[1]

	fakes[1].srv.Close() // now unreachable
	for i := 0; i < probeDownAfter; i++ {
		g.probeAll()
	}
	if walker.HealthClass() != healthDown {
		t.Fatalf("health = %s after %d failed probes, want down", walker.HealthClass(), probeDownAfter)
	}
	if got := g.table.Load().routable; got != 1 {
		t.Fatalf("routable = %d, want 1", got)
	}
	if n := slotsOwnedBy(g, walker); n != 0 {
		t.Fatalf("down backend still owns %d slots", n)
	}
}
