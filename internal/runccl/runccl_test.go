package runccl

import (
	"fmt"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// refIslands computes the expected Island list via the reference 1.5-pass
// labeler with compact raster numbering, accumulating the identical integer
// moments the engine uses. Because both number islands 1..K in raster order
// of first appearance, the comparison is positional, not just multiset.
func refIslands(t testing.TB, g *grid.Grid, conn grid.Connectivity) []Island {
	t.Helper()
	res, err := ccl.Label(g, ccl.Options{Connectivity: conn, CompactLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	islands := make([]Island, res.Islands)
	rowM := make([]int64, res.Islands+1)
	colM := make([]int64, res.Islands+1)
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			l := res.Labels.At(r, c)
			if l == 0 {
				continue
			}
			v := int64(g.At(r, c))
			is := &islands[l-1]
			is.Pixels++
			is.Sum += v
			rowM[l] += int64(r) * v
			colM[l] += int64(c) * v
		}
	}
	for l := 1; l <= res.Islands; l++ {
		islands[l-1].RowQ16 = q16Ratio(rowM[l], islands[l-1].Sum)
		islands[l-1].ColQ16 = q16Ratio(colM[l], islands[l-1].Sum)
	}
	return islands
}

func checkGrid(t *testing.T, g *grid.Grid, conn grid.Connectivity) {
	t.Helper()
	e, err := NewEngine(g.Rows(), g.Cols(), conn)
	if err != nil {
		t.Fatal(err)
	}
	bitmap := e.Pack(g.Flat(), nil)
	got := e.Label(bitmap, g.Flat(), nil)
	want := refIslands(t, g, conn)
	if len(got) != len(want) {
		t.Fatalf("%s %dx%d: %d islands, want %d\n%s",
			conn, g.Rows(), g.Cols(), len(got), len(want), g)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s %dx%d island %d: got %+v, want %+v\n%s",
				conn, g.Rows(), g.Cols(), i+1, got[i], want[i], g)
		}
	}
}

func TestLabelHandPicked(t *testing.T) {
	arts := []string{
		`#`,
		`.`,
		`####`,
		`#.#.#`,
		`
		 #.#
		 .#.
		 #.#
		`,
		`
		 ##..##
		 .#..#.
		 ..##..
		`,
		`
		 #######
		 #.....#
		 #.###.#
		 #.#.#.#
		 #.#####
		 #......
		 #######
		`,
		`
		 ................................................................####
		 ####............................................................####
		`,
	}
	for i, art := range arts {
		g := grid.MustParse(art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			t.Run(fmt.Sprintf("art-%d/%s", i, conn), func(t *testing.T) {
				checkGrid(t, g, conn)
			})
		}
	}
}

// TestLabelWordBoundaries exercises runs that touch, cross, and fill 64-bit
// word boundaries, where the carry logic of the extractor lives.
func TestLabelWordBoundaries(t *testing.T) {
	for _, cols := range []int{63, 64, 65, 127, 128, 130} {
		g := grid.New(3, cols)
		// Row 0: one run covering everything.
		for c := 0; c < cols; c++ {
			g.Set(0, c, 1)
		}
		// Row 1: runs ending/starting exactly at word boundaries.
		for _, c := range []int{62, 63, 64, 65, cols - 1} {
			if c < cols {
				g.Set(1, c, grid.Value(c+1))
			}
		}
		// Row 2: alternating single-pixel runs.
		for c := 0; c < cols; c += 2 {
			g.Set(2, c, 2)
		}
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			t.Run(fmt.Sprintf("cols=%d/%s", cols, conn), func(t *testing.T) {
				checkGrid(t, g, conn)
			})
		}
	}
}

func TestLabelRandom(t *testing.T) {
	rng := detector.NewRNG(1234)
	sizes := [][2]int{{1, 1}, {1, 70}, {70, 1}, {8, 10}, {16, 16}, {43, 43}, {64, 64}, {5, 129}}
	for _, sz := range sizes {
		rows, cols := sz[0], sz[1]
		for _, occ := range []float64{0.02, 0.1, 0.3, 0.6, 0.95} {
			g := grid.New(rows, cols)
			for i := 0; i < g.Pixels(); i++ {
				if rng.Float64() < occ {
					g.Flat()[i] = grid.Value(1 + rng.Intn(40))
				}
			}
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				checkGrid(t, g, conn)
			}
		}
	}
}

// TestLabelShowers runs the CTA-like workload the serving path actually sees.
func TestLabelShowers(t *testing.T) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(77)
	for ev := 0; ev < 20; ev++ {
		g := cam.Shower(cam.TypicalShower(rng), rng)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			checkGrid(t, g, conn)
		}
	}
}

// TestLabelZeroAlloc asserts the zero-steady-state-allocation contract: after
// one warmup event, Label with reused destination storage never allocates.
func TestLabelZeroAlloc(t *testing.T) {
	cam := detector.LSTCamera()
	rng := detector.NewRNG(5)
	g := cam.Shower(cam.TypicalShower(rng), rng)
	e, err := NewEngine(g.Rows(), g.Cols(), grid.FourWay)
	if err != nil {
		t.Fatal(err)
	}
	bitmap := e.Pack(g.Flat(), nil)
	islands := e.Label(bitmap, g.Flat(), nil) // warmup
	if len(islands) == 0 {
		t.Fatal("workload produced no islands")
	}
	allocs := testing.AllocsPerRun(100, func() {
		islands = e.Label(bitmap, g.Flat(), islands[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state Label allocates %.1f times per call, want 0", allocs)
	}
}

// TestLabelDstAppend checks Label appends to a non-empty destination without
// disturbing prior entries (the ServeBatch reuse pattern).
func TestLabelDstAppend(t *testing.T) {
	g := grid.MustParse(`
	 #..#
	 #..#
	`)
	e, err := NewEngine(2, 4, grid.FourWay)
	if err != nil {
		t.Fatal(err)
	}
	bitmap := e.Pack(g.Flat(), nil)
	sentinel := Island{Pixels: 99}
	out := e.Label(bitmap, g.Flat(), []Island{sentinel})
	if len(out) != 3 || out[0] != sentinel {
		t.Fatalf("append semantics broken: %+v", out)
	}
	if out[1].Pixels != 2 || out[2].Pixels != 2 {
		t.Fatalf("islands wrong: %+v", out[1:])
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(0, 5, grid.FourWay); err == nil {
		t.Fatal("zero rows must be rejected")
	}
	if _, err := NewEngine(5, 5, grid.Connectivity(3)); err == nil {
		t.Fatal("bad connectivity must be rejected")
	}
}
