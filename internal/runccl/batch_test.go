package runccl

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// randomFrame builds a random sparse values image for the given geometry.
func randomFrame(rng *detector.RNG, rows, cols int, occ float64) []grid.Value {
	v := make([]grid.Value, rows*cols)
	for i := range v {
		if rng.Float64() < occ {
			v[i] = grid.Value(1 + rng.Intn(40))
		}
	}
	return v
}

// batchFeed extracts one values image into the open batch event via the
// bitmap reference route.
func batchFeed(e *Engine, b *Batch, values []grid.Value) {
	bitmap := e.Pack(values, nil)
	b.BeginEvent()
	b.ExtractEvent(bitmap, values)
	b.EndEvent()
}

// TestBatchMatchesEngine drives several events through one batch and checks
// each event's islands are bit-identical to Engine.Label on the same frame.
func TestBatchMatchesEngine(t *testing.T) {
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		rng := detector.NewRNG(11)
		e, err := NewEngine(17, 29, conn)
		if err != nil {
			t.Fatal(err)
		}
		b := e.NewBatch()
		const nEv = 9
		frames := make([][]grid.Value, nEv)
		b.Reset()
		for i := range frames {
			frames[i] = randomFrame(rng, 17, 29, float64(i)*0.08)
			batchFeed(e, b, frames[i])
		}
		if b.Events() != nEv {
			t.Fatalf("%s: %d events, want %d", conn, b.Events(), nEv)
		}
		b.Resolve()
		for i := range frames {
			got := b.Islands(i, nil)
			want := e.Label(e.Pack(frames[i], nil), frames[i], nil)
			if len(got) != len(want) {
				t.Fatalf("%s event %d: %d islands, want %d", conn, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s event %d island %d: got %+v, want %+v", conn, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestBatchAbortEvent verifies AbortEvent rewinds the arena exactly to the
// matching BeginEvent — the preceding events' runs and the events appended
// after the abort are unaffected.
func TestBatchAbortEvent(t *testing.T) {
	rng := detector.NewRNG(5)
	e, err := NewEngine(9, 40, grid.EightWay)
	if err != nil {
		t.Fatal(err)
	}
	b := e.NewBatch()
	b.Reset()
	f0 := randomFrame(rng, 9, 40, 0.2)
	batchFeed(e, b, f0)
	runsAfterF0 := b.Runs()

	// Open an event, pollute it, and abort.
	b.BeginEvent()
	b.AddRun(0, 3, 9, 42, 100)
	b.AddRun(1, 2, 5, 7, 9)
	b.AbortEvent()
	if b.Runs() != runsAfterF0 {
		t.Fatalf("abort left %d runs, want %d", b.Runs(), runsAfterF0)
	}
	if b.Events() != 1 {
		t.Fatalf("abort left %d sealed events, want 1", b.Events())
	}

	// The same slot can be reused for a replacement event.
	f1 := randomFrame(rng, 9, 40, 0.3)
	batchFeed(e, b, f1)
	b.Resolve()
	for i, f := range [][]grid.Value{f0, f1} {
		got := b.Islands(i, nil)
		want := e.Label(e.Pack(f, nil), f, nil)
		if len(got) != len(want) {
			t.Fatalf("event %d after abort: %d islands, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("event %d island %d after abort: got %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestBatchEmptyEvents covers all-dark events: they occupy a slot, produce no
// islands, and do not perturb their neighbours.
func TestBatchEmptyEvents(t *testing.T) {
	rng := detector.NewRNG(3)
	e, err := NewEngine(12, 12, grid.FourWay)
	if err != nil {
		t.Fatal(err)
	}
	b := e.NewBatch()
	b.Reset()
	dark := make([]grid.Value, 12*12)
	lit := randomFrame(rng, 12, 12, 0.5)
	batchFeed(e, b, dark)
	batchFeed(e, b, lit)
	batchFeed(e, b, dark)
	b.Resolve()
	if got := b.Islands(0, nil); len(got) != 0 {
		t.Fatalf("dark event 0 produced %d islands", len(got))
	}
	if got := b.Islands(2, nil); len(got) != 0 {
		t.Fatalf("dark event 2 produced %d islands", len(got))
	}
	want := e.Label(e.Pack(lit, nil), lit, nil)
	got := b.Islands(1, nil)
	if len(got) != len(want) {
		t.Fatalf("lit event: %d islands, want %d", len(got), len(want))
	}
}

// TestBatchEventIsolation plants a frame whose islands touch the first and
// last rows in adjacent slots: if cross-event state leaked (cursor, previous
// row, union ranges), runs on event boundaries would merge across events.
func TestBatchEventIsolation(t *testing.T) {
	e, err := NewEngine(4, 8, grid.EightWay)
	if err != nil {
		t.Fatal(err)
	}
	// Full first and last rows: the worst case for boundary leakage.
	v := make([]grid.Value, 4*8)
	for c := 0; c < 8; c++ {
		v[c] = 3
		v[3*8+c] = 5
	}
	b := e.NewBatch()
	b.Reset()
	batchFeed(e, b, v)
	batchFeed(e, b, v)
	batchFeed(e, b, v)
	b.Resolve()
	want := e.Label(e.Pack(v, nil), v, nil)
	for i := 0; i < 3; i++ {
		got := b.Islands(i, nil)
		if len(got) != len(want) {
			t.Fatalf("event %d: %d islands, want %d (cross-event leak?)", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("event %d island %d: got %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestBatchReuse checks a Batch object is fully recycled by Reset.
func TestBatchReuse(t *testing.T) {
	rng := detector.NewRNG(17)
	e, err := NewEngine(16, 64, grid.FourWay)
	if err != nil {
		t.Fatal(err)
	}
	b := e.NewBatch()
	for round := 0; round < 5; round++ {
		b.Reset()
		f := randomFrame(rng, 16, 64, 0.25)
		batchFeed(e, b, f)
		b.Resolve()
		got := b.Islands(0, nil)
		want := e.Label(e.Pack(f, nil), f, nil)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d islands, want %d", round, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("round %d island %d: got %+v, want %+v", round, j, got[j], want[j])
			}
		}
	}
}
