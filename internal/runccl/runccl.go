// Package runccl implements bit-packed, run-based connected-component
// labeling for the software serving path.
//
// The paper's hardware design and the serving fast path in internal/adapt
// both pay a per-pixel cost: every pixel of the (mostly dark) camera image is
// visited once per event. Following the run-based software CCL of Lemaitre &
// Lacassagne (PAPERS.md), this package instead operates on *runs* — maximal
// horizontal segments of lit pixels — extracted word-at-a-time from a packed
// []uint64 bitmap with bits.TrailingZeros64. Adjacent-row run overlap (exact
// for 4-way, ±1-column dilation for 8-way) drives a union-find over runs, and
// island pixel count / charge sum / Q16.16 centroid moments are accumulated
// per run, so the per-event labeling cost scales with the number of lit runs
// (~occupancy) rather than the array area, and no labels image is ever
// materialized. At CTA-like 1–5% occupancy that is a 20–100× reduction in
// work on the labeling stage — the software analogue of the paper's II-driven
// pipelining, where throughput is set by content, not geometry.
//
// The partition produced is identical to the raster-scan union-find of
// adapt.ServeEvent and to ccl.Label(ModeFixed): two lit pixels share an
// island iff they are transitively connected under the configured
// connectivity, and islands are numbered compactly 1..K in raster order of
// first appearance. FuzzRunCCLvsPixel (internal/adapt) asserts this
// equivalence on random grids.
package runccl

import (
	"fmt"
	"math/bits"

	"github.com/wustl-adapt/hepccl/internal/ccl"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Island is one connected component's downlink summary: pixel count, charge
// sum, and centroid in Q16.16 fixed point — exactly the statistics the
// serving record carries, computed with the same integer math as the
// per-pixel path so results are bit-identical.
type Island struct {
	Pixels uint32
	Sum    int64
	RowQ16 int32
	ColQ16 int32
}

// run is one maximal horizontal segment of lit pixels. Row is implicit in
// the engine's per-row index ranges; end is exclusive.
type run struct {
	start, end int32
}

// Engine labels bit-packed binary images of one fixed geometry, reusing all
// scratch storage across calls: after the first event at a given occupancy
// high-water mark, Label performs zero allocations. An Engine is not safe
// for concurrent use; give each worker its own (as internal/server does with
// its per-shard pipelines).
type Engine struct {
	rows, cols int
	wpr        int // bitmap words per row
	eight      bool

	runs   []run
	rowOff []int32 // runs[rowOff[r]:rowOff[r+1]] = row r's runs; len rows+1
	uf     ccl.DenseUF
	remap  []int32 // run root -> compact island number
	rowM   []int64 // per-island row moment Σ row·v
	colM   []int64 // per-island col moment Σ col·v
}

// NewEngine returns an engine for rows×cols images under conn.
func NewEngine(rows, cols int, conn grid.Connectivity) (*Engine, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("runccl: invalid dimensions %dx%d", rows, cols)
	}
	if !conn.Valid() {
		return nil, fmt.Errorf("runccl: invalid connectivity %d", int(conn))
	}
	e := &Engine{
		rows:  rows,
		cols:  cols,
		wpr:   (cols + 63) / 64,
		eight: conn == grid.EightWay,
	}
	e.rowOff = make([]int32, rows+1)
	// Pre-size the run store for a typical sparse event; Label grows it on
	// demand (amortized to zero once the workload's high-water mark is seen).
	e.runs = make([]run, 0, 4*rows)
	return e, nil
}

// WordsPerRow returns the packed-bitmap stride: each image row occupies this
// many uint64 words, starting at a word boundary (bit c of the row lives in
// word c/64, bit position c%64). Bits at or beyond Cols in a row's last word
// must be zero.
func (e *Engine) WordsPerRow() int { return e.wpr }

// BitmapLen returns the required bitmap length, rows × WordsPerRow.
func (e *Engine) BitmapLen() int { return e.rows * e.wpr }

// Rows returns the configured row count.
func (e *Engine) Rows() int { return e.rows }

// Cols returns the configured column count.
func (e *Engine) Cols() int { return e.cols }

// Pack fills bitmap (reusing its capacity) with the lit-pixel bits of the
// flat row-major values image, in the engine's layout. It is the reference
// producer for tests and non-serving callers; the serving path builds the
// bitmap inline during zero-suppression instead.
func (e *Engine) Pack(values []grid.Value, bitmap []uint64) []uint64 {
	n := e.BitmapLen()
	if cap(bitmap) < n {
		bitmap = make([]uint64, n)
	}
	bitmap = bitmap[:n]
	for i := range bitmap {
		bitmap[i] = 0
	}
	for r := 0; r < e.rows; r++ {
		rowBase := r * e.cols
		wordBase := r * e.wpr
		for c := 0; c < e.cols; c++ {
			if values[rowBase+c] != 0 {
				bitmap[wordBase+c>>6] |= 1 << uint(c&63)
			}
		}
	}
	return bitmap
}

// Label labels the packed bitmap, accumulates per-island statistics from the
// flat row-major values image (len rows×cols; only lit pixels are read), and
// appends one Island per component to dst in compact raster order of first
// appearance. dst is returned grown; pass dst[:0] of a reused slice for the
// zero-allocation steady state.
//
//hepccl:hotpath
func (e *Engine) Label(bitmap []uint64, values []grid.Value, dst []Island) []Island {
	//hepccl:coldpath
	if len(bitmap) != e.BitmapLen() {
		panic(fmt.Sprintf("runccl: bitmap length %d, want %d", len(bitmap), e.BitmapLen()))
	}
	//hepccl:coldpath
	if len(values) != e.rows*e.cols {
		panic(fmt.Sprintf("runccl: values length %d, want %d", len(values), e.rows*e.cols))
	}
	e.extract(bitmap)
	e.connect()
	return e.accumulate(values, dst)
}

// extract sweeps the bitmap word-at-a-time and emits the per-row run lists.
// Cost is O(words + runs): dark words cost one load and one compare.
func (e *Engine) extract(bitmap []uint64) {
	if e.wpr == 1 {
		e.extractNarrow(bitmap)
		return
	}
	runs := e.runs[:0]
	wpr := e.wpr
	rowOff := e.rowOff[:e.rows]
	for r := range rowOff {
		rowOff[r] = int32(len(runs))
		// Label's entry check pins len(bitmap) to rows·wpr, so the per-row
		// window is in range — a contract the compiler cannot see from here.
		//hepccl:checked
		words := bitmap[r*wpr : (r+1)*wpr]
		openStart, openEnd := int32(-1), int32(-1)
		for w, x := range words {
			base := int32(w) << 6
			for x != 0 {
				s := bits.TrailingZeros64(x)
				n := bits.TrailingZeros64(^(x >> uint(s))) // run length 1..64
				start := base + int32(s)
				end := start + int32(n)
				if start == openEnd {
					// Continues a run that reached the previous word's end.
					openEnd = end
				} else {
					if openStart >= 0 {
						runs = append(runs, run{openStart, openEnd})
					}
					openStart, openEnd = start, end
				}
				// Clear the consumed run. Go defines x<<64 == 0, so the
				// all-ones word (s=0, n=64) produces mask ^0.
				x &^= ((uint64(1) << uint(n)) - 1) << uint(s)
			}
		}
		if openStart >= 0 {
			runs = append(runs, run{openStart, openEnd})
		}
	}
	e.rowOff[e.rows] = int32(len(runs))
	e.runs = runs
}

// extractNarrow is extract specialized to images at most 64 columns wide
// (one word per row — every geometry the paper studies): runs never span
// words, so the cross-word carry and per-row reslicing disappear and each
// run costs two TrailingZeros64 and one carry-clear.
func (e *Engine) extractNarrow(bitmap []uint64) {
	runs := e.runs[:0]
	// One row per word, so tying the offsets view to the bitmap's length
	// makes the per-row store check-free.
	rowOff := e.rowOff[:len(bitmap)]
	for r, x := range bitmap {
		rowOff[r] = int32(len(runs))
		for x != 0 {
			s := bits.TrailingZeros64(x)
			// First zero at or above s = exclusive run end; for the all-ones
			// word the complement is 0 and TrailingZeros64 yields 64.
			end := bits.TrailingZeros64(^(x | (1<<uint(s) - 1)))
			runs = append(runs, run{int32(s), int32(end)})
			// Adding 1<<s carries through the run's set bits; the AND keeps
			// only the bits above it.
			x &= x + 1<<uint(s)
		}
	}
	e.rowOff[e.rows] = int32(len(runs))
	e.runs = runs
}

// connect unions vertically adjacent runs. Both rows' run lists are sorted
// and disjoint, so one two-pointer sweep per row pair suffices; a previous-row
// run can overlap several current-row runs (and vice versa), which the
// non-advancing inner scan handles.
func (e *Engine) connect() {
	runs := e.runs
	e.uf.Reset(len(runs))
	// ±1 column dilation turns 8-way corner adjacency into overlap.
	var dil int32
	if e.eight {
		dil = 1
	}
	rowOff := e.rowOff[:e.rows+1]
	if len(rowOff) < 3 {
		return // a single row has no vertical adjacency
	}
	// Three equal-length shifted views of the fence let one range bound
	// cover all three per-row loads.
	offA := rowOff[: len(rowOff)-2 : len(rowOff)-2]
	offB := rowOff[1 : len(rowOff)-1 : len(rowOff)-1]
	offC := rowOff[2:]
	for r := range offA {
		lo, hiOff := offA[r], offB[r]
		cur, curEnd := hiOff, offC[r]
		if lo == hiOff || cur == curEnd {
			continue // an empty row cannot connect its neighbors
		}
		// Row-local views: two checks per row pair here (the fence values
		// are loads the compiler cannot bound — rowOff is monotone with
		// rowOff[rows] == len(runs)) buy check-free two-pointer sweeps.
		//hepccl:checked
		prev := runs[lo:hiOff]
		//hepccl:checked same fence invariant
		cur2 := runs[cur:curEnd]
		jj := 0
		for i := range cur2 {
			a := cur2[i].start - dil
			b := cur2[i].end + dil
			j := int(uint32(jj))
			for j < len(prev) && prev[j].end <= a {
				j++
			}
			jj = j
			for k := int(uint32(j)); k < len(prev) && prev[k].start < b; k++ {
				e.uf.Union(cur+int32(i), lo+int32(k))
			}
		}
	}
}

// accumulate resolves every run to its island, numbering islands compactly in
// raster order of first appearance (run order is raster order of first
// pixels, so this matches the per-pixel path exactly), and folds each run's
// pixels into the island statistics. Only lit pixels are read from values.
func (e *Engine) accumulate(values []grid.Value, dst []Island) []Island {
	e.uf.Flatten()
	nr := len(e.runs)
	//hepccl:amortized
	if cap(e.remap) < nr {
		e.remap = make([]int32, nr)
	}
	//hepccl:amortized
	if len(e.rowM) < nr+1 {
		e.rowM = make([]int64, nr+1)
		e.colM = make([]int64, nr+1)
	}
	remap := e.remap[:nr]
	for i := range remap {
		remap[i] = 0
	}
	// Islands number at most runs; grow dst to the ceiling once and index it,
	// truncating to the islands actually emitted at the end.
	base := len(dst)
	//hepccl:amortized
	if cap(dst) < base+nr {
		grown := make([]Island, base+nr, base+nr+nr/2+8)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[: base+nr : cap(dst)]
	out := dst[base:]
	rows, cols := e.rows, e.cols
	runs, rowOff := e.runs, e.rowOff[:rows+1]
	rowM, colM := e.rowM, e.colM
	k := int32(0)
	// The island-label indexes below (root, cl) are loaded or counted
	// values: Flatten pins root < nr and compact numbering keeps cl ≤ k ≤
	// nr, invariants outside compiler range proofs. Everything provable —
	// the row fence, the run loads, the per-pixel value loads — is hoisted
	// into per-row and per-run slice headers instead.
	//hepccl:checked
	for row := 0; row < rows; row++ {
		rowVals := values[row*cols:][:cols]
		for i := rowOff[row]; i < rowOff[row+1]; i++ {
			root := e.uf.Root(i)
			cl := remap[root]
			if cl == 0 {
				k++
				cl = k
				remap[root] = cl
				out[cl-1] = Island{}
				rowM[cl] = 0
				colM[cl] = 0
			}
			rn := runs[i]
			var sum, colm int64
			vals := rowVals[:rn.end]
			for c := int(uint32(rn.start)); c < len(vals); c++ {
				v := int64(vals[c])
				sum += v
				colm += int64(c) * v
			}
			is := &out[cl-1]
			is.Pixels += uint32(rn.end - rn.start)
			is.Sum += sum
			rowM[cl] += int64(row) * sum
			colM[cl] += colm
		}
	}
	// Reslicing everything to the island count k gives the finish loop one
	// shared bound.
	fin := out[:k]
	rm := rowM[1 : 1+len(fin)]
	cm := colM[1 : 1+len(fin)]
	for l := range fin {
		is := &fin[l]
		is.RowQ16 = q16Ratio(rm[l], is.Sum)
		is.ColQ16 = q16Ratio(cm[l], is.Sum)
	}
	return dst[:base+int(k)]
}

// q16Ratio returns round(num/den × 2^16) in Q16.16 — the identical rounding
// used by adapt.ServeEvent and the streaming centroid divider, so the two
// backends produce bit-identical centroids.
func q16Ratio(num, den int64) int32 {
	if den == 0 {
		return 0
	}
	return int32((num<<16 + den/2) / den)
}
