package runccl

import (
	"math/bits"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// Batch is the batch-resident labeling state behind adapt.ServeBatch: one
// flat arena of runs spanning every event of a serving batch, following Chen
// et al.'s GPU-optimized union-find (arXiv:1708.08180) in treating label
// resolution as a data-parallel reduction over flat arrays rather than a
// per-event pointer-chasing pass.
//
// The serving front end streams each event's runs in raster order with
// AddRun, which links vertically adjacent runs into a single flat []int32
// parent array as they arrive — the merge inner loop is the two-pointer
// overlap sweep of Engine.connect, with the union's link step predicated
// (sign-mask min/max blend, unconditional store) instead of branched. Events
// occupy disjoint index ranges of the arena, so no cross-event union can
// occur and one Resolve — a single ascending path-halving sweep over the
// whole batch — resolves every run of every event to its root. Islands then
// scatters per-run accumulators (charge, column moment, pixel count, all
// folded at decode time while the event's samples were still in L1/L2) into
// per-island statistics, one event at a time, at batch end.
//
// The partition, island numbering (compact 1..K in raster order of first
// appearance), statistics, and Q16.16 rounding are bit-identical to
// Engine.Label on the same events; adapt's FuzzBatchVsSingle enforces this
// against both the single-event engine and the per-pixel reference. A Batch
// is not safe for concurrent use; servers give each worker pipeline its own.
type Batch struct {
	rows, cols int
	dil        int32 // ±1 column dilation under 8-way connectivity

	// Flat batch-resident run store. All slices grow to the workload's
	// high-water mark and are reused across batches; indexes are global run
	// ids spanning the whole batch.
	rStart []int32
	rEnd   []int32
	rRow   []int32
	rSum   []int64 // Σ value over the run, folded at decode time
	rColM  []int64 // Σ col·value over the run, folded at decode time
	parent []int32 // union-find forest over all runs of the batch
	evOff  []int32 // event e's runs are [evOff[e], evOff[e+1]); len events+1

	// In-progress event state: the open row's first run, the previous row's
	// run range, and the two-pointer cursor into it.
	curRow         int32
	curLo          int32
	prevLo, prevHi int32
	cursor         int32

	// Per-event scatter scratch, sized to the largest event's run count.
	remap   []int32
	islPix  []uint32
	islSum  []int64
	islRowM []int64
	islColM []int64
}

// NewBatch returns batch-resident labeling state for the engine's geometry
// and connectivity. The Batch shares nothing with the Engine but its
// configuration; one Engine can anchor any number of Batches.
func (e *Engine) NewBatch() *Batch {
	b := &Batch{rows: e.rows, cols: e.cols}
	if e.eight {
		b.dil = 1
	}
	b.evOff = make([]int32, 1, 64)
	return b
}

// Reset discards all batch state, keeping the arenas. Call once per batch
// before the first BeginEvent.
//
//hepccl:hotpath
func (b *Batch) Reset() {
	b.rStart = b.rStart[:0]
	b.rEnd = b.rEnd[:0]
	b.rRow = b.rRow[:0]
	b.rSum = b.rSum[:0]
	b.rColM = b.rColM[:0]
	b.parent = b.parent[:0]
	b.evOff = b.evOff[:1]
}

// BeginEvent opens a new event: subsequent AddRun calls belong to it until
// EndEvent or AbortEvent.
//
//hepccl:hotpath
func (b *Batch) BeginEvent() {
	lo := int32(len(b.parent))
	b.curLo = lo
	b.prevLo, b.prevHi = lo, lo
	b.cursor = lo
	// -2 so the first run's row (≥ 0) can never read as curRow+1 and connect
	// into the previous event's last row.
	b.curRow = -2
}

// EndEvent seals the open event and returns its index within the batch.
//
//hepccl:hotpath
func (b *Batch) EndEvent() int {
	b.evOff = append(b.evOff, int32(len(b.parent)))
	return len(b.evOff) - 2
}

// AbortEvent discards every run the open event appended, leaving the batch
// exactly as it was at the matching BeginEvent. The serving front end uses it
// to fall back to the reference decode route mid-event.
func (b *Batch) AbortEvent() {
	lo := b.evOff[len(b.evOff)-1]
	b.rStart = b.rStart[:lo]
	b.rEnd = b.rEnd[:lo]
	b.rRow = b.rRow[:lo]
	b.rSum = b.rSum[:lo]
	b.rColM = b.rColM[:lo]
	b.parent = b.parent[:lo]
}

// Events returns the number of sealed events in the batch.
func (b *Batch) Events() int { return len(b.evOff) - 1 }

// Runs returns the total run count across the batch (sealed + open).
func (b *Batch) Runs() int { return len(b.parent) }

// AddRun appends one maximal run of lit pixels — [start, end) on row, with
// its value sum and column moment already folded — and merges it with the
// overlapping runs of the previous row in the same pass. Runs must arrive in
// raster order (rows non-decreasing, starts increasing within a row): exactly
// the order any decode or extraction pass produces them.
//
//hepccl:hotpath
func (b *Batch) AddRun(row, start, end int32, sum, colm int64) {
	i := int32(len(b.parent))
	b.rStart = append(b.rStart, start)
	b.rEnd = append(b.rEnd, end)
	b.rRow = append(b.rRow, row)
	b.rSum = append(b.rSum, sum)
	b.rColM = append(b.rColM, colm)
	b.parent = append(b.parent, i)
	if row != b.curRow {
		if row == b.curRow+1 {
			b.prevLo, b.prevHi = b.curLo, i
		} else {
			// A row gap: nothing above can connect.
			b.prevLo, b.prevHi = i, i
		}
		b.curLo = i
		b.curRow = row
		b.cursor = b.prevLo
	}
	// Two-pointer overlap sweep against the previous row's runs. Both lists
	// are sorted and disjoint, so the cursor only ever advances within a row;
	// a previous-row run can still overlap several current-row runs, which
	// the non-advancing k scan handles.
	a := start - b.dil
	bb := end + b.dil
	// Slicing both run arrays to prevHi puts the sweep bound in the slice
	// header, and the uint32 round trip proves the cursor non-negative, so
	// neither sweep carries a bounds check.
	j := int(uint32(b.cursor))
	ends := b.rEnd[:b.prevHi]
	for j < len(ends) && ends[j] <= a {
		j++
	}
	b.cursor = int32(j)
	starts := b.rStart[:b.prevHi]
	p := b.parent
	// A second uint32 round trip: j's non-negativity does not survive the
	// skip loop's phi, so re-prove it for the merge sweep.
	for k := int(uint32(j)); k < len(starts) && starts[k] < bb; k++ {
		//hepccl:checked inlined unionPred chases loaded parent pointers; see its invariant
		unionPred(p, i, int32(k))
	}
}

// unionPred merges the sets of a and b in the flat parent array: path-halving
// finds, then a predicated link — sign-mask min/max blend and an
// unconditional parent store (self-assignment when the roots coincide) — in
// place of the usual three-way root comparison. The smaller root always
// survives, preserving parent[x] ≤ x, which is what lets Resolve finish in
// one ascending sweep.
//
//hepccl:hotpath
func unionPred(p []int32, a, b int32) {
	// Both chases index with loaded parent values. Entries are initialized
	// to their own index and unions only ever store smaller roots, so
	// 0 ≤ p[x] ≤ x < len(p) throughout — a data invariant no compiler
	// range proof covers.
	//hepccl:checked
	for p[a] != a {
		p[a] = p[p[a]]
		a = p[a]
	}
	//hepccl:checked
	for p[b] != b {
		p[b] = p[p[b]]
		b = p[b]
	}
	d := b - a
	m := d & (d >> 31)
	p[b-m] = a + m
}

// Resolve flattens the whole batch's forest with a single ascending sweep:
// because every union links the larger root under the smaller and path
// halving only ever shortens chains, parent[i] < i points at an
// already-resolved element, so p[i] = p[p[i]] lands every run of every event
// on its root in one pass over the flat array — the batched analogue of
// DenseUF.Flatten, and the data-parallel label-resolution step of Chen et
// al.'s formulation.
//
//hepccl:hotpath
func (b *Batch) Resolve() {
	p := b.parent
	// The inner index is the loaded parent value: parent[i] ≤ i < len(p)
	// (the smaller root always survives a union), out of range-proof reach.
	//hepccl:checked
	for i := range p {
		p[i] = p[p[i]]
	}
}

// Islands scatters event ev's per-run accumulators into per-island statistics
// and appends one Island per component to dst, numbered compactly in raster
// order of first appearance — bit-identical to Engine.Label's output for the
// same event. Call only after Resolve; dst follows the usual reuse contract.
//
//hepccl:hotpath
func (b *Batch) Islands(ev int, dst []Island) []Island {
	lo, hi := b.evOff[ev], b.evOff[ev+1]
	n := int(hi - lo)
	if n == 0 {
		return dst
	}
	//hepccl:amortized
	if cap(b.remap) < n {
		b.remap = make([]int32, n)
		b.islPix = make([]uint32, n)
		b.islSum = make([]int64, n)
		b.islRowM = make([]int64, n)
		b.islColM = make([]int64, n)
	}
	remap := b.remap[:n]
	for i := range remap {
		remap[i] = 0
	}
	islPix := b.islPix[:n]
	islSum := b.islSum[:n]
	islRowM := b.islRowM[:n]
	islColM := b.islColM[:n]
	// Event-local views put the run range in the slice headers, so the
	// i-indexed loads below are check-free.
	pp := b.parent[lo:hi]
	rEnd := b.rEnd[lo:hi:hi]
	rStart := b.rStart[lo:hi:hi]
	rSum := b.rSum[lo:hi:hi]
	rRow := b.rRow[lo:hi:hi]
	rColM := b.rColM[lo:hi:hi]
	k := int32(0)
	// The remap and isl* indexes are loaded or counted labels: unions never
	// cross events, so root ∈ [0, n), and cl ∈ [1, k] with k ≤ n — data
	// invariants outside compiler range proofs.
	//hepccl:checked
	for i := range pp {
		root := pp[i] - lo
		cl := remap[root]
		if cl == 0 {
			k++
			cl = k
			remap[root] = cl
			islPix[cl-1] = 0
			islSum[cl-1] = 0
			islRowM[cl-1] = 0
			islColM[cl-1] = 0
		}
		islPix[cl-1] += uint32(rEnd[i] - rStart[i])
		islSum[cl-1] += rSum[i]
		islRowM[cl-1] += int64(rRow[i]) * rSum[i]
		islColM[cl-1] += rColM[i]
	}
	base := len(dst)
	//hepccl:amortized
	if cap(dst) < base+int(k) {
		grown := make([]Island, base+int(k), base+int(k)+int(k)/2+8)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[: base+int(k) : cap(dst)]
	// Reslicing every array to the island count k lets the compiler carry
	// one shared bound through the copy loop.
	out := dst[base:][:k]
	pix := islPix[:k]
	sums := islSum[:k]
	rowm := islRowM[:k]
	colm := islColM[:k]
	for l := range out {
		out[l] = Island{
			Pixels: pix[l],
			Sum:    sums[l],
			RowQ16: q16Ratio(rowm[l], sums[l]),
			ColQ16: q16Ratio(colm[l], sums[l]),
		}
	}
	return dst
}

// ExtractEvent feeds the open event from a packed lit bitmap and its values
// image — the reference producer the serving front end falls back to when an
// event's packets are not in canonical order (the fused decode cannot stream
// runs directly then). It is the word-at-a-time extraction of Engine.extract,
// folding each run's value sum and column moment inline so the downstream
// batch machinery sees exactly what the fast path would have produced.
func (b *Batch) ExtractEvent(bitmap []uint64, values []grid.Value) {
	wpr := (b.cols + 63) / 64
	// The packed-frame contract sizes bitmap to rows·wpr words and values to
	// rows·cols samples; the row sub-slices below are in range by that
	// contract, which the compiler cannot see across the call boundary.
	//hepccl:checked
	for r := 0; r < b.rows; r++ {
		words := bitmap[r*wpr : (r+1)*wpr]
		rowBase := r * b.cols
		openStart, openEnd := int32(-1), int32(-1)
		for w, x := range words {
			wordBase := int32(w) << 6
			for x != 0 {
				s := bits.TrailingZeros64(x)
				n := bits.TrailingZeros64(^(x >> uint(s))) // run length 1..64
				start := wordBase + int32(s)
				end := start + int32(n)
				if start == openEnd {
					openEnd = end // continues through the word boundary
				} else {
					if openStart >= 0 {
						b.addExtracted(int32(r), openStart, openEnd, values[rowBase:])
					}
					openStart, openEnd = start, end
				}
				// Clear the consumed run; x<<64 == 0 covers the all-ones word.
				x &^= ((uint64(1) << uint(n)) - 1) << uint(s)
			}
		}
		if openStart >= 0 {
			b.addExtracted(int32(r), openStart, openEnd, values[rowBase:])
		}
	}
}

// addExtracted folds one extracted run's statistics from the values row and
// hands it to AddRun.
func (b *Batch) addExtracted(row, start, end int32, rowVals []grid.Value) {
	var sum, colm int64
	// One check at the reslice replaces a per-sample check: the loop bound
	// is the slice length and the uint32 round trip proves start ≥ 0.
	vals := rowVals[:end]
	for c := int(uint32(start)); c < len(vals); c++ {
		v := int64(vals[c])
		sum += v
		colm += int64(c) * v
	}
	b.AddRun(row, start, end, sum, colm)
}
