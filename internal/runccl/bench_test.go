package runccl

import (
	"fmt"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/detector"
	"github.com/wustl-adapt/hepccl/internal/grid"
)

// occupancyGrid builds a rows×cols grid with ~occ lit fraction.
func occupancyGrid(rows, cols int, occ float64, seed uint64) *grid.Grid {
	rng := detector.NewRNG(seed)
	g := grid.New(rows, cols)
	for i := 0; i < g.Pixels(); i++ {
		if rng.Float64() < occ {
			g.Flat()[i] = grid.Value(1 + rng.Intn(40))
		}
	}
	return g
}

// BenchmarkLabel sweeps the engine across array sizes and occupancies. The
// run-based cost should track occupancy (lit content), not area: compare
// ns/op down an occupancy column versus across a size row.
func BenchmarkLabel(b *testing.B) {
	sizes := [][2]int{{8, 10}, {16, 16}, {32, 32}, {43, 43}, {64, 64}}
	occs := []float64{0.005, 0.02, 0.10, 0.50}
	for _, sz := range sizes {
		for _, occ := range occs {
			rows, cols := sz[0], sz[1]
			b.Run(fmt.Sprintf("%dx%d/occ=%g%%", rows, cols, occ*100), func(b *testing.B) {
				g := occupancyGrid(rows, cols, occ, 42)
				e, err := NewEngine(rows, cols, grid.FourWay)
				if err != nil {
					b.Fatal(err)
				}
				bitmap := e.Pack(g.Flat(), nil)
				islands := e.Label(bitmap, g.Flat(), nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					islands = e.Label(bitmap, g.Flat(), islands[:0])
				}
			})
		}
	}
}

// BenchmarkPack measures the reference bitmap producer (the serving path
// builds its bitmap inline during zero-suppression instead).
func BenchmarkPack(b *testing.B) {
	g := occupancyGrid(43, 43, 0.02, 42)
	e, err := NewEngine(43, 43, grid.FourWay)
	if err != nil {
		b.Fatal(err)
	}
	bitmap := e.Pack(g.Flat(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitmap = e.Pack(g.Flat(), bitmap)
	}
}
