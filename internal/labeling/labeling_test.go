package labeling

import (
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

var fixtures = []struct {
	name  string
	art   string
	want4 int // component count, 4-way
	want8 int // component count, 8-way
}{
	{"empty", "...\n...\n...", 0, 0},
	{"single", "...\n.#.\n...", 1, 1},
	{"full", "###\n###\n###", 1, 1},
	{"diagonal", "#..\n.#.\n..#", 3, 1},
	{"anti-diagonal", "..#\n.#.\n#..", 3, 1},
	{"two-blobs", "##..\n##..\n..##\n..##", 2, 1},
	{"separate", "#.#\n...\n#.#", 4, 4},
	{"u-shape", "#.#\n#.#\n###", 1, 1},
	{"ring", "###\n#.#\n###", 1, 1},
	{"checkerboard", "#.#.\n.#.#\n#.#.\n.#.#", 8, 1},
	{"horizontal-line", "####", 1, 1},
	{"vertical-line", "#\n#\n#\n#", 1, 1},
	{"single-pixel-grid", "#", 1, 1},
	{"dark-single", ".", 0, 0},
	{"staircase", "#....\n##...\n.##..\n..##.\n...##", 1, 1},
	{"w-shape", "#...#\n#.#.#\n#.#.#\n##.##", 3, 1},
	{
		// The merge-heavy pattern of Fig 5's flavor: multiple fingers joining
		// at the bottom, creating transitive merge chains.
		"comb",
		`
		#.#.#.#.#.
		#.#.#.#.#.
		##########
		`,
		1, 1,
	},
	{
		// Spiral: a single 4-way component requiring many provisional groups.
		"spiral",
		`
		#######
		......#
		#####.#
		#...#.#
		#.#.#.#
		#.###.#
		#.....#
		#######
		`,
		1, 1,
	},
	{
		// Diagonal stripes: many 4-way components, fewer 8-way.
		"stripes",
		`
		#..#..
		.#..#.
		..#..#
		#..#..
		`,
		8, 3,
	},
}

func TestFixtureComponentCounts(t *testing.T) {
	for _, lab := range All() {
		for _, fx := range fixtures {
			g := grid.MustParse(fx.art)
			for _, tc := range []struct {
				conn grid.Connectivity
				want int
			}{{grid.FourWay, fx.want4}, {grid.EightWay, fx.want8}} {
				labels, err := lab.Label(g, tc.conn)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", lab.Name(), fx.name, tc.conn, err)
				}
				if got := labels.Count(); got != tc.want {
					t.Errorf("%s/%s/%v: %d components, want %d\n%s\n%s",
						lab.Name(), fx.name, tc.conn, got, tc.want, g, labels)
				}
			}
		}
	}
}

func TestAllAgreeWithGoldenOnFixtures(t *testing.T) {
	golden := FloodFill{}
	for _, fx := range fixtures {
		g := grid.MustParse(fx.art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				t.Fatal(err)
			}
			for _, lab := range All()[1:] {
				got, err := lab.Label(g, conn)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", lab.Name(), fx.name, conn, err)
				}
				if !got.Isomorphic(want) {
					t.Errorf("%s/%s/%v: not isomorphic to flood fill\ngot:\n%s\nwant:\n%s",
						lab.Name(), fx.name, conn, got, want)
				}
			}
		}
	}
}

func TestInvalidConnectivity(t *testing.T) {
	g := grid.MustParse("#")
	for _, lab := range All() {
		if _, err := lab.Label(g, grid.Connectivity(5)); err == nil {
			t.Errorf("%s: invalid connectivity must error", lab.Name())
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"floodfill": true, "two-pass": true, "single-pass": true,
		"fast-two-pass": true, "run-based": true, "contour-tracing": true,
	}
	for _, lab := range All() {
		if !want[lab.Name()] {
			t.Errorf("unexpected labeler name %q", lab.Name())
		}
		delete(want, lab.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing labelers: %v", want)
	}
}

func TestLabelsArePositiveAndCoverLitPixels(t *testing.T) {
	g := grid.MustParse("##.#\n.#..\n#..#")
	for _, lab := range All() {
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			labels, err := lab.Label(g, conn)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < g.Rows(); r++ {
				for c := 0; c < g.Cols(); c++ {
					l := labels.At(r, c)
					if g.Lit(r, c) && l <= 0 {
						t.Fatalf("%s/%v: lit pixel (%d,%d) has label %d", lab.Name(), conn, r, c, l)
					}
					if !g.Lit(r, c) && l != 0 {
						t.Fatalf("%s/%v: dark pixel (%d,%d) has label %d", lab.Name(), conn, r, c, l)
					}
				}
			}
		}
	}
}

// randomGrid builds a deterministic pseudo-random grid from a byte matrix,
// with roughly the given lit permille.
func randomGrid(cells []byte, rows, cols int, litPermille int) *grid.Grid {
	g := grid.New(rows, cols)
	for i := 0; i < rows*cols && i < len(cells); i++ {
		if int(cells[i])*1000/256 < litPermille {
			g.Flat()[i] = grid.Value(cells[i]) + 1
		}
	}
	return g
}

// Property: every algorithm is label-isomorphic to flood fill on random
// grids, across densities and both connectivities.
func TestAgreementProperty(t *testing.T) {
	golden := FloodFill{}
	for _, density := range []int{100, 300, 500, 700, 900} {
		density := density
		f := func(cells [96]byte) bool {
			g := randomGrid(cells[:], 8, 12, density)
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				want, err := golden.Label(g, conn)
				if err != nil {
					return false
				}
				for _, lab := range All()[1:] {
					got, err := lab.Label(g, conn)
					if err != nil || !got.Isomorphic(want) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("density %d: %v", density, err)
		}
	}
}

// Property: 4-way components refine 8-way components — every 4-way component
// lies entirely inside one 8-way component.
func TestRefinementProperty(t *testing.T) {
	golden := FloodFill{}
	f := func(cells [96]byte) bool {
		g := randomGrid(cells[:], 8, 12, 500)
		l4, err := golden.Label(g, grid.FourWay)
		if err != nil {
			return false
		}
		l8, err := golden.Label(g, grid.EightWay)
		if err != nil {
			return false
		}
		to8 := map[grid.Label]grid.Label{}
		for i := 0; i < g.Pixels(); i++ {
			a, b := l4.AtFlat(i), l8.AtFlat(i)
			if (a == 0) != (b == 0) {
				return false
			}
			if a == 0 {
				continue
			}
			if prev, ok := to8[a]; ok && prev != b {
				return false // one 4-way component spans two 8-way components
			}
			to8[a] = b
		}
		// And 8-way can never have more components than 4-way.
		return l8.Count() <= l4.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: labeling is invariant under value scaling (only litness matters).
func TestValueInvarianceProperty(t *testing.T) {
	golden := FloodFill{}
	f := func(cells [48]byte, scale uint8) bool {
		g := randomGrid(cells[:], 6, 8, 400)
		scaled := g.Clone()
		k := grid.Value(scale%7) + 2
		for i, v := range scaled.Flat() {
			scaled.Flat()[i] = v * k
		}
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			a, err1 := golden.Label(g, conn)
			b, err2 := golden.Label(scaled, conn)
			if err1 != nil || err2 != nil || !a.Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
