package labeling

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/unionfind"
)

// RunBased implements run-length-encoded CCL, the third major algorithm
// family in He et al.'s review [15] alongside pixel-scan and contour
// methods: each row is compressed into maximal runs of lit pixels, runs are
// labeled (not pixels), and adjacency between runs of consecutive rows
// drives the merging. For the sparse, blobby images particle detectors
// produce, the number of runs is far below the number of pixels, which is
// the family's appeal.
type RunBased struct{}

// Name implements Labeler.
func (RunBased) Name() string { return "run-based" }

// run is one maximal horizontal segment of lit pixels.
type run struct {
	row, c0, c1 int // inclusive column bounds
	label       grid.Label
}

// Label implements Labeler.
func (RunBased) Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error) {
	if !conn.Valid() {
		return nil, fmt.Errorf("labeling: invalid connectivity %d", int(conn))
	}
	rows, cols := g.Rows(), g.Cols()
	uf := unionfind.NewForest((rows*cols + 1) / 2)

	// Extract runs row by row, connecting to the previous row's runs.
	// 8-way widens the overlap window by one column on each side.
	reach := 0
	if conn == grid.EightWay {
		reach = 1
	}
	var prev, cur []run
	all := make([]run, 0, 64)
	for r := 0; r < rows; r++ {
		cur = cur[:0]
		for c := 0; c < cols; {
			if !g.Lit(r, c) {
				c++
				continue
			}
			start := c
			for c < cols && g.Lit(r, c) {
				c++
			}
			rn := run{row: r, c0: start, c1: c - 1}
			// Merge with every overlapping run in the previous row.
			for _, p := range prev {
				if p.c1+reach >= rn.c0 && p.c0-reach <= rn.c1 {
					if rn.label == 0 {
						rn.label = p.label
					} else {
						uf.Union(rn.label, p.label)
					}
				}
			}
			if rn.label == 0 {
				l, err := uf.MakeSet()
				if err != nil {
					return nil, fmt.Errorf("labeling: run-based: %w", err)
				}
				rn.label = l
			}
			cur = append(cur, rn)
		}
		all = append(all, cur...)
		prev, cur = cur, prev
	}

	// Paint runs through the resolved forest.
	out := grid.NewLabels(rows, cols)
	for _, rn := range all {
		l := uf.Find(rn.label)
		for c := rn.c0; c <= rn.c1; c++ {
			out.Set(rn.row, c, l)
		}
	}
	return out, nil
}
