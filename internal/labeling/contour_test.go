package labeling

import (
	"testing"
	"testing/quick"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

func TestContourTracingFixtures(t *testing.T) {
	golden := FloodFill{}
	for _, fx := range fixtures {
		g := grid.MustParse(fx.art)
		for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
			want, err := golden.Label(g, conn)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ContourTracing{}.Label(g, conn)
			if err != nil {
				t.Fatalf("%s/%v: %v", fx.name, conn, err)
			}
			if !got.Isomorphic(want) {
				t.Errorf("%s/%v:\n%s\ngot:\n%s\nwant iso to:\n%s", fx.name, conn, g, got, want)
			}
		}
	}
}

func TestContourTracingRings(t *testing.T) {
	// Internal contours: a ring has one external and one internal contour.
	g := grid.MustParse(`
		.....
		.###.
		.#.#.
		.###.
		.....
	`)
	for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
		got, err := ContourTracing{}.Label(g, conn)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != 1 {
			t.Fatalf("%v ring components = %d, want 1\n%s", conn, got.Count(), got)
		}
	}
	// Nested rings: two components, one inside the other's hole.
	nested := grid.MustParse(`
		#######
		#.....#
		#.###.#
		#.#.#.#
		#.###.#
		#.....#
		#######
	`)
	got, err := ContourTracing{}.Label(nested, grid.EightWay)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 2 {
		t.Fatalf("nested rings = %d components, want 2\n%s", got.Count(), got)
	}
}

func TestContourTracingInvalidConn(t *testing.T) {
	if _, err := (ContourTracing{}).Label(grid.New(1, 1), grid.Connectivity(9)); err == nil {
		t.Fatal("invalid connectivity must error")
	}
}

// Property: contour tracing matches the golden model on random images at
// several densities, for both connectivities.
func TestContourTracingGoldenProperty(t *testing.T) {
	golden := FloodFill{}
	for _, density := range []int{150, 400, 650, 850} {
		density := density
		f := func(cells [120]byte) bool {
			g := randomGrid(cells[:], 10, 12, density)
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				want, err := golden.Label(g, conn)
				if err != nil {
					return false
				}
				got, err := ContourTracing{}.Label(g, conn)
				if err != nil || !got.Isomorphic(want) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("density %d: %v", density, err)
		}
	}
}

// Exhaustive: every 3×4 and 4×4 binary image.
func TestContourTracingExhaustive(t *testing.T) {
	golden := FloodFill{}
	for _, shape := range [][2]int{{3, 4}, {4, 4}} {
		rows, cols := shape[0], shape[1]
		n := rows * cols
		g := grid.New(rows, cols)
		for mask := 0; mask < 1<<n; mask++ {
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					g.Flat()[i] = 1
				} else {
					g.Flat()[i] = 0
				}
			}
			for _, conn := range []grid.Connectivity{grid.FourWay, grid.EightWay} {
				want, err := golden.Label(g, conn)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ContourTracing{}.Label(g, conn)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Isomorphic(want) {
					t.Fatalf("%dx%d mask %d (%v):\n%s\ngot:\n%s\nwant iso to:\n%s",
						rows, cols, mask, conn, g, got, want)
				}
			}
		}
	}
}
