// Package labeling implements the reference and baseline CCL algorithms the
// paper discusses in §3, behind a common interface, so the 1.5-pass design
// can be validated and compared against the literature:
//
//   - FloodFill: breadth-first flood fill. The golden model — obviously
//     correct, used as ground truth by every test.
//   - TwoPass: the classic Rosenfeld–Pfaltz two-pass algorithm [19]:
//     provisional labels + equivalences in pass one, full relabeling scan in
//     pass two.
//   - SinglePass: Bailey–Johnston style single-pass labeling [2] that
//     resolves equivalences on the fly with a flat representative table and
//     relabels the current row buffer, so labels are final as the scan exits
//     each row.
//   - FastTwoPass: He et al. style two-pass labeling [14] using the flat
//     representative-label table (package unionfind) so that the second pass
//     is a single table read per pixel.
//   - RunBased: run-length-encoded labeling (the run-based family of He et
//     al.'s review [15]) — runs, not pixels, carry labels.
//   - ContourTracing: Chang–Chen–Lu contour tracing (the contour family of
//     [15]) — external/internal contours are walked once, interiors inherit
//     from the left.
package labeling

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
	"github.com/wustl-adapt/hepccl/internal/unionfind"
)

// Labeler is a connected-component labeling algorithm.
type Labeler interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Label assigns a positive label to every lit pixel of g such that two
	// lit pixels share a label iff they are connected under conn. Background
	// pixels get 0.
	Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error)
}

// All returns one instance of every baseline labeler, in citation order,
// ending with the run-based and contour-tracing families from the He et al.
// review.
func All() []Labeler {
	return []Labeler{FloodFill{}, TwoPass{}, SinglePass{}, FastTwoPass{}, RunBased{}, ContourTracing{}}
}

// FloodFill is the golden model: BFS from each unvisited lit pixel.
type FloodFill struct{}

// Name implements Labeler.
func (FloodFill) Name() string { return "floodfill" }

// Label implements Labeler.
func (FloodFill) Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error) {
	if !conn.Valid() {
		return nil, fmt.Errorf("labeling: invalid connectivity %d", int(conn))
	}
	rows, cols := g.Rows(), g.Cols()
	out := grid.NewLabels(rows, cols)
	offsets := conn.Neighbors()
	next := grid.Label(1)
	queue := make([]int, 0, rows*cols)
	for start := 0; start < rows*cols; start++ {
		if !g.LitFlat(start) || out.AtFlat(start) != 0 {
			continue
		}
		label := next
		next++
		out.SetFlat(start, label)
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			r, c := cur/cols, cur%cols
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				ni := nr*cols + nc
				if g.LitFlat(ni) && out.AtFlat(ni) == 0 {
					out.SetFlat(ni, label)
					queue = append(queue, ni)
				}
			}
		}
	}
	return out, nil
}

// TwoPass is Rosenfeld–Pfaltz [19]: pass one assigns provisional labels and
// records equivalences in a disjoint-set forest; pass two rescans the entire
// label image replacing each label by its representative.
type TwoPass struct{}

// Name implements Labeler.
func (TwoPass) Name() string { return "two-pass" }

// Label implements Labeler.
func (TwoPass) Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error) {
	if !conn.Valid() {
		return nil, fmt.Errorf("labeling: invalid connectivity %d", int(conn))
	}
	rows, cols := g.Rows(), g.Cols()
	out := grid.NewLabels(rows, cols)
	uf := unionfind.NewForest((rows*cols + 1) / 2)
	offsets := conn.ScanNeighbors()

	// Pass 1: provisional labels + equivalences.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !g.Lit(r, c) {
				continue
			}
			minL := grid.Label(0)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 && (minL == 0 || l < minL) {
					minL = l
				}
			}
			if minL == 0 {
				l, err := uf.MakeSet()
				if err != nil {
					return nil, fmt.Errorf("labeling: two-pass: %w", err)
				}
				out.Set(r, c, l)
				continue
			}
			out.Set(r, c, minL)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 && l != minL {
					uf.Union(l, minL)
				}
			}
		}
	}

	// Pass 2: full relabeling scan — the redundant traversal the paper's
	// 1.5-pass design avoids.
	for i, n := 0, rows*cols; i < n; i++ {
		if l := out.AtFlat(i); l != 0 {
			out.SetFlat(i, uf.Find(l))
		}
	}
	return out, nil
}

// FastTwoPass is He et al. [14]: same scan as TwoPass but equivalences live
// in the flat representative-label table, so the second pass is one table
// read per pixel with no pointer chasing.
type FastTwoPass struct{}

// Name implements Labeler.
func (FastTwoPass) Name() string { return "fast-two-pass" }

// Label implements Labeler.
func (FastTwoPass) Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error) {
	if !conn.Valid() {
		return nil, fmt.Errorf("labeling: invalid connectivity %d", int(conn))
	}
	rows, cols := g.Rows(), g.Cols()
	out := grid.NewLabels(rows, cols)
	flat := unionfind.NewFlat((rows*cols + 1) / 2)
	offsets := conn.ScanNeighbors()

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !g.Lit(r, c) {
				continue
			}
			minL := grid.Label(0)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 {
					rep := flat.Find(l)
					if minL == 0 || rep < minL {
						minL = rep
					}
				}
			}
			if minL == 0 {
				l, err := flat.MakeSet()
				if err != nil {
					return nil, fmt.Errorf("labeling: fast-two-pass: %w", err)
				}
				out.Set(r, c, l)
				continue
			}
			out.Set(r, c, minL)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 {
					flat.Union(l, minL)
				}
			}
		}
	}

	// Second pass: single table read per pixel (the flat table is always
	// fully resolved).
	for i, n := 0, rows*cols; i < n; i++ {
		if l := out.AtFlat(i); l != 0 {
			out.SetFlat(i, flat.Find(l))
		}
	}
	return out, nil
}

// SinglePass is Bailey–Johnston style [2]: equivalences are resolved during
// the scan against a flat table, and labels written to the output are always
// the current representative, so no relabeling pass is needed. The control
// complexity this adds (every neighbor read must be resolved through the
// table, and merges retroactively redefine earlier labels' meaning) is the
// reason the paper calls it "challenging to manage in a pipelined FPGA
// implementation" and adopts 1.5-pass instead.
type SinglePass struct{}

// Name implements Labeler.
func (SinglePass) Name() string { return "single-pass" }

// Label implements Labeler.
func (SinglePass) Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error) {
	if !conn.Valid() {
		return nil, fmt.Errorf("labeling: invalid connectivity %d", int(conn))
	}
	rows, cols := g.Rows(), g.Cols()
	out := grid.NewLabels(rows, cols)
	flat := unionfind.NewFlat((rows*cols + 1) / 2)
	offsets := conn.ScanNeighbors()

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !g.Lit(r, c) {
				continue
			}
			minL := grid.Label(0)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 {
					rep := flat.Find(l)
					if minL == 0 || rep < minL {
						minL = rep
					}
				}
			}
			if minL == 0 {
				l, err := flat.MakeSet()
				if err != nil {
					return nil, fmt.Errorf("labeling: single-pass: %w", err)
				}
				out.Set(r, c, l)
				continue
			}
			out.Set(r, c, minL)
			for _, o := range offsets {
				nr, nc := r+o.DR, c+o.DC
				if nr < 0 || nc < 0 || nc >= cols {
					continue
				}
				if l := out.At(nr, nc); l != 0 {
					flat.Union(l, minL)
				}
			}
		}
	}

	// On-the-fly resolution leaves stale labels only where a merge happened
	// after the pixel was written; finalize by reading the flat table, which
	// in hardware is fused into the output streaming of each row. This is a
	// per-pixel table read, not a raster re-scan with neighbor logic.
	for i, n := 0, rows*cols; i < n; i++ {
		if l := out.AtFlat(i); l != 0 {
			out.SetFlat(i, flat.Find(l))
		}
	}
	return out, nil
}
