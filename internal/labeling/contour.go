package labeling

import (
	"fmt"

	"github.com/wustl-adapt/hepccl/internal/grid"
)

// ContourTracing implements the contour-tracing CCL family (Chang, Chen &
// Lu's linear-time algorithm), the fourth class in He et al.'s review [15]
// alongside multi-pass, two-pass, and run-based methods: components are
// labeled by walking their external and internal contours once; interior
// pixels then inherit the label of their left neighbor during the same
// raster scan. Background pixels visited during tracing are marked so each
// internal contour is traced exactly once.
type ContourTracing struct{}

// Name implements Labeler.
func (ContourTracing) Name() string { return "contour-tracing" }

// Direction tables, clockwise. 8-way: E SE S SW W NW N NE; 4-way: E S W N.
var (
	contourDirs8 = []grid.Offset{{DR: 0, DC: 1}, {DR: 1, DC: 1}, {DR: 1, DC: 0}, {DR: 1, DC: -1},
		{DR: 0, DC: -1}, {DR: -1, DC: -1}, {DR: -1, DC: 0}, {DR: -1, DC: 1}}
	contourDirs4 = []grid.Offset{{DR: 0, DC: 1}, {DR: 1, DC: 0}, {DR: 0, DC: -1}, {DR: -1, DC: 0}}
)

type contourState struct {
	g      *grid.Grid
	out    *grid.Labels
	marked []bool // background pixels visited by a tracer
	dirs   []grid.Offset
}

func (cs *contourState) lit(r, c int) bool {
	return r >= 0 && r < cs.g.Rows() && c >= 0 && c < cs.g.Cols() && cs.g.Lit(r, c)
}

// mark flags a background position examined by the tracer; out-of-grid
// positions count as permanently marked (the virtual background frame).
func (cs *contourState) mark(r, c int) {
	if r >= 0 && r < cs.g.Rows() && c >= 0 && c < cs.g.Cols() {
		cs.marked[r*cs.g.Cols()+c] = true
	}
}

func (cs *contourState) isMarked(r, c int) bool {
	if r < 0 || r >= cs.g.Rows() || c < 0 || c >= cs.g.Cols() {
		return true
	}
	return cs.marked[r*cs.g.Cols()+c]
}

// tracer finds the next contour point clockwise from search direction d,
// marking the background positions it passes over. ok is false for isolated
// points.
func (cs *contourState) tracer(r, c, d int) (nr, nc, nd int, ok bool) {
	n := len(cs.dirs)
	for i := 0; i < n; i++ {
		dir := (d + i) % n
		q := cs.dirs[dir]
		qr, qc := r+q.DR, c+q.DC
		if cs.lit(qr, qc) {
			return qr, qc, dir, true
		}
		cs.mark(qr, qc)
	}
	return 0, 0, 0, false
}

// traceContour walks one full contour starting at (r, c) with initial search
// direction start, labeling every contour pixel.
func (cs *contourState) traceContour(r, c, start int, label grid.Label) {
	n := len(cs.dirs)
	cs.out.Set(r, c, label)
	sr, sc := r, c
	tr, tc, d, ok := cs.tracer(sr, sc, start)
	if !ok {
		return // isolated pixel
	}
	cs.out.Set(tr, tc, label)
	// Second point T; walk until we re-enter S heading to T again.
	cr, cc := tr, tc
	for {
		// Resume the clockwise search two positions back from the arrival
		// direction (the previous point sits at (d + n/2) % n).
		search := (d + n - 2) % n
		if n == 4 {
			search = (d + 3) % 4
		}
		nr2, nc2, nd2, ok := cs.tracer(cr, cc, search)
		if !ok {
			return
		}
		cs.out.Set(nr2, nc2, label)
		if cr == sr && cc == sc && nr2 == tr && nc2 == tc {
			return // closed the loop: back at S moving toward T
		}
		cr, cc, d = nr2, nc2, nd2
	}
}

// Label implements Labeler.
func (ContourTracing) Label(g *grid.Grid, conn grid.Connectivity) (*grid.Labels, error) {
	if !conn.Valid() {
		return nil, fmt.Errorf("labeling: invalid connectivity %d", int(conn))
	}
	cs := &contourState{
		g:      g,
		out:    grid.NewLabels(g.Rows(), g.Cols()),
		marked: make([]bool, g.Pixels()),
		dirs:   contourDirs8,
	}
	extStart, intStart := 7, 3
	if conn == grid.FourWay {
		cs.dirs = contourDirs4
		extStart, intStart = 3, 1 // N for external, S for internal
	}
	next := grid.Label(0)
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			if !g.Lit(r, c) {
				continue
			}
			// External contour: an unlabeled pixel with background above
			// starts a new component.
			if cs.out.At(r, c) == 0 && !cs.lit(r-1, c) {
				next++
				cs.traceContour(r, c, extStart, next)
			}
			// Internal contour: background below that no tracer has seen.
			if !cs.lit(r+1, c) && !cs.isMarked(r+1, c) {
				label := cs.out.At(r, c)
				if label == 0 {
					label = cs.out.At(r, c-1)
				}
				cs.traceContour(r, c, intStart, label)
			}
			// Interior pixel: inherit from the left.
			if cs.out.At(r, c) == 0 {
				cs.out.Set(r, c, cs.out.At(r, c-1))
			}
		}
	}
	return cs.out, nil
}
