// Package floatfix seeds floating-point violations inside //hepccl:hotpath
// functions for the nofloat fixture suite. Centroids are Q16.16 fixed point;
// any float that sneaks into the hot closure must be flagged.
package floatfix

//hepccl:hotpath
func hotSig(x float64) float64 { // want `float type in signature` `float type in signature`
	return x
}

//hepccl:hotpath
func hotLit(x int) int {
	_ = 0.25 // want `float literal`
	return x
}

//hepccl:hotpath
func hotVar(n int) int {
	var acc float64 // want `float variable declaration`
	acc = acc + 1.5 // want `float arithmetic` `float literal`
	return n + int(acc)
}

//hepccl:hotpath
func hotConv(n int) int {
	f := float32(n) // want `conversion to float` `float variable declaration`
	return int(f)
}

// ratio enters the hot closure via hotRatio: the rules follow static calls.
func ratio(a, b int) int {
	return int(float64(a) / float64(b)) // want `conversion to float` `conversion to float` `float arithmetic`
}

//hepccl:hotpath
func hotRatio(a, b int) int { return ratio(a, b) }

// Negative space: everything below must produce no diagnostics.

//hepccl:hotpath
func okColdFormat(num, den int) string {
	if den == 0 {
		return ""
	}
	//hepccl:coldpath
	return fmtRate(float64(num) / float64(den))
}

// fmtRate stays out of the closure: its only call site is coldpath-marked.
func fmtRate(r float64) string {
	if r > 0.5 {
		return "hi"
	}
	return "lo"
}

// notHot is unannotated and unreached from any hot function: exempt.
func notHot(x float64) float64 { return x * 2.0 }
