package nofloat_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/nofloat"
)

func TestNoFloat(t *testing.T) {
	analysistest.Run(t, "testdata", nofloat.Analyzer, "floatfix")
}
