// Package nofloat rejects floating-point arithmetic, conversions, literals,
// and variables inside the hot-path closure. Centroids travel in Q16.16
// fixed point end to end; a stray float in the accumulation path silently
// changes results against the hardware reference, breaks bit-exact
// differential tests, and defeats the integer vectorization the serving
// loops rely on. Statements marked //hepccl:coldpath are exempt
// (diagnostic formatting of a measured rate is fine off the hot path).
package nofloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
)

// Analyzer is the nofloat checker.
var Analyzer = &framework.Analyzer{
	Name: "nofloat",
	Doc:  "reject float32/float64 arithmetic, conversions, literals, and variables in //hepccl:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	marks := hepcclmark.Collect(pass.Prog)
	hot := hepcclmark.ComputeHotSet(pass.Prog, marks)
	for _, hf := range hot.Sorted() {
		check(pass, marks, hf)
	}
	return nil
}

func check(pass *framework.Pass, marks *hepcclmark.Marks, hf *hepcclmark.HotFunc) {
	info := hf.Pkg.Info
	name := hf.Describe()
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path function %s (use Q16.16 fixed point)", what, name)
	}
	// Parameters and results: a hot function must not traffic in floats.
	for _, fl := range []*ast.FieldList{hf.Decl.Recv, hf.Decl.Type.Params, hf.Decl.Type.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			if t := info.Types[f.Type].Type; isFloat(t) {
				report(f.Type.Pos(), "float type in signature")
			}
		}
	}
	ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok && marks.NodeMarked(stmt, hepcclmark.Coldpath) {
			return false
		}
		switch e := n.(type) {
		case *ast.BasicLit:
			if e.Kind == token.FLOAT {
				report(e.Pos(), "float literal")
			}
		case *ast.BinaryExpr:
			if isFloat(info.Types[e].Type) || isFloat(info.Types[e.X].Type) {
				report(e.OpPos, "float arithmetic")
			}
		case *ast.UnaryExpr:
			if isFloat(info.Types[e].Type) {
				report(e.OpPos, "float arithmetic")
			}
		case *ast.CallExpr:
			if tv := info.Types[e.Fun]; tv.IsType() && isFloat(tv.Type) {
				report(e.Pos(), "conversion to float")
			}
		case *ast.Ident:
			// Any float-typed variable the function declares (var or :=).
			if def, ok := info.Defs[e]; ok && def != nil && isFloat(def.Type()) {
				report(e.Pos(), "float variable declaration")
			}
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
