// Package analysistest runs an analyzer over fixture packages and matches
// its diagnostics against // want comments — the stdlib-only counterpart of
// golang.org/x/tools/go/analysis/analysistest, so the fixture suites run
// under plain `go test` with no external dependencies.
//
// Fixture layout: <testdata>/src/<pkg>/*.go, each a self-contained package
// importing only the standard library. A line expecting diagnostics carries
// a trailing comment of the form
//
//	x := make([]int, 4) // want `make allocates` `second diagnostic`
//
// where each backquoted (or double-quoted) string is a regular expression
// that must match one diagnostic reported on that line. Diagnostics without
// a matching want, and wants without a matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's diagnostics against the // want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			runOne(t, filepath.Join(testdata, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, dir, pkg string, a *framework.Analyzer) {
	t.Helper()
	prog, err := load.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := framework.Run(prog, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	Check(t, prog, diags)
}

// Check matches precomputed diagnostics against the fixture's // want
// comments — the entry point for suites whose diagnostics do not come from
// framework.Run (boundscheck shells the compiler over the fixture and maps
// its output, so the analyzer cannot run in-process).
func Check(t *testing.T, prog *load.Program, diags []framework.Diagnostic) {
	t.Helper()
	wants, err := collectWants(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
}

// collectWants parses every // want comment in the fixture.
func collectWants(prog *load.Program) ([]*want, error) {
	var wants []*want
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue
					}
					text = strings.TrimSpace(text)
					spec, ok := strings.CutPrefix(text, "want ")
					if !ok && strings.HasPrefix(text, "hepccl:") {
						// A want may trail a //hepccl: directive — the marklint
						// fixtures expect diagnostics on directive comments,
						// where the directive itself owns the comment's start.
						if i := strings.Index(text, "// want "); i >= 0 {
							spec, ok = text[i+len("// want "):], true
						}
					}
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					ws, err := parseWants(spec)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
					}
					for _, s := range ws {
						re, err := regexp.Compile(s)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, s, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: s})
					}
				}
			}
		}
	}
	return wants, nil
}

// parseWants splits a want spec into its quoted or backquoted patterns.
func parseWants(spec string) ([]string, error) {
	var out []string
	spec = strings.TrimSpace(spec)
	for len(spec) > 0 {
		switch spec[0] {
		case '`':
			end := strings.IndexByte(spec[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			out = append(out, spec[1:1+end])
			spec = strings.TrimSpace(spec[end+2:])
		case '"':
			var (
				s   string
				err error
			)
			// strconv.QuotedPrefix finds the quoted token even with trailing text.
			prefixed, err := strconv.QuotedPrefix(spec)
			if err != nil {
				return nil, fmt.Errorf("bad quoted want pattern: %w", err)
			}
			s, err = strconv.Unquote(prefixed)
			if err != nil {
				return nil, fmt.Errorf("bad quoted want pattern: %w", err)
			}
			out = append(out, s)
			spec = strings.TrimSpace(spec[len(prefixed):])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", spec)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want spec")
	}
	return out, nil
}
