// Package barrierproto enforces the parked-worker protocol of structs marked
// //hepccl:pool — the persistent pools of internal/tileccl (barrier-per-event
// workers) and internal/server (parked serving lanes). The protocol's
// correctness rests on a handful of structural facts the race detector can
// only probe and a reviewer easily misses:
//
//   - a //hepccl:wake channel must be buffered (make with a capacity), and
//     every send on it is either inside a select with a default clause (the
//     notify idiom: never block a producer on a parked consumer) or inside a
//     counted barrier loop whose bound also counts a //hepccl:done receive
//     loop in the same function (one token out, one token back, per worker);
//   - a //hepccl:done send sits inside the worker's `for range wake` loop, so
//     tokens returned can never exceed tokens received;
//   - a //hepccl:cursor field is a sync/atomic type (the work-stealing cursor
//     is the one word workers race on) and is never overwritten whole;
//   - pool channels are closed only inside the pool's Close method, and no
//     send on a pool channel appears after a Close call in the same function
//     — a send on a closed channel is a panic, not a missed wakeup.
//
// The checks are lexical and path-insensitive: source order approximates
// reachability, which is exact for the straight-line construct-use-close
// lifecycle these pools have.
package barrierproto

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Analyzer is the barrierproto checker.
var Analyzer = &framework.Analyzer{
	Name: "barrierproto",
	Doc:  "enforce the wake/done/cursor protocol of //hepccl:pool worker pools",
	Run:  run,
}

type fieldClass int

const (
	classNone fieldClass = iota
	classWake
	classDone
	classCursor
)

type fieldMeta struct {
	class      fieldClass
	structName string
}

func run(pass *framework.Pass) error {
	marks := hepcclmark.Collect(pass.Prog)
	fields := map[*types.Var]fieldMeta{}
	pools := map[string]bool{} // struct names marked //hepccl:pool

	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					if !marks.DocMarked(gd.Doc, hepcclmark.Pool) && !marks.DocMarked(ts.Doc, hepcclmark.Pool) {
						continue
					}
					pools[ts.Name.Name] = true
					classify(pass, pkg, marks, ts.Name.Name, st, fields)
				}
			}
		}
	}
	if len(pools) == 0 {
		return nil
	}
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					checkFunc(pass, pkg, fd, fields)
				}
				checkMakes(pass, pkg, d, fields)
			}
		}
	}
	return nil
}

// classify records each directive-marked field of a pool struct and checks
// the cursor's type up front.
func classify(pass *framework.Pass, pkg *load.Package, marks *hepcclmark.Marks, structName string, st *ast.StructType, fields map[*types.Var]fieldMeta) {
	for _, f := range st.Fields.List {
		class := classNone
		switch {
		case fieldMarked(marks, f, hepcclmark.Wake):
			class = classWake
		case fieldMarked(marks, f, hepcclmark.Done):
			class = classDone
		case fieldMarked(marks, f, hepcclmark.Cursor):
			class = classCursor
			if !isAtomicType(pkg.Info.Types[f.Type].Type) {
				pass.Reportf(f.Pos(), "pool cursor field of %s is not a sync/atomic type: workers race on it", structName)
			}
		default:
			continue
		}
		for _, name := range f.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				fields[v.Origin()] = fieldMeta{class: class, structName: structName}
			}
		}
	}
}

// fieldMarked checks only the field's own doc and trailing comment — the
// line-above rule would let the previous field's trailing directive leak
// onto this one.
func fieldMarked(marks *hepcclmark.Marks, f *ast.Field, kind string) bool {
	return marks.DocMarked(f.Doc, kind) || marks.DocMarked(f.Comment, kind)
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves an expression to a tracked pool field, or nil.
func fieldOf(info *types.Info, fields map[*types.Var]fieldMeta, e ast.Expr) (*types.Var, fieldMeta) {
	se, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, fieldMeta{}
	}
	sel, ok := info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil, fieldMeta{}
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok {
		return nil, fieldMeta{}
	}
	meta, tracked := fields[v.Origin()]
	if !tracked {
		return nil, fieldMeta{}
	}
	return v, meta
}

// checkMakes flags unbuffered construction of pool channels, in assignments
// and in composite literals.
func checkMakes(pass *framework.Pass, pkg *load.Package, root ast.Node, fields map[*types.Var]fieldMeta) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if v, meta := fieldOf(pkg.Info, fields, lhs); v != nil && (meta.class == classWake || meta.class == classDone) {
					checkMake(pass, pkg, n.Rhs[i], v, meta)
				}
			}
		case *ast.CompositeLit:
			st, ok := pkg.Info.Types[n].Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Name() != key.Name {
						continue
					}
					if meta, tracked := fields[f.Origin()]; tracked && (meta.class == classWake || meta.class == classDone) {
						checkMake(pass, pkg, kv.Value, f, meta)
					}
				}
			}
		}
		return true
	})
}

// checkMake requires a pool channel's make to carry a nonzero capacity.
func checkMake(pass *framework.Pass, pkg *load.Package, rhs ast.Expr, v *types.Var, meta fieldMeta) {
	ce, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := ce.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return
	}
	if len(ce.Args) < 2 {
		pass.Reportf(rhs.Pos(), "pool channel %s.%s made unbuffered: a send would block or drop the producer onto the consumer's schedule", meta.structName, v.Name())
		return
	}
	if tv := pkg.Info.Types[ce.Args[1]]; tv.Value != nil && tv.Value.String() == "0" {
		pass.Reportf(rhs.Pos(), "pool channel %s.%s made with zero capacity", meta.structName, v.Name())
	}
}

// checkFunc walks one function, with parent links, validating sends,
// receives, closes, and cursor writes against the protocol.
func checkFunc(pass *framework.Pass, pkg *load.Package, fd *ast.FuncDecl, fields map[*types.Var]fieldMeta) {
	parents := map[ast.Node]ast.Node{}
	var walk func(n, parent ast.Node)
	var nodes []ast.Node
	walk = func(n, parent ast.Node) {
		parents[n] = parent
		nodes = append(nodes, n)
		for _, child := range children(n) {
			walk(child, n)
		}
	}
	walk(fd, nil)

	// closePos is the earliest point in this function after which a pool
	// channel is closed (directly or via a Close method call on a pool).
	closePos := token.Pos(0)
	for _, n := range nodes {
		ce, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ce.Fun.(*ast.Ident); ok && id.Name == "close" && len(ce.Args) == 1 {
			if v, meta := fieldOf(pkg.Info, fields, ce.Args[0]); v != nil {
				if fd.Name.Name != "Close" {
					pass.Reportf(ce.Pos(), "pool channel %s.%s closed outside the pool's Close method", meta.structName, v.Name())
				}
				if closePos == 0 || ce.Pos() < closePos {
					closePos = ce.Pos()
				}
			}
			continue
		}
		if se, ok := ce.Fun.(*ast.SelectorExpr); ok && se.Sel.Name == "Close" {
			if t := pkg.Info.Types[se.X].Type; t != nil && isPoolType(t, fields) {
				if closePos == 0 || ce.Pos() < closePos {
					closePos = ce.Pos()
				}
			}
		}
	}

	for _, n := range nodes {
		switch n := n.(type) {
		case *ast.SendStmt:
			v, meta := fieldOf(pkg.Info, fields, n.Chan)
			if v == nil {
				continue
			}
			if closePos != 0 && n.Pos() > closePos {
				pass.Reportf(n.Pos(), "send on pool channel %s.%s after Close in the same function: a closed-channel send panics", meta.structName, v.Name())
			}
			switch meta.class {
			case classWake:
				if !inSelectDefault(n, parents) && !inMatchedBarrierLoop(pkg, fd, n, parents, fields, meta) {
					pass.Reportf(n.Pos(), "wake channel %s.%s sent outside select/default and outside a counted barrier loop matched by a done-receive loop", meta.structName, v.Name())
				}
			case classDone:
				if !inWakeRange(pkg, n, parents, fields) {
					pass.Reportf(n.Pos(), "done channel %s.%s sent outside the worker's `for range wake` loop: tokens returned could exceed tokens received", meta.structName, v.Name())
				}
			}
		case *ast.SelectorExpr:
			sel, ok := pkg.Info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				continue
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				continue
			}
			meta, tracked := fields[v.Origin()]
			if !tracked || meta.class != classCursor {
				continue
			}
			if isWrite(n, parents) {
				pass.Reportf(n.Pos(), "pool cursor %s.%s overwritten with a plain assignment; use its sync/atomic methods", meta.structName, v.Name())
			}
		}
	}
}

// isPoolType reports whether t (possibly a pointer) is a pool struct type.
func isPoolType(t types.Type, fields map[*types.Var]fieldMeta) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if _, tracked := fields[st.Field(i).Origin()]; tracked {
			return true
		}
	}
	return false
}

// inSelectDefault reports whether the send is a select case in a select that
// also has a default clause — the non-blocking notify idiom.
func inSelectDefault(send *ast.SendStmt, parents map[ast.Node]ast.Node) bool {
	cc, ok := parents[send].(*ast.CommClause)
	if !ok || cc.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := parents[parents[cc]].(*ast.SelectStmt) // CommClause -> BlockStmt -> SelectStmt
	if !ok {
		return false
	}
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// inMatchedBarrierLoop reports whether the wake send sits in a counted loop
// (`for i := 0; i < B; i++`) and the same function has a loop with the same
// bound B receiving from the pool's done channel — one token back per token
// out.
func inMatchedBarrierLoop(pkg *load.Package, fd *ast.FuncDecl, send *ast.SendStmt, parents map[ast.Node]ast.Node, fields map[*types.Var]fieldMeta, meta fieldMeta) bool {
	bound := ""
	for n := parents[send]; n != nil; n = parents[n] {
		if f, ok := n.(*ast.ForStmt); ok {
			bound = loopBound(f)
			break
		}
	}
	if bound == "" {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		f, ok := n.(*ast.ForStmt)
		if !ok || found || loopBound(f) != bound {
			return true
		}
		ast.Inspect(f.Body, func(m ast.Node) bool {
			ue, ok := m.(*ast.UnaryExpr)
			if !ok || ue.Op != token.ARROW {
				return true
			}
			if v, dm := fieldOf(pkg.Info, fields, ue.X); v != nil && dm.class == classDone && dm.structName == meta.structName {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// loopBound extracts the upper-bound expression text of a counted loop
// (`i < B`), or "".
func loopBound(f *ast.ForStmt) string {
	be, ok := f.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.LSS {
		return ""
	}
	return types.ExprString(be.Y)
}

// inWakeRange reports whether the done send sits inside a `for range wake`
// over a wake channel of the same pool.
func inWakeRange(pkg *load.Package, send *ast.SendStmt, parents map[ast.Node]ast.Node, fields map[*types.Var]fieldMeta) bool {
	for n := parents[send]; n != nil; n = parents[n] {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if v, meta := fieldOf(pkg.Info, fields, rs.X); v != nil && meta.class == classWake {
			return true
		}
	}
	return false
}

// isWrite reports whether the selector is an assignment target or inc/dec
// operand.
func isWrite(se *ast.SelectorExpr, parents map[ast.Node]ast.Node) bool {
	switch p := parents[se].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(se) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == ast.Expr(se)
	}
	return false
}

func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
