package barrierproto_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/barrierproto"
)

func TestBarrierProto(t *testing.T) {
	analysistest.Run(t, "testdata", barrierproto.Analyzer, "poolfix")
}
