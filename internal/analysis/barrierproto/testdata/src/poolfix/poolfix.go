// Package poolfix seeds violations of the parked-worker pool protocol for
// the barrierproto fixture suite: unbuffered wake channels, bare blocking
// wake sends, done tokens minted outside the worker loop, mismatched barrier
// counts, plain cursor types and overwrites, and sends after Close.
package poolfix

import "sync/atomic"

// pool is a well-formed parked-worker pool: every protocol site below that
// touches it correctly must stay silent.
//
//hepccl:pool
type pool struct {
	wake chan struct{} //hepccl:wake
	done chan struct{} //hepccl:done
	next atomic.Int64  //hepccl:cursor
	n    int
}

// badPool declares its cursor as a plain int, racing workers on it.
//
//hepccl:pool
type badPool struct {
	wake chan struct{} //hepccl:wake
	//hepccl:cursor
	next int // want `pool cursor field of badPool is not a sync/atomic type`
}

func newPool(n int) *pool {
	p := &pool{n: n}
	p.wake = make(chan struct{}, n)
	p.done = make(chan struct{}, n)
	return p
}

func newBadPool() *badPool {
	return &badPool{
		wake: make(chan struct{}), // want `pool channel badPool.wake made unbuffered`
	}
}

func (p *pool) worker() {
	for range p.wake {
		i := p.next.Add(1)
		_ = i
		p.done <- struct{}{}
	}
}

// barrier is the well-formed caller: counted wake sends matched by a
// done-receive loop with the same bound, cursor reset via Store.
func (p *pool) barrier() {
	p.next.Store(0)
	bg := p.n - 1
	for i := 0; i < bg; i++ {
		p.wake <- struct{}{}
	}
	for i := 0; i < bg; i++ {
		<-p.done
	}
}

// notify is the well-formed non-blocking nudge.
func (p *pool) notify() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Close is the only place pool channels may close.
func (p *pool) Close() {
	close(p.wake)
}

// bareSend blocks the producer on the consumer's schedule.
func (p *pool) bareSend() {
	p.wake <- struct{}{} // want `wake channel pool.wake sent outside select/default`
}

// mismatched wakes n workers but only collects bg tokens.
func (p *pool) mismatched() {
	bg := p.n - 1
	for i := 0; i < p.n; i++ {
		p.wake <- struct{}{} // want `wake channel pool.wake sent outside select/default and outside a counted barrier loop`
	}
	for i := 0; i < bg; i++ {
		<-p.done
	}
}

// mintDone returns a token it never received a wake for.
func (p *pool) mintDone() {
	p.done <- struct{}{} // want `done channel pool.done sent outside the worker's`
}

// stop closes the wake channel from outside Close, then keeps sending.
func (p *pool) stop() {
	close(p.wake) // want `pool channel pool.wake closed outside the pool's Close method`
	select {
	case p.wake <- struct{}{}: // want `send on pool channel pool.wake after Close`
	default:
	}
}

// overwrite replaces the cursor wholesale instead of using its atomics.
func (p *pool) overwrite() {
	p.next = atomic.Int64{} // want `pool cursor pool.next overwritten with a plain assignment`
}

var _ = newPool
var _ = newBadPool
var _ = (*pool).worker
var _ = (*pool).barrier
var _ = (*pool).notify
var _ = (*pool).bareSend
var _ = (*pool).mismatched
var _ = (*pool).mintDone
var _ = (*pool).stop
var _ = (*pool).overwrite
