// Package hotalloc seeds heap-allocation violations inside //hepccl:hotpath
// functions for the hotpathalloc fixture suite, alongside the reused-storage
// and escape-hatch patterns the analyzer must accept.
package hotalloc

type sink struct {
	scratch []int
	out     []byte
}

//hepccl:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

//hepccl:hotpath
func hotNew() *sink {
	return new(sink) // want `new allocates`
}

//hepccl:hotpath
func hotLiterals(n int) int {
	xs := []int{1, 2, n}   // want `slice literal allocates`
	m := map[int]int{n: 1} // want `map literal allocates`
	return xs[0] + m[n]
}

//hepccl:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want `closure literal allocates`
}

//hepccl:hotpath
func hotConvert(s string, b []byte) (int, int) {
	bs := []byte(s) // want `string-to-\[\]byte conversion allocates`
	st := string(b) // want `\[\]byte-to-string conversion allocates`
	return len(bs), len(st)
}

func seed() []int { return nil }

//hepccl:hotpath
func hotAppendFresh(v int) []int {
	local := seed()
	local = append(local, v) // want `append without reserved capacity may allocate`
	return local
}

//hepccl:hotpath
func hotEscape(v int) *int {
	p := &holder{x: v} // want `address of composite literal escapes`
	return &p.x
}

type holder struct{ x int }

func take(v any) { _ = v }

//hepccl:hotpath
func hotBoxArg(n int) {
	take(n) // want `interface boxing of int argument`
}

//hepccl:hotpath
func hotBoxAssign(n int) any {
	var x any
	x = n // want `interface boxing of int value`
	return x
}

//hepccl:hotpath
func hotBoxReturn(v int) any {
	return v // want `interface boxing of returned int value`
}

// helper enters the hot closure through hotCallee: the rules follow static
// calls, not just annotated functions.
func helper(n int) []byte {
	return make([]byte, n) // want `make allocates`
}

//hepccl:hotpath
func hotCallee(n int) []byte { return helper(n) }

// Negative space: everything below must produce no diagnostics.

//hepccl:hotpath
func (s *sink) okAppendField(v int) { s.scratch = append(s.scratch, v) }

//hepccl:hotpath
func okAppendParam(dst []byte, v byte) []byte { return append(dst, v) }

//hepccl:hotpath
func (s *sink) okAmortized(n int) {
	//hepccl:amortized
	if cap(s.out) < n {
		s.out = make([]byte, n)
	}
	s.out = s.out[:n]
}

//hepccl:hotpath
func (s *sink) okColdBranch(fail bool) []int {
	if fail {
		//hepccl:coldpath
		return append([]int(nil), 1, 2, 3)
	}
	return s.scratch
}

// coldHelper is kept out of the closure by its function-level mark.
//
//hepccl:coldpath
func coldHelper(n int) []int { return make([]int, n) }

//hepccl:hotpath
func okColdCallee(n int) int { return len(coldHelper(n)) }

//hepccl:hotpath
func okConstantBox() { take(42) } // constants box in static data

//hepccl:hotpath
func okPointerBox(s *sink) { take(s) } // pointer-shaped values box without allocating

// notHot is unannotated and unreached from any hot function: exempt.
func notHot(n int) []int { return make([]int, n) }
