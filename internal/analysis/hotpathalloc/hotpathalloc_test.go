package hotpathalloc_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hotalloc")
}
