// Package hotpathalloc rejects heap-allocating constructs in the hot-path
// closure: every //hepccl:hotpath function and everything it statically
// calls within the module must be allocation-free in steady state, which is
// the structural form of the serving spine's 0 allocs/op benchmark gate.
//
// Flagged constructs:
//
//   - make and new
//   - slice and map composite literals, and &T{...} (escaping composite)
//   - append whose destination does not chain to reused storage (a struct
//     field, package variable, or parameter)
//   - string <-> []byte/[]rune conversions
//   - function literals (closure values allocate; dynamic calls also hide
//     callees from the closure walk)
//   - interface boxing of non-pointer-shaped concrete values, at call
//     arguments, assignments, variable declarations, and returns
//
// Escape hatches: a statement marked //hepccl:amortized (scratch growth
// capped by a high-water mark) or //hepccl:coldpath (error branch, panic
// guard) is exempt, as is any function marked //hepccl:coldpath at the
// declaration. The `go build -gcflags=-m` cross-check in cmd/hepcclvet
// verifies the same property against the compiler's escape analysis.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
)

// Analyzer is the hotpathalloc checker.
var Analyzer = &framework.Analyzer{
	Name: "hotpathalloc",
	Doc:  "reject heap-allocating constructs in //hepccl:hotpath functions and their static callees",
	Run:  run,
}

func run(pass *framework.Pass) error {
	marks := hepcclmark.Collect(pass.Prog)
	hot := hepcclmark.ComputeHotSet(pass.Prog, marks)
	for _, hf := range hot.Sorted() {
		c := &checker{pass: pass, marks: marks, hf: hf, info: hf.Pkg.Info}
		c.walk(hf.Decl.Body)
	}
	return nil
}

type checker struct {
	pass  *framework.Pass
	marks *hepcclmark.Marks
	hf    *hepcclmark.HotFunc
	info  *types.Info
}

func (c *checker) typeOf(e ast.Expr) types.Type { return c.info.Types[e].Type }

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	args = append(args, c.hf.Describe())
	c.pass.Reportf(pos, format+" in hot path function %s", args...)
}

func (c *checker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok {
			if c.marks.NodeMarked(stmt, hepcclmark.Coldpath) || c.marks.NodeMarked(stmt, hepcclmark.Amortized) {
				return false
			}
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			c.reportf(e.Pos(), "closure literal allocates")
			return false
		case *ast.CompositeLit:
			if t := c.info.Types[e].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					c.reportf(e.Pos(), "slice literal allocates")
				case *types.Map:
					c.reportf(e.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					c.reportf(e.Pos(), "address of composite literal escapes")
				}
			}
		case *ast.CallExpr:
			c.call(e)
		case *ast.AssignStmt:
			if e.Tok == token.ASSIGN && len(e.Lhs) == len(e.Rhs) {
				for i, lhs := range e.Lhs {
					if t := c.info.Types[lhs].Type; c.boxes(t, e.Rhs[i]) {
						c.reportf(e.Rhs[i].Pos(), "interface boxing of %s value", c.typeOf(e.Rhs[i]))
					}
				}
			}
		case *ast.ValueSpec:
			if e.Type != nil {
				if t := c.info.Types[e.Type].Type; t != nil {
					for _, v := range e.Values {
						if c.boxes(t, v) {
							c.reportf(v.Pos(), "interface boxing of %s value", c.typeOf(v))
						}
					}
				}
			}
		case *ast.ReturnStmt:
			c.returns(e)
		}
		return true
	})
}

// call dispatches the per-call checks: builtins, conversions, and boxing of
// arguments into interface parameters.
func (c *checker) call(ce *ast.CallExpr) {
	// Conversions.
	if tv := c.info.Types[ce.Fun]; tv.IsType() && len(ce.Args) == 1 {
		dst := tv.Type
		src := c.info.Types[ce.Args[0]].Type
		if src != nil && c.info.Types[ce.Args[0]].Value == nil {
			if isString(dst) && isByteOrRuneSlice(src) {
				c.reportf(ce.Pos(), "[]byte-to-string conversion allocates")
			} else if isByteOrRuneSlice(dst) && isString(src) {
				c.reportf(ce.Pos(), "string-to-[]byte conversion allocates")
			}
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(ce.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(ce.Pos(), "make allocates")
			case "new":
				c.reportf(ce.Pos(), "new allocates")
			case "append":
				if len(ce.Args) > 0 && !c.reusedStorage(ce.Args[0], map[types.Object]bool{}) {
					c.reportf(ce.Pos(), "append without reserved capacity may allocate")
				}
			case "panic":
				if len(ce.Args) == 1 && c.boxes(anyType, ce.Args[0]) {
					c.reportf(ce.Args[0].Pos(), "interface boxing of %s value", c.typeOf(ce.Args[0]))
				}
			}
			return
		}
	}
	// Regular calls: boxing of concrete arguments into interface parameters
	// (including variadic ...any, the fmt call signature).
	sig, ok := c.info.Types[ce.Fun].Type.(*types.Signature)
	if !ok || ce.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range ce.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if c.boxes(pt, arg) {
			c.reportf(arg.Pos(), "interface boxing of %s argument", c.typeOf(arg))
		}
	}
}

// returns checks boxing of concrete values into interface results.
func (c *checker) returns(rs *ast.ReturnStmt) {
	results := c.hf.Decl.Type.Results
	if results == nil {
		return
	}
	var rts []types.Type
	for _, f := range results.List {
		t := c.info.Types[f.Type].Type
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			rts = append(rts, t)
		}
	}
	if len(rs.Results) != len(rts) {
		return
	}
	for i, r := range rs.Results {
		if c.boxes(rts[i], r) {
			c.reportf(r.Pos(), "interface boxing of returned %s value", c.typeOf(r))
		}
	}
}

var anyType = types.Universe.Lookup("any").Type()

// boxes reports whether assigning src to a destination of type dst converts
// a non-pointer-shaped concrete value to an interface — a conversion the
// runtime backs with a heap allocation. Constants are exempt (the compiler
// boxes them in static data), as are pointer-shaped values (the interface
// data word holds them directly).
func (c *checker) boxes(dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv := c.info.Types[src]
	if tv.Value != nil || tv.Type == nil {
		return false
	}
	st := tv.Type
	if types.IsInterface(st) {
		return false
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !pointerShaped(st)
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0 // zero-size: boxed via the runtime's shared zerobase
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// reusedStorage reports whether an append destination chains to storage
// that persists across calls — a struct field, package-level variable, or
// parameter (including reslices of one, and self-appends) — so growth is
// amortized to zero by the workload's high-water mark. A fresh local slice
// does not qualify.
func (c *checker) reusedStorage(e ast.Expr, visited map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.info.Uses[x]
		if obj == nil {
			obj = c.info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if v.IsField() || c.isParam(v) || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if visited[obj] {
			return true // self-append cycle: x = append(x, ...)
		}
		visited[obj] = true
		return c.localSources(obj, visited)
	case *ast.SelectorExpr:
		// A field selection or qualified package variable: storage that
		// outlives the call.
		if sel, ok := c.info.Selections[x]; ok {
			return sel.Kind() == types.FieldVal
		}
		_, ok := c.info.Uses[x.Sel].(*types.Var)
		return ok
	case *ast.SliceExpr:
		return c.reusedStorage(x.X, visited)
	case *ast.IndexExpr:
		return c.reusedStorage(x.X, visited)
	case *ast.StarExpr:
		return c.reusedStorage(x.X, visited)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
				return c.reusedStorage(x.Args[0], visited)
			}
		}
		return false
	}
	return false
}

// localSources finds every assignment to the local variable inside the hot
// function and requires each source to be reused storage itself.
func (c *checker) localSources(obj types.Object, visited map[types.Object]bool) bool {
	found, ok := false, true
	ast.Inspect(c.hf.Decl.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			lo := c.info.Defs[id]
			if lo == nil {
				lo = c.info.Uses[id]
			}
			if lo != obj {
				continue
			}
			found = true
			if !c.reusedStorage(as.Rhs[i], visited) {
				ok = false
			}
		}
		return true
	})
	return found && ok
}

// isParam reports whether v is a parameter or receiver of the hot function.
func (c *checker) isParam(v *types.Var) bool {
	ft := c.hf.Decl.Type
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if c.info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(ft.Params) || check(ft.Results) || check(c.hf.Decl.Recv)
}
