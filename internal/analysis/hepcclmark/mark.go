// Package hepcclmark parses the //hepccl: source directives that declare
// the serving spine's hot-path invariants, and computes the hot-function
// closure the hotpathalloc and nofloat analyzers check.
//
// Directives:
//
//	//hepccl:hotpath    (func doc)   function must be allocation- and
//	                                 float-free, along with everything it
//	                                 statically calls within the module
//	//hepccl:coldpath   (func doc or statement) the function or statement is
//	                                 off the hot path (error branch, panic
//	                                 guard) and is exempt from hot-path rules
//	//hepccl:amortized  (statement)  the statement allocates only until a
//	                                 high-water mark (scratch growth) and is
//	                                 exempt from allocation rules
//	//hepccl:spsc       (type doc)   struct is a single-producer/single-
//	                                 consumer shared structure; atomicring
//	                                 enforces its field-access discipline
//	//hepccl:const      (field)      spsc field is written only by
//	                                 constructors, then read-only
//	//hepccl:checked    (statement)  the statement's bounds/nil checks are
//	                                 justified by an invariant the compiler
//	                                 cannot see; boundscheck exempts its span
//	//hepccl:pool       (type doc)   struct is a parked-worker pool;
//	                                 barrierproto enforces its wake/done/
//	                                 cursor protocol
//	//hepccl:wake       (field)      pool wake channel: buffered, sent only
//	                                 via select/default or a counted barrier
//	                                 loop, closed only by Close
//	//hepccl:done       (field)      pool done channel: one token back per
//	                                 woken worker, sent from the wake-receive
//	                                 loop, received by a matching counted loop
//	//hepccl:cursor     (field)      pool work cursor: a sync/atomic type,
//	                                 never overwritten whole
//	//hepccl:accounted  (field)      counter in the gateway accounting
//	                                 identity; acctproto requires the acctmu
//	                                 mutex held at every mutation
//	//hepccl:acctmu     (field)      the mutex guarding accounted-counter
//	                                 mutations (the charge/settle mutex)
//
// A statement directive sits on the statement's first line or the line
// directly above it.
package hepcclmark

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Directive kinds.
const (
	Hotpath   = "hotpath"
	Coldpath  = "coldpath"
	Amortized = "amortized"
	SPSC      = "spsc"
	Const     = "const"
	Checked   = "checked"
	Pool      = "pool"
	Wake      = "wake"
	Done      = "done"
	Cursor    = "cursor"
	Accounted = "accounted"
	AcctMu    = "acctmu"
)

// Kinds lists every directive verb the suite understands; marklint reports
// anything else as a typo rather than silently ignoring it.
var Kinds = []string{
	Hotpath, Coldpath, Amortized, SPSC, Const,
	Checked, Pool, Wake, Done, Cursor, Accounted, AcctMu,
}

const prefix = "//hepccl:"

// Marks indexes every //hepccl: directive in a program by file and line.
type Marks struct {
	fset  *token.FileSet
	lines map[string]map[int][]string
}

// Collect scans every comment in the program for directives.
func Collect(prog *load.Program) *Marks {
	m := &Marks{fset: prog.Fset, lines: map[string]map[int][]string{}}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					kind := parseKind(c.Text)
					if kind == "" {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fl := m.lines[pos.Filename]
					if fl == nil {
						fl = map[int][]string{}
						m.lines[pos.Filename] = fl
					}
					fl[pos.Line] = append(fl[pos.Line], kind)
				}
			}
		}
	}
	return m
}

// ParseKind extracts the directive kind from one comment line, or "" when
// the comment is not a //hepccl: directive. The verb is everything up to the
// first space or tab, so unknown verbs come back verbatim for marklint.
func ParseKind(text string) string { return parseKind(text) }

// parseKind extracts the directive kind from one comment line, or "".
func parseKind(text string) string {
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	kind := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(kind, " \t"); i >= 0 {
		kind = kind[:i]
	}
	return kind
}

// LineMarked reports whether the file has a kind directive on the given line
// or the line directly above it — the statement-directive placement rule,
// applied to a bare source position (the shelled-compiler cross-checks have
// positions, not AST nodes).
func (m *Marks) LineMarked(file string, line int, kind string) bool {
	return m.has(file, line, kind) || m.has(file, line-1, kind)
}

// has reports whether the file has a kind directive on the given line.
func (m *Marks) has(file string, line int, kind string) bool {
	for _, k := range m.lines[file][line] {
		if k == kind {
			return true
		}
	}
	return false
}

// NodeMarked reports whether a kind directive sits on the node's first line
// or the line directly above it.
func (m *Marks) NodeMarked(n ast.Node, kind string) bool {
	pos := m.fset.Position(n.Pos())
	return m.has(pos.Filename, pos.Line, kind) || m.has(pos.Filename, pos.Line-1, kind)
}

// DocMarked reports whether the comment group contains a kind directive.
func (m *Marks) DocMarked(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if parseKind(c.Text) == kind {
			return true
		}
	}
	return false
}

// FuncMarked reports whether the function declaration carries a kind
// directive, in its doc comment or directly above the func keyword.
func (m *Marks) FuncMarked(fd *ast.FuncDecl, kind string) bool {
	return m.DocMarked(fd.Doc, kind) || m.NodeMarked(fd, kind)
}

// HotFunc is one function in the hot-path closure.
type HotFunc struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *load.Package
	File *ast.File
	// Direct marks functions carrying //hepccl:hotpath themselves; the rest
	// were pulled in as static callees, Via naming the first caller found.
	Direct bool
	Via    *types.Func
}

// HotSet is the hot-path closure: every //hepccl:hotpath function plus
// everything those functions statically call within the program, minus
// functions marked //hepccl:coldpath. Calls through interfaces, function
// values, and closures are not resolved — the hotpathalloc closure rule
// flags those constructs at the call site instead.
type HotSet struct {
	Funcs map[*types.Func]*HotFunc
}

// funcIndex maps every declared function (by origin object, so generic
// instantiations resolve to their declaration) to its declaration site.
type declSite struct {
	decl *ast.FuncDecl
	pkg  *load.Package
	file *ast.File
}

// ComputeHotSet walks the program's call graph from the annotated roots.
func ComputeHotSet(prog *load.Program, marks *Marks) *HotSet {
	decls := map[*types.Func]declSite{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj.Origin()] = declSite{fd, pkg, file}
				}
			}
		}
	}

	hs := &HotSet{Funcs: map[*types.Func]*HotFunc{}}
	var queue []*types.Func
	for obj, site := range decls {
		if marks.FuncMarked(site.decl, Hotpath) {
			hs.Funcs[obj] = &HotFunc{Obj: obj, Decl: site.decl, Pkg: site.pkg, File: site.file, Direct: true}
			queue = append(queue, obj)
		}
	}
	// Deterministic traversal so Via attribution is stable run to run.
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })

	for len(queue) > 0 {
		caller := queue[0]
		queue = queue[1:]
		site := decls[caller]
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			if stmt, ok := n.(ast.Stmt); ok {
				// Calls under an exempt statement are off the hot path and do
				// not extend the closure.
				if marks.NodeMarked(stmt, Coldpath) || marks.NodeMarked(stmt, Amortized) {
					return false
				}
			}
			ce, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(site.pkg.Info, ce)
			if callee == nil {
				return true
			}
			callee = callee.Origin()
			cs, ok := decls[callee]
			if !ok || hs.Funcs[callee] != nil {
				return true // external, undeclared, or already visited
			}
			if marks.FuncMarked(cs.decl, Coldpath) {
				return true
			}
			hs.Funcs[callee] = &HotFunc{Obj: callee, Decl: cs.decl, Pkg: cs.pkg, File: cs.file, Via: caller}
			queue = append(queue, callee)
			return true
		})
	}
	return hs
}

// Callee resolves a call expression to the called named function, or nil
// for conversions, builtins, and dynamic calls.
func Callee(info *types.Info, ce *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(ce.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = x
		}
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// Sorted returns the hot functions in source order.
func (hs *HotSet) Sorted() []*HotFunc {
	out := make([]*HotFunc, 0, len(hs.Funcs))
	for _, hf := range hs.Funcs {
		out = append(out, hf)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Pkg.Path, out[j].Pkg.Path; a != b {
			return a < b
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}

// Describe names a hot function for diagnostics, including how it entered
// the closure when it is not itself annotated.
func (hf *HotFunc) Describe() string {
	if hf.Direct {
		return hf.Obj.Name()
	}
	return hf.Obj.Name() + " (hot via " + hf.Via.Name() + ")"
}

// LineRange is a file line span, used by the escape-output cross-check.
type LineRange struct {
	File       string
	Start, End int
}

// ExemptRanges returns the line spans of every //hepccl:coldpath and
// //hepccl:amortized statement inside hot functions — allocations the
// escape-mode cross-check must not count against the hot path.
func (hs *HotSet) ExemptRanges(fset *token.FileSet, marks *Marks) []LineRange {
	return hs.MarkedRanges(fset, marks, Coldpath, Amortized)
}

// MarkedRanges returns the line spans of every statement inside a hot
// function carrying one of the given directives. The span covers the whole
// statement, so one directive on a loop exempts the loop body.
func (hs *HotSet) MarkedRanges(fset *token.FileSet, marks *Marks, kinds ...string) []LineRange {
	var out []LineRange
	for _, hf := range hs.Funcs {
		ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
			stmt, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			for _, kind := range kinds {
				if marks.NodeMarked(stmt, kind) {
					start := fset.Position(stmt.Pos())
					end := fset.Position(stmt.End())
					out = append(out, LineRange{File: start.Filename, Start: start.Line, End: end.Line})
					return false
				}
			}
			return true
		})
	}
	return out
}

// LoopRanges returns the line span of every for/range statement inside the
// hot closure, keyed by the owning hot function — the scope of the
// boundscheck rule, which cares about checks the branch predictor pays for
// per iteration, not straight-line ones.
func (hs *HotSet) LoopRanges(fset *token.FileSet) map[LineRange]*HotFunc {
	out := map[LineRange]*HotFunc{}
	for _, hf := range hs.Funcs {
		ast.Inspect(hf.Decl.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				start := fset.Position(n.Pos())
				end := fset.Position(n.End())
				out[LineRange{File: start.Filename, Start: start.Line, End: end.Line}] = hf
			}
			return true
		})
	}
	return out
}

// HotRanges returns each hot function's body line span, keyed for
// diagnostics by the function description.
func (hs *HotSet) HotRanges(fset *token.FileSet) map[LineRange]*HotFunc {
	out := map[LineRange]*HotFunc{}
	for _, hf := range hs.Funcs {
		start := fset.Position(hf.Decl.Pos())
		end := fset.Position(hf.Decl.End())
		out[LineRange{File: start.Filename, Start: start.Line, End: end.Line}] = hf
	}
	return out
}
