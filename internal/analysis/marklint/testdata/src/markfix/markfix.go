// Package markfix seeds malformed //hepccl: directives for the marklint
// fixture suite: an unknown verb, directives anchored to the wrong node
// kind, and the same mark applied twice to one function and one field —
// plus well-formed directives of every class that must stay silent.
package markfix

import "sync/atomic"

// hot is correctly marked: the directive sits in the doc comment.
//
//hepccl:hotpath
func hot(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// cold is correctly marked via the line above the declaration.

//hepccl:coldpath
func cold() {}

// stmts carries correctly placed statement directives.
func stmts(s []int, i int) int {
	//hepccl:checked i is the caller's cursor, already wrapped to len(s).
	t := s[i]
	//hepccl:amortized
	grow := append(s, t)
	//hepccl:coldpath
	report(grow)
	return t
}

func report([]int) {}

// ring is a correctly marked pool struct: type and field directives in the
// positions their analyzers read them from.
//
//hepccl:pool
type ring struct {
	wake chan struct{} //hepccl:wake
	done chan struct{} //hepccl:done
	//hepccl:cursor
	next atomic.Int64
	//hepccl:const
	mask uint32
}

// typo's verb is not in the registry.
//
//hepccl:hotpth // want `unknown //hepccl: directive verb "hotpth"`
func typo() {}

// wrongClass carries a type directive on a function declaration.
//
//hepccl:spsc // want `misplaced //hepccl:spsc directive: it anchors nothing here and must mark a struct type's doc comment`
func wrongClass() {}

// inBody misuses a function directive on a statement.
func inBody(s []int) int {
	//hepccl:hotpath // want `misplaced //hepccl:hotpath directive: it anchors nothing here and must mark a function declaration`
	t := s[0]
	//hepccl:const // want `misplaced //hepccl:const directive: it anchors nothing here and must mark a struct field`
	u := s[1]
	return t + u
}

//hepccl:amortized // want `misplaced //hepccl:amortized directive: it anchors nothing here and must mark a statement`
var sink int

// dup carries the same function directive twice.
//
//hepccl:hotpath
//hepccl:hotpath
func dup() {} // want `duplicate //hepccl:hotpath directive on func dup`

// dupField doubles a field directive in doc and trailing positions.
type dupField struct {
	//hepccl:accounted
	n atomic.Uint64 //hepccl:accounted // want `duplicate //hepccl:accounted directive on field dupField.n`
}

var _ = hot
var _ = cold
var _ = stmts
var _ = typo
var _ = wrongClass
var _ = inBody
var _ = dup
var _ = dupField{}
var _ = ring{}
var _ = sink
