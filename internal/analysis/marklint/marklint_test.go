package marklint_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/marklint"
)

func TestMarkLint(t *testing.T) {
	analysistest.Run(t, "testdata", marklint.Analyzer, "markfix")
}
