// Package marklint validates the //hepccl: directive language itself. The
// other analyzers consume directives silently — a typo like //hepccl:hotpth,
// a //hepccl:spsc pasted above a function, or a mark applied twice would
// simply not anchor, and the invariant the author thought they declared
// would be unenforced. marklint turns those silent no-ops into diagnostics:
//
//   - unknown verb: the text after //hepccl: is not a registered directive
//   - wrong position: the directive's verb is known but the comment does not
//     anchor a node of the kind that verb applies to (hotpath: function
//     declarations; coldpath: functions or statements; amortized, checked:
//     statements; spsc, pool: struct type doc comments; const, wake, done,
//     cursor, accounted, acctmu: struct field doc or trailing comments)
//   - duplicate: the same function, type, or field carries the same
//     directive more than once
package marklint

import (
	"go/ast"
	"go/token"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
)

// Analyzer is the marklint checker.
var Analyzer = &framework.Analyzer{
	Name: "marklint",
	Doc:  "report malformed //hepccl: directives: unknown verbs, wrong anchors, duplicates",
	Run:  run,
}

// Anchor classes a directive may attach to.
const (
	anchorFunc = 1 << iota
	anchorStmt
	anchorType
	anchorField
)

// allowed maps each directive verb to the anchor classes it is meaningful on.
var allowed = map[string]int{
	hepcclmark.Hotpath:   anchorFunc,
	hepcclmark.Coldpath:  anchorFunc | anchorStmt,
	hepcclmark.Amortized: anchorStmt,
	hepcclmark.Checked:   anchorStmt,
	hepcclmark.SPSC:      anchorType,
	hepcclmark.Pool:      anchorType,
	hepcclmark.Const:     anchorField,
	hepcclmark.Wake:      anchorField,
	hepcclmark.Done:      anchorField,
	hepcclmark.Cursor:    anchorField,
	hepcclmark.Accounted: anchorField,
	hepcclmark.AcctMu:    anchorField,
}

// placement is the wording for the wrong-position diagnostic.
var placement = map[string]string{
	hepcclmark.Hotpath:   "a function declaration",
	hepcclmark.Coldpath:  "a function declaration or a statement",
	hepcclmark.Amortized: "a statement",
	hepcclmark.Checked:   "a statement",
	hepcclmark.SPSC:      "a struct type's doc comment",
	hepcclmark.Pool:      "a struct type's doc comment",
	hepcclmark.Const:     "a struct field",
	hepcclmark.Wake:      "a struct field",
	hepcclmark.Done:      "a struct field",
	hepcclmark.Cursor:    "a struct field",
	hepcclmark.Accounted: "a struct field",
	hepcclmark.AcctMu:    "a struct field",
}

// occurrence is one //hepccl: comment in a file.
type occurrence struct {
	pos  token.Pos
	line int
	verb string
}

func run(pass *framework.Pass) error {
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			checkFile(pass, file)
		}
	}
	return nil
}

func checkFile(pass *framework.Pass, file *ast.File) {
	fset := pass.Prog.Fset

	// Collect every directive occurrence, by line.
	var occs []occurrence
	byLine := map[int][]occurrence{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			verb := hepcclmark.ParseKind(c.Text)
			if verb == "" {
				continue
			}
			o := occurrence{pos: c.Pos(), line: fset.Position(c.Pos()).Line, verb: verb}
			occs = append(occs, o)
			byLine[o.line] = append(byLine[o.line], o)
		}
	}
	if len(occs) == 0 {
		return
	}

	// Build per-line anchor classes and the entities for duplicate checks.
	anchors := map[int]int{}
	addLines := func(class int, lines ...int) {
		for _, l := range lines {
			anchors[l] |= class
		}
	}
	docLines := func(cg *ast.CommentGroup) []int {
		if cg == nil {
			return nil
		}
		var out []int
		for _, c := range cg.List {
			out = append(out, fset.Position(c.Pos()).Line)
		}
		return out
	}

	// entity is a func, struct type, or field that owns a set of comment
	// lines; the same verb occurring twice across those lines is a duplicate.
	type entity struct {
		pos   token.Pos
		what  string
		verbs int // allowed-class mask for the verbs this entity anchors
		lines []int
	}
	var entities []entity

	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			hdr := fset.Position(d.Pos()).Line
			lines := append(docLines(d.Doc), hdr, hdr-1)
			addLines(anchorFunc, lines...)
			entities = append(entities, entity{d.Pos(), "func " + d.Name.Name, anchorFunc, lines})
			if d.Body != nil {
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if stmt, ok := n.(ast.Stmt); ok {
						l := fset.Position(stmt.Pos()).Line
						addLines(anchorStmt, l, l-1)
					}
					return true
				})
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				lines := append(docLines(d.Doc), docLines(ts.Doc)...)
				addLines(anchorType, lines...)
				entities = append(entities, entity{ts.Pos(), "type " + ts.Name.Name, anchorType, lines})
				for _, f := range st.Fields.List {
					lines := append(docLines(f.Doc), docLines(f.Comment)...)
					addLines(anchorField, lines...)
					name := "_"
					if len(f.Names) > 0 {
						name = f.Names[0].Name
					}
					entities = append(entities, entity{f.Pos(), "field " + ts.Name.Name + "." + name, anchorField, lines})
				}
			}
		}
	}

	// Unknown verbs and wrong positions.
	for _, o := range occs {
		mask, known := allowed[o.verb]
		if !known {
			pass.Reportf(o.pos, "unknown //hepccl: directive verb %q; known verbs: %s", o.verb, verbList())
			continue
		}
		if anchors[o.line]&mask == 0 {
			pass.Reportf(o.pos, "misplaced //hepccl:%s directive: it anchors nothing here and must mark %s", o.verb, placement[o.verb])
		}
	}

	// Duplicates, per entity and verb.
	for _, e := range entities {
		count := map[string]int{}
		// A doc's last line is also the header's line-1; count each
		// occurrence once even when its line appears twice in e.lines.
		seen := map[token.Pos]bool{}
		for _, l := range e.lines {
			for _, o := range byLine[l] {
				if allowed[o.verb]&e.verbs == 0 || seen[o.pos] {
					continue
				}
				seen[o.pos] = true
				count[o.verb]++
			}
		}
		for _, verb := range hepcclmark.Kinds {
			if count[verb] > 1 {
				pass.Reportf(e.pos, "duplicate //hepccl:%s directive on %s", verb, e.what)
			}
		}
	}
}

// verbList renders the registered verbs for the unknown-verb diagnostic.
func verbList() string {
	out := ""
	for i, k := range hepcclmark.Kinds {
		if i > 0 {
			out += ", "
		}
		out += k
	}
	return out
}
