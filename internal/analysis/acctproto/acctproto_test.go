package acctproto_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/acctproto"
	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
)

func TestAcctProto(t *testing.T) {
	analysistest.Run(t, "testdata", acctproto.Analyzer, "acctfix")
}
