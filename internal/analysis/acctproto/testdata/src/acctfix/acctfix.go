// Package acctfix seeds accounting-identity violations for the acctproto
// fixture suite: counter mutations outside the charge/settle mutex, after an
// early unlock, and in a helper reachable from an unlocked call site — plus
// the clean shapes (held regions, deferred unlocks, helpers whose every call
// site is held, and a justified //hepccl:checked mutation) that must stay
// silent.
package acctfix

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	//hepccl:accounted
	offered atomic.Uint64
	//hepccl:accounted
	relayed atomic.Uint64
	//hepccl:accounted
	inflight atomic.Int64
	// retried is supplementary, not part of the identity: free to mutate.
	retried atomic.Uint64
}

type upstream struct {
	//hepccl:acctmu
	mu   sync.Mutex
	held int
}

type gw struct {
	stats stats
}

// charge is the clean shape: lock, defer unlock, mutate.
func (g *gw) charge(u *upstream) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.held++
	g.stats.inflight.Add(1)
}

// settle mutates inside the locked region and touches only the
// unconstrained counter after the unlock.
func (g *gw) settle(u *upstream) {
	u.mu.Lock()
	g.stats.inflight.Add(-1)
	g.stats.relayed.Add(1)
	u.mu.Unlock()
	g.stats.retried.Add(1)
}

// naked mutates with no lock in sight.
func (g *gw) naked() {
	g.stats.relayed.Add(1) // want `accounted counter stats.relayed mutated without the accounting mutex held`
}

// early mutates after the region closed.
func (g *gw) early(u *upstream) {
	u.mu.Lock()
	g.stats.inflight.Add(1)
	u.mu.Unlock()
	g.stats.inflight.Add(-1) // want `accounted counter stats.inflight mutated without the accounting mutex held`
}

// bump is a helper with no lock of its own; it is clean or not depending on
// its call sites.
func (g *gw) bump() {
	g.stats.offered.Add(1) // want `accounted counter stats.offered mutated without the accounting mutex held`
}

// lockedCaller calls bump under the mutex — this site is fine on its own.
func (g *gw) lockedCaller(u *upstream) {
	u.mu.Lock()
	defer u.mu.Unlock()
	g.bump()
}

// nakedCaller also calls bump, without the mutex — this site is what makes
// bump's mutation a violation.
func (g *gw) nakedCaller() {
	g.bump()
}

// creditHeld is a helper whose every call site is held, transitively: clean.
func (g *gw) creditHeld() {
	g.stats.relayed.Add(1)
}

// settleFront is creditHeld's only caller, itself called only under the lock.
func (g *gw) settleFront() {
	g.creditHeld()
}

func (g *gw) onlyLockedUse(u *upstream) {
	u.mu.Lock()
	g.settleFront()
	u.mu.Unlock()
}

// offer mutates pre-charge, before any upstream (and so any mutex) exists;
// the directive carries the argument.
func (g *gw) offer() {
	// No charge/settle race: the event is not yet held by any upstream, so
	// no settle can classify it concurrently.
	//hepccl:checked
	g.stats.offered.Add(1)
}

var _ = (*gw).charge
var _ = (*gw).settle
var _ = (*gw).naked
var _ = (*gw).early
var _ = (*gw).lockedCaller
var _ = (*gw).nakedCaller
var _ = (*gw).onlyLockedUse
var _ = (*gw).offer
