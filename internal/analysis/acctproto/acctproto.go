// Package acctproto machine-enforces the gateway's accounting identity
// (offered == relayed + shed + inflight). The identity holds only because
// charging and settling an event share the upstream's mutex — a counter
// mutation outside that lock is exactly the race that lets an event be
// counted twice (or never) when a backend dies mid-record.
//
// Fields marked //hepccl:accounted (the identity's counters) may be mutated
// — .Add/.Store/.Swap/.CompareAndSwap on the atomic, or a plain assignment —
// only while a mutex marked //hepccl:acctmu is held. Holding is computed as
// a path-insensitive lock-set in source order over each function body
// (Lock() opens a region, a non-deferred Unlock() closes it, a deferred
// Unlock() holds to function end), propagated over the SSA-free go/types
// call graph: a helper that mutates without locking is clean when every one
// of its static call sites is itself inside a held region (transitively).
// Dynamic calls (interfaces, function values) are not resolved and count as
// unheld call sites.
//
// Genuinely lock-free mutations — counters charged before any upstream
// exists, like the pre-placement sheds — carry a //hepccl:checked directive
// whose comment argues why no charge/settle race is possible there.
package acctproto

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Analyzer is the acctproto checker.
var Analyzer = &framework.Analyzer{
	Name: "acctproto",
	Doc:  "require the //hepccl:acctmu mutex held at every //hepccl:accounted counter mutation",
	Run:  run,
}

// mutatorNames are the sync/atomic methods that change a counter's value.
var mutatorNames = map[string]bool{
	"Add": true, "Store": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

// event is one lock-relevant or mutation site in a function body, processed
// in source order.
type event struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 deferred unlock, 3 mutation, 4 call site
	// mutation: the mutated field; call site: the callee.
	field  *types.Var
	callee *types.Func
}

// funcFacts is one function's lock-set summary.
type funcFacts struct {
	decl *ast.FuncDecl
	pkg  *load.Package
	// mutations not covered by a local held region or a //hepccl:checked
	// directive; clean only if every call site of the function is held.
	naked []event
	// call sites of other module functions, with local held state.
	calls []struct {
		callee *types.Func
		held   bool
	}
}

func run(pass *framework.Pass) error {
	marks := hepcclmark.Collect(pass.Prog)
	accounted := map[*types.Var]string{} // field -> struct name
	mutexes := map[*types.Var]bool{}

	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						marked := func(kind string) bool {
							return marks.DocMarked(f.Doc, kind) || marks.DocMarked(f.Comment, kind)
						}
						if !marked(hepcclmark.Accounted) && !marked(hepcclmark.AcctMu) {
							continue
						}
						for _, name := range f.Names {
							v, ok := pkg.Info.Defs[name].(*types.Var)
							if !ok {
								continue
							}
							if marked(hepcclmark.Accounted) {
								accounted[v.Origin()] = ts.Name.Name
							} else {
								mutexes[v.Origin()] = true
							}
						}
					}
				}
			}
		}
	}
	if len(accounted) == 0 {
		return nil
	}

	// Summarize every function body: lock regions, mutations, call sites.
	facts := map[*types.Func]*funcFacts{}
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				facts[obj.Origin()] = summarize(pass, pkg, marks, fd, accounted, mutexes)
			}
		}
	}

	// A function's naked mutations are clean when every call site is held,
	// transitively. Cycles and entry points resolve to unheld.
	memo := map[*types.Func]int{} // 0 unknown, 1 in progress/unheld, 2 held
	callers := map[*types.Func][]struct {
		in   *types.Func
		held bool
	}{}
	for obj, ff := range facts {
		for _, cs := range ff.calls {
			callers[cs.callee] = append(callers[cs.callee], struct {
				in   *types.Func
				held bool
			}{obj, cs.held})
		}
	}
	var allSitesHeld func(f *types.Func) bool
	allSitesHeld = func(f *types.Func) bool {
		switch memo[f] {
		case 1:
			return false
		case 2:
			return true
		}
		memo[f] = 1
		sites := callers[f]
		if len(sites) == 0 {
			return false
		}
		for _, s := range sites {
			if !s.held && !allSitesHeld(s.in) {
				return false
			}
		}
		memo[f] = 2
		return true
	}

	var objs []*types.Func
	for obj := range facts {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		ff := facts[obj]
		if len(ff.naked) == 0 || allSitesHeld(obj) {
			continue
		}
		for _, m := range ff.naked {
			pass.Reportf(m.pos, "accounted counter %s.%s mutated without the accounting mutex held; hold the //hepccl:acctmu mutex (here or at every call site) or justify with //hepccl:checked",
				accounted[m.field], m.field.Name())
		}
	}
	return nil
}

// summarize walks one function body in source order, tracking the lock-set.
func summarize(pass *framework.Pass, pkg *load.Package, marks *hepcclmark.Marks, fd *ast.FuncDecl, accounted map[*types.Var]string, mutexes map[*types.Var]bool) *funcFacts {
	ff := &funcFacts{decl: fd, pkg: pkg}
	var events []event

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if v := mutexCallee(pkg.Info, n.Call, mutexes, "Unlock"); v != nil {
				events = append(events, event{pos: n.Pos(), kind: 2})
				return false
			}
		case *ast.CallExpr:
			if v := mutexCallee(pkg.Info, n, mutexes, "Lock"); v != nil {
				events = append(events, event{pos: n.Pos(), kind: 0})
				return true
			}
			if v := mutexCallee(pkg.Info, n, mutexes, "Unlock"); v != nil {
				events = append(events, event{pos: n.Pos(), kind: 1})
				return true
			}
			if f := mutation(pkg.Info, n, accounted); f != nil {
				events = append(events, event{pos: n.Pos(), kind: 3, field: f})
				return true
			}
			if callee := hepcclmark.Callee(pkg.Info, n); callee != nil && callee.Pkg() != nil && pass.Prog.ByPath(callee.Pkg().Path()) != nil {
				events = append(events, event{pos: n.Pos(), kind: 4, callee: callee.Origin()})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if se, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if sel, found := pkg.Info.Selections[se]; found && sel.Kind() == types.FieldVal {
						if v, isVar := sel.Obj().(*types.Var); isVar {
							if _, tracked := accounted[v.Origin()]; tracked {
								events = append(events, event{pos: lhs.Pos(), kind: 3, field: v})
							}
						}
					}
				}
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := false
	deferred := false
	for _, e := range events {
		switch e.kind {
		case 0:
			held = true
		case 1:
			if !deferred {
				held = false
			}
		case 2:
			deferred = true
		case 3:
			if held {
				continue
			}
			pos := pass.Prog.Fset.Position(e.pos)
			if marks.LineMarked(pos.Filename, pos.Line, hepcclmark.Checked) {
				continue
			}
			ff.naked = append(ff.naked, e)
		case 4:
			ff.calls = append(ff.calls, struct {
				callee *types.Func
				held   bool
			}{e.callee, held})
		}
	}
	return ff
}

// mutexCallee reports whether the call is <expr>.<method>() on a marked
// mutex field, returning the field.
func mutexCallee(info *types.Info, ce *ast.CallExpr, mutexes map[*types.Var]bool, method string) *types.Var {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != method {
		return nil
	}
	fse, ok := ast.Unparen(se.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	sel, ok := info.Selections[fse]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok || !mutexes[v.Origin()] {
		return nil
	}
	return v
}

// mutation reports whether the call mutates an accounted field via its
// sync/atomic methods, returning the field.
func mutation(info *types.Info, ce *ast.CallExpr, accounted map[*types.Var]string) *types.Var {
	se, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok || !mutatorNames[se.Sel.Name] {
		return nil
	}
	fse, ok := ast.Unparen(se.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	sel, ok := info.Selections[fse]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := accounted[v.Origin()]; !tracked {
		return nil
	}
	return v
}
