// Package escapecheck is hotpathalloc's build-mode cross-check: it parses
// the compiler's escape analysis output (`go build -gcflags=-m`) and flags
// any "escapes to heap" / "moved to heap" site inside a //hepccl:hotpath
// function that is not covered by a //hepccl:coldpath or //hepccl:amortized
// statement. The AST analyzer reasons about constructs; this check asks the
// compiler itself, so the two fail independently — a construct the AST rules
// miss still trips the compiler's verdict, and vice versa.
package escapecheck

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Build compiles the module with escape-analysis diagnostics enabled and
// returns the compiler output. The build itself must succeed. Inlining is
// disabled (-l) so every allocation is reported at its source line inside the
// function that owns it — with inlining on, an amortized make inside a callee
// surfaces at the caller's call site, outside the callee's exempt range.
func Build(root string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -l", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("escapecheck: go build -gcflags=-m: %w\n%s", err, out)
	}
	return string(out), nil
}

var escapeLine = regexp.MustCompile(`(?m)^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// Check maps escape sites from compiler output onto the program's hot-path
// closure. root anchors the compiler's relative file paths.
func Check(prog *load.Program, root, output string) []framework.Diagnostic {
	marks := hepcclmark.Collect(prog)
	hot := hepcclmark.ComputeHotSet(prog, marks)
	hotRanges := hot.HotRanges(prog.Fset)
	exempt := hot.ExemptRanges(prog.Fset, marks)

	var diags []framework.Diagnostic
	seen := map[string]bool{}
	for _, m := range escapeLine.FindAllStringSubmatch(output, -1) {
		file, msg := m[1], m[4]
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		var hf *hepcclmark.HotFunc
		for r, f := range hotRanges {
			if r.File == file && r.Start <= line && line <= r.End {
				hf = f
				break
			}
		}
		if hf == nil {
			continue
		}
		covered := false
		for _, r := range exempt {
			if r.File == file && r.Start <= line && line <= r.End {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, line, col, msg)
		if seen[key] {
			continue // generic shape instantiations repeat per package
		}
		seen[key] = true
		diags = append(diags, framework.Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: "hotpathalloc/escapes",
			Message:  fmt.Sprintf("compiler escape analysis: %s in hot path function %s", msg, hf.Describe()),
		})
	}
	return diags
}
