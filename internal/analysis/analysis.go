// Package analysis assembles the hepccl invariant analyzers. cmd/hepcclvet
// runs this suite (plus go vet's standard set and the compiler-shelled
// escape-analysis and bounds-check cross-checks) over the module; the
// individual analyzer packages carry analysistest fixture suites
// demonstrating each rule.
package analysis

import (
	"github.com/wustl-adapt/hepccl/internal/analysis/acctproto"
	"github.com/wustl-adapt/hepccl/internal/analysis/atomicring"
	"github.com/wustl-adapt/hepccl/internal/analysis/barrierproto"
	"github.com/wustl-adapt/hepccl/internal/analysis/errwrapcheck"
	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hotpathalloc"
	"github.com/wustl-adapt/hepccl/internal/analysis/marklint"
	"github.com/wustl-adapt/hepccl/internal/analysis/nofloat"
)

// All returns every analyzer in the hepcclvet suite.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		marklint.Analyzer,
		hotpathalloc.Analyzer,
		atomicring.Analyzer,
		nofloat.Analyzer,
		errwrapcheck.Analyzer,
		barrierproto.Analyzer,
		acctproto.Analyzer,
	}
}
