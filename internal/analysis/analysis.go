// Package analysis assembles the hepccl invariant analyzers. cmd/hepcclvet
// runs this suite (plus go vet's standard set and the escape-analysis
// cross-check) over the module; the individual analyzer packages carry
// analysistest fixture suites demonstrating each rule.
package analysis

import (
	"github.com/wustl-adapt/hepccl/internal/analysis/atomicring"
	"github.com/wustl-adapt/hepccl/internal/analysis/errwrapcheck"
	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hotpathalloc"
	"github.com/wustl-adapt/hepccl/internal/analysis/nofloat"
)

// All returns every analyzer in the hepcclvet suite.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		hotpathalloc.Analyzer,
		atomicring.Analyzer,
		nofloat.Analyzer,
		errwrapcheck.Analyzer,
	}
}
