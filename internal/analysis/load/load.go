// Package load parses and type-checks Go packages for the hepcclvet
// analyzers without depending on golang.org/x/tools. Module packages are
// discovered with go/build, parsed with full comments (the analyzers read
// //hepccl: directives), topologically sorted, and type-checked with
// go/types; imports outside the module (the standard library — the module
// has no external dependencies) are resolved from compiler export data
// located with `go list -export`.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	// Path is the import path ("github.com/.../internal/adapt", or the
	// bare fixture name for analysistest loads).
	Path string
	// Name is the package name from the source.
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables for the files.
	Info *types.Info
}

// Program is a set of packages type-checked together: either every package
// of the module (hepcclvet runs) or a single fixture package (analysistest
// runs). Every package in Packages counts as "module-local" for analyzer
// rules that distinguish this code base from the standard library.
type Program struct {
	Fset     *token.FileSet
	Module   string // module path; "" for fixture loads
	Packages []*Package
	byPath   map[string]*Package
}

// ByPath returns the loaded package with the given import path, or nil.
func (p *Program) ByPath(path string) *Package { return p.byPath[path] }

// LoadModule loads every buildable package under the module rooted at root
// (the directory containing go.mod).
func LoadModule(root string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	prog := &Program{Fset: token.NewFileSet(), Module: modPath, byPath: map[string]*Package{}}
	for _, dir := range dirs {
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("load: %s: %w", dir, err)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{Path: ip, Name: bp.Name, Dir: dir}
		for _, f := range bp.GoFiles {
			file, err := parser.ParseFile(prog.Fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			pkg.Files = append(pkg.Files, file)
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[ip] = pkg
	}
	if err := prog.typecheck(root); err != nil {
		return nil, err
	}
	return prog, nil
}

// LoadDir loads the single package in dir under import path path — the
// analysistest entry point for fixture packages, which may import only the
// standard library.
func LoadDir(dir, path string) (*Program, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	prog := &Program{Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	pkg := &Package{Path: path, Name: bp.Name, Dir: dir}
	for _, f := range bp.GoFiles {
		file, err := parser.ParseFile(prog.Fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
	}
	prog.Packages = append(prog.Packages, pkg)
	prog.byPath[path] = pkg
	if err := prog.typecheck(dir); err != nil {
		return nil, err
	}
	return prog, nil
}

// typecheck type-checks every package in dependency order. goDir is the
// directory `go list` runs in (any directory inside a module or GOPATH).
func (p *Program) typecheck(goDir string) error {
	order, err := p.toposort()
	if err != nil {
		return err
	}
	var external []string
	seen := map[string]bool{}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == "unsafe" || p.byPath[ip] != nil || seen[ip] {
					continue
				}
				seen[ip] = true
				external = append(external, ip)
			}
		}
	}
	imp, err := newImporter(p.Fset, p, goDir, external)
	if err != nil {
		return err
	}
	for _, pkg := range order {
		conf := types.Config{Importer: imp}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		tp, err := conf.Check(pkg.Path, p.Fset, pkg.Files, pkg.Info)
		if err != nil {
			return fmt.Errorf("load: typecheck %s: %w", pkg.Path, err)
		}
		pkg.Types = tp
	}
	return nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("load: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module declaration in %s", gomod)
}

// toposort orders packages so every intra-program import precedes its
// importer.
func (p *Program) toposort() ([]*Package, error) {
	const (
		white = iota
		grey
		black
	)
	state := map[*Package]int{}
	var order []*Package
	var visit func(pkg *Package) error
	visit = func(pkg *Package) error {
		switch state[pkg] {
		case grey:
			return fmt.Errorf("load: import cycle through %s", pkg.Path)
		case black:
			return nil
		}
		state[pkg] = grey
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				if dep := p.byPath[strings.Trim(imp.Path.Value, `"`)]; dep != nil {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[pkg] = black
		order = append(order, pkg)
		return nil
	}
	for _, pkg := range p.Packages {
		if err := visit(pkg); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// progImporter resolves intra-program imports from the program itself and
// everything else (the standard library) from compiler export data.
type progImporter struct {
	prog *Program
	gc   types.ImporterFrom
}

// newImporter builds the importer, locating export data for the external
// import set (plus transitive dependencies) with one `go list -export` run.
func newImporter(fset *token.FileSet, prog *Program, goDir string, external []string) (*progImporter, error) {
	exports := map[string]string{}
	if len(external) > 0 {
		sort.Strings(external)
		args := append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}={{.Export}}"}, external...)
		cmd := exec.Command("go", args...)
		cmd.Dir = goDir
		out, err := cmd.Output()
		if err != nil {
			msg := err.Error()
			if ee, ok := err.(*exec.ExitError); ok {
				msg = string(ee.Stderr)
			}
			return nil, fmt.Errorf("load: go list -export: %s", msg)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if ip, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok && file != "" {
				exports[ip] = file
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	gc, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("load: gc importer does not implement ImporterFrom")
	}
	return &progImporter{prog: prog, gc: gc}, nil
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := pi.prog.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("load: import %q before it was type-checked", path)
		}
		return pkg.Types, nil
	}
	return pi.gc.ImportFrom(path, dir, mode)
}
