// Package errwrapfix seeds error-wrapping violations for the errwrapcheck
// fixture suite: sentinel chains broken by %v/%s, %w on a non-error, and
// identity comparisons that miss wrapped sentinels.
package errwrapfix

import (
	"errors"
	"fmt"
	"io"
)

var (
	ErrStorm = errors.New("resync storm")
	ErrShort = errors.New("short event")
)

func wrapBadV(err error) error {
	return fmt.Errorf("decode: %v", err) // want `error argument formatted with %v instead of %w`
}

func wrapBadS(err error) error {
	return fmt.Errorf("decode asic %d: %s", 3, err) // want `error argument formatted with %s instead of %w`
}

func wrapBadW(n int) error {
	return fmt.Errorf("count: %w", n) // want `%w applied to non-error int argument`
}

func cmpBad(err error) bool {
	return err == ErrStorm // want `comparison with sentinel ErrStorm using == misses wrapped errors`
}

func cmpBadNeq(err error) bool {
	return ErrShort != err // want `comparison with sentinel ErrShort using != misses wrapped errors`
}

// Negative space: everything below must produce no diagnostics.

func wrapOK(err error) error {
	return fmt.Errorf("decode: %w", err)
}

func isOK(err error) bool {
	return errors.Is(err, ErrStorm)
}

// io.EOF is a standard-library sentinel with documented identity semantics;
// only module-declared sentinels are constrained.
func eofOK(err error) bool {
	return err == io.EOF
}

func nilOK(err error) bool {
	return err == nil
}
