// Package errwrapcheck enforces the error-wrapping contract on which the
// resync circuit-breaking between internal/adapt and internal/server rests:
// transport errors crossing the boundary must wrap their sentinels with %w,
// and wrapped sentinels must be tested with errors.Is, or the
// errors.Is(err, adapt.ErrResyncStorm)-style checks in the server silently
// stop matching.
//
// Two rules, applied module-wide:
//
//   - a fmt.Errorf argument whose type is error must be formatted with %w
//     (never %v, %s, or any other verb), and %w must only consume error
//     values;
//   - an error value must not be compared with == or != against an error
//     sentinel declared in this module (standard-library sentinels such as
//     io.EOF are exempt: the packages returning them document identity
//     semantics, and the stream reader's io.EOF passthrough depends on it).
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
)

// Analyzer is the errwrapcheck checker.
var Analyzer = &framework.Analyzer{
	Name: "errwrapcheck",
	Doc:  "require %w wrapping for error arguments of fmt.Errorf and errors.Is for module sentinel comparisons",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *framework.Pass) error {
	// Collect the module's error sentinels: package-level error variables
	// declared in any loaded package.
	sentinels := map[types.Object]bool{}
	for _, pkg := range pass.Prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if v, ok := scope.Lookup(name).(*types.Var); ok && types.Identical(v.Type(), errorType) {
				sentinels[v] = true
			}
		}
	}
	for _, pkg := range pass.Prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					checkErrorf(pass, info, e)
				case *ast.BinaryExpr:
					checkCompare(pass, info, e, sentinels)
				}
				return true
			})
		}
	}
	return nil
}

// checkErrorf matches fmt.Errorf verbs against argument types.
func checkErrorf(pass *framework.Pass, info *types.Info, ce *ast.CallExpr) {
	f := calleeFunc(info, ce)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" || f.Name() != "Errorf" {
		return
	}
	if len(ce.Args) == 0 || ce.Ellipsis.IsValid() {
		return
	}
	tv := info.Types[ce.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // indexed or otherwise exotic format; leave it to go vet printf
	}
	args := ce.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break // arg count mismatch is go vet printf's finding
		}
		isErr := implementsError(info.Types[args[i]].Type)
		if isErr && verb != 'w' {
			pass.Reportf(args[i].Pos(), "error argument formatted with %%%c instead of %%w: the chain breaks and errors.Is checks across the transport boundary stop matching", verb)
		}
		if !isErr && verb == 'w' {
			pass.Reportf(args[i].Pos(), "%%w applied to non-error %s argument", info.Types[args[i]].Type)
		}
	}
}

// parseVerbs extracts the argument-consuming verbs of a format string, in
// order. It reports !ok for explicit argument indexes, which would break
// the positional pairing.
func parseVerbs(format string) ([]rune, bool) {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(rs) {
			c := rs[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		if rs[i] != '%' {
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}

// checkCompare flags ==/!= against module-local error sentinels.
func checkCompare(pass *framework.Pass, info *types.Info, be *ast.BinaryExpr, sentinels map[types.Object]bool) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sentinel, other := pair[0], pair[1]
		obj := usedObject(info, sentinel)
		if obj == nil || !sentinels[obj] {
			continue
		}
		if tv := info.Types[other]; tv.Type == nil || tv.IsNil() || !implementsError(tv.Type) {
			continue
		}
		pass.Reportf(be.OpPos, "comparison with sentinel %s using %s misses wrapped errors; use errors.Is", obj.Name(), be.Op)
		return
	}
}

// usedObject resolves an identifier or package-qualified selector to its
// object.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if _, isSel := info.Selections[x]; isSel {
			return nil // field or method, not a package-level var
		}
		return info.Uses[x.Sel]
	}
	return nil
}

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.AssignableTo(t, errorType) || types.Implements(t, errorType.Underlying().(*types.Interface))
}

// calleeFunc resolves a call to its named function (not via hepcclmark to
// keep this analyzer usable on fixture programs with no directives).
func calleeFunc(info *types.Info, ce *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(ce.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}
