package errwrapcheck_test

import (
	"testing"

	"github.com/wustl-adapt/hepccl/internal/analysis/analysistest"
	"github.com/wustl-adapt/hepccl/internal/analysis/errwrapcheck"
)

func TestErrWrapCheck(t *testing.T) {
	analysistest.Run(t, "testdata", errwrapcheck.Analyzer, "errwrapfix")
}
