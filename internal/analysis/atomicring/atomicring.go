// Package atomicring enforces the field-access discipline of structs marked
// //hepccl:spsc — the lock-free single-producer/single-consumer rings of the
// ingest spine, whose correctness rests on every cross-thread position field
// being touched only through sync/atomic, and on producer and consumer
// positions living on separate cache lines.
//
// For an //hepccl:spsc struct:
//
//   - a field of a sync/atomic type (atomic.Uint64, ...) is sound by
//     construction, but overwriting it whole (s.head = ...) is flagged;
//     each one must also be directly preceded by a blank cache-line pad
//     field (_ [N]byte, N >= 8) so the two ends never false-share;
//   - a plain field marked //hepccl:const may be written only inside a
//     constructor (a function whose results include the struct type) and is
//     immutable afterwards, so unsynchronized reads are safe;
//   - any other plain field may be accessed only as &s.f inside a
//     sync/atomic call — plain loads and stores are flagged.
//
// Slice/array element accesses through a const field (s.buf[i] = v) are the
// data payload, published by the ring's release store; only the field
// itself is constrained.
package atomicring

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/wustl-adapt/hepccl/internal/analysis/framework"
	"github.com/wustl-adapt/hepccl/internal/analysis/hepcclmark"
	"github.com/wustl-adapt/hepccl/internal/analysis/load"
)

// Analyzer is the atomicring checker.
var Analyzer = &framework.Analyzer{
	Name: "atomicring",
	Doc:  "enforce atomic-only access and cache-line padding on //hepccl:spsc struct fields",
	Run:  run,
}

type fieldClass int

const (
	classPlain fieldClass = iota
	classAtomic
	classConst
	classPad
)

type fieldMeta struct {
	class      fieldClass
	structName string
}

func run(pass *framework.Pass) error {
	marks := hepcclmark.Collect(pass.Prog)
	fields := map[*types.Var]fieldMeta{}
	structs := map[*types.TypeName]bool{}

	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					if !marks.DocMarked(gd.Doc, hepcclmark.SPSC) && !marks.DocMarked(ts.Doc, hepcclmark.SPSC) {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					structs[tn] = true
					classify(pass, pkg, marks, tn.Name(), st, fields)
				}
			}
		}
	}
	if len(structs) == 0 {
		return nil
	}
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			checkAccesses(pass, pkg, file, fields)
		}
	}
	return nil
}

// classify records each field's class and reports missing padding between
// cache-line-sensitive atomic fields.
func classify(pass *framework.Pass, pkg *load.Package, marks *hepcclmark.Marks, structName string, st *ast.StructType, fields map[*types.Var]fieldMeta) {
	prevPad := false
	for _, f := range st.Fields.List {
		class := classPlain
		switch {
		case isPadField(pkg.Info, f):
			class = classPad
		case isAtomicType(pkg.Info.Types[f.Type].Type):
			class = classAtomic
			if !prevPad {
				pass.Reportf(f.Pos(), "atomic field of SPSC struct %s is not preceded by a cache-line pad (_ [N]byte): producer and consumer positions will false-share", structName)
			}
		case marks.DocMarked(f.Doc, hepcclmark.Const) || marks.NodeMarked(f, hepcclmark.Const) || marks.DocMarked(f.Comment, hepcclmark.Const):
			class = classConst
		}
		prevPad = class == classPad
		for _, name := range f.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				fields[v.Origin()] = fieldMeta{class: class, structName: structName}
			}
		}
	}
}

// isPadField reports whether f is a blank padding field _ [N]byte, N >= 8.
func isPadField(info *types.Info, f *ast.Field) bool {
	blank := len(f.Names) > 0
	for _, n := range f.Names {
		if n.Name != "_" {
			blank = false
		}
	}
	if !blank {
		return false
	}
	arr, ok := info.Types[f.Type].Type.Underlying().(*types.Array)
	if !ok || arr.Len() < 8 {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkAccesses inspects every selector touching a tracked field.
func checkAccesses(pass *framework.Pass, pkg *load.Package, file *ast.File, fields map[*types.Var]fieldMeta) {
	parents := map[ast.Node]ast.Node{}
	var curFunc *ast.FuncDecl
	var walk func(n, parent ast.Node)
	walk = func(n, parent ast.Node) {
		parents[n] = parent
		if fd, ok := n.(*ast.FuncDecl); ok {
			curFunc = fd
		}
		se, ok := n.(*ast.SelectorExpr)
		if ok {
			if sel, found := pkg.Info.Selections[se]; found && sel.Kind() == types.FieldVal {
				if v, isVar := sel.Obj().(*types.Var); isVar {
					if meta, tracked := fields[v.Origin()]; tracked {
						checkOne(pass, pkg, se, v, meta, parents, curFunc)
					}
				}
			}
		}
		for _, child := range children(n) {
			walk(child, n)
		}
	}
	for _, d := range file.Decls {
		walk(d, nil)
	}
}

func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func checkOne(pass *framework.Pass, pkg *load.Package, se *ast.SelectorExpr, v *types.Var, meta fieldMeta, parents map[ast.Node]ast.Node, curFunc *ast.FuncDecl) {
	write := isWrite(se, parents)
	switch meta.class {
	case classAtomic:
		if write {
			pass.Reportf(se.Pos(), "atomic field %s.%s overwritten with a plain assignment", meta.structName, v.Name())
		}
	case classConst:
		if write && !isConstructor(pkg, curFunc, meta.structName) {
			pass.Reportf(se.Pos(), "//hepccl:const field %s.%s written outside a constructor", meta.structName, v.Name())
		}
	case classPlain:
		if inAtomicCall(se, parents, pkg.Info) {
			return
		}
		if write {
			pass.Reportf(se.Pos(), "plain store to SPSC field %s.%s; use sync/atomic or mark it //hepccl:const", meta.structName, v.Name())
		} else {
			pass.Reportf(se.Pos(), "plain load of SPSC field %s.%s; use sync/atomic or mark it //hepccl:const", meta.structName, v.Name())
		}
	}
}

// isWrite reports whether the selector is a direct assignment target or
// inc/dec operand. Element writes through the field (s.buf[i] = v) have an
// IndexExpr between the selector and the statement, so they do not count.
func isWrite(se *ast.SelectorExpr, parents map[ast.Node]ast.Node) bool {
	switch p := parents[se].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(se) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == ast.Expr(se)
	}
	return false
}

// inAtomicCall reports whether the selector appears as &s.f in a direct
// argument of a sync/atomic function call.
func inAtomicCall(se *ast.SelectorExpr, parents map[ast.Node]ast.Node, info *types.Info) bool {
	ue, ok := parents[se].(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return false
	}
	ce, ok := parents[ue].(*ast.CallExpr)
	if !ok {
		return false
	}
	f := hepcclmark.Callee(info, ce)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic"
}

// isConstructor reports whether fd returns the SPSC struct (by value or
// pointer) — the only functions allowed to write //hepccl:const fields.
func isConstructor(pkg *load.Package, fd *ast.FuncDecl, structName string) bool {
	if fd == nil || fd.Type.Results == nil {
		return false
	}
	for _, f := range fd.Type.Results.List {
		t := pkg.Info.Types[f.Type].Type
		if t == nil {
			continue
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Name() == structName {
			return true
		}
	}
	return false
}
